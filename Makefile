GO ?= go
FUZZTIME ?= 5s

.PHONY: ci lint wilint wilint-ledger lint-selftest vet build test race chaos failover corpus corpus-short fuzz-smoke bench bench-smoke bench-check

# ci is the full local gate: static checks (vet + the wilint invariant
# suite and its self-tests), the race-instrumented test suite (including
# the internal/loadtest fleet replay), the chaos / crash-recovery harness,
# the cluster failover/partition gauntlet, the core tier of the scenario
# golden corpus, a short fuzz smoke on every fuzz target, a one-iteration
# benchmark smoke (catches benchmarks that stop compiling or crash,
# without timing anything) and the SVD-lookup benchmark regression gate.
ci: lint lint-selftest build race chaos failover corpus-short fuzz-smoke bench-smoke bench-check

# lint runs every static check: go vet, the project's own wilint
# multichecker (exits non-zero on any unsuppressed finding), and
# govulncheck when the tool is installed (the offline build image does not
# ship it; the gate keeps lint green there without hiding vulnerabilities
# on developer machines). All three are cache-friendly: vet and the wilint
# build reuse the go build cache, so a no-change rerun is fast.
lint: vet wilint
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# wilint analyzes the whole module, test files included, with all eleven
# analyzers. CI consumes the machine-readable JSON stream (the shape
# .github/wilint-matcher.json annotates); the exit status is non-zero on
# any unsuppressed finding either way. For human-shaped output run
# `go run ./cmd/wilint ./...` directly.
wilint:
	$(GO) run ./cmd/wilint -format=json ./...

# wilint-ledger enumerates every //wilint:ignore waiver with its
# justification — the suppression budget reviewers audit.
wilint-ledger:
	$(GO) run ./cmd/wilint -ledger ./...

# lint-selftest proves the analyzers themselves still pass their fixture
# suites (each fixture asserts both real findings and directive hygiene).
lint-selftest:
	$(GO) test ./internal/lint/...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos runs the fault-injection harness under the race detector:
# poisoned-report equivalence, AP outages mid-trip, and kill -9
# crash/recovery diffs against uninterrupted runs.
chaos:
	$(GO) test -race -v -run 'TestChaos' ./internal/loadtest ./internal/scenario

# failover runs the cluster kill/partition gauntlet under the race
# detector: WAL-shipping frame codec properties, leader kill mid-fleet
# with promoted-replica equivalence, network partition (lag grows, heals),
# slow-follower convergence and snapshot-rotation resync.
failover:
	$(GO) test -race -v -run 'TestFailover|TestCluster|TestShip|TestParseShipFrame|TestRing|TestTopology|TestParsePeers' ./internal/cluster
	$(GO) test -race -v -run 'TestChaosClusterStandbyPromotion' ./internal/scenario

# corpus replays the FULL scenario golden corpus (all six seeded
# scenarios: three generated city forms, day-scale demand, AP churn and
# the adversarial flood) under the race detector, with per-scenario
# timing in the -v log. Regenerate goldens after an intended pipeline
# change with:
#   $(GO) test ./internal/eval -run TestScenarioCorpusGolden -update
corpus:
	$(GO) test -race -v -run 'TestScenario' ./internal/eval

# corpus-short is the ci tier: the three core scenarios only.
corpus-short:
	$(GO) test -short -v -run 'TestScenarioCorpusGolden' ./internal/eval

# Each -fuzz invocation takes one package and one target.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzHandlerReports -fuzztime=$(FUZZTIME) ./internal/server
	$(GO) test -run='^$$' -fuzz=FuzzHandlerQueries -fuzztime=$(FUZZTIME) ./internal/server
	$(GO) test -run='^$$' -fuzz=FuzzBatchDecode -fuzztime=$(FUZZTIME) ./internal/api
	$(GO) test -run='^$$' -fuzz=FuzzReadNetwork -fuzztime=$(FUZZTIME) ./internal/roadnet
	$(GO) test -run='^$$' -fuzz=FuzzRouteArcQueries -fuzztime=$(FUZZTIME) ./internal/roadnet
	$(GO) test -run='^$$' -fuzz=FuzzReadFrom -fuzztime=$(FUZZTIME) ./internal/traveltime
	$(GO) test -run='^$$' -fuzz=FuzzWALReplay -fuzztime=$(FUZZTIME) ./internal/traveltime
	$(GO) test -run='^$$' -fuzz=FuzzWALShip -fuzztime=$(FUZZTIME) ./internal/cluster
	$(GO) test -run='^$$' -fuzz=FuzzImportTimetable -fuzztime=$(FUZZTIME) ./internal/scenario
	$(GO) test -run='^$$' -fuzz=FuzzStreamResume -fuzztime=$(FUZZTIME) ./internal/server

# bench times the SVD construction/lookup benchmarks and writes the parsed
# numbers (ns/op, B/op, allocs/op) to BENCH_svd.json via cmd/benchjson,
# then the ingest-throughput benchmarks (single-POST HTTP, NDJSON batch,
# handler-only, decode-only) to BENCH_ingest.json, then the read-path
# benchmarks (snapshot-served GET vs cold recompute for vehicles and
# arrivals) to BENCH_read.json.
bench:
	$(GO) test -run='^$$' -bench='SVD' -benchmem -count=1 . | $(GO) run ./cmd/benchjson -out BENCH_svd.json
	@cat BENCH_svd.json
	$(GO) test -run='^$$' -bench='BenchmarkIngest|BenchmarkBatch' -benchmem -benchtime=20000x -count=1 ./internal/server \
		| $(GO) run ./cmd/benchjson -out BENCH_ingest.json
	@cat BENCH_ingest.json
	$(GO) test -run='^$$' -bench='BenchmarkVehicles|BenchmarkArrivals' -benchmem -count=1 ./internal/server \
		| $(GO) run ./cmd/benchjson -out BENCH_read.json
	@cat BENCH_read.json

# bench-smoke runs each SVD build benchmark exactly once — a compile-and-run
# check for ci, not a measurement.
bench-smoke:
	$(GO) test -run='^$$' -bench=SVDBuild -benchtime=1x .

# bench-check gates the hot paths against the committed baselines:
# fresh BenchmarkSVDLookup numbers (min over 3 runs) must stay within 25%
# of BENCH_svd.json's ns/op and must not allocate more per op, and the
# ingest benchmarks must hold both their alloc budgets (handler-only
# allocs/op vs BENCH_ingest.json) and the batch-speedup claim: batched
# NDJSON ingest at least 10x the per-report cost of single-POST HTTP.
# The read benchmarks must hold the snapshot claim: a cached GET at least
# 10x cheaper than the cold recompute of the same response, for both
# vehicles and arrivals (vs BENCH_read.json).
# Refresh a baseline deliberately with `make bench` when a regression is
# intended.
bench-check:
	$(GO) test -run='^$$' -bench='SVDLookup$$' -benchmem -count=3 . \
		| $(GO) run ./cmd/benchjson \
		| $(GO) run ./cmd/benchcheck -baseline BENCH_svd.json
	$(GO) test -run='^$$' -bench='BenchmarkIngestHTTP$$|BenchmarkBatchIngest$$|BenchmarkIngestHandler$$|BenchmarkBatchDecode$$' \
		-benchmem -benchtime=20000x -count=3 ./internal/server \
		| $(GO) run ./cmd/benchjson \
		| $(GO) run ./cmd/benchcheck -baseline BENCH_ingest.json \
			-require 'BenchmarkIngestHandler,BenchmarkBatchDecode' \
			-speedup 'BenchmarkBatchIngest:BenchmarkIngestHTTP:10'
	$(GO) test -run='^$$' -bench='BenchmarkVehicles|BenchmarkArrivals' -benchmem -count=3 ./internal/server \
		| $(GO) run ./cmd/benchjson \
		| $(GO) run ./cmd/benchcheck -baseline BENCH_read.json \
			-require 'BenchmarkVehiclesGET,BenchmarkVehiclesRecompute,BenchmarkArrivalsGET,BenchmarkArrivalsRecompute' \
			-speedup 'BenchmarkVehiclesGET:BenchmarkVehiclesRecompute:10,BenchmarkArrivalsGET:BenchmarkArrivalsRecompute:10'

bench-all:
	$(GO) test -bench=. -benchmem
