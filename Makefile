GO ?= go
FUZZTIME ?= 5s

.PHONY: ci vet build test race chaos fuzz-smoke bench

# ci is the full local gate: static checks, the race-instrumented test
# suite (including the internal/loadtest fleet replay), the chaos /
# crash-recovery harness and a short fuzz smoke on every fuzz target.
ci: vet build race chaos fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos runs the fault-injection harness under the race detector:
# poisoned-report equivalence, AP outages mid-trip, and kill -9
# crash/recovery diffs against uninterrupted runs.
chaos:
	$(GO) test -race -v -run 'TestChaos' ./internal/loadtest

# Each -fuzz invocation takes one package and one target.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzHandlerReports -fuzztime=$(FUZZTIME) ./internal/server
	$(GO) test -run='^$$' -fuzz=FuzzHandlerQueries -fuzztime=$(FUZZTIME) ./internal/server
	$(GO) test -run='^$$' -fuzz=FuzzReadNetwork -fuzztime=$(FUZZTIME) ./internal/roadnet
	$(GO) test -run='^$$' -fuzz=FuzzRouteArcQueries -fuzztime=$(FUZZTIME) ./internal/roadnet
	$(GO) test -run='^$$' -fuzz=FuzzReadFrom -fuzztime=$(FUZZTIME) ./internal/traveltime
	$(GO) test -run='^$$' -fuzz=FuzzWALReplay -fuzztime=$(FUZZTIME) ./internal/traveltime

bench:
	$(GO) test -bench=. -benchmem
