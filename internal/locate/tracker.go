package locate

import (
	"errors"
	"fmt"
	"time"

	"wilocator/internal/geo"
	"wilocator/internal/roadnet"
	"wilocator/internal/wifi"
)

// TrackerConfig tunes the per-bus tracker. The zero value selects defaults.
type TrackerConfig struct {
	// MaxSpeed bounds the feasible advance between fixes, m/s. Default 20
	// (72 km/h — generous for an urban bus).
	MaxSpeed float64
	// Slack widens the feasibility window to absorb positioning noise,
	// metres. Default 40.
	Slack float64
	// SpeedSmoothing is the EMA coefficient for the speed estimate in
	// (0, 1]; higher reacts faster. Default 0.4.
	SpeedSmoothing float64
}

func (c TrackerConfig) withDefaults() TrackerConfig {
	if c.MaxSpeed <= 0 {
		c.MaxSpeed = 20
	}
	if c.Slack <= 0 {
		c.Slack = 40
	}
	if c.SpeedSmoothing <= 0 || c.SpeedSmoothing > 1 {
		c.SpeedSmoothing = 0.4
	}
	return c
}

// TrajectoryPoint is one fix of a bus trajectory (Definition 6; the paper
// stores <lat, long, t>, which is recoverable through a geo.Projection).
type TrajectoryPoint struct {
	Time time.Time `json:"time"`
	Arc  float64   `json:"arc"`
	Pos  geo.Point `json:"pos"`
}

// Crossing records the interpolated instant at which the bus passed from one
// road segment of its route to the next (Fig. 5: the arrival time at
// e_{i-1}.end / e_i.start, approximated by assuming steady speed between the
// two fixes straddling the intersection).
type Crossing struct {
	// SegIndex is the index (within the route's segment sequence) of the
	// segment being *entered*; SegIndex == NumSegments means the route end
	// was reached.
	SegIndex int
	// Arc is the boundary arc length.
	Arc float64
	// At is the interpolated crossing time.
	At time.Time
}

// Tracker tracks a single bus trip along one route, enforcing forward
// progress and emitting segment crossings. It is not safe for concurrent
// use; the server owns one tracker per active bus.
type Tracker struct {
	pos   *Positioner
	route *roadnet.Route
	cfg   TrackerConfig

	last     *Estimate
	speed    float64 // smoothed ground speed, m/s
	hasSpeed bool
	traj     []TrajectoryPoint
}

// NewTracker creates a tracker for a bus running routeID.
func NewTracker(pos *Positioner, routeID string, cfg TrackerConfig) (*Tracker, error) {
	if pos == nil {
		return nil, errors.New("locate: nil positioner")
	}
	route, ok := pos.Diagram().Network().Route(routeID)
	if !ok {
		return nil, fmt.Errorf("locate: unknown route %q", routeID)
	}
	return &Tracker{pos: pos, route: route, cfg: cfg.withDefaults()}, nil
}

// Route returns the tracked route.
func (t *Tracker) Route() *roadnet.Route { return t.route }

// Retarget re-points the tracker at a positioner over a rebuilt diagram. The
// trip state — last fix, smoothed speed, trajectory — survives; only the
// lookup structure changes. The new diagram must cover the tracked route
// (rebuilds over the same road network always do).
func (t *Tracker) Retarget(pos *Positioner) error {
	if pos == nil {
		return errors.New("locate: nil positioner")
	}
	route, ok := pos.Diagram().Network().Route(t.route.ID())
	if !ok {
		return fmt.Errorf("locate: rebuilt diagram lacks route %q", t.route.ID())
	}
	t.pos = pos
	t.route = route
	return nil
}

// Arc returns the latest estimated arc length, if any fix exists.
func (t *Tracker) Arc() (float64, bool) {
	if t.last == nil {
		return 0, false
	}
	return t.last.Arc, true
}

// Speed returns the smoothed speed estimate in m/s.
func (t *Tracker) Speed() (float64, bool) { return t.speed, t.hasSpeed }

// Trajectory returns a copy of the fixes so far.
func (t *Tracker) Trajectory() []TrajectoryPoint {
	cp := make([]TrajectoryPoint, len(t.traj))
	copy(cp, t.traj)
	return cp
}

// Observe incorporates one scan, returning the new estimate and any segment
// crossings completed since the previous fix. A scan yielding no fix
// (ErrNoFix) leaves the tracker state unchanged.
func (t *Tracker) Observe(scan wifi.Scan) (Estimate, []Crossing, error) {
	var prior *Prior
	if t.last != nil {
		dt := scan.Time.Sub(t.last.Time).Seconds()
		if dt < 0 {
			return Estimate{}, nil, fmt.Errorf("locate: scan at %v precedes last fix %v", scan.Time, t.last.Time)
		}
		expected := t.last.Arc
		if t.hasSpeed {
			expected += t.speed * dt
		}
		prior = &Prior{
			Arc:         t.last.Arc,
			ExpectedArc: expected,
			MinArc:      t.last.Arc - t.cfg.Slack,
			MaxArc:      t.last.Arc + t.cfg.MaxSpeed*dt + t.cfg.Slack,
		}
	}
	est, err := t.pos.Locate(t.route.ID(), scan, prior)
	if err != nil {
		return Estimate{}, nil, err
	}

	var crossings []Crossing
	if t.last != nil {
		// Mobility constraint: the bus travels forward along its route;
		// clamp regressions caused by RSS noise.
		if est.Arc < t.last.Arc {
			est.Arc = t.last.Arc
			est.Pos = t.route.PointAt(est.Arc)
		}
		dt := est.Time.Sub(t.last.Time).Seconds()
		if dt > 0 {
			inst := (est.Arc - t.last.Arc) / dt
			if t.hasSpeed {
				a := t.cfg.SpeedSmoothing
				t.speed = a*inst + (1-a)*t.speed
			} else {
				t.speed = inst
				t.hasSpeed = true
			}
			crossings = t.interpolateCrossings(t.last, &est)
		}
	}
	t.last = &est
	t.traj = append(t.traj, TrajectoryPoint{Time: est.Time, Arc: est.Arc, Pos: est.Pos})
	return est, crossings, nil
}

// interpolateCrossings emits one Crossing per segment boundary passed
// between fixes a and b, linearly interpolating time over arc (Fig. 5's
// steady-speed approximation).
func (t *Tracker) interpolateCrossings(a, b *Estimate) []Crossing {
	if b.Arc <= a.Arc {
		return nil
	}
	idxA, _, _ := t.route.SegmentAt(a.Arc)
	var out []Crossing
	dt := b.Time.Sub(a.Time)
	for idx := idxA; idx < t.route.NumSegments(); idx++ {
		boundary := t.route.SegmentEndArc(idx)
		if boundary <= a.Arc || boundary > b.Arc {
			if boundary > b.Arc {
				break
			}
			continue
		}
		frac := (boundary - a.Arc) / (b.Arc - a.Arc)
		out = append(out, Crossing{
			SegIndex: idx + 1,
			Arc:      boundary,
			At:       a.Time.Add(time.Duration(frac * float64(dt))),
		})
	}
	return out
}
