// Package locate implements SVD-based bus positioning (Section III-B of the
// WiLocator paper) and per-bus tracking.
//
// A Positioner turns one WiFi scan into a position estimate on a known bus
// route by looking the scan's RSS rank vector up in the Signal Voronoi
// Diagram and applying the paper's rules: the route mobility constraint,
// tie handling (equal ranks pin the bus to a tile boundary), order reduction
// when the full rank vector matches no tile (noise or AP dynamics), and the
// longest-boundary neighbour fallback for tiles that do not intersect the
// route. A Tracker strings estimates into a trajectory (Definition 6),
// enforces forward progress, and interpolates the instants at which the bus
// crossed road-segment boundaries (Fig. 5) — the raw material of travel-time
// estimation.
package locate

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"wilocator/internal/geo"
	"wilocator/internal/svd"
	"wilocator/internal/wifi"
)

// Method records how an estimate was obtained, mirroring the paper's rule
// cascade.
type Method int

// Estimation methods, in decreasing order of confidence.
const (
	// MethodExact: the full-order rank key matched a tile intersecting the
	// route.
	MethodExact Method = iota + 1
	// MethodTie: equal top ranks placed the bus on a tile boundary.
	MethodTie
	// MethodReduced: a lower-order prefix key was used (noisy tail ranks or
	// AP dynamics).
	MethodReduced
	// MethodNeighbor: the scan's tile does not intersect the route; the
	// neighbouring tile with the longest shared boundary was used.
	MethodNeighbor
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodExact:
		return "exact"
	case MethodTie:
		return "tie"
	case MethodReduced:
		return "reduced"
	case MethodNeighbor:
		return "neighbor"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ErrNoFix is returned when a scan contains no usable readings (no known
// active AP detected).
var ErrNoFix = errors.New("locate: no position fix from scan")

// Estimate is one position fix on a route.
type Estimate struct {
	RouteID string
	// Arc is the estimated arc length along the route, metres.
	Arc float64
	// Pos is the planar position of Arc on the route.
	Pos geo.Point
	// Key is the tile key that produced the fix.
	Key svd.TileKey
	// Order is the tile order actually used.
	Order int
	// Method records which rule produced the fix.
	Method Method
	// Time is the scan timestamp.
	Time time.Time
}

// Prior carries the mobility constraint from the previous fix.
type Prior struct {
	// Arc is the previous estimated arc length.
	Arc float64
	// ExpectedArc is where the tracker expects the bus now (previous arc
	// advanced by the smoothed speed).
	ExpectedArc float64
	// MinArc and MaxArc bound the feasible window.
	MinArc, MaxArc float64
}

// DefaultTieMargin is the RSS difference (dB) below which two readings are
// treated as rank-tied. The paper's tie rule pins equal ranks to the tile
// boundary; with integer dBm readings and multi-phone fusion, readings
// within a couple of dB are order-ambiguous and get the same treatment.
const DefaultTieMargin = 2

// Positioner locates buses on routes using a Signal Voronoi Diagram.
type Positioner struct {
	d     *svd.Diagram
	order int

	// TieMargin is the RSS difference (dB) treated as a rank tie. It may
	// be adjusted before first use; 0 restricts ties to exact equality.
	TieMargin int
}

// NewPositioner creates a positioner querying the diagram at the given tile
// order (1 <= order <= d.Order()).
func NewPositioner(d *svd.Diagram, order int) (*Positioner, error) {
	if d == nil {
		return nil, errors.New("locate: nil diagram")
	}
	if order < 1 || order > d.Order() {
		return nil, fmt.Errorf("locate: order %d outside [1, %d]", order, d.Order())
	}
	return &Positioner{d: d, order: order, TieMargin: DefaultTieMargin}, nil
}

// Order returns the tile order the positioner queries at.
func (p *Positioner) Order() int { return p.order }

// Diagram returns the underlying diagram.
func (p *Positioner) Diagram() *svd.Diagram { return p.d }

// candidate is one possible fix before prior-based selection.
type candidate struct {
	run    svd.Run
	arc    float64
	key    svd.TileKey
	order  int
	method Method
}

// Locate estimates the bus position on routeID from one scan. prior may be
// nil for the first fix of a trip.
func (p *Positioner) Locate(routeID string, scan wifi.Scan, prior *Prior) (Estimate, error) {
	route, ok := p.d.Network().Route(routeID)
	if !ok {
		return Estimate{}, fmt.Errorf("locate: unknown route %q", routeID)
	}
	filtered := p.filterScan(scan)
	if len(filtered.Readings) == 0 {
		return Estimate{}, fmt.Errorf("%w: no known active APs in scan", ErrNoFix)
	}

	cands := p.candidates(routeID, filtered)
	if len(cands) == 0 {
		return Estimate{}, fmt.Errorf("%w: rank vector matches no tile on route %q", ErrNoFix, routeID)
	}
	best := pickCandidate(cands, prior)
	return Estimate{
		RouteID: routeID,
		Arc:     best.arc,
		Pos:     route.PointAt(best.arc),
		Key:     best.key,
		Order:   best.order,
		Method:  best.method,
		Time:    scan.Time,
	}, nil
}

// filterScan keeps only readings from APs that are geo-tagged and active —
// the paper ignores readings from unknown APs during SVD positioning.
func (p *Positioner) filterScan(scan wifi.Scan) wifi.Scan {
	out := wifi.Scan{Time: scan.Time}
	dep := p.d.Deployment()
	for _, r := range scan.Readings {
		if dep.Active(r.BSSID) {
			out.Readings = append(out.Readings, r)
		}
	}
	return out
}

// candidates runs the paper's rule cascade and returns every plausible fix.
func (p *Positioner) candidates(routeID string, scan wifi.Scan) []candidate {
	keys := tieKeys(scan, p.order, p.TieMargin)
	if len(keys) == 0 {
		return nil
	}
	primary := keys[0]

	// Rule 1: exact (and tie-variant) keys at the working order.
	var cands []candidate
	for i, key := range keys {
		for _, run := range p.d.FindRuns(routeID, key) {
			method := MethodExact
			if i > 0 {
				method = MethodTie
			}
			cands = append(cands, candidate{
				run: run, arc: p.arcInRun(key, run, routeID),
				key: key, order: key.Order(), method: method,
			})
		}
	}
	if len(cands) > 0 {
		// Tie refinement: if the deterministic key and a tie variant map to
		// adjacent runs, the equal ranks place the bus on their shared
		// boundary (the paper's points o/p in Fig. 2).
		refineTieBoundaries(cands)
		return cands
	}

	// Rule 2: longest-boundary neighbour — the scan's tile exists in the
	// signal space but does not intersect this route (paper's ST(b,e) case).
	if tile, ok := p.d.Tile(primary.Prefix(p.d.Order())); ok {
		for _, nb := range p.d.NeighborsByBoundary(tile.Key) {
			nbKey := nb.Prefix(p.order)
			runs := p.d.FindRuns(routeID, nbKey)
			if len(runs) == 0 {
				continue
			}
			for _, run := range runs {
				cands = append(cands, candidate{
					run: run, arc: p.arcInRun(nbKey, run, routeID),
					key: nbKey, order: nbKey.Order(), method: MethodNeighbor,
				})
			}
			return cands
		}
	}

	// Rule 3: order reduction — drop the noisiest (weakest) ranks until the
	// prefix matches somewhere on the route.
	for o := p.order - 1; o >= 1; o-- {
		key := primary.Prefix(o)
		for _, run := range p.d.FindRuns(routeID, key) {
			cands = append(cands, candidate{
				run: run, arc: p.arcInRun(key, run, routeID),
				key: key, order: o, method: MethodReduced,
			})
		}
		if len(cands) > 0 {
			return cands
		}
	}
	return nil
}

// arcInRun maps a run to a point estimate: the projection of the 2-D tile
// centroid onto the route, clamped into the run (Definition 5's Tile
// Mapping), or the run midpoint when no band geometry is available.
func (p *Positioner) arcInRun(key svd.TileKey, run svd.Run, routeID string) float64 {
	route, ok := p.d.Network().Route(routeID)
	if !ok {
		return run.Mid()
	}
	tile, ok := p.d.Tile(key)
	if !ok {
		return run.Mid()
	}
	s, _ := route.Project(tile.Centroid)
	if s < run.S0 {
		return run.S0
	}
	if s > run.S1 {
		return run.S1
	}
	return s
}

// tieKeys returns candidate keys of the given order: first the deterministic
// rank key, then variants obtained by permuting groups of (near-)equal RSS
// values. The result is capped to avoid combinatorial blow-ups in
// pathological scans.
func tieKeys(scan wifi.Scan, order, margin int) []svd.TileKey {
	groups := tieGroups(scan, margin)
	if len(groups) == 0 {
		return nil
	}
	const maxKeys = 8
	// Enumerate orderings of the first `order` slots that respect the tie
	// groups: within a group any order is allowed; across groups the RSS
	// order is fixed.
	orders := [][]wifi.BSSID{{}}
	for _, g := range groups {
		if len(orders[0]) >= order {
			break
		}
		var next [][]wifi.BSSID
		for _, prefix := range orders {
			for _, perm := range permutations(g, maxKeys) {
				combined := make([]wifi.BSSID, 0, len(prefix)+len(perm))
				combined = append(combined, prefix...)
				combined = append(combined, perm...)
				next = append(next, combined)
				if len(next) >= maxKeys {
					break
				}
			}
			if len(next) >= maxKeys {
				break
			}
		}
		orders = next
	}
	seen := make(map[svd.TileKey]bool, len(orders))
	out := make([]svd.TileKey, 0, len(orders))
	for _, o := range orders {
		key := svd.MakeKey(o, order)
		if key == "" || seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, key)
	}
	return out
}

// permutations returns up to limit permutations of g, starting with g's own
// (deterministic) order. Groups are tiny (readings sharing one integer dBm
// value), so a simple recursive enumeration is fine.
func permutations(g []wifi.BSSID, limit int) [][]wifi.BSSID {
	if len(g) == 1 {
		return [][]wifi.BSSID{g}
	}
	var out [][]wifi.BSSID
	var rec func(prefix, rest []wifi.BSSID)
	rec = func(prefix, rest []wifi.BSSID) {
		if len(out) >= limit {
			return
		}
		if len(rest) == 0 {
			cp := make([]wifi.BSSID, len(prefix))
			copy(cp, prefix)
			out = append(out, cp)
			return
		}
		for i := range rest {
			nextRest := make([]wifi.BSSID, 0, len(rest)-1)
			nextRest = append(nextRest, rest[:i]...)
			nextRest = append(nextRest, rest[i+1:]...)
			rec(append(prefix, rest[i]), nextRest)
		}
	}
	rec(nil, g)
	return out
}

// tieGroups partitions the scan's readings into rank groups whose members
// are pairwise chained within margin dB of each other, strongest group
// first. With margin 0 this reduces to Scan.Ties().
func tieGroups(scan wifi.Scan, margin int) [][]wifi.BSSID {
	rs := make([]wifi.Reading, len(scan.Readings))
	copy(rs, scan.Readings)
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].RSSI != rs[j].RSSI {
			return rs[i].RSSI > rs[j].RSSI
		}
		return rs[i].BSSID < rs[j].BSSID
	})
	var out [][]wifi.BSSID
	for i := 0; i < len(rs); {
		j := i
		group := []wifi.BSSID{rs[i].BSSID}
		for j+1 < len(rs) && rs[j].RSSI-rs[j+1].RSSI <= margin {
			j++
			group = append(group, rs[j].BSSID)
		}
		out = append(out, group)
		i = j + 1
	}
	return out
}

// refineTieBoundaries applies the paper's equal-rank rule: when a
// tie-variant candidate's run is adjacent to the deterministic candidate's
// run, the (near-)equal ranks mean the bus is at their common boundary —
// both candidates are snapped onto it.
func refineTieBoundaries(cands []candidate) {
	for i := range cands {
		if cands[i].method != MethodTie {
			continue
		}
		for j := range cands {
			if cands[j].method != MethodExact {
				continue
			}
			const eps = 1e-6
			switch {
			case abs(cands[i].run.S1-cands[j].run.S0) < eps:
				cands[i].arc = cands[i].run.S1
				cands[j].arc = cands[i].run.S1
			case abs(cands[i].run.S0-cands[j].run.S1) < eps:
				cands[i].arc = cands[i].run.S0
				cands[j].arc = cands[i].run.S0
			}
		}
	}
}

// pickCandidate applies the mobility constraint: prefer candidates inside
// the feasible window closest to the expected position; without a prior,
// prefer the longest (a-priori most likely) run at the highest order.
func pickCandidate(cands []candidate, prior *Prior) candidate {
	best := cands[0]
	bestScore := score(cands[0], prior)
	for _, c := range cands[1:] {
		if s := score(c, prior); s < bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// score is lower for better candidates.
func score(c candidate, prior *Prior) float64 {
	// Confidence ordering between methods: exact < tie < reduced < neighbor.
	base := float64(c.method-1) * 1e4
	// Higher order is finer.
	base -= float64(c.order) * 10
	if prior == nil {
		// Longer runs are a-priori more likely to contain the bus.
		return base - c.run.Len()
	}
	d := abs(c.arc - prior.ExpectedArc)
	if c.arc < prior.MinArc || c.arc > prior.MaxArc {
		// Outside the feasible window: heavily penalised but not excluded,
		// so a completely stale prior cannot strand the tracker.
		d += 1e6 + distToWindow(c.arc, prior)
	}
	return base + d
}

func distToWindow(arc float64, prior *Prior) float64 {
	if arc < prior.MinArc {
		return prior.MinArc - arc
	}
	if arc > prior.MaxArc {
		return arc - prior.MaxArc
	}
	return 0
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
