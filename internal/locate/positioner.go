// Package locate implements SVD-based bus positioning (Section III-B of the
// WiLocator paper) and per-bus tracking.
//
// A Positioner turns one WiFi scan into a position estimate on a known bus
// route by looking the scan's RSS rank vector up in the Signal Voronoi
// Diagram and applying the paper's rules: the route mobility constraint,
// tie handling (equal ranks pin the bus to a tile boundary), order reduction
// when the full rank vector matches no tile (noise or AP dynamics), and the
// longest-boundary neighbour fallback for tiles that do not intersect the
// route. A Tracker strings estimates into a trajectory (Definition 6),
// enforces forward progress, and interpolates the instants at which the bus
// crossed road-segment boundaries (Fig. 5) — the raw material of travel-time
// estimation.
package locate

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wilocator/internal/geo"
	"wilocator/internal/svd"
	"wilocator/internal/wifi"
)

// Method records how an estimate was obtained, mirroring the paper's rule
// cascade.
type Method int

// Estimation methods, in decreasing order of confidence.
const (
	// MethodExact: the full-order rank key matched a tile intersecting the
	// route.
	MethodExact Method = iota + 1
	// MethodTie: equal top ranks placed the bus on a tile boundary.
	MethodTie
	// MethodReduced: a lower-order prefix key was used (noisy tail ranks or
	// AP dynamics).
	MethodReduced
	// MethodNeighbor: the scan's tile does not intersect the route; the
	// neighbouring tile with the longest shared boundary was used.
	MethodNeighbor
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodExact:
		return "exact"
	case MethodTie:
		return "tie"
	case MethodReduced:
		return "reduced"
	case MethodNeighbor:
		return "neighbor"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ErrNoFix is returned when a scan contains no usable readings (no known
// active AP detected).
var ErrNoFix = errors.New("locate: no position fix from scan")

// Estimate is one position fix on a route.
type Estimate struct {
	RouteID string
	// Arc is the estimated arc length along the route, metres.
	Arc float64
	// Pos is the planar position of Arc on the route.
	Pos geo.Point
	// Key is the tile key that produced the fix.
	Key svd.TileKey
	// Order is the tile order actually used.
	Order int
	// Method records which rule produced the fix.
	Method Method
	// Time is the scan timestamp.
	Time time.Time
}

// Prior carries the mobility constraint from the previous fix.
type Prior struct {
	// Arc is the previous estimated arc length.
	Arc float64
	// ExpectedArc is where the tracker expects the bus now (previous arc
	// advanced by the smoothed speed).
	ExpectedArc float64
	// MinArc and MaxArc bound the feasible window.
	MinArc, MaxArc float64
}

// DefaultTieMargin is the RSS difference (dB) below which two readings are
// treated as rank-tied. The paper's tie rule pins equal ranks to the tile
// boundary; with integer dBm readings and multi-phone fusion, readings
// within a couple of dB are order-ambiguous and get the same treatment.
const DefaultTieMargin = 2

// Positioner locates buses on routes using a Signal Voronoi Diagram.
type Positioner struct {
	d     *svd.Diagram
	order int

	// TieMargin is the RSS difference (dB) treated as a rank tie. It may
	// be adjusted before first use; 0 restricts ties to exact equality.
	TieMargin int

	// pool recycles per-scan lookup buffers. One positioner serves every
	// bus concurrently, so scratch cannot live on the struct itself.
	pool sync.Pool

	// stats counts lookup outcomes. A small heap-allocated set of atomics:
	// the hot path pays one uncontended atomic add per Locate — no labels,
	// no map lookup, no allocation — and the set outlives the positioner,
	// so a diagram rebuild retires the positioner without resetting (or
	// losing in-flight increments to) the exported counters.
	stats *LookupStats
}

// LookupStats is a concurrently-updated set of lookup-outcome counters,
// shared between a Positioner and whoever exports its numbers. It keeps
// counting in-flight lookups even after the positioner is retired by a
// diagram rebuild, so cumulative accounting across generations never loses
// or double-counts an increment.
type LookupStats struct {
	exact    atomic.Uint64
	tie      atomic.Uint64
	reduced  atomic.Uint64
	neighbor atomic.Uint64
	noFix    atomic.Uint64
}

// LookupCounts is a point-in-time snapshot of a LookupStats.
type LookupCounts struct {
	Exact    uint64
	Tie      uint64
	Reduced  uint64
	Neighbor uint64
	NoFix    uint64
}

// Counts snapshots the counter set.
func (ls *LookupStats) Counts() LookupCounts {
	return LookupCounts{
		Exact:    ls.exact.Load(),
		Tie:      ls.tie.Load(),
		Reduced:  ls.reduced.Load(),
		Neighbor: ls.neighbor.Load(),
		NoFix:    ls.noFix.Load(),
	}
}

// Stats returns the positioner's live counter set. The reference stays valid
// (and keeps counting) after the positioner is replaced by a rebuild.
func (p *Positioner) Stats() *LookupStats { return p.stats }

// LookupCounts returns the positioner's cumulative lookup-outcome counts.
func (p *Positioner) LookupCounts() LookupCounts { return p.stats.Counts() }

// countMethod records which rule produced a fix.
func (ls *LookupStats) countMethod(m Method) {
	switch m {
	case MethodExact:
		ls.exact.Add(1)
	case MethodTie:
		ls.tie.Add(1)
	case MethodReduced:
		ls.reduced.Add(1)
	case MethodNeighbor:
		ls.neighbor.Add(1)
	}
}

// lookupScratch is the buffer set one Locate reuses: the filtered readings,
// the candidate tile keys and the candidate fixes. Everything Locate returns
// is copied out before the scratch goes back to the pool.
type lookupScratch struct {
	readings []wifi.Reading
	ids      []wifi.BSSID
	keys     []svd.TileKey
	cands    []candidate

	// Tie-enumeration buffers: the two ping-pong prefix arrays of the
	// breadth-wise expansion, the permutation index vector and the
	// materialised permutations of the current tie group.
	ordersA, ordersB []wifi.BSSID
	permIdx          []int
	permFlat         []wifi.BSSID
}

//wilint:hotpath
func (p *Positioner) getScratch() *lookupScratch {
	if sc, ok := p.pool.Get().(*lookupScratch); ok {
		return sc
	}
	return &lookupScratch{} //wilint:ignore hotpath pool warm-up: one allocation per scratch, then recycled
}

//wilint:hotpath
func (p *Positioner) putScratch(sc *lookupScratch) {
	p.pool.Put(sc)
}

// NewPositioner creates a positioner querying the diagram at the given tile
// order (1 <= order <= d.Order()).
func NewPositioner(d *svd.Diagram, order int) (*Positioner, error) {
	if d == nil {
		return nil, errors.New("locate: nil diagram")
	}
	if order < 1 || order > d.Order() {
		return nil, fmt.Errorf("locate: order %d outside [1, %d]", order, d.Order())
	}
	return &Positioner{d: d, order: order, TieMargin: DefaultTieMargin, stats: &LookupStats{}}, nil
}

// Order returns the tile order the positioner queries at.
func (p *Positioner) Order() int { return p.order }

// Diagram returns the underlying diagram.
func (p *Positioner) Diagram() *svd.Diagram { return p.d }

// candidate is one possible fix before prior-based selection.
type candidate struct {
	run    svd.Run
	arc    float64
	key    svd.TileKey
	order  int
	method Method
}

// Locate estimates the bus position on routeID from one scan. prior may be
// nil for the first fix of a trip.
//wilint:hotpath
func (p *Positioner) Locate(routeID string, scan wifi.Scan, prior *Prior) (Estimate, error) {
	route, ok := p.d.Network().Route(routeID)
	if !ok {
		//wilint:ignore hotpath error path: fmt boxes routeID only when the route does not exist
		return Estimate{}, fmt.Errorf("locate: unknown route %q", routeID)
	}
	//wilint:ignore hotpath getScratch's pool-miss warm-up inlines here; steady state reuses the scratch
	sc := p.getScratch()
	defer p.putScratch(sc)
	filtered := p.filterScanInto(scan, sc)
	if len(filtered.Readings) == 0 {
		p.stats.noFix.Add(1)
		return Estimate{}, fmt.Errorf("%w: no known active APs in scan", ErrNoFix)
	}

	cands := p.candidates(routeID, filtered, sc)
	if len(cands) == 0 {
		p.stats.noFix.Add(1)
		//wilint:ignore hotpath error path: fmt boxes routeID only when no tile matches
		return Estimate{}, fmt.Errorf("%w: rank vector matches no tile on route %q", ErrNoFix, routeID)
	}
	best := pickCandidate(cands, prior)
	p.stats.countMethod(best.method)
	return Estimate{
		RouteID: routeID,
		Arc:     best.arc,
		Pos:     route.PointAt(best.arc),
		Key:     best.key,
		Order:   best.order,
		Method:  best.method,
		Time:    scan.Time,
	}, nil
}

// filterScanInto keeps only readings from APs that are geo-tagged and active
// — the paper ignores readings from unknown APs during SVD positioning. The
// filtered readings live in sc and are overwritten by the next lookup.
//wilint:hotpath
func (p *Positioner) filterScanInto(scan wifi.Scan, sc *lookupScratch) wifi.Scan {
	sc.readings = sc.readings[:0]
	dep := p.d.Deployment()
	for _, r := range scan.Readings {
		if dep.Active(r.BSSID) {
			sc.readings = append(sc.readings, r)
		}
	}
	return wifi.Scan{Time: scan.Time, Readings: sc.readings}
}

// candidates runs the paper's rule cascade and returns every plausible fix.
// The returned slice aliases sc and is consumed before the scratch recycles.
//wilint:hotpath
func (p *Positioner) candidates(routeID string, scan wifi.Scan, sc *lookupScratch) []candidate {
	keys := p.scanKeys(scan, sc)
	if len(keys) == 0 {
		return nil
	}
	primary := keys[0]

	// Rule 1: exact (and tie-variant) keys at the working order.
	cands := sc.cands[:0]
	for i, key := range keys {
		for _, run := range p.d.FindRuns(routeID, key) {
			method := MethodExact
			if i > 0 {
				method = MethodTie
			}
			cands = append(cands, candidate{
				run: run, arc: p.arcInRun(key, run, routeID),
				key: key, order: key.Order(), method: method,
			})
		}
	}
	if len(cands) > 0 {
		// Tie refinement: if the deterministic key and a tie variant map to
		// adjacent runs, the equal ranks place the bus on their shared
		// boundary (the paper's points o/p in Fig. 2).
		refineTieBoundaries(cands)
		sc.cands = cands
		return cands
	}

	// Rule 2: longest-boundary neighbour — the scan's tile exists in the
	// signal space but does not intersect this route (paper's ST(b,e) case).
	if tile, ok := p.d.Tile(primary.Prefix(p.d.Order())); ok {
		for _, nb := range p.d.NeighborsByBoundary(tile.Key) {
			nbKey := nb.Prefix(p.order)
			runs := p.d.FindRuns(routeID, nbKey)
			if len(runs) == 0 {
				continue
			}
			for _, run := range runs {
				cands = append(cands, candidate{
					run: run, arc: p.arcInRun(nbKey, run, routeID),
					key: nbKey, order: nbKey.Order(), method: MethodNeighbor,
				})
			}
			sc.cands = cands
			return cands
		}
	}

	// Rule 3: order reduction — drop the noisiest (weakest) ranks until the
	// prefix matches somewhere on the route.
	for o := p.order - 1; o >= 1; o-- {
		key := primary.Prefix(o)
		for _, run := range p.d.FindRuns(routeID, key) {
			cands = append(cands, candidate{
				run: run, arc: p.arcInRun(key, run, routeID),
				key: key, order: o, method: MethodReduced,
			})
		}
		if len(cands) > 0 {
			sc.cands = cands
			return cands
		}
	}
	sc.cands = cands
	return nil
}

// arcInRun maps a run to a point estimate: the projection of the 2-D tile
// centroid onto the route, clamped into the run (Definition 5's Tile
// Mapping), or the run midpoint when no band geometry is available.
//wilint:hotpath
func (p *Positioner) arcInRun(key svd.TileKey, run svd.Run, routeID string) float64 {
	route, ok := p.d.Network().Route(routeID)
	if !ok {
		return run.Mid()
	}
	tile, ok := p.d.Tile(key)
	if !ok {
		return run.Mid()
	}
	s, _ := route.Project(tile.Centroid)
	if s < run.S0 {
		return run.S0
	}
	if s > run.S1 {
		return run.S1
	}
	return s
}

// scanKeys returns the candidate tile keys for the scan, deterministic rank
// key first. The common case — no (near-)ties among the top ranks — takes a
// fast path that builds exactly one key out of the scratch buffers; scans
// with tie groups fall back to the full permutation enumeration in tieKeys.
//wilint:hotpath
func (p *Positioner) scanKeys(scan wifi.Scan, sc *lookupScratch) []svd.TileKey {
	rs := scan.Readings // aliases sc.readings: ours to reorder in place
	sortReadings(rs)
	// The key enumeration only branches when a tie group touches one of the
	// first `order` rank slots, i.e. some gap up to slot order is <= margin.
	for i := 0; i < p.order && i+1 < len(rs); i++ {
		if rs[i].RSSI-rs[i+1].RSSI <= p.TieMargin {
			return p.appendTieKeys(rs, sc)
		}
	}
	n := p.order
	if n > len(rs) {
		n = len(rs)
	}
	sc.ids = sc.ids[:0]
	for i := 0; i < n; i++ {
		sc.ids = append(sc.ids, rs[i].BSSID)
	}
	key := svd.MakeKey(sc.ids, p.order)
	if key == "" {
		return nil
	}
	sc.keys = append(sc.keys[:0], key)
	return sc.keys
}

// sortReadings orders readings by descending RSSI, ties by ascending BSSID.
// Scans are small, so an insertion sort wins — and unlike sort.Slice it costs
// no per-call closure or reflection swapper.
//wilint:hotpath
func sortReadings(rs []wifi.Reading) {
	for i := 1; i < len(rs); i++ {
		r := rs[i]
		j := i
		for j > 0 && (r.RSSI > rs[j-1].RSSI || (r.RSSI == rs[j-1].RSSI && r.BSSID < rs[j-1].BSSID)) {
			rs[j] = rs[j-1]
			j--
		}
		rs[j] = r
	}
}

// appendTieKeys enumerates the tie-variant keys of the already-sorted
// readings into sc.keys. It reproduces tieKeys' output exactly — identity
// permutation first, then lexicographic, breadth-wise over the tie groups,
// capped at the same bound — but keeps every intermediate on the scratch.
//wilint:hotpath
func (p *Positioner) appendTieKeys(rs []wifi.Reading, sc *lookupScratch) []svd.TileKey {
	const maxKeys = 8
	cur, next := sc.ordersA[:0], sc.ordersB[:0]
	nCur, stride := 1, 0

	for lo := 0; lo < len(rs) && stride < p.order; {
		hi := lo
		for hi+1 < len(rs) && rs[hi].RSSI-rs[hi+1].RSSI <= p.TieMargin {
			hi++
		}
		gn := hi - lo + 1

		// Materialise up to maxKeys permutations of the group, identity
		// first then lexicographic — the order tieKeys' recursive generator
		// emits them in.
		idx := sc.permIdx[:0]
		for i := 0; i < gn; i++ {
			idx = append(idx, i)
		}
		sc.permIdx = idx
		pf := sc.permFlat[:0]
		nPerm := 0
		for {
			for _, j := range idx {
				pf = append(pf, rs[lo+j].BSSID)
			}
			nPerm++
			if nPerm >= maxKeys || !nextPermutation(idx) {
				break
			}
		}
		sc.permFlat = pf

		next = next[:0]
		nNext := 0
	expand:
		for pi := 0; pi < nCur; pi++ {
			prefix := cur[pi*stride : (pi+1)*stride]
			for q := 0; q < nPerm; q++ {
				next = append(next, prefix...)
				next = append(next, pf[q*gn:(q+1)*gn]...)
				nNext++
				if nNext >= maxKeys {
					break expand
				}
			}
		}
		cur, next = next, cur
		nCur, stride = nNext, stride+gn
		lo = hi + 1
	}
	sc.ordersA, sc.ordersB = cur, next

	k := p.order
	if k > stride {
		k = stride
	}
	sc.keys = sc.keys[:0]
	if k <= 0 {
		return sc.keys
	}
	// Orders sharing their first k BSSIDs yield the same key; dedupe on the
	// prefix so only distinct keys pay the MakeKey allocation.
outer:
	for pi := 0; pi < nCur; pi++ {
		o := cur[pi*stride : pi*stride+k]
		for qi := 0; qi < pi; qi++ {
			prev := cur[qi*stride : qi*stride+k]
			same := true
			for i := range o {
				if o[i] != prev[i] {
					same = false
					break
				}
			}
			if same {
				continue outer
			}
		}
		sc.keys = append(sc.keys, svd.MakeKey(o, k))
	}
	return sc.keys
}

// nextPermutation advances a to its lexicographic successor, reporting false
// from the final permutation.
//wilint:hotpath
func nextPermutation(a []int) bool {
	i := len(a) - 2
	for i >= 0 && a[i] >= a[i+1] {
		i--
	}
	if i < 0 {
		return false
	}
	j := len(a) - 1
	for a[j] <= a[i] {
		j--
	}
	a[i], a[j] = a[j], a[i]
	for l, r := i+1, len(a)-1; l < r; l, r = l+1, r-1 {
		a[l], a[r] = a[r], a[l]
	}
	return true
}

// tieKeys returns candidate keys of the given order: first the deterministic
// rank key, then variants obtained by permuting groups of (near-)equal RSS
// values. The result is capped to avoid combinatorial blow-ups in
// pathological scans.
func tieKeys(scan wifi.Scan, order, margin int) []svd.TileKey {
	groups := tieGroups(scan, margin)
	if len(groups) == 0 {
		return nil
	}
	const maxKeys = 8
	// Enumerate orderings of the first `order` slots that respect the tie
	// groups: within a group any order is allowed; across groups the RSS
	// order is fixed.
	orders := [][]wifi.BSSID{{}}
	for _, g := range groups {
		if len(orders[0]) >= order {
			break
		}
		var next [][]wifi.BSSID
		for _, prefix := range orders {
			for _, perm := range permutations(g, maxKeys) {
				combined := make([]wifi.BSSID, 0, len(prefix)+len(perm))
				combined = append(combined, prefix...)
				combined = append(combined, perm...)
				next = append(next, combined)
				if len(next) >= maxKeys {
					break
				}
			}
			if len(next) >= maxKeys {
				break
			}
		}
		orders = next
	}
	seen := make(map[svd.TileKey]bool, len(orders))
	out := make([]svd.TileKey, 0, len(orders))
	for _, o := range orders {
		key := svd.MakeKey(o, order)
		if key == "" || seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, key)
	}
	return out
}

// permutations returns up to limit permutations of g, starting with g's own
// (deterministic) order. Groups are tiny (readings sharing one integer dBm
// value), so a simple recursive enumeration is fine.
func permutations(g []wifi.BSSID, limit int) [][]wifi.BSSID {
	if len(g) == 1 {
		return [][]wifi.BSSID{g}
	}
	var out [][]wifi.BSSID
	var rec func(prefix, rest []wifi.BSSID)
	rec = func(prefix, rest []wifi.BSSID) {
		if len(out) >= limit {
			return
		}
		if len(rest) == 0 {
			cp := make([]wifi.BSSID, len(prefix))
			copy(cp, prefix)
			out = append(out, cp)
			return
		}
		for i := range rest {
			nextRest := make([]wifi.BSSID, 0, len(rest)-1)
			nextRest = append(nextRest, rest[:i]...)
			nextRest = append(nextRest, rest[i+1:]...)
			rec(append(prefix, rest[i]), nextRest)
		}
	}
	rec(nil, g)
	return out
}

// tieGroups partitions the scan's readings into rank groups whose members
// are pairwise chained within margin dB of each other, strongest group
// first. With margin 0 this reduces to Scan.Ties().
func tieGroups(scan wifi.Scan, margin int) [][]wifi.BSSID {
	rs := make([]wifi.Reading, len(scan.Readings))
	copy(rs, scan.Readings)
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].RSSI != rs[j].RSSI {
			return rs[i].RSSI > rs[j].RSSI
		}
		return rs[i].BSSID < rs[j].BSSID
	})
	var out [][]wifi.BSSID
	for i := 0; i < len(rs); {
		j := i
		group := []wifi.BSSID{rs[i].BSSID}
		for j+1 < len(rs) && rs[j].RSSI-rs[j+1].RSSI <= margin {
			j++
			group = append(group, rs[j].BSSID)
		}
		out = append(out, group)
		i = j + 1
	}
	return out
}

// refineTieBoundaries applies the paper's equal-rank rule: when a
// tie-variant candidate's run is adjacent to the deterministic candidate's
// run, the (near-)equal ranks mean the bus is at their common boundary —
// both candidates are snapped onto it.
//wilint:hotpath
func refineTieBoundaries(cands []candidate) {
	for i := range cands {
		if cands[i].method != MethodTie {
			continue
		}
		for j := range cands {
			if cands[j].method != MethodExact {
				continue
			}
			const eps = 1e-6
			switch {
			case abs(cands[i].run.S1-cands[j].run.S0) < eps:
				cands[i].arc = cands[i].run.S1
				cands[j].arc = cands[i].run.S1
			case abs(cands[i].run.S0-cands[j].run.S1) < eps:
				cands[i].arc = cands[i].run.S0
				cands[j].arc = cands[i].run.S0
			}
		}
	}
}

// pickCandidate applies the mobility constraint: prefer candidates inside
// the feasible window closest to the expected position; without a prior,
// prefer the longest (a-priori most likely) run at the highest order.
//wilint:hotpath
func pickCandidate(cands []candidate, prior *Prior) candidate {
	best := cands[0]
	bestScore := score(cands[0], prior)
	for _, c := range cands[1:] {
		if s := score(c, prior); s < bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// score is lower for better candidates.
//wilint:hotpath
func score(c candidate, prior *Prior) float64 {
	// Confidence ordering between methods: exact < tie < reduced < neighbor.
	base := float64(c.method-1) * 1e4
	// Higher order is finer.
	base -= float64(c.order) * 10
	if prior == nil {
		// Longer runs are a-priori more likely to contain the bus.
		return base - c.run.Len()
	}
	d := abs(c.arc - prior.ExpectedArc)
	if c.arc < prior.MinArc || c.arc > prior.MaxArc {
		// Outside the feasible window: heavily penalised but not excluded,
		// so a completely stale prior cannot strand the tracker.
		d += 1e6 + distToWindow(c.arc, prior)
	}
	return base + d
}

//wilint:hotpath
func distToWindow(arc float64, prior *Prior) float64 {
	if arc < prior.MinArc {
		return prior.MinArc - arc
	}
	if arc > prior.MaxArc {
		return arc - prior.MaxArc
	}
	return 0
}

//wilint:hotpath
func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
