package locate

import (
	"errors"
	"sort"
	"testing"
	"time"

	"wilocator/internal/rf"
	"wilocator/internal/roadnet"
	"wilocator/internal/svd"
	"wilocator/internal/wifi"
	"wilocator/internal/xrand"
)

var t0 = time.Date(2016, 3, 1, 8, 0, 0, 0, time.UTC)

// scenario bundles everything a positioning test needs.
type scenario struct {
	net    *roadnet.Network
	dep    *wifi.Deployment
	dia    *svd.Diagram
	route  *roadnet.Route
	sensor *wifi.Sensor
}

func newScenario(t *testing.T, roadLen float64, seed uint64, cfg svd.Config, noise rf.Noise) *scenario {
	t.Helper()
	net, err := roadnet.BuildCampus(roadLen)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := wifi.Deploy(net, wifi.DefaultDeploySpec(), xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	dia, err := svd.Build(net, dep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := rf.NewReceiver(cfg.Model, noise, xrand.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	sensor, err := wifi.NewSensor(dep, rx)
	if err != nil {
		t.Fatal(err)
	}
	return &scenario{net: net, dep: dep, dia: dia, route: net.Routes()[0], sensor: sensor}
}

func TestNewPositionerValidation(t *testing.T) {
	sc := newScenario(t, 200, 1, svd.Config{GridStep: -1}, rf.NoNoise)
	if _, err := NewPositioner(nil, 1); err == nil {
		t.Error("nil diagram accepted")
	}
	if _, err := NewPositioner(sc.dia, 0); err == nil {
		t.Error("order 0 accepted")
	}
	if _, err := NewPositioner(sc.dia, sc.dia.Order()+1); err == nil {
		t.Error("excessive order accepted")
	}
	p, err := NewPositioner(sc.dia, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Order() != 2 || p.Diagram() != sc.dia {
		t.Error("accessors wrong")
	}
}

func TestLocateNoiseFreeIsTight(t *testing.T) {
	sc := newScenario(t, 500, 2, svd.Config{}, rf.NoNoise)
	p, err := NewPositioner(sc.dia, 2)
	if err != nil {
		t.Fatal(err)
	}
	var errs []float64
	for s := 5.0; s < sc.route.Length(); s += 13 {
		scan := sc.sensor.ScanAt(sc.route.PointAt(s), t0)
		est, err := p.Locate(sc.route.ID(), scan, nil)
		if err != nil {
			t.Fatalf("Locate at %v: %v", s, err)
		}
		if est.RouteID != sc.route.ID() {
			t.Fatalf("estimate route = %q", est.RouteID)
		}
		errs = append(errs, abs(est.Arc-s))
	}
	sort.Float64s(errs)
	if med := errs[len(errs)/2]; med > 10 {
		t.Errorf("noise-free median positioning error %.1f m, want <= 10 m", med)
	}
}

func TestLocateNoisyMedianErrorSmall(t *testing.T) {
	sc := newScenario(t, 500, 3, svd.Config{}, rf.Noise{})
	p, err := NewPositioner(sc.dia, 2)
	if err != nil {
		t.Fatal(err)
	}
	var errs []float64
	for rep := 0; rep < 5; rep++ {
		for s := 5.0; s < sc.route.Length(); s += 11 {
			scan := sc.sensor.ScanAt(sc.route.PointAt(s), t0)
			est, err := p.Locate(sc.route.ID(), scan, nil)
			if err != nil {
				continue
			}
			errs = append(errs, abs(est.Arc-s))
		}
	}
	if len(errs) < 100 {
		t.Fatalf("only %d fixes", len(errs))
	}
	sort.Float64s(errs)
	if med := errs[len(errs)/2]; med > 15 {
		t.Errorf("noisy median positioning error %.1f m, want <= 15 m", med)
	}
}

func TestLocateErrors(t *testing.T) {
	sc := newScenario(t, 200, 4, svd.Config{GridStep: -1}, rf.NoNoise)
	p, err := NewPositioner(sc.dia, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Locate("nope", wifi.Scan{Time: t0}, nil); err == nil {
		t.Error("unknown route accepted")
	}
	_, err = p.Locate(sc.route.ID(), wifi.Scan{Time: t0}, nil)
	if !errors.Is(err, ErrNoFix) {
		t.Errorf("empty scan: err = %v, want ErrNoFix", err)
	}
	// A scan containing only unknown APs also yields no fix.
	scan := wifi.Scan{Time: t0, Readings: []wifi.Reading{{BSSID: "rogue", RSSI: -40}}}
	if _, err := p.Locate(sc.route.ID(), scan, nil); !errors.Is(err, ErrNoFix) {
		t.Errorf("unknown-AP scan: err = %v, want ErrNoFix", err)
	}
}

func TestLocateOrderReduction(t *testing.T) {
	sc := newScenario(t, 400, 5, svd.Config{GridStep: -1}, rf.NoNoise)
	p, err := NewPositioner(sc.dia, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Fabricate a scan whose order-2 key cannot exist: strongest AP from
	// one end of the road, second-strongest from the other end.
	aps := sc.dep.APs()
	far := aps[len(aps)-1]
	s := 30.0
	scan := sc.sensor.ScanAt(sc.route.PointAt(s), t0)
	if len(scan.Readings) < 2 {
		t.Fatal("scan too small")
	}
	// Replace the second reading with the far AP just below the top one.
	top := scan.RankOrder()[0]
	var topRSSI int
	for _, r := range scan.Readings {
		if r.BSSID == top {
			topRSSI = r.RSSI
		}
	}
	fab := wifi.Scan{Time: t0, Readings: []wifi.Reading{
		{BSSID: top, RSSI: topRSSI},
		{BSSID: far.BSSID, RSSI: topRSSI - 5},
	}}
	est, err := p.Locate(sc.route.ID(), fab, nil)
	if err != nil {
		t.Fatalf("Locate: %v", err)
	}
	if est.Method != MethodReduced || est.Order != 1 {
		t.Errorf("method = %v order %d, want reduced order 1", est.Method, est.Order)
	}
	if abs(est.Arc-s) > 60 {
		t.Errorf("reduced-order error %.1f m, want near cell of strongest AP", abs(est.Arc-s))
	}
}

func TestLocateTieHandling(t *testing.T) {
	sc := newScenario(t, 400, 6, svd.Config{GridStep: -1}, rf.NoNoise)
	p, err := NewPositioner(sc.dia, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Build a scan with the top two APs tied: take a noise-free scan and
	// force equality.
	s := 200.0
	scan := sc.sensor.ScanAt(sc.route.PointAt(s), t0)
	order := scan.RankOrder()
	if len(order) < 3 {
		t.Fatal("scan too small")
	}
	var readings []wifi.Reading
	for _, r := range scan.Readings {
		if r.BSSID == order[0] || r.BSSID == order[1] {
			r.RSSI = -55
		}
		readings = append(readings, r)
	}
	est, err := p.Locate(sc.route.ID(), wifi.Scan{Time: t0, Readings: readings}, nil)
	if err != nil {
		t.Fatalf("Locate: %v", err)
	}
	if abs(est.Arc-s) > 60 {
		t.Errorf("tie-case error %.1f m", abs(est.Arc-s))
	}
}

func TestLocateMobilityPriorDisambiguates(t *testing.T) {
	sc := newScenario(t, 600, 7, svd.Config{GridStep: -1}, rf.Noise{})
	p, err := NewPositioner(sc.dia, 2)
	if err != nil {
		t.Fatal(err)
	}
	// With a tight prior around the truth, the estimate must stay within
	// the window even under noise.
	s := 300.0
	prior := &Prior{Arc: s - 15, ExpectedArc: s, MinArc: s - 50, MaxArc: s + 50}
	for i := 0; i < 20; i++ {
		scan := sc.sensor.ScanAt(sc.route.PointAt(s), t0)
		est, err := p.Locate(sc.route.ID(), scan, prior)
		if err != nil {
			continue
		}
		if est.Arc < prior.MinArc-1 || est.Arc > prior.MaxArc+1 {
			t.Errorf("estimate %.1f escaped feasible window [%v, %v]", est.Arc, prior.MinArc, prior.MaxArc)
		}
	}
}

func TestMethodString(t *testing.T) {
	tests := []struct {
		m    Method
		want string
	}{
		{MethodExact, "exact"},
		{MethodTie, "tie"},
		{MethodReduced, "reduced"},
		{MethodNeighbor, "neighbor"},
		{Method(42), "Method(42)"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.m), got, tt.want)
		}
	}
}

// TestLocateNeighborFallback reproduces the paper's ST(b,e) case from
// Fig. 2: the scan's rank vector identifies a tile that exists in the
// 2-D signal space but does not intersect the bus's route; the positioner
// must fall back to the adjacent tile with the longest shared boundary.
func TestLocateNeighborFallback(t *testing.T) {
	sc := newScenario(t, 400, 8, svd.Config{GridStep: 2, BandWidth: 36}, rf.NoNoise)
	p, err := NewPositioner(sc.dia, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.TieMargin = 0 // isolate the neighbour rule from tie handling

	// Hunt the band for a full-order tile with no run on the route whose
	// boundary-ordered neighbours eventually do have one.
	route := sc.route
	var offRoadKey svd.TileKey
	for s := 1.0; s < route.Length(); s += 3 {
		for _, lateral := range []float64{24, 30, -24, -30} {
			pt := route.PointAt(s)
			probe := pt
			probe.Y += lateral
			key := sc.dia.KeyAt(probe, 2)
			if key.Order() != 2 || len(sc.dia.FindRuns(route.ID(), key)) != 0 {
				continue
			}
			if _, ok := sc.dia.Tile(key); !ok {
				continue
			}
			for _, nb := range sc.dia.NeighborsByBoundary(key) {
				if len(sc.dia.FindRuns(route.ID(), nb.Prefix(2))) > 0 {
					offRoadKey = key
					break
				}
			}
			if offRoadKey != "" {
				break
			}
		}
		if offRoadKey != "" {
			break
		}
	}
	if offRoadKey == "" {
		t.Skip("no off-road tile with an on-road neighbour in this scenario")
	}

	// Fabricate a clean scan whose rank order is exactly the off-road key.
	bssids := offRoadKey.BSSIDs()
	scan := wifi.Scan{Time: t0}
	for i, b := range bssids {
		scan.Readings = append(scan.Readings, wifi.Reading{BSSID: b, RSSI: -50 - 10*i})
	}
	est, err := p.Locate(route.ID(), scan, nil)
	if err != nil {
		t.Fatalf("Locate: %v", err)
	}
	if est.Method != MethodNeighbor {
		t.Errorf("method = %v, want neighbor", est.Method)
	}
	if est.Arc < 0 || est.Arc > route.Length() {
		t.Errorf("estimate %v off the route", est.Arc)
	}
}
