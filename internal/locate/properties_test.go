package locate

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"wilocator/internal/svd"
	"wilocator/internal/wifi"
)

// scanGen generates scans with unique BSSIDs over a small pool so that
// margin ties occur often.
type scanGen struct{ Scan wifi.Scan }

// Generate implements quick.Generator.
func (scanGen) Generate(r *rand.Rand, _ int) reflect.Value {
	n := r.Intn(10)
	seen := make(map[wifi.BSSID]bool)
	s := wifi.Scan{}
	for i := 0; i < n; i++ {
		b := wifi.BSSID("ap-" + string(rune('a'+r.Intn(15))))
		if seen[b] {
			continue
		}
		seen[b] = true
		s.Readings = append(s.Readings, wifi.Reading{BSSID: b, RSSI: -40 - r.Intn(40)})
	}
	return reflect.ValueOf(scanGen{Scan: s})
}

// TestTieGroupsFlattenToRankOrder: for any margin, flattening tieGroups
// yields the scan's deterministic rank order.
func TestTieGroupsFlattenToRankOrder(t *testing.T) {
	f := func(g scanGen, rawMargin uint8) bool {
		margin := int(rawMargin % 6)
		var flat []wifi.BSSID
		for _, group := range tieGroups(g.Scan, margin) {
			flat = append(flat, group...)
		}
		order := g.Scan.RankOrder()
		if len(flat) != len(order) {
			return false
		}
		for i := range flat {
			if flat[i] != order[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTieGroupsChainWithinMargin: inside a group, consecutive readings
// differ by at most the margin; across group boundaries they differ by more.
func TestTieGroupsChainWithinMargin(t *testing.T) {
	f := func(g scanGen, rawMargin uint8) bool {
		margin := int(rawMargin % 6)
		rssOf := make(map[wifi.BSSID]int, len(g.Scan.Readings))
		for _, r := range g.Scan.Readings {
			rssOf[r.BSSID] = r.RSSI
		}
		groups := tieGroups(g.Scan, margin)
		for gi, group := range groups {
			for i := 1; i < len(group); i++ {
				if rssOf[group[i-1]]-rssOf[group[i]] > margin {
					return false
				}
			}
			if gi > 0 {
				prev := groups[gi-1]
				if rssOf[prev[len(prev)-1]]-rssOf[group[0]] <= margin {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTieKeysFirstIsDeterministic: the first candidate key is always the
// deterministic rank-order key, variants never duplicate, and the set is
// capped.
func TestTieKeysFirstIsDeterministic(t *testing.T) {
	f := func(g scanGen, rawOrder, rawMargin uint8) bool {
		order := 1 + int(rawOrder%4)
		margin := int(rawMargin % 4)
		keys := tieKeys(g.Scan, order, margin)
		if len(g.Scan.Readings) == 0 {
			return len(keys) == 0
		}
		if len(keys) == 0 || len(keys) > 8 {
			return false
		}
		if keys[0] != svd.MakeKey(g.Scan.RankOrder(), order) {
			return false
		}
		seen := make(map[svd.TileKey]bool, len(keys))
		for _, k := range keys {
			if seen[k] {
				return false
			}
			seen[k] = true
			if k.Order() > order {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPermutationsCapAndUniqueness exercises the tie-permutation helper
// directly on growing groups.
func TestPermutationsCapAndUniqueness(t *testing.T) {
	group := []wifi.BSSID{"a", "b", "c", "d", "e"}
	for n := 1; n <= len(group); n++ {
		perms := permutations(group[:n], 8)
		want := factorial(n)
		if want > 8 {
			want = 8
		}
		if len(perms) != want {
			t.Fatalf("n=%d: %d permutations, want %d", n, len(perms), want)
		}
		seen := make(map[string]bool, len(perms))
		for _, p := range perms {
			key := ""
			for _, b := range p {
				key += string(b) + "|"
			}
			if seen[key] {
				t.Fatalf("n=%d: duplicate permutation %v", n, p)
			}
			seen[key] = true
		}
	}
}

func factorial(n int) int {
	out := 1
	for i := 2; i <= n; i++ {
		out *= i
	}
	return out
}

// TestScanKeysMatchesTieKeys: the scratch-reusing scanKeys (insertion sort,
// no-tie fast path, in-place tie enumeration) emits exactly the key list the
// reference tieKeys implementation produces, for any scan, order and margin.
func TestScanKeysMatchesTieKeys(t *testing.T) {
	f := func(g scanGen, order, margin uint8) bool {
		o := int(order)%3 + 1
		m := int(margin) % 4
		p := &Positioner{order: o, TieMargin: m}
		sc := &lookupScratch{}

		want := tieKeys(g.Scan, o, m)

		sc.readings = append(sc.readings[:0], g.Scan.Readings...)
		got := p.scanKeys(wifi.Scan{Readings: sc.readings}, sc)
		if len(got) != len(want) {
			t.Logf("scan=%v o=%d m=%d: got %v want %v", g.Scan.Readings, o, m, got, want)
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				t.Logf("scan=%v o=%d m=%d: got %v want %v", g.Scan.Readings, o, m, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestScanKeysScratchReuse: repeated lookups through one scratch keep
// producing correct keys (stale state from a previous, larger scan must not
// leak into the next).
func TestScanKeysScratchReuse(t *testing.T) {
	p := &Positioner{order: 2, TieMargin: 2}
	sc := &lookupScratch{}
	scans := []wifi.Scan{
		{Readings: []wifi.Reading{{BSSID: "ap-a", RSSI: -40}, {BSSID: "ap-b", RSSI: -41}, {BSSID: "ap-c", RSSI: -41}, {BSSID: "ap-d", RSSI: -60}}},
		{Readings: []wifi.Reading{{BSSID: "ap-x", RSSI: -50}}},
		{Readings: []wifi.Reading{{BSSID: "ap-b", RSSI: -45}, {BSSID: "ap-a", RSSI: -70}}},
		{},
	}
	for round := 0; round < 3; round++ {
		for _, s := range scans {
			want := tieKeys(s, 2, 2)
			got := p.scanKeys(wifi.Scan{Time: s.Time, Readings: append(sc.readings[:0], s.Readings...)}, sc)
			if len(got) != len(want) {
				t.Fatalf("round %d scan %v: got %v want %v", round, s.Readings, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("round %d scan %v: got %v want %v", round, s.Readings, got, want)
				}
			}
		}
	}
}
