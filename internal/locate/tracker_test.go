package locate

import (
	"math"
	"sort"
	"testing"
	"time"

	"wilocator/internal/geo"
	"wilocator/internal/rf"
	"wilocator/internal/roadnet"
	"wilocator/internal/svd"
	"wilocator/internal/wifi"
	"wilocator/internal/xrand"
)

// multiSegScenario builds a 3-segment straight road (200 m each) with APs.
func multiSegScenario(t *testing.T, seed uint64) *scenario {
	t.Helper()
	g := roadnet.NewGraph()
	var nodes []roadnet.NodeID
	for i := 0; i <= 3; i++ {
		nodes = append(nodes, g.AddNode(geo.Pt(float64(i)*200, 0), "n"))
	}
	var segs []roadnet.SegmentID
	for i := 0; i < 3; i++ {
		id, err := g.AddSegment(nodes[i], nodes[i+1], "seg", 12, true)
		if err != nil {
			t.Fatal(err)
		}
		segs = append(segs, id)
	}
	route, err := roadnet.NewRoute(g, "m", "MultiSeg", roadnet.ClassOrdinary, segs)
	if err != nil {
		t.Fatal(err)
	}
	if err := route.PlaceStopsEvenly(4); err != nil {
		t.Fatal(err)
	}
	net := roadnet.NewNetwork(g)
	if err := net.AddRoute(route); err != nil {
		t.Fatal(err)
	}
	dep, err := wifi.Deploy(net, wifi.DefaultDeploySpec(), xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	dia, err := svd.Build(net, dep, svd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rx, err := rf.NewReceiver(rf.LogDistance{}, rf.Noise{}, xrand.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	sensor, err := wifi.NewSensor(dep, rx)
	if err != nil {
		t.Fatal(err)
	}
	return &scenario{net: net, dep: dep, dia: dia, route: route, sensor: sensor}
}

func newTracker(t *testing.T, sc *scenario) *Tracker {
	t.Helper()
	p, err := NewPositioner(sc.dia, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTracker(p, sc.route.ID(), TrackerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewTrackerValidation(t *testing.T) {
	sc := multiSegScenario(t, 1)
	p, err := NewPositioner(sc.dia, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTracker(nil, "m", TrackerConfig{}); err == nil {
		t.Error("nil positioner accepted")
	}
	if _, err := NewTracker(p, "nope", TrackerConfig{}); err == nil {
		t.Error("unknown route accepted")
	}
}

// driveAndTrack moves a simulated bus at constant speed, scanning every
// period, and returns ground-truth arcs alongside estimates.
func driveAndTrack(t *testing.T, sc *scenario, tr *Tracker, speed float64, period time.Duration) (truth, est []float64, crossings []Crossing) {
	t.Helper()
	now := t0
	for s := 0.0; s < sc.route.Length(); s += speed * period.Seconds() {
		scan := sc.sensor.ScanAt(sc.route.PointAt(s), now)
		e, cs, err := tr.Observe(scan)
		if err == nil {
			truth = append(truth, s)
			est = append(est, e.Arc)
			crossings = append(crossings, cs...)
		}
		now = now.Add(period)
	}
	return truth, est, crossings
}

func TestTrackerFollowsBus(t *testing.T) {
	sc := multiSegScenario(t, 2)
	tr := newTracker(t, sc)
	truth, est, _ := driveAndTrack(t, sc, tr, 8, 10*time.Second)
	if len(est) < 5 {
		t.Fatalf("only %d fixes", len(est))
	}
	var errs []float64
	for i := range truth {
		errs = append(errs, math.Abs(truth[i]-est[i]))
	}
	sort.Float64s(errs)
	// A single phone with 4 dB shadowing; the paper's ~3 m median needs the
	// multi-rider scan fusion implemented in package sensing.
	if med := errs[len(errs)/2]; med > 20 {
		t.Errorf("tracked median error %.1f m, want <= 20 m", med)
	}
	// Forward progress: estimates never regress.
	for i := 1; i < len(est); i++ {
		if est[i] < est[i-1]-1e-9 {
			t.Fatalf("estimate regressed: %v -> %v", est[i-1], est[i])
		}
	}
	if sp, ok := tr.Speed(); !ok || math.Abs(sp-8) > 3 {
		t.Errorf("speed estimate = %v, want ~8 m/s", sp)
	}
	if arc, ok := tr.Arc(); !ok || arc < sc.route.Length()*0.8 {
		t.Errorf("final arc = %v", arc)
	}
	if got := len(tr.Trajectory()); got != len(est) {
		t.Errorf("trajectory has %d points, want %d", got, len(est))
	}
}

func TestTrackerCrossings(t *testing.T) {
	sc := multiSegScenario(t, 3)
	tr := newTracker(t, sc)
	const speed = 10.0
	_, _, crossings := driveAndTrack(t, sc, tr, speed, 10*time.Second)

	// The bus passes two interior boundaries (at 200 m and 400 m) and may
	// or may not emit the terminal one depending on the last fix.
	if len(crossings) < 2 {
		t.Fatalf("crossings = %v", crossings)
	}
	for i, c := range crossings[:2] {
		wantArc := float64(i+1) * 200
		if math.Abs(c.Arc-wantArc) > 1e-9 {
			t.Errorf("crossing %d at arc %v, want %v", i, c.Arc, wantArc)
		}
		if c.SegIndex != i+1 {
			t.Errorf("crossing %d segIndex = %d, want %d", i, c.SegIndex, i+1)
		}
		// At 10 m/s the bus hits arc 200 at t0+20 s; interpolation plus
		// positioning noise should stay within one scan period.
		wantAt := t0.Add(time.Duration(wantArc/speed) * time.Second)
		if d := c.At.Sub(wantAt); d < -12*time.Second || d > 12*time.Second {
			t.Errorf("crossing %d at %v, want %v +/- 12 s", i, c.At, wantAt)
		}
	}
	// Crossings are time-ordered.
	for i := 1; i < len(crossings); i++ {
		if crossings[i].At.Before(crossings[i-1].At) {
			t.Fatal("crossings out of order")
		}
	}
}

func TestTrackerRejectsTimeTravel(t *testing.T) {
	sc := multiSegScenario(t, 4)
	tr := newTracker(t, sc)
	scan := sc.sensor.ScanAt(sc.route.PointAt(10), t0)
	if _, _, err := tr.Observe(scan); err != nil {
		t.Fatal(err)
	}
	old := sc.sensor.ScanAt(sc.route.PointAt(20), t0.Add(-time.Minute))
	if _, _, err := tr.Observe(old); err == nil {
		t.Error("out-of-order scan accepted")
	}
}

func TestTrackerSkipsEmptyScans(t *testing.T) {
	sc := multiSegScenario(t, 5)
	tr := newTracker(t, sc)
	scan := sc.sensor.ScanAt(sc.route.PointAt(10), t0)
	if _, _, err := tr.Observe(scan); err != nil {
		t.Fatal(err)
	}
	before, _ := tr.Arc()
	if _, _, err := tr.Observe(wifi.Scan{Time: t0.Add(10 * time.Second)}); err == nil {
		t.Error("empty scan produced a fix")
	}
	after, ok := tr.Arc()
	if !ok || after != before {
		t.Error("failed scan mutated tracker state")
	}
}

func TestCrossingInterpolationExact(t *testing.T) {
	// Direct unit test of interpolateCrossings via a crafted tracker.
	sc := multiSegScenario(t, 6)
	tr := newTracker(t, sc)
	a := &Estimate{Arc: 150, Time: t0}
	b := &Estimate{Arc: 450, Time: t0.Add(60 * time.Second)}
	cs := tr.interpolateCrossings(a, b)
	if len(cs) != 2 {
		t.Fatalf("crossings = %v", cs)
	}
	// Boundary 200: frac = 50/300 -> t0+10s. Boundary 400: frac 250/300 -> t0+50s.
	if !cs[0].At.Equal(t0.Add(10 * time.Second)) {
		t.Errorf("first crossing at %v", cs[0].At)
	}
	if !cs[1].At.Equal(t0.Add(50 * time.Second)) {
		t.Errorf("second crossing at %v", cs[1].At)
	}
	if cs[0].SegIndex != 1 || cs[1].SegIndex != 2 {
		t.Errorf("seg indices = %d, %d", cs[0].SegIndex, cs[1].SegIndex)
	}
	if got := tr.interpolateCrossings(b, a); got != nil {
		t.Errorf("backward interpolation = %v", got)
	}
}
