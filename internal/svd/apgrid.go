package svd

import (
	"math"
	"sort"

	"wilocator/internal/geo"
	"wilocator/internal/rf"
	"wilocator/internal/wifi"
)

// Metric selects how the diagram ranks APs at a point.
type Metric int

// Supported metrics.
const (
	// MetricRSS ranks by descending expected RSS — the Signal Voronoi
	// Diagram of the paper.
	MetricRSS Metric = iota + 1
	// MetricEuclidean ranks by ascending Euclidean distance to the AP
	// geo-tag — the conventional Voronoi diagram, which the paper notes is
	// the special case of the SVD with homogeneous AP parameters. Used for
	// the ablation.
	MetricEuclidean
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case MetricRSS:
		return "rss"
	case MetricEuclidean:
		return "euclidean"
	default:
		return "unknown"
	}
}

// ranked is an AP with its metric value at a query point.
type ranked struct {
	bssid wifi.BSSID
	rss   float64 // expected RSS for MetricRSS; -distance for MetricEuclidean
}

// apGrid is a uniform spatial hash over active APs supporting "all APs
// within detection range of p" queries in O(1) buckets.
type apGrid struct {
	cell    float64
	model   rf.LogDistance
	metric  Metric
	maxRng  float64
	buckets map[[2]int][]*wifi.AP
}

func newAPGrid(aps []*wifi.AP, model rf.LogDistance, metric Metric) *apGrid {
	maxRng := 0.0
	for _, ap := range aps {
		if r := model.Range(ap.RefRSS, ap.PathLossExp); r > maxRng {
			maxRng = r
		}
	}
	if maxRng <= 0 {
		maxRng = 1
	}
	g := &apGrid{
		cell:    maxRng,
		model:   model,
		metric:  metric,
		maxRng:  maxRng,
		buckets: make(map[[2]int][]*wifi.AP),
	}
	for _, ap := range aps {
		k := g.bucket(ap.Pos)
		g.buckets[k] = append(g.buckets[k], ap)
	}
	return g
}

func (g *apGrid) bucket(p geo.Point) [2]int {
	return [2]int{int(math.Floor(p.X / g.cell)), int(math.Floor(p.Y / g.cell))}
}

// rankAt returns up to kmax APs detectable at p, ordered by the metric
// (strongest/nearest first). Ties in expected RSS are broken by BSSID so the
// order is deterministic.
func (g *apGrid) rankAt(p geo.Point, kmax int) []ranked {
	b := g.bucket(p)
	var cands []ranked
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for _, ap := range g.buckets[[2]int{b[0] + dx, b[1] + dy}] {
				d := p.Dist(ap.Pos)
				rss := g.model.ExpectedRSS(ap.RefRSS, ap.PathLossExp, d)
				if rss < g.model.Floor() {
					continue
				}
				v := rss
				if g.metric == MetricEuclidean {
					v = -d
				}
				cands = append(cands, ranked{bssid: ap.BSSID, rss: v})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].rss != cands[j].rss {
			return cands[i].rss > cands[j].rss
		}
		return cands[i].bssid < cands[j].bssid
	})
	if kmax > 0 && len(cands) > kmax {
		cands = cands[:kmax]
	}
	return cands
}

// orderAt returns the BSSIDs of rankAt.
func (g *apGrid) orderAt(p geo.Point, kmax int) []wifi.BSSID {
	r := g.rankAt(p, kmax)
	out := make([]wifi.BSSID, len(r))
	for i, c := range r {
		out[i] = c.bssid
	}
	return out
}
