package svd

import (
	"math"

	"wilocator/internal/geo"
	"wilocator/internal/rf"
	"wilocator/internal/wifi"
)

// Metric selects how the diagram ranks APs at a point.
type Metric int

// Supported metrics.
const (
	// MetricRSS ranks by descending expected RSS — the Signal Voronoi
	// Diagram of the paper.
	MetricRSS Metric = iota + 1
	// MetricEuclidean ranks by ascending Euclidean distance to the AP
	// geo-tag — the conventional Voronoi diagram, which the paper notes is
	// the special case of the SVD with homogeneous AP parameters. Used for
	// the ablation.
	MetricEuclidean
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case MetricRSS:
		return "rss"
	case MetricEuclidean:
		return "euclidean"
	default:
		return "unknown"
	}
}

// apGrid is a uniform spatial hash over active APs supporting "all APs
// within detection range of p" queries in O(1) buckets.
type apGrid struct {
	cell    float64
	model   rf.LogDistance
	metric  Metric
	maxRng  float64
	buckets map[[2]int][]*wifi.AP
}

func newAPGrid(aps []*wifi.AP, model rf.LogDistance, metric Metric) *apGrid {
	maxRng := 0.0
	for _, ap := range aps {
		if r := model.Range(ap.RefRSS, ap.PathLossExp); r > maxRng {
			maxRng = r
		}
	}
	if maxRng <= 0 {
		maxRng = 1
	}
	g := &apGrid{
		cell:    maxRng,
		model:   model,
		metric:  metric,
		maxRng:  maxRng,
		buckets: make(map[[2]int][]*wifi.AP),
	}
	for _, ap := range aps {
		k := g.bucket(ap.Pos)
		g.buckets[k] = append(g.buckets[k], ap)
	}
	return g
}

func (g *apGrid) bucket(p geo.Point) [2]int {
	return [2]int{int(math.Floor(p.X / g.cell)), int(math.Floor(p.Y / g.cell))}
}

// rankScratch is the reusable buffer pair behind orderInto. Build gives each
// worker its own, so ranking a point allocates nothing once the buffers have
// grown to the local AP density.
type rankScratch struct {
	ids []wifi.BSSID
	// score is the ranking key, NOT an RSS: under MetricSignal it is a dBm
	// value, under MetricEuclidean a negated distance in meters. The neutral
	// name keeps the units analyzer honest — don't rename it back to rss.
	score []float64
}

// orderInto returns the BSSIDs of up to kmax APs detectable at p, ordered by
// the metric (strongest/nearest first, metric ties broken by ascending BSSID
// — the same total order a full sort produces). kmax <= 0 returns every
// detectable AP. The result aliases sc.ids and is only valid until the next
// call with the same scratch. Candidates are insertion-ranked in place into
// the bounded top-kmax, which beats sorting the whole candidate set for the
// small k diagram construction needs (k == Config.Order, typically 2).
func (g *apGrid) orderInto(p geo.Point, kmax int, sc *rankScratch) []wifi.BSSID {
	b := g.bucket(p)
	bound := kmax
	if bound <= 0 {
		bound = int(^uint(0) >> 1)
	}
	n := 0 // ranked candidates currently held in sc.ids[:n] / sc.score[:n]
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for _, ap := range g.buckets[[2]int{b[0] + dx, b[1] + dy}] {
				d := p.Dist(ap.Pos)
				rss := g.model.ExpectedRSS(ap.RefRSS, ap.PathLossExp, d)
				if rss < g.model.Floor() {
					continue
				}
				v := rss
				if g.metric == MetricEuclidean {
					v = -d
				}
				// Walk left past every kept candidate this one outranks.
				i := n
				for i > 0 && (v > sc.score[i-1] || (v == sc.score[i-1] && ap.BSSID < sc.ids[i-1])) {
					i--
				}
				if i >= bound {
					continue
				}
				if n < bound {
					if n == len(sc.ids) {
						sc.ids = append(sc.ids, "")
						sc.score = append(sc.score, 0)
					}
					copy(sc.ids[i+1:n+1], sc.ids[i:n])
					copy(sc.score[i+1:n+1], sc.score[i:n])
					n++
				} else {
					// Full: the current worst falls off the end.
					copy(sc.ids[i+1:n], sc.ids[i:n-1])
					copy(sc.score[i+1:n], sc.score[i:n-1])
				}
				sc.ids[i] = ap.BSSID
				sc.score[i] = v
			}
		}
	}
	return sc.ids[:n]
}

// orderAt is orderInto with a one-shot scratch, for query-time callers that
// keep the result.
func (g *apGrid) orderAt(p geo.Point, kmax int) []wifi.BSSID {
	var sc rankScratch
	return g.orderInto(p, kmax, &sc)
}
