package svd

import (
	"math"
	"testing"

	"wilocator/internal/geo"
	"wilocator/internal/roadnet"
	"wilocator/internal/wifi"
	"wilocator/internal/xrand"
)

// testScenario builds a small campus road with an AP deployment.
func testScenario(t *testing.T, roadLen float64, spec wifi.DeploySpec, seed uint64) (*roadnet.Network, *wifi.Deployment) {
	t.Helper()
	net, err := roadnet.BuildCampus(roadLen)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := wifi.Deploy(net, spec, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net, dep
}

func buildDiagram(t *testing.T, net *roadnet.Network, dep *wifi.Deployment, cfg Config) *Diagram {
	t.Helper()
	d, err := Build(net, dep, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return d
}

func TestBuildValidation(t *testing.T) {
	net, dep := testScenario(t, 200, wifi.DefaultDeploySpec(), 1)
	if _, err := Build(nil, dep, Config{}); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := Build(net, nil, Config{}); err == nil {
		t.Error("nil deployment accepted")
	}
	for _, ap := range dep.APs() {
		if err := dep.Deactivate(ap.BSSID); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Build(net, dep, Config{}); err == nil {
		t.Error("empty deployment accepted")
	}
}

// TestRunsPartitionRoute checks runs at every order tile the route exactly:
// contiguous, gap-free, covering [0, Length].
func TestRunsPartitionRoute(t *testing.T) {
	net, dep := testScenario(t, 400, wifi.DefaultDeploySpec(), 2)
	d := buildDiagram(t, net, dep, Config{Order: 3, GridStep: -1})
	route := net.Routes()[0]
	for order := 1; order <= 3; order++ {
		runs, err := d.Runs(route.ID(), order)
		if err != nil {
			t.Fatal(err)
		}
		if len(runs) == 0 {
			t.Fatalf("order %d: no runs", order)
		}
		if runs[0].S0 != 0 {
			t.Errorf("order %d: first run starts at %v", order, runs[0].S0)
		}
		if math.Abs(runs[len(runs)-1].S1-route.Length()) > 1e-9 {
			t.Errorf("order %d: last run ends at %v, want %v", order, runs[len(runs)-1].S1, route.Length())
		}
		for i := 1; i < len(runs); i++ {
			if math.Abs(runs[i].S0-runs[i-1].S1) > 1e-9 {
				t.Errorf("order %d: gap between run %d and %d (%v vs %v)",
					order, i-1, i, runs[i-1].S1, runs[i].S0)
			}
			if runs[i].Key == runs[i-1].Key {
				t.Errorf("order %d: adjacent runs %d,%d share key %q", order, i-1, i, runs[i].Key)
			}
		}
	}
}

// TestProposition1 verifies that within each run's interior, the expected
// RSS rank order matches the run key (the defining property of a Signal
// Tile).
func TestProposition1(t *testing.T) {
	net, dep := testScenario(t, 400, wifi.DefaultDeploySpec(), 3)
	d := buildDiagram(t, net, dep, Config{Order: 2, GridStep: -1})
	route := net.Routes()[0]
	runs, err := d.Runs(route.ID(), 2)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, run := range runs {
		if run.Len() < 4 { // skip slivers whose interior is within a sample step of a boundary
			continue
		}
		p := route.PointAt(run.Mid())
		if got := d.KeyAt(p, 2); got != run.Key {
			t.Errorf("run [%v,%v]: key at midpoint = %q, want %q", run.S0, run.S1, got, run.Key)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d runs checked; scenario too small", checked)
	}
}

// TestHigherOrderRefines verifies Proposition 2's mechanism: order-k runs
// refine order-(k-1) runs, so there are at least as many of them and every
// higher-order run lies inside a lower-order run with the matching prefix.
func TestHigherOrderRefines(t *testing.T) {
	net, dep := testScenario(t, 400, wifi.DefaultDeploySpec(), 4)
	d := buildDiagram(t, net, dep, Config{Order: 3, GridStep: -1})
	route := net.Routes()[0]
	var counts [3]int
	for order := 1; order <= 3; order++ {
		runs, err := d.Runs(route.ID(), order)
		if err != nil {
			t.Fatal(err)
		}
		counts[order-1] = len(runs)
	}
	if counts[1] < counts[0] || counts[2] < counts[1] {
		t.Errorf("run counts not monotone in order: %v", counts)
	}
	// Every order-2 run's key prefix must match the order-1 run containing
	// its midpoint.
	runs2, _ := d.Runs(route.ID(), 2)
	for _, r2 := range runs2 {
		r1, err := d.RunAt(route.ID(), 1, r2.Mid())
		if err != nil {
			t.Fatal(err)
		}
		if r2.Key.Prefix(1) != r1.Key {
			t.Errorf("order-2 run %q at %v not inside order-1 run %q", r2.Key, r2.Mid(), r1.Key)
		}
	}
}

// TestMoreAPsShortenRuns verifies Proposition 3's mechanism: a denser
// deployment yields shorter (more precise) tiles along the road.
func TestMoreAPsShortenRuns(t *testing.T) {
	meanRunLen := func(seed uint64, spacing float64) float64 {
		spec := wifi.DefaultDeploySpec()
		spec.Spacing = spacing
		net, dep := testScenario(t, 1000, spec, seed)
		d := buildDiagram(t, net, dep, Config{Order: 2, GridStep: -1})
		runs, err := d.Runs(net.Routes()[0].ID(), 2)
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, r := range runs {
			total += r.Len()
		}
		return total / float64(len(runs))
	}
	sparse := meanRunLen(5, 80)
	dense := meanRunLen(5, 20)
	if dense >= sparse {
		t.Errorf("mean run length: dense %.2f m >= sparse %.2f m", dense, sparse)
	}
}

// TestEuclideanSpecialCase verifies the paper's claim that the conventional
// Voronoi diagram is the special case of the SVD with homogeneous AP
// parameters: order-1 keys agree between the two metrics everywhere.
func TestEuclideanSpecialCase(t *testing.T) {
	spec := wifi.DefaultDeploySpec()
	spec.RefRSSMin, spec.RefRSSMax = -30, -30
	spec.PathLossExpMin, spec.PathLossExpMax = 3, 3
	net, dep := testScenario(t, 500, spec, 6)
	rssD := buildDiagram(t, net, dep, Config{Order: 2, GridStep: -1})
	vdD := buildDiagram(t, net, dep, Config{Order: 2, GridStep: -1, Metric: MetricEuclidean})
	route := net.Routes()[0]
	for s := 1.0; s < route.Length(); s += 7 {
		p := route.PointAt(s)
		if a, b := rssD.KeyAt(p, 1), vdD.KeyAt(p, 1); a != b {
			t.Fatalf("at arc %v: SVD cell %q != VD cell %q under homogeneous params", s, a, b)
		}
	}
}

// TestHeterogeneousDiffersFromVD verifies the converse: with heterogeneous
// AP parameters the SVD and the Euclidean VD genuinely disagree somewhere.
func TestHeterogeneousDiffersFromVD(t *testing.T) {
	net, dep := testScenario(t, 500, wifi.DefaultDeploySpec(), 7)
	rssD := buildDiagram(t, net, dep, Config{Order: 1, GridStep: -1})
	vdD := buildDiagram(t, net, dep, Config{Order: 1, GridStep: -1, Metric: MetricEuclidean})
	route := net.Routes()[0]
	differ := 0
	for s := 1.0; s < route.Length(); s += 3 {
		p := route.PointAt(s)
		if rssD.KeyAt(p, 1) != vdD.KeyAt(p, 1) {
			differ++
		}
	}
	if differ == 0 {
		t.Error("SVD and VD identical despite heterogeneous AP parameters")
	}
}

func TestFindRunsAndRunAt(t *testing.T) {
	net, dep := testScenario(t, 400, wifi.DefaultDeploySpec(), 8)
	d := buildDiagram(t, net, dep, Config{Order: 2, GridStep: -1})
	route := net.Routes()[0]
	runs, _ := d.Runs(route.ID(), 2)
	for _, want := range []float64{0, 13.7, 200, route.Length()} {
		run, err := d.RunAt(route.ID(), 2, want)
		if err != nil {
			t.Fatal(err)
		}
		if !run.Contains(want) {
			t.Errorf("RunAt(%v) = [%v,%v] does not contain it", want, run.S0, run.S1)
		}
	}
	// FindRuns returns every occurrence of a key.
	seen := make(map[TileKey]int)
	for _, r := range runs {
		seen[r.Key]++
	}
	for key, n := range seen {
		found := d.FindRuns(route.ID(), key)
		if len(found) != n {
			t.Errorf("FindRuns(%q) = %d runs, want %d", key, len(found), n)
		}
		for _, f := range found {
			if f.Key != key {
				t.Errorf("FindRuns returned key %q", f.Key)
			}
		}
	}
	if got := d.FindRuns("no-such-route", "a|b"); got != nil {
		t.Errorf("unknown route FindRuns = %v", got)
	}
	if got := d.FindRuns(route.ID(), TileKey("")); got != nil {
		t.Errorf("empty key FindRuns = %v", got)
	}
	if _, err := d.Runs(route.ID(), 9); err == nil {
		t.Error("out-of-range order accepted")
	}
	if _, err := d.Runs("nope", 1); err == nil {
		t.Error("unknown route accepted")
	}
}

func TestBandGeometry(t *testing.T) {
	net, dep := testScenario(t, 300, wifi.DefaultDeploySpec(), 9)
	d := buildDiagram(t, net, dep, Config{Order: 2, GridStep: 3, BandWidth: 30})
	if d.NumTiles() == 0 || d.NumCells() == 0 {
		t.Fatalf("no band geometry: %d tiles, %d cells", d.NumTiles(), d.NumCells())
	}
	if d.NumTiles() < d.NumCells() {
		t.Errorf("tiles (%d) < cells (%d): order-2 must refine order-1", d.NumTiles(), d.NumCells())
	}
	if len(d.Joints()) == 0 {
		t.Error("no joint points found")
	}

	// Boundary symmetry and site consistency.
	for key := range d.tiles {
		tile, _ := d.Tile(key)
		for nb, l := range tile.Boundary {
			other, ok := d.Tile(nb)
			if !ok {
				t.Fatalf("tile %q has unknown neighbour %q", key, nb)
			}
			if math.Abs(other.Boundary[key]-l) > 1e-9 {
				t.Errorf("asymmetric boundary %q<->%q: %v vs %v", key, nb, l, other.Boundary[key])
			}
		}
		if _, ok := d.Cell(key.Site()); !ok {
			t.Errorf("tile %q has no cell for site %q", key, key.Site())
		}
	}

	// NeighborsByBoundary is sorted by decreasing shared length.
	for key := range d.tiles {
		nbs := d.NeighborsByBoundary(key)
		tile, _ := d.Tile(key)
		for i := 1; i < len(nbs); i++ {
			if tile.Boundary[nbs[i-1]] < tile.Boundary[nbs[i]] {
				t.Fatalf("NeighborsByBoundary(%q) unsorted", key)
			}
		}
	}
	if got := d.NeighborsByBoundary("no|pe"); got != nil {
		t.Errorf("unknown tile neighbours = %v", got)
	}
}

// TestCellCentroidNearSite checks each Signal Cell's centroid is closer to
// its own site than to almost any other site — a sanity check that the
// dominance regions are where they should be.
func TestCellCentroidNearSite(t *testing.T) {
	spec := wifi.DefaultDeploySpec()
	spec.RefRSSMin, spec.RefRSSMax = -30, -30
	spec.PathLossExpMin, spec.PathLossExpMax = 3, 3
	net, dep := testScenario(t, 300, spec, 10)
	d := buildDiagram(t, net, dep, Config{Order: 2, GridStep: 3, BandWidth: 30})
	bad := 0
	for site, cell := range d.cells {
		ap, _ := dep.AP(site)
		own := cell.Centroid.Dist(ap.Pos)
		for _, other := range dep.APs() {
			if other.BSSID != site && cell.Centroid.Dist(other.Pos) < own {
				bad++
				break
			}
		}
	}
	// Edge cells clipped by the band may be off; the bulk must hold.
	if bad > d.NumCells()/4 {
		t.Errorf("%d/%d cell centroids closer to a foreign site", bad, d.NumCells())
	}
}

// TestAPDynamicsRebuild reproduces Section III-B: deactivating an AP and
// rebuilding yields a coarser diagram whose keys never mention the dead AP.
func TestAPDynamicsRebuild(t *testing.T) {
	net, dep := testScenario(t, 300, wifi.DefaultDeploySpec(), 11)
	route := net.Routes()[0]
	before := buildDiagram(t, net, dep, Config{Order: 2, GridStep: -1})

	victim := dep.APs()[dep.NumAPs()/2].BSSID
	if err := dep.Deactivate(victim); err != nil {
		t.Fatal(err)
	}
	after := buildDiagram(t, net, dep, Config{Order: 2, GridStep: -1})

	runsB, _ := before.Runs(route.ID(), 2)
	runsA, _ := after.Runs(route.ID(), 2)
	for _, r := range runsA {
		for _, b := range r.Key.BSSIDs() {
			if b == victim {
				t.Fatalf("dead AP %q still present in key %q", victim, r.Key)
			}
		}
	}
	mentions := 0
	for _, r := range runsB {
		for _, b := range r.Key.BSSIDs() {
			if b == victim {
				mentions++
			}
		}
	}
	if mentions == 0 {
		t.Fatal("victim AP never appeared before deactivation; pick a better victim")
	}
}

func TestDiagramAccessors(t *testing.T) {
	net, dep := testScenario(t, 200, wifi.DefaultDeploySpec(), 12)
	d := buildDiagram(t, net, dep, Config{})
	if d.Order() != DefaultOrder {
		t.Errorf("Order = %d", d.Order())
	}
	if d.Metric() != MetricRSS {
		t.Errorf("Metric = %v", d.Metric())
	}
	if d.Network() != net || d.Deployment() != dep {
		t.Error("accessors wrong")
	}
	if got := d.RankAt(geo.Pt(100, 0), 3); len(got) == 0 {
		t.Error("RankAt found nothing mid-road")
	}
	if MetricRSS.String() != "rss" || MetricEuclidean.String() != "euclidean" || Metric(0).String() != "unknown" {
		t.Error("Metric.String wrong")
	}
}
