package svd

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"wilocator/internal/geo"
	"wilocator/internal/roadnet"
	"wilocator/internal/wifi"
)

// Build constructs the Signal Voronoi Diagram of the network's signal space
// under the given configuration. Only active APs of the deployment
// participate; after AP dynamics (deactivation/reactivation) call Build
// again — the paper's Section III-B observes that the partition simply
// coarsens around a vanished AP.
//
// Construction fans out across Config.Workers goroutines, but the result is
// byte-identical for every worker count: the expensive per-point signal-space
// queries are pure functions of the diagram inputs and are merged in a fixed
// order by a single goroutine. The wilint determinism analyzer guards every
// function reachable from Build (TestParallelBuildEquivalence depends on it).
//
//wilint:deterministic Build
func Build(net *roadnet.Network, dep *wifi.Deployment, cfg Config) (*Diagram, error) {
	if net == nil || dep == nil {
		return nil, fmt.Errorf("svd: nil network or deployment")
	}
	cfg = cfg.withDefaults()
	active := dep.ActiveAPs()
	if len(active) == 0 {
		return nil, fmt.Errorf("svd: deployment has no active APs")
	}

	d := &Diagram{
		cfg:   cfg,
		net:   net,
		dep:   dep,
		grid:  newAPGrid(active, cfg.Model, cfg.Metric),
		runs:  make([]map[string][]Run, cfg.Order),
		index: make([]map[string]map[TileKey][]int, cfg.Order),
		tiles: make(map[TileKey]*Tile),
		cells: make(map[wifi.BSSID]*Cell),
	}
	for o := 0; o < cfg.Order; o++ {
		d.runs[o] = make(map[string][]Run)
		d.index[o] = make(map[string]map[TileKey][]int)
	}

	b := &builder{d: d, intern: newInterner()}
	b.buildRuns()
	if cfg.GridStep > 0 {
		b.buildBand()
	}
	return d, nil
}

// builder carries the transient state of one Build: the bounded worker pool
// and the merge-side key interner. Workers never touch the Diagram's maps —
// they fill pre-sized, task-indexed slices — and a single goroutine merges
// the results in a fixed order, so parallel output is byte-identical to the
// Workers=1 build.
type builder struct {
	d      *Diagram
	intern *interner // merge-side table; only the merging goroutine touches it
}

// parallelDo runs fn(worker, task) for every task in [0, n) on up to
// Config.Workers goroutines. Tasks are claimed off a shared counter, so
// scheduling is dynamic; fn must write only to task-indexed slots so the
// output cannot depend on the schedule. The worker index lets fn reuse
// per-worker scratch without locking.
func (b *builder) parallelDo(n int, fn func(worker, task int)) {
	workers := b.d.cfg.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// sampleCount returns how many samples the arcs i*step, i = 0, 1, ... need
// to cover [0, length] with a final sample clamped to length exactly.
func sampleCount(length, step float64) int {
	k := int(math.Ceil(length / step))
	if float64(k)*step < length { // guard against Ceil landing short on odd floats
		k++
	}
	return k + 1
}

// runChunkSamples is the number of along-road samples per parallel task:
// small enough to load-balance a handful of routes across many cores, large
// enough that task-claim overhead vanishes under ~2k signal-space queries.
const runChunkSamples = 2048

// buildRuns samples every route at SampleStep resolution and records, for
// each order 1..cfg.Order, the maximal sub-segments with constant tile key.
//
// The worker pool computes the per-sample keys in fixed-size chunks (the key
// at arc i*step is a pure function of the diagram inputs, so any schedule
// yields the same rows); a sequential pass then folds each route's key rows
// into runs and the run index. Sample arcs are derived from the sample index
// (s = i*step) rather than accumulated, so run boundaries are bit-identical
// across platforms, step counts and chunkings.
func (b *builder) buildRuns() {
	d := b.d
	routes := d.net.Routes()
	order := d.cfg.Order
	step := d.cfg.SampleStep

	type routeSamples struct {
		route *roadnet.Route
		keys  [][]TileKey // [order-1][sample index]
	}
	type chunk struct {
		route  int
		lo, hi int // sample index range [lo, hi)
	}
	rs := make([]routeSamples, len(routes))
	var chunks []chunk
	for i, route := range routes {
		n := sampleCount(route.Length(), step)
		keys := make([][]TileKey, order)
		for o := range keys {
			keys[o] = make([]TileKey, n)
		}
		rs[i] = routeSamples{route: route, keys: keys}
		for lo := 0; lo < n; lo += runChunkSamples {
			hi := lo + runChunkSamples
			if hi > n {
				hi = n
			}
			chunks = append(chunks, chunk{route: i, lo: lo, hi: hi})
		}
	}

	scratch := make([]rankScratch, d.cfg.Workers)
	interns := make([]*interner, d.cfg.Workers)
	for w := range interns {
		interns[w] = newInterner()
	}
	b.parallelDo(len(chunks), func(w, t int) {
		c := chunks[t]
		r := &rs[c.route]
		length := r.route.Length()
		sc, in := &scratch[w], interns[w]
		for i := c.lo; i < c.hi; i++ {
			s := float64(i) * step
			if s > length {
				s = length
			}
			ranked := d.grid.orderInto(r.route.PointAt(s), order, sc)
			for o := 0; o < order; o++ {
				r.keys[o][i] = in.key(ranked, o+1)
			}
		}
	})

	// Deterministic merge in route order: fold key rows into runs, interning
	// every stored key into the build-wide table so identical keys share one
	// allocation across runs, the index, tiles and boundaries.
	for i := range rs {
		r := &rs[i]
		id := r.route.ID()
		length := r.route.Length()
		for o := 0; o < order; o++ {
			runs := foldRuns(r.keys[o], step, length, b.intern)
			d.runs[o][id] = runs
			idx := make(map[TileKey][]int, len(runs))
			for j := range runs {
				idx[runs[j].Key] = append(idx[runs[j].Key], j)
			}
			d.index[o][id] = idx
		}
	}
}

// foldRuns folds one key-per-sample row into maximal constant-key runs. A
// run closes at the midpoint between the two samples that disagree (the true
// tile boundary lies in between), clamped so runs never invert; the final
// run always closes at the route end.
func foldRuns(keys []TileKey, step, length float64, in *interner) []Run {
	runs := make([]Run, 0, 16)
	cur := in.canon(keys[0])
	start := 0.0
	for i := 1; i < len(keys); i++ {
		key := keys[i]
		if key == cur {
			continue
		}
		s := float64(i) * step
		if s > length {
			s = length
		}
		mid := s - step/2
		if mid < start {
			mid = start
		}
		runs = append(runs, Run{Key: cur, S0: start, S1: mid})
		cur, start = in.canon(key), mid
	}
	return append(runs, Run{Key: cur, S0: start, S1: length})
}

// bandStripeRows is the number of grid rows per parallel buildBand task.
const bandStripeRows = 8

// buildBand rasterises a band of half-width BandWidth around every road
// segment at GridStep resolution, assigning each grid point its full-order
// tile key, and aggregates tile/cell centroids, areas, adjacency boundary
// lengths and joint points.
//
// Three passes: (1) a sequential geometry-only sweep enumerates the band's
// distinct grid points in scan order; (2) the worker pool computes each
// point's key across row-stripes of the band grid (a pure function of the
// quantised coordinate); (3) a sequential merge walks the points in
// first-seen order to accumulate centroids, adjacency and joints. The old
// implementation iterated the dedup map in pass 3, which randomised the
// joint order between runs; the scan-order walk makes every Build — any
// worker count included — byte-identical.
func (b *builder) buildBand() {
	d := b.d
	step := d.cfg.GridStep
	nb := int(math.Round(d.cfg.BandWidth / step))

	seen := make(map[[2]int]int) // grid coordinate -> index into pts
	var pts [][2]int
	for _, seg := range d.net.Graph.Segments() {
		line := seg.Line
		length := line.Length()
		n := sampleCount(length, step)
		for i := 0; i < n; i++ {
			s := float64(i) * step
			if s > length {
				s = length
			}
			center := line.At(s)
			dir := line.DirectionAt(s)
			normal := geo.Pt(-dir.Y, dir.X)
			for j := -nb; j <= nb; j++ {
				p := center.Add(normal.Scale(float64(j) * step))
				q := [2]int{int(math.Round(p.X / step)), int(math.Round(p.Y / step))}
				if _, ok := seen[q]; ok {
					continue
				}
				seen[q] = len(pts)
				pts = append(pts, q)
			}
		}
	}

	// Row-stripes: group point indices by grid row, then hand each task a
	// contiguous range of rows so one task's queries share AP-grid locality.
	rowOf := make(map[int][]int)
	var rows []int
	for i, q := range pts {
		if _, ok := rowOf[q[1]]; !ok {
			rows = append(rows, q[1])
		}
		rowOf[q[1]] = append(rowOf[q[1]], i)
	}
	sort.Ints(rows)
	var stripes [][]int
	for lo := 0; lo < len(rows); lo += bandStripeRows {
		hi := lo + bandStripeRows
		if hi > len(rows) {
			hi = len(rows)
		}
		var idxs []int
		for _, row := range rows[lo:hi] {
			idxs = append(idxs, rowOf[row]...)
		}
		stripes = append(stripes, idxs)
	}

	keys := make([]TileKey, len(pts))
	scratch := make([]rankScratch, d.cfg.Workers)
	interns := make([]*interner, d.cfg.Workers)
	for w := range interns {
		interns[w] = newInterner()
	}
	b.parallelDo(len(stripes), func(w, t int) {
		sc, in := &scratch[w], interns[w]
		for _, i := range stripes[t] {
			q := pts[i]
			// Use the quantised point so the key is a pure function of the
			// grid coordinate.
			gp := geo.Pt(float64(q[0])*step, float64(q[1])*step)
			keys[i] = in.key(d.grid.orderInto(gp, d.cfg.Order, sc), d.cfg.Order)
		}
	})

	type acc struct {
		sumX, sumY float64
		n          int
	}
	tileAcc := make(map[TileKey]*acc)
	cellAcc := make(map[wifi.BSSID]*acc)
	for i, q := range pts {
		key := b.intern.canon(keys[i])
		keys[i] = key
		if key == "" {
			continue
		}
		gp := geo.Pt(float64(q[0])*step, float64(q[1])*step)
		ta := tileAcc[key]
		if ta == nil {
			ta = &acc{}
			tileAcc[key] = ta
		}
		ta.sumX += gp.X
		ta.sumY += gp.Y
		ta.n++
		site := key.Site()
		ca := cellAcc[site]
		if ca == nil {
			ca = &acc{}
			cellAcc[site] = ca
		}
		ca.sumX += gp.X
		ca.sumY += gp.Y
		ca.n++
	}

	//wilint:ignore determinism fills d.tiles keyed by the same key; per-entry writes are order-insensitive
	for key, a := range tileAcc {
		d.tiles[key] = &Tile{
			Key:      key,
			Centroid: geo.Pt(a.sumX/float64(a.n), a.sumY/float64(a.n)),
			Area:     float64(a.n) * step * step,
			Boundary: make(map[TileKey]float64),
		}
	}
	//wilint:ignore determinism fills d.cells keyed by the same site; per-entry writes are order-insensitive
	for site, a := range cellAcc {
		d.cells[site] = &Cell{
			Site:      site,
			Centroid:  geo.Pt(a.sumX/float64(a.n), a.sumY/float64(a.n)),
			Area:      float64(a.n) * step * step,
			Neighbors: make(map[wifi.BSSID]float64),
		}
	}

	// Adjacency and joints from 4-neighbourhoods, in scan order.
	addBoundary := func(a, b TileKey) {
		if a == "" || b == "" || a == b {
			return
		}
		d.tiles[a].Boundary[b] += step
		d.tiles[b].Boundary[a] += step
		sa, sb := a.Site(), b.Site()
		if sa != sb {
			d.cells[sa].Neighbors[sb] += step
			d.cells[sb].Neighbors[sa] += step
		}
	}
	for i, q := range pts {
		key := keys[i]
		right := [2]int{q[0] + 1, q[1]}
		up := [2]int{q[0], q[1] + 1}
		if j, ok := seen[right]; ok {
			addBoundary(key, keys[j])
		}
		if j, ok := seen[up]; ok {
			addBoundary(key, keys[j])
		}
		if key == "" {
			continue
		}
		// Joint point: three or more distinct cells meet around this point.
		sites := map[wifi.BSSID]bool{key.Site(): true}
		for _, nbq := range [][2]int{right, up, {q[0] - 1, q[1]}, {q[0], q[1] - 1}} {
			if j, ok := seen[nbq]; ok && keys[j] != "" {
				sites[keys[j].Site()] = true
			}
		}
		if len(sites) >= 3 {
			d.joints = append(d.joints, geo.Pt(float64(q[0])*step, float64(q[1])*step))
		}
	}
}
