package svd

import (
	"fmt"
	"math"

	"wilocator/internal/geo"
	"wilocator/internal/roadnet"
	"wilocator/internal/wifi"
)

// Build constructs the Signal Voronoi Diagram of the network's signal space
// under the given configuration. Only active APs of the deployment
// participate; after AP dynamics (deactivation/reactivation) call Build
// again — the paper's Section III-B observes that the partition simply
// coarsens around a vanished AP.
func Build(net *roadnet.Network, dep *wifi.Deployment, cfg Config) (*Diagram, error) {
	if net == nil || dep == nil {
		return nil, fmt.Errorf("svd: nil network or deployment")
	}
	cfg = cfg.withDefaults()
	active := dep.ActiveAPs()
	if len(active) == 0 {
		return nil, fmt.Errorf("svd: deployment has no active APs")
	}

	d := &Diagram{
		cfg:   cfg,
		net:   net,
		dep:   dep,
		grid:  newAPGrid(active, cfg.Model, cfg.Metric),
		runs:  make([]map[string][]Run, cfg.Order),
		index: make([]map[string]map[TileKey][]int, cfg.Order),
		tiles: make(map[TileKey]*Tile),
		cells: make(map[wifi.BSSID]*Cell),
	}
	for o := 0; o < cfg.Order; o++ {
		d.runs[o] = make(map[string][]Run)
		d.index[o] = make(map[string]map[TileKey][]int)
	}

	d.buildRuns()
	if cfg.GridStep > 0 {
		d.buildBand()
	}
	return d, nil
}

// buildRuns walks every route at SampleStep resolution and records, for each
// order 1..cfg.Order, the maximal sub-segments with constant tile key.
func (d *Diagram) buildRuns() {
	for _, route := range d.net.Routes() {
		id := route.ID()
		length := route.Length()
		cur := make([]TileKey, d.cfg.Order)   // current key per order
		start := make([]float64, d.cfg.Order) // run start per order
		first := true

		flush := func(o int, end float64) {
			run := Run{Key: cur[o], S0: start[o], S1: end}
			d.runs[o][id] = append(d.runs[o][id], run)
			if d.index[o][id] == nil {
				d.index[o][id] = make(map[TileKey][]int)
			}
			d.index[o][id][run.Key] = append(d.index[o][id][run.Key], len(d.runs[o][id])-1)
		}

		step := d.cfg.SampleStep
		for s := 0.0; ; s += step {
			if s > length {
				s = length
			}
			order := d.grid.orderAt(route.PointAt(s), d.cfg.Order)
			for o := 0; o < d.cfg.Order; o++ {
				key := MakeKey(order, o+1)
				switch {
				case first:
					cur[o], start[o] = key, 0
				case key != cur[o]:
					// Close the previous run at the midpoint between the
					// two samples: the true tile boundary lies in between.
					mid := s - step/2
					if mid < start[o] {
						mid = start[o]
					}
					flush(o, mid)
					cur[o], start[o] = key, mid
				}
			}
			first = false
			if s >= length {
				break
			}
		}
		for o := 0; o < d.cfg.Order; o++ {
			flush(o, length)
		}
	}
}

// buildBand rasterises a band of half-width BandWidth around every road
// segment at GridStep resolution, assigning each grid point its full-order
// tile key, and aggregates tile/cell centroids, areas, adjacency boundary
// lengths and joint points.
func (d *Diagram) buildBand() {
	step := d.cfg.GridStep
	band := math.Round(d.cfg.BandWidth/step) * step

	type acc struct {
		sumX, sumY float64
		n          int
	}
	keyOf := make(map[[2]int]TileKey)
	tileAcc := make(map[TileKey]*acc)
	cellAcc := make(map[wifi.BSSID]*acc)

	quant := func(p geo.Point) [2]int {
		return [2]int{int(math.Round(p.X / step)), int(math.Round(p.Y / step))}
	}

	for _, seg := range d.net.Graph.Segments() {
		line := seg.Line
		for s := 0.0; ; s += step {
			if s > line.Length() {
				s = line.Length()
			}
			center := line.At(s)
			dir := line.DirectionAt(s)
			normal := geo.Pt(-dir.Y, dir.X)
			for lat := -band; lat <= band+1e-9; lat += step {
				p := center.Add(normal.Scale(lat))
				q := quant(p)
				if _, seen := keyOf[q]; seen {
					continue
				}
				// Use the quantised point so the key is a pure function of
				// the grid coordinate.
				gp := geo.Pt(float64(q[0])*step, float64(q[1])*step)
				key := MakeKey(d.grid.orderAt(gp, d.cfg.Order), d.cfg.Order)
				keyOf[q] = key
				if key == "" {
					continue
				}
				ta := tileAcc[key]
				if ta == nil {
					ta = &acc{}
					tileAcc[key] = ta
				}
				ta.sumX += gp.X
				ta.sumY += gp.Y
				ta.n++
				site := key.Site()
				ca := cellAcc[site]
				if ca == nil {
					ca = &acc{}
					cellAcc[site] = ca
				}
				ca.sumX += gp.X
				ca.sumY += gp.Y
				ca.n++
			}
			if s >= line.Length() {
				break
			}
		}
	}

	for key, a := range tileAcc {
		d.tiles[key] = &Tile{
			Key:      key,
			Centroid: geo.Pt(a.sumX/float64(a.n), a.sumY/float64(a.n)),
			Area:     float64(a.n) * step * step,
			Boundary: make(map[TileKey]float64),
		}
	}
	for site, a := range cellAcc {
		d.cells[site] = &Cell{
			Site:      site,
			Centroid:  geo.Pt(a.sumX/float64(a.n), a.sumY/float64(a.n)),
			Area:      float64(a.n) * step * step,
			Neighbors: make(map[wifi.BSSID]float64),
		}
	}

	// Adjacency and joints from 4-neighbourhoods.
	addBoundary := func(a, b TileKey) {
		if a == "" || b == "" || a == b {
			return
		}
		d.tiles[a].Boundary[b] += step
		d.tiles[b].Boundary[a] += step
		sa, sb := a.Site(), b.Site()
		if sa != sb {
			d.cells[sa].Neighbors[sb] += step
			d.cells[sb].Neighbors[sa] += step
		}
	}
	for q, key := range keyOf {
		right := [2]int{q[0] + 1, q[1]}
		up := [2]int{q[0], q[1] + 1}
		if k, ok := keyOf[right]; ok {
			addBoundary(key, k)
		}
		if k, ok := keyOf[up]; ok {
			addBoundary(key, k)
		}
		if key == "" {
			continue
		}
		// Joint point: three or more distinct cells meet around this point.
		sites := map[wifi.BSSID]bool{key.Site(): true}
		for _, nb := range [][2]int{right, up, {q[0] - 1, q[1]}, {q[0], q[1] - 1}} {
			if k, ok := keyOf[nb]; ok && k != "" {
				sites[k.Site()] = true
			}
		}
		if len(sites) >= 3 {
			d.joints = append(d.joints, geo.Pt(float64(q[0])*step, float64(q[1])*step))
		}
	}
}
