package svd

import (
	"testing"

	"wilocator/internal/wifi"
)

func TestMakeKey(t *testing.T) {
	order := []wifi.BSSID{"b", "a", "d"}
	tests := []struct {
		k    int
		want TileKey
	}{
		{0, ""},
		{-1, ""},
		{1, "b"},
		{2, "b|a"},
		{3, "b|a|d"},
		{5, "b|a|d"},
	}
	for _, tt := range tests {
		if got := MakeKey(order, tt.k); got != tt.want {
			t.Errorf("MakeKey(k=%d) = %q, want %q", tt.k, got, tt.want)
		}
	}
	if got := MakeKey(nil, 2); got != "" {
		t.Errorf("MakeKey(nil) = %q", got)
	}
}

func TestTileKeyOrder(t *testing.T) {
	tests := []struct {
		key  TileKey
		want int
	}{
		{"", 0},
		{"a", 1},
		{"a|b", 2},
		{"a|b|c|d", 4},
	}
	for _, tt := range tests {
		if got := tt.key.Order(); got != tt.want {
			t.Errorf("%q.Order() = %d, want %d", tt.key, got, tt.want)
		}
	}
}

func TestTileKeySite(t *testing.T) {
	if got := TileKey("").Site(); got != "" {
		t.Errorf("empty key site = %q", got)
	}
	if got := TileKey("x").Site(); got != "x" {
		t.Errorf("site = %q", got)
	}
	if got := TileKey("x|y|z").Site(); got != "x" {
		t.Errorf("site = %q", got)
	}
}

func TestTileKeyPrefix(t *testing.T) {
	k := TileKey("a|b|c")
	tests := []struct {
		n    int
		want TileKey
	}{
		{0, ""},
		{1, "a"},
		{2, "a|b"},
		{3, "a|b|c"},
		{9, "a|b|c"},
	}
	for _, tt := range tests {
		if got := k.Prefix(tt.n); got != tt.want {
			t.Errorf("Prefix(%d) = %q, want %q", tt.n, got, tt.want)
		}
	}
}

func TestTileKeyBSSIDs(t *testing.T) {
	if got := TileKey("").BSSIDs(); got != nil {
		t.Errorf("empty key BSSIDs = %v", got)
	}
	got := TileKey("a|b").BSSIDs()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("BSSIDs = %v", got)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	order := []wifi.BSSID{"ap-1", "ap-2", "ap-3", "ap-4"}
	for k := 1; k <= 4; k++ {
		key := MakeKey(order, k)
		if key.Order() != k {
			t.Errorf("order %d: key order = %d", k, key.Order())
		}
		back := key.BSSIDs()
		for i := 0; i < k; i++ {
			if back[i] != order[i] {
				t.Errorf("order %d: BSSIDs[%d] = %v, want %v", k, i, back[i], order[i])
			}
		}
	}
}
