package svd

import (
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"testing"
	"unsafe"

	"wilocator/internal/geo"
	"wilocator/internal/wifi"
	"wilocator/internal/xrand"
)

// diagramState extracts everything Build computes, for deep-equality
// comparison between worker counts.
func diagramState(d *Diagram) (runs []map[string][]Run, index []map[string]map[TileKey][]int, tiles map[TileKey]*Tile, cells map[wifi.BSSID]*Cell, joints []geo.Point) {
	return d.runs, d.index, d.tiles, d.cells, d.joints
}

// TestParallelBuildEquivalence: the diagram built with any worker count is
// deeply equal — runs, index, tiles, cells and joints, in order — to the
// fully sequential (Workers=1) build, across seeds, deployment densities and
// GOMAXPROCS settings. This is the contract that lets the server rebuild
// diagrams on however many cores are idle without perturbing positioning.
func TestParallelBuildEquivalence(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	for seed := uint64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			net, dep := testScenario(t, 400, depSpecForSeed(seed), seed)
			cfg := Config{Order: 2, GridStep: 3, BandWidth: 24}

			seqCfg := cfg
			seqCfg.Workers = 1
			seq := buildDiagram(t, net, dep, seqCfg)
			seqRuns, seqIndex, seqTiles, seqCells, seqJoints := diagramState(seq)

			for _, workers := range []int{2, 3, 8} {
				for _, procs := range []int{1, 4} {
					runtime.GOMAXPROCS(procs)
					parCfg := cfg
					parCfg.Workers = workers
					par := buildDiagram(t, net, dep, parCfg)
					runs, index, tiles, cells, joints := diagramState(par)
					if !reflect.DeepEqual(runs, seqRuns) {
						t.Fatalf("workers=%d procs=%d: runs differ from sequential build", workers, procs)
					}
					if !reflect.DeepEqual(index, seqIndex) {
						t.Fatalf("workers=%d procs=%d: run index differs from sequential build", workers, procs)
					}
					if !reflect.DeepEqual(tiles, seqTiles) {
						t.Fatalf("workers=%d procs=%d: tiles differ from sequential build", workers, procs)
					}
					if !reflect.DeepEqual(cells, seqCells) {
						t.Fatalf("workers=%d procs=%d: cells differ from sequential build", workers, procs)
					}
					if !reflect.DeepEqual(joints, seqJoints) {
						t.Fatalf("workers=%d procs=%d: joints differ from sequential build", workers, procs)
					}
				}
			}
			runtime.GOMAXPROCS(prev)
		})
	}
}

// TestBuildDeterministicAcrossRepeats: two sequential builds of one scenario
// are deeply equal — in particular the joint-point order, which the old
// implementation drew from map iteration.
func TestBuildDeterministicAcrossRepeats(t *testing.T) {
	net, dep := testScenario(t, 400, depSpecForSeed(2), 2)
	cfg := Config{Order: 2, GridStep: 3, BandWidth: 24, Workers: 1}
	a := buildDiagram(t, net, dep, cfg)
	b := buildDiagram(t, net, dep, cfg)
	if !reflect.DeepEqual(a.joints, b.joints) {
		t.Fatal("joint order differs between two identical builds")
	}
	if !reflect.DeepEqual(a.runs, b.runs) || !reflect.DeepEqual(a.tiles, b.tiles) {
		t.Fatal("diagram state differs between two identical builds")
	}
}

// TestOrderIntoMatchesSortedRanking: the insertion-ranked, scratch-reusing
// orderInto agrees with the straightforward sort-everything reference at
// every kmax, across random query points.
func TestOrderIntoMatchesSortedRanking(t *testing.T) {
	net, dep := testScenario(t, 500, depSpecForSeed(1), 7)
	d := buildDiagram(t, net, dep, Config{Order: 2, GridStep: -1, Workers: 1})
	g := d.grid

	// Reference: collect every detectable AP, sort by the metric with the
	// documented tie-break, truncate.
	reference := func(p geo.Point, kmax int) []wifi.BSSID {
		type ranked struct {
			bssid wifi.BSSID
			v     float64
		}
		var cands []ranked
		b := g.bucket(p)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, ap := range g.buckets[[2]int{b[0] + dx, b[1] + dy}] {
					dist := p.Dist(ap.Pos)
					rss := g.model.ExpectedRSS(ap.RefRSS, ap.PathLossExp, dist)
					if rss < g.model.Floor() {
						continue
					}
					v := rss
					if g.metric == MetricEuclidean {
						v = -dist
					}
					cands = append(cands, ranked{bssid: ap.BSSID, v: v})
				}
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].v != cands[j].v {
				return cands[i].v > cands[j].v
			}
			return cands[i].bssid < cands[j].bssid
		})
		if kmax > 0 && len(cands) > kmax {
			cands = cands[:kmax]
		}
		out := make([]wifi.BSSID, len(cands))
		for i, c := range cands {
			out[i] = c.bssid
		}
		return out
	}

	rng := xrand.New(99)
	var sc rankScratch
	for i := 0; i < 500; i++ {
		p := geo.Pt(rng.Float64()*520-10, rng.Float64()*80-40)
		for _, kmax := range []int{1, 2, 3, 0} {
			got := g.orderInto(p, kmax, &sc)
			want := reference(p, kmax)
			if len(got) != len(want) {
				t.Fatalf("p=%v kmax=%d: got %d APs, want %d", p, kmax, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("p=%v kmax=%d: rank %d is %q, want %q", p, kmax, j, got[j], want[j])
				}
			}
		}
	}
}

// TestInternerSharesAllocations: interned keys are value-equal to MakeKey
// output and repeated requests return the identical backing string.
func TestInternerSharesAllocations(t *testing.T) {
	in := newInterner()
	order := []wifi.BSSID{"ap-a", "ap-b", "ap-c"}
	for k := 0; k <= 4; k++ {
		if got, want := in.key(order, k), MakeKey(order, k); got != want {
			t.Fatalf("k=%d: interned key %q != MakeKey %q", k, got, want)
		}
	}
	a := in.key(order, 2)
	b := in.key(order, 2)
	if unsafe.StringData(string(a)) != unsafe.StringData(string(b)) {
		t.Fatal("interner returned two allocations for one key")
	}
	fresh := MakeKey(order, 2) // independent allocation, equal content
	if got := in.canon(fresh); unsafe.StringData(string(got)) != unsafe.StringData(string(a)) {
		t.Fatal("canon does not fold equal content onto the interned allocation")
	}
}
