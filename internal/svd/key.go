// Package svd implements the Signal Voronoi Diagram, the primary
// contribution of the WiLocator paper (Section III).
//
// The signal space around the road network is partitioned into Signal Cells
// (Definition 1: the dominance region of the strongest AP) and, recursively,
// into order-k Signal Tiles (Definition 2) within which the rank order of
// the expected RSS from the k strongest APs is constant (Proposition 1).
// Because RSS *ranks* are far more stable than raw RSS values, a scanned
// rank vector identifies the tile a bus is in without any fingerprint
// calibration or runtime propagation model.
//
// A Diagram is built from a road network, an AP deployment and a propagation
// model. It records, for every order 1..k:
//
//   - per-route "runs": maximal road sub-segments over which the tile key is
//     constant (this is what Definition 5's Tile Mapping consumes), and
//   - the 2-D tile geometry in a band around the roads: centroids, areas,
//     tile adjacency with shared-boundary lengths, and joint points — used
//     for the paper's longest-boundary fallback when a noisy scan lands the
//     bus in a tile that does not intersect its route.
package svd

import (
	"strings"

	"wilocator/internal/wifi"
)

// KeySep separates BSSIDs inside a TileKey.
const KeySep = "|"

// TileKey identifies an order-k Signal Tile: the k strongest APs at a point
// in descending expected-RSS order, joined with KeySep. An order-1 key
// identifies a Signal Cell.
type TileKey string

// MakeKey builds the order-k key from a (descending) rank order. If fewer
// than k APs are available the key uses all of them; an empty order yields
// the empty key.
func MakeKey(order []wifi.BSSID, k int) TileKey {
	if k > len(order) {
		k = len(order)
	}
	if k <= 0 {
		return ""
	}
	var sb strings.Builder
	for i := 0; i < k; i++ {
		if i > 0 {
			sb.WriteString(KeySep)
		}
		sb.WriteString(string(order[i]))
	}
	return TileKey(sb.String())
}

// Order returns the number of APs in the key.
func (k TileKey) Order() int {
	if k == "" {
		return 0
	}
	return strings.Count(string(k), KeySep) + 1
}

// Site returns the first (strongest) AP of the key — the generator of the
// Signal Cell containing the tile.
func (k TileKey) Site() wifi.BSSID {
	if k == "" {
		return ""
	}
	s := string(k)
	if i := strings.Index(s, KeySep); i >= 0 {
		return wifi.BSSID(s[:i])
	}
	return wifi.BSSID(s)
}

// Prefix returns the order-n prefix of the key. If n >= Order() the key is
// returned unchanged.
func (k TileKey) Prefix(n int) TileKey {
	if n <= 0 {
		return ""
	}
	s := string(k)
	idx := 0
	for i := 0; i < n; i++ {
		next := strings.Index(s[idx:], KeySep)
		if next < 0 {
			return k
		}
		idx += next + len(KeySep)
	}
	return TileKey(s[:idx-len(KeySep)])
}

// BSSIDs returns the APs of the key in rank order.
func (k TileKey) BSSIDs() []wifi.BSSID {
	if k == "" {
		return nil
	}
	parts := strings.Split(string(k), KeySep)
	out := make([]wifi.BSSID, len(parts))
	for i, p := range parts {
		out[i] = wifi.BSSID(p)
	}
	return out
}
