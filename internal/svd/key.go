// Package svd implements the Signal Voronoi Diagram, the primary
// contribution of the WiLocator paper (Section III).
//
// The signal space around the road network is partitioned into Signal Cells
// (Definition 1: the dominance region of the strongest AP) and, recursively,
// into order-k Signal Tiles (Definition 2) within which the rank order of
// the expected RSS from the k strongest APs is constant (Proposition 1).
// Because RSS *ranks* are far more stable than raw RSS values, a scanned
// rank vector identifies the tile a bus is in without any fingerprint
// calibration or runtime propagation model.
//
// A Diagram is built from a road network, an AP deployment and a propagation
// model. It records, for every order 1..k:
//
//   - per-route "runs": maximal road sub-segments over which the tile key is
//     constant (this is what Definition 5's Tile Mapping consumes), and
//   - the 2-D tile geometry in a band around the roads: centroids, areas,
//     tile adjacency with shared-boundary lengths, and joint points — used
//     for the paper's longest-boundary fallback when a noisy scan lands the
//     bus in a tile that does not intersect its route.
package svd

import (
	"strings"

	"wilocator/internal/wifi"
)

// KeySep separates BSSIDs inside a TileKey.
const KeySep = "|"

// TileKey identifies an order-k Signal Tile: the k strongest APs at a point
// in descending expected-RSS order, joined with KeySep. An order-1 key
// identifies a Signal Cell.
type TileKey string

// MakeKey builds the order-k key from a (descending) rank order. If fewer
// than k APs are available the key uses all of them; an empty order yields
// the empty key.
func MakeKey(order []wifi.BSSID, k int) TileKey {
	if k > len(order) {
		k = len(order)
	}
	if k <= 0 {
		return ""
	}
	var sb strings.Builder
	for i := 0; i < k; i++ {
		if i > 0 {
			sb.WriteString(KeySep)
		}
		sb.WriteString(string(order[i]))
	}
	return TileKey(sb.String())
}

// interner deduplicates TileKey allocations within one Build: every
// structure that stores a key — runs, the run index, tiles, boundaries —
// shares a single backing string per distinct key. Not safe for concurrent
// use; Build gives each worker its own table and canonicalises results
// through the merge goroutine's table afterwards.
type interner struct {
	keys map[string]TileKey
	buf  []byte
}

func newInterner() *interner {
	return &interner{keys: make(map[string]TileKey, 128)}
}

// key builds the order-k TileKey of a (descending) rank order. It is
// equivalent to MakeKey(order, k) but allocates only the first time a
// distinct key is seen: the assembly buffer is reused and the lookup
// converts it to a map key without copying.
func (in *interner) key(order []wifi.BSSID, k int) TileKey {
	if k > len(order) {
		k = len(order)
	}
	if k <= 0 {
		return ""
	}
	buf := in.buf[:0]
	for i := 0; i < k; i++ {
		if i > 0 {
			buf = append(buf, KeySep...)
		}
		buf = append(buf, order[i]...)
	}
	in.buf = buf
	if c, ok := in.keys[string(buf)]; ok { // no copy: map index by converted bytes
		return c
	}
	c := TileKey(buf) // the one allocation this key will ever cost
	in.keys[string(c)] = c
	return c
}

// canon returns the interned instance of key, registering key itself when
// the content is new. Used at merge time to fold keys built by different
// workers onto one allocation.
func (in *interner) canon(key TileKey) TileKey {
	if key == "" {
		return ""
	}
	if c, ok := in.keys[string(key)]; ok {
		return c
	}
	in.keys[string(key)] = key
	return key
}

// Order returns the number of APs in the key.
func (k TileKey) Order() int {
	if k == "" {
		return 0
	}
	return strings.Count(string(k), KeySep) + 1
}

// Site returns the first (strongest) AP of the key — the generator of the
// Signal Cell containing the tile.
func (k TileKey) Site() wifi.BSSID {
	if k == "" {
		return ""
	}
	s := string(k)
	if i := strings.Index(s, KeySep); i >= 0 {
		return wifi.BSSID(s[:i])
	}
	return wifi.BSSID(s)
}

// Prefix returns the order-n prefix of the key. If n >= Order() the key is
// returned unchanged.
func (k TileKey) Prefix(n int) TileKey {
	if n <= 0 {
		return ""
	}
	s := string(k)
	idx := 0
	for i := 0; i < n; i++ {
		next := strings.Index(s[idx:], KeySep)
		if next < 0 {
			return k
		}
		idx += next + len(KeySep)
	}
	return TileKey(s[:idx-len(KeySep)])
}

// BSSIDs returns the APs of the key in rank order.
func (k TileKey) BSSIDs() []wifi.BSSID {
	if k == "" {
		return nil
	}
	parts := strings.Split(string(k), KeySep)
	out := make([]wifi.BSSID, len(parts))
	for i, p := range parts {
		out[i] = wifi.BSSID(p)
	}
	return out
}
