package svd

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"wilocator/internal/wifi"
)

// bssidList generates rank orders of unique BSSIDs.
type bssidList struct{ Order []wifi.BSSID }

// Generate implements quick.Generator.
func (bssidList) Generate(r *rand.Rand, _ int) reflect.Value {
	n := r.Intn(8)
	seen := make(map[wifi.BSSID]bool)
	var out []wifi.BSSID
	for i := 0; i < n; i++ {
		b := wifi.BSSID("ap-" + string(rune('a'+r.Intn(26))))
		if seen[b] {
			continue
		}
		seen[b] = true
		out = append(out, b)
	}
	return reflect.ValueOf(bssidList{Order: out})
}

// TestKeyPrefixLaw: MakeKey(order, j) == MakeKey(order, k).Prefix(j) for
// every j <= k — the identity the order-reduction fallback relies on.
func TestKeyPrefixLaw(t *testing.T) {
	f := func(l bssidList) bool {
		k := len(l.Order)
		full := MakeKey(l.Order, k)
		for j := 0; j <= k; j++ {
			if MakeKey(l.Order, j) != full.Prefix(j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestKeyOrderAndBSSIDsInverse: Order() counts the components and BSSIDs()
// round-trips through MakeKey.
func TestKeyOrderAndBSSIDsInverse(t *testing.T) {
	f := func(l bssidList) bool {
		key := MakeKey(l.Order, len(l.Order))
		if key.Order() != len(l.Order) {
			return false
		}
		back := key.BSSIDs()
		if len(back) != len(l.Order) {
			return false
		}
		for i := range back {
			if back[i] != l.Order[i] {
				return false
			}
		}
		if len(l.Order) > 0 && key.Site() != l.Order[0] {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestKeySeparatorNeverEmptyComponent: keys never contain empty components,
// whatever the input order length.
func TestKeySeparatorNeverEmptyComponent(t *testing.T) {
	f := func(l bssidList) bool {
		key := MakeKey(l.Order, len(l.Order))
		if key == "" {
			return len(l.Order) == 0
		}
		for _, part := range strings.Split(string(key), KeySep) {
			if part == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRunsPartitionAcrossSeeds re-checks the partition invariant (gap-free,
// adjacent-distinct, full coverage) across many random deployments — the
// deterministic analogue of a fuzz pass over Build.
func TestRunsPartitionAcrossSeeds(t *testing.T) {
	for seed := uint64(100); seed < 108; seed++ {
		net, dep := testScenario(t, 300, depSpecForSeed(seed), seed)
		d := buildDiagram(t, net, dep, Config{Order: 2, GridStep: -1})
		route := net.Routes()[0]
		runs, err := d.Runs(route.ID(), 2)
		if err != nil {
			t.Fatal(err)
		}
		if runs[0].S0 != 0 {
			t.Errorf("seed %d: first run starts at %v", seed, runs[0].S0)
		}
		for i := 1; i < len(runs); i++ {
			if runs[i].S0 != runs[i-1].S1 {
				t.Fatalf("seed %d: gap at run %d", seed, i)
			}
			if runs[i].Key == runs[i-1].Key {
				t.Fatalf("seed %d: adjacent runs share key %q", seed, runs[i].Key)
			}
		}
		if got := runs[len(runs)-1].S1; got != route.Length() {
			t.Errorf("seed %d: last run ends at %v, want %v", seed, got, route.Length())
		}
	}
}

// depSpecForSeed varies the deployment density per seed so the sweep covers
// sparse and dense regimes.
func depSpecForSeed(seed uint64) wifi.DeploySpec {
	spec := wifi.DefaultDeploySpec()
	spec.Spacing = 20 + float64(seed%5)*15
	return spec
}

// TestTilesPartitionCells: the order-k tiles partition the Signal Cells, so
// per-site tile areas sum to the cell area and every tile's site has a cell.
func TestTilesPartitionCells(t *testing.T) {
	net, dep := testScenario(t, 300, depSpecForSeed(3), 3)
	d := buildDiagram(t, net, dep, Config{Order: 2, GridStep: 3, BandWidth: 30})
	areaBySite := make(map[wifi.BSSID]float64)
	for key := range d.tiles {
		tile, _ := d.Tile(key)
		areaBySite[key.Site()] += tile.Area
	}
	if len(areaBySite) != d.NumCells() {
		t.Fatalf("tiles cover %d sites, diagram has %d cells", len(areaBySite), d.NumCells())
	}
	for site, got := range areaBySite {
		cell, ok := d.Cell(site)
		if !ok {
			t.Fatalf("no cell for site %q", site)
		}
		if diff := got - cell.Area; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("site %q: tile areas %.1f != cell area %.1f", site, got, cell.Area)
		}
	}
}

// TestCellNeighborsSymmetric: the Signal Voronoi Edge lengths between cells
// are symmetric.
func TestCellNeighborsSymmetric(t *testing.T) {
	net, dep := testScenario(t, 300, depSpecForSeed(4), 4)
	d := buildDiagram(t, net, dep, Config{Order: 2, GridStep: 3, BandWidth: 30})
	for site, cell := range d.cells {
		for nb, l := range cell.Neighbors {
			other, ok := d.Cell(nb)
			if !ok {
				t.Fatalf("cell %q has unknown neighbour %q", site, nb)
			}
			if back := other.Neighbors[site]; back != l {
				t.Errorf("SVE %q<->%q asymmetric: %v vs %v", site, nb, l, back)
			}
		}
	}
}
