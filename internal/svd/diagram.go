package svd

import (
	"fmt"
	"runtime"
	"sort"

	"wilocator/internal/geo"
	"wilocator/internal/rf"
	"wilocator/internal/roadnet"
	"wilocator/internal/wifi"
)

// Default construction parameters.
const (
	// DefaultOrder is the SVD order; the paper finds order 2 sufficient
	// (footnote 4 and Fig. 9(b)).
	DefaultOrder = 2
	// DefaultSampleStep is the along-road sampling step for tile runs.
	DefaultSampleStep = 1.0
	// DefaultGridStep is the 2-D band grid resolution for tile geometry.
	DefaultGridStep = 3.0
	// DefaultBandWidth is the half-width of the 2-D band around roads.
	DefaultBandWidth = 39.0
)

// Config parameterises diagram construction. The zero value selects the
// defaults above with MetricRSS.
type Config struct {
	// Order is the maximum tile order to index (queries may use any order
	// up to this).
	Order int
	// SampleStep is the along-road sampling step in metres.
	SampleStep float64
	// GridStep is the 2-D band grid resolution in metres. Negative disables
	// the 2-D geometry pass (runs only).
	GridStep float64
	// BandWidth is the lateral half-width of the 2-D band in metres.
	BandWidth float64
	// Model is the propagation model used for expected RSS.
	Model rf.LogDistance
	// Metric selects SVD (rank by expected RSS) or the conventional Voronoi
	// diagram (rank by Euclidean distance) for the ablation.
	Metric Metric
	// Workers bounds the construction worker pool. 0 selects
	// runtime.GOMAXPROCS(0); 1 builds fully sequentially. The built diagram
	// is byte-identical for every worker count.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Order <= 0 {
		c.Order = DefaultOrder
	}
	if c.SampleStep <= 0 {
		c.SampleStep = DefaultSampleStep
	}
	if c.GridStep == 0 {
		c.GridStep = DefaultGridStep
	}
	if c.BandWidth <= 0 {
		c.BandWidth = DefaultBandWidth
	}
	if c.Metric == 0 {
		c.Metric = MetricRSS
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Run is a maximal road sub-segment [S0, S1] (arc lengths along one route)
// over which the order-k tile key is constant. Runs are what Definition 5's
// Tile Mapping produces: the road sub-segment e_ij inside a Signal Tile.
type Run struct {
	Key TileKey `json:"key"`
	S0  float64 `json:"s0"`
	S1  float64 `json:"s1"`
}

// Mid returns the midpoint arc length of the run.
func (r Run) Mid() float64 { return (r.S0 + r.S1) / 2 }

// Len returns the run length in metres.
func (r Run) Len() float64 { return r.S1 - r.S0 }

// Contains reports whether arc s lies within the run.
func (r Run) Contains(s float64) bool { return s >= r.S0 && s <= r.S1 }

// Tile is the 2-D geometry of one Signal Tile at the diagram's full order.
type Tile struct {
	Key      TileKey
	Centroid geo.Point
	// Area is the tile area in m² estimated from the band grid.
	Area float64
	// Boundary maps each adjacent tile to the shared tile-boundary length.
	Boundary map[TileKey]float64
}

// Cell is the geometry of one Signal Cell (order-1 dominance region of its
// site AP).
type Cell struct {
	Site     wifi.BSSID
	Centroid geo.Point
	Area     float64
	// Neighbors maps each adjacent cell's site to the shared Signal Voronoi
	// Edge length.
	Neighbors map[wifi.BSSID]float64
}

// Diagram is an immutable Signal Voronoi Diagram over a road network and an
// AP deployment. Build one with Build; rebuild after AP dynamics.
type Diagram struct {
	cfg  Config
	net  *roadnet.Network
	dep  *wifi.Deployment
	grid *apGrid

	// runs[o-1][routeID] lists the order-o runs of each route in arc order.
	runs []map[string][]Run
	// index[o-1][routeID][key] holds indices into runs for key lookup.
	index []map[string]map[TileKey][]int

	tiles  map[TileKey]*Tile
	cells  map[wifi.BSSID]*Cell
	joints []geo.Point
}

// Order returns the maximum indexed tile order.
func (d *Diagram) Order() int { return d.cfg.Order }

// NumRuns returns the total number of route runs indexed across all orders —
// a size gauge for observability (alongside NumTiles and NumCells).
func (d *Diagram) NumRuns() int {
	n := 0
	for _, byRoute := range d.runs {
		for _, rs := range byRoute {
			n += len(rs)
		}
	}
	return n
}

// NumJoints returns the number of signal joints (run boundary points) the
// diagram indexed.
func (d *Diagram) NumJoints() int { return len(d.joints) }

// Config returns the (defaulted) configuration the diagram was built with.
// Rebuilds after AP dynamics pass it back to Build unchanged.
func (d *Diagram) Config() Config { return d.cfg }

// Metric returns the partition metric.
func (d *Diagram) Metric() Metric { return d.cfg.Metric }

// Network returns the road network the diagram was built over.
func (d *Diagram) Network() *roadnet.Network { return d.net }

// Deployment returns the AP deployment the diagram was built over.
func (d *Diagram) Deployment() *wifi.Deployment { return d.dep }

// RankAt returns the metric rank order of detectable APs at p (up to kmax;
// kmax <= 0 means all).
func (d *Diagram) RankAt(p geo.Point, kmax int) []wifi.BSSID {
	return d.grid.orderAt(p, kmax)
}

// KeyAt returns the order-k tile key of point p under the expected signal
// space.
func (d *Diagram) KeyAt(p geo.Point, k int) TileKey {
	return MakeKey(d.grid.orderAt(p, k), k)
}

// Runs returns route routeID's order-k runs in arc order.
func (d *Diagram) Runs(routeID string, order int) ([]Run, error) {
	if order < 1 || order > d.cfg.Order {
		return nil, fmt.Errorf("svd: order %d outside [1, %d]", order, d.cfg.Order)
	}
	rs, ok := d.runs[order-1][routeID]
	if !ok {
		return nil, fmt.Errorf("svd: unknown route %q", routeID)
	}
	return rs, nil
}

// FindRuns returns the runs of routeID whose key equals key (at key's own
// order). A key may recur at several places along a route; all occurrences
// are returned in arc order.
func (d *Diagram) FindRuns(routeID string, key TileKey) []Run {
	o := key.Order()
	if o < 1 || o > d.cfg.Order {
		return nil
	}
	byKey, ok := d.index[o-1][routeID]
	if !ok {
		return nil
	}
	idxs := byKey[key]
	out := make([]Run, len(idxs))
	for i, ix := range idxs {
		out[i] = d.runs[o-1][routeID][ix]
	}
	return out
}

// RunAt returns the order-k run containing arc s on routeID.
func (d *Diagram) RunAt(routeID string, order int, s float64) (Run, error) {
	rs, err := d.Runs(routeID, order)
	if err != nil {
		return Run{}, err
	}
	i := sort.Search(len(rs), func(i int) bool { return rs[i].S1 >= s })
	if i == len(rs) {
		i = len(rs) - 1
	}
	return rs[i], nil
}

// Tile returns the 2-D geometry of the tile with the given full-order key.
func (d *Diagram) Tile(key TileKey) (*Tile, bool) {
	t, ok := d.tiles[key]
	return t, ok
}

// NumTiles returns the number of distinct full-order tiles in the band.
func (d *Diagram) NumTiles() int { return len(d.tiles) }

// Cell returns the geometry of the Signal Cell generated by site.
func (d *Diagram) Cell(site wifi.BSSID) (*Cell, bool) {
	c, ok := d.cells[site]
	return c, ok
}

// NumCells returns the number of non-empty Signal Cells in the band.
func (d *Diagram) NumCells() int { return len(d.cells) }

// Joints returns the joint points of the diagram: band grid points where
// three or more Signal Cells meet (Definition 1's junction points, grid
// approximation).
func (d *Diagram) Joints() []geo.Point {
	cp := make([]geo.Point, len(d.joints))
	copy(cp, d.joints)
	return cp
}

// NeighborsByBoundary returns the tiles adjacent to key ordered by
// decreasing shared-boundary length — the order in which the paper's
// off-road fallback rule considers them.
func (d *Diagram) NeighborsByBoundary(key TileKey) []TileKey {
	t, ok := d.tiles[key]
	if !ok {
		return nil
	}
	type nb struct {
		key TileKey
		len float64
	}
	nbs := make([]nb, 0, len(t.Boundary))
	for k, l := range t.Boundary {
		nbs = append(nbs, nb{key: k, len: l})
	}
	sort.Slice(nbs, func(i, j int) bool {
		if nbs[i].len != nbs[j].len {
			return nbs[i].len > nbs[j].len
		}
		return nbs[i].key < nbs[j].key
	})
	out := make([]TileKey, len(nbs))
	for i, n := range nbs {
		out[i] = n.key
	}
	return out
}
