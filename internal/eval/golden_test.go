package eval

// The end-to-end golden pipeline test: one deterministic fleet scenario is
// pushed through the full WiLocator pipeline — world build (parallel SVD
// construction), report ingestion, scan fusion, SVD positioning, travel-time
// accumulation, arrival prediction, traffic-map classification and anomaly
// detection — and every user-visible output is serialised to JSON and
// compared byte-for-byte against a checked-in golden file.
//
// The point is regression *breadth*: any change that shifts a fix by a
// centimetre, reorders vehicles, or perturbs an ETA shows up as a golden
// diff, reviewable in the PR. Refresh intentionally with:
//
//	go test ./internal/eval -run TestEndToEndGolden -update

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"wilocator/internal/api"
	"wilocator/internal/client"
	"wilocator/internal/loadtest"
	"wilocator/internal/server"
	"wilocator/internal/trafficmap"
)

var update = flag.Bool("update", false, "rewrite golden files with the current pipeline output")

// goldenSpec is the pinned scenario. Small enough to run in a couple of
// seconds, large enough that every pipeline stage produces output.
var goldenSpec = loadtest.StreamSpec{
	Buses:    4,
	Phones:   2,
	Seed:     1848,
	Horizon:  8 * time.Minute,
	DupProb:  0.02,
	SwapProb: 0.02,
}

// goldenOutput is everything the pipeline tells a user, JSON-stable.
type goldenOutput struct {
	Tally        loadtest.Tally                    `json:"tally"`
	Ingest       api.IngestStats                   `json:"ingest"`
	Vehicles     []api.VehicleStatus               `json:"vehicles"`
	Arrivals     map[string][]api.ArrivalEstimate  `json:"arrivals"`
	TrafficStrip string                            `json:"trafficStrip"`
	Coverage     float64                           `json:"coverage"`
	Trajectories map[string]api.TrajectoryResponse `json:"trajectories"`
	Anomalies    []api.AnomalyReport               `json:"anomalies"`
	ReadCaching  readCachingGolden                 `json:"readCaching"`
	Stream       streamGolden                      `json:"stream"`
}

// readCachingGolden pins the HTTP caching surface: the strong ETag the final
// snapshot serves, its Cache-Control policy, and the status codes conditional
// revalidation produces against fresh and stale validators.
type readCachingGolden struct {
	ETag          string `json:"etag"`
	CacheControl  string `json:"cacheControl"`
	Revalidated   int    `json:"revalidatedStatus"`
	StaleValidate int    `json:"staleValidatorStatus"`
}

// streamGolden pins one SSE exchange on /v1/stream: the catch-up snapshot a
// fresh subscriber receives, followed by the delta for the next published
// epoch (here: the post-replay stale sweep).
type streamGolden struct {
	Route    string             `json:"route"`
	Snapshot api.StreamSnapshot `json:"snapshot"`
	Delta    api.StreamDelta    `json:"delta"`
}

// runGoldenPipeline builds the world and replays the pinned fleet, returning
// the canonical JSON rendering of every output.
func runGoldenPipeline(t *testing.T) []byte {
	t.Helper()
	w, err := loadtest.BuildWorld(goldenSpec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := loadtest.GenStreams(w, goldenSpec)
	if err != nil {
		t.Fatal(err)
	}
	svc, _, err := loadtest.NewService(w, server.Config{
		Now: loadtest.FixedClock(loadtest.T0.Add(goldenSpec.Horizon)),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := svc.Close(); err != nil {
			t.Errorf("close service: %v", err)
		}
	})

	out := goldenOutput{
		Tally:        loadtest.ReplaySequential(svc, streams),
		Arrivals:     map[string][]api.ArrivalEstimate{},
		Trajectories: map[string]api.TrajectoryResponse{},
	}
	if out.Tally.Errors != 0 {
		t.Fatalf("golden replay hit ingest errors: %s", out.Tally)
	}
	out.Ingest = svc.Stats()
	out.Vehicles = svc.Vehicles("")

	for _, route := range w.Net.Routes() {
		ests, err := svc.Arrivals(route.ID(), route.NumStops()-1)
		if err != nil {
			t.Fatalf("arrivals %s: %v", route.ID(), err)
		}
		out.Arrivals[route.ID()] = ests
	}

	tm, err := svc.TrafficMap("")
	if err != nil {
		t.Fatal(err)
	}
	out.TrafficStrip = tm.Strip
	out.Coverage = trafficmap.Coverage(tm.Segments)

	for _, st := range streams {
		traj, err := svc.Trajectory(st.BusID)
		if err != nil {
			t.Fatalf("trajectory %s: %v", st.BusID, err)
		}
		out.Trajectories[st.BusID] = traj
	}
	out.Anomalies, err = svc.Anomalies("")
	if err != nil {
		t.Fatal(err)
	}

	out.ReadCaching, out.Stream = captureReadSurface(t, svc, w.Net.Routes()[0].ID())

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// captureReadSurface exercises the HTTP read layer of the finished pipeline:
// one conditional-GET round trip (ETag → 304, stale validator → 200) and one
// SSE subscribe that observes the catch-up snapshot plus the delta produced
// by the post-replay stale sweep. Everything it returns is deterministic
// under the frozen clock, so it lives in the golden file.
func captureReadSurface(t *testing.T, svc *server.Service, routeID string) (readCachingGolden, streamGolden) {
	t.Helper()
	ts := httptest.NewServer(server.Handler(svc))
	defer ts.Close()

	get := func(inm string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+api.PathVehicles+"?route="+routeID, nil)
		if err != nil {
			t.Fatal(err)
		}
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	first := get("")
	rc := readCachingGolden{
		ETag:          first.Header.Get("ETag"),
		CacheControl:  first.Header.Get("Cache-Control"),
		Revalidated:   get(first.Header.Get("ETag")).StatusCode,
		StaleValidate: get(`"wl-0"`).StatusCode,
	}

	// Subscribe before mutating so the stale sweep arrives as a delta, not
	// folded into the catch-up snapshot.
	c, err := client.New(ts.URL, &http.Client{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := make(chan client.StreamEvent, 4)
	streamErr := make(chan error, 1)
	go func() {
		streamErr <- c.StreamRoute(ctx, routeID, 0, func(ev client.StreamEvent) error {
			events <- ev
			return nil
		})
	}()
	next := func(what string) client.StreamEvent {
		t.Helper()
		select {
		case ev := <-events:
			return ev
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for stream %s", what)
			return client.StreamEvent{}
		}
	}

	snap := next("snapshot")
	if snap.Snapshot == nil {
		t.Fatalf("first stream event is not a snapshot: %+v", snap)
	}
	svc.EvictStale()
	svc.InvalidateReadSnapshot()
	svc.PublishSnapshot()
	delta := next("delta")
	if delta.Delta == nil {
		t.Fatalf("second stream event is not a delta: %+v", delta)
	}
	cancel()
	if err := <-streamErr; err != nil {
		t.Fatalf("stream: %v", err)
	}

	return rc, streamGolden{Route: routeID, Snapshot: *snap.Snapshot, Delta: *delta.Delta}
}

func TestEndToEndGolden(t *testing.T) {
	got := runGoldenPipeline(t)
	path := filepath.Join("testdata", "golden_pipeline.json")

	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}

	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("pipeline output deviates from %s (%d vs %d bytes).\n"+
			"Inspect with `go test ./internal/eval -run TestEndToEndGolden -update` + git diff;\n"+
			"first divergence near byte %d:\n got: %s\nwant: %s",
			path, len(got), len(want), firstDiff(got, want),
			window(got, firstDiff(got, want)), window(want, firstDiff(got, want)))
	}
}

// TestGoldenParallelismInvariant pins that the pipeline output does not
// depend on scheduler parallelism: the diagram build fans out across
// GOMAXPROCS workers, so a run serialised to one proc must still produce
// byte-identical output.
func TestGoldenParallelismInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("double pipeline run in -short mode")
	}
	base := runGoldenPipeline(t)
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	serial := runGoldenPipeline(t)
	if !bytes.Equal(base, serial) {
		t.Fatalf("pipeline output depends on GOMAXPROCS (%d vs 1): first divergence near byte %d",
			prev, firstDiff(base, serial))
	}
}

func firstDiff(a, b []byte) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// window renders ~120 bytes around position i for failure messages.
func window(b []byte, i int) string {
	lo := max(0, i-40)
	hi := min(len(b), i+80)
	return fmt.Sprintf("…%s…", b[lo:hi])
}
