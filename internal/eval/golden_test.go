package eval

// The end-to-end golden pipeline test: one deterministic fleet scenario is
// pushed through the full WiLocator pipeline — world build (parallel SVD
// construction), report ingestion, scan fusion, SVD positioning, travel-time
// accumulation, arrival prediction, traffic-map classification and anomaly
// detection — and every user-visible output is serialised to JSON and
// compared byte-for-byte against a checked-in golden file.
//
// The point is regression *breadth*: any change that shifts a fix by a
// centimetre, reorders vehicles, or perturbs an ETA shows up as a golden
// diff, reviewable in the PR. Refresh intentionally with:
//
//	go test ./internal/eval -run TestEndToEndGolden -update

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"wilocator/internal/api"
	"wilocator/internal/loadtest"
	"wilocator/internal/server"
	"wilocator/internal/trafficmap"
)

var update = flag.Bool("update", false, "rewrite golden files with the current pipeline output")

// goldenSpec is the pinned scenario. Small enough to run in a couple of
// seconds, large enough that every pipeline stage produces output.
var goldenSpec = loadtest.StreamSpec{
	Buses:    4,
	Phones:   2,
	Seed:     1848,
	Horizon:  8 * time.Minute,
	DupProb:  0.02,
	SwapProb: 0.02,
}

// goldenOutput is everything the pipeline tells a user, JSON-stable.
type goldenOutput struct {
	Tally        loadtest.Tally                    `json:"tally"`
	Ingest       api.IngestStats                   `json:"ingest"`
	Vehicles     []api.VehicleStatus               `json:"vehicles"`
	Arrivals     map[string][]api.ArrivalEstimate  `json:"arrivals"`
	TrafficStrip string                            `json:"trafficStrip"`
	Coverage     float64                           `json:"coverage"`
	Trajectories map[string]api.TrajectoryResponse `json:"trajectories"`
	Anomalies    []api.AnomalyReport               `json:"anomalies"`
}

// runGoldenPipeline builds the world and replays the pinned fleet, returning
// the canonical JSON rendering of every output.
func runGoldenPipeline(t *testing.T) []byte {
	t.Helper()
	w, err := loadtest.BuildWorld(goldenSpec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := loadtest.GenStreams(w, goldenSpec)
	if err != nil {
		t.Fatal(err)
	}
	svc, _, err := loadtest.NewService(w, server.Config{
		Now: loadtest.FixedClock(loadtest.T0.Add(goldenSpec.Horizon)),
	})
	if err != nil {
		t.Fatal(err)
	}

	out := goldenOutput{
		Tally:        loadtest.ReplaySequential(svc, streams),
		Arrivals:     map[string][]api.ArrivalEstimate{},
		Trajectories: map[string]api.TrajectoryResponse{},
	}
	if out.Tally.Errors != 0 {
		t.Fatalf("golden replay hit ingest errors: %s", out.Tally)
	}
	out.Ingest = svc.Stats()
	out.Vehicles = svc.Vehicles("")

	for _, route := range w.Net.Routes() {
		ests, err := svc.Arrivals(route.ID(), route.NumStops()-1)
		if err != nil {
			t.Fatalf("arrivals %s: %v", route.ID(), err)
		}
		out.Arrivals[route.ID()] = ests
	}

	tm, err := svc.TrafficMap("")
	if err != nil {
		t.Fatal(err)
	}
	out.TrafficStrip = tm.Strip
	out.Coverage = trafficmap.Coverage(tm.Segments)

	for _, st := range streams {
		traj, err := svc.Trajectory(st.BusID)
		if err != nil {
			t.Fatalf("trajectory %s: %v", st.BusID, err)
		}
		out.Trajectories[st.BusID] = traj
	}
	out.Anomalies, err = svc.Anomalies("")
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestEndToEndGolden(t *testing.T) {
	got := runGoldenPipeline(t)
	path := filepath.Join("testdata", "golden_pipeline.json")

	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}

	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("pipeline output deviates from %s (%d vs %d bytes).\n"+
			"Inspect with `go test ./internal/eval -run TestEndToEndGolden -update` + git diff;\n"+
			"first divergence near byte %d:\n got: %s\nwant: %s",
			path, len(got), len(want), firstDiff(got, want),
			window(got, firstDiff(got, want)), window(want, firstDiff(got, want)))
	}
}

// TestGoldenParallelismInvariant pins that the pipeline output does not
// depend on scheduler parallelism: the diagram build fans out across
// GOMAXPROCS workers, so a run serialised to one proc must still produce
// byte-identical output.
func TestGoldenParallelismInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("double pipeline run in -short mode")
	}
	base := runGoldenPipeline(t)
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	serial := runGoldenPipeline(t)
	if !bytes.Equal(base, serial) {
		t.Fatalf("pipeline output depends on GOMAXPROCS (%d vs 1): first divergence near byte %d",
			prev, firstDiff(base, serial))
	}
}

func firstDiff(a, b []byte) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// window renders ~120 bytes around position i for failure messages.
func window(b []byte, i int) string {
	lo := max(0, i-40)
	hi := min(len(b), i+80)
	return fmt.Sprintf("…%s…", b[lo:hi])
}
