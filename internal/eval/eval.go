// Package eval provides the metric machinery shared by the experiment
// harnesses: empirical CDFs (the paper reports positioning and prediction
// errors as CDFs in Fig. 8), summary statistics, and error helpers.
package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample of non-negative errors.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Median float64 `json:"median"`
	P90    float64 `json:"p90"`
	P95    float64 `json:"p95"`
	Max    float64 `json:"max"`
	Min    float64 `json:"min"`
}

// Summarize computes summary statistics. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	c := NewCDF(xs)
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return Summary{
		N:      len(xs),
		Mean:   sum / float64(len(xs)),
		Median: c.Quantile(0.5),
		P90:    c.Quantile(0.9),
		P95:    c.Quantile(0.95),
		Max:    c.sorted[len(c.sorted)-1],
		Min:    c.sorted[0],
	}
}

// String renders the summary as a single table-ready line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f median=%.2f p90=%.2f p95=%.2f max=%.2f",
		s.N, s.Mean, s.Median, s.P90, s.P95, s.Max)
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF copies and sorts the sample.
func NewCDF(xs []float64) CDF {
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	return CDF{sorted: cp}
}

// N returns the sample size.
func (c CDF) N() int { return len(c.sorted) }

// At returns P(X <= x).
func (c CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile, q in [0, 1], by nearest-rank.
func (c CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return c.sorted[i]
}

// Point is one (x, F(x)) pair of a rendered CDF series.
type Point struct {
	X float64 `json:"x"`
	F float64 `json:"f"`
}

// Points samples the CDF at n evenly spaced quantiles — the series a plot of
// Fig. 8 would draw.
func (c CDF) Points(n int) []Point {
	if n < 2 || len(c.sorted) == 0 {
		return nil
	}
	out := make([]Point, n)
	for i := 0; i < n; i++ {
		q := float64(i+1) / float64(n)
		out[i] = Point{X: c.Quantile(q), F: q}
	}
	return out
}

// MAE returns the mean absolute error between predictions and truths, which
// must have equal length.
func MAE(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("eval: length mismatch %d vs %d", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return 0, nil
	}
	var sum float64
	for i := range pred {
		sum += math.Abs(pred[i] - truth[i])
	}
	return sum / float64(len(pred)), nil
}

// AbsErrors returns |pred - truth| elementwise.
func AbsErrors(pred, truth []float64) ([]float64, error) {
	if len(pred) != len(truth) {
		return nil, fmt.Errorf("eval: length mismatch %d vs %d", len(pred), len(truth))
	}
	out := make([]float64, len(pred))
	for i := range pred {
		out[i] = math.Abs(pred[i] - truth[i])
	}
	return out, nil
}

// Table renders rows of label -> summary as an aligned text table, the form
// the benchmark harness prints for each figure.
type Table struct {
	Title  string
	Header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					sb.WriteByte(' ')
				}
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}
