// scenario_golden_test.go replays the scenario corpus — generated cities,
// a day-scale service, AP churn and an adversarial flood — through the real
// ingest → locate → predict → trafficmap pipeline and pins every Result to
// a checked-in golden. It lives in package eval_test because the scenario
// engine itself imports eval for its summary statistics; the external test
// package breaks the cycle. Regenerate with:
//
//	go test ./internal/eval -run TestScenarioCorpusGolden -update
package eval_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"wilocator/internal/scenario"
)

// updateGoldens reports whether the -update flag (registered by package
// eval's own golden test in this same binary) was passed.
func updateGoldens() bool {
	f := flag.Lookup("update")
	return f != nil && f.Value.String() == "true"
}

func encodeScenarioResult(t *testing.T, res *scenario.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// diffAt returns a short context window around the first differing byte.
func diffAt(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	lo := i - 80
	if lo < 0 {
		lo = 0
	}
	window := func(s []byte) string {
		hi := i + 80
		if hi > len(s) {
			hi = len(s)
		}
		if lo >= len(s) {
			return "<ended>"
		}
		return string(s[lo:hi])
	}
	return fmt.Sprintf("first difference at byte %d:\n got ...%s...\nwant ...%s...", i, window(a), window(b))
}

// TestScenarioCorpusGolden replays every corpus scenario and requires its
// Result to match the checked-in golden byte for byte. Under -short only
// the core tier (three scenarios) runs; `make corpus` runs the full set.
func TestScenarioCorpusGolden(t *testing.T) {
	for _, spec := range scenario.Corpus() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			if testing.Short() && !spec.Core() {
				t.Skipf("%s is outside the -short core tier", spec.Name)
			}
			start := time.Now()
			res, err := scenario.Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			got := encodeScenarioResult(t, res)
			t.Logf("%s: %d events, %d bytes, replayed in %v", spec.Name, res.Events, len(got), time.Since(start).Round(time.Millisecond))

			path := filepath.Join("testdata", "scenario_"+spec.Name+".json")
			if updateGoldens() {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("scenario %s diverged from golden %s\n%s", spec.Name, path, diffAt(got, want))
			}
		})
	}
}

// TestScenarioGoldenParallelismInvariant re-replays a corpus scenario with
// GOMAXPROCS pinned to 1 and requires the same bytes as the golden: replay
// determinism must not depend on scheduler parallelism. Paired with the
// -race run in `make ci`, this covers both ends of the concurrency dial.
func TestScenarioGoldenParallelismInvariant(t *testing.T) {
	if updateGoldens() {
		t.Skip("goldens being rewritten")
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	spec := scenario.MustByName("grid-churn")
	res, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := encodeScenarioResult(t, res)
	want, err := os.ReadFile(filepath.Join("testdata", "scenario_grid-churn.json"))
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("GOMAXPROCS=1 replay diverged from golden\n%s", diffAt(got, want))
	}
}
