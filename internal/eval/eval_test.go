package eval

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty summary = %+v", z)
	}
	if !strings.Contains(s.String(), "median=3.00") {
		t.Errorf("String = %q", s.String())
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	tests := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {99, 1},
	}
	for _, tt := range tests {
		if got := c.At(tt.x); got != tt.want {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if got := (CDF{}).At(1); got != 0 {
		t.Errorf("empty CDF At = %v", got)
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50})
	tests := []struct {
		q, want float64
	}{
		{0, 10}, {0.2, 10}, {0.5, 30}, {0.9, 50}, {1, 50}, {-1, 10}, {2, 50},
	}
	for _, tt := range tests {
		if got := c.Quantile(tt.q); got != tt.want {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if got := (CDF{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		prev := -1.0
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := c.Quantile(q)
			if q > 0 && v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("points = %v", pts)
	}
	if pts[4].F != 1 || pts[4].X != 10 {
		t.Errorf("last point = %+v", pts[4])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].F <= pts[i-1].F {
			t.Fatal("points not monotone")
		}
	}
	if got := c.Points(1); got != nil {
		t.Error("n=1 points should be nil")
	}
	if got := (CDF{}).Points(5); got != nil {
		t.Error("empty CDF points should be nil")
	}
}

func TestMAEAndAbsErrors(t *testing.T) {
	mae, err := MAE([]float64{1, 2, 3}, []float64{2, 2, 1})
	if err != nil || mae != 1 {
		t.Errorf("MAE = %v, err %v", mae, err)
	}
	if _, err := MAE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if mae, err := MAE(nil, nil); err != nil || mae != 0 {
		t.Errorf("empty MAE = %v, %v", mae, err)
	}
	es, err := AbsErrors([]float64{5, 1}, []float64{3, 4})
	if err != nil || es[0] != 2 || es[1] != 3 {
		t.Errorf("AbsErrors = %v, %v", es, err)
	}
	if _, err := AbsErrors([]float64{1}, nil); err == nil {
		t.Error("mismatch accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Table I", "route", "stops", "km")
	tab.AddRow("Rapid Line", "19", "13.7")
	tab.AddRow("9", "65", "16.3")
	out := tab.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "Rapid Line") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines", len(lines))
	}
	// Columns align: "stops" column starts at the same offset in all rows.
	idx := strings.Index(lines[1], "stops")
	for _, ln := range lines[2:] {
		if len(ln) < idx {
			t.Errorf("row too short: %q", ln)
		}
	}
}
