// Package rules registers every wilint analyzer in one place, so the
// command, the self-tests and any future CI tooling agree on the set.
package rules

import (
	"strings"

	"wilocator/internal/lint"
	"wilocator/internal/lint/atomicguard"
	"wilocator/internal/lint/clusterctx"
	"wilocator/internal/lint/determinism"
	"wilocator/internal/lint/durable"
	"wilocator/internal/lint/goroleak"
	"wilocator/internal/lint/hotpath"
	"wilocator/internal/lint/locksafe"
	"wilocator/internal/lint/metricname"
	"wilocator/internal/lint/poolsafe"
	"wilocator/internal/lint/retrysafe"
	"wilocator/internal/lint/units"
)

// All returns every registered analyzer, in stable order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		atomicguard.Analyzer,
		clusterctx.Analyzer,
		determinism.Analyzer,
		durable.Analyzer,
		goroleak.Analyzer,
		hotpath.Analyzer,
		locksafe.Analyzer,
		metricname.Analyzer,
		poolsafe.Analyzer,
		retrysafe.Analyzer,
		units.Analyzer,
	}
}

// ByName returns the analyzers whose names appear in the comma-separated
// list, or All() when the list is empty. An unknown name returns nil and
// the offending name.
func ByName(list string) ([]*lint.Analyzer, string) {
	if list == "" {
		return All(), ""
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, name
		}
		out = append(out, a)
	}
	return out, ""
}
