// Fixture for the retrysafe analyzer: this package's path ends in
// "client", so every waiting for-loop is held to the retry policy.
package client

import (
	"context"
	"errors"
	"time"
)

var errUnavailable = errors.New("unavailable")

func attemptOnce() error { return errUnavailable }

// sleepCtx is a ctx-aware wait helper.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// disciplined has all three legs: ctx check, attempt bound, backoff.
func disciplined(ctx context.Context, maxAttempts int) error {
	wait := 10 * time.Millisecond
	for attempt := 1; ; attempt++ {
		err := attemptOnce()
		if err == nil {
			return nil
		}
		if attempt >= maxAttempts || ctx.Err() != nil {
			return err
		}
		if serr := sleepCtx(ctx, wait); serr != nil {
			return err
		}
		wait *= 2
	}
}

// conditionBounded is bounded by the loop condition and waits on a timer.
func conditionBounded(ctx context.Context, deadline time.Time) error {
	backoff := 5 * time.Millisecond
	for time.Now().Before(deadline) {
		if attemptOnce() == nil {
			return nil
		}
		t := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
		backoff *= 2
	}
	return errUnavailable
}

// hammer is everything the policy forbids at once.
func hammer() error { // spins forever at a fixed cadence, deaf to shutdown
	for { // want `retry loop never checks the caller's context` `retry loop has no visible attempt bound` `retry loop waits a constant interval`
		if attemptOnce() == nil {
			return nil
		}
		time.Sleep(50 * time.Millisecond) // want `time.Sleep in a retry loop cannot be cancelled`
	}
}

// uncancellableSleep is otherwise disciplined but sleeps raw.
func uncancellableSleep(ctx context.Context, maxAttempts int) error {
	wait := time.Millisecond
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attemptOnce() == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		time.Sleep(wait) // want `time.Sleep in a retry loop cannot be cancelled`
		wait *= 2
	}
	return errUnavailable
}

// noBackoff retries at a fixed interval.
func noBackoff(ctx context.Context, maxAttempts int) error {
	for attempt := 0; attempt < maxAttempts; attempt++ { // want `retry loop waits a constant interval`
		if attemptOnce() == nil {
			return nil
		}
		if serr := sleepCtx(ctx, time.Millisecond); serr != nil {
			return serr
		}
	}
	return errUnavailable
}

// unbounded backs off and honors ctx but never gives up.
func unbounded(ctx context.Context) error {
	wait := time.Millisecond
	for { // want `retry loop has no visible attempt bound`
		if attemptOnce() == nil {
			return nil
		}
		if serr := sleepCtx(ctx, wait); serr != nil {
			return serr
		}
		wait *= 2
	}
}

// waived: a justified exception stays visible in the ledger.
func waived(ctx context.Context) error {
	wait := time.Millisecond
	//wilint:ignore retrysafe lease renewal loop, bounded by the process lifetime on purpose
	for {
		if attemptOnce() == nil {
			return nil
		}
		if serr := sleepCtx(ctx, wait); serr != nil {
			return serr
		}
		wait *= 2
	}
}

// notARetryLoop does not wait, so it is not judged.
func notARetryLoop(items []int) int {
	total := 0
	for _, it := range items {
		total += it
	}
	for i := 0; i < 3; i++ {
		total++
	}
	return total
}
