// Package retrysafe implements the wilint analyzer for retry-loop
// discipline in the networked packages.
//
// A retry loop in client or cluster is where an outage turns into either
// graceful degradation or a self-inflicted DDoS. The repo's policy (DESIGN
// "Retry policy") is that every such loop must (a) honor the caller's
// context, so shutdown and deadlines cancel in-flight retries, (b) bound
// its attempts — a max-attempt counter, a loop condition, or a failover
// deadline, and (c) back off between attempts rather than hammering a
// struggling peer at a fixed cadence.
//
// The analyzer treats any `for` loop (in a package whose import path ends
// in /client or /cluster, non-test files) that waits between iterations —
// a time.Sleep/After/NewTimer/NewTicker call or any *Sleep*-named helper —
// as a retry loop and reports, independently:
//
//   - a bare time.Sleep (uncancellable; use a ctx-aware sleep helper),
//   - no visible ctx check (ctx.Err(), ctx.Done(), or a wait helper that
//     takes the context),
//   - no visible attempt bound (no loop condition and no comparison
//     mentioning an attempt/max/deadline-flavoured quantity),
//   - no visible backoff (no *=, <<=, += growth and nothing
//     backoff-named in the loop).
//
// The checks are syntactic and local by design: the loop must make its
// policy visible where it is written, which is also what reviewers need.
package retrysafe

import (
	"go/ast"
	"go/token"
	"strings"

	"wilocator/internal/lint"
)

// Analyzer enforces bounded, backing-off, ctx-aware retry loops.
var Analyzer = &lint.Analyzer{
	Name: "retrysafe",
	Doc:  "retry loops in client/cluster must check ctx, bound attempts, and back off between attempts",
	Run:  run,
}

func gated(path string) bool {
	for _, s := range []string{"client", "cluster"} {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

func run(pass *lint.Pass) error {
	if pass.Pkg == nil || !gated(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			checkLoop(pass, loop)
			return true
		})
	}
	return nil
}

// loopFacts is what one scan of a for-loop's condition and body collects.
type loopFacts struct {
	waits        bool // sleeps/timers between iterations: it is a retry loop
	sleepPos     token.Pos
	ctxAware     bool // ctx.Err / ctx.Done / ctx passed to a wait helper
	boundCompare bool // a comparison over an attempt/max/deadline quantity
	backsOff     bool // *=, <<=, += growth or something backoff-named
}

func checkLoop(pass *lint.Pass, loop *ast.ForStmt) {
	var facts loopFacts
	if loop.Cond != nil {
		scan(pass, loop.Cond, &facts)
	}
	scan(pass, loop.Body, &facts)
	if !facts.waits {
		return // no inter-attempt wait: not a retry loop
	}
	if facts.sleepPos != token.NoPos {
		pass.Reportf(facts.sleepPos, "time.Sleep in a retry loop cannot be cancelled (use a ctx-aware sleep: select on ctx.Done() and a timer)")
	}
	if !facts.ctxAware {
		pass.Reportf(loop.Pos(), "retry loop never checks the caller's context (check ctx.Err() or select on ctx.Done() so shutdown cancels retries)")
	}
	if loop.Cond == nil && !facts.boundCompare {
		pass.Reportf(loop.Pos(), "retry loop has no visible attempt bound (compare against a MaxAttempts-style budget or a deadline)")
	}
	if !facts.backsOff {
		pass.Reportf(loop.Pos(), "retry loop waits a constant interval (grow the delay between attempts: wait *= 2 or equivalent)")
	}
}

// boundWords are the quantities a bounding comparison mentions.
var boundWords = []string{"attempt", "max", "deadline", "tries", "budget", "after"}

func scan(pass *lint.Pass, root ast.Node, facts *loopFacts) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if n != ast.Node(root) {
				// Nested loops are judged on their own; their waits must
				// not vouch for the outer loop.
				_, isFor := n.(*ast.ForStmt)
				if isFor {
					return false
				}
			}
		case *ast.CallExpr:
			scanCall(pass, n, facts)
		case *ast.BinaryExpr:
			switch n.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
				// Nil checks (err == nil, ctx.Err() != nil) test outcomes,
				// not budgets, even when an identifier sounds attempt-ish.
				if isNil(n.X) || isNil(n.Y) {
					break
				}
				text := strings.ToLower(lint.ExprString(n.X) + " " + lint.ExprString(n.Y))
				for _, w := range boundWords {
					if strings.Contains(text, w) {
						facts.boundCompare = true
					}
				}
			}
		case *ast.AssignStmt:
			switch n.Tok {
			case token.MUL_ASSIGN, token.SHL_ASSIGN, token.ADD_ASSIGN:
				facts.backsOff = true
			}
		case *ast.Ident:
			if strings.Contains(strings.ToLower(n.Name), "backoff") {
				facts.backsOff = true
			}
		}
		return true
	})
}

// scanCall classifies one call inside the loop.
func scanCall(pass *lint.Pass, call *ast.CallExpr, facts *loopFacts) {
	// ctx.Err() / ctx.Done() on a context.Context receiver.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if sel.Sel.Name == "Err" || sel.Sel.Name == "Done" {
			if tv, ok := pass.Info.Types[sel.X]; ok && lint.IsNamed(tv.Type, "context", "Context") {
				facts.ctxAware = true
				return
			}
		}
	}

	name := callName(call)
	lower := strings.ToLower(name)
	isWait := false
	if fn := lint.Callee(pass.Info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
		switch fn.Name() {
		case "Sleep":
			isWait = true
			facts.sleepPos = call.Pos()
		case "After", "NewTimer", "NewTicker", "Tick":
			isWait = true
		}
	} else if strings.Contains(lower, "sleep") {
		// Sleep-named helpers (c.retry.Sleep, sleepCtx, ...) count as waits
		// whether they resolve to a *types.Func or a function-typed field.
		isWait = true
	}
	if !isWait {
		return
	}
	facts.waits = true
	// A wait helper that receives the context is ctx-aware by contract.
	for _, arg := range call.Args {
		if tv, ok := pass.Info.Types[arg]; ok && lint.IsNamed(tv.Type, "context", "Context") {
			facts.ctxAware = true
		}
	}
}

// isNil reports whether e is the predeclared nil.
func isNil(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// callName is the final identifier of the call's function expression.
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
