package retrysafe_test

import (
	"testing"

	"wilocator/internal/lint/linttest"
	"wilocator/internal/lint/retrysafe"
)

func TestRetrySafe(t *testing.T) {
	linttest.Run(t, "testdata/src/client", retrysafe.Analyzer)
}
