package hotpath_test

import (
	"testing"

	"wilocator/internal/lint/hotpath"
	"wilocator/internal/lint/linttest"
)

func TestHotpath(t *testing.T) {
	linttest.Run(t, "testdata/src/hotpath", hotpath.Analyzer)
}
