// Test-file half of the hotpath fixture: annotations here cannot gate
// anything, because the escape build compiles only non-test files.
package hotpath

//wilint:hotpath // want `//wilint:hotpath in a _test.go file has no effect`
func helperInTest() *int {
	z := 1
	return &z
}
