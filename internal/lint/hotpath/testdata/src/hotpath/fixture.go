// Fixture for the hotpath analyzer: annotated functions are compiled with
// -gcflags=-m and heap escapes inside them become findings; unannotated
// functions may allocate freely.
package hotpath

import "fmt"

// leaks returns the address of a local, the classic forced heap move.
//
//wilint:hotpath
func leaks() *int {
	x := 42 // want `heap escape in hotpath function leaks: moved to heap: x`
	return &x
}

// boxes converts to an interface, which allocates to box the int.
//
//wilint:hotpath
func boxes(v int) any {
	return v // want `heap escape in hotpath function boxes: v escapes to heap`
}

// format leans on fmt, which boxes its arguments.
//
//wilint:hotpath
func format(n int) string {
	return fmt.Sprintf("%d", n) // want `heap escape in hotpath function format: n escapes to heap`
}

// clean is annotated and genuinely allocation-free: no findings.
//
//wilint:hotpath
func clean(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// amortized waives one deliberate allocation with a justified ignore.
//
//wilint:hotpath
func amortized() []int {
	return make([]int, 0, 16) //wilint:ignore hotpath pool warm-up path, amortized across reuse
}

// unannotated allocates but is not gated.
func unannotated() *int {
	y := 7
	return &y
}

//wilint:hotpath // want `misplaced //wilint:hotpath`
var notAFunction = 3

func use() {
	_ = leaks()
	_ = boxes(1)
	_ = format(2)
	_ = clean(nil)
	_ = amortized()
	_ = unannotated()
	_ = notAFunction
}
