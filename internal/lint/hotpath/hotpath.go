// Package hotpath implements the wilint analyzer that turns WiLocator's
// zero-allocation invariants into a compile-time gate.
//
// The decode path (0 allocs/report), the locate scratch path (bounded
// allocs/lookup), the batch ring drain and the Prometheus render are only
// fast because they do not touch the heap. Those properties are guarded by
// alloc-counting benchmarks (make bench-check), but benchmarks run late and
// report totals, not causes. This analyzer moves the gate to lint time: a
// function annotated
//
//	//wilint:hotpath
//
// is compiled with the gc escape analyzer's diagnostics enabled
// (go build -gcflags=-m) and every "escapes to heap" / "moved to heap"
// the compiler attributes to a line inside the annotated function becomes
// a finding — interface boxing, closure captures, append growth, fmt
// argument boxing, all of it, each pinned to the exact line and compiler
// message.
//
// Deliberate, amortized allocations (a sync.Pool warm-up path, an error
// path off the fast path) are waived line by line with a justified
// //wilint:ignore hotpath directive, so every exception is visible in the
// suppression ledger (`wilint -ledger`).
//
// Mechanics: the analyzer shells out to `go build -gcflags=-m` over the
// package's non-test files (file-list mode, so fixture packages under
// testdata build the same way real packages do). The go build cache
// replays compiler diagnostics on cache hits, so warm runs cost
// milliseconds. Inlining makes the compiler repeat one escape at every
// inline site; findings are deduplicated by (file, line, message).
// Annotations in _test.go files are reported as ineffective — the gate
// compiles only the non-test half of a package.
package hotpath

import (
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"

	"wilocator/internal/lint"
)

// Analyzer gates //wilint:hotpath functions on compiler escape analysis.
var Analyzer = &lint.Analyzer{
	Name: "hotpath",
	Doc:  "functions annotated //wilint:hotpath must be free of heap escapes under -gcflags=-m",
	Run:  run,
}

// span is the line range of one annotated function in one file.
type span struct {
	base  string // file base name, the key escape output is matched on
	start int
	end   int
	name  string // function name, for messages
}

// escLine is one parsed compiler diagnostic.
type escLine struct {
	base string
	line int
	msg  string
}

// buildCache memoizes one `go build -gcflags=-m` per package directory per
// process: the fixture suite and the real-tree smoke test revisit the same
// directories, and the build cache already makes the underlying compile a
// replay.
var (
	buildMu    sync.Mutex
	buildCache = map[string][]escLine{}
)

func run(pass *lint.Pass) error {
	dirs := lint.Directives(pass.Fset, pass.Files, "hotpath")
	if len(dirs) == 0 {
		return nil
	}

	// Associate each directive with the function whose doc block (or body)
	// contains it; report strays so a drifted annotation cannot silently
	// gate nothing.
	used := map[token.Pos]bool{}
	var spans []span
	var buildFiles []string // absolute paths of the package's non-test files
	for _, f := range pass.Files {
		fname := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(fname, "_test.go") {
			for p := range dirs {
				if pass.Fset.Position(p).Filename == fname {
					used[p] = true
					pass.Reportf(p, "//wilint:hotpath in a _test.go file has no effect (the escape gate compiles only non-test files)")
				}
			}
			continue
		}
		abs, err := filepath.Abs(fname)
		if err != nil {
			return fmt.Errorf("hotpath: %w", err)
		}
		buildFiles = append(buildFiles, abs)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			lo := fd.Pos()
			if fd.Doc != nil {
				lo = fd.Doc.Pos()
			}
			annotated := false
			for p := range dirs {
				if p >= lo && p <= fd.End() && pass.Fset.Position(p).Filename == fname {
					used[p] = true
					annotated = true
				}
			}
			if annotated {
				spans = append(spans, span{
					base:  filepath.Base(fname),
					start: pass.Fset.Position(fd.Pos()).Line,
					end:   pass.Fset.Position(fd.End()).Line,
					name:  fd.Name.Name,
				})
			}
		}
	}
	for p := range dirs {
		if !used[p] {
			pass.Reportf(p, "misplaced //wilint:hotpath (attach it to a function declaration's doc comment)")
		}
	}
	if len(spans) == 0 {
		return nil
	}

	escapes, err := escapeDiagnostics(pass.Pkg.Name(), buildFiles)
	if err != nil {
		return err
	}

	// Inline expansion repeats one escape at every inline site; collapse to
	// one finding per (file, line, message).
	seen := map[escLine]bool{}
	for _, e := range escapes {
		if seen[e] {
			continue
		}
		seen[e] = true
		for _, s := range spans {
			if e.base != s.base || e.line < s.start || e.line > s.end {
				continue
			}
			pos := lineStart(pass, s.base, e.line)
			if pos == token.NoPos {
				continue
			}
			pass.Reportf(pos, "heap escape in hotpath function %s: %s", s.name, e.msg)
			break
		}
	}
	return nil
}

// escDiag matches one compiler diagnostic line: file:line:col: message.
var escDiag = regexp.MustCompile(`^(.+\.go):(\d+):\d+: (.*)$`)

// escapeDiagnostics compiles files (one package directory, non-test files
// only) with -gcflags=-m and returns the heap-escape diagnostics. Lines
// like "leaking param", "can inline" and "does not escape" are compiler
// bookkeeping, not allocations, and are dropped here.
func escapeDiagnostics(pkgName string, files []string) ([]escLine, error) {
	if len(files) == 0 {
		return nil, nil
	}
	dir := filepath.Dir(files[0])
	args := []string{"build", "-gcflags=-m"}
	if pkgName == "main" {
		// File-list builds of package main link a binary into the working
		// directory; discard it.
		args = append(args, "-o", "/dev/null")
	}
	var bases []string
	for _, f := range files {
		if filepath.Dir(f) != dir {
			return nil, fmt.Errorf("hotpath: package files span directories %s and %s", dir, filepath.Dir(f))
		}
		bases = append(bases, filepath.Base(f))
	}

	key := dir + "\x00" + strings.Join(bases, "\x00")
	buildMu.Lock()
	cached, ok := buildCache[key]
	buildMu.Unlock()
	if ok {
		return cached, nil
	}

	cmd := exec.Command("go", append(args, bases...)...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("hotpath: go build -gcflags=-m in %s: %w\n%s", dir, err, out)
	}
	var escapes []escLine
	for _, line := range strings.Split(string(out), "\n") {
		m := escDiag.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		msg := m[3]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		var n int
		fmt.Sscanf(m[2], "%d", &n)
		escapes = append(escapes, escLine{base: filepath.Base(m[1]), line: n, msg: msg})
	}
	buildMu.Lock()
	buildCache[key] = escapes
	buildMu.Unlock()
	return escapes, nil
}

// lineStart resolves (file base name, line) back to a token.Pos in the
// pass's file set so findings carry real positions.
func lineStart(pass *lint.Pass, base string, line int) token.Pos {
	for _, f := range pass.Files {
		fname := pass.Fset.Position(f.Pos()).Filename
		if filepath.Base(fname) != base {
			continue
		}
		tf := pass.Fset.File(f.Pos())
		if tf == nil || line < 1 || line > tf.LineCount() {
			return token.NoPos
		}
		return tf.LineStart(line)
	}
	return token.NoPos
}
