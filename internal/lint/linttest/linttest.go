// Package linttest runs wilint analyzers over fixture packages, in the
// style of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is a directory of Go files (conventionally
// testdata/src/<name>/) forming one package that imports only the standard
// library. Expected findings are declared with trailing comments:
//
//	f.Close() // want `discards the error`
//
// Each `want` regex must match a diagnostic reported on its line, and
// every diagnostic must be matched by a want — including the driver's
// directive-hygiene findings, so fixtures can assert that //wilint:ignore
// both works and is reported when unused.
package linttest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"wilocator/internal/lint"
)

// Run analyzes the fixture package at dir (relative to the test's working
// directory) with the given analyzers and asserts the findings against the
// fixture's `// want` comments.
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	target, err := loadFixture(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run([]*lint.Target{target}, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	check(t, target, diags)
}

// loadFixture parses and typechecks one fixture directory as a package.
func loadFixture(dir string) (*lint.Target, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("linttest: %w", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("linttest: %w", err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			imports[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("linttest: no Go files in %s", dir)
	}
	exports, err := exportData(imports)
	if err != nil {
		return nil, err
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (fixtures may import the standard library only)", path)
		}
		return os.Open(exp)
	})
	conf := types.Config{Importer: imp}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := conf.Check("fixture/"+filepath.Base(dir), fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("linttest: typecheck %s: %w", dir, err)
	}
	return &lint.Target{PkgPath: pkg.Path(), Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

var (
	exportMu    sync.Mutex
	exportCache = map[string]string{}
)

// exportData returns export-data files for the given stdlib import paths,
// invoking `go list -export` once per not-yet-seen path set. Results are
// cached process-wide: fixture packages share a small stdlib footprint.
func exportData(imports map[string]bool) (map[string]string, error) {
	exportMu.Lock()
	defer exportMu.Unlock()
	var missing []string
	for path := range imports {
		if _, ok := exportCache[path]; !ok {
			missing = append(missing, path)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export"}, missing...)
		cmd := exec.Command("go", args...)
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("linttest: go list -export %s: %w", strings.Join(missing, " "), err)
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, fmt.Errorf("linttest: decode go list output: %w", err)
			}
			if p.Export != "" {
				exportCache[p.ImportPath] = p.Export
			}
		}
	}
	return exportCache, nil
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// check matches diagnostics against `// want` comments.
func check(t *testing.T, target *lint.Target, diags []lint.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	type want struct {
		re      *regexp.Regexp
		matched bool
		pos     string
	}
	wants := map[key][]*want{}
	for _, f := range target.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := target.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, m := range wantRE.FindAllStringSubmatch(c.Text[idx+len("// want "):], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants[k] = append(wants[k], &want{re: re, pos: pos.String()})
				}
			}
		}
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, w := range wants[k] {
			if w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matched want %q", w.pos, w.re)
			}
		}
	}
}
