// Package fixture exercises the atomicguard analyzer.
package fixture

import "sync/atomic"

type Stats struct {
	hits atomic.Uint64
}

type plainMixed struct {
	n uint64
}

var global Stats

func use(p *Stats) { _ = p }

func copyAssign() {
	snapshot := global // want `assignment copies global, whose type .* contains sync/atomic state`
	use(&snapshot)
}

func copySuppressed() {
	//wilint:ignore atomicguard snapshot of a quiescent Stats for offline comparison
	snapshot := global
	use(&snapshot)
}

func (s Stats) valueReceiver() int { return 0 } // want `value receiver of atomic-bearing type`

func take(s Stats) uint64 { return s.hits.Load() }

func passByValue() {
	take(global) // want `passes global by value`
}

func returnCopy() Stats {
	return global // want `return copies global`
}

func rangeCopy(list []Stats) {
	for _, s := range list { // want `range copies elements of atomic-bearing type`
		use(&s)
	}
}

func pointerOK() *Stats {
	return &global
}

func (m *plainMixed) inc() {
	atomic.AddUint64(&m.n, 1)
}

func (m *plainMixed) read() uint64 {
	return m.n // want `plain access to m.n, which is accessed atomically elsewhere .*; mixing the two races`
}
