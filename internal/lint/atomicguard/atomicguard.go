// Package atomicguard checks that lock-free state stays lock-free.
//
// The server holds its engine generation behind atomic.Pointer[engine] and
// its ingest counters in sync/atomic types precisely so the hot path never
// takes a lock. Two mistakes silently destroy those guarantees:
//
//   - copying a value that embeds a sync/atomic type (atomic.Pointer,
//     atomic.Uint64, atomic.Value, ...). The copy carries a snapshot that
//     no writer updates, and `go vet`'s copylocks does not cover the
//     numeric atomic types (they have no Lock method);
//   - mixing atomic and plain access to one field: a field updated via
//     atomic.AddUint64(&s.n, 1) in one place and read as `s.n` in another
//     is a data race the happens-before machinery cannot repair.
//
// The analyzer flags value copies (assignments, arguments, returns, value
// receivers, range variables) of atomic-bearing types, and every plain
// access to a field that is accessed atomically anywhere in the package.
package atomicguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"wilocator/internal/lint"
)

// Analyzer is the atomic-state checker.
var Analyzer = &lint.Analyzer{
	Name: "atomicguard",
	Doc:  "flags copies of sync/atomic-bearing values and mixed atomic/plain field access",
	Run:  run,
}

func run(pass *lint.Pass) error {
	checkCopies(pass)
	checkMixedAccess(pass)
	return nil
}

// atomicTypeNames are the sync/atomic value types that must not be copied.
var atomicTypeNames = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// containsAtomic reports whether a value of type t embeds sync/atomic
// state (directly, in a struct field, or in an array element). Pointers,
// slices, maps and channels are references — copying them is fine.
func containsAtomic(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch tt := t.(type) {
	case *types.Named:
		obj := tt.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && atomicTypeNames[obj.Name()] {
			return true
		}
		return containsAtomic(tt.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			if containsAtomic(tt.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsAtomic(tt.Elem(), seen)
	case *types.Alias:
		return containsAtomic(types.Unalias(tt), seen)
	}
	return false
}

func atomicBearing(t types.Type) bool {
	if t == nil {
		return false
	}
	return containsAtomic(t, map[types.Type]bool{})
}

// copyable reports whether the expression denotes existing state whose
// assignment elsewhere is a copy (a fresh composite literal or conversion
// is initialisation, not a copy of live state).
func copyable(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	default:
		return false
	}
}

// checkCopies walks every file for by-value movement of atomic-bearing
// state.
func checkCopies(pass *lint.Pass) {
	exprType := func(e ast.Expr) types.Type {
		if tv, ok := pass.Info.Types[e]; ok {
			return tv.Type
		}
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil && len(n.Recv.List) == 1 {
					rt := pass.Info.Types[n.Recv.List[0].Type].Type
					if rt != nil {
						if _, isPtr := rt.(*types.Pointer); !isPtr && atomicBearing(rt) {
							pass.Reportf(n.Recv.List[0].Type.Pos(),
								"method %s has a value receiver of atomic-bearing type %s; each call operates on a copy — use a pointer receiver",
								n.Name.Name, rt)
						}
					}
				}
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					if copyable(rhs) && atomicBearing(exprType(rhs)) {
						pass.Reportf(rhs.Pos(),
							"assignment copies %s, whose type %s contains sync/atomic state; share it by pointer",
							lint.ExprString(rhs), exprType(rhs))
					}
				}
			case *ast.CallExpr:
				if tv, ok := pass.Info.Types[n.Fun]; ok && tv.IsType() {
					return true // conversion, checked via its operand elsewhere
				}
				for _, arg := range n.Args {
					if copyable(arg) && atomicBearing(exprType(arg)) {
						pass.Reportf(arg.Pos(),
							"call passes %s by value, but its type %s contains sync/atomic state; pass a pointer",
							lint.ExprString(arg), exprType(arg))
					}
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if copyable(res) && atomicBearing(exprType(res)) {
						pass.Reportf(res.Pos(),
							"return copies %s, whose type %s contains sync/atomic state; return a pointer",
							lint.ExprString(res), exprType(res))
					}
				}
			case *ast.RangeStmt:
				if n.Value == nil {
					return true
				}
				vt := exprType(n.Value)
				if vt == nil {
					// `for _, s := range ...` defines s; look it up by object.
					if id, ok := n.Value.(*ast.Ident); ok {
						if obj := pass.Info.Defs[id]; obj != nil {
							vt = obj.Type()
						}
					}
				}
				if atomicBearing(vt) {
					pass.Reportf(n.Value.Pos(),
						"range copies elements of atomic-bearing type %s; iterate by index instead", vt)
				}
			}
			return true
		})
	}
}

// checkMixedAccess flags fields that are accessed both through sync/atomic
// functions and directly.
func checkMixedAccess(pass *lint.Pass) {
	// Pass 1: fields whose address feeds a sync/atomic function, and the
	// selector nodes already accounted for by those calls.
	atomicFields := map[types.Object][]ast.Node{} // field -> atomic call sites
	inAtomicCall := map[ast.Node]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lint.Callee(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods of the atomic value types are safe by construction
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if obj, ok := pass.Info.Uses[sel.Sel].(*types.Var); ok && obj.IsField() {
					atomicFields[obj] = append(atomicFields[obj], call)
					inAtomicCall[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}
	// Pass 2: any other touch of those fields is a plain (racy) access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || inAtomicCall[sel] {
				return true
			}
			obj, ok := pass.Info.Uses[sel.Sel].(*types.Var)
			if !ok || !obj.IsField() {
				return true
			}
			if sites, tracked := atomicFields[obj]; tracked {
				first := pass.Fset.Position(sites[0].Pos())
				pass.Reportf(sel.Pos(),
					"plain access to %s, which is accessed atomically elsewhere (e.g. %s); mixing the two races — use sync/atomic everywhere or migrate the field to an atomic.%s",
					lint.ExprString(sel), first, suggestType(obj))
			}
			return true
		})
	}
}

// suggestType names the atomic.* type matching a field's underlying type.
func suggestType(obj *types.Var) string {
	basic, ok := obj.Type().Underlying().(*types.Basic)
	if !ok {
		return "Value"
	}
	name := basic.Name()
	if len(name) > 0 {
		return strings.ToUpper(name[:1]) + name[1:]
	}
	return "Value"
}
