package atomicguard_test

import (
	"testing"

	"wilocator/internal/lint/atomicguard"
	"wilocator/internal/lint/linttest"
)

func TestAtomicguard(t *testing.T) {
	linttest.Run(t, "testdata/src/atomicguard", atomicguard.Analyzer)
}
