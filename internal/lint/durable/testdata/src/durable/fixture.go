// Package fixture exercises the durable analyzer.
package fixture

import (
	"io"
	"os"
)

func writeTemp(dir string) error {
	f, err := os.CreateTemp(dir, "x")
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("hi")); err != nil {
		f.Close() // want `f.Close\(\) error discarded on a write path`
		return err
	}
	f.Sync() // want `f.Sync\(\) error discarded`
	return f.Close()
}

func blankCloseOK(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("hi")); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func deferNoCheck(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `defer f.Close\(\) on a write path with no checked Close`
	_, err = f.Write([]byte("hi"))
	return err
}

func deferBackstopOK(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write([]byte("hi")); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

func readPathOK(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

func publish(tmp, dst string) {
	os.Rename(tmp, dst) // want `os.Rename error discarded`
}

func publishSuppressed(tmp, dst string) {
	//wilint:ignore durable best-effort republish of a stale artifact; the caller re-renames on the next tick
	os.Rename(tmp, dst)
}

// wal has both Sync() error and Close() error, so every Close is on a
// write path by definition.
type wal struct{}

func (w *wal) Sync() error  { return nil }
func (w *wal) Close() error { return nil }

func walBareClose(w *wal) {
	w.Close() // want `w.Close\(\) error discarded on a write path`
}

func walCheckedClose(w *wal) error {
	return w.Close()
}
