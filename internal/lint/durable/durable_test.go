package durable_test

import (
	"testing"

	"wilocator/internal/lint/durable"
	"wilocator/internal/lint/linttest"
)

func TestDurable(t *testing.T) {
	linttest.Run(t, "testdata/src/durable", durable.Analyzer)
}
