// Package durable checks that the crash-safety write paths never discard a
// durability error.
//
// The WAL/snapshot story of internal/traveltime only holds if every fsync
// boundary is checked: a dropped (*os.File).Sync error means "durable"
// records that are not, a dropped Close on a just-written file can swallow
// the final flush error, and a dropped os.Rename leaves a snapshot
// unpublished while the code believes otherwise.
//
// The analyzer recognises "durable" values — *os.File, and any type whose
// method set includes both Sync() error and Close() error (e.g.
// traveltime.Persister) — and reports:
//
//   - a Sync() call whose error is discarded (Sync exists only for
//     durability; ignoring its result is always a bug),
//   - a Close() call whose error is discarded on a write path — the value
//     was written to, synced, truncated, or handed to an io.Writer
//     parameter in the same function (for non-file durable types every
//     path counts as a write path),
//   - `defer f.Close()` on a write path with no explicitly checked Close
//     later in the function (the double-Close idiom — deferred backstop
//     plus checked close — passes),
//   - an os.Rename call whose error is discarded.
//
// Assigning the error to blank (`_ = f.Close()`) is accepted as a visible,
// greppable statement of intent on best-effort cleanup paths; the bare
// call is not.
package durable

import (
	"go/ast"
	"go/constant"
	"go/types"

	"wilocator/internal/lint"
)

// Analyzer is the durability-errcheck checker.
var Analyzer = &lint.Analyzer{
	Name: "durable",
	Doc:  "flags discarded errors from Sync, write-path Close and os.Rename",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// durableKind classifies a receiver type.
type durableKind int

const (
	notDurable durableKind = iota
	durableFile
	durableOther
)

// kindOf reports whether t is a durability-bearing type: *os.File, or any
// type whose method set has both Sync() error and Close() error.
func kindOf(t types.Type) durableKind {
	if t == nil {
		return notDurable
	}
	if lint.IsNamed(t, "os", "File") {
		return durableFile
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		t = types.NewPointer(t)
	}
	ms := types.NewMethodSet(t)
	hasErrMethod := func(name string) bool {
		for i := 0; i < ms.Len(); i++ {
			fn := ms.At(i).Obj()
			if fn.Name() != name {
				continue
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
				return false
			}
			named, ok := sig.Results().At(0).Type().(*types.Named)
			return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
		}
		return false
	}
	if hasErrMethod("Sync") && hasErrMethod("Close") {
		return durableOther
	}
	return notDurable
}

// identityOf resolves the "which value is this" object behind a receiver
// expression: the variable for an identifier, the field for a selector.
func identityOf(info *types.Info, x ast.Expr) types.Object {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		return info.Uses[x.Sel]
	}
	return nil
}

// writeMethods on a file mark it as a write path.
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteAt": true,
	"ReadFrom": true, "Truncate": true, "Sync": true,
}

// checkFunc analyzes one function declaration (function literals inside it
// included — a cleanup closure is part of the same write path).
func checkFunc(pass *lint.Pass, fd *ast.FuncDecl) {
	info := pass.Info

	// Pass 1 over the whole declaration: which durable identities are on a
	// write path, and which have an explicitly checked Close.
	written := map[types.Object]bool{}  // wrote/synced/handed to a writer
	checked := map[types.Object]bool{}  // has a Close whose error is consumed
	durables := map[types.Object]durableKind{}
	note := func(x ast.Expr) (types.Object, durableKind) {
		obj := identityOf(info, x)
		if obj == nil {
			return nil, notDurable
		}
		kind, ok := durables[obj]
		if !ok {
			kind = kindOf(obj.Type())
			durables[obj] = kind
		}
		return obj, kind
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Files opened for writing are write paths from birth:
			// `f, err := os.Create(tmp)` marks f.
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lint.Callee(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
				return true
			}
			creates := fn.Name() == "Create" || fn.Name() == "CreateTemp" ||
				(fn.Name() == "OpenFile" && len(call.Args) >= 2 && openFlagsWrite(info, call.Args[1]))
			if !creates || len(n.Lhs) == 0 {
				return true
			}
			if id, ok := n.Lhs[0].(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					written[obj] = true
					durables[obj] = durableFile
				} else if obj := info.Uses[id]; obj != nil {
					written[obj] = true
					durables[obj] = durableFile
				}
			}
		case *ast.CallExpr:
			// Method calls on durable receivers.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if obj, kind := note(sel.X); kind != notDurable {
					if writeMethods[sel.Sel.Name] {
						written[obj] = true
					}
				}
			}
			// Durable values handed to io.Writer-shaped parameters (io.Copy,
			// Store.WriteTo targets, encoders...).
			sig, _ := info.Types[n.Fun].Type.(*types.Signature)
			if sig != nil {
				for i, arg := range n.Args {
					obj, kind := note(arg)
					if obj == nil || kind == notDurable {
						continue
					}
					if i < sig.Params().Len() && implementsWriter(sig.Params().At(i).Type()) {
						written[obj] = true
					}
				}
			}
		}
		return true
	})

	// Checked Closes: Close() calls whose result is consumed. First collect
	// the call nodes whose result is visibly discarded (statement position,
	// defer/go, or assigned to blank) — every other Close call feeds an
	// expression or a real variable and counts as checked.
	discarded := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			discarded[ast.Unparen(n.X)] = true
		case *ast.DeferStmt:
			discarded[n.Call] = true
		case *ast.GoStmt:
			discarded[n.Call] = true
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						discarded[ast.Unparen(rhs)] = true
					}
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || discarded[call] {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
			if obj, kind := note(sel.X); kind != notDurable && obj != nil {
				checked[obj] = true
			}
		}
		return true
	})

	writePath := func(obj types.Object, kind durableKind) bool {
		return kind == durableOther || written[obj]
	}

	// Pass 2: report discards.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := lint.Callee(info, call); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "os" && fn.Name() == "Rename" {
				pass.Reportf(call.Pos(), "os.Rename error discarded; an unpublished rename breaks the atomic-replace contract — check it (or `_ =` it with a wilint:ignore justification)")
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, kind := note(sel.X)
			if kind == notDurable || obj == nil {
				return true
			}
			switch sel.Sel.Name {
			case "Sync":
				pass.Reportf(call.Pos(), "%s.Sync() error discarded; Sync exists only for durability — a failed fsync means the data is NOT durable", lint.ExprString(sel.X))
			case "Close":
				if writePath(obj, kind) {
					pass.Reportf(call.Pos(), "%s.Close() error discarded on a write path; Close flushes — an ignored error here can lose acknowledged writes (check it, or `_ =` it on best-effort cleanup)", lint.ExprString(sel.X))
				}
			}
		case *ast.DeferStmt:
			sel, ok := ast.Unparen(stmt.Call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, kind := note(sel.X)
			if kind == notDurable || obj == nil {
				return true
			}
			switch sel.Sel.Name {
			case "Sync":
				pass.Reportf(stmt.Pos(), "deferred %s.Sync() discards its error; sync explicitly and check", lint.ExprString(sel.X))
			case "Close":
				if writePath(obj, kind) && !checked[obj] {
					pass.Reportf(stmt.Pos(), "defer %s.Close() on a write path with no checked Close before return; use the deferred-backstop + explicit checked Close idiom", lint.ExprString(sel.X))
				}
			}
		}
		return true
	})
}

// openFlagsWrite reports whether an os.OpenFile flag expression includes a
// writing mode. Non-constant flags are conservatively treated as writing.
func openFlagsWrite(info *types.Info, flagExpr ast.Expr) bool {
	tv, ok := info.Types[flagExpr]
	if !ok || tv.Value == nil {
		return true
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	if !ok {
		return true
	}
	// O_WRONLY=1, O_RDWR=2 on every supported platform; O_APPEND/O_CREATE
	// vary but imply writing intent anyway, so the low bits suffice.
	return v&3 != 0
}

// implementsWriter reports whether t (or *t) satisfies io.Writer.
func implementsWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	iface, _ := t.Underlying().(*types.Interface)
	if iface == nil {
		return false
	}
	for i := 0; i < iface.NumMethods(); i++ {
		m := iface.Method(i)
		if m.Name() != "Write" {
			continue
		}
		sig := m.Type().(*types.Signature)
		if sig.Params().Len() == 1 && sig.Results().Len() == 2 {
			if slice, ok := sig.Params().At(0).Type().(*types.Slice); ok {
				if basic, ok := slice.Elem().(*types.Basic); ok && basic.Kind() == types.Byte {
					return true
				}
			}
		}
	}
	return false
}
