package units_test

import (
	"testing"

	"wilocator/internal/lint/linttest"
	"wilocator/internal/lint/units"
)

func TestUnits(t *testing.T) {
	linttest.Run(t, "testdata/src/units", units.Analyzer)
}
