// Package fixture exercises the units analyzer.
package fixture

func mixed(rss float64, distMeters float64) float64 {
	bad := rss + distMeters // want `mixes dBm and meters`
	if rss < distMeters { // want `mixes dBm and meters`
		bad++
	}
	var distTotal float64
	distTotal = rss // want `crosses units`
	distTotal += rss // want `crosses units`
	return bad + distTotal
}

func sameUnitOK(rssA, rssB, distA, distB float64) float64 {
	d := distA - distB
	if rssA > rssB {
		d++
	}
	// Multiplication legitimately changes dimension (path-loss slope).
	return d * rssA
}

func distanceTo(x float64) float64 { return x * 2 }

func unitFromCall(rss float64) float64 {
	return rss - distanceTo(rss) // want `mixes dBm and meters`
}

func constOK(rssFloor float64) bool {
	// Untyped constants bind to context; no unit of their own.
	return rssFloor < -90
}

func suppressed(rss float64, distMeters float64) float64 {
	//wilint:ignore units synthetic score: rss is rescaled into meter space two lines up
	return rss + distMeters
}
