// Package units flags arithmetic that mixes RSS power values (dBm) with
// distances (meters).
//
// The RF pipeline converts between the two constantly — path-loss models
// map dBm to meters, the locator ranks candidates by either signal space or
// metric space — and both live in plain float64s. Adding an RSS to a
// distance typechecks, compiles, and produces a subtly wrong diagram; no
// test distinguishes "slightly wrong geometry" from "mixed units" after the
// fact.
//
// Lacking a real dimensional type system, the analyzer infers a unit for
// each expression from identifier names:
//
//   - dBm:    names whose camelCase/snake_case tokens start with rss, rssi,
//     dbm, txpower, pathloss, attenuation
//   - meters: tokens starting with dist, meter, metre, radius, arc, chord,
//     km (kilometers are still length)
//
// and reports binary +, -, comparisons, and assignments whose two sides
// carry *different known* units. Same-unit subtraction/comparison is fine;
// so is anything involving an unknown unit — the analyzer is deliberately
// quiet rather than clever. Multiplication and division are exempt (they
// legitimately change dimension: a path-loss slope times a log-distance is
// how dBm becomes meters in the first place).
//
// Where a value genuinely changes meaning (a scratch buffer reused across
// spaces), rename it to something neutral rather than suppressing.
package units

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"

	"wilocator/internal/lint"
)

// Analyzer is the dimensional-mixing checker.
var Analyzer = &lint.Analyzer{
	Name: "units",
	Doc:  "flags +, -, comparisons and assignments mixing dBm (RSS) with meters (distance)",
	Run:  run,
}

// unit is an inferred physical dimension.
type unit int

const (
	unknown unit = iota
	dBm
	meters
)

func (u unit) String() string {
	switch u {
	case dBm:
		return "dBm"
	case meters:
		return "meters"
	}
	return "unknown"
}

// token prefixes that bind a name to a unit. Matched against each
// lower-cased word of the split identifier.
var dbmPrefixes = []string{"rss", "rssi", "dbm", "txpower", "pathloss", "attenuation", "signal"}
var meterPrefixes = []string{"dist", "meter", "metre", "radius", "arc", "chord", "km"}

// splitName breaks an identifier into lower-case tokens at camelCase
// boundaries, underscores and digits: "rssThresholdDBm" -> [rss threshold
// dbm], "min_dist_m" -> [min dist m].
func splitName(name string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	runes := []rune(name)
	for i, r := range runes {
		switch {
		case r == '_' || unicode.IsDigit(r):
			flush()
		case unicode.IsUpper(r):
			// Boundary unless we're inside an acronym run (RSS, DBM).
			if i > 0 && !unicode.IsUpper(runes[i-1]) {
				flush()
			} else if i > 0 && i+1 < len(runes) && unicode.IsUpper(runes[i-1]) && unicode.IsLower(runes[i+1]) {
				flush() // end of acronym: "RSSIValue" -> rssi|value
			}
			cur.WriteRune(r)
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return toks
}

// unitOfName infers a unit from an identifier. The LAST unit-bearing token
// wins: "distToRSS" is a conversion result in dBm space... in practice
// names put the dimension closest to the end ("minDistMeters", "rssDelta" —
// delta is unitless-agnostic so earlier tokens decide).
func unitOfName(name string) unit {
	u := unknown
	for _, tok := range splitName(name) {
		for _, p := range dbmPrefixes {
			if strings.HasPrefix(tok, p) {
				u = dBm
			}
		}
		for _, p := range meterPrefixes {
			if strings.HasPrefix(tok, p) {
				u = meters
			}
		}
	}
	return u
}

// numeric reports whether t is an integer or float (unit mixing on strings
// or bools is nonsense the type checker already rejects).
func numeric(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsFloat) != 0
}

// unitOf infers the unit an expression carries.
func unitOf(info *types.Info, e ast.Expr) unit {
	e = ast.Unparen(e)
	tv, ok := info.Types[e]
	if !ok || !numeric(tv.Type) || tv.Value != nil {
		return unknown // non-numeric, or a literal/constant: constants bind to context
	}
	switch e := e.(type) {
	case *ast.Ident:
		return unitOfName(e.Name)
	case *ast.SelectorExpr:
		return unitOfName(e.Sel.Name)
	case *ast.IndexExpr:
		return unitOf(info, e.X)
	case *ast.CallExpr:
		// math.Abs(d) keeps d's unit; other calls are conversions we can't
		// see through — except a function whose *name* declares a unit.
		if fn := lint.Callee(info, e); fn != nil {
			if fn.Pkg() != nil && fn.Pkg().Path() == "math" && len(e.Args) == 1 {
				switch fn.Name() {
				case "Abs", "Min", "Max", "Floor", "Ceil", "Round":
					return unitOf(info, e.Args[0])
				}
			}
			return unitOfName(fn.Name())
		}
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return unitOf(info, e.X)
		}
	case *ast.BinaryExpr:
		lu, ru := unitOf(info, e.X), unitOf(info, e.Y)
		switch e.Op {
		case token.ADD, token.SUB:
			if lu == ru {
				return lu
			}
			if lu == unknown {
				return ru
			}
			if ru == unknown {
				return lu
			}
		case token.MUL, token.QUO, token.REM:
			return unknown // dimension legitimately changes
		}
	}
	return unknown
}

func run(pass *lint.Pass) error {
	info := pass.Info
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				switch n.Op {
				case token.ADD, token.SUB, token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				default:
					return true
				}
				lu, ru := unitOf(info, n.X), unitOf(info, n.Y)
				if lu != unknown && ru != unknown && lu != ru {
					pass.Reportf(n.OpPos,
						"%s %s %s mixes %s and %s; convert explicitly (path-loss model) before combining signal space with metric space",
						lint.ExprString(n.X), n.Op, lint.ExprString(n.Y), lu, ru)
				}
			case *ast.AssignStmt:
				if n.Tok != token.ASSIGN && n.Tok != token.ADD_ASSIGN && n.Tok != token.SUB_ASSIGN {
					return true
				}
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i := range n.Lhs {
					lu, ru := unitOf(info, n.Lhs[i]), unitOf(info, n.Rhs[i])
					if lu != unknown && ru != unknown && lu != ru {
						pass.Reportf(n.Rhs[i].Pos(),
							"assigning %s (%s) to %s (%s) crosses units; convert explicitly or rename the destination to a unit-neutral name",
							lint.ExprString(n.Rhs[i]), ru, lint.ExprString(n.Lhs[i]), lu)
					}
				}
			}
			return true
		})
	}
	return nil
}
