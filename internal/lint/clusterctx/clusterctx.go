// Package clusterctx checks that cluster RPC paths propagate
// deadline-carrying contexts.
//
// Every blocking operation in internal/cluster — dialing a leader,
// forwarding a report, writing a replication frame — must inherit the
// caller's context so that node shutdown, request deadlines and failover
// timeouts actually cancel in-flight work. A context.Background() (or
// context.TODO()) minted inside the package severs that chain: the
// operation outlives its caller, a dead peer can pin a goroutine forever,
// and Kill()/Close() hang on work that can no longer be cancelled.
//
// The analyzer reports any call to context.Background or context.TODO in a
// package whose import path ends in "cluster". Non-test files only: a test
// is its own root and may legitimately mint one (though t.Context() is
// usually better there too). The fix is always the same — thread the
// context from Start, Dispatch or the connection handler, deriving
// deadlines with context.WithTimeout where a bound is needed.
package clusterctx

import (
	"go/ast"
	"strings"

	"wilocator/internal/lint"
)

// Analyzer is the cluster context-propagation checker.
var Analyzer = &lint.Analyzer{
	Name: "clusterctx",
	Doc:  "flags context.Background/TODO in cluster packages; RPC paths must propagate deadline-carrying contexts",
	Run:  run,
}

func run(pass *lint.Pass) error {
	if pass.Pkg == nil {
		return nil
	}
	path := pass.Pkg.Path()
	if path != "cluster" && !strings.HasSuffix(path, "/cluster") {
		return nil
	}
	for _, f := range pass.Files {
		// Tests are context roots; the production package is not.
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lint.Callee(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
			if fn.Name() == "Background" || fn.Name() == "TODO" {
				pass.Reportf(call.Pos(), "context.%s() in a cluster package severs cancellation: RPC and replication paths must propagate the caller's deadline-carrying context (thread it from Start/Dispatch, derive bounds with context.WithTimeout)", fn.Name())
			}
			return true
		})
	}
	return nil
}
