package clusterctx_test

import (
	"testing"

	"wilocator/internal/lint/clusterctx"
	"wilocator/internal/lint/linttest"
)

func TestClusterCtx(t *testing.T) {
	linttest.Run(t, "testdata/src/cluster", clusterctx.Analyzer)
}
