// Fixture for the clusterctx analyzer: this package's path ends in
// "cluster", so every context.Background/TODO in a non-test file is a
// finding, while threading a caller's context is clean.
package cluster

import (
	"context"
	"time"
)

func dialPeer(ctx context.Context) error {
	dctx, cancel := context.WithTimeout(ctx, time.Second) // deriving from the caller is the idiom
	defer cancel()
	<-dctx.Done()
	return dctx.Err()
}

func forwardDetached() {
	ctx := context.Background() // want `context.Background\(\) in a cluster package severs cancellation`
	_ = dialPeer(ctx)
}

func replicateTODO() {
	_ = dialPeer(context.TODO()) // want `context.TODO\(\) in a cluster package severs cancellation`
}

func backgroundInTimeout() {
	// Deriving a deadline does not excuse rooting it in Background.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second) // want `context.Background\(\) in a cluster package severs cancellation`
	defer cancel()
	_ = dialPeer(ctx)
}

// A local function named Background must not trip the checker.
type fakeCtx struct{}

func (fakeCtx) Background() int { return 0 }

func notContext() int {
	var f fakeCtx
	return f.Background()
}
