package cluster

import "context"

// Test files are context roots: this Background must NOT be reported.
func helperForTests() context.Context {
	return context.Background()
}
