// Package goroleak implements the wilint analyzer for goroutine lifecycle
// discipline in the long-running subsystems.
//
// Failover correctness (PR 7) depends on Node.Close actually waiting for
// its goroutines: a fire-and-forget `go` statement in server, cluster or
// traveltime is a goroutine that Kill() cannot join, a connection that
// outlives its listener, or a shipper that keeps writing into a closed
// WAL. The analyzer requires every `go` statement in a package whose
// import path ends in /server, /cluster or /traveltime (non-test files)
// to be visibly tied to a lifecycle mechanism:
//
//   - it calls (sync.WaitGroup).Done / Add somewhere in its body (the
//     owner joins it), or
//   - it signals completion over a channel (a send or close), or
//   - it blocks on a channel receive or ranges over one (its lifetime is
//     bounded by the sender closing the channel or a ctx.Done firing).
//
// The check is shallow by design: for `go f(...)` with f defined in the
// same package, f's body is inspected one level deep; a goroutine whose
// coordination is genuinely elsewhere carries a justified
// //wilint:ignore goroleak directive, keeping the exception auditable in
// the ledger.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"wilocator/internal/lint"
)

// Analyzer ties every go statement in server/cluster/traveltime to a
// WaitGroup or lifecycle channel.
var Analyzer = &lint.Analyzer{
	Name: "goroleak",
	Doc:  "go statements in server/cluster/traveltime must be joined via WaitGroup or bounded by a lifecycle channel",
	Run:  run,
}

// gatedSuffixes are the subsystems whose goroutines must be joinable.
var gatedSuffixes = []string{"server", "cluster", "traveltime"}

func gated(path string) bool {
	for _, s := range gatedSuffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

func run(pass *lint.Pass) error {
	if pass.Pkg == nil || !gated(pass.Pkg.Path()) {
		return nil
	}
	// Same-package function declarations, for the one-level-deep look
	// through `go f(...)`.
	decls := map[string]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls[fd.Name.Name] = fd
			}
		}
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue // tests own their goroutines; the race detector covers them
		}
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if tied(pass, gs.Call, decls) {
				return true
			}
			pass.Reportf(gs.Pos(), "goroutine is not tied to a WaitGroup or lifecycle channel (add wg.Add/Done or a done channel so Close can join it)")
			return true
		})
	}
	return nil
}

// tied reports whether the spawned call is visibly lifecycle-bound.
func tied(pass *lint.Pass, call *ast.CallExpr, decls map[string]*ast.FuncDecl) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return bodyTied(pass, fun.Body)
	case *ast.Ident:
		if fd := decls[fun.Name]; fd != nil {
			return bodyTied(pass, fd.Body)
		}
	case *ast.SelectorExpr:
		// A same-package method: inspect its declaration if we have it.
		if fn := lint.Callee(pass.Info, call); fn != nil && fn.Pkg() == pass.Pkg {
			if fd := decls[fn.Name()]; fd != nil {
				return bodyTied(pass, fd.Body)
			}
		}
	}
	return false
}

// bodyTied scans one function body for a lifecycle tie.
func bodyTied(pass *lint.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true // signals a consumer
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true // blocks on a sender: lifetime bounded by close/ctx
			}
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "close" {
					found = true
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Done" || fun.Sel.Name == "Add" {
					if tv, ok := pass.Info.Types[fun.X]; ok && lint.IsNamed(tv.Type, "sync", "WaitGroup") {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}
