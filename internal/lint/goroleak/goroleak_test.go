package goroleak_test

import (
	"testing"

	"wilocator/internal/lint/goroleak"
	"wilocator/internal/lint/linttest"
)

func TestGoroLeak(t *testing.T) {
	linttest.Run(t, "testdata/src/server", goroleak.Analyzer)
}
