// Fixture for the goroleak analyzer: this package's path ends in
// "server", so every go statement must be visibly lifecycle-bound.
package server

import (
	"context"
	"sync"
)

type node struct {
	wg   sync.WaitGroup
	done chan struct{}
}

// joined is the canonical owner-joins pattern.
func (n *node) joined(ctx context.Context) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		<-ctx.Done()
	}()
}

// signalled closes a channel so the owner can select on completion.
func (n *node) signalled() {
	go func() {
		defer close(n.done)
	}()
}

// sender reports completion over a channel.
func sender(results chan<- int) {
	go func() {
		results <- 42
	}()
}

// consumer ranges over a channel: its lifetime is the producer's.
func consumer(jobs <-chan int) {
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}

// fireAndForget has no tie at all.
func fireAndForget() {
	go func() { // want `goroutine is not tied to a WaitGroup or lifecycle channel`
		for {
		}
	}()
}

// namedLoop spawns a same-package function; the one-level-deep look sees
// the ctx.Done receive inside it.
func (n *node) namedLoop(ctx context.Context) {
	go loop(ctx)
}

func loop(ctx context.Context) {
	<-ctx.Done()
}

// namedLeak spawns a same-package function with no tie.
func namedLeak() {
	go spin() // want `goroutine is not tied to a WaitGroup or lifecycle channel`
}

func spin() {
	for {
	}
}

// waived records why the exception is safe.
func waived() {
	//wilint:ignore goroleak process-lifetime metrics pump, exits with the binary
	go spin()
}

// broadcaster mirrors the delta-push pump: started lazily by the first
// subscriber, woken over a capacity-1 channel, and joined through the
// WaitGroup when close() fires done. Both the method-value spawn and the
// select-driven body must pass.
type broadcaster struct {
	wg   sync.WaitGroup
	wake chan struct{}
	done chan struct{}
}

func (b *broadcaster) firstSubscribe() {
	b.wg.Add(1)
	go b.pump()
}

func (b *broadcaster) pump() {
	defer b.wg.Done()
	for {
		select {
		case <-b.done:
			return
		case <-b.wake:
		}
	}
}

func (b *broadcaster) shutdown() {
	close(b.done)
	b.wg.Wait()
}
