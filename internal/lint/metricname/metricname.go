// Package metricname enforces the Prometheus metric naming conventions on
// every instrument registered through an obs.Registry.
//
// Exposition-format consumers key alerting and dashboards off naming
// conventions the registry cannot check for free at compile time:
//
//   - every name is snake_case: ^[a-z][a-z0-9_]*[a-z0-9]$ (single lower-case
//     letters allowed), never a double underscore — the `__` prefix space is
//     reserved by Prometheus itself;
//   - counters count events and must end in `_total`;
//   - histograms observe quantities and must carry a base-unit suffix,
//     `_seconds` or `_bytes` — not milliseconds, not kilobytes, so recording
//     rules and dashboards never have to guess the unit;
//   - gauges are point-in-time values and must NOT end in `_total`, which
//     would advertise a monotone counter to rate().
//
// A name that only exists at runtime cannot be checked, so the analyzer also
// insists metric names are compile-time string constants — which the
// registry's registration-time-panic design wants anyway.
//
// The analyzer matches calls of Counter, CounterFunc, Gauge, GaugeFunc and
// Histogram methods on any named type called Registry, so fixtures (which
// may import only the standard library) can declare their own.
package metricname

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"

	"wilocator/internal/lint"
)

// Analyzer is the metric-naming checker.
var Analyzer = &lint.Analyzer{
	Name: "metricname",
	Doc:  "enforces Prometheus naming: snake_case names, counters end _total, histograms end _seconds/_bytes, gauges never end _total, names are constants",
	Run:  run,
}

// kindOf maps registering method names to the instrument family they create.
var kindOf = map[string]string{
	"Counter":     "counter",
	"CounterFunc": "counter",
	"Gauge":       "gauge",
	"GaugeFunc":   "gauge",
	"Histogram":   "histogram",
}

var snakeRE = regexp.MustCompile(`^[a-z]([a-z0-9_]*[a-z0-9])?$`)

// receiverName returns the named-type name of a method's receiver (after
// pointer indirection), or "".
func receiverName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := lint.Callee(pass.Info, call)
			if fn == nil {
				return true
			}
			kind, ok := kindOf[fn.Name()]
			if !ok || receiverName(fn) != "Registry" {
				return true
			}
			arg := call.Args[0]
			tv, ok := pass.Info.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(),
					"metric name passed to Registry.%s must be a compile-time string constant so the name can be checked and grepped",
					fn.Name())
				return true
			}
			name := constant.StringVal(tv.Value)
			if !snakeRE.MatchString(name) || strings.Contains(name, "__") {
				pass.Reportf(arg.Pos(),
					"metric name %q is not snake_case (want lower-case letters, digits and single underscores; `__` is reserved by Prometheus)",
					name)
				return true
			}
			switch kind {
			case "counter":
				if !strings.HasSuffix(name, "_total") {
					pass.Reportf(arg.Pos(),
						"counter %q must end in _total (Prometheus convention: counters count events)", name)
				}
			case "histogram":
				if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") {
					pass.Reportf(arg.Pos(),
						"histogram %q must carry a base-unit suffix, _seconds or _bytes (never milliseconds or kilobytes)", name)
				}
			case "gauge":
				if strings.HasSuffix(name, "_total") {
					pass.Reportf(arg.Pos(),
						"gauge %q must not end in _total, which advertises a monotone counter to rate()", name)
				}
			}
			return true
		})
	}
	return nil
}
