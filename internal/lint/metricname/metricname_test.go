package metricname_test

import (
	"testing"

	"wilocator/internal/lint/linttest"
	"wilocator/internal/lint/metricname"
)

func TestMetricName(t *testing.T) {
	linttest.Run(t, "testdata/src/metricname", metricname.Analyzer)
}
