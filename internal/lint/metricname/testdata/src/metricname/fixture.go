// Package fixture exercises the metricname analyzer against a stand-in
// Registry with the same registering method names as internal/obs.
package fixture

// Label mirrors obs.Label.
type Label struct{ Key, Value string }

// Counter, Gauge and Histogram stand-ins. The analyzer matches by receiver
// type name and method name, not by package path.
type Counter struct{}
type Gauge struct{}
type Histogram struct{}

// Registry mirrors the registering surface of obs.Registry.
type Registry struct{}

func (r *Registry) Counter(name, help string, labels ...Label) *Counter              { return nil }
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {}
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge                  { return nil }
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label)  {}
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	return nil
}

// NotARegistry has the same method names; the analyzer must ignore it.
type NotARegistry struct{}

func (n *NotARegistry) Counter(name, help string) {}

const constName = "requests_total"

func register(reg *Registry, runtimeName string) {
	// Well-named instruments pass.
	reg.Counter("ingest_reports_total", "reports")
	reg.Counter(constName, "requests")
	reg.CounterFunc("wal_appends_total", "appends", func() uint64 { return 0 })
	reg.Gauge("active_buses", "live buses")
	reg.Gauge("queue_depth_bytes", "bytes queued")
	reg.GaugeFunc("engine_generation", "generation", func() float64 { return 0 })
	reg.Histogram("ingest_seconds", "latency", nil)
	reg.Histogram("request_body_bytes", "body size", nil)

	// Counters must end _total.
	reg.Counter("ingest_reports", "reports")                              // want `must end in _total`
	reg.CounterFunc("wal_appends", "appends", func() uint64 { return 0 }) // want `must end in _total`

	// Histograms need a base-unit suffix.
	reg.Histogram("ingest_latency", "latency", nil) // want `base-unit suffix`
	reg.Histogram("ingest_millis", "latency", nil)  // want `base-unit suffix`

	// Gauges must not masquerade as counters.
	reg.Gauge("active_buses_total", "live buses")                         // want `must not end in _total`
	reg.GaugeFunc("generation_total", "gen", func() float64 { return 0 }) // want `must not end in _total`

	// Shape violations.
	reg.Counter("Ingest_total", "upper")       // want `not snake_case`
	reg.Counter("ingest__reports_total", "dd") // want `not snake_case`
	reg.Counter("_ingest_total", "leading")    // want `not snake_case`
	reg.Counter("ingest_total_", "trailing")   // want `not snake_case`
	reg.Gauge("9lives", "digit start")         // want `not snake_case`

	// Non-constant names cannot be checked.
	reg.Counter(runtimeName, "dynamic") // want `compile-time string constant`

	// Same method names elsewhere are out of scope.
	n := &NotARegistry{}
	n.Counter("whatever", "not a registry")

	// Suppression works and must be justified.
	//wilint:ignore metricname legacy dashboard keys on this one series
	reg.Counter("legacy_reports", "grandfathered")
}
