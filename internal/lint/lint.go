// Package lint is the core of wilint, the WiLocator static-analysis suite.
//
// It is a deliberately small re-implementation of the golang.org/x/tools
// go/analysis vocabulary (Analyzer, Pass, Diagnostic) on top of the standard
// library only: the build environment has no module proxy access, so the
// suite typechecks packages from source with go/parser + go/types and
// resolves dependencies through compiler export data produced by
// `go list -export` (see internal/lint/load). The analyzers themselves are
// written against this package and would port to x/tools/go/analysis almost
// mechanically if the dependency ever becomes available.
//
// Each analyzer machine-checks one invariant the codebase relies on:
//
//   - determinism: no wall clock, global randomness or map-iteration order
//     in the SVD build paths (TestParallelBuildEquivalence's guarantee).
//   - locksafe: shard/bus mutexes follow strict acquire/release discipline
//     on every return path, and lock acquisition order is consistent.
//   - atomicguard: values holding sync/atomic state are never copied, and
//     no field mixes atomic and plain access.
//   - durable: WAL/snapshot write paths never discard a Sync, Close or
//     os.Rename error (the crash-safety story of internal/traveltime).
//   - units: RSS (dBm) and distance (metres) quantities never meet in
//     arithmetic or comparisons without an explicit conversion.
//
// # Suppression
//
// A finding that is intentional is silenced with a justified directive on
// the offending line (or the line directly above it):
//
//	//wilint:ignore <analyzer> <justification>
//
// The justification is mandatory and directives that suppress nothing are
// themselves reported, so stale suppressions cannot accumulate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in output and in //wilint:ignore
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// guards (shown by `wilint -list`).
	Doc string
	// Run performs the check on one package and reports findings through
	// pass.Reportf.
	Run func(pass *Pass) error
}

// A Target is one typechecked package ready for analysis.
type Target struct {
	// PkgPath is the import path (test variants keep the `[... .test]`
	// suffix go list gives them).
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
}

// A Pass carries one analyzer's view of one target package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// MetaAnalyzer is the pseudo-analyzer name under which the driver reports
// problems with the suppression directives themselves (unused or
// unjustified //wilint:ignore lines).
const MetaAnalyzer = "wilint"

// ignoreDirective is one parsed //wilint:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	pos      token.Position // of the directive comment
	used     bool
}

// Run executes the analyzers over the targets, applies the suppression
// directives found in the targets' comments, and returns the surviving
// diagnostics (including directive-hygiene findings) sorted by position.
//
// Every (target, analyzer) pair runs as its own goroutine, bounded by
// GOMAXPROCS: the shared load (go list + typecheck) happens once before
// Run, targets are immutable during analysis, and each pair appends into
// its own diagnostic slot, so the merge is deterministic regardless of
// scheduling. Analyzer errors win over findings; the first (in target,
// analyzer order) is returned.
func Run(targets []*Target, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	// results[ti][ai] holds the raw findings of analyzer ai on target ti.
	results := make([][][]Diagnostic, len(targets))
	errs := make([][]error, len(targets))
	for ti := range targets {
		results[ti] = make([][]Diagnostic, len(analyzers))
		errs[ti] = make([]error, len(analyzers))
	}
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for ti, t := range targets {
		for ai, a := range analyzers {
			wg.Add(1)
			sem <- struct{}{}
			go func(ti, ai int, t *Target, a *Analyzer) {
				defer wg.Done()
				defer func() { <-sem }()
				var diags []Diagnostic
				pass := &Pass{
					Analyzer: a,
					Fset:     t.Fset,
					Files:    t.Files,
					Pkg:      t.Pkg,
					Info:     t.Info,
					diags:    &diags,
				}
				errs[ti][ai] = a.Run(pass)
				results[ti][ai] = diags
			}(ti, ai, t, a)
		}
	}
	wg.Wait()
	var all []Diagnostic
	for ti, t := range targets {
		var diags []Diagnostic
		for ai, a := range analyzers {
			if err := errs[ti][ai]; err != nil {
				return nil, fmt.Errorf("%s: analyzer %s: %w", t.PkgPath, a.Name, err)
			}
			diags = append(diags, results[ti][ai]...)
		}
		all = append(all, applyDirectives(t, diags, known)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}

// applyDirectives filters diags through the //wilint:ignore directives of
// one target and appends directive-hygiene diagnostics. A directive
// suppresses matching findings on its own line and on the following line
// (covering both trailing-comment and line-above placement).
func applyDirectives(t *Target, diags []Diagnostic, known map[string]bool) []Diagnostic {
	dirs := collectIgnores(t)
	var out []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, dir := range dirs {
			if dir.analyzer != d.Analyzer {
				continue
			}
			if dir.pos.Filename != d.Pos.Filename {
				continue
			}
			if dir.pos.Line == d.Pos.Line || dir.pos.Line == d.Pos.Line-1 {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, dir := range dirs {
		switch {
		case !known[dir.analyzer]:
			// A directive for an analyzer outside this run is not judged:
			// linttest runs analyzers one at a time over fixtures that may
			// carry directives for the others.
			continue
		case dir.reason == "":
			out = append(out, Diagnostic{
				Analyzer: MetaAnalyzer,
				Pos:      dir.pos,
				Message:  fmt.Sprintf("wilint:ignore %s needs a justification (//wilint:ignore %s <why>)", dir.analyzer, dir.analyzer),
			})
		case !dir.used:
			out = append(out, Diagnostic{
				Analyzer: MetaAnalyzer,
				Pos:      dir.pos,
				Message:  fmt.Sprintf("unused wilint:ignore directive for %s (nothing to suppress here)", dir.analyzer),
			})
		}
	}
	return out
}

// collectIgnores parses every //wilint:ignore directive in the target.
func collectIgnores(t *Target) []*ignoreDirective {
	var dirs []*ignoreDirective
	for _, f := range t.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//wilint:ignore")
				if !ok {
					continue
				}
				// A nested "//" ends the directive: trailing commentary (and
				// linttest `// want` markers) is not part of the justification.
				if i := strings.Index(text, "//"); i >= 0 {
					text = text[:i]
				}
				fields := strings.Fields(text)
				dir := &ignoreDirective{pos: t.Fset.Position(c.Pos())}
				if len(fields) > 0 {
					dir.analyzer = fields[0]
				}
				if len(fields) > 1 {
					dir.reason = strings.Join(fields[1:], " ")
				}
				dirs = append(dirs, dir)
			}
		}
	}
	return dirs
}

// A LedgerEntry is one //wilint:ignore directive, surfaced for audit by
// `wilint -ledger`: the suppression budget of the tree, enumerable in CI.
type LedgerEntry struct {
	Analyzer      string         `json:"analyzer"`
	Pos           token.Position `json:"-"`
	File          string         `json:"file"`
	Line          int            `json:"line"`
	Justification string         `json:"justification"`
}

// Ledger collects every //wilint:ignore directive across the targets,
// sorted by position. It does not judge the directives (Run does that);
// it only enumerates them so reviewers can audit what is being waived
// and why.
func Ledger(targets []*Target) []LedgerEntry {
	var out []LedgerEntry
	for _, t := range targets {
		for _, dir := range collectIgnores(t) {
			out = append(out, LedgerEntry{
				Analyzer:      dir.analyzer,
				Pos:           dir.pos,
				File:          dir.pos.Filename,
				Line:          dir.pos.Line,
				Justification: dir.reason,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// Directives returns the comment lines in the target's files that start
// with //wilint:<name>, with the prefix stripped — the per-analyzer
// configuration hook (e.g. //wilint:deterministic Build).
func Directives(fset *token.FileSet, files []*ast.File, name string) map[token.Pos]string {
	out := map[token.Pos]string{}
	prefix := "//wilint:" + name
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if text, ok := strings.CutPrefix(c.Text, prefix); ok {
					out[c.Pos()] = strings.TrimSpace(text)
				}
			}
		}
	}
	return out
}

// ExprString renders a (simple) expression as the lock/field key analyzers
// use in messages and state maps: selectors, indexes, derefs and calls over
// identifiers. Unrenderable shapes collapse to "?", keeping keys stable.
func ExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return ExprString(e.X)
	case *ast.StarExpr:
		return "*" + ExprString(e.X)
	case *ast.IndexExpr:
		return ExprString(e.X) + "[" + ExprString(e.Index) + "]"
	case *ast.CallExpr:
		return ExprString(e.Fun) + "()"
	case *ast.UnaryExpr:
		return e.Op.String() + ExprString(e.X)
	case *ast.BasicLit:
		return e.Value
	default:
		return "?"
	}
}

// Callee resolves the *types.Func a call invokes (plain functions, methods
// and qualified package functions). It returns nil for calls through
// function values, type conversions and builtins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsNamed reports whether t (after pointer indirection) is the named type
// pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
