// Package determinism checks that opted-in build paths are reproducible:
// no wall clock, no global random source, no map-iteration order.
//
// The SVD construction promises byte-identical output for every worker
// count and GOMAXPROCS (TestParallelBuildEquivalence); a single time.Now()
// or ranged map in a merge path silently breaks that guarantee long before
// a test notices. A package opts in with a file-level directive naming the
// entry points:
//
//	//wilint:deterministic Build
//
// Every function in the package reachable from an entry point through
// direct (same-package) calls is then checked for:
//
//   - calls to time.Now / time.Since,
//   - calls to the global math/rand and math/rand/v2 top-level functions
//     (seeded *rand.Rand instances constructed via New/NewSource are
//     fine — they are deterministic under the caller's control),
//   - `range` over a map, whose order differs between runs.
//
// Map ranging that genuinely cannot affect output (e.g. filling another
// map keyed identically) is suppressed with a justified //wilint:ignore.
package determinism

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"wilocator/internal/lint"
)

// Analyzer is the determinism checker.
var Analyzer = &lint.Analyzer{
	Name: "determinism",
	Doc:  "forbids wall-clock reads, global randomness and map-iteration order in //wilint:deterministic build paths",
	Run:  run,
}

func run(pass *lint.Pass) error {
	roots := map[string]bool{}
	for _, args := range lint.Directives(pass.Fset, pass.Files, "deterministic") {
		for _, name := range strings.Fields(args) {
			roots[name] = true
		}
	}
	if len(roots) == 0 {
		return nil
	}

	// Index this package's function declarations by their object.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if obj := pass.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}

	// Flood-fill the same-package call graph from the named roots,
	// remembering which root made each function reachable (for messages).
	via := map[types.Object]string{}
	var work []types.Object
	for obj, fd := range decls {
		if roots[fd.Name.Name] {
			via[obj] = fd.Name.Name
			work = append(work, obj)
		}
	}
	for len(work) > 0 {
		obj := work[len(work)-1]
		work = work[:len(work)-1]
		ast.Inspect(decls[obj], func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := lint.Callee(pass.Info, call)
			if callee == nil || callee.Pkg() != pass.Pkg {
				return true
			}
			if _, seen := via[callee]; !seen && decls[callee] != nil {
				via[callee] = via[obj]
				work = append(work, callee)
			}
			return true
		})
	}

	// Check every reachable function, in source order for stable output.
	var reachable []types.Object
	for obj := range via {
		reachable = append(reachable, obj)
	}
	sort.Slice(reachable, func(i, j int) bool { return decls[reachable[i]].Pos() < decls[reachable[j]].Pos() })
	for _, obj := range reachable {
		checkFunc(pass, decls[obj], via[obj])
	}
	return nil
}

// checkFunc reports nondeterminism sources inside one reachable function.
func checkFunc(pass *lint.Pass, fd *ast.FuncDecl, root string) {
	name := fd.Name.Name
	where := "reachable from " + root
	if name == root {
		where = "a //wilint:deterministic root"
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callee := lint.Callee(pass.Info, n)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			path := callee.Pkg().Path()
			switch {
			case path == "time" && (callee.Name() == "Now" || callee.Name() == "Since"):
				pass.Reportf(n.Pos(), "%s is %s but calls time.%s; deterministic builds must not read the wall clock",
					name, where, callee.Name())
			case path == "math/rand" || path == "math/rand/v2":
				sig := callee.Type().(*types.Signature)
				if sig.Recv() == nil && !strings.HasPrefix(callee.Name(), "New") {
					pass.Reportf(n.Pos(), "%s is %s but calls %s.%s, the process-global random source; use a seeded source instead",
						name, where, path, callee.Name())
				}
			}
		case *ast.RangeStmt:
			tv, ok := pass.Info.Types[n.X]
			if !ok {
				return true
			}
			t := tv.Type
			if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
				t = ptr.Elem()
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				pass.Reportf(n.Pos(), "%s is %s but ranges over map %s; map iteration order differs between runs",
					name, where, lint.ExprString(n.X))
			}
		}
		return true
	})
}
