package determinism_test

import (
	"testing"

	"wilocator/internal/lint/determinism"
	"wilocator/internal/lint/linttest"
)

func TestDeterminism(t *testing.T) {
	linttest.Run(t, "testdata/src/determinism", determinism.Analyzer)
}
