// Package fixture exercises the determinism analyzer: Build and everything
// it reaches must be reproducible.
//
//wilint:deterministic Build
package fixture

import (
	"math/rand"
	"time"
)

func seedMap() map[string]int { return map[string]int{"a": 1} }

func Build(in map[string]int) int {
	total := 0
	for _, v := range in { // want `ranges over map in; map iteration order differs between runs`
		total += v
	}
	return total + helper() + merged() + seeded()
}

func helper() int {
	t := time.Now() // want `calls time.Now; deterministic builds must not read the wall clock`
	_ = t
	return rand.Int() // want `math/rand.Int, the process-global random source`
}

// merged ranges over a map but only fills another map keyed identically,
// which cannot affect output: the canonical justified suppression.
func merged() int {
	out := map[string]bool{}
	//wilint:ignore determinism fills out keyed identically; per-entry writes are order-insensitive
	for k := range seedMap() {
		out[k] = true
	}
	return len(out)
}

// seeded uses a caller-controlled source: deterministic, not reported.
func seeded() int {
	r := rand.New(rand.NewSource(1))
	return r.Int()
}

// notReachable is never called from Build; the wall clock is fine here.
func notReachable() time.Time {
	return time.Now()
}

// A suppression with nothing beneath it must itself be reported.
//
//wilint:ignore determinism stale, suppresses nothing // want `unused wilint:ignore directive for determinism`
var sentinel = 0

//wilint:ignore determinism // want `wilint:ignore determinism needs a justification`
var sentinel2 = 0
