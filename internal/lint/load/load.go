// Package load typechecks Go packages for wilint without golang.org/x/tools.
//
// It shells out to `go list -test -deps -export -json`, which compiles every
// dependency into the build cache and reports the export-data file of each —
// entirely offline and incremental (repeat runs hit the cache). The packages
// under analysis are then parsed from source and typechecked with go/types,
// importing dependencies through go/importer's gc export-data reader. Test
// files are included: the `p [p.test]` and `p_test [p.test]` variants go
// list synthesises are preferred over the plain package so _test.go code is
// analyzed too.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"wilocator/internal/lint"
)

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	ForTest    string
	Standard   bool
	GoFiles    []string
	CgoFiles   []string
	ImportMap  map[string]string
	Module     *struct{ Path, Dir string }
}

// Options tunes a Load.
type Options struct {
	// Dir is the working directory for `go list` (module root or below).
	// Empty means the current directory.
	Dir string
	// Tests includes _test.go files and external test packages. Default
	// true via LoadTargets; the zero Options value excludes them.
	Tests bool
}

// Targets loads the packages matching patterns (e.g. "./...") and returns
// them typechecked, ready for lint.Run. Only packages of the surrounding
// module are returned as targets; dependencies are consumed as export data.
//
// The expensive `go list -export` walk happens exactly once per call; the
// per-package typechecks then run in parallel (bounded by GOMAXPROCS).
// That is safe because token.FileSet is internally synchronized and each
// package gets its own importer closure — dependencies are read from
// export-data files, never from another in-flight typecheck. Results keep
// go list order, so downstream output is deterministic.
func Targets(patterns []string, opts Options) ([]*lint.Target, error) {
	pkgs, exports, err := goList(patterns, opts)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	targets := make([]*lint.Target, len(pkgs))
	errs := make([]error, len(pkgs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, p := range pkgs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, p *listPackage) {
			defer wg.Done()
			defer func() { <-sem }()
			targets[i], errs[i] = typecheck(fset, p, exports)
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return targets, nil
}

// goList runs `go list` and splits the result into the module packages to
// analyze and the export-data table for every dependency.
func goList(patterns []string, opts Options) ([]*listPackage, map[string]string, error) {
	args := []string{"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,GoFiles,CgoFiles,ImportMap,Module,ForTest,Standard"}
	if opts.Tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = opts.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("lint/load: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	byPath := map[string]*listPackage{}
	var order []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("lint/load: decode go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Module == nil || p.Standard {
			continue // dependency: export data only
		}
		if p.Name == "main" && strings.HasSuffix(p.ImportPath, ".test") {
			continue // synthesised test main
		}
		pp := p
		byPath[p.ImportPath] = &pp
		order = append(order, p.ImportPath)
	}

	// Prefer the `p [p.test]` variant (source + test files in one package)
	// over the plain package when both were listed.
	var pkgs []*listPackage
	for _, path := range order {
		p := byPath[path]
		if p.ForTest == "" {
			if variant := byPath[p.ImportPath+" ["+p.ImportPath+".test]"]; variant != nil {
				continue // superseded by its test variant
			}
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, exports, nil
}

// typecheck parses and typechecks one package, resolving imports through
// export data.
func typecheck(fset *token.FileSet, p *listPackage, exports map[string]string) (*lint.Target, error) {
	if len(p.CgoFiles) > 0 {
		return nil, fmt.Errorf("lint/load: %s: cgo packages are not supported", p.ImportPath)
	}
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint/load: %w", err)
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := p.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	})
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	// Typecheck under the plain import path: go list's variant suffix
	// ("pkg [pkg.test]") is loader bookkeeping, and analyzers that gate on
	// package-path suffixes (clusterctx, goroleak, retrysafe, ...) must see
	// the real path or they silently skip the test variant — which, since
	// the loader prefers that variant, would skip the whole package.
	checkPath := p.ImportPath
	if i := strings.Index(checkPath, " ["); i >= 0 {
		checkPath = checkPath[:i]
	}
	pkg, err := conf.Check(checkPath, fset, files, info)
	if err != nil && len(typeErrs) > 0 {
		err = typeErrs[0]
	}
	if err != nil {
		return nil, fmt.Errorf("lint/load: typecheck %s: %w", p.ImportPath, err)
	}
	return &lint.Target{
		PkgPath: p.ImportPath,
		Fset:    fset,
		Files:   files,
		Pkg:     pkg,
		Info:    info,
	}, nil
}
