// Package poolsafe implements the wilint analyzer for sync.Pool
// discipline.
//
// WiLocator leans on pools in every hot path: the server's batch-call and
// scratch pools, the locate lookup scratch, the obs render buffer. The two
// bug classes that make pools dangerous are aliasing (an object is Put
// back while a reference to it is still live — the next Get hands the same
// memory to a concurrent user) and stale state (an object is Get and used
// without resetting what the previous user left in it). PR 8's inflight
// guard papers over one instance of the first class dynamically; this
// analyzer gates both classes statically:
//
//   - use-after-Put: after a non-deferred pool.Put(x), the variable x must
//     not appear again in the function. (A deferred Put is exempt — it runs
//     at return, after every textual use.)
//   - double-Put: two Put calls repooling the same variable in one function
//     are reported, even on exclusive branches; the conservative cases are
//     waived with a justified ignore.
//   - Get-without-reset: after binding x := pool.Get().(T), the first
//     meaningful operation on x must re-establish its invariants — a
//     Reset/reset/Clear method call, a field write, clear(x), or a call to
//     a reset-named helper. Nil checks, rebinding, returning x (the
//     getter-helper idiom, where the caller owns the reset), and handing x
//     straight back to the pool are all fine.
//
// The analysis is intraprocedural and position-based: "after" means later
// in source order within the same function, which is exactly how the
// repo's pool code is written. Cross-function aliasing is out of scope.
package poolsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"wilocator/internal/lint"
)

// Analyzer enforces sync.Pool Get/Put discipline.
var Analyzer = &lint.Analyzer{
	Name: "poolsafe",
	Doc:  "sync.Pool objects are not used after Put, not Put twice, and are reset after Get",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd.Body)
			}
		}
	}
	return nil
}

// useKind classifies one occurrence of a pool-tracked variable.
type useKind int

const (
	kindNeutral useKind = iota // nil check, comparison, deferred cleanup
	kindReset                  // reset method, field write, clear, reset-named helper
	kindStop                   // rebound or returned: tracking ends
	kindPut                    // handed back to the pool
	kindViolate                // any other read/escape of the value
)

// use is one classified occurrence of a tracked variable.
type use struct {
	pos  token.Pos
	end  token.Pos
	kind useKind
	put  *ast.CallExpr // for kindPut, the Put call
}

// putEvent is one pool.Put(x) call.
type putEvent struct {
	call     *ast.CallExpr
	obj      types.Object
	deferred bool
}

// getEvent is one x := pool.Get().(T) binding.
type getEvent struct {
	obj types.Object
	end token.Pos // end of the binding statement
}

func checkFunc(pass *lint.Pass, body *ast.BlockStmt) {
	var puts []putEvent
	var gets []getEvent

	// First walk: find the pool traffic.
	withParents(body, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if poolRecv(pass.Info, call, "Put") != nil {
			if obj := argObject(pass.Info, call); obj != nil {
				puts = append(puts, putEvent{call: call, obj: obj, deferred: underDefer(stack)})
			}
			return
		}
		if poolRecv(pass.Info, call, "Get") == nil {
			return
		}
		// Climb out of the x := pool.Get().(T) wrapping to the binding.
		var cur ast.Node = call
		for i := len(stack) - 2; i >= 0; i-- {
			switch p := stack[i].(type) {
			case *ast.ParenExpr, *ast.TypeAssertExpr:
				cur = p
				continue
			case *ast.AssignStmt:
				if len(p.Lhs) >= 1 {
					if id, ok := p.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
						obj := pass.Info.Defs[id]
						if obj == nil {
							obj = pass.Info.Uses[id]
						}
						if obj != nil {
							gets = append(gets, getEvent{obj: obj, end: p.End()})
						}
					}
				}
			}
			break
		}
		_ = cur
	})

	if len(puts) == 0 && len(gets) == 0 {
		return
	}

	// Second walk: classify every occurrence of each tracked variable.
	tracked := map[types.Object][]use{}
	for _, p := range puts {
		tracked[p.obj] = nil
	}
	for _, g := range gets {
		tracked[g.obj] = nil
	}
	withParents(body, func(n ast.Node, stack []ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok {
			return
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return
		}
		if _, yes := tracked[obj]; !yes {
			return
		}
		kind, putCall := classify(pass.Info, id, stack)
		tracked[obj] = append(tracked[obj], use{pos: id.Pos(), end: id.End(), kind: kind, put: putCall})
	})

	// Get-without-reset: the first meaningful operation after the binding
	// must re-establish the object's invariants.
	for _, g := range gets {
		for _, u := range tracked[g.obj] {
			if u.pos < g.end {
				continue
			}
			if u.kind == kindNeutral {
				continue
			}
			if u.kind == kindViolate {
				pass.Reportf(u.pos, "%s is taken from the pool but used before any reset (reset fields or call a Reset method first)", g.obj.Name())
			}
			break // reset, stop, put, or the reported violation: decided
		}
	}

	// Use-after-Put and double-Put.
	putsByObj := map[types.Object][]putEvent{}
	for _, p := range puts {
		putsByObj[p.obj] = append(putsByObj[p.obj], p)
	}
	for obj, ps := range putsByObj {
		for i, p := range ps {
			if i > 0 {
				pass.Reportf(p.call.Pos(), "%s is returned to the pool by more than one Put on this function's paths (double Put corrupts the pool)", obj.Name())
			}
			if p.deferred {
				continue // runs at return, after every textual use
			}
			for _, u := range tracked[obj] {
				if u.pos <= p.call.End() {
					continue
				}
				if u.kind == kindPut {
					continue // repooling again is the double-Put check's finding
				}
				pass.Reportf(u.pos, "%s is used after being returned to the pool (Put publishes it to other goroutines)", obj.Name())
				break
			}
		}
	}
}

// withParents walks n, invoking fn with each node and its ancestor stack
// (stack[len-1] is the node itself).
func withParents(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		fn(n, stack)
		return true
	})
}

// underDefer reports whether the stack passes through a defer statement.
func underDefer(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// poolRecv returns the receiver expression when call is (sync.Pool).name,
// nil otherwise.
func poolRecv(info *types.Info, call *ast.CallExpr, name string) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil
	}
	tv, ok := info.Types[sel.X]
	if !ok || !lint.IsNamed(tv.Type, "sync", "Pool") {
		return nil
	}
	return sel.X
}

// argObject resolves the (possibly &-wrapped) first argument of a Put call
// to its variable, nil when the argument is not a simple variable.
func argObject(info *types.Info, call *ast.CallExpr) types.Object {
	if len(call.Args) != 1 {
		return nil
	}
	arg := ast.Unparen(call.Args[0])
	if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
		arg = ast.Unparen(u.X)
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}

// resetName reports whether a method or helper name is reset-flavoured.
func resetName(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "reset") || strings.Contains(l, "clear") || l == "init"
}

// classify decides what one occurrence of a tracked variable does to it.
// stack[len-1] is the *ast.Ident itself.
func classify(info *types.Info, id *ast.Ident, stack []ast.Node) (useKind, *ast.CallExpr) {
	if underDefer(stack) {
		return kindNeutral, nil
	}
	// Climb the expression chain the identifier roots: selectors, indexes,
	// derefs, parens, address-of, type asserts.
	var cur ast.Expr = id
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			cur = p
			continue
		case *ast.SelectorExpr:
			if p.X == cur {
				cur = p
				continue
			}
			return kindNeutral, nil // x is the Sel of someone else's chain
		case *ast.IndexExpr:
			if p.X == cur {
				cur = p
				continue
			}
			return kindViolate, nil // used as an index value
		case *ast.StarExpr:
			cur = p
			continue
		case *ast.TypeAssertExpr:
			cur = p
			continue
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				cur = p
				continue
			}
			return kindViolate, nil
		case *ast.CallExpr:
			if p.Fun == cur {
				// The chain is being called: x.Reset(), x.buf.Reset(), x.process().
				if sel, ok := ast.Unparen(cur).(*ast.SelectorExpr); ok && resetName(sel.Sel.Name) {
					return kindReset, nil
				}
				return kindViolate, nil
			}
			// The chain is an argument.
			if poolRecv(info, p, "Put") != nil {
				return kindPut, p
			}
			if fid, ok := ast.Unparen(p.Fun).(*ast.Ident); ok {
				if fid.Name == "clear" || resetName(fid.Name) {
					return kindReset, nil
				}
			}
			if sel, ok := ast.Unparen(p.Fun).(*ast.SelectorExpr); ok && resetName(sel.Sel.Name) {
				return kindReset, nil
			}
			return kindViolate, nil
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if lhs == cur {
					if cur == ast.Expr(id) {
						return kindStop, nil // rebound: the pooled value is gone
					}
					return kindReset, nil // field/element write re-establishes state
				}
			}
			return kindViolate, nil // aliased or read on the RHS
		case *ast.BinaryExpr:
			return kindNeutral, nil // comparisons don't touch pooled state
		case *ast.ReturnStmt:
			return kindStop, nil // ownership transferred to the caller
		case *ast.IncDecStmt:
			return kindReset, nil
		default:
			return kindViolate, nil
		}
	}
	return kindNeutral, nil
}
