// Fixture for the poolsafe analyzer: sync.Pool Get/Put discipline.
package poolsafe

import (
	"bytes"
	"sync"
)

type scratch struct {
	buf  bytes.Buffer
	rows []int
}

func (s *scratch) Reset() {
	s.buf.Reset()
	s.rows = s.rows[:0]
}

var pool = sync.Pool{New: func() any { return new(scratch) }}

// useAfterPut reads the object after handing it back: the next Get may be
// mutating it concurrently.
func useAfterPut() int {
	sc := pool.Get().(*scratch)
	sc.Reset()
	pool.Put(sc)
	return len(sc.rows) // want `sc is used after being returned to the pool`
}

// deferredPutIsFine: the Put runs at return, after every textual use.
func deferredPutIsFine() int {
	sc := pool.Get().(*scratch)
	defer pool.Put(sc)
	sc.Reset()
	return len(sc.rows)
}

// doublePut repools the same object on two paths.
func doublePut(fail bool) {
	sc := pool.Get().(*scratch)
	sc.Reset()
	if fail {
		pool.Put(sc)
	}
	pool.Put(sc) // want `sc is returned to the pool by more than one Put`
}

// getWithoutReset consumes stale state left by the previous user.
func getWithoutReset() int {
	sc := pool.Get().(*scratch)
	return sc.buf.Len() // want `sc is taken from the pool but used before any reset`
}

// resetMethodFirst is the canonical consumer.
func resetMethodFirst() int {
	sc := pool.Get().(*scratch)
	sc.Reset()
	return sc.buf.Len()
}

// fieldResetFirst re-establishes state with a field method and a write.
func fieldResetFirst() int {
	sc := pool.Get().(*scratch)
	sc.buf.Reset()
	sc.rows = sc.rows[:0]
	return sc.buf.Len()
}

// fieldWriteFirst overwrites state directly.
func fieldWriteFirst(n int) int {
	sc := pool.Get().(*scratch)
	sc.rows = append(sc.rows[:0], n)
	return len(sc.rows)
}

// nilCheckThenReset: comparisons are neutral, the rebind ends tracking.
func nilCheckThenReset() *scratch {
	sc, _ := pool.Get().(*scratch)
	if sc == nil {
		sc = new(scratch)
	}
	return sc
}

// getterHelper returns the pooled object: the caller owns the reset.
func getterHelper() *scratch {
	if sc, ok := pool.Get().(*scratch); ok {
		return sc
	}
	return new(scratch)
}

// waivedDoublePut shows the escape hatch for exclusive-branch Puts.
func waivedDoublePut(fail bool) {
	sc := pool.Get().(*scratch)
	sc.Reset()
	if fail {
		pool.Put(sc)
		return
	}
	//wilint:ignore poolsafe branches are exclusive, the early return guards the first Put
	pool.Put(sc)
}

// notAPool: Get/Put on some other type must not trip the checker.
type fakePool struct{}

func (fakePool) Get() any  { return nil }
func (fakePool) Put(x any) {}

func notAPool() {
	var p fakePool
	x := p.Get()
	p.Put(x)
	_ = x
}
