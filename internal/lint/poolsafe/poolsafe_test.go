package poolsafe_test

import (
	"testing"

	"wilocator/internal/lint/linttest"
	"wilocator/internal/lint/poolsafe"
)

func TestPoolSafe(t *testing.T) {
	linttest.Run(t, "testdata/src/poolsafe", poolsafe.Analyzer)
}
