package locksafe_test

import (
	"testing"

	"wilocator/internal/lint/linttest"
	"wilocator/internal/lint/locksafe"
)

func TestLocksafe(t *testing.T) {
	linttest.Run(t, "testdata/src/locksafe", locksafe.Analyzer)
}
