// Package fixture exercises the locksafe analyzer.
package fixture

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func missingUnlock(m *sync.Mutex, cond bool) {
	m.Lock()
	if cond {
		return // want `returns while still holding m`
	}
	m.Unlock()
}

func fallsOffEnd(m *sync.Mutex) {
	m.Lock()
} // want `function exits while still holding m`

func deferredOK(m *sync.Mutex) int {
	m.Lock()
	defer m.Unlock()
	return 1
}

func doubleLock(m *sync.Mutex) {
	m.Lock()
	m.Lock() // want `acquiring m already held`
	m.Unlock()
}

func readThenWrite(m *sync.RWMutex) {
	m.RLock()
	defer m.RUnlock()
	m.RLock() // want `acquiring m \(read\) already held`
	m.RUnlock()
}

func diverges(m *sync.Mutex, cond bool) {
	if cond { // want `lock state diverges across this branch`
		m.Lock()
	}
	m.Unlock()
}

func singleFlightOK(m *sync.Mutex) {
	if !m.TryLock() {
		return
	}
	defer m.Unlock()
}

func tryBodyOK(m *sync.Mutex) {
	if m.TryLock() {
		defer m.Unlock()
	}
}

func loopLeak(m *sync.Mutex, n int) {
	for i := 0; i < n; i++ { // want `loop body changes the held-lock set`
		m.Lock()
	}
}

func samePairHazard(a, b *A) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `b.mu acquired while holding a.mu of the same lock class fixture.A.mu`
	defer b.mu.Unlock()
}

func samePairJustified(a, b *A) {
	a.mu.Lock()
	defer a.mu.Unlock()
	//wilint:ignore locksafe every caller passes a and b in one global order
	b.mu.Lock()
	defer b.mu.Unlock()
}

func lockAB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock-order inversion: fixture.B.mu acquired while holding fixture.A.mu here, but the reverse order is used at`
	defer b.mu.Unlock()
}

func lockBA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	defer a.mu.Unlock()
}
