// Package locksafe checks mutex acquire/release discipline and lock
// acquisition order.
//
// The sharded ingestion path (internal/server/shard.go) relies on every
// shard and per-bus mutex being released on every return path; a single
// early return while holding sh.mu deadlocks the whole shard under load.
// The analyzer walks each function (and each function literal) with an
// abstract lock-set, reporting:
//
//   - a return (explicit or falling off the end) while a sync.Mutex /
//     sync.RWMutex is held and no discharging defer exists,
//   - acquiring a lock already held (self-deadlock; RWMutex read locks are
//     tracked separately from write locks),
//   - branches that leave a lock held on some paths but not others,
//   - loop bodies whose entry and exit lock-sets differ,
//   - lock-order inversions: two lock classes (type.field) acquired in
//     both orders anywhere in the package, including a pair of locks of
//     the *same* class taken together (Diff(a, b) vs Diff(b, a) style
//     deadlocks).
//
// The analysis is intra-function: a callback invoked under a lock is
// analyzed as its own unit, so cross-function lock chains (documented in
// the server package comment) remain the code review's job. TryLock is
// modelled for the canonical `if !mu.TryLock() { return }` single-flight
// shape.
package locksafe

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"wilocator/internal/lint"
)

// Analyzer is the lock-discipline checker.
var Analyzer = &lint.Analyzer{
	Name: "locksafe",
	Doc:  "flags mutex acquire without unlock on every return path and lock-order inversions",
	Run:  run,
}

// lockMode distinguishes write locks from RWMutex read locks.
type lockMode int

const (
	writeLock lockMode = iota
	readLock
)

// lockKey identifies one lock within a function: the rendered receiver
// expression plus the mode.
type lockKey struct {
	expr string
	mode lockMode
}

func (k lockKey) String() string {
	if k.mode == readLock {
		return k.expr + " (read)"
	}
	return k.expr
}

// lockOp is one recognised mutex call site.
type lockOp struct {
	key     lockKey
	class   string // package-wide lock class, e.g. "server.busShard.mu"
	acquire bool
	try     bool
	pos     token.Pos
}

// edge records "a held while acquiring b".
type edge struct{ from, to string }

type checker struct {
	pass  *lint.Pass
	edges map[edge][]token.Pos
}

func run(pass *lint.Pass) error {
	c := &checker{pass: pass, edges: map[edge][]token.Pos{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkUnit(fd.Body)
		}
	}
	c.reportInversions()
	return nil
}

// heldLock is what the abstract state remembers about one acquisition.
type heldLock struct {
	pos   token.Pos
	class string
}

// state is the abstract lock-set at one program point.
type state struct {
	held     map[lockKey]heldLock // acquisition position and class
	deferred map[lockKey]bool     // keys discharged by a defer
}

func newState() *state {
	return &state{held: map[lockKey]heldLock{}, deferred: map[lockKey]bool{}}
}

func (s *state) clone() *state {
	c := newState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	return c
}

// heldKeys returns the undischarged held keys, sorted for stable output.
func (s *state) heldKeys() []lockKey {
	var keys []lockKey
	for k := range s.held {
		if !s.deferred[k] {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	return keys
}

func sameHeld(a, b *state) bool {
	ka, kb := a.heldKeys(), b.heldKeys()
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// checkUnit analyzes one function body (or function literal body) with a
// fresh lock-set, queueing nested literals as their own units.
func (c *checker) checkUnit(body *ast.BlockStmt) {
	st := newState()
	terminated := c.walk(body.List, st)
	if !terminated {
		c.reportHeld(st, body.Rbrace, "function exits")
	}
	// Nested function literals run with their own stack frames: analyze
	// each as an independent unit (walk skips their bodies).
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			c.checkUnit(lit.Body)
			return false
		}
		return true
	})
}

func (c *checker) reportHeld(st *state, pos token.Pos, what string) {
	for _, k := range st.heldKeys() {
		c.pass.Reportf(pos, "%s while still holding %s (acquired at %s)",
			what, k, c.pass.Fset.Position(st.held[k].pos))
	}
}

// walk interprets a statement list, mutating st. It returns true when the
// list always terminates (returns or branches away) before falling through.
func (c *checker) walk(stmts []ast.Stmt, st *state) bool {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if op := c.lockOpOf(call); op != nil && !op.try {
					c.apply(op, st)
				}
			}
		case *ast.DeferStmt:
			c.applyDefer(s, st)
		case *ast.ReturnStmt:
			c.reportHeld(st, s.Pos(), "returns")
			return true
		case *ast.BranchStmt:
			// break/continue/goto leave the straight-line path; treat as
			// terminating this list without further claims.
			return true
		case *ast.IfStmt:
			if c.walkIf(s, st) {
				return true
			}
		case *ast.BlockStmt:
			if c.walk(s.List, st) {
				return true
			}
		case *ast.LabeledStmt:
			if c.walk([]ast.Stmt{s.Stmt}, st) {
				return true
			}
		case *ast.ForStmt:
			c.walkLoop(s.Body, s.Pos(), st)
		case *ast.RangeStmt:
			c.walkLoop(s.Body, s.Pos(), st)
		case *ast.SwitchStmt:
			c.walkCases(s.Body, st)
		case *ast.TypeSwitchStmt:
			c.walkCases(s.Body, st)
		case *ast.SelectStmt:
			c.walkCases(s.Body, st)
		case *ast.GoStmt:
			// Runs on another goroutine with its own lock-set; the literal
			// body is checked as a separate unit by checkUnit.
		}
	}
	return false
}

// apply performs one acquire/release on st, recording order edges and
// double-lock findings on acquisition.
func (c *checker) apply(op *lockOp, st *state) {
	if op.acquire {
		if prev, dup := st.held[op.key]; dup {
			c.pass.Reportf(op.pos, "acquiring %s already held (locked at %s); this deadlocks",
				op.key, c.pass.Fset.Position(prev.pos))
			return
		}
		for heldKey, held := range st.held {
			if held.class != "" && op.class != "" && held.class != op.class {
				c.edges[edge{held.class, op.class}] = append(c.edges[edge{held.class, op.class}], op.pos)
			}
			// Same class, different lock instances acquired together: a
			// reverse-order call elsewhere (or concurrently) deadlocks.
			if held.class != "" && held.class == op.class && heldKey.expr != op.key.expr {
				c.pass.Reportf(op.pos, "%s acquired while holding %s of the same lock class %s; reverse-order callers can deadlock — impose a global order",
					op.key, heldKey, op.class)
			}
		}
		st.held[op.key] = heldLock{pos: op.pos, class: op.class}
	} else {
		delete(st.held, op.key)
		delete(st.deferred, op.key)
	}
}

// applyDefer handles `defer x.Unlock()` and `defer func() { ... }()`
// discharge patterns.
func (c *checker) applyDefer(d *ast.DeferStmt, st *state) {
	if op := c.lockOpOf(d.Call); op != nil && !op.acquire {
		st.deferred[op.key] = true
		return
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if op := c.lockOpOf(call); op != nil && !op.acquire {
					st.deferred[op.key] = true
				}
			}
			return true
		})
	}
}

// walkIf interprets an if/else, including the single-flight TryLock shape.
// It returns true when every branch terminates.
func (c *checker) walkIf(s *ast.IfStmt, st *state) bool {
	// `if !mu.TryLock() { return }` — after the if, mu is held.
	if un, ok := s.Cond.(*ast.UnaryExpr); ok && un.Op == token.NOT {
		if call, ok := ast.Unparen(un.X).(*ast.CallExpr); ok {
			if op := c.lockOpOf(call); op != nil && op.try {
				failSt := st.clone()
				if c.walk(s.Body.List, failSt) {
					c.apply(&lockOp{key: op.key, class: op.class, acquire: true, pos: op.pos}, st)
					return false
				}
			}
		}
	}
	// `if mu.TryLock() { ... }` — held only inside the body.
	if call, ok := ast.Unparen(s.Cond).(*ast.CallExpr); ok {
		if op := c.lockOpOf(call); op != nil && op.try {
			bodySt := st.clone()
			c.apply(&lockOp{key: op.key, class: op.class, acquire: true, pos: op.pos}, bodySt)
			c.walk(s.Body.List, bodySt)
			return false
		}
	}

	bodySt := st.clone()
	bodyTerm := c.walk(s.Body.List, bodySt)
	elseSt := st.clone()
	elseTerm := true
	hasElse := s.Else != nil
	if hasElse {
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseTerm = c.walk(e.List, elseSt)
		case *ast.IfStmt:
			elseTerm = c.walkIf(e, elseSt)
		}
	} else {
		elseTerm = false
	}

	switch {
	case bodyTerm && elseTerm:
		return true
	case bodyTerm:
		*st = *elseSt
	case elseTerm:
		*st = *bodySt
	default:
		if !sameHeld(bodySt, elseSt) {
			c.pass.Reportf(s.Pos(), "lock state diverges across this branch: %v vs %v held afterwards; release on both paths or restructure",
				describe(bodySt), describe(elseSt))
		}
		*st = *bodySt
	}
	return false
}

// walkLoop interprets a loop body: the lock-set must be identical at entry
// and exit, or one iteration leaks a lock.
func (c *checker) walkLoop(body *ast.BlockStmt, pos token.Pos, st *state) {
	bodySt := st.clone()
	if c.walk(body.List, bodySt) {
		return // body always returns/branches; nothing flows around the loop
	}
	if !sameHeld(st, bodySt) {
		c.pass.Reportf(pos, "loop body changes the held-lock set from %v to %v; each iteration must release what it acquires",
			describe(st), describe(bodySt))
		return
	}
	*st = *bodySt
}

// walkCases interprets switch/select clause bodies as parallel branches.
func (c *checker) walkCases(body *ast.BlockStmt, st *state) {
	var fallthroughs []*state
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch cl := clause.(type) {
		case *ast.CaseClause:
			stmts = cl.Body
		case *ast.CommClause:
			stmts = cl.Body
		}
		caseSt := st.clone()
		if !c.walk(stmts, caseSt) {
			fallthroughs = append(fallthroughs, caseSt)
		}
	}
	if len(fallthroughs) == 0 {
		return
	}
	first := fallthroughs[0]
	for _, other := range fallthroughs[1:] {
		if !sameHeld(first, other) {
			c.pass.Reportf(body.Pos(), "lock state diverges across these cases: %v vs %v held afterwards",
				describe(first), describe(other))
			break
		}
	}
	*st = *first
}

func describe(st *state) []string {
	keys := st.heldKeys()
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = k.String()
	}
	if len(out) == 0 {
		return []string{"none"}
	}
	return out
}

// lockOpOf recognises calls to sync.Mutex / sync.RWMutex methods and
// returns the abstract operation, or nil.
func (c *checker) lockOpOf(call *ast.CallExpr) *lockOp {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := c.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	recvType := recv.Type()
	if ptr, isPtr := recvType.(*types.Pointer); isPtr {
		recvType = ptr.Elem()
	}
	named, ok := recvType.(*types.Named)
	if !ok || (named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
		return nil
	}

	op := &lockOp{pos: call.Pos()}
	switch sel.Sel.Name {
	case "Lock":
		op.acquire = true
	case "TryLock":
		op.acquire, op.try = true, true
	case "RLock":
		op.acquire = true
		op.key.mode = readLock
	case "TryRLock":
		op.acquire, op.try = true, true
		op.key.mode = readLock
	case "Unlock":
	case "RUnlock":
		op.key.mode = readLock
	default:
		return nil
	}
	op.key.expr = lint.ExprString(sel.X)
	op.class = c.classOf(sel.X)
	return op
}

// classOf derives the package-wide lock class of a mutex expression: for a
// field selector it is "pkg.Type.field"; otherwise the expression text.
func (c *checker) classOf(x ast.Expr) string {
	if sel, ok := ast.Unparen(x).(*ast.SelectorExpr); ok {
		if selection, ok := c.pass.Info.Selections[sel]; ok {
			recv := selection.Recv()
			if ptr, isPtr := recv.(*types.Pointer); isPtr {
				recv = ptr.Elem()
			}
			if named, ok := recv.(*types.Named); ok {
				return fmt.Sprintf("%s.%s.%s", named.Obj().Pkg().Name(), named.Obj().Name(), sel.Sel.Name)
			}
		}
	}
	return lint.ExprString(x)
}

// reportInversions reports lock-class pairs acquired in both orders.
func (c *checker) reportInversions() {
	reported := map[edge]bool{}
	var edges []edge
	for e := range c.edges {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	for _, e := range edges {
		if e.from == e.to {
			continue // same-class pairs are reported at acquisition time
		}
		rev := edge{e.to, e.from}
		if reported[e] || reported[rev] {
			continue
		}
		if revPos, ok := c.edges[rev]; ok {
			reported[e], reported[rev] = true, true
			var revWhere []string
			for _, p := range revPos {
				revWhere = append(revWhere, c.pass.Fset.Position(p).String())
			}
			c.pass.Reportf(c.edges[e][0],
				"lock-order inversion: %s acquired while holding %s here, but the reverse order is used at %s; deadlock under contention",
				e.to, e.from, strings.Join(revWhere, ", "))
		}
	}
}
