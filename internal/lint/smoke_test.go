package lint_test

import (
	"strings"
	"testing"

	"wilocator/internal/lint"
	"wilocator/internal/lint/load"
	"wilocator/internal/lint/rules"
)

// TestRealTreeClean runs the full multichecker — every registered
// analyzer, test files included — over the entire module, exactly as
// `make lint` does, and requires a clean bill: zero unsuppressed findings
// and (because directive hygiene surfaces as wilint meta-diagnostics)
// zero unused or unjustified //wilint:ignore lines. This is the lint
// framework's own integration test: loader, parallel runner, directive
// matching and all eleven analyzers against the code they were built to
// gate.
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load and escape-analysis builds; skipped in -short")
	}
	targets, err := load.Targets([]string{"./..."}, load.Options{Dir: "../..", Tests: true})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(targets) == 0 {
		t.Fatal("load returned no targets")
	}
	diags, err := lint.Run(targets, rules.All())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}

	// The suppression ledger must enumerate the tree's waivers, each with a
	// justification (Run would have flagged bare ones; this guards the
	// Ledger view CI consumes via wilint -ledger).
	entries := lint.Ledger(targets)
	if len(entries) == 0 {
		t.Error("ledger is empty; the tree is known to carry justified ignores")
	}
	known := map[string]bool{}
	for _, a := range rules.All() {
		known[a.Name] = true
	}
	for _, e := range entries {
		if strings.TrimSpace(e.Justification) == "" {
			t.Errorf("%s:%d: ledger entry for %s has no justification", e.File, e.Line, e.Analyzer)
		}
		if !known[e.Analyzer] {
			t.Errorf("%s:%d: ledger entry for unknown analyzer %q", e.File, e.Line, e.Analyzer)
		}
	}
}
