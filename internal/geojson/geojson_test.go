package geojson

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"

	"wilocator/internal/geo"
	"wilocator/internal/roadnet"
	"wilocator/internal/trafficmap"
	"wilocator/internal/traveltime"
	"wilocator/internal/wifi"
	"wilocator/internal/xrand"
)

func world(t *testing.T) (*roadnet.Network, *wifi.Deployment) {
	t.Helper()
	net, err := roadnet.BuildCampus(500)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := wifi.Deploy(net, wifi.DefaultDeploySpec(), xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return net, dep
}

func TestNetworkExport(t *testing.T) {
	net, _ := world(t)
	fc := NewExporter(geo.LatLng{}).Network(net)
	if fc.Type != "FeatureCollection" {
		t.Errorf("type = %q", fc.Type)
	}
	// 1 route LineString + 2 stop Points.
	if len(fc.Features) != 3 {
		t.Fatalf("features = %d", len(fc.Features))
	}
	route := fc.Features[0]
	if route.Geometry.Type != "LineString" || route.Properties["kind"] != "route" {
		t.Errorf("first feature = %+v", route)
	}
	coords, ok := route.Geometry.Coordinates.([][2]float64)
	if !ok || len(coords) < 2 {
		t.Fatalf("coordinates = %#v", route.Geometry.Coordinates)
	}
	// Anchored at the default origin: roughly Vancouver.
	if math.Abs(coords[0][1]-49.2634) > 0.01 || math.Abs(coords[0][0]+123.1380) > 0.01 {
		t.Errorf("origin coordinate = %v", coords[0])
	}
	for _, f := range fc.Features[1:] {
		if f.Geometry.Type != "Point" || f.Properties["kind"] != "stop" {
			t.Errorf("stop feature = %+v", f)
		}
	}
}

func TestDeploymentExport(t *testing.T) {
	net, dep := world(t)
	_ = net
	if err := dep.Deactivate(dep.APs()[0].BSSID); err != nil {
		t.Fatal(err)
	}
	fc := NewExporter(geo.LatLng{}).Deployment(dep)
	if len(fc.Features) != dep.NumAPs() {
		t.Fatalf("features = %d, want %d", len(fc.Features), dep.NumAPs())
	}
	if active, ok := fc.Features[0].Properties["active"].(bool); !ok || active {
		t.Errorf("deactivated AP exported as active: %+v", fc.Features[0].Properties)
	}
}

func TestTrafficMapExport(t *testing.T) {
	net, _ := world(t)
	store := traveltime.NewStore(traveltime.PaperPlan())
	gen, err := trafficmap.NewGenerator(net, store, trafficmap.Config{})
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2016, 3, 7, 9, 0, 0, 0, time.UTC)
	statuses := gen.Map(at)
	ex := NewExporter(geo.LatLng{})
	fc, err := ex.TrafficMap(net, statuses)
	if err != nil {
		t.Fatal(err)
	}
	if len(fc.Features) != len(statuses) {
		t.Fatalf("features = %d, want %d", len(fc.Features), len(statuses))
	}
	if stroke := fc.Features[0].Properties["stroke"]; stroke != "#2ecc71" {
		t.Errorf("normal segment stroke = %v", stroke)
	}
	// Unknown segment errors.
	if _, err := ex.TrafficMap(net, []trafficmap.SegmentStatus{{Seg: 999}}); err == nil {
		t.Error("unknown segment accepted")
	}
}

func TestWriteIsValidGeoJSON(t *testing.T) {
	net, dep := world(t)
	ex := NewExporter(geo.LatLng{Lat: 48, Lng: 11})
	var buf bytes.Buffer
	if err := Write(&buf, ex.Network(net)); err != nil {
		t.Fatal(err)
	}
	if err := Write(&buf, ex.Deployment(dep)); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	for i := 0; i < 2; i++ {
		var doc struct {
			Type     string `json:"type"`
			Features []struct {
				Type     string `json:"type"`
				Geometry struct {
					Type        string          `json:"type"`
					Coordinates json.RawMessage `json:"coordinates"`
				} `json:"geometry"`
				Properties map[string]any `json:"properties"`
			} `json:"features"`
		}
		if err := dec.Decode(&doc); err != nil {
			t.Fatalf("document %d: %v", i, err)
		}
		if doc.Type != "FeatureCollection" || len(doc.Features) == 0 {
			t.Fatalf("document %d malformed: %+v", i, doc)
		}
		for _, f := range doc.Features {
			if f.Type != "Feature" || f.Geometry.Type == "" || len(f.Geometry.Coordinates) == 0 {
				t.Fatalf("bad feature: %+v", f)
			}
		}
	}
}

func TestConditionColors(t *testing.T) {
	if conditionColor(trafficmap.Slow) == conditionColor(trafficmap.VerySlow) {
		t.Error("slow and very-slow share a colour")
	}
	if conditionColor(trafficmap.Unknown) != "#95a5a6" {
		t.Error("unknown colour wrong")
	}
}
