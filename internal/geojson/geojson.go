// Package geojson exports WiLocator's world state — road networks, bus
// routes, AP deployments and traffic maps — as GeoJSON FeatureCollections
// (RFC 7946) so they can be dropped onto any web map for inspection. The
// planar simulation frame is georeferenced through a geo.Projection anchored
// at a configurable origin; the default is the W Broadway corridor of the
// paper's experiments.
package geojson

import (
	"encoding/json"
	"fmt"
	"io"

	"wilocator/internal/geo"
	"wilocator/internal/roadnet"
	"wilocator/internal/trafficmap"
	"wilocator/internal/wifi"
)

// DefaultOrigin anchors the planar frame on the paper's corridor
// (W Broadway, Vancouver).
var DefaultOrigin = geo.DefaultOrigin

// FeatureCollection is a minimal RFC 7946 feature collection.
type FeatureCollection struct {
	Type     string    `json:"type"`
	Features []Feature `json:"features"`
}

// Feature is one GeoJSON feature.
type Feature struct {
	Type       string         `json:"type"`
	Geometry   Geometry       `json:"geometry"`
	Properties map[string]any `json:"properties"`
}

// Geometry holds a Point ([lng, lat]) or LineString ([][lng, lat]).
type Geometry struct {
	Type        string `json:"type"`
	Coordinates any    `json:"coordinates"`
}

// Exporter converts planar world state to GeoJSON.
type Exporter struct {
	proj *geo.Projection
}

// NewExporter creates an exporter anchored at origin; a zero origin selects
// DefaultOrigin.
func NewExporter(origin geo.LatLng) *Exporter {
	if origin == (geo.LatLng{}) {
		origin = DefaultOrigin
	}
	return &Exporter{proj: geo.NewProjection(origin)}
}

func (e *Exporter) coord(p geo.Point) [2]float64 {
	ll := e.proj.ToLatLng(p)
	return [2]float64{ll.Lng, ll.Lat}
}

func (e *Exporter) lineString(pl *geo.Polyline) Geometry {
	pts := pl.Points()
	coords := make([][2]float64, len(pts))
	for i, p := range pts {
		coords[i] = e.coord(p)
	}
	return Geometry{Type: "LineString", Coordinates: coords}
}

func (e *Exporter) point(p geo.Point) Geometry {
	return Geometry{Type: "Point", Coordinates: e.coord(p)}
}

// Network renders every route as a LineString and every stop as a Point.
func (e *Exporter) Network(net *roadnet.Network) FeatureCollection {
	fc := FeatureCollection{Type: "FeatureCollection"}
	for _, route := range net.Routes() {
		fc.Features = append(fc.Features, Feature{
			Type:     "Feature",
			Geometry: e.lineString(route.Line()),
			Properties: map[string]any{
				"kind":     "route",
				"route":    route.ID(),
				"name":     route.Name(),
				"class":    route.Class().String(),
				"lengthKm": route.Length() / 1000,
				"stops":    route.NumStops(),
			},
		})
		for i, stop := range route.Stops() {
			fc.Features = append(fc.Features, Feature{
				Type:     "Feature",
				Geometry: e.point(route.PointAt(stop.Arc)),
				Properties: map[string]any{
					"kind":  "stop",
					"route": route.ID(),
					"name":  stop.Name,
					"index": i,
				},
			})
		}
	}
	return fc
}

// Deployment renders every AP as a Point with its RF parameters.
func (e *Exporter) Deployment(dep *wifi.Deployment) FeatureCollection {
	fc := FeatureCollection{Type: "FeatureCollection"}
	for _, ap := range dep.APs() {
		fc.Features = append(fc.Features, Feature{
			Type:     "Feature",
			Geometry: e.point(ap.Pos),
			Properties: map[string]any{
				"kind":        "ap",
				"bssid":       string(ap.BSSID),
				"ssid":        ap.SSID,
				"refRss":      ap.RefRSS,
				"pathLossExp": ap.PathLossExp,
				"active":      dep.Active(ap.BSSID),
			},
		})
	}
	return fc
}

// TrafficMap renders classified segments as LineStrings coloured by
// condition (the Fig. 11 visual).
func (e *Exporter) TrafficMap(net *roadnet.Network, statuses []trafficmap.SegmentStatus) (FeatureCollection, error) {
	fc := FeatureCollection{Type: "FeatureCollection"}
	for _, st := range statuses {
		seg, ok := net.Graph.Segment(st.Seg)
		if !ok {
			return FeatureCollection{}, fmt.Errorf("geojson: unknown segment %d", st.Seg)
		}
		fc.Features = append(fc.Features, Feature{
			Type:     "Feature",
			Geometry: e.lineString(seg.Line),
			Properties: map[string]any{
				"kind":      "segment",
				"segment":   int(st.Seg),
				"condition": st.Condition.String(),
				"z":         st.Z,
				"inferred":  st.Inferred,
				"routes":    st.Routes,
				"stroke":    conditionColor(st.Condition),
			},
		})
	}
	return fc, nil
}

// conditionColor follows the usual traffic-map palette.
func conditionColor(c trafficmap.Condition) string {
	switch c {
	case trafficmap.Normal:
		return "#2ecc71"
	case trafficmap.Slow:
		return "#f39c12"
	case trafficmap.VerySlow:
		return "#e74c3c"
	default:
		return "#95a5a6"
	}
}

// Write encodes a feature collection as indented JSON.
func Write(w io.Writer, fc FeatureCollection) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(fc); err != nil {
		return fmt.Errorf("geojson: encode: %w", err)
	}
	return nil
}
