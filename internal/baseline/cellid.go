// Package baseline implements the positioning systems WiLocator is compared
// against in the paper's motivation and related work: Cell-ID sequence
// matching over a sparse cellular deployment ([15], [27]-[29]) and GPS with
// an urban-canyon error model (EasyTracker [4]). Both expose the same
// "observe ground-truth position, produce an arc estimate" shape as the
// WiLocator tracker so the ablation harness can swap them in.
package baseline

import (
	"fmt"
	"math"
	"time"

	"wilocator/internal/geo"
	"wilocator/internal/roadnet"
	"wilocator/internal/xrand"
)

// DefaultTowerSpacing reflects the paper's observation that "in cities, the
// coverage of a cell tower can reach 800 m around" and that tower density is
// low: one tower per ~1.6 km of road.
const DefaultTowerSpacing = 1600.0

// Tower is one cell tower.
type Tower struct {
	ID  string
	Pos geo.Point
}

// DeployTowers places towers along the road network every spacing metres
// with lateral jitter. spacing <= 0 selects DefaultTowerSpacing.
func DeployTowers(net *roadnet.Network, spacing float64, rng *xrand.Rand) ([]Tower, error) {
	if net == nil || rng == nil {
		return nil, fmt.Errorf("baseline: nil network or rng")
	}
	if spacing <= 0 {
		spacing = DefaultTowerSpacing
	}
	var towers []Tower
	n := 0
	for _, seg := range net.Graph.Segments() {
		line := seg.Line
		for s := spacing / 2; s < line.Length(); s += spacing {
			center := line.At(s)
			n++
			towers = append(towers, Tower{
				ID:  fmt.Sprintf("cell-%03d", n),
				Pos: center.Add(geo.Pt(rng.Range(-200, 200), rng.Range(-200, 200))),
			})
		}
	}
	if len(towers) == 0 {
		// Short networks still get one tower mid-way along the first
		// segment so the tracker has something to lock onto.
		segs := net.Graph.Segments()
		if len(segs) == 0 {
			return nil, fmt.Errorf("baseline: network has no segments")
		}
		line := segs[0].Line
		towers = append(towers, Tower{ID: "cell-001", Pos: line.At(line.Length() / 2)})
	}
	return towers, nil
}

// cellRun is a maximal arc range of a route dominated by one tower.
type cellRun struct {
	id     string
	s0, s1 float64
}

// CellIDTracker tracks a bus by matching the observed Cell-ID sequence
// against the route's reference sequence, the approach of the paper's
// cellular-infrastructure comparators. Its two documented weaknesses emerge
// naturally: a fix requires capturing MinSeq distinct cells first ("it takes
// several minutes for the bus rider to capture a stable cell-ID sequence"),
// and the positioning granularity is the dominance region of a tower
// (hundreds of metres).
type CellIDTracker struct {
	route  *roadnet.Route
	towers []Tower
	runs   []cellRun
	minSeq int

	seq     []string
	lastArc float64
	hasFix  bool
}

// DefaultMinSeq is the number of distinct cells required before the first
// fix.
const DefaultMinSeq = 3

// NewCellIDTracker builds the reference sequence of route and returns a
// tracker. minSeq <= 0 selects DefaultMinSeq.
func NewCellIDTracker(route *roadnet.Route, towers []Tower, minSeq int) (*CellIDTracker, error) {
	if route == nil {
		return nil, fmt.Errorf("baseline: nil route")
	}
	if len(towers) == 0 {
		return nil, fmt.Errorf("baseline: no towers")
	}
	if minSeq <= 0 {
		minSeq = DefaultMinSeq
	}
	t := &CellIDTracker{route: route, towers: towers, minSeq: minSeq}
	const step = 10.0
	cur := ""
	start := 0.0
	for s := 0.0; ; s += step {
		if s > route.Length() {
			s = route.Length()
		}
		id := t.nearestTower(route.PointAt(s))
		if cur == "" {
			cur, start = id, 0
		} else if id != cur {
			t.runs = append(t.runs, cellRun{id: cur, s0: start, s1: s - step/2})
			cur, start = id, s-step/2
		}
		if s >= route.Length() {
			break
		}
	}
	t.runs = append(t.runs, cellRun{id: cur, s0: start, s1: route.Length()})
	return t, nil
}

// ReferenceSequence returns the route's Cell-ID sequence in travel order.
func (t *CellIDTracker) ReferenceSequence() []string {
	out := make([]string, len(t.runs))
	for i, r := range t.runs {
		out[i] = r.id
	}
	return out
}

func (t *CellIDTracker) nearestTower(p geo.Point) string {
	best, bestD := "", math.Inf(1)
	for _, tw := range t.towers {
		if d := p.Dist2(tw.Pos); d < bestD {
			best, bestD = tw.ID, d
		}
	}
	return best
}

// Observe feeds one ground-truth position (the phone hears the strongest =
// nearest tower) and returns the arc estimate once a long-enough sequence
// has been captured and matched.
func (t *CellIDTracker) Observe(pos geo.Point, at time.Time) (arc float64, ok bool) {
	_ = at // the Cell-ID matcher is timing-free; parameter kept for interface symmetry
	id := t.nearestTower(pos)
	if len(t.seq) == 0 || t.seq[len(t.seq)-1] != id {
		t.seq = append(t.seq, id)
	}
	need := t.minSeq
	if t.hasFix {
		// After the first lock a single fresh cell refines the position.
		need = 1
	}
	if len(t.seq) < need {
		return 0, false
	}
	suffix := t.seq
	if len(suffix) > t.minSeq {
		suffix = suffix[len(suffix)-t.minSeq:]
	}
	idx, found := t.matchSuffix(suffix)
	if !found {
		return 0, false
	}
	run := t.runs[idx]
	est := run.s0 + run.Len()/2
	if t.hasFix && est < t.lastArc {
		est = t.lastArc
	}
	t.lastArc = est
	t.hasFix = true
	return est, true
}

func (r cellRun) Len() float64 { return r.s1 - r.s0 }

// matchSuffix finds the reference position whose trailing runs match the
// observed suffix, preferring the match nearest the previous fix.
func (t *CellIDTracker) matchSuffix(suffix []string) (runIdx int, ok bool) {
	bestIdx, bestDist := -1, math.Inf(1)
	end := len(suffix) - 1
	for i := len(t.runs) - 1; i >= end; i-- {
		matched := true
		for j := 0; j <= end; j++ {
			if t.runs[i-j].id != suffix[len(suffix)-1-j] {
				matched = false
				break
			}
		}
		if !matched {
			continue
		}
		mid := t.runs[i].s0 + t.runs[i].Len()/2
		d := math.Abs(mid - t.lastArc)
		if !t.hasFix {
			d = mid // prefer the earliest plausible match on a cold start
		}
		if d < bestDist {
			bestIdx, bestDist = i, d
		}
	}
	if bestIdx < 0 {
		return 0, false
	}
	return bestIdx, true
}
