package baseline

import (
	"fmt"
	"math"
	"time"

	"wilocator/internal/geo"
	"wilocator/internal/roadnet"
	"wilocator/internal/xrand"
)

// Energy costs per positioning action, joules. The GPS figure is the
// well-known reason AVL/EasyTracker-style tracking is "extremely
// power-hungry" relative to a WiFi scan.
const (
	GPSFixEnergyJ   = 0.40
	WiFiScanEnergyJ = 0.06
)

// GPSConfig tunes the urban-canyon GPS model. The zero value selects
// defaults.
type GPSConfig struct {
	// OpenSigma is the horizontal error sigma with open sky, metres.
	// Default 5.
	OpenSigma float64
	// CanyonSigma is the error sigma inside urban canyons. Default 45.
	CanyonSigma float64
	// CanyonFraction is the fraction of 100 m road cells that are canyons
	// (tall buildings / tunnels). Default 0.5 for a downtown corridor.
	CanyonFraction float64
	// OutageProb is the probability a canyon fix is lost entirely
	// (blocked line of sight to the satellites). Default 0.25.
	OutageProb float64
	// Seed makes the canyon layout deterministic.
	Seed uint64
}

func (c GPSConfig) withDefaults() GPSConfig {
	if c.OpenSigma <= 0 {
		c.OpenSigma = 5
	}
	if c.CanyonSigma <= 0 {
		c.CanyonSigma = 45
	}
	if c.CanyonFraction <= 0 || c.CanyonFraction > 1 {
		c.CanyonFraction = 0.5
	}
	if c.OutageProb <= 0 || c.OutageProb > 1 {
		c.OutageProb = 0.25
	}
	return c
}

// GPSTracker models a GPS receiver riding a bus through an urban canyon
// landscape: open-sky stretches give metre-level fixes, canyon cells inflate
// the error by an order of magnitude or black the receiver out, and every
// fix costs GPSFixEnergyJ.
type GPSTracker struct {
	route   *roadnet.Route
	cfg     GPSConfig
	rng     *xrand.Rand
	energyJ float64
	lastArc float64
	hasFix  bool
}

// NewGPSTracker creates a tracker for route.
func NewGPSTracker(route *roadnet.Route, cfg GPSConfig, rng *xrand.Rand) (*GPSTracker, error) {
	if route == nil || rng == nil {
		return nil, fmt.Errorf("baseline: nil route or rng")
	}
	return &GPSTracker{route: route, cfg: cfg.withDefaults(), rng: rng}, nil
}

// InCanyon reports whether the 100 m road cell containing arc is an urban
// canyon. The layout is deterministic in the config seed.
func (g *GPSTracker) InCanyon(arc float64) bool {
	cell := int64(math.Floor(arc / 100))
	h := g.cfg.Seed ^ uint64(cell)*0x9E3779B97F4A7C15 ^ 0x5851F42D4C957F2D
	return xrand.New(h).Float64() < g.cfg.CanyonFraction
}

// Observe takes one GPS fix at the bus's true arc position. ok is false
// during canyon outages. Every attempt, successful or not, consumes energy.
func (g *GPSTracker) Observe(trueArc float64, at time.Time) (arc float64, ok bool) {
	_ = at // fixes are memoryless; parameter kept for interface symmetry
	g.energyJ += GPSFixEnergyJ
	sigma := g.cfg.OpenSigma
	if g.InCanyon(trueArc) {
		if g.rng.Bool(g.cfg.OutageProb) {
			return 0, false
		}
		sigma = g.cfg.CanyonSigma
	}
	// 2-D error, then map-matched (projected) back onto the route.
	truePos := g.route.PointAt(trueArc)
	noisy := truePos.Add(geo.Pt(g.rng.Norm(0, sigma), g.rng.Norm(0, sigma)))
	est, _ := g.route.Project(noisy)
	if g.hasFix && est < g.lastArc {
		est = g.lastArc
	}
	g.lastArc = est
	g.hasFix = true
	return est, true
}

// EnergyJ returns the cumulative energy spent on fixes.
func (g *GPSTracker) EnergyJ() float64 { return g.energyJ }
