package baseline

import (
	"math"
	"sort"
	"testing"
	"time"

	"wilocator/internal/roadnet"
	"wilocator/internal/xrand"
)

var t0 = time.Date(2016, 3, 7, 8, 0, 0, 0, time.UTC)

func longRoad(t *testing.T) (*roadnet.Network, *roadnet.Route) {
	t.Helper()
	net, err := roadnet.BuildCampus(8000)
	if err != nil {
		t.Fatal(err)
	}
	return net, net.Routes()[0]
}

func TestDeployTowers(t *testing.T) {
	net, _ := longRoad(t)
	towers, err := DeployTowers(net, 0, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// 8 km / 1.6 km = 5 towers.
	if len(towers) < 3 || len(towers) > 7 {
		t.Errorf("deployed %d towers on 8 km, want ~5", len(towers))
	}
	seen := map[string]bool{}
	for _, tw := range towers {
		if seen[tw.ID] {
			t.Errorf("duplicate tower id %s", tw.ID)
		}
		seen[tw.ID] = true
	}
	if _, err := DeployTowers(nil, 0, xrand.New(1)); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := DeployTowers(net, 0, nil); err == nil {
		t.Error("nil rng accepted")
	}
	// A road shorter than the spacing still gets one tower.
	small, err := roadnet.BuildCampus(300)
	if err != nil {
		t.Fatal(err)
	}
	towers, err = DeployTowers(small, 0, xrand.New(2))
	if err != nil || len(towers) != 1 {
		t.Errorf("short road towers = %v, err %v", towers, err)
	}
}

func TestCellIDTrackerValidation(t *testing.T) {
	net, route := longRoad(t)
	towers, err := DeployTowers(net, 0, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCellIDTracker(nil, towers, 0); err == nil {
		t.Error("nil route accepted")
	}
	if _, err := NewCellIDTracker(route, nil, 0); err == nil {
		t.Error("no towers accepted")
	}
}

func TestCellIDReferenceSequence(t *testing.T) {
	net, route := longRoad(t)
	towers, err := DeployTowers(net, 0, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewCellIDTracker(route, towers, 0)
	if err != nil {
		t.Fatal(err)
	}
	seq := tr.ReferenceSequence()
	if len(seq) < 3 {
		t.Fatalf("reference sequence too short: %v", seq)
	}
	for i := 1; i < len(seq); i++ {
		if seq[i] == seq[i-1] {
			t.Errorf("adjacent duplicate cell %s in reference", seq[i])
		}
	}
}

// TestCellIDCaptureDelayAndCoarseness demonstrates the two limitations the
// paper attributes to Cell-ID systems: no fix until several cells are
// captured, and errors of hundreds of metres afterwards.
func TestCellIDCaptureDelayAndCoarseness(t *testing.T) {
	net, route := longRoad(t)
	towers, err := DeployTowers(net, 0, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewCellIDTracker(route, towers, 0)
	if err != nil {
		t.Fatal(err)
	}
	const speed, period = 10.0, 10.0
	firstFixArc := -1.0
	var errs []float64
	now := t0
	for s := 0.0; s < route.Length(); s += speed * period {
		arc, ok := tr.Observe(route.PointAt(s), now)
		now = now.Add(time.Duration(period) * time.Second)
		if !ok {
			continue
		}
		if firstFixArc < 0 {
			firstFixArc = s
		}
		errs = append(errs, math.Abs(arc-s))
	}
	if firstFixArc < 1000 {
		t.Errorf("first Cell-ID fix after only %.0f m; expected a long capture phase", firstFixArc)
	}
	if len(errs) == 0 {
		t.Fatal("no fixes at all")
	}
	sort.Float64s(errs)
	med := errs[len(errs)/2]
	if med < 50 {
		t.Errorf("cell-ID median error %.0f m implausibly small", med)
	}
	if med > 2000 {
		t.Errorf("cell-ID median error %.0f m implausibly large", med)
	}
}

func TestGPSTrackerValidation(t *testing.T) {
	_, route := longRoad(t)
	if _, err := NewGPSTracker(nil, GPSConfig{}, xrand.New(1)); err == nil {
		t.Error("nil route accepted")
	}
	if _, err := NewGPSTracker(route, GPSConfig{}, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestGPSCanyonLayoutDeterministic(t *testing.T) {
	_, route := longRoad(t)
	a, err := NewGPSTracker(route, GPSConfig{Seed: 9}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGPSTracker(route, GPSConfig{Seed: 9}, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	canyons := 0
	for arc := 0.0; arc < route.Length(); arc += 100 {
		if a.InCanyon(arc) != b.InCanyon(arc) {
			t.Fatal("canyon layout not deterministic")
		}
		if a.InCanyon(arc) {
			canyons++
		}
	}
	frac := float64(canyons) / (route.Length() / 100)
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("canyon fraction = %v, want ~0.5", frac)
	}
}

func TestGPSErrorsWorseInCanyons(t *testing.T) {
	_, route := longRoad(t)
	tr, err := NewGPSTracker(route, GPSConfig{Seed: 11}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	var open, canyon []float64
	outages := 0
	for i := 0; i < 4000; i++ {
		trueArc := float64(i%79) * 100.37
		if trueArc > route.Length()-1 {
			trueArc = route.Length() - 1
		}
		// Reset forward-progress so fixes stay independent.
		tr.hasFix = false
		arc, ok := tr.Observe(trueArc, t0)
		if !ok {
			outages++
			continue
		}
		e := math.Abs(arc - trueArc)
		if tr.InCanyon(trueArc) {
			canyon = append(canyon, e)
		} else {
			open = append(open, e)
		}
	}
	if len(open) == 0 || len(canyon) == 0 {
		t.Fatal("scenario lacks open or canyon samples")
	}
	meanOf := func(v []float64) float64 {
		s := 0.0
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	}
	mo, mc := meanOf(open), meanOf(canyon)
	if mc < 3*mo {
		t.Errorf("canyon error %.1f m not clearly worse than open-sky %.1f m", mc, mo)
	}
	if outages == 0 {
		t.Error("no canyon outages observed")
	}
	// Energy: every attempt costs a fix.
	if got := tr.EnergyJ(); math.Abs(got-4000*GPSFixEnergyJ) > 1e-9 {
		t.Errorf("energy = %v J, want %v J", got, 4000*GPSFixEnergyJ)
	}
}

func TestGPSForwardProgress(t *testing.T) {
	_, route := longRoad(t)
	tr, err := NewGPSTracker(route, GPSConfig{Seed: 13}, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for s := 0.0; s < 2000; s += 100 {
		arc, ok := tr.Observe(s, t0)
		if !ok {
			continue
		}
		if arc < prev {
			t.Fatalf("GPS estimate regressed %v -> %v", prev, arc)
		}
		prev = arc
	}
}

func TestEnergyConstantsOrdering(t *testing.T) {
	if GPSFixEnergyJ <= WiFiScanEnergyJ {
		t.Error("GPS must cost more than a WiFi scan per the paper's motivation")
	}
}
