package scenario

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"wilocator/internal/api"
	"wilocator/internal/eval"
	"wilocator/internal/mobility"
	"wilocator/internal/obs"
	"wilocator/internal/roadnet"
	"wilocator/internal/server"
	"wilocator/internal/trafficmap"
	"wilocator/internal/traveltime"
	"wilocator/internal/xrand"
)

// WorldSummary pins the compiled world's shape into the golden output, so a
// generator change is visible even before it shifts a single fix.
type WorldSummary struct {
	Form     string  `json:"form"`
	Nodes    int     `json:"nodes"`
	Segments int     `json:"segments"`
	Routes   int     `json:"routes"`
	RoadKm   float64 `json:"roadKm"`
	APs      int     `json:"aps"`
	Tiles    int     `json:"tiles"`
	Cells    int     `json:"cells"`
}

// KindTally counts ingest outcomes for one event kind.
type KindTally struct {
	Delivered   int `json:"delivered"`
	Accepted    int `json:"accepted"`
	Rejected    int `json:"rejected"`
	LateDropped int `json:"lateDropped"`
	Located     int `json:"located"`
}

// SeasonalBlock is the day-scale scenarios' seasonal-index digest: the
// hourly SI(i,l) profile of one probe segment and the rush hours it flags.
type SeasonalBlock struct {
	Seg       roadnet.SegmentID `json:"seg"`
	Index     []float64         `json:"index"`
	RushHours []int             `json:"rushHours"`
}

// Result is everything a scenario replay tells a user, JSON-stable: maps
// key by string (encoding/json sorts them) and no wall-clock field is
// included, so two runs of one Spec render byte-identical documents.
type Result struct {
	Name   string       `json:"name"`
	Seed   uint64       `json:"seed"`
	World  WorldSummary `json:"world"`
	Trips  int          `json:"trips"`
	Events int          `json:"events"`
	// ByKind splits ingest outcomes by event kind, so adversarial shed
	// paths are visible next to the clean stream they must not perturb.
	ByKind       map[string]KindTally              `json:"byKind"`
	Ingest       api.IngestStats                   `json:"ingest"`
	Generation   uint64                            `json:"generation"`
	Rebuilds     uint64                            `json:"rebuilds"`
	Vehicles     []api.VehicleStatus               `json:"vehicles"`
	Arrivals     map[string][]api.ArrivalEstimate  `json:"arrivals"`
	TrafficStrip string                            `json:"trafficStrip"`
	Coverage     float64                           `json:"coverage"`
	Trajectories map[string]api.TrajectoryResponse `json:"trajectories"`
	Anomalies    []api.AnomalyReport               `json:"anomalies"`
	// PositionError summarises |fix - ground truth| over every clean
	// trajectory fix, in metres along the route.
	PositionError eval.Summary `json:"positionError"`
	// CleanFixRate is fixes per completed fusion window.
	CleanFixRate float64 `json:"cleanFixRate"`
	// Seasonal is present for day-scale windows (>= 12 h).
	Seasonal *SeasonalBlock `json:"seasonal,omitempty"`
	// Metrics samples the allowlisted counter families from the service's
	// /metrics registry (wall-time families are excluded by construction).
	Metrics map[string]uint64 `json:"metrics"`
}

// metricAllowlist are the counter-only families sampled into Result.Metrics.
// Histograms and gauges carry wall-clock durations and are excluded to keep
// goldens byte-stable.
var metricAllowlist = map[string]bool{
	"wilocator_ingest_reports_total":         true,
	"wilocator_ingest_invalid_reports_total": true,
	"wilocator_ingest_flushes_total":         true,
	"wilocator_ingest_fixes_total":           true,
	"wilocator_bus_registrations_total":      true,
	"wilocator_rebuilds_total":               true,
	"wilocator_locate_lookups_total":         true,
}

// Run compiles the spec and replays its event stream through the real
// pipeline: one server.Service with a fresh metrics registry, churn waves
// applied as AP deactivation + live diagram rebuild at their scheduled
// instants, every query evaluated at the stream's end on a fixed clock.
func Run(spec Spec) (*Result, error) {
	c, err := Compile(spec)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	store := traveltime.NewStore(traveltime.PaperPlan())
	svc, err := server.NewService(c.Dia, store, server.Config{
		FusionWindow: c.Spec.ScanPeriod,
		Now:          func() time.Time { return c.End },
		Metrics:      reg,
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		Name:         c.Spec.Name,
		Seed:         c.Spec.Seed,
		World:        summarizeWorld(c),
		Trips:        len(c.Buses),
		Events:       len(c.Events),
		ByKind:       map[string]KindTally{},
		Arrivals:     map[string][]api.ArrivalEstimate{},
		Trajectories: map[string]api.TrajectoryResponse{},
	}

	applyWave := func(w Wave) error {
		for _, b := range w.Dead {
			if err := c.Dep.Deactivate(b); err != nil {
				return fmt.Errorf("scenario %q: churn wave: %w", c.Spec.Name, err)
			}
		}
		if _, err := svc.Rebuild(context.Background()); err != nil {
			return fmt.Errorf("scenario %q: rebuild after churn wave: %w", c.Spec.Name, err)
		}
		return nil
	}

	wi := 0
	for _, ev := range c.Events {
		for wi < len(c.Waves) && !ev.Deliver.Before(c.Waves[wi].At) {
			if err := applyWave(c.Waves[wi]); err != nil {
				return nil, err
			}
			wi++
		}
		resp, err := svc.Ingest(ev.Report)
		if err != nil && ev.Kind == KindClean {
			return nil, fmt.Errorf("scenario %q: clean report for %s rejected: %w", c.Spec.Name, ev.Report.BusID, err)
		}
		t := res.ByKind[string(ev.Kind)]
		t.Delivered++
		switch {
		case err != nil:
			t.Rejected++
		case resp.Accepted:
			t.Accepted++
			if resp.Located {
				t.Located++
			}
		case resp.Reason == api.ReasonLateScan:
			t.LateDropped++
		}
		res.ByKind[string(ev.Kind)] = t
	}
	for ; wi < len(c.Waves); wi++ {
		if err := applyWave(c.Waves[wi]); err != nil {
			return nil, err
		}
	}

	res.Ingest = svc.Stats()
	res.Generation = svc.Generation()
	res.Rebuilds = svc.RebuildStats().Rebuilds
	res.Vehicles = svc.Vehicles("")
	if res.Ingest.Flushes > 0 {
		res.CleanFixRate = float64(res.Ingest.Located) / float64(res.Ingest.Flushes)
	}

	for _, route := range c.Net.Routes() {
		ests, err := svc.Arrivals(route.ID(), route.NumStops()-1)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: arrivals %s: %w", c.Spec.Name, route.ID(), err)
		}
		res.Arrivals[route.ID()] = ests
	}

	tm, err := svc.TrafficMap("")
	if err != nil {
		return nil, err
	}
	res.TrafficStrip = tm.Strip
	res.Coverage = trafficmap.Coverage(tm.Segments)

	var posErrs []float64
	for _, bus := range c.Buses {
		traj, err := svc.Trajectory(bus.ID)
		if err != nil {
			// A bus whose every report was lost never registered; the
			// scenario still replays deterministically without it.
			continue
		}
		res.Trajectories[bus.ID] = traj
		for _, fix := range traj.Fixes {
			posErrs = append(posErrs, math.Abs(fix.Arc-bus.Trip.ArcAt(fix.Time)))
		}
	}
	res.PositionError = eval.Summarize(posErrs)

	res.Anomalies, err = svc.Anomalies("")
	if err != nil {
		return nil, err
	}

	if c.Spec.EndHour-c.Spec.StartHour >= 12 {
		res.Seasonal = seasonalBlock(c.Net, store)
	}

	res.Metrics, err = sampleMetrics(reg)
	if err != nil {
		return nil, err
	}
	return res, nil
}

func summarizeWorld(c *Compiled) WorldSummary {
	meters := 0.0
	for _, seg := range c.Net.Graph.Segments() {
		meters += seg.Length()
	}
	return WorldSummary{
		Form:     string(c.Spec.City.Form),
		Nodes:    c.Net.Graph.NumNodes(),
		Segments: c.Net.Graph.NumSegments(),
		Routes:   len(c.Net.Routes()),
		RoadKm:   math.Round(meters) / 1000,
		APs:      c.Dep.NumAPs(),
		Tiles:    c.Dia.NumTiles(),
		Cells:    c.Dia.NumCells(),
	}
}

// seasonalBlock probes the seasonal index on an ordinary (fully
// congestion-exposed) route's middle segment.
func seasonalBlock(net *roadnet.Network, store *traveltime.Store) *SeasonalBlock {
	seg := probeSegment(net)
	si := store.SeasonalIndex(seg)
	rounded := make([]float64, len(si))
	for i, v := range si {
		rounded[i] = math.Round(v*1e4) / 1e4
	}
	return &SeasonalBlock{
		Seg:       seg,
		Index:     rounded,
		RushHours: traveltime.RushHours(rounded, 0),
	}
}

// probeSegment picks the middle segment of the first ordinary route (rapid
// lines damp congestion and would blur the seasonal signal).
func probeSegment(net *roadnet.Network) roadnet.SegmentID {
	routes := net.Routes()
	pick := routes[0]
	for _, r := range routes {
		if r.Class() != roadnet.ClassRapid {
			pick = r
			break
		}
	}
	return pick.Segments()[pick.NumSegments()/2]
}

// sampleMetrics renders the registry and keeps the allowlisted counter
// series, keyed by their full exposition name (family plus labels).
func sampleMetrics(reg *obs.Registry) (map[string]uint64, error) {
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		return nil, err
	}
	out := map[string]uint64{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			continue
		}
		key, val := line[:idx], line[idx+1:]
		fam := key
		if i := strings.IndexByte(fam, '{'); i >= 0 {
			fam = fam[:i]
		}
		if !metricAllowlist[fam] {
			continue
		}
		v, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			continue // non-counter series never enter the allowlist
		}
		out[key] = v
	}
	return out, nil
}

// TruthStore drives the scenario's full dispatch plan through the mobility
// model alone — no radio, no positioning — and returns a store of exact
// ground-truth traversals. This is the oracle the seasonal-index tests
// interrogate: SI(i,l) over TruthStore reflects the injected demand and
// congestion cycles with no estimation noise on top.
func TruthStore(spec Spec) (*traveltime.Store, *roadnet.Network, error) {
	spec = spec.withDefaults()
	net, err := roadnet.BuildCity(spec.City)
	if err != nil {
		return nil, nil, err
	}
	root := xrand.New(spec.Seed)
	dispatches, _, _, err := compileDispatches(spec, net)
	if err != nil {
		return nil, nil, err
	}
	field := congestionField(spec)
	incidents, err := seedIncidents(net, spec, root.Split("incidents"))
	if err != nil {
		return nil, nil, err
	}
	store := traveltime.NewStore(traveltime.HourlyPlan())
	for i, d := range dispatches {
		trip, err := mobility.Drive(net, d.routeID, Day.Add(d.at), spec.Drive, field, incidents, root.SplitN("trip", i))
		if err != nil {
			return nil, nil, err
		}
		travs, err := mobility.Traversals(net, trip)
		if err != nil {
			return nil, nil, err
		}
		for _, tv := range travs {
			rec := traveltime.Record{Seg: tv.Seg, RouteID: tv.RouteID, Enter: tv.Enter, Exit: tv.Exit}
			if err := store.Add(rec); err != nil {
				return nil, nil, err
			}
		}
	}
	return store, net, nil
}
