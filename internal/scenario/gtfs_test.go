package scenario

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"wilocator/internal/roadnet"
)

const validDoc = `# comment line
stop,r1:0,r1,0.0,First & Main
stop,r1:1,r1,450.5,Second, the one with a comma
trip,r1:trip-000,r1
stoptime,r1:trip-000,r1:0,09:00:00
stoptime,r1:trip-000,r1:1,09:01:30
`

func TestImportTimetableValid(t *testing.T) {
	tt, err := ImportTimetable(strings.NewReader(validDoc))
	if err != nil {
		t.Fatal(err)
	}
	if len(tt.Stops) != 2 || len(tt.Trips) != 1 {
		t.Fatalf("got %d stops, %d trips", len(tt.Stops), len(tt.Trips))
	}
	if got := tt.Stops["r1:1"].Name; got != "Second, the one with a comma" {
		t.Errorf("comma-bearing stop name mangled: %q", got)
	}
	if got := tt.Stops["r1:1"].Arc; got != 450.5 {
		t.Errorf("arc = %v, want 450.5", got)
	}
	deps := tt.Departures("r1")
	if len(deps) != 1 || deps[0] != 9*time.Hour {
		t.Errorf("departures = %v, want [9h]", deps)
	}
	if len(tt.Departures("no-such-route")) != 0 {
		t.Error("unknown route yielded departures")
	}
}

func TestImportTimetableErrors(t *testing.T) {
	long := strings.Repeat("x", 200)
	cases := []struct {
		name string
		doc  string
	}{
		{"unknown directive", "frequency,r1,600\n"},
		{"stop field count", "stop,s1,r1,100\n"},
		{"trip field count", "trip,t1\n"},
		{"stoptime field count", "stoptime,t1,s1\n"},
		{"empty stop id", "stop,,r1,0,A\n"},
		{"empty route id", "trip,t1,\n"},
		{"oversized id", "trip," + long + ",r1\n"},
		{"duplicate stop", "stop,s1,r1,0,A\nstop,s1,r1,10,B\n"},
		{"duplicate trip", "trip,t1,r1\ntrip,t1,r1\n"},
		{"bad arc", "stop,s1,r1,12m,A\n"},
		{"negative arc", "stop,s1,r1,-4,A\n"},
		{"exponent arc", "stop,s1,r1,1e3,A\n"},
		{"undeclared trip", "stop,s1,r1,0,A\nstoptime,t1,s1,09:00:00\n"},
		{"undeclared stop", "trip,t1,r1\nstoptime,t1,s1,09:00:00\n"},
		{"route mismatch", "stop,s1,r2,0,A\ntrip,t1,r1\nstoptime,t1,s1,09:00:00\n"},
		{"bad time format", "stop,s1,r1,0,A\ntrip,t1,r1\nstoptime,t1,s1,9am\n"},
		{"minutes out of range", "stop,s1,r1,0,A\ntrip,t1,r1\nstoptime,t1,s1,09:61:00\n"},
		{"hours out of range", "stop,s1,r1,0,A\ntrip,t1,r1\nstoptime,t1,s1,48:00:00\n"},
		{"out-of-order times", "stop,s1,r1,0,A\nstop,s2,r1,100,B\ntrip,t1,r1\n" +
			"stoptime,t1,s1,09:05:00\nstoptime,t1,s2,09:04:00\n"},
		{"equal times", "stop,s1,r1,0,A\nstop,s2,r1,100,B\ntrip,t1,r1\n" +
			"stoptime,t1,s1,09:05:00\nstoptime,t1,s2,09:05:00\n"},
		{"decreasing arcs", "stop,s1,r1,100,A\nstop,s2,r1,50,B\ntrip,t1,r1\n" +
			"stoptime,t1,s1,09:00:00\nstoptime,t1,s2,09:01:00\n"},
		{"one-stop trip", "stop,s1,r1,0,A\ntrip,t1,r1\nstoptime,t1,s1,09:00:00\n"},
		{"no-stoptime trip", "trip,t1,r1\n"},
		{"oversized document", strings.Repeat("# filler\n", maxTimetableLines+1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ImportTimetable(strings.NewReader(tc.doc)); err == nil {
				t.Fatalf("document accepted:\n%s", tc.doc)
			}
		})
	}
}

// TestRenderImportRoundTrip pins that every rendered timetable re-imports
// losslessly: same trip count per route, departures in order, stop
// inventory matching the city's routes.
func TestRenderImportRoundTrip(t *testing.T) {
	net, err := roadnet.BuildCity(roadnet.CitySpec{Form: roadnet.CityRiverine, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	deps := map[string][]time.Duration{}
	for _, r := range net.Routes() {
		deps[r.ID()] = []time.Duration{9 * time.Hour, 9*time.Hour + 20*time.Minute}
	}
	doc, err := RenderTimetable(net, deps)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := ImportTimetable(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("rendered document does not re-import: %v\n%s", err, doc)
	}
	for _, r := range net.Routes() {
		got := tt.Departures(r.ID())
		if len(got) != 2 || got[0] != 9*time.Hour || got[1] != 9*time.Hour+20*time.Minute {
			t.Errorf("route %s departures = %v", r.ID(), got)
		}
		for i := 0; i < r.NumStops(); i++ {
			id := r.ID() + ":" + strconv.Itoa(i)
			stop, ok := tt.Stops[id]
			if !ok {
				t.Fatalf("stop %s missing from imported timetable", id)
			}
			if stop.Name != r.Stops()[i].Name {
				t.Errorf("stop %s name = %q, want %q", id, stop.Name, r.Stops()[i].Name)
			}
		}
	}
	if _, err := RenderTimetable(net, map[string][]time.Duration{"ghost": nil}); err == nil {
		t.Error("unknown route rendered without error")
	}
}
