// gtfs.go is the scenario engine's route/timetable interchange: a line-based
// GTFS-like document (stops, trips, stop times) rendered from a generated
// city and re-imported into the dispatch plan. Every scenario round-trips
// its timetable through this importer, so the parser is load-bearing in
// every golden replay — and it is also the fuzz target: malformed documents
// must error, never panic.
package scenario

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"wilocator/internal/roadnet"
)

// Document size caps, so a hostile feed cannot balloon server-side maps.
const (
	maxTimetableLines = 10000
	maxTimetableIDLen = 128
)

// TimetableStop is one named stop of a route, positioned by arc length.
type TimetableStop struct {
	ID      string
	RouteID string
	Arc     float64
	Name    string
}

// StopTime is one scheduled call of a trip at a stop, as an offset from the
// service day's midnight. GTFS convention allows hours past 24 for
// trips crossing midnight.
type StopTime struct {
	StopID string
	At     time.Duration
}

// TimetableTrip is one scheduled run of a route.
type TimetableTrip struct {
	ID      string
	RouteID string
	Times   []StopTime
}

// Timetable is the parsed document: the stop inventory and the scheduled
// trips, in document order.
type Timetable struct {
	Stops map[string]TimetableStop
	Trips []TimetableTrip
}

// Departures returns the first-stop departure offsets of the route's trips,
// sorted ascending.
func (tt *Timetable) Departures(routeID string) []time.Duration {
	var out []time.Duration
	for _, trip := range tt.Trips {
		if trip.RouteID == routeID && len(trip.Times) > 0 {
			out = append(out, trip.Times[0].At)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ImportTimetable parses a GTFS-like timetable document:
//
//	# comment
//	stop,<stopID>,<routeID>,<arcMetres>,<name>
//	trip,<tripID>,<routeID>
//	stoptime,<tripID>,<stopID>,<HH:MM:SS>
//
// Any malformed input — unknown directives, bad field counts, duplicate or
// oversized IDs, dangling references, route mismatches, non-increasing stop
// times, decreasing stop arcs, unparsable times — yields an error; the
// importer never panics. Declarations may arrive in any order between
// record kinds, but a stoptime must follow its trip and stop declarations.
func ImportTimetable(r io.Reader) (*Timetable, error) {
	tt := &Timetable{Stops: map[string]TimetableStop{}}
	tripIdx := map[string]int{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if lineNo > maxTimetableLines {
			return nil, fmt.Errorf("scenario: timetable exceeds %d lines", maxTimetableLines)
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		switch fields[0] {
		case "stop":
			if len(fields) < 5 {
				return nil, fmt.Errorf("scenario: line %d: stop needs 5 fields, got %d", lineNo, len(fields))
			}
			id, routeID := fields[1], fields[2]
			if err := checkID(lineNo, "stop", id); err != nil {
				return nil, err
			}
			if err := checkID(lineNo, "route", routeID); err != nil {
				return nil, err
			}
			if _, dup := tt.Stops[id]; dup {
				return nil, fmt.Errorf("scenario: line %d: duplicate stop %q", lineNo, id)
			}
			arc, err := parseArc(fields[3])
			if err != nil {
				return nil, fmt.Errorf("scenario: line %d: stop %q: %v", lineNo, id, err)
			}
			// The name is free text and may itself contain commas.
			name := strings.Join(fields[4:], ",")
			tt.Stops[id] = TimetableStop{ID: id, RouteID: routeID, Arc: arc, Name: name}
		case "trip":
			if len(fields) != 3 {
				return nil, fmt.Errorf("scenario: line %d: trip needs 3 fields, got %d", lineNo, len(fields))
			}
			id, routeID := fields[1], fields[2]
			if err := checkID(lineNo, "trip", id); err != nil {
				return nil, err
			}
			if err := checkID(lineNo, "route", routeID); err != nil {
				return nil, err
			}
			if _, dup := tripIdx[id]; dup {
				return nil, fmt.Errorf("scenario: line %d: duplicate trip %q", lineNo, id)
			}
			tripIdx[id] = len(tt.Trips)
			tt.Trips = append(tt.Trips, TimetableTrip{ID: id, RouteID: routeID})
		case "stoptime":
			if len(fields) != 4 {
				return nil, fmt.Errorf("scenario: line %d: stoptime needs 4 fields, got %d", lineNo, len(fields))
			}
			tripID, stopID := fields[1], fields[2]
			ti, ok := tripIdx[tripID]
			if !ok {
				return nil, fmt.Errorf("scenario: line %d: stoptime for undeclared trip %q", lineNo, tripID)
			}
			stop, ok := tt.Stops[stopID]
			if !ok {
				return nil, fmt.Errorf("scenario: line %d: stoptime at undeclared stop %q", lineNo, stopID)
			}
			trip := &tt.Trips[ti]
			if stop.RouteID != trip.RouteID {
				return nil, fmt.Errorf("scenario: line %d: stop %q belongs to route %q, trip %q runs route %q",
					lineNo, stopID, stop.RouteID, tripID, trip.RouteID)
			}
			at, err := parseClock(fields[3])
			if err != nil {
				return nil, fmt.Errorf("scenario: line %d: %v", lineNo, err)
			}
			if n := len(trip.Times); n > 0 {
				last := trip.Times[n-1]
				if at <= last.At {
					return nil, fmt.Errorf("scenario: line %d: trip %q stop times not strictly increasing", lineNo, tripID)
				}
				if stop.Arc <= tt.Stops[last.StopID].Arc {
					return nil, fmt.Errorf("scenario: line %d: trip %q stop arcs not strictly increasing", lineNo, tripID)
				}
			}
			trip.Times = append(trip.Times, StopTime{StopID: stopID, At: at})
		default:
			return nil, fmt.Errorf("scenario: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scenario: reading timetable: %w", err)
	}
	for _, trip := range tt.Trips {
		if len(trip.Times) < 2 {
			return nil, fmt.Errorf("scenario: trip %q has %d stop times, want >= 2", trip.ID, len(trip.Times))
		}
	}
	return tt, nil
}

func checkID(lineNo int, kind, id string) error {
	if id == "" {
		return fmt.Errorf("scenario: line %d: empty %s id", lineNo, kind)
	}
	if len(id) > maxTimetableIDLen {
		return fmt.Errorf("scenario: line %d: %s id longer than %d bytes", lineNo, kind, maxTimetableIDLen)
	}
	return nil
}

// parseArc parses a non-negative decimal metre count without pulling in
// strconv's permissive float syntax (no exponents, signs, inf or NaN).
func parseArc(s string) (float64, error) {
	whole, frac, hasFrac := strings.Cut(s, ".")
	v, err := parseDigits(whole, 9)
	if err != nil {
		return 0, fmt.Errorf("bad arc %q", s)
	}
	out := float64(v)
	if hasFrac {
		fv, err := parseDigits(frac, 6)
		if err != nil {
			return 0, fmt.Errorf("bad arc %q", s)
		}
		scale := 1.0
		for range frac {
			scale *= 10
		}
		out += float64(fv) / scale
	}
	return out, nil
}

// parseClock parses HH:MM:SS with the GTFS convention of HH up to 47 for
// post-midnight trips.
func parseClock(s string) (time.Duration, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, fmt.Errorf("bad time %q", s)
	}
	hh, err1 := parseDigits(parts[0], 2)
	mm, err2 := parseDigits(parts[1], 2)
	ss, err3 := parseDigits(parts[2], 2)
	if err1 != nil || err2 != nil || err3 != nil {
		return 0, fmt.Errorf("bad time %q", s)
	}
	if hh >= 48 || mm >= 60 || ss >= 60 {
		return 0, fmt.Errorf("time %q out of range", s)
	}
	return time.Duration(hh)*time.Hour + time.Duration(mm)*time.Minute + time.Duration(ss)*time.Second, nil
}

func parseDigits(s string, maxLen int) (int64, error) {
	if s == "" || len(s) > maxLen {
		return 0, fmt.Errorf("bad digits %q", s)
	}
	var v int64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad digits %q", s)
		}
		v = v*10 + int64(c-'0')
	}
	return v, nil
}

// nominalScheduleSpeed is the free-flow planning speed (m/s) used to pencil
// downstream stop times into a rendered timetable. Schedules are plans, not
// physics: the simulator drives the real mobility model regardless.
const nominalScheduleSpeed = 8.0

// RenderTimetable renders the GTFS-like document for a network and a
// per-route departure list, deterministically: routes sorted by ID, trips
// numbered in departure order, stop times penciled at the nominal planning
// speed. Compile round-trips every scenario's dispatch plan through
// RenderTimetable + ImportTimetable, so the importer is exercised by every
// golden replay.
func RenderTimetable(net *roadnet.Network, deps map[string][]time.Duration) (string, error) {
	routeIDs := make([]string, 0, len(deps))
	for id := range deps {
		routeIDs = append(routeIDs, id)
	}
	sort.Strings(routeIDs)
	var b strings.Builder
	b.WriteString("# wilocator scenario timetable\n")
	for _, routeID := range routeIDs {
		route, ok := net.Route(routeID)
		if !ok {
			return "", fmt.Errorf("scenario: timetable references unknown route %q", routeID)
		}
		stops := route.Stops()
		if len(stops) < 2 {
			return "", fmt.Errorf("scenario: route %q has %d stops, want >= 2", routeID, len(stops))
		}
		for i, st := range stops {
			fmt.Fprintf(&b, "stop,%s:%d,%s,%.1f,%s\n", routeID, i, routeID, st.Arc, st.Name)
		}
		for ti, dep := range deps[routeID] {
			tripID := fmt.Sprintf("%s:trip-%03d", routeID, ti)
			fmt.Fprintf(&b, "trip,%s,%s\n", tripID, routeID)
			for i, st := range stops {
				at := dep + time.Duration(st.Arc/nominalScheduleSpeed*float64(time.Second))
				// The planning speed can place two close stops in the same
				// second; nudge forward to keep times strictly increasing.
				if minAt := dep + time.Duration(i)*time.Second; at < minAt {
					at = minAt
				}
				fmt.Fprintf(&b, "stoptime,%s,%s:%d,%s\n", tripID, routeID, i, clockString(at))
			}
		}
	}
	return b.String(), nil
}

// clockString renders a midnight offset as HH:MM:SS (GTFS-style, hours may
// exceed 23 on post-midnight trips).
func clockString(d time.Duration) string {
	d = d.Truncate(time.Second)
	h := int(d / time.Hour)
	m := int(d/time.Minute) % 60
	s := int(d/time.Second) % 60
	return fmt.Sprintf("%02d:%02d:%02d", h, m, s)
}
