// Package scenario is WiLocator's declarative scenario engine: a seeded
// Spec composes a generated city (grid, radial, riverine or the paper's
// Vancouver corridor), a GTFS-like timetable expanded from a day-scale
// demand profile, per-phone device heterogeneity, AP churn waves, incident
// storms and adversarial reporters, and compiles to one deterministic
// delivery-ordered event stream. Run replays that stream through the REAL
// pipeline — ingest → fusion → SVD locate → travel-time → predict →
// traffic map — and returns a JSON-stable Result, which internal/eval pins
// against checked-in goldens per corpus scenario.
package scenario

import (
	"fmt"
	"time"

	"wilocator/internal/mobility"
	"wilocator/internal/roadnet"
)

// DeviceSpec models per-phone hardware heterogeneity (the paper notes COTS
// phones differ by up to ±10 dB in reported RSS). The zero value is an
// ideal fleet: no bias, no dropout, no skew, no report loss.
type DeviceSpec struct {
	// BiasSigma is the std dev (dB) of each phone's constant RSS offset.
	BiasSigma float64
	// DropoutProb drops individual AP readings from reported scans.
	DropoutProb float64
	// ClockSkewMax bounds each phone's constant clock offset (uniform ±).
	ClockSkewMax time.Duration
	// ReportLoss is the probability a scan never reaches the server;
	// 0 means lossless (scenarios opt in to loss explicitly).
	ReportLoss float64
}

// CongestionSpec passes through to the mobility congestion field. Zero
// values select the field's defaults; set a factor to exactly 1 for a
// literally flat profile and a sigma negative to disable that noise term.
type CongestionSpec struct {
	RushFactor   float64
	MiddayFactor float64
	Sigma        float64
	DaySigma     float64
}

// ChurnWave kills a fraction of the surviving APs at a point in the service
// window; the server must Rebuild its diagram and keep locating.
type ChurnWave struct {
	// After offsets the wave from the service window's start.
	After time.Duration
	// Frac of the still-alive APs die (at least one).
	Frac float64
}

// IncidentSpec seeds an incident storm: localised slow zones (construction,
// accidents) scattered over the city's route segments.
type IncidentSpec struct {
	Count int
	// SlowFactor divides bus speed inside each zone; must be > 1 when
	// Count > 0.
	SlowFactor float64
	// Duration each incident stays active. Default 30 min.
	Duration time.Duration
}

// AdversarySpec injects hostile reporters the validation layer must shed
// without perturbing clean tracking: sybil swarms on ghost routes, replayed
// stale scans on real buses, and RSS-poisoned payloads.
type AdversarySpec struct {
	// SybilReporters fake buses each send SybilReports reports for routes
	// that do not exist.
	SybilReporters int
	SybilReports   int
	// PoisonedReports clones clean reports with an absurd RSS value.
	PoisonedReports int
	// ReplayedReports re-deliver old scans of real buses mid-stream.
	ReplayedReports int
}

func (a AdversarySpec) isZero() bool {
	return a.SybilReporters == 0 && a.PoisonedReports == 0 && a.ReplayedReports == 0
}

// Spec is one declarative scenario. Every stochastic choice derives from
// Seed, so a Spec compiles to the same event stream on every machine.
type Spec struct {
	Name string
	Seed uint64

	// City picks the street graph and routes.
	City roadnet.CitySpec
	// APSpacing is the deployment's AP spacing in metres. Default 150.
	APSpacing float64

	// StartHour and EndHour bound the service window (dispatches) on the
	// simulated day. Defaults 9 and 10.
	StartHour, EndHour int
	// BaseHeadway is the per-route headway at demand 1. Default 10 min.
	BaseHeadway time.Duration
	// Demand scales dispatch density by hour; zero means flat service
	// across the window.
	Demand mobility.DemandProfile
	// MaxTrips caps the dispatch count by stride-thinning (keeping the
	// window's full span, not its prefix). 0 = unlimited.
	MaxTrips int

	// TripHorizon caps how long each bus is replayed. Default 8 min.
	TripHorizon time.Duration
	// ScanPeriod is both the phones' scan period and the server's fusion
	// window. Default 10 s.
	ScanPeriod time.Duration
	// Phones is the rider-phone count per bus. Default 2.
	Phones int
	// Device models phone heterogeneity.
	Device DeviceSpec
	// Drive tunes the mobility model.
	Drive mobility.DriveConfig
	// Congestion tunes the shared congestion field.
	Congestion CongestionSpec
	// Incidents seeds an incident storm.
	Incidents IncidentSpec

	// DupProb and SwapProb perturb delivery (at-least-once, out-of-order).
	DupProb, SwapProb float64

	// Churn schedules AP death waves.
	Churn []ChurnWave
	// Adversary injects hostile reporters.
	Adversary AdversarySpec
}

func (s Spec) withDefaults() Spec {
	if s.APSpacing <= 0 {
		s.APSpacing = 150
	}
	if s.StartHour == 0 && s.EndHour == 0 {
		s.StartHour, s.EndHour = 9, 10
	}
	if s.BaseHeadway <= 0 {
		s.BaseHeadway = 10 * time.Minute
	}
	if s.TripHorizon <= 0 {
		s.TripHorizon = 8 * time.Minute
	}
	if s.ScanPeriod <= 0 {
		s.ScanPeriod = 10 * time.Second
	}
	if s.Phones <= 0 {
		s.Phones = 2
	}
	if s.Demand.IsZero() {
		for h := s.StartHour; h < s.EndHour && h < 24; h++ {
			s.Demand[h] = 1
		}
	}
	return s
}

// Corpus returns the checked-in golden scenario set: three generated city
// forms, a day-scale rush cycle, an AP-churn wave and an adversarial storm.
// Core() marks the subset `make ci` replays in -short mode.
func Corpus() []Spec {
	return []Spec{
		{
			// The smoke scenario: a generated grid city under a morning
			// burst of dispatches with delivery perturbation.
			Name:     "grid-burst",
			Seed:     11,
			City:     roadnet.CitySpec{Form: roadnet.CityGrid, Seed: 11},
			MaxTrips: 8,
			DupProb:  0.03,
			SwapProb: 0.03,
		},
		{
			// Device heterogeneity: biased, droppy, skewed phones on a
			// radial city. Positioning must survive ±10 dB offsets.
			Name:     "radial-device",
			Seed:     22,
			City:     roadnet.CitySpec{Form: roadnet.CityRadial, Seed: 22},
			MaxTrips: 6,
			Device: DeviceSpec{
				BiasSigma:    10,
				DropoutProb:  0.08,
				ClockSkewMax: 2 * time.Second,
				ReportLoss:   0.03,
			},
		},
		{
			// Incident storm on a riverine city: slow zones the anomaly
			// detector and traffic map must surface.
			Name:      "riverine-incident",
			Seed:      33,
			City:      roadnet.CitySpec{Form: roadnet.CityRiverine, Seed: 33},
			MaxTrips:  6,
			Incidents: IncidentSpec{Count: 3, SlowFactor: 4, Duration: 30 * time.Minute},
		},
		{
			// Day-scale: a 6-23 h service day under a commuter demand
			// profile, the input the seasonal index SI(i,l) digests.
			Name:        "grid-day-rush",
			Seed:        44,
			City:        roadnet.CitySpec{Form: roadnet.CityGrid, Seed: 44},
			StartHour:   6,
			EndHour:     23,
			BaseHeadway: 45 * time.Minute,
			Demand:      mobility.RushDemand(),
			MaxTrips:    24,
			ScanPeriod:  30 * time.Second,
			TripHorizon: 10 * time.Minute,
		},
		{
			// AP churn: two death waves mid-window force live diagram
			// rebuilds between fixes.
			Name:     "grid-churn",
			Seed:     55,
			City:     roadnet.CitySpec{Form: roadnet.CityGrid, Seed: 55},
			MaxTrips: 6,
			Churn: []ChurnWave{
				{After: 3 * time.Minute, Frac: 0.3},
				{After: 6 * time.Minute, Frac: 0.3},
			},
		},
		{
			// Adversarial storm: sybil floods, poisoned RSS and replayed
			// scans the validation layer must shed without degrading the
			// clean fleet.
			Name:     "grid-adversarial",
			Seed:     66,
			City:     roadnet.CitySpec{Form: roadnet.CityGrid, Seed: 66},
			MaxTrips: 6,
			Adversary: AdversarySpec{
				SybilReporters:  3,
				SybilReports:    5,
				PoisonedReports: 12,
				ReplayedReports: 6,
			},
		},
	}
}

// Core reports whether the scenario belongs to the -short CI tier.
func (s Spec) Core() bool {
	switch s.Name {
	case "grid-burst", "grid-churn", "grid-adversarial":
		return true
	}
	return false
}

// ByName finds a corpus scenario.
func ByName(name string) (Spec, bool) {
	for _, s := range Corpus() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// MustByName is ByName for tests that own the name.
func MustByName(name string) Spec {
	s, ok := ByName(name)
	if !ok {
		panic(fmt.Sprintf("scenario: no corpus scenario %q", name))
	}
	return s
}
