package scenario

import (
	"net"
	"path/filepath"
	"testing"
	"time"

	"wilocator/internal/api"
	"wilocator/internal/cluster"
	"wilocator/internal/loadtest"
	"wilocator/internal/server"
	"wilocator/internal/traveltime"
)

// TestChaosClusterStandbyPromotion runs the cluster's warm-standby path
// over a scenario-compiled world: one leader owning every route, one
// RoleFollower node that serves nothing and only replicates. Kill the
// leader mid-fleet; the standby must promote the shipped replica through
// the standard recovery path and finish the fleet with a store identical
// to an uninterrupted run's crash-resume. This is the pure-follower
// complement to the 2-leader equivalence test in internal/cluster.
func TestChaosClusterStandbyPromotion(t *testing.T) {
	w, streams, err := ChaosWorld(MustByName("grid-burst"))
	if err != nil {
		t.Fatal(err)
	}
	end := Day
	for _, st := range streams {
		for _, rep := range st.Reports {
			if rep.Scan.Time.After(end) {
				end = rep.Scan.Time
			}
		}
	}
	now := loadtest.FixedClock(end.Add(time.Minute))
	total := loadtest.TotalReports(streams)
	crashAt := total / 2

	refSvc, refStore, err := loadtest.NewService(w, server.Config{Now: now})
	if err != nil {
		t.Fatal(err)
	}
	refTally := loadtest.ReplayRange(refSvc, streams, 0, crashAt)
	if refTally.Errors != 0 {
		t.Fatalf("reference replay errored: %v", refTally)
	}

	lstL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lstF, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	topo := cluster.Topology{Nodes: []cluster.NodeSpec{
		{ID: "leader", Addr: "http://unroutable.invalid", ReplAddr: lstL.Addr().String()},
		{ID: "standby", Addr: "http://unroutable.invalid", ReplAddr: lstF.Addr().String(), Role: cluster.RoleFollower},
	}}

	base := t.TempDir()
	wake := cluster.NewWakeup()
	ps, err := loadtest.NewPersistentService(w, filepath.Join(base, "leader"),
		server.Config{Now: now},
		traveltime.PersistConfig{SyncEvery: 1, OnDurable: wake.Poke})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ps.Persist.Close() }() // the kill below abandons this persister

	newStore := func() *traveltime.Store { return traveltime.NewStore(traveltime.PaperPlan()) }
	var promoted *traveltime.Store
	newService := func(store *traveltime.Store, sink func(traveltime.Record) error, stats func() traveltime.PersistStats) (*server.Service, error) {
		promoted = store
		return server.NewService(w.Dia, store, server.Config{Now: now, Sink: sink, PersistStats: stats})
	}
	mkNode := func(self string, svcCfg func(*cluster.Config), lst net.Listener) *cluster.Node {
		cfg := cluster.Config{
			Self:           self,
			Topology:       topo,
			ReplicaRoot:    filepath.Join(base, self+"-replicas"),
			NewStore:       newStore,
			NewService:     newService,
			Persist:        traveltime.PersistConfig{SyncEvery: 1},
			HeartbeatEvery: 50 * time.Millisecond,
			FailoverAfter:  2 * time.Second,
			Logf:           t.Logf,
			Listener:       lst,
		}
		svcCfg(&cfg)
		node, err := cluster.NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Start(t.Context()); err != nil {
			t.Fatal(err)
		}
		return node
	}
	leader := mkNode("leader", func(c *cluster.Config) {
		c.Service = ps.Svc
		c.Persister = ps.Persist
		c.Wake = wake
	}, lstL)
	defer leader.Close()
	standby := mkNode("standby", func(c *cluster.Config) {}, lstF)
	defer standby.Close()

	ctx := t.Context()
	liveTally := loadtest.ReplayVia(streams, 0, crashAt, func(rep api.Report) (api.IngestResponse, error) {
		resp, _, err := leader.Dispatch(ctx, rep)
		return resp, err
	})
	if liveTally != refTally {
		t.Fatalf("clustered tallies diverged before the kill: %v vs %v", liveTally, refTally)
	}

	// Drain replication, observed from the leader's acked frontier.
	waitShard := func(what string, cond func(api.ShardStatus) bool, from *cluster.Node) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			for _, sh := range from.Status().Shards {
				if sh.Origin == "leader" && cond(sh) {
					return
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}
	waitShard("replication drained", func(sh api.ShardStatus) bool {
		return sh.Local && sh.ReplicationLagBytes == 0
	}, leader)

	leader.Kill() // abandons the leader's persister, like a dead process

	waitShard("standby promotion", func(sh api.ShardStatus) bool {
		return sh.Local && sh.Promoted
	}, standby)
	if promoted == nil {
		t.Fatal("promotion did not build a store")
	}
	if err := traveltime.Diff(refStore, promoted, 1e-9); err != nil {
		t.Fatalf("promoted store diverges from the unkilled run at the kill point: %v", err)
	}

	// Crash-resume on both sides: the reference restarts its service over
	// the surviving store, the cluster routes the rest of the fleet into
	// the promoted standby.
	resumed, err := server.NewService(w.Dia, refStore, server.Config{Now: now})
	if err != nil {
		t.Fatal(err)
	}
	refTail := loadtest.ReplayRange(resumed, streams, crashAt, -1)
	liveTail := loadtest.ReplayVia(streams, crashAt, -1, func(rep api.Report) (api.IngestResponse, error) {
		resp, _, err := standby.Dispatch(ctx, rep)
		return resp, err
	})
	if liveTail != refTail {
		t.Fatalf("post-promotion tallies diverged: %v vs %v", liveTail, refTail)
	}
	if err := traveltime.Diff(refStore, promoted, 1e-9); err != nil {
		t.Fatalf("promoted shard diverged from reference after resume: %v", err)
	}
}
