// chaos.go bridges the scenario engine to the loadtest chaos harness: any
// declarative Spec — generated city, device models, churn, adversaries —
// compiles down to the harness's World plus per-bus clean streams, so
// fault injection and crash/recovery equivalence run over scenario-built
// cities exactly as they do over the fixed Vancouver network. The bridge
// lives here (scenario → loadtest) rather than in loadtest because eval's
// in-package golden tests import loadtest, and scenario already imports
// eval: the reverse direction would cycle.
package scenario

import (
	"wilocator/internal/loadtest"
)

// ChaosWorld compiles a scenario spec into the chaos harness's immutable
// World and one clean report stream per bus. Only the scenario's clean
// events are exported — the harness layers its own faults on top, and the
// scenario's adversarial events have their own replay path in Run.
func ChaosWorld(spec Spec) (*loadtest.World, []loadtest.BusStream, error) {
	c, err := Compile(spec)
	if err != nil {
		return nil, nil, err
	}
	w := &loadtest.World{Net: c.Net, Dep: c.Dep, Dia: c.Dia}
	streams := make([]loadtest.BusStream, len(c.Buses))
	for i, b := range c.Buses {
		streams[i] = loadtest.BusStream{BusID: b.ID, RouteID: b.RouteID, Reports: c.CleanReports(i)}
	}
	return w, streams, nil
}
