package scenario

import (
	"bytes"
	"testing"
)

// TestAdversarialScenarioShedsWithoutDegrading is the adversarial
// regression test: the validation layer must shed every hostile reporter —
// visibly, through the /metrics registry — while the clean fleet's
// tracking output stays byte-identical to a run with no adversary at all.
func TestAdversarialScenarioShedsWithoutDegrading(t *testing.T) {
	spec := MustByName("grid-adversarial")
	hostile, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	clean := spec
	clean.Adversary = AdversarySpec{}
	baseline, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}

	// Every hostile kind is fully shed on its intended path.
	sybil := hostile.ByKind[string(KindSybil)]
	wantSybil := spec.Adversary.SybilReporters * spec.Adversary.SybilReports
	if sybil.Delivered != wantSybil || sybil.Rejected != wantSybil {
		t.Errorf("sybil tally = %+v, want %d delivered and all rejected", sybil, wantSybil)
	}
	poison := hostile.ByKind[string(KindPoison)]
	if poison.Delivered != spec.Adversary.PoisonedReports || poison.Rejected != poison.Delivered {
		t.Errorf("poison tally = %+v, want %d delivered and all rejected", poison, spec.Adversary.PoisonedReports)
	}
	replay := hostile.ByKind[string(KindReplay)]
	if replay.Delivered != spec.Adversary.ReplayedReports || replay.LateDropped != replay.Delivered {
		t.Errorf("replay tally = %+v, want %d delivered and all late-dropped", replay, spec.Adversary.ReplayedReports)
	}
	for _, kind := range []EventKind{KindSybil, KindPoison, KindReplay} {
		if res := hostile.ByKind[string(kind)]; res.Accepted != 0 || res.Located != 0 {
			t.Errorf("%s events leaked into the pipeline: %+v", kind, res)
		}
	}

	// The shed counters are observable where an operator would look: the
	// service's /metrics registry.
	rejected := hostile.Metrics[`wilocator_ingest_reports_total{outcome="rejected"}`]
	if want := uint64(wantSybil + spec.Adversary.PoisonedReports); rejected != want {
		t.Errorf("rejected metric = %d, want %d", rejected, want)
	}
	if got := hostile.Metrics[`wilocator_ingest_reports_total{outcome="late_dropped"}`]; got != uint64(spec.Adversary.ReplayedReports) {
		t.Errorf("late_dropped metric = %d, want %d", got, spec.Adversary.ReplayedReports)
	}
	if got := hostile.Metrics["wilocator_ingest_invalid_reports_total"]; got != uint64(spec.Adversary.PoisonedReports) {
		t.Errorf("invalid metric = %d, want %d (the poisoned payloads)", got, spec.Adversary.PoisonedReports)
	}
	if hostile.Metrics["wilocator_bus_registrations_total"] != baseline.Metrics["wilocator_bus_registrations_total"] {
		t.Errorf("adversary changed bus registrations: %d vs %d",
			hostile.Metrics["wilocator_bus_registrations_total"], baseline.Metrics["wilocator_bus_registrations_total"])
	}

	// Clean-envelope equality: the hostile run's clean stream ends in
	// exactly the baseline's state.
	if hostile.ByKind[string(KindClean)] != baseline.ByKind[string(KindClean)] {
		t.Errorf("clean tallies diverged: %+v vs %+v",
			hostile.ByKind[string(KindClean)], baseline.ByKind[string(KindClean)])
	}
	if hostile.CleanFixRate != baseline.CleanFixRate {
		t.Errorf("clean fix rate degraded: %.4f vs %.4f", hostile.CleanFixRate, baseline.CleanFixRate)
	}
	if hostile.PositionError != baseline.PositionError {
		t.Errorf("position error envelope moved: %+v vs %+v", hostile.PositionError, baseline.PositionError)
	}
	if len(hostile.Trajectories) != len(baseline.Trajectories) {
		t.Fatalf("trajectory count diverged: %d vs %d", len(hostile.Trajectories), len(baseline.Trajectories))
	}
	for busID, a := range hostile.Trajectories {
		b, ok := baseline.Trajectories[busID]
		if !ok {
			t.Fatalf("bus %s tracked only under adversary", busID)
		}
		if len(a.Fixes) != len(b.Fixes) {
			t.Fatalf("bus %s fix count diverged: %d vs %d", busID, len(a.Fixes), len(b.Fixes))
		}
		for i := range a.Fixes {
			if a.Fixes[i] != b.Fixes[i] {
				t.Fatalf("bus %s fix %d diverged: %+v vs %+v", busID, i, a.Fixes[i], b.Fixes[i])
			}
		}
	}
	ja, jb := encodeResult(t, hostile), encodeResult(t, baseline)
	if bytes.Equal(ja, jb) {
		t.Error("hostile and baseline results are byte-identical; the adversary was not injected")
	}

	// The sybil reporters never became visible vehicles.
	for _, v := range hostile.Vehicles {
		if len(v.BusID) >= 5 && v.BusID[:5] == "sybil" {
			t.Errorf("sybil reporter %s is being tracked", v.BusID)
		}
	}
}
