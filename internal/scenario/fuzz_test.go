package scenario

import (
	"strings"
	"testing"
)

// FuzzImportTimetable asserts the GTFS-like importer never panics, and that
// every document it does accept satisfies the parser's promises: trips with
// at least two strictly increasing stop times, every stop time referencing
// a declared stop of the trip's own route.
func FuzzImportTimetable(f *testing.F) {
	f.Add(validDoc)
	f.Add("")
	f.Add("# only a comment\n")
	f.Add("stop,s1,r1,100.5,Main St\ntrip,t1,r1\nstoptime,t1,s1,09:00:00\nstoptime,t1,s1,09:01:00\n")
	f.Add("stop,s1,r1,0,A\nstop,s2,r1,100,B\ntrip,t1,r1\nstoptime,t1,s1,25:59:59\nstoptime,t1,s2,26:00:00\n")
	f.Add("trip,t1,r1\ntrip,t1,r1\n")
	f.Add("stoptime,ghost,ghost,99:99:99\n")
	f.Add("stop,s1,r1,1e9,A\n")
	f.Add("stop,s1,r1,-5,A\n")
	f.Add("stop,a,b\x00c,0,D\n")
	f.Fuzz(func(t *testing.T, doc string) {
		tt, err := ImportTimetable(strings.NewReader(doc))
		if err != nil {
			if tt != nil {
				t.Fatal("error with non-nil timetable")
			}
			return
		}
		for _, trip := range tt.Trips {
			if len(trip.Times) < 2 {
				t.Fatalf("accepted trip %q with %d stop times", trip.ID, len(trip.Times))
			}
			for i, st := range trip.Times {
				stop, ok := tt.Stops[st.StopID]
				if !ok {
					t.Fatalf("accepted dangling stop ref %q", st.StopID)
				}
				if stop.RouteID != trip.RouteID {
					t.Fatalf("accepted cross-route stop time %q on trip %q", st.StopID, trip.ID)
				}
				if st.At < 0 {
					t.Fatalf("accepted negative stop time %v", st.At)
				}
				if i > 0 && st.At <= trip.Times[i-1].At {
					t.Fatalf("accepted non-increasing stop times on trip %q", trip.ID)
				}
			}
		}
		for id, stop := range tt.Stops {
			if stop.Arc < 0 {
				t.Fatalf("accepted negative arc on stop %q", id)
			}
		}
	})
}
