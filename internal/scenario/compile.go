package scenario

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"wilocator/internal/api"
	"wilocator/internal/mobility"
	"wilocator/internal/roadnet"
	"wilocator/internal/sensing"
	"wilocator/internal/svd"
	"wilocator/internal/wifi"
	"wilocator/internal/xrand"
)

// Day is the simulated service day: the same Monday the rest of the test
// fleet uses (loadtest.T0's date), at midnight.
var Day = time.Date(2016, 3, 7, 0, 0, 0, 0, time.UTC)

// EventKind classifies who produced a delivery-stream event.
type EventKind string

const (
	// KindClean is a genuine rider/driver phone report.
	KindClean EventKind = "clean"
	// KindSybil is a fabricated reporter on a route that does not exist.
	KindSybil EventKind = "sybil"
	// KindPoison is a clone of a clean report with an absurd RSS payload.
	KindPoison EventKind = "poison"
	// KindReplay re-delivers an old scan of a real bus far too late.
	KindReplay EventKind = "replay"
)

// Event is one delivery of one report to the server. The stream is replayed
// in slice order; Deliver timestamps drive churn-wave scheduling and Seq
// breaks ties deterministically.
type Event struct {
	Deliver time.Time
	Seq     int
	Kind    EventKind
	// BusIdx indexes Compiled.Buses; -1 for sybil reporters.
	BusIdx int
	Report api.Report
}

// Bus is one dispatched vehicle with its ground-truth motion.
type Bus struct {
	ID      string
	RouteID string
	Trip    *mobility.Trip
}

// Wave is a compiled churn wave: the APs that die at At.
type Wave struct {
	At   time.Time
	Dead []wifi.BSSID
}

// Compiled is a scenario expanded to concrete world state and a
// deterministic event stream, ready to replay.
type Compiled struct {
	Spec Spec
	Net  *roadnet.Network
	Dep  *wifi.Deployment
	Dia  *svd.Diagram
	// Doc is the rendered GTFS-like timetable the dispatch plan
	// round-tripped through (kept for debugging and tests).
	Doc       string
	Timetable *Timetable
	// Start is the service window's start; End is just after the last
	// delivery, the instant queries are evaluated at.
	Start, End time.Time
	Buses      []Bus
	Events     []Event
	Waves      []Wave
}

// CleanReports returns the delivery-ordered clean reports of one bus — the
// scenario-world adapter the chaos harness replays.
func (c *Compiled) CleanReports(busIdx int) []api.Report {
	var out []api.Report
	for _, ev := range c.Events {
		if ev.Kind == KindClean && ev.BusIdx == busIdx {
			out = append(out, ev.Report)
		}
	}
	return out
}

// congestionField expands the spec passthrough into the mobility field.
func congestionField(spec Spec) *mobility.CongestionField {
	return &mobility.CongestionField{
		// Decorrelate the field from the other per-seed streams.
		Seed:         spec.Seed ^ 0xC0E57A11,
		RushFactor:   spec.Congestion.RushFactor,
		MiddayFactor: spec.Congestion.MiddayFactor,
		Sigma:        spec.Congestion.Sigma,
		DaySigma:     spec.Congestion.DaySigma,
	}
}

type dispatch struct {
	tripID  string
	routeID string
	at      time.Duration
}

// compileDispatches expands the demand profile into the day's dispatch
// plan, round-tripping it through the GTFS-like renderer and importer.
func compileDispatches(spec Spec, net *roadnet.Network) ([]dispatch, string, *Timetable, error) {
	offsets, err := mobility.DemandDepartures(spec.BaseHeadway, spec.StartHour, spec.EndHour, spec.Demand)
	if err != nil {
		return nil, "", nil, err
	}
	depMap := make(map[string][]time.Duration, len(net.Routes()))
	for _, r := range net.Routes() {
		depMap[r.ID()] = offsets
	}
	doc, err := RenderTimetable(net, depMap)
	if err != nil {
		return nil, "", nil, err
	}
	tt, err := ImportTimetable(strings.NewReader(doc))
	if err != nil {
		return nil, "", nil, fmt.Errorf("scenario: re-importing rendered timetable: %w", err)
	}
	dispatches := make([]dispatch, 0, len(tt.Trips))
	for _, trip := range tt.Trips {
		dispatches = append(dispatches, dispatch{tripID: trip.ID, routeID: trip.RouteID, at: trip.Times[0].At})
	}
	sort.Slice(dispatches, func(i, j int) bool {
		a, b := dispatches[i], dispatches[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.routeID != b.routeID {
			return a.routeID < b.routeID
		}
		return a.tripID < b.tripID
	})
	return thinDispatches(dispatches, spec.MaxTrips), doc, tt, nil
}

// thinDispatches caps the dispatch count by striding across the whole
// window, so a day-scale scenario keeps morning, midday and evening
// coverage instead of only its first hours.
func thinDispatches(in []dispatch, maxTrips int) []dispatch {
	if maxTrips <= 0 || len(in) <= maxTrips {
		return in
	}
	out := make([]dispatch, 0, maxTrips)
	for i := 0; i < maxTrips; i++ {
		out = append(out, in[i*len(in)/maxTrips])
	}
	return out
}

// seedIncidents scatters the spec's incident storm over the segments the
// routes actually traverse, active from a random point in the window.
func seedIncidents(net *roadnet.Network, spec Spec, rng *xrand.Rand) ([]mobility.Incident, error) {
	if spec.Incidents.Count <= 0 {
		return nil, nil
	}
	if spec.Incidents.SlowFactor <= 1 {
		return nil, fmt.Errorf("scenario: incident slow factor %.2f must be > 1", spec.Incidents.SlowFactor)
	}
	dur := spec.Incidents.Duration
	if dur <= 0 {
		dur = 30 * time.Minute
	}
	routes := net.Routes()
	windowStart := Day.Add(time.Duration(spec.StartHour) * time.Hour)
	window := time.Duration(spec.EndHour-spec.StartHour) * time.Hour
	out := make([]mobility.Incident, 0, spec.Incidents.Count)
	for i := 0; i < spec.Incidents.Count; i++ {
		route := routes[rng.Intn(len(routes))]
		segIdx := rng.Intn(route.NumSegments())
		segID := route.Segments()[segIdx]
		seg, _ := net.Graph.Segment(segID)
		length := seg.Length()
		lo := rng.Range(0, length*0.5)
		start := windowStart.Add(time.Duration(rng.Range(0, float64(window)*0.5)))
		out = append(out, mobility.Incident{
			Seg:        segID,
			Start:      start,
			End:        start.Add(dur),
			SlowFactor: spec.Incidents.SlowFactor,
			ArcStart:   lo,
			ArcEnd:     lo + length*0.3,
		})
	}
	return out, nil
}

// Compile expands a Spec into world state and the deterministic event
// stream. It never mutates package state; churn waves are only described
// (Run applies them to the compiled deployment).
func Compile(spec Spec) (*Compiled, error) {
	spec = spec.withDefaults()
	net, err := roadnet.BuildCity(spec.City)
	if err != nil {
		return nil, err
	}
	root := xrand.New(spec.Seed)
	dspec := wifi.DefaultDeploySpec()
	dspec.Spacing = spec.APSpacing
	dep, err := wifi.Deploy(net, dspec, root.Split("deploy"))
	if err != nil {
		return nil, err
	}
	dia, err := svd.Build(net, dep, svd.Config{GridStep: -1})
	if err != nil {
		return nil, err
	}

	dispatches, doc, tt, err := compileDispatches(spec, net)
	if err != nil {
		return nil, err
	}
	if len(dispatches) == 0 {
		return nil, fmt.Errorf("scenario %q: empty dispatch plan", spec.Name)
	}

	field := congestionField(spec)
	incidents, err := seedIncidents(net, spec, root.Split("incidents"))
	if err != nil {
		return nil, err
	}

	phoneCfg := sensing.PhoneConfig{
		ReportLoss:   spec.Device.ReportLoss,
		BiasSigma:    spec.Device.BiasSigma,
		DropoutProb:  spec.Device.DropoutProb,
		ClockSkewMax: spec.Device.ClockSkewMax,
	}
	if phoneCfg.ReportLoss == 0 {
		phoneCfg.ReportLoss = -1 // scenarios opt in to report loss explicitly
	}

	c := &Compiled{
		Spec:      spec,
		Net:       net,
		Dep:       dep,
		Dia:       dia,
		Doc:       doc,
		Timetable: tt,
		Start:     Day.Add(time.Duration(spec.StartHour) * time.Hour),
	}
	for i, d := range dispatches {
		busID := fmt.Sprintf("bus-%03d-%s", i, d.routeID)
		start := Day.Add(d.at)
		trip, err := mobility.Drive(net, d.routeID, start, spec.Drive, field, incidents, root.SplitN("trip", i))
		if err != nil {
			return nil, fmt.Errorf("scenario %q: bus %s: %w", spec.Name, busID, err)
		}
		phones, err := sensing.NewRiderPhones(busID, spec.Phones, dep, phoneCfg, root.SplitN("phones", i))
		if err != nil {
			return nil, fmt.Errorf("scenario %q: bus %s: %w", spec.Name, busID, err)
		}
		route, _ := net.Route(d.routeID)
		horizon := start.Add(spec.TripHorizon)
		var evs []Event
		for at := trip.Start(); !trip.Done(at) && at.Before(horizon); at = at.Add(spec.ScanPeriod) {
			pos := route.PointAt(trip.ArcAt(at))
			for _, p := range phones {
				scan, ok := p.ScanAt(pos, at)
				if !ok {
					continue
				}
				evs = append(evs, Event{
					Deliver: at,
					Kind:    KindClean,
					BusIdx:  i,
					Report:  api.Report{BusID: busID, RouteID: d.routeID, PhoneID: p.ID(), Scan: scan},
				})
			}
		}
		evs = perturbEvents(evs, root.SplitN("perturb", i), spec)
		c.Events = append(c.Events, evs...)
		c.Buses = append(c.Buses, Bus{ID: busID, RouteID: d.routeID, Trip: trip})
	}
	for i := range c.Events {
		c.Events[i].Seq = i
	}

	if err := c.addAdversary(root.Split("adversary")); err != nil {
		return nil, err
	}
	if err := c.addChurn(root); err != nil {
		return nil, err
	}

	sort.SliceStable(c.Events, func(i, j int) bool {
		a, b := c.Events[i], c.Events[j]
		if !a.Deliver.Equal(b.Deliver) {
			return a.Deliver.Before(b.Deliver)
		}
		return a.Seq < b.Seq
	})
	c.End = c.Start
	if n := len(c.Events); n > 0 {
		c.End = c.Events[n-1].Deliver.Add(spec.ScanPeriod)
	}
	return c, nil
}

// perturbEvents injects at-least-once and out-of-order delivery into one
// bus's events: duplicates are inserted in place, then adjacent pairs may
// trade payloads while keeping their delivery slots — a swap across a
// fusion-window boundary yields a genuinely late scan.
func perturbEvents(in []Event, rng *xrand.Rand, spec Spec) []Event {
	out := make([]Event, 0, len(in)+len(in)/8)
	for _, ev := range in {
		out = append(out, ev)
		if spec.DupProb > 0 && rng.Bool(spec.DupProb) {
			out = append(out, ev)
		}
	}
	if spec.SwapProb > 0 {
		for k := 0; k+1 < len(out); k += 2 {
			if rng.Bool(spec.SwapProb) {
				out[k].Report, out[k+1].Report = out[k+1].Report, out[k].Report
			}
		}
	}
	return out
}

// addAdversary appends the hostile event set. Every adversarial event is a
// deep clone — mutating its readings must never corrupt the clean stream.
func (c *Compiled) addAdversary(rng *xrand.Rand) error {
	adv := c.Spec.Adversary
	if adv.isZero() {
		return nil
	}
	var clean []int
	perBus := map[int][]int{}
	for i, ev := range c.Events {
		if ev.Kind != KindClean {
			continue
		}
		clean = append(clean, i)
		perBus[ev.BusIdx] = append(perBus[ev.BusIdx], i)
	}
	if len(clean) == 0 {
		return fmt.Errorf("scenario %q: adversary configured but no clean events to shadow", c.Spec.Name)
	}
	seq := len(c.Events)
	nextSeq := func() int { seq++; return seq - 1 }

	for s := 0; s < adv.SybilReporters; s++ {
		for r := 0; r < adv.SybilReports; r++ {
			src := c.Events[clean[rng.Intn(len(clean))]]
			rep := cloneReport(src.Report)
			rep.BusID = fmt.Sprintf("sybil-%02d", s)
			rep.RouteID = fmt.Sprintf("ghost-%d", s)
			rep.PhoneID = fmt.Sprintf("sybil-%02d-phone", s)
			c.Events = append(c.Events, Event{
				Deliver: src.Deliver, Seq: nextSeq(), Kind: KindSybil, BusIdx: -1, Report: rep,
			})
		}
	}

	for k := 0; k < adv.PoisonedReports; k++ {
		src := c.Events[clean[rng.Intn(len(clean))]]
		rep := cloneReport(src.Report)
		if len(rep.Scan.Readings) == 0 {
			rep.Scan.Readings = []wifi.Reading{{BSSID: "poisoned", RSSI: 0}}
		}
		rep.Scan.Readings[0].RSSI = 9999
		c.Events = append(c.Events, Event{
			Deliver: src.Deliver, Seq: nextSeq(), Kind: KindPoison, BusIdx: src.BusIdx, Report: rep,
		})
	}

	if adv.ReplayedReports > 0 {
		// Replays must land while the victim is still mid-trip: anchoring
		// at the three-quarter mark of the bus's clean stream guarantees
		// the cloned early scan falls windows behind the current bucket
		// (late-dropped) without ever reaching a finished bus, whose
		// re-registration would wipe the trajectory.
		var eligible []int
		for b := range c.Buses {
			if len(perBus[b]) >= 8 {
				eligible = append(eligible, b)
			}
		}
		if len(eligible) == 0 {
			return fmt.Errorf("scenario %q: replay adversary needs a bus with >= 8 clean events", c.Spec.Name)
		}
		for k := 0; k < adv.ReplayedReports; k++ {
			evs := perBus[eligible[k%len(eligible)]]
			src := c.Events[evs[k%(len(evs)/4)]]
			anchor := c.Events[evs[len(evs)*3/4]]
			if anchor.Report.Scan.Time.Sub(src.Report.Scan.Time) < 2*c.Spec.ScanPeriod {
				return fmt.Errorf("scenario %q: replay %d would not be late (src and anchor windows too close)", c.Spec.Name, k)
			}
			c.Events = append(c.Events, Event{
				Deliver: anchor.Deliver, Seq: nextSeq(), Kind: KindReplay,
				BusIdx: src.BusIdx, Report: cloneReport(src.Report),
			})
		}
	}
	return nil
}

// addChurn compiles the churn waves: which APs die when, and the physical
// consequence — dead APs vanish from every clean scan after the wave. Only
// clean events are scrubbed; adversarial clones keep their (hostile)
// payloads byte-for-byte.
func (c *Compiled) addChurn(root *xrand.Rand) error {
	if len(c.Spec.Churn) == 0 {
		return nil
	}
	alive := make([]wifi.BSSID, 0, c.Dep.NumAPs())
	for _, ap := range c.Dep.ActiveAPs() {
		alive = append(alive, ap.BSSID)
	}
	sort.Slice(alive, func(i, j int) bool { return alive[i] < alive[j] })
	dead := map[wifi.BSSID]bool{}
	for w, cw := range c.Spec.Churn {
		if cw.Frac <= 0 || cw.Frac >= 1 {
			return fmt.Errorf("scenario %q: churn wave %d frac %.2f outside (0,1)", c.Spec.Name, w, cw.Frac)
		}
		rng := root.SplitN("churn", w)
		count := int(cw.Frac * float64(len(alive)))
		if count < 1 {
			count = 1
		}
		if count >= len(alive) {
			return fmt.Errorf("scenario %q: churn wave %d would kill the whole deployment", c.Spec.Name, w)
		}
		for i := 0; i < count; i++ {
			j := i + rng.Intn(len(alive)-i)
			alive[i], alive[j] = alive[j], alive[i]
		}
		wave := Wave{At: c.Start.Add(cw.After), Dead: append([]wifi.BSSID(nil), alive[:count]...)}
		sort.Slice(wave.Dead, func(i, j int) bool { return wave.Dead[i] < wave.Dead[j] })
		for _, b := range wave.Dead {
			dead[b] = true
		}
		alive = alive[count:]
		sort.Slice(alive, func(i, j int) bool { return alive[i] < alive[j] })
		c.Waves = append(c.Waves, wave)

		for i := range c.Events {
			ev := &c.Events[i]
			if ev.Kind != KindClean || ev.Deliver.Before(wave.At) {
				continue
			}
			kept := ev.Report.Scan.Readings[:0:0]
			for _, rd := range ev.Report.Scan.Readings {
				if !dead[rd.BSSID] {
					kept = append(kept, rd)
				}
			}
			ev.Report.Scan.Readings = kept
		}
	}
	return nil
}

func cloneReport(rep api.Report) api.Report {
	readings := make([]wifi.Reading, len(rep.Scan.Readings))
	copy(readings, rep.Scan.Readings)
	rep.Scan.Readings = readings
	return rep
}
