package scenario

import (
	"path/filepath"
	"testing"
	"time"

	"wilocator/internal/loadtest"
	"wilocator/internal/server"
	"wilocator/internal/traveltime"
)

// TestChaosScenarioCrashRecoveryOnGeneratedCity re-runs the chaos
// harness's crash-safety acceptance over a scenario-compiled world: a
// generated grid city whose fleet, phones and delivery order come from the
// declarative engine. Crash mid-fleet, recover from durable bytes only,
// require the recovered store to equal an uninterrupted run over the same
// prefix, then resume the rest of the fleet through a restarted service.
func TestChaosScenarioCrashRecoveryOnGeneratedCity(t *testing.T) {
	w, streams, err := ChaosWorld(MustByName("grid-burst"))
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) < 2 {
		t.Fatalf("scenario compiled only %d bus streams", len(streams))
	}
	end := Day
	for _, st := range streams {
		for _, rep := range st.Reports {
			if rep.Scan.Time.After(end) {
				end = rep.Scan.Time
			}
		}
	}
	now := loadtest.FixedClock(end.Add(time.Minute))
	total := loadtest.TotalReports(streams)
	crashAt := total / 2

	refSvc, refStore, err := loadtest.NewService(w, server.Config{Now: now})
	if err != nil {
		t.Fatal(err)
	}
	refTally := loadtest.ReplayRange(refSvc, streams, 0, crashAt)
	if refTally.Errors != 0 {
		t.Fatalf("reference replay errored: %v", refTally)
	}
	if refStore.NumRecords() == 0 {
		t.Fatal("no records before the crash point; crash test is vacuous")
	}

	// WAL-backed run: fsync every record, snapshot mid-way so recovery
	// exercises snapshot + WAL combined.
	base := t.TempDir()
	ps, err := loadtest.NewPersistentService(w, filepath.Join(base, "live"), server.Config{Now: now},
		traveltime.PersistConfig{SyncEvery: 1, SnapshotEvery: refStore.NumRecords() / 2})
	if err != nil {
		t.Fatal(err)
	}
	liveTally := loadtest.ReplayRange(ps.Svc, streams, 0, crashAt)
	if liveTally != refTally {
		t.Fatalf("persistent run tallies diverged before the crash: %v vs %v", liveTally, refTally)
	}

	recoveredDir := filepath.Join(base, "recovered")
	if err := loadtest.SimulateCrash(ps, recoveredDir); err != nil {
		t.Fatal(err)
	}
	recStore, recPersist, err := loadtest.Recover(recoveredDir, traveltime.PersistConfig{SyncEvery: 1})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	rst := recPersist.Stats()
	t.Logf("recovery on generated city: snapshot=%v walReplayed=%d", rst.SnapshotLoaded, rst.WALReplayed)
	if err := traveltime.Diff(refStore, recStore, 1e-9); err != nil {
		t.Fatalf("recovered store does not match the uninterrupted run: %v", err)
	}

	// The recovered store must carry a restarted server through the rest
	// of the fleet.
	recSvc, err := server.NewService(w.Dia, recStore, server.Config{Now: now, Sink: recPersist.Record})
	if err != nil {
		t.Fatal(err)
	}
	before := recStore.NumRecords()
	resumeTally := loadtest.ReplayRange(recSvc, streams, crashAt, -1)
	if resumeTally.Errors != 0 {
		t.Fatalf("resumed replay errored: %v", resumeTally)
	}
	if recStore.NumRecords() <= before {
		t.Errorf("resumed service added no travel-time records (%d before, %d after)", before, recStore.NumRecords())
	}
	if err := recPersist.Close(); err != nil {
		t.Fatal(err)
	}
	_ = ps.Persist.Close()
}
