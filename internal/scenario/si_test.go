package scenario

import (
	"testing"
	"time"

	"wilocator/internal/mobility"
	"wilocator/internal/roadnet"
	"wilocator/internal/traveltime"
)

// siSpec builds the seasonal-index probe scenario: a full 6-23 h service
// day on a generated grid city. The rush variant carries the default
// congestion profile (3x rush, 1.25x midday) sampled under commuter demand;
// the uniform variant pins every factor to exactly 1 with all noise off.
func siSpec(seed uint64, rush bool) Spec {
	s := Spec{
		Name:        "si-probe",
		Seed:        seed,
		City:        roadnet.CitySpec{Form: roadnet.CityGrid, Seed: seed},
		StartHour:   6,
		EndHour:     23,
		BaseHeadway: 30 * time.Minute,
	}
	if rush {
		s.Demand = mobility.RushDemand()
		s.Congestion = CongestionSpec{Sigma: 0.1, DaySigma: -1}
	} else {
		s.Demand = mobility.FlatDemand()
		s.Congestion = CongestionSpec{RushFactor: 1, MiddayFactor: 1, Sigma: -1, DaySigma: -1}
	}
	return s
}

// TestSeasonalIndexDiscoversRushHours is the paper's Eq. 6 acceptance
// test over the scenario engine: across three independently seeded cities,
// SI(i,l) on ground-truth traversals must flag exactly the injected
// rush-hour slots (8-10 h, 18-19 h) and stay flat under uniform demand
// with a flat congestion profile.
func TestSeasonalIndexDiscoversRushHours(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		store, net, err := TruthStore(siSpec(seed, true))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		seg := probeSegment(net)
		si := store.SeasonalIndex(seg)
		if len(si) != 24 {
			t.Fatalf("seed %d: SI has %d entries", seed, len(si))
		}
		rush := map[int]bool{}
		for _, h := range traveltime.RushHours(si, 0) {
			rush[h] = true
		}
		for _, h := range []int{8, 9, 18} {
			if !rush[h] {
				t.Errorf("seed %d: SI missed injected rush hour %d (si=%.3f)", seed, h, si[h])
			}
		}
		for _, h := range []int{7, 12, 13, 21} {
			if rush[h] {
				t.Errorf("seed %d: SI flagged off-peak hour %d as rush (si=%.3f)", seed, h, si[h])
			}
		}

		flatStore, flatNet, err := TruthStore(siSpec(seed, false))
		if err != nil {
			t.Fatalf("seed %d flat: %v", seed, err)
		}
		flatSI := flatStore.SeasonalIndex(probeSegment(flatNet))
		if flagged := traveltime.RushHours(flatSI, 0); len(flagged) != 0 {
			t.Errorf("seed %d: uniform demand flagged rush hours %v", seed, flagged)
		}
		for h, v := range flatSI {
			if v == 0 {
				continue // hour outside the service window
			}
			if v < 0.65 || v > 1.35 {
				t.Errorf("seed %d: uniform SI[%d] = %.3f drifted from flat", seed, h, v)
			}
		}
	}
}

// TestSeasonalIndexSurvivesEstimation runs the day-scale corpus scenario
// through the FULL pipeline (tracker-interpolated traversals, not ground
// truth) and asserts the estimated seasonal profile still separates the
// morning rush from midday on the probe segment.
func TestSeasonalIndexSurvivesEstimation(t *testing.T) {
	res, err := Run(MustByName("grid-day-rush"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Seasonal == nil {
		t.Fatal("day-scale scenario produced no seasonal block")
	}
	si := res.Seasonal.Index
	morning := si[8]
	if si[9] > morning {
		morning = si[9]
	}
	midday := 0.0
	n := 0
	for h := 11; h <= 16; h++ {
		if si[h] > 0 {
			midday += si[h]
			n++
		}
	}
	if n == 0 {
		t.Fatal("no midday observations on probe segment")
	}
	midday /= float64(n)
	if morning <= midday {
		t.Errorf("estimated SI does not separate rush (%.3f) from midday (%.3f): %v", morning, midday, si)
	}
	if len(res.Seasonal.RushHours) == 0 {
		t.Error("estimated SI flagged no rush hours at all")
	}
}
