package scenario

import (
	"bytes"
	"encoding/json"
	"testing"

	"wilocator/internal/roadnet"
)

func encodeResult(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCorpusShape pins the corpus contract the issue demands: at least six
// uniquely named seeded scenarios, at least three generated city forms, and
// the day-scale, churn and adversarial members present.
func TestCorpusShape(t *testing.T) {
	corpus := Corpus()
	if len(corpus) < 6 {
		t.Fatalf("corpus has %d scenarios, want >= 6", len(corpus))
	}
	names := map[string]bool{}
	forms := map[roadnet.CityForm]bool{}
	seeds := map[uint64]bool{}
	var dayScale, churn, adversarial, core int
	for _, s := range corpus {
		if names[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		names[s.Name] = true
		if seeds[s.Seed] {
			t.Errorf("scenario %q reuses seed %d", s.Name, s.Seed)
		}
		seeds[s.Seed] = true
		if s.City.Form != roadnet.CityVancouver {
			forms[s.City.Form] = true
		}
		sd := s.withDefaults()
		if sd.EndHour-sd.StartHour >= 12 {
			dayScale++
		}
		if len(s.Churn) > 0 {
			churn++
		}
		if !s.Adversary.isZero() {
			adversarial++
		}
		if s.Core() {
			core++
		}
	}
	if len(forms) < 3 {
		t.Errorf("corpus uses %d generated city forms, want >= 3", len(forms))
	}
	if dayScale == 0 || churn == 0 || adversarial == 0 {
		t.Errorf("corpus missing members: dayScale=%d churn=%d adversarial=%d", dayScale, churn, adversarial)
	}
	if core < 3 {
		t.Errorf("corpus has %d core (-short tier) scenarios, want >= 3", core)
	}
	if _, ok := ByName("grid-burst"); !ok {
		t.Error("ByName cannot find grid-burst")
	}
	if _, ok := ByName("no-such"); ok {
		t.Error("ByName found a scenario that does not exist")
	}
}

// TestRunDeterministic is the engine's own replay-equivalence check: two
// independent Run calls over one Spec must render byte-identical Results —
// including the churn scenario, whose runs mutate (their own fresh copy of)
// the deployment.
func TestRunDeterministic(t *testing.T) {
	for _, name := range []string{"grid-burst", "grid-churn"} {
		t.Run(name, func(t *testing.T) {
			spec := MustByName(name)
			a, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			ja, jb := encodeResult(t, a), encodeResult(t, b)
			if !bytes.Equal(ja, jb) {
				t.Fatalf("two runs of %s differ (%d vs %d bytes)", name, len(ja), len(jb))
			}
		})
	}
}

// TestCompileSeedSensitivity pins that the seed actually reaches the event
// stream: two seeds yield different streams, one seed yields the same.
func TestCompileSeedSensitivity(t *testing.T) {
	spec := MustByName("grid-burst")
	a, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("same seed compiled to %d vs %d events", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if !a.Events[i].Deliver.Equal(b.Events[i].Deliver) || a.Events[i].Report.PhoneID != b.Events[i].Report.PhoneID {
			t.Fatalf("same seed diverges at event %d", i)
		}
	}
	spec.Seed++
	spec.City.Seed++
	c, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Events) == len(a.Events) && len(c.Events) > 0 &&
		c.Events[len(c.Events)-1].Report.Scan.Time.Equal(a.Events[len(a.Events)-1].Report.Scan.Time) &&
		len(c.Events[0].Report.Scan.Readings) == len(a.Events[0].Report.Scan.Readings) {
		t.Error("seed change left the event stream suspiciously identical")
	}
}

// TestChurnScenarioRebuilds pins the churn contract: one rebuild per wave,
// a bumped serving generation, dead APs actually deactivated, and the
// service still locating after the last wave.
func TestChurnScenarioRebuilds(t *testing.T) {
	spec := MustByName("grid-churn")
	c, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Waves) != len(spec.Churn) {
		t.Fatalf("compiled %d waves from %d churn specs", len(c.Waves), len(spec.Churn))
	}
	seen := map[string]bool{}
	for _, w := range c.Waves {
		if len(w.Dead) == 0 {
			t.Fatal("wave kills no APs")
		}
		for _, b := range w.Dead {
			if seen[string(b)] {
				t.Fatalf("AP %s dies in two waves", b)
			}
			seen[string(b)] = true
		}
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Rebuilds, uint64(len(spec.Churn)); got != want {
		t.Errorf("rebuilds = %d, want %d", got, want)
	}
	if got, want := res.Generation, uint64(1+len(spec.Churn)); got != want {
		t.Errorf("generation = %d, want %d", got, want)
	}
	if res.ByKind[string(KindClean)].Located == 0 {
		t.Error("no fixes at all in the churn scenario")
	}
	if res.Metrics[`wilocator_rebuilds_total{result="ok"}`] != uint64(len(spec.Churn)) {
		t.Errorf("rebuild metric = %d, want %d",
			res.Metrics[`wilocator_rebuilds_total{result="ok"}`], len(spec.Churn))
	}
}

// TestDeviceScenarioStillTracks pins that the ±10 dB device-model scenario
// keeps producing fixes: rank-based positioning is the paper's answer to
// device heterogeneity, so a biased fleet must not collapse the fix rate.
func TestDeviceScenarioStillTracks(t *testing.T) {
	res, err := Run(MustByName("radial-device"))
	if err != nil {
		t.Fatal(err)
	}
	if res.CleanFixRate < 0.5 {
		t.Errorf("device-model scenario fix rate %.2f, want >= 0.5", res.CleanFixRate)
	}
	if res.PositionError.N == 0 {
		t.Error("no position-error samples")
	}
}
