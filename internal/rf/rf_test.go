package rf

import (
	"math"
	"testing"

	"wilocator/internal/xrand"
)

func TestExpectedRSSMonotone(t *testing.T) {
	m := LogDistance{}
	prev := math.Inf(1)
	for _, d := range []float64{1, 2, 5, 10, 20, 50, 100, 200} {
		v := m.ExpectedRSS(-30, 3, d)
		if v >= prev {
			t.Errorf("RSS at %v m = %v, not below %v", d, v, prev)
		}
		prev = v
	}
}

func TestExpectedRSSValues(t *testing.T) {
	m := LogDistance{}
	tests := []struct {
		refRSS, exp, dist, want float64
	}{
		{-30, 3, 1, -30},   // at reference distance
		{-30, 3, 0.1, -30}, // clamped below d0
		{-30, 3, 10, -60},  // one decade
		{-30, 3, 100, -90}, // two decades
		{-30, 2, 100, -70}, // smaller exponent decays slower
		{-20, 3, 10, -50},  // stronger transmitter
	}
	for _, tt := range tests {
		got := m.ExpectedRSS(tt.refRSS, tt.exp, tt.dist)
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("ExpectedRSS(%v,%v,%v) = %v, want %v",
				tt.refRSS, tt.exp, tt.dist, got, tt.want)
		}
	}
}

func TestRangeInvertsExpectedRSS(t *testing.T) {
	m := LogDistance{}
	for _, exp := range []float64{2, 2.5, 3, 3.5} {
		r := m.Range(-30, exp)
		at := m.ExpectedRSS(-30, exp, r)
		if math.Abs(at-m.Floor()) > 1e-9 {
			t.Errorf("exp=%v: RSS at Range() = %v, want floor %v", exp, at, m.Floor())
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	m := LogDistance{}
	if m.Floor() != DefaultDetectionFloor {
		t.Errorf("Floor = %v", m.Floor())
	}
	m2 := LogDistance{DetectionFloor: -85}
	if m2.Floor() != -85 {
		t.Errorf("custom floor = %v", m2.Floor())
	}
	n := Noise{}
	if n.sigma() != DefaultShadowSigma || n.dropout() != DefaultDropout {
		t.Errorf("noise defaults = %v, %v", n.sigma(), n.dropout())
	}
	if NoNoise.sigma() != 0 || NoNoise.dropout() != 0 {
		t.Errorf("NoNoise = %v, %v", NoNoise.sigma(), NoNoise.dropout())
	}
}

func TestNewReceiverNilRNG(t *testing.T) {
	if _, err := NewReceiver(LogDistance{}, Noise{}, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestSampleNoNoiseIsDeterministic(t *testing.T) {
	rx, err := NewReceiver(LogDistance{}, NoNoise, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	rssi, ok := rx.Sample(-30, 3, 10)
	if !ok || rssi != -60 {
		t.Errorf("Sample = (%v, %v), want (-60, true)", rssi, ok)
	}
	// Below the floor: never detected.
	if _, ok := rx.Sample(-30, 3, 500); ok {
		t.Error("detected transmitter far below floor")
	}
}

func TestSampleShadowingStatistics(t *testing.T) {
	rx, err := NewReceiver(LogDistance{}, Noise{ShadowSigma: 4, Dropout: -1}, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	var sum, sumSq float64
	detected := 0
	for i := 0; i < n; i++ {
		rssi, ok := rx.Sample(-30, 3, 10) // mean -60, far above floor
		if !ok {
			continue
		}
		detected++
		sum += float64(rssi)
		sumSq += float64(rssi) * float64(rssi)
	}
	if detected < n*99/100 {
		t.Fatalf("only %d/%d detections at strong signal", detected, n)
	}
	mean := sum / float64(detected)
	sd := math.Sqrt(sumSq/float64(detected) - mean*mean)
	if math.Abs(mean+60) > 0.2 {
		t.Errorf("sample mean = %v, want ~-60", mean)
	}
	if math.Abs(sd-4) > 0.3 {
		t.Errorf("sample stddev = %v, want ~4 (quantisation adds ~0.08)", sd)
	}
}

func TestSampleDropout(t *testing.T) {
	rx, err := NewReceiver(LogDistance{}, Noise{ShadowSigma: -1, Dropout: 0.3}, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	miss := 0
	for i := 0; i < n; i++ {
		if _, ok := rx.Sample(-30, 3, 10); !ok {
			miss++
		}
	}
	p := float64(miss) / n
	if math.Abs(p-0.3) > 0.02 {
		t.Errorf("dropout rate = %v, want ~0.3", p)
	}
}

// TestRankStability verifies the paper's key observation: even when raw RSS
// readings swing wildly, the *rank* of two APs at clearly different
// distances is stable across scans.
func TestRankStability(t *testing.T) {
	rx, err := NewReceiver(LogDistance{}, Noise{ShadowSigma: 4, Dropout: -1}, xrand.New(13))
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	inverted := 0
	for i := 0; i < n; i++ {
		near, okN := rx.Sample(-30, 3, 15) // mean ~ -65.3
		far, okF := rx.Sample(-30, 3, 45)  // mean ~ -79.6
		if !okN || !okF {
			continue
		}
		if far > near {
			inverted++
		}
	}
	// Means differ by ~14 dB; with sigma 4 per reading the inversion
	// probability is Phi(-14/(4*sqrt2)) ~ 0.7%.
	if rate := float64(inverted) / n; rate > 0.03 {
		t.Errorf("rank inversion rate = %v, want < 3%%", rate)
	}
}
