// Package rf models radio-frequency signal propagation for the WiLocator
// simulation substrate.
//
// The paper's Signal Voronoi Diagram deliberately avoids depending on a
// calibrated propagation model at *positioning* time — it only consumes RSS
// rank order. The simulation, however, needs a physical process that
// generates RSS readings with the statistics the paper reports: raw values
// that swing by 10 dB or more even at a static point, while the *average
// rank* across APs stays stable. The standard log-distance path-loss model
// with per-reading log-normal shadowing provides exactly that.
package rf

import (
	"fmt"
	"math"

	"wilocator/internal/xrand"
)

// Typical urban parameter defaults.
const (
	// DefaultRefDist is the reference distance d0 of the log-distance model.
	DefaultRefDist = 1.0
	// DefaultDetectionFloor is the weakest RSS a commodity phone reports.
	DefaultDetectionFloor = -90.0
	// DefaultShadowSigma is the per-reading shadowing standard deviation in
	// dB. With sigma = 4 dB, consecutive readings at a static point span
	// more than 10 dB about 20% of the time, matching the paper's
	// observation.
	DefaultShadowSigma = 4.0
	// DefaultDropout is the probability that a detectable AP is missed by a
	// single scan (driver obstruction, channel dwell, etc.).
	DefaultDropout = 0.05
)

// LogDistance is the deterministic part of the propagation model:
//
//	RSS(d) = refRSS - 10 * n * log10(max(d, d0) / d0)
//
// where refRSS is the received power at the reference distance d0 and n is
// the path-loss exponent of the AP's environment.
type LogDistance struct {
	// RefDist is d0 in metres. Zero means DefaultRefDist.
	RefDist float64
	// DetectionFloor is the weakest detectable RSS in dBm. Zero means
	// DefaultDetectionFloor.
	DetectionFloor float64
}

// refDist returns the effective reference distance.
func (m LogDistance) refDist() float64 {
	if m.RefDist <= 0 {
		return DefaultRefDist
	}
	return m.RefDist
}

// Floor returns the effective detection floor in dBm.
func (m LogDistance) Floor() float64 {
	if m.DetectionFloor == 0 {
		return DefaultDetectionFloor
	}
	return m.DetectionFloor
}

// ExpectedRSS returns the mean received signal strength in dBm at distance
// dist metres from a transmitter with the given reference power and
// path-loss exponent. It does not apply the detection floor; callers that
// simulate receivers should compare against Floor().
func (m LogDistance) ExpectedRSS(refRSS, pathLossExp, dist float64) float64 {
	d0 := m.refDist()
	if dist < d0 {
		dist = d0
	}
	return refRSS - 10*pathLossExp*math.Log10(dist/d0)
}

// Range returns the distance at which the expected RSS drops to the
// detection floor.
func (m LogDistance) Range(refRSS, pathLossExp float64) float64 {
	d0 := m.refDist()
	return d0 * math.Pow(10, (refRSS-m.Floor())/(10*pathLossExp))
}

// Noise parameterises the stochastic part of a receiver: log-normal
// shadowing, integer quantisation and scan dropout.
type Noise struct {
	// ShadowSigma is the standard deviation of the per-reading Gaussian
	// shadowing term in dB. Negative disables shadowing; zero means
	// DefaultShadowSigma.
	ShadowSigma float64
	// Dropout is the probability a detectable AP is absent from one scan.
	// Negative disables dropout; zero means DefaultDropout.
	Dropout float64
}

// sigma returns the effective shadowing sigma.
func (n Noise) sigma() float64 {
	switch {
	case n.ShadowSigma < 0:
		return 0
	case n.ShadowSigma == 0:
		return DefaultShadowSigma
	default:
		return n.ShadowSigma
	}
}

// dropout returns the effective dropout probability.
func (n Noise) dropout() float64 {
	switch {
	case n.Dropout < 0:
		return 0
	case n.Dropout == 0:
		return DefaultDropout
	default:
		return n.Dropout
	}
}

// NoNoise disables both shadowing and dropout; used to build the expected
// (average-rank) signal space for SVD construction.
var NoNoise = Noise{ShadowSigma: -1, Dropout: -1}

// Receiver draws noisy integer RSS readings through a LogDistance model.
type Receiver struct {
	Model LogDistance
	Noise Noise
	rng   *xrand.Rand
}

// NewReceiver returns a receiver that consumes randomness from rng.
func NewReceiver(model LogDistance, noise Noise, rng *xrand.Rand) (*Receiver, error) {
	if rng == nil {
		return nil, fmt.Errorf("rf: nil rng")
	}
	return &Receiver{Model: model, Noise: noise, rng: rng}, nil
}

// Sample returns one reading of the transmitter, quantised to integer dBm,
// and whether the transmitter was detected at all. Detection applies the
// floor to the *noisy* value, so an AP near the edge of coverage flickers in
// and out of scans as it does in reality.
func (r *Receiver) Sample(refRSS, pathLossExp, dist float64) (rssi int, detected bool) {
	mean := r.Model.ExpectedRSS(refRSS, pathLossExp, dist)
	v := mean
	if s := r.Noise.sigma(); s > 0 {
		v += r.rng.Norm(0, s)
	}
	if v < r.Model.Floor() {
		return 0, false
	}
	if p := r.Noise.dropout(); p > 0 && r.rng.Bool(p) {
		return 0, false
	}
	return int(math.Round(v)), true
}
