// Package client is the typed HTTP client for the WiLocator server API,
// used by the simulated phones (report upload) and rider-facing tools
// (vehicle, arrival and traffic-map queries).
//
// Calls retry transient failures — 429/503 responses (the server's load
// shedding and cluster forwarding both use them, with a Retry-After hint
// the client honors) and transport errors — with capped exponential
// backoff and jitter. Every request of this API is safe to retry: reads
// are idempotent and report upload is at-least-once by design (the
// server's fusion window deduplicates by scan time, and the loadtest
// harness already delivers duplicates on purpose).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"wilocator/internal/api"
	"wilocator/internal/xrand"
)

// RetryConfig tunes the client's retry loop. The zero value selects the
// defaults; NoRetry disables retrying entirely.
type RetryConfig struct {
	// MaxAttempts is the total number of tries for one call (1 = no
	// retry). Default 3.
	MaxAttempts int
	// BaseDelay is the wait before the first retry; each further retry
	// doubles it, capped at MaxDelay. The actual wait is jittered
	// uniformly over [wait/2, wait] so a shedding server is not hit by a
	// synchronized thundering herd of retriers. Defaults 100 ms and 2 s.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Sleep waits out one backoff period; nil selects a context-aware
	// timer. Tests inject it to run the retry loop without real delays.
	Sleep func(ctx context.Context, d time.Duration) error
	// Rand returns a uniform sample in [0,1) for jitter; nil selects a
	// seeded PRNG. Tests inject it for deterministic waits.
	Rand func() float64
}

// NoRetry disables retrying: every call makes exactly one attempt.
var NoRetry = RetryConfig{MaxAttempts: 1}

// A StatusError is a non-200 response from the server. Callers that relay
// errors (the cluster's report forwarding) use the code to tell a
// permanent rejection (4xx stays a 4xx at the edge) from an availability
// failure worth retrying elsewhere.
type StatusError struct {
	Method     string
	Path       string
	StatusCode int
	Message    string // the server's error envelope, if it sent one
}

func (e *StatusError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("client: %s %s: %s (status %d)", e.Method, e.Path, e.Message, e.StatusCode)
	}
	return fmt.Sprintf("client: %s %s: status %d", e.Method, e.Path, e.StatusCode)
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 100 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Second
	}
	if c.Sleep == nil {
		c.Sleep = sleepCtx
	}
	return c
}

// sleepCtx waits d or until the context ends, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Client talks to one WiLocator server. It is safe for concurrent use.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryConfig

	rngMu sync.Mutex // guards rng (xrand.Rand is not concurrency-safe)
	rng   *xrand.Rand
}

// New creates a client for the server at baseURL (e.g.
// "http://127.0.0.1:8080"). httpClient may be nil for a default with a 10 s
// timeout. The client retries transient failures with the default
// RetryConfig; use NewWithRetry to tune or disable that.
func New(baseURL string, httpClient *http.Client) (*Client, error) {
	return NewWithRetry(baseURL, httpClient, RetryConfig{})
}

// NewWithRetry is New with an explicit retry policy.
func NewWithRetry(baseURL string, httpClient *http.Client, retry RetryConfig) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: invalid base URL %q", baseURL)
	}
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 10 * time.Second}
	}
	c := &Client{base: u.String(), hc: httpClient, retry: retry.withDefaults()}
	if c.retry.Rand == nil {
		// Jitter quality only needs to decorrelate clients; seeding from
		// the wall clock is fine and keeps the package dependency-free.
		c.rng = xrand.New(uint64(time.Now().UnixNano()))
		c.retry.Rand = func() float64 {
			c.rngMu.Lock()
			defer c.rngMu.Unlock()
			return c.rng.Float64()
		}
	}
	return c, nil
}

// PostReport uploads one phone scan report.
func (c *Client) PostReport(ctx context.Context, rep api.Report) (api.IngestResponse, error) {
	var out api.IngestResponse
	err := c.do(ctx, http.MethodPost, api.PathReports, nil, rep, &out)
	return out, err
}

// Vehicles lists live buses; routeID may be empty for all routes.
func (c *Client) Vehicles(ctx context.Context, routeID string) ([]api.VehicleStatus, error) {
	q := url.Values{}
	if routeID != "" {
		q.Set("route", routeID)
	}
	var out []api.VehicleStatus
	err := c.do(ctx, http.MethodGet, api.PathVehicles, q, nil, &out)
	return out, err
}

// Arrivals predicts arrivals of routeID's live buses at stop stopIdx.
func (c *Client) Arrivals(ctx context.Context, routeID string, stopIdx int) ([]api.ArrivalEstimate, error) {
	q := url.Values{}
	q.Set("route", routeID)
	q.Set("stop", strconv.Itoa(stopIdx))
	var out []api.ArrivalEstimate
	err := c.do(ctx, http.MethodGet, api.PathArrivals, q, nil, &out)
	return out, err
}

// TrafficMap fetches the current traffic map; routeID may be empty.
func (c *Client) TrafficMap(ctx context.Context, routeID string) (api.TrafficMapResponse, error) {
	q := url.Values{}
	if routeID != "" {
		q.Set("route", routeID)
	}
	var out api.TrafficMapResponse
	err := c.do(ctx, http.MethodGet, api.PathTrafficMap, q, nil, &out)
	return out, err
}

// Routes fetches the route inventory.
func (c *Client) Routes(ctx context.Context) (api.RoutesResponse, error) {
	var out api.RoutesResponse
	err := c.do(ctx, http.MethodGet, api.PathRoutes, nil, nil, &out)
	return out, err
}

// Stops lists one route's stops in travel order.
func (c *Client) Stops(ctx context.Context, routeID string) (api.StopsResponse, error) {
	q := url.Values{}
	q.Set("route", routeID)
	var out api.StopsResponse
	err := c.do(ctx, http.MethodGet, api.PathStops, q, nil, &out)
	return out, err
}

// Anomalies lists detected traffic-anomaly sites; routeID may be empty.
func (c *Client) Anomalies(ctx context.Context, routeID string) ([]api.AnomalyReport, error) {
	q := url.Values{}
	if routeID != "" {
		q.Set("route", routeID)
	}
	var out []api.AnomalyReport
	err := c.do(ctx, http.MethodGet, api.PathAnomalies, q, nil, &out)
	return out, err
}

// Trajectory fetches one tracked bus's trajectory (<lat, long, t> tuples).
func (c *Client) Trajectory(ctx context.Context, busID string) (api.TrajectoryResponse, error) {
	q := url.Values{}
	q.Set("bus", busID)
	var out api.TrajectoryResponse
	err := c.do(ctx, http.MethodGet, api.PathTrajectories, q, nil, &out)
	return out, err
}

// Health checks server liveness.
func (c *Client) Health(ctx context.Context) error {
	_, err := c.Healthz(ctx)
	return err
}

// Healthz fetches the full health body: liveness plus the degradation
// counters (ingest outcomes, load shedding, recovered panics, and — when
// the server persists travel times — WAL/snapshot recovery state).
func (c *Client) Healthz(ctx context.Context) (api.HealthResponse, error) {
	var out api.HealthResponse
	err := c.do(ctx, http.MethodGet, api.PathHealth, nil, nil, &out)
	return out, err
}

func (c *Client) do(ctx context.Context, method, path string, q url.Values, in, out any) error {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	var body []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: marshal request: %w", err)
		}
		body = b
	}
	wait := c.retry.BaseDelay
	for attempt := 1; ; attempt++ {
		err, retryable, retryAfter := c.attempt(ctx, method, path, u, in != nil, body, out)
		if err == nil {
			return nil
		}
		if !retryable || attempt >= c.retry.MaxAttempts || ctx.Err() != nil {
			return err
		}
		d := wait
		if retryAfter > 0 {
			// The server knows how loaded it is; trust its hint, but never
			// beyond the configured cap.
			d = retryAfter
		}
		if d > c.retry.MaxDelay {
			d = c.retry.MaxDelay
		}
		d = d/2 + time.Duration(c.retry.Rand()*float64(d/2))
		if serr := c.retry.Sleep(ctx, d); serr != nil {
			return err
		}
		wait *= 2
		if wait > c.retry.MaxDelay {
			wait = c.retry.MaxDelay
		}
	}
}

// attempt makes one HTTP round trip. retryable reports whether the failure
// is transient (429/503 or a transport error on a live context); retryAfter
// carries the server's Retry-After hint when it sent one.
func (c *Client) attempt(ctx context.Context, method, path, u string, hasBody bool, body []byte, out any) (err error, retryable bool, retryAfter time.Duration) {
	var rd io.Reader
	if hasBody {
		rd = bytes.NewReader(body) // fresh reader per attempt
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return fmt.Errorf("client: new request: %w", err), false, 0
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		// Transport errors (refused, reset, timeout) are worth retrying
		// unless the caller's context itself ended.
		retryable := !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
		return fmt.Errorf("client: %s %s: %w", method, path, err), retryable, 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		retryable := resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable
		if retryable {
			if secs, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil && secs > 0 {
				retryAfter = time.Duration(secs) * time.Second
			}
		}
		var apiErr api.Error
		_ = json.NewDecoder(resp.Body).Decode(&apiErr)
		return &StatusError{Method: method, Path: path, StatusCode: resp.StatusCode, Message: apiErr.Message}, retryable, retryAfter
	}
	if out == nil {
		return nil, false, 0
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode response: %w", err), false, 0
	}
	return nil, false, 0
}
