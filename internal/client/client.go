// Package client is the typed HTTP client for the WiLocator server API,
// used by the simulated phones (report upload) and rider-facing tools
// (vehicle, arrival and traffic-map queries).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"wilocator/internal/api"
)

// Client talks to one WiLocator server.
type Client struct {
	base string
	hc   *http.Client
}

// New creates a client for the server at baseURL (e.g.
// "http://127.0.0.1:8080"). httpClient may be nil for a default with a 10 s
// timeout.
func New(baseURL string, httpClient *http.Client) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: invalid base URL %q", baseURL)
	}
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{base: u.String(), hc: httpClient}, nil
}

// PostReport uploads one phone scan report.
func (c *Client) PostReport(ctx context.Context, rep api.Report) (api.IngestResponse, error) {
	var out api.IngestResponse
	err := c.do(ctx, http.MethodPost, api.PathReports, nil, rep, &out)
	return out, err
}

// Vehicles lists live buses; routeID may be empty for all routes.
func (c *Client) Vehicles(ctx context.Context, routeID string) ([]api.VehicleStatus, error) {
	q := url.Values{}
	if routeID != "" {
		q.Set("route", routeID)
	}
	var out []api.VehicleStatus
	err := c.do(ctx, http.MethodGet, api.PathVehicles, q, nil, &out)
	return out, err
}

// Arrivals predicts arrivals of routeID's live buses at stop stopIdx.
func (c *Client) Arrivals(ctx context.Context, routeID string, stopIdx int) ([]api.ArrivalEstimate, error) {
	q := url.Values{}
	q.Set("route", routeID)
	q.Set("stop", strconv.Itoa(stopIdx))
	var out []api.ArrivalEstimate
	err := c.do(ctx, http.MethodGet, api.PathArrivals, q, nil, &out)
	return out, err
}

// TrafficMap fetches the current traffic map; routeID may be empty.
func (c *Client) TrafficMap(ctx context.Context, routeID string) (api.TrafficMapResponse, error) {
	q := url.Values{}
	if routeID != "" {
		q.Set("route", routeID)
	}
	var out api.TrafficMapResponse
	err := c.do(ctx, http.MethodGet, api.PathTrafficMap, q, nil, &out)
	return out, err
}

// Routes fetches the route inventory.
func (c *Client) Routes(ctx context.Context) (api.RoutesResponse, error) {
	var out api.RoutesResponse
	err := c.do(ctx, http.MethodGet, api.PathRoutes, nil, nil, &out)
	return out, err
}

// Stops lists one route's stops in travel order.
func (c *Client) Stops(ctx context.Context, routeID string) (api.StopsResponse, error) {
	q := url.Values{}
	q.Set("route", routeID)
	var out api.StopsResponse
	err := c.do(ctx, http.MethodGet, api.PathStops, q, nil, &out)
	return out, err
}

// Anomalies lists detected traffic-anomaly sites; routeID may be empty.
func (c *Client) Anomalies(ctx context.Context, routeID string) ([]api.AnomalyReport, error) {
	q := url.Values{}
	if routeID != "" {
		q.Set("route", routeID)
	}
	var out []api.AnomalyReport
	err := c.do(ctx, http.MethodGet, api.PathAnomalies, q, nil, &out)
	return out, err
}

// Trajectory fetches one tracked bus's trajectory (<lat, long, t> tuples).
func (c *Client) Trajectory(ctx context.Context, busID string) (api.TrajectoryResponse, error) {
	q := url.Values{}
	q.Set("bus", busID)
	var out api.TrajectoryResponse
	err := c.do(ctx, http.MethodGet, api.PathTrajectories, q, nil, &out)
	return out, err
}

// Health checks server liveness.
func (c *Client) Health(ctx context.Context) error {
	_, err := c.Healthz(ctx)
	return err
}

// Healthz fetches the full health body: liveness plus the degradation
// counters (ingest outcomes, load shedding, recovered panics, and — when
// the server persists travel times — WAL/snapshot recovery state).
func (c *Client) Healthz(ctx context.Context) (api.HealthResponse, error) {
	var out api.HealthResponse
	err := c.do(ctx, http.MethodGet, api.PathHealth, nil, nil, &out)
	return out, err
}

func (c *Client) do(ctx context.Context, method, path string, q url.Values, in, out any) error {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: marshal request: %w", err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, body)
	if err != nil {
		return fmt.Errorf("client: new request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var apiErr api.Error
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Message != "" {
			return fmt.Errorf("client: %s %s: %s (status %d)", method, path, apiErr.Message, resp.StatusCode)
		}
		return fmt.Errorf("client: %s %s: status %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode response: %w", err)
	}
	return nil
}
