package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wilocator/internal/api"
	"wilocator/internal/wifi"
)

func batchReports(n int) []api.Report {
	reps := make([]api.Report, n)
	for i := range reps {
		reps[i] = api.Report{
			BusID: "bus-1", RouteID: "campus", PhoneID: fmt.Sprintf("p%d", i),
			Scan: wifi.Scan{Time: time.Date(2016, 3, 7, 13, 0, i, 0, time.UTC)},
		}
	}
	return reps
}

// instantRetry makes retry waits run without real sleeping.
var instantRetry = RetryConfig{
	MaxAttempts: 3,
	Sleep:       func(context.Context, time.Duration) error { return nil },
	Rand:        func() float64 { return 0 },
}

// countLines reads an NDJSON request body and returns its decoded reports.
func readNDJSON(t *testing.T, r io.Reader) []api.Report {
	t.Helper()
	var out []api.Report
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var rep api.Report
		if err := json.Unmarshal(sc.Bytes(), &rep); err != nil {
			t.Fatalf("server saw a non-JSON line: %v", err)
		}
		out = append(out, rep)
	}
	return out
}

// TestPostReportBatchSingleFrame: the happy path is one NDJSON POST whose
// per-line verdicts come back re-indexed as-is.
func TestPostReportBatchSingleFrame(t *testing.T) {
	var got []api.Report
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != api.PathReportsBatch {
			t.Errorf("path = %s", r.URL.Path)
		}
		got = readNDJSON(t, r.Body)
		resp := api.BatchResponse{Received: len(got), Accepted: len(got) - 1, Rejected: 1,
			Items: []api.BatchItem{{Index: 2, Error: "bad line"}}}
		w.WriteHeader(http.StatusOK)
		_ = json.NewEncoder(w).Encode(resp)
	}))
	defer ts.Close()
	c, err := NewWithRetry(ts.URL, ts.Client(), instantRetry)
	if err != nil {
		t.Fatal(err)
	}
	reps := batchReports(5)
	out, err := c.PostReportBatch(context.Background(), reps)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[3].PhoneID != "p3" {
		t.Errorf("server-side frame = %d reports, want the 5 posted in order", len(got))
	}
	if out.Received != 5 || out.Accepted != 4 || out.Rejected != 1 {
		t.Errorf("aggregate = %+v", out)
	}
	if len(out.Items) != 1 || out.Items[0].Index != 2 {
		t.Errorf("items = %+v, want one verdict at index 2", out.Items)
	}
}

// TestPostReportBatchResumes: a mid-batch 429 with a resume cursor makes
// the client resend only the unattempted tail, honoring Retry-After, and
// re-index the second frame's verdicts into original positions.
func TestPostReportBatchResumes(t *testing.T) {
	var frames [][]api.Report
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reps := readNDJSON(t, r.Body)
		frames = append(frames, reps)
		w.Header().Set("Content-Type", "application/json")
		if len(frames) == 1 {
			// Attempt 3 of 8 lines, shed the rest.
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(api.BatchResponse{
				Received: 3, Accepted: 2, Rejected: 1,
				Items:         []api.BatchItem{{Index: 1, Error: "bad"}},
				RetryAfterSec: 7,
			})
			return
		}
		w.WriteHeader(http.StatusOK)
		_ = json.NewEncoder(w).Encode(api.BatchResponse{
			Received: len(reps), Accepted: len(reps) - 1, Rejected: 1,
			Items: []api.BatchItem{{Index: 0, Error: "bad too"}},
		})
	}))
	defer ts.Close()

	var slept []time.Duration
	retry := instantRetry
	retry.Sleep = func(_ context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	c, err := NewWithRetry(ts.URL, ts.Client(), retry)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.PostReportBatch(context.Background(), batchReports(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 {
		t.Fatalf("client made %d frames, want 2", len(frames))
	}
	if len(frames[1]) != 5 || frames[1][0].PhoneID != "p3" {
		t.Errorf("resume frame = %d reports starting at %q, want 5 starting at p3",
			len(frames[1]), frames[1][0].PhoneID)
	}
	if out.Received != 8 || out.Accepted != 6 || out.Rejected != 2 {
		t.Errorf("aggregate = %+v", out)
	}
	// Frame 2's index-0 verdict maps back to original index 3.
	if len(out.Items) != 2 || out.Items[0].Index != 1 || out.Items[1].Index != 3 {
		t.Errorf("re-indexed items = %+v, want indices 1 and 3", out.Items)
	}
	// The jittered wait derives from the server's 7 s hint, capped at
	// MaxDelay (2 s default): with Rand()=0 the wait is exactly cap/2.
	if len(slept) != 1 || slept[0] != time.Second {
		t.Errorf("slept %v, want one capped, hint-derived wait of 1s", slept)
	}
}

// TestPostReportBatchGivesUp: repeated 429s without progress exhaust the
// attempt budget and surface the status error.
func TestPostReportBatchGivesUp(t *testing.T) {
	calls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte(`{"error":"batch ingestion saturated; retry later"}`))
	}))
	defer ts.Close()
	c, err := NewWithRetry(ts.URL, ts.Client(), instantRetry)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.PostReportBatch(context.Background(), batchReports(4))
	if err == nil || !strings.Contains(err.Error(), "saturated") {
		t.Fatalf("err = %v, want the server's shed message", err)
	}
	if calls != 3 {
		t.Errorf("made %d attempts, want MaxAttempts = 3", calls)
	}
}

// TestBatchSenderFlushCadence: the sender ships full frames inline and the
// partial tail on Flush, with item indices counted over all Added reports.
func TestBatchSenderFlushCadence(t *testing.T) {
	var frames [][]api.Report
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reps := readNDJSON(t, r.Body)
		frames = append(frames, reps)
		resp := api.BatchResponse{Received: len(reps), Accepted: len(reps)}
		if len(frames) == 2 { // second frame: last line rejected
			resp.Accepted--
			resp.Rejected = 1
			resp.Items = []api.BatchItem{{Index: len(reps) - 1, Error: "bad"}}
		}
		w.WriteHeader(http.StatusOK)
		_ = json.NewEncoder(w).Encode(resp)
	}))
	defer ts.Close()
	c, err := NewWithRetry(ts.URL, ts.Client(), instantRetry)
	if err != nil {
		t.Fatal(err)
	}
	s := c.NewBatchSender(3)
	for _, rep := range batchReports(7) {
		if err := s.Add(context.Background(), rep); err != nil {
			t.Fatal(err)
		}
	}
	if len(frames) != 2 {
		t.Fatalf("after 7 adds at cadence 3: %d frames, want 2", len(frames))
	}
	if err := s.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 || len(frames[2]) != 1 {
		t.Fatalf("tail flush: %d frames, last %d reports, want 3 frames ending in 1", len(frames), len(frames[2]))
	}
	if err := s.Flush(context.Background()); err != nil { // empty flush is a no-op
		t.Fatal(err)
	}
	if len(frames) != 3 {
		t.Errorf("empty Flush still posted a frame")
	}
	tot := s.Totals()
	if tot.Received != 7 || tot.Accepted != 6 || tot.Rejected != 1 {
		t.Errorf("totals = %+v", tot)
	}
	// Frame 2's last line (its index 2) is global report index 5.
	if len(tot.Items) != 1 || tot.Items[0].Index != 5 {
		t.Errorf("totals items = %+v, want one verdict at global index 5", tot.Items)
	}
}
