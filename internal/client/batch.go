package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"wilocator/internal/api"
)

// PostReportBatch uploads reports as one (or, under backpressure, several)
// NDJSON frames to POST /v1/reports/batch. A 429 mid-batch carries a
// resume cursor — the number of lines the server attempted — and the
// client resumes from there after honoring Retry-After, so a saturated
// server never forces the caller to resend work it already absorbed.
//
// The returned BatchResponse aggregates every frame: counters are summed
// and per-line Items are re-indexed to positions in reps, whichever frame
// they were answered in. Retries follow the client's RetryConfig; attempts
// that make progress (a resume cursor > 0) reset the attempt budget,
// because a draining server is one worth waiting for.
func (c *Client) PostReportBatch(ctx context.Context, reps []api.Report) (api.BatchResponse, error) {
	var agg api.BatchResponse
	if len(reps) == 0 {
		return agg, nil
	}
	lines := make([][]byte, len(reps))
	for i, rep := range reps {
		b, err := json.Marshal(rep)
		if err != nil {
			return agg, fmt.Errorf("client: marshal report %d: %w", i, err)
		}
		lines[i] = b
	}

	start := 0
	attempt := 0
	wait := c.retry.BaseDelay
	var body bytes.Buffer
	for start < len(lines) {
		body.Reset()
		for _, line := range lines[start:] {
			body.Write(line)
			body.WriteByte('\n')
		}
		attempt++
		resp, err, retryable, retryAfter := c.attemptBatch(ctx, body.Bytes())
		if err == nil || retryable {
			// Full or partial progress: fold this frame's verdicts in.
			mergeBatch(&agg, resp, start)
			if err == nil {
				if resp.Received < len(lines)-start {
					return agg, fmt.Errorf("client: POST %s: server acknowledged %d of %d lines on a 200",
						api.PathReportsBatch, resp.Received, len(lines)-start)
				}
				return agg, nil
			}
			if resp.Received > 0 {
				start += resp.Received
				attempt = 0 // progress: a fresh retry budget for the rest
				wait = c.retry.BaseDelay
			}
		}
		if !retryable || attempt >= c.retry.MaxAttempts || ctx.Err() != nil {
			return agg, err
		}
		d := wait
		if retryAfter > 0 {
			d = retryAfter
		}
		if d > c.retry.MaxDelay {
			d = c.retry.MaxDelay
		}
		d = d/2 + time.Duration(c.retry.Rand()*float64(d/2))
		if serr := c.retry.Sleep(ctx, d); serr != nil {
			return agg, err
		}
		wait *= 2
		if wait > c.retry.MaxDelay {
			wait = c.retry.MaxDelay
		}
	}
	return agg, nil
}

// attemptBatch makes one batch round trip. On 429 the response body is
// still a BatchResponse (the partial verdicts plus the resume cursor), so
// unlike attempt it decodes the envelope on that status too.
func (c *Client) attemptBatch(ctx context.Context, body []byte) (resp api.BatchResponse, err error, retryable bool, retryAfter time.Duration) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+api.PathReportsBatch, bytes.NewReader(body))
	if err != nil {
		return resp, fmt.Errorf("client: new request: %w", err), false, 0
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	hres, err := c.hc.Do(req)
	if err != nil {
		retryable := ctx.Err() == nil
		return resp, fmt.Errorf("client: POST %s: %w", api.PathReportsBatch, err), retryable, 0
	}
	defer hres.Body.Close()
	switch hres.StatusCode {
	case http.StatusOK:
		if derr := json.NewDecoder(hres.Body).Decode(&resp); derr != nil {
			return resp, fmt.Errorf("client: decode batch response: %w", derr), false, 0
		}
		return resp, nil, false, 0
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		if secs, aerr := strconv.Atoi(hres.Header.Get("Retry-After")); aerr == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
		raw, _ := io.ReadAll(io.LimitReader(hres.Body, 1<<20))
		serr := &StatusError{Method: http.MethodPost, Path: api.PathReportsBatch, StatusCode: hres.StatusCode}
		// A mid-batch 429 body is the partial BatchResponse; an outright
		// shed (or a 503) carries the plain error envelope instead. Either
		// way resp is usable: zero values mean "nothing was attempted".
		if jerr := json.Unmarshal(raw, &resp); jerr != nil || resp.Received == 0 {
			var apiErr api.Error
			_ = json.Unmarshal(raw, &apiErr)
			serr.Message = apiErr.Message
		}
		if resp.RetryAfterSec > 0 && retryAfter == 0 {
			retryAfter = time.Duration(resp.RetryAfterSec) * time.Second
		}
		return resp, serr, true, retryAfter
	default:
		var apiErr api.Error
		_ = json.NewDecoder(hres.Body).Decode(&apiErr)
		return resp, &StatusError{Method: http.MethodPost, Path: api.PathReportsBatch,
			StatusCode: hres.StatusCode, Message: apiErr.Message}, false, 0
	}
}

// mergeBatch folds one frame's response into the aggregate, shifting item
// indices by the frame's offset into the original report slice.
func mergeBatch(agg *api.BatchResponse, r api.BatchResponse, offset int) {
	agg.Received += r.Received
	agg.Accepted += r.Accepted
	agg.Located += r.Located
	agg.LateDropped += r.LateDropped
	agg.Rejected += r.Rejected
	for _, it := range r.Items {
		it.Index += offset
		agg.Items = append(agg.Items, it)
	}
}

// A BatchSender accumulates reports and ships them as NDJSON batches of
// FlushEvery, amortising one HTTP round trip (and, server-side, one WAL
// fsync) over a whole frame. It is safe for concurrent Add; flushes happen
// inline on the adding goroutine that filled the batch.
type BatchSender struct {
	c     *Client
	every int

	mu   sync.Mutex
	buf  []api.Report
	sent int // reports shipped in completed flushes (item re-indexing base)
	agg  api.BatchResponse
}

// NewBatchSender returns a sender flushing every flushEvery reports (min 1;
// values <= 0 select 256). Call Flush before reading Totals to push out the
// partial tail.
func (c *Client) NewBatchSender(flushEvery int) *BatchSender {
	if flushEvery <= 0 {
		flushEvery = 256
	}
	return &BatchSender{c: c, every: flushEvery, buf: make([]api.Report, 0, flushEvery)}
}

// Add buffers one report, flushing inline when the batch is full. The
// returned error is the flush's — reports buffered by other goroutines
// during a failed flush stay buffered for the next one.
func (s *BatchSender) Add(ctx context.Context, rep api.Report) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = append(s.buf, rep)
	if len(s.buf) < s.every {
		return nil
	}
	return s.flushLocked(ctx)
}

// Flush ships whatever is buffered, if anything.
func (s *BatchSender) Flush(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.buf) == 0 {
		return nil
	}
	return s.flushLocked(ctx)
}

func (s *BatchSender) flushLocked(ctx context.Context) error {
	resp, err := s.c.PostReportBatch(ctx, s.buf)
	if err != nil {
		return err
	}
	mergeBatch(&s.agg, resp, s.sent)
	s.sent += len(s.buf)
	s.buf = s.buf[:0]
	return nil
}

// Totals returns the running aggregate over every flushed batch, item
// indices counted over all reports Added in order.
func (s *BatchSender) Totals() api.BatchResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.agg
	out.Items = append([]api.BatchItem(nil), s.agg.Items...)
	return out
}
