package client

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wilocator/internal/api"
)

// fakeServer returns a test server that answers every path with the given
// status and body.
func fakeServer(status int, body string) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_, _ = w.Write([]byte(body))
	}))
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		url    string
		wantOK bool
	}{
		{"http://127.0.0.1:8080", true},
		{"https://wilocator.example.com", true},
		{"not a url", false},
		{"", false},
		{"/relative/only", false},
	}
	for _, tt := range tests {
		_, err := New(tt.url, nil)
		if (err == nil) != tt.wantOK {
			t.Errorf("New(%q) err = %v, wantOK %v", tt.url, err, tt.wantOK)
		}
	}
}

func TestErrorEnvelopeSurfaced(t *testing.T) {
	ts := fakeServer(http.StatusBadRequest, `{"error":"unknown route \"zz\""}`)
	defer ts.Close()
	c, err := New(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Vehicles(context.Background(), "zz")
	if err == nil || !strings.Contains(err.Error(), "unknown route") {
		t.Errorf("err = %v, want the server's message surfaced", err)
	}
	if !strings.Contains(err.Error(), "400") {
		t.Errorf("err = %v, want the status code included", err)
	}
}

func TestNonJSONErrorBody(t *testing.T) {
	ts := fakeServer(http.StatusInternalServerError, "boom")
	defer ts.Close()
	c, err := New(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Health(context.Background()); err == nil || !strings.Contains(err.Error(), "500") {
		t.Errorf("err = %v, want status-only error", err)
	}
}

func TestMalformedSuccessBody(t *testing.T) {
	ts := fakeServer(http.StatusOK, "{not json")
	defer ts.Close()
	c, err := New(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Routes(context.Background()); err == nil || !strings.Contains(err.Error(), "decode") {
		t.Errorf("err = %v, want decode error", err)
	}
}

func TestContextCancellation(t *testing.T) {
	ts := fakeServer(http.StatusOK, "{}")
	defer ts.Close()
	c, err := New(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.TrafficMap(ctx, ""); err == nil {
		t.Error("cancelled context did not error")
	}
}

func TestQueryParametersEncoded(t *testing.T) {
	var gotPath string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath = r.URL.String()
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte("[]"))
	}))
	defer ts.Close()
	c, err := New(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Arrivals(context.Background(), "Rapid Line", 7); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(gotPath, "route=Rapid+Line") || !strings.Contains(gotPath, "stop=7") {
		t.Errorf("request path = %q", gotPath)
	}
	if !strings.HasPrefix(gotPath, api.PathArrivals) {
		t.Errorf("path = %q, want prefix %q", gotPath, api.PathArrivals)
	}
}

func TestPostReportSendsJSON(t *testing.T) {
	var gotCT string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotCT = r.Header.Get("Content-Type")
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"accepted":true,"located":false}`))
	}))
	defer ts.Close()
	c, err := New(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.PostReport(context.Background(), api.Report{BusID: "b", RouteID: "r"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Accepted || resp.Located {
		t.Errorf("resp = %+v", resp)
	}
	if gotCT != "application/json" {
		t.Errorf("content type = %q", gotCT)
	}
}

// retryHarness captures the backoff waits a call makes, with a fixed
// jitter sample so the expected delays are exact.
type retryHarness struct {
	slept []time.Duration
	rand  float64
}

func (h *retryHarness) config(attempts int) RetryConfig {
	return RetryConfig{
		MaxAttempts: attempts,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Sleep: func(ctx context.Context, d time.Duration) error {
			h.slept = append(h.slept, d)
			return ctx.Err()
		},
		Rand: func() float64 { return h.rand },
	}
}

// flakyServer fails the first n requests with status, then succeeds.
func flakyServer(t *testing.T, n int, status int, hdr http.Header) (*httptest.Server, *int) {
	t.Helper()
	calls := new(int)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		*calls++
		if *calls <= n {
			for k, vs := range hdr {
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			w.WriteHeader(status)
			fmt.Fprint(w, `{"error":"shedding"}`)
			return
		}
		fmt.Fprint(w, "{}")
	}))
	t.Cleanup(ts.Close)
	return ts, calls
}

// TestRetryBackoffDoublesWithJitter: 503s are retried with exponential
// backoff; with Rand pinned to 1.0 the waits are exactly base, 2·base, …
// capped at MaxDelay.
func TestRetryBackoffDoublesWithJitter(t *testing.T) {
	h := &retryHarness{rand: 1.0}
	ts, calls := flakyServer(t, 5, http.StatusServiceUnavailable, nil)
	c, err := NewWithRetry(ts.URL, nil, h.config(6))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("call should succeed on attempt 6: %v", err)
	}
	if *calls != 6 {
		t.Fatalf("made %d attempts, want 6", *calls)
	}
	// Full-jitter (rand=1.0) waits: 100ms, 200ms, 400ms, 800ms, 1.6s.
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 800 * time.Millisecond, 1600 * time.Millisecond}
	if len(h.slept) != len(want) {
		t.Fatalf("slept %d times (%v), want %d", len(h.slept), h.slept, len(want))
	}
	for i, d := range want {
		if h.slept[i] != d {
			t.Errorf("wait %d = %v, want %v (full jitter)", i, h.slept[i], d)
		}
	}

	// rand=0 halves every wait: the jitter window is [d/2, d).
	h2 := &retryHarness{rand: 0}
	ts2, _ := flakyServer(t, 2, http.StatusServiceUnavailable, nil)
	c2, err := NewWithRetry(ts2.URL, nil, h2.config(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(h2.slept) != 2 || h2.slept[0] != 50*time.Millisecond || h2.slept[1] != 100*time.Millisecond {
		t.Fatalf("low-jitter waits = %v, want [50ms 100ms]", h2.slept)
	}
}

// TestRetryHonorsRetryAfter: a 429 with Retry-After overrides the backoff
// schedule (jittered over the hint), capped at MaxDelay.
func TestRetryHonorsRetryAfter(t *testing.T) {
	h := &retryHarness{rand: 1.0}
	hdr := http.Header{"Retry-After": []string{"1"}}
	ts, calls := flakyServer(t, 1, http.StatusTooManyRequests, hdr)
	c, err := NewWithRetry(ts.URL, nil, h.config(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if *calls != 2 {
		t.Fatalf("made %d attempts, want 2", *calls)
	}
	if len(h.slept) != 1 || h.slept[0] != time.Second {
		t.Fatalf("waits = %v, want [1s] (the server's hint, not the 100ms schedule)", h.slept)
	}

	// A hint beyond MaxDelay is capped.
	h2 := &retryHarness{rand: 1.0}
	hdr2 := http.Header{"Retry-After": []string{"3600"}}
	ts2, _ := flakyServer(t, 1, http.StatusServiceUnavailable, hdr2)
	c2, err := NewWithRetry(ts2.URL, nil, h2.config(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(h2.slept) != 1 || h2.slept[0] != 2*time.Second {
		t.Fatalf("waits = %v, want [2s] (hint capped at MaxDelay)", h2.slept)
	}
}

// TestRetryGivesUpAfterMaxAttempts: a persistent 503 fails after exactly
// MaxAttempts tries with the last response's error.
func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	h := &retryHarness{rand: 1.0}
	ts, calls := flakyServer(t, 1<<30, http.StatusServiceUnavailable, nil)
	c, err := NewWithRetry(ts.URL, nil, h.config(3))
	if err != nil {
		t.Fatal(err)
	}
	err = c.Health(context.Background())
	if err == nil || !strings.Contains(err.Error(), "shedding") {
		t.Fatalf("err = %v, want the server's error envelope", err)
	}
	if *calls != 3 {
		t.Fatalf("made %d attempts, want exactly MaxAttempts=3", *calls)
	}
}

// TestNoRetryOnClientError: 4xx responses other than 429 are not transient
// — exactly one attempt, no sleeping.
func TestNoRetryOnClientError(t *testing.T) {
	h := &retryHarness{rand: 1.0}
	ts, calls := flakyServer(t, 1<<30, http.StatusBadRequest, nil)
	c, err := NewWithRetry(ts.URL, nil, h.config(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Health(context.Background()); err == nil {
		t.Fatal("400 reported as success")
	}
	if *calls != 1 || len(h.slept) != 0 {
		t.Fatalf("400 retried: %d attempts, %d sleeps", *calls, len(h.slept))
	}
}

// TestRetryTransportError: connection failures are retried until the
// server appears (here: never), but a canceled context stops the loop.
func TestRetryStopsOnContextCancel(t *testing.T) {
	ts, calls := flakyServer(t, 1<<30, http.StatusServiceUnavailable, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cfg := RetryConfig{
		MaxAttempts: 100,
		BaseDelay:   time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel() // the caller gives up mid-backoff
			return ctx.Err()
		},
		Rand: func() float64 { return 0.5 },
	}
	c, err := NewWithRetry(ts.URL, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Health(ctx); err == nil {
		t.Fatal("canceled retry loop reported success")
	}
	if *calls != 1 {
		t.Fatalf("made %d attempts after cancellation, want 1", *calls)
	}
}

// TestNoRetryConfig: the NoRetry policy makes exactly one attempt.
func TestNoRetryConfig(t *testing.T) {
	ts, calls := flakyServer(t, 1, http.StatusServiceUnavailable, nil)
	c, err := NewWithRetry(ts.URL, nil, NoRetry)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Health(context.Background()); err == nil {
		t.Fatal("single-attempt 503 reported as success")
	}
	if *calls != 1 {
		t.Fatalf("NoRetry made %d attempts, want 1", *calls)
	}
}

// TestRetryPostReportResendsBody: each POST attempt must carry the full
// JSON body (a consumed reader on retry would send an empty request).
func TestRetryPostReportResendsBody(t *testing.T) {
	var bodies []string
	calls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		b, _ := io.ReadAll(r.Body)
		bodies = append(bodies, string(b))
		if calls == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"accepted":true}`)
	}))
	defer ts.Close()
	h := &retryHarness{rand: 0.5}
	c, err := NewWithRetry(ts.URL, nil, h.config(2))
	if err != nil {
		t.Fatal(err)
	}
	rep := api.Report{BusID: "bus-1", RouteID: "r-9", PhoneID: "p-1"}
	if _, err := c.PostReport(context.Background(), rep); err != nil {
		t.Fatal(err)
	}
	if len(bodies) != 2 {
		t.Fatalf("server saw %d requests, want 2", len(bodies))
	}
	if bodies[0] != bodies[1] || !strings.Contains(bodies[1], "bus-1") {
		t.Fatalf("retried body differs or is empty:\n  first  %q\n  second %q", bodies[0], bodies[1])
	}
}
