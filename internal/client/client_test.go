package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"wilocator/internal/api"
)

// fakeServer returns a test server that answers every path with the given
// status and body.
func fakeServer(status int, body string) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_, _ = w.Write([]byte(body))
	}))
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		url    string
		wantOK bool
	}{
		{"http://127.0.0.1:8080", true},
		{"https://wilocator.example.com", true},
		{"not a url", false},
		{"", false},
		{"/relative/only", false},
	}
	for _, tt := range tests {
		_, err := New(tt.url, nil)
		if (err == nil) != tt.wantOK {
			t.Errorf("New(%q) err = %v, wantOK %v", tt.url, err, tt.wantOK)
		}
	}
}

func TestErrorEnvelopeSurfaced(t *testing.T) {
	ts := fakeServer(http.StatusBadRequest, `{"error":"unknown route \"zz\""}`)
	defer ts.Close()
	c, err := New(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Vehicles(context.Background(), "zz")
	if err == nil || !strings.Contains(err.Error(), "unknown route") {
		t.Errorf("err = %v, want the server's message surfaced", err)
	}
	if !strings.Contains(err.Error(), "400") {
		t.Errorf("err = %v, want the status code included", err)
	}
}

func TestNonJSONErrorBody(t *testing.T) {
	ts := fakeServer(http.StatusInternalServerError, "boom")
	defer ts.Close()
	c, err := New(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Health(context.Background()); err == nil || !strings.Contains(err.Error(), "500") {
		t.Errorf("err = %v, want status-only error", err)
	}
}

func TestMalformedSuccessBody(t *testing.T) {
	ts := fakeServer(http.StatusOK, "{not json")
	defer ts.Close()
	c, err := New(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Routes(context.Background()); err == nil || !strings.Contains(err.Error(), "decode") {
		t.Errorf("err = %v, want decode error", err)
	}
}

func TestContextCancellation(t *testing.T) {
	ts := fakeServer(http.StatusOK, "{}")
	defer ts.Close()
	c, err := New(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.TrafficMap(ctx, ""); err == nil {
		t.Error("cancelled context did not error")
	}
}

func TestQueryParametersEncoded(t *testing.T) {
	var gotPath string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath = r.URL.String()
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte("[]"))
	}))
	defer ts.Close()
	c, err := New(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Arrivals(context.Background(), "Rapid Line", 7); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(gotPath, "route=Rapid+Line") || !strings.Contains(gotPath, "stop=7") {
		t.Errorf("request path = %q", gotPath)
	}
	if !strings.HasPrefix(gotPath, api.PathArrivals) {
		t.Errorf("path = %q, want prefix %q", gotPath, api.PathArrivals)
	}
}

func TestPostReportSendsJSON(t *testing.T) {
	var gotCT string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotCT = r.Header.Get("Content-Type")
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"accepted":true,"located":false}`))
	}))
	defer ts.Close()
	c, err := New(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.PostReport(context.Background(), api.Report{BusID: "b", RouteID: "r"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Accepted || resp.Located {
		t.Errorf("resp = %+v", resp)
	}
	if gotCT != "application/json" {
		t.Errorf("content type = %q", gotCT)
	}
}
