package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"wilocator/internal/api"
)

// StreamEvent is one event of a /v1/stream subscription, already decoded.
// Exactly one of Snapshot and Delta is set, matching Type.
type StreamEvent struct {
	// Type is api.EventSnapshot or api.EventDelta.
	Type  string
	Epoch uint64
	// Snapshot is the full route state; replace any held state with it.
	Snapshot *api.StreamSnapshot
	// Delta is one epoch's change set; apply it on top of the held state.
	Delta *api.StreamDelta
}

// maxFrameBytes bounds one SSE line; a full-route snapshot of a large fleet
// is well under this.
const maxFrameBytes = 4 << 20

// StreamRoute subscribes to the server's delta push for one route and calls
// fn for every decoded event, in order. It implements the resume protocol:
// the client tracks the last epoch it applied, skips stale deltas replayed
// during catch-up, and — when the server ends the stream (slow-subscriber
// shed, write timeout, restart) or the transport fails — reconnects with
// ?from=<last epoch> so the server replays exactly the missed suffix (or a
// fresh snapshot when the suffix is no longer retained).
//
// Reconnect attempts back off exponentially with jitter under the client's
// RetryConfig; the attempt budget applies per connection streak and resets
// whenever a connection makes progress (delivers an event). The call returns
// nil once ctx ends, the first error fn returns, a non-retryable HTTP
// status, or the retry budget exhausting with no progress.
//
// The stream outlives any http.Client.Timeout; pass a client without one
// (e.g. &http.Client{}) when constructing the Client for long subscriptions.
func (c *Client) StreamRoute(ctx context.Context, routeID string, from uint64, fn func(StreamEvent) error) error {
	if routeID == "" {
		return fmt.Errorf("client: StreamRoute requires a route")
	}
	last := from
	wait := c.retry.BaseDelay
	failures := 0
	for {
		progressed, err := c.streamOnce(ctx, routeID, &last, fn)
		if ctx.Err() != nil {
			return nil
		}
		if err != nil {
			var serr *StatusError
			if isStatus(err, &serr) &&
				serr.StatusCode != http.StatusTooManyRequests &&
				serr.StatusCode != http.StatusServiceUnavailable {
				return err // permanent rejection (bad route, stream disabled)
			}
			if te, ok := err.(*termError); ok {
				return te.err // the consumer stopped the stream, or version skew
			}
		}
		if progressed {
			// The connection worked; a later drop starts a fresh streak.
			failures = 0
			wait = c.retry.BaseDelay
			continue
		}
		failures++
		if failures >= c.retry.MaxAttempts {
			if err == nil {
				err = fmt.Errorf("client: stream %s: server closed %d connections without an event", routeID, failures)
			}
			return err
		}
		d := wait
		if d > c.retry.MaxDelay {
			d = c.retry.MaxDelay
		}
		d = d/2 + time.Duration(c.retry.Rand()*float64(d/2))
		if serr := c.retry.Sleep(ctx, d); serr != nil {
			return nil
		}
		wait *= 2
		if wait > c.retry.MaxDelay {
			wait = c.retry.MaxDelay
		}
	}
}

// termError wraps an error that must terminate the stream — the consumer
// callback returned it, or a frame failed to decode (server/client version
// skew a reconnect cannot fix) — so the reconnect loop can tell it apart
// from a transient transport failure.
type termError struct{ err error }

func (e *termError) Error() string { return e.err.Error() }

func isStatus(err error, out **StatusError) bool {
	se, ok := err.(*StatusError)
	if ok {
		*out = se
	}
	return ok
}

// streamOnce runs one stream connection until it ends, updating *last as
// events are applied. progressed reports whether at least one event was
// delivered to fn.
func (c *Client) streamOnce(ctx context.Context, routeID string, last *uint64, fn func(StreamEvent) error) (progressed bool, err error) {
	q := url.Values{}
	q.Set("route", routeID)
	if *last > 0 {
		q.Set("from", strconv.FormatUint(*last, 10))
	}
	u := c.base + api.PathStream + "?" + q.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return false, fmt.Errorf("client: new stream request: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, fmt.Errorf("client: GET %s: %w", api.PathStream, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var apiErr api.Error
		_ = json.NewDecoder(resp.Body).Decode(&apiErr)
		return false, &StatusError{Method: http.MethodGet, Path: api.PathStream,
			StatusCode: resp.StatusCode, Message: apiErr.Message}
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), maxFrameBytes)
	var event, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if event != "" && data != "" {
				applied, ferr := applyFrame(event, data, last, fn)
				if ferr != nil {
					return progressed, ferr
				}
				progressed = progressed || applied
			}
			event, data = "", ""
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
		// id: lines duplicate the epoch already carried in the payload.
	}
	// A scanner error (connection reset mid-frame) and a clean EOF (server
	// shed us or timed the response out) both mean the same thing here:
	// reconnect and resume from *last.
	return progressed, sc.Err()
}

// applyFrame decodes one complete SSE frame and hands it to fn, maintaining
// the resume epoch. Stale deltas (epoch <= last, seen when the server's
// catch-up replay overlaps what the client already applied) are skipped:
// deltas are idempotent upserts, so skipping is purely an optimization.
func applyFrame(event, data string, last *uint64, fn func(StreamEvent) error) (bool, error) {
	switch event {
	case api.EventSnapshot:
		var snap api.StreamSnapshot
		if err := json.Unmarshal([]byte(data), &snap); err != nil {
			return false, &termError{err: fmt.Errorf("client: decode stream snapshot: %w", err)}
		}
		*last = snap.Epoch
		if err := fn(StreamEvent{Type: api.EventSnapshot, Epoch: snap.Epoch, Snapshot: &snap}); err != nil {
			return true, &termError{err: err}
		}
		return true, nil
	case api.EventDelta:
		var delta api.StreamDelta
		if err := json.Unmarshal([]byte(data), &delta); err != nil {
			return false, &termError{err: fmt.Errorf("client: decode stream delta: %w", err)}
		}
		if delta.Epoch <= *last {
			return false, nil
		}
		*last = delta.Epoch
		if err := fn(StreamEvent{Type: api.EventDelta, Epoch: delta.Epoch, Delta: &delta}); err != nil {
			return true, &termError{err: err}
		}
		return true, nil
	default:
		return false, nil // unknown event types are forward-compatible noise
	}
}
