package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	c1 := root.Split("shadowing")
	c2 := root.Split("dwell")
	if c1.Uint64() == c2.Uint64() {
		t.Error("different labels produced identical child streams")
	}

	// Splitting must not disturb the parent stream.
	r1 := New(7)
	r2 := New(7)
	_ = r1.Split("anything")
	if r1.Uint64() != r2.Uint64() {
		t.Error("Split consumed parent state")
	}

	// Same label, same parent state -> same child.
	d1 := New(9).Split("x")
	d2 := New(9).Split("x")
	if d1.Uint64() != d2.Uint64() {
		t.Error("identical splits differ")
	}
}

func TestSplitN(t *testing.T) {
	root := New(3)
	a := root.SplitN("bus", 0)
	b := root.SplitN("bus", 1)
	if a.Uint64() == b.Uint64() {
		t.Error("SplitN children with different indices are identical")
	}
	c := New(3).SplitN("bus", 0)
	d := New(3).SplitN("bus", 0)
	if c.Uint64() != d.Uint64() {
		t.Error("SplitN is not deterministic")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntn(t *testing.T) {
	r := New(17)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[r.Intn(10)]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("Intn(10) bucket %d count %d, want ~1000", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestRange(t *testing.T) {
	r := New(19)
	for i := 0; i < 1000; i++ {
		v := r.Range(-5, 5)
		if v < -5 || v >= 5 {
			t.Fatalf("Range = %v out of [-5,5)", v)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(23)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("norm mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Errorf("norm stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestExpMean(t *testing.T) {
	r := New(29)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(4)
		if v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-4) > 0.1 {
		t.Errorf("exp mean = %v, want ~4", mean)
	}
}

func TestBool(t *testing.T) {
	r := New(31)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.25) > 0.01 {
		t.Errorf("Bool(0.25) frequency = %v", p)
	}
}

func TestPerm(t *testing.T) {
	r := New(37)
	p := r.Perm(50)
	seen := make(map[int]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
	if len(seen) != 50 {
		t.Fatalf("permutation missing elements: %v", p)
	}
}
