// Package xrand provides a deterministic, splittable pseudo-random number
// generator used by every stochastic component of the WiLocator simulation.
//
// Determinism matters here: an experiment harness seeds one root generator,
// then derives an independent stream per component (each AP's shadowing, each
// bus's driver behaviour, each phone's scan jitter). Two runs with the same
// scenario seed produce byte-identical results regardless of the order in
// which components consume randomness.
package xrand

import "math"

// Rand is a small, fast PRNG (xoshiro256** seeded via splitmix64). The zero
// value is not usable; construct with New or Split.
type Rand struct {
	s [4]uint64
	// spare caches the second value of a Box-Muller pair for NormFloat64.
	spare    float64
	hasSpare bool
}

// New returns a generator seeded from seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
	// xoshiro must not start at the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
	return r
}

// Split derives an independent generator from r using a label, without
// disturbing r's own stream. Identical (state, label) pairs yield identical
// children, which is what makes per-component determinism order-independent.
func (r *Rand) Split(label string) *Rand {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return New(r.s[0] ^ r.s[3] ^ h)
}

// SplitN derives an independent generator from r using an integer label.
func (r *Rand) SplitN(label string, n int) *Rand {
	child := r.Split(label)
	return New(child.s[1] ^ (uint64(n)+1)*0x9E3779B97F4A7C15)
}

func splitmix64(state uint64) (next, out uint64) {
	state += 0x9E3779B97F4A7C15
	z := state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return state, z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	res := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return res
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// NormFloat64 returns a standard normal variate via Box-Muller.
func (r *Rand) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// Norm returns a normal variate with the given mean and standard deviation.
func (r *Rand) Norm(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// Exp returns an exponentially distributed variate with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
