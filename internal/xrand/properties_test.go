package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

// TestRangeWithinBounds: Range(lo, hi) stays in [lo, hi) for arbitrary
// finite bounds with lo < hi.
func TestRangeWithinBounds(t *testing.T) {
	f := func(seed uint64, a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := math.Mod(a, 1e6), math.Mod(b, 1e6)
		if lo == hi {
			return true
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Range(lo, hi)
			if v < lo || v >= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPermIsPermutation: Perm(n) is a bijection on [0, n) for arbitrary
// small n.
func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		n := int(rawN % 64)
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSplitLabelSensitivity: distinct labels produce distinct streams for
// arbitrary seeds (a sanity check on the FNV mixing, not a collision proof).
func TestSplitLabelSensitivity(t *testing.T) {
	f := func(seed uint64) bool {
		r1 := New(seed).Split("alpha")
		r2 := New(seed).Split("beta")
		r3 := New(seed).Split("alpha")
		if r1.Uint64() != r3.Uint64() {
			return false // same label must agree
		}
		// Refresh r1 (consumed one value above).
		r1 = New(seed).Split("alpha")
		same := 0
		for i := 0; i < 8; i++ {
			if r1.Uint64() == r2.Uint64() {
				same++
			}
		}
		return same < 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestIntnBounds: Intn(n) stays within [0, n).
func TestIntnBounds(t *testing.T) {
	f := func(seed uint64, rawN uint16) bool {
		n := int(rawN%1000) + 1
		r := New(seed)
		for i := 0; i < 20; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
