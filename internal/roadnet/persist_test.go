package roadnet

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"wilocator/internal/geo"
)

func TestNetworkRoundTrip(t *testing.T) {
	src := buildVancouver(t)
	var buf bytes.Buffer
	if err := WriteNetwork(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst, err := ReadNetwork(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	if dst.Graph.NumNodes() != src.Graph.NumNodes() {
		t.Errorf("nodes: %d vs %d", dst.Graph.NumNodes(), src.Graph.NumNodes())
	}
	if dst.Graph.NumSegments() != src.Graph.NumSegments() {
		t.Errorf("segments: %d vs %d", dst.Graph.NumSegments(), src.Graph.NumSegments())
	}
	srcRows, dstRows := src.TableI(), dst.TableI()
	if len(srcRows) != len(dstRows) {
		t.Fatalf("route counts differ")
	}
	for i := range srcRows {
		if srcRows[i] != dstRows[i] {
			t.Errorf("Table I row %d differs: %+v vs %+v", i, srcRows[i], dstRows[i])
		}
	}
	// Per-route geometry and stops survive exactly.
	for _, sr := range src.Routes() {
		dr, ok := dst.Route(sr.ID())
		if !ok {
			t.Fatalf("route %q missing after round trip", sr.ID())
		}
		if math.Abs(dr.Length()-sr.Length()) > 1e-9 {
			t.Errorf("route %q length differs", sr.ID())
		}
		if dr.Class() != sr.Class() || dr.Name() != sr.Name() {
			t.Errorf("route %q metadata differs", sr.ID())
		}
		ss, ds := sr.Stops(), dr.Stops()
		for i := range ss {
			if ss[i] != ds[i] {
				t.Errorf("route %q stop %d differs", sr.ID(), i)
			}
		}
	}
}

func TestNetworkRoundTripCurvedSegment(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(geo.Pt(0, 0), "a")
	b := g.AddNode(geo.Pt(100, 0), "b")
	line := geo.MustPolyline([]geo.Point{geo.Pt(0, 0), geo.Pt(50, 30), geo.Pt(100, 0)})
	sid, err := g.AddSegmentLine(a, b, "curve", line, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	route, err := NewRoute(g, "c", "curvy", ClassRapid, []SegmentID{sid})
	if err != nil {
		t.Fatal(err)
	}
	if err := route.PlaceStopsEvenly(3); err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(g)
	if err := net.AddRoute(route); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteNetwork(&buf, net); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := back.Route("c")
	if math.Abs(r2.Length()-route.Length()) > 1e-9 {
		t.Errorf("curved length lost: %v vs %v", r2.Length(), route.Length())
	}
	if r2.Class() != ClassRapid {
		t.Errorf("class lost: %v", r2.Class())
	}
}

func TestReadNetworkRejectsBadInput(t *testing.T) {
	if _, err := ReadNetwork(strings.NewReader("{oops")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ReadNetwork(strings.NewReader(`{"version":9}`)); err == nil {
		t.Error("future version accepted")
	}
	// Unknown route class.
	bad := `{"version":1,"nodes":[{"pos":{"x":0,"y":0}},{"pos":{"x":10,"y":0}}],
	  "segments":[{"from":0,"to":1,"speedLimit":10}],
	  "routes":[{"id":"r","name":"r","class":"warp","segments":[0]}]}`
	if _, err := ReadNetwork(strings.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "class") {
		t.Errorf("bad class accepted: %v", err)
	}
	// Segment referencing a missing node.
	bad2 := `{"version":1,"nodes":[{"pos":{"x":0,"y":0}}],
	  "segments":[{"from":0,"to":5,"speedLimit":10}],"routes":[]}`
	if _, err := ReadNetwork(strings.NewReader(bad2)); err == nil {
		t.Error("dangling segment accepted")
	}
	// Disconnected route.
	bad3 := `{"version":1,
	  "nodes":[{"pos":{"x":0,"y":0}},{"pos":{"x":10,"y":0}},{"pos":{"x":30,"y":0}},{"pos":{"x":40,"y":0}}],
	  "segments":[{"from":0,"to":1,"speedLimit":10},{"from":2,"to":3,"speedLimit":10}],
	  "routes":[{"id":"r","name":"r","class":"ordinary","segments":[0,1]}]}`
	if _, err := ReadNetwork(strings.NewReader(bad3)); err == nil {
		t.Error("disconnected route accepted")
	}
}
