package roadnet

import (
	"fmt"
	"sort"

	"wilocator/internal/geo"
)

// RouteClass distinguishes rapid transit lines from ordinary buses; the
// classes differ in regular speed and stop spacing (the paper's Rapid Line
// vs routes 9/14/16).
type RouteClass int

// Route classes.
const (
	ClassOrdinary RouteClass = iota + 1
	ClassRapid
)

// String implements fmt.Stringer.
func (c RouteClass) String() string {
	switch c {
	case ClassOrdinary:
		return "ordinary"
	case ClassRapid:
		return "rapid"
	default:
		return fmt.Sprintf("RouteClass(%d)", int(c))
	}
}

// Stop is a bus stop located on a route by arc length from the route start.
type Stop struct {
	Name string  `json:"name"`
	Arc  float64 `json:"arc"` // metres from route start
}

// Route is a bus route: a connected sequence of directed road segments
// (Definition 4) with an ordered list of stops. The first stop lies on the
// first segment and the last stop on the last segment.
type Route struct {
	id    string
	name  string
	class RouteClass

	graph    *Graph
	segIDs   []SegmentID
	segStart []float64 // arc length of each segment's start within the route
	line     *geo.Polyline
	stops    []Stop
}

// NewRoute builds a route over graph g from a chained segment sequence:
// segs[i].To must equal segs[i+1].From.
func NewRoute(g *Graph, id, name string, class RouteClass, segs []SegmentID) (*Route, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("roadnet: route %s has no segments", id)
	}
	if class != ClassOrdinary && class != ClassRapid {
		return nil, fmt.Errorf("roadnet: route %s: invalid class %d", id, int(class))
	}
	segStart := make([]float64, len(segs))
	var line *geo.Polyline
	arc := 0.0
	for i, sid := range segs {
		seg, ok := g.Segment(sid)
		if !ok {
			return nil, fmt.Errorf("roadnet: route %s references unknown segment %d", id, sid)
		}
		if i > 0 {
			prev, _ := g.Segment(segs[i-1])
			if prev.To != seg.From {
				return nil, fmt.Errorf("roadnet: route %s: segment %d->%d: %w", id, segs[i-1], sid, ErrDisconnected)
			}
		}
		segStart[i] = arc
		arc += seg.Length()
		if line == nil {
			line = seg.Line
			continue
		}
		joined, err := line.Concat(seg.Line, 1e-3)
		if err != nil {
			return nil, fmt.Errorf("roadnet: route %s: %w", id, err)
		}
		line = joined
	}
	cp := make([]SegmentID, len(segs))
	copy(cp, segs)
	return &Route{
		id:       id,
		name:     name,
		class:    class,
		graph:    g,
		segIDs:   cp,
		segStart: segStart,
		line:     line,
	}, nil
}

// ID returns the route identifier (e.g. "9").
func (r *Route) ID() string { return r.id }

// Name returns the human-readable route name.
func (r *Route) Name() string { return r.name }

// Class returns the route class.
func (r *Route) Class() RouteClass { return r.class }

// Length returns the total route length in metres.
func (r *Route) Length() float64 { return r.line.Length() }

// Line returns the route geometry as a single polyline.
func (r *Route) Line() *geo.Polyline { return r.line }

// Segments returns the route's segment IDs in travel order.
func (r *Route) Segments() []SegmentID {
	cp := make([]SegmentID, len(r.segIDs))
	copy(cp, r.segIDs)
	return cp
}

// NumSegments returns the number of segments on the route.
func (r *Route) NumSegments() int { return len(r.segIDs) }

// SegmentStartArc returns the arc length at which the idx-th segment of the
// route begins.
func (r *Route) SegmentStartArc(idx int) float64 { return r.segStart[idx] }

// SegmentEndArc returns the arc length at which the idx-th segment ends.
func (r *Route) SegmentEndArc(idx int) float64 {
	if idx+1 < len(r.segStart) {
		return r.segStart[idx+1]
	}
	return r.Length()
}

// SegmentAt locates the arc length s on the route, returning the index into
// the route's segment sequence, the segment ID, and the offset within that
// segment. s is clamped to [0, Length()].
func (r *Route) SegmentAt(s float64) (idx int, id SegmentID, offset float64) {
	if s <= 0 {
		return 0, r.segIDs[0], 0
	}
	if s >= r.Length() {
		last := len(r.segIDs) - 1
		return last, r.segIDs[last], r.Length() - r.segStart[last]
	}
	idx = sort.SearchFloat64s(r.segStart, s)
	// SearchFloat64s returns the first i with segStart[i] >= s; we want the
	// segment containing s.
	if idx == len(r.segStart) || r.segStart[idx] > s {
		idx--
	}
	return idx, r.segIDs[idx], s - r.segStart[idx]
}

// PointAt returns the planar point at arc length s along the route.
func (r *Route) PointAt(s float64) geo.Point { return r.line.At(s) }

// Project returns the arc length of the route point closest to p and the
// Euclidean distance from p to it.
func (r *Route) Project(p geo.Point) (s float64, dist float64) {
	s, _, dist = r.line.Project(p)
	return s, dist
}

// AddStop appends a stop at the given arc length. Stops must be added in
// increasing arc order.
func (r *Route) AddStop(name string, arc float64) error {
	if arc < 0 || arc > r.Length() {
		return fmt.Errorf("roadnet: stop %s at arc %.1f outside route %s [0, %.1f]", name, arc, r.id, r.Length())
	}
	if n := len(r.stops); n > 0 && arc < r.stops[n-1].Arc {
		return fmt.Errorf("roadnet: stop %s at arc %.1f precedes previous stop", name, arc)
	}
	r.stops = append(r.stops, Stop{Name: name, Arc: arc})
	return nil
}

// PlaceStopsEvenly creates n stops spaced evenly from the route start to the
// route end (inclusive), replacing any existing stops.
func (r *Route) PlaceStopsEvenly(n int) error {
	if n < 2 {
		return fmt.Errorf("roadnet: route %s: need at least 2 stops, got %d", r.id, n)
	}
	r.stops = r.stops[:0]
	spacing := r.Length() / float64(n-1)
	for i := 0; i < n; i++ {
		arc := float64(i) * spacing
		if i == n-1 {
			arc = r.Length()
		}
		if err := r.AddStop(fmt.Sprintf("%s-stop-%d", r.id, i+1), arc); err != nil {
			return err
		}
	}
	return nil
}

// Stops returns the route's stops in travel order.
func (r *Route) Stops() []Stop {
	cp := make([]Stop, len(r.stops))
	copy(cp, r.stops)
	return cp
}

// NumStops returns the number of stops on the route.
func (r *Route) NumStops() int { return len(r.stops) }

// StopArc returns the arc length of the i-th stop.
func (r *Route) StopArc(i int) float64 { return r.stops[i].Arc }

// NextStopIndex returns the index of the first stop strictly ahead of arc
// length s, or NumStops() if the route end has been reached.
func (r *Route) NextStopIndex(s float64) int {
	return sort.Search(len(r.stops), func(i int) bool { return r.stops[i].Arc > s })
}
