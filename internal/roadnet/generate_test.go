package roadnet

import (
	"fmt"
	"testing"
)

var generatedForms = []CityForm{CityGrid, CityRadial, CityRiverine}

// TestGeneratedCitiesWellFormed asserts every generated city satisfies the
// structural contract the pipeline depends on: at least three routes, every
// route chained and stop-carrying, and at least one overlapping segment pair
// (the predictor's cross-route correction needs shared corridors).
func TestGeneratedCitiesWellFormed(t *testing.T) {
	for _, form := range generatedForms {
		for _, seed := range []uint64{1, 2, 3} {
			t.Run(fmt.Sprintf("%s-seed%d", form, seed), func(t *testing.T) {
				net, err := BuildCity(CitySpec{Form: form, Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				routes := net.Routes()
				if len(routes) < 3 {
					t.Fatalf("got %d routes, want >= 3", len(routes))
				}
				overlap := 0.0
				for _, r := range routes {
					if r.NumStops() < 2 {
						t.Errorf("route %s has %d stops, want >= 2", r.ID(), r.NumStops())
					}
					if r.Length() < 500 {
						t.Errorf("route %s is %.0f m long, implausibly short", r.ID(), r.Length())
					}
					if r.Stops()[0].Arc != 0 || r.Stops()[r.NumStops()-1].Arc != r.Length() {
						t.Errorf("route %s stops do not span the route", r.ID())
					}
					overlap += net.OverlappedLength(r)
				}
				if overlap == 0 {
					t.Error("no route overlap; the corpus needs shared corridors")
				}
				hasRapid := false
				for _, r := range routes {
					if r.Class() == ClassRapid {
						hasRapid = true
					}
				}
				if !hasRapid {
					t.Error("no rapid route in generated city")
				}
				signals := 0
				for _, seg := range net.Graph.Segments() {
					if seg.Signal {
						signals++
					}
				}
				if signals == 0 {
					t.Error("no signalled intersections")
				}
			})
		}
	}
}

// TestGeneratedCitiesDeterministic pins that one (form, seed) pair always
// yields the same geometry — the foundation of the golden corpus.
func TestGeneratedCitiesDeterministic(t *testing.T) {
	for _, form := range generatedForms {
		t.Run(string(form), func(t *testing.T) {
			a, err := BuildCity(CitySpec{Form: form, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			b, err := BuildCity(CitySpec{Form: form, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if a.Graph.NumNodes() != b.Graph.NumNodes() || a.Graph.NumSegments() != b.Graph.NumSegments() {
				t.Fatalf("graph sizes differ across identical builds")
			}
			for i, seg := range a.Graph.Segments() {
				other := b.Graph.Segments()[i]
				if seg.Length() != other.Length() || seg.SpeedLimit != other.SpeedLimit {
					t.Fatalf("segment %d differs across identical builds", i)
				}
			}
			for i, ra := range a.Routes() {
				rb := b.Routes()[i]
				if ra.ID() != rb.ID() || ra.Length() != rb.Length() || ra.NumStops() != rb.NumStops() {
					t.Fatalf("route %s differs across identical builds", ra.ID())
				}
			}
			c, err := BuildCity(CitySpec{Form: form, Seed: 8})
			if err != nil {
				t.Fatal(err)
			}
			if c.Routes()[0].Length() == a.Routes()[0].Length() {
				t.Errorf("seeds 7 and 8 produced identical first-route length; jitter not applied")
			}
		})
	}
}

// TestBuildCityVancouverAndErrors covers the passthrough form and the
// error paths of the dispatcher.
func TestBuildCityVancouverAndErrors(t *testing.T) {
	net, err := BuildCity(CitySpec{Form: CityVancouver})
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Routes()) == 0 {
		t.Fatal("vancouver passthrough returned no routes")
	}
	if _, err := BuildCity(CitySpec{Form: "hexagonal"}); err == nil {
		t.Fatal("unknown form did not error")
	}
	if _, err := BuildGridCity(GridSpec{Rows: 2, Cols: 2}, 1); err == nil {
		t.Fatal("degenerate grid did not error")
	}
	if _, err := BuildRadialCity(RadialSpec{Spokes: 2}, 1); err == nil {
		t.Fatal("degenerate radial city did not error")
	}
	if _, err := BuildRiverineCity(RiverineSpec{Nodes: 3, Bridges: 3}, 1); err == nil {
		t.Fatal("overbridged riverine city did not error")
	}
}
