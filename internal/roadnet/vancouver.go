package roadnet

import (
	"fmt"
	"math"

	"wilocator/internal/geo"
)

// VancouverSpec parameterises the synthetic Metro-Vancouver corridor network
// that reproduces the paper's Table I. The defaults (see DefaultVancouverSpec)
// yield the published route inventory: a 13 km main corridor ("W Broadway")
// shared by the Rapid Line and routes 9 and 14, a 3.2 km branch shared by
// routes 14 and 16, and per-route unique tails sized so the total lengths
// match the paper.
type VancouverSpec struct {
	// BlockLength is the distance between adjacent intersections on the
	// corridor, i.e. the road-segment granularity of Definition 3.
	BlockLength float64
	// CorridorLength is the length of the main shared corridor.
	CorridorLength float64
	// SignalSpacing places a traffic light at corridor intersections whose
	// position is a multiple of this distance.
	SignalSpacing float64
	// CorridorSpeed and SideSpeed are segment speed limits in m/s.
	CorridorSpeed float64
	SideSpeed     float64
}

// DefaultVancouverSpec returns the parameters used throughout the
// reproduction.
func DefaultVancouverSpec() VancouverSpec {
	return VancouverSpec{
		BlockLength:    250,
		CorridorLength: 13000,
		SignalSpacing:  1000,
		CorridorSpeed:  50 / 3.6,
		SideSpeed:      40 / 3.6,
	}
}

// Route IDs of the Vancouver scenario.
const (
	RouteRapid = "RapidLine"
	Route9     = "9"
	Route14    = "14"
	Route16    = "16"
)

// BuildVancouver constructs the four-route network of Table I. Stop counts
// are exact (19 / 65 / 74 / 91); route lengths and overlapped lengths match
// the paper to within a block.
func BuildVancouver(spec VancouverSpec) (*Network, error) {
	if spec.BlockLength <= 0 || spec.CorridorLength <= 0 {
		return nil, fmt.Errorf("roadnet: invalid spec %+v", spec)
	}
	g := NewGraph()
	b := &builder{g: g, spec: spec}

	// Main corridor along y=0 from x=0 to x=CorridorLength.
	nBlocks := int(math.Round(spec.CorridorLength / spec.BlockLength))
	corridorNodes := make([]NodeID, nBlocks+1)
	for i := range corridorNodes {
		x := float64(i) * spec.BlockLength
		corridorNodes[i] = g.AddNode(geo.Pt(x, 0), fmt.Sprintf("broadway-%d", i))
	}
	corridor := make([]SegmentID, nBlocks)
	for i := 0; i < nBlocks; i++ {
		endX := float64(i+1) * spec.BlockLength
		signal := math.Mod(endX, spec.SignalSpacing) == 0
		id, err := g.AddSegment(corridorNodes[i], corridorNodes[i+1],
			fmt.Sprintf("broadway-%d", i), spec.CorridorSpeed, signal)
		if err != nil {
			return nil, err
		}
		corridor[i] = id
	}
	first, last := corridorNodes[0], corridorNodes[nBlocks]

	// Junction index for route 16 joining the corridor at x = 6750 m.
	joinIdx := int(math.Round(6750 / spec.BlockLength))
	if joinIdx <= 0 || joinIdx >= nBlocks {
		return nil, fmt.Errorf("roadnet: route-16 junction index %d out of corridor", joinIdx)
	}
	joinNode := corridorNodes[joinIdx]

	// Per-route unique tails. Inbound chains end at a corridor node;
	// outbound chains start at one. Directions are unit vectors.
	north, south := geo.Pt(0, 1), geo.Pt(0, -1)
	east, west := geo.Pt(1, 0), geo.Pt(-1, 0)

	rapidW, err := b.chainIn(first, north, 350, "rapid-w")
	if err != nil {
		return nil, err
	}
	rapidE, err := b.chainOut(last, south, 350, "rapid-e")
	if err != nil {
		return nil, err
	}
	r9W, err := b.chainIn(first, west, 1650, "r9-w")
	if err != nil {
		return nil, err
	}
	r9E, err := b.chainOut(last, east, 1650, "r9-e")
	if err != nil {
		return nil, err
	}
	r14W, err := b.chainIn(first, south, 1200, "r14-w")
	if err != nil {
		return nil, err
	}
	// Branch shared by routes 14 and 16: north from the corridor end.
	branch, branchEnd, err := b.chainOutNodes(last, north, 3200, "branch")
	if err != nil {
		return nil, err
	}
	r14E, err := b.chainOut(branchEnd, east, 3200, "r14-e")
	if err != nil {
		return nil, err
	}
	r16S, err := b.chainIn(joinNode, south, 5650, "r16-s")
	if err != nil {
		return nil, err
	}
	r16N, err := b.chainOut(branchEnd, north, 3200, "r16-n")
	if err != nil {
		return nil, err
	}

	net := NewNetwork(g)
	add := func(id, name string, class RouteClass, stops int, segs ...[]SegmentID) error {
		var all []SegmentID
		for _, s := range segs {
			all = append(all, s...)
		}
		r, err := NewRoute(g, id, name, class, all)
		if err != nil {
			return err
		}
		if err := r.PlaceStopsEvenly(stops); err != nil {
			return err
		}
		return net.AddRoute(r)
	}

	if err := add(RouteRapid, "Rapid Line", ClassRapid, 19, rapidW, corridor, rapidE); err != nil {
		return nil, err
	}
	if err := add(Route9, "Route 9", ClassOrdinary, 65, r9W, corridor, r9E); err != nil {
		return nil, err
	}
	if err := add(Route14, "Route 14", ClassOrdinary, 74, r14W, corridor, branch, r14E); err != nil {
		return nil, err
	}
	if err := add(Route16, "Route 16", ClassOrdinary, 91, r16S, corridor[joinIdx:], branch, r16N); err != nil {
		return nil, err
	}
	return net, nil
}

// builder creates block-granular street chains joined to existing nodes.
type builder struct {
	g    *Graph
	spec VancouverSpec
}

// chainIn builds a street of the given length approaching node end from
// direction dir (the street extends from end + dir*length back to end) and
// returns its segments ordered toward end.
func (b *builder) chainIn(end NodeID, dir geo.Point, length float64, name string) ([]SegmentID, error) {
	endNode, ok := b.g.Node(end)
	if !ok {
		return nil, fmt.Errorf("roadnet: chainIn %s: unknown node %d", name, end)
	}
	offsets := b.blockOffsets(length)
	prev := b.g.AddNode(endNode.Pos.Add(dir.Scale(length)), name+"-end")
	var segs []SegmentID
	for i := len(offsets) - 2; i >= 0; i-- {
		var node NodeID
		if offsets[i] == 0 {
			node = end
		} else {
			node = b.g.AddNode(endNode.Pos.Add(dir.Scale(offsets[i])), fmt.Sprintf("%s-%d", name, i))
		}
		id, err := b.g.AddSegment(prev, node, fmt.Sprintf("%s-%d", name, i), b.spec.SideSpeed, offsets[i] == 0)
		if err != nil {
			return nil, err
		}
		segs = append(segs, id)
		prev = node
	}
	return segs, nil
}

// chainOut builds a street of the given length leaving node start along dir
// and returns its segments ordered away from start.
func (b *builder) chainOut(start NodeID, dir geo.Point, length float64, name string) ([]SegmentID, error) {
	segs, _, err := b.chainOutNodes(start, dir, length, name)
	return segs, err
}

// chainOutNodes is chainOut that also returns the terminal node, so further
// chains can continue from it (used for the shared 14/16 branch).
func (b *builder) chainOutNodes(start NodeID, dir geo.Point, length float64, name string) ([]SegmentID, NodeID, error) {
	startNode, ok := b.g.Node(start)
	if !ok {
		return nil, 0, fmt.Errorf("roadnet: chainOut %s: unknown node %d", name, start)
	}
	offsets := b.blockOffsets(length)
	prev := start
	var segs []SegmentID
	for i := 1; i < len(offsets); i++ {
		node := b.g.AddNode(startNode.Pos.Add(dir.Scale(offsets[i])), fmt.Sprintf("%s-%d", name, i))
		id, err := b.g.AddSegment(prev, node, fmt.Sprintf("%s-%d", name, i-1), b.spec.SideSpeed, i < len(offsets)-1)
		if err != nil {
			return nil, 0, err
		}
		segs = append(segs, id)
		prev = node
	}
	return segs, prev, nil
}

// blockOffsets returns cumulative offsets 0, B, 2B, ..., length with the
// final block absorbing any remainder shorter than a block.
func (b *builder) blockOffsets(length float64) []float64 {
	var out []float64
	for off := 0.0; off < length-1e-9; off += b.spec.BlockLength {
		out = append(out, off)
	}
	return append(out, length)
}

// BuildCampus constructs the campus scenario of Table II / Fig. 10: a single
// one-way road segment of the given length along the x-axis, carrying one
// ordinary route with a stop at each end.
func BuildCampus(length float64) (*Network, error) {
	if length <= 0 {
		return nil, fmt.Errorf("roadnet: invalid campus length %v", length)
	}
	g := NewGraph()
	a := g.AddNode(geo.Pt(0, 0), "campus-start")
	c := g.AddNode(geo.Pt(length, 0), "campus-end")
	seg, err := g.AddSegment(a, c, "campus-road", 30/3.6, false)
	if err != nil {
		return nil, err
	}
	r, err := NewRoute(g, "campus", "Campus Shuttle", ClassOrdinary, []SegmentID{seg})
	if err != nil {
		return nil, err
	}
	if err := r.PlaceStopsEvenly(2); err != nil {
		return nil, err
	}
	net := NewNetwork(g)
	if err := net.AddRoute(r); err != nil {
		return nil, err
	}
	return net, nil
}
