package roadnet

// Synthetic city generators for the scenario corpus. The paper evaluates
// WiLocator on four Metro-Vancouver routes plus a campus road; the generators
// here widen that to whole families of street graphs — ring-and-spoke cores,
// Manhattan grids, river towns — so the golden corpus exercises route
// geometries (sharp turns, long straights, bridges, shared corridors) the
// hand-built networks never produce. Every generator is deterministic in its
// seed, places overlapping routes (the predictor's cross-route correction
// needs shared segments), and ends with stops on every route so timetables
// and arrival predictions work unmodified.

import (
	"fmt"
	"math"

	"wilocator/internal/geo"
	"wilocator/internal/xrand"
)

// CityForm selects a street-graph family.
type CityForm string

// Supported city forms.
const (
	// CityVancouver is the hand-built four-route evaluation network
	// (Table I); the seed is ignored.
	CityVancouver CityForm = "vancouver"
	// CityGrid is a Manhattan grid with an east-west rapid line, a
	// north-south ordinary line, and an L-shaped line overlapping both.
	CityGrid CityForm = "grid"
	// CityRadial is a ring-road-free spoke city: routes run through the
	// centre, two of them sharing a full inbound spoke.
	CityRadial CityForm = "radial"
	// CityRiverine is a river town: two meandering bank roads joined by
	// bridges, with a crossing route that shares both banks.
	CityRiverine CityForm = "riverine"
)

// CitySpec selects and parameterises a generated city. The zero value of each
// form spec selects that form's defaults.
type CitySpec struct {
	Form CityForm
	// Seed drives street jitter, speed variation and meander phase.
	Seed     uint64
	Grid     GridSpec
	Radial   RadialSpec
	Riverine RiverineSpec
}

// BuildCity dispatches to the generator named by spec.Form.
func BuildCity(spec CitySpec) (*Network, error) {
	switch spec.Form {
	case CityVancouver:
		return BuildVancouver(DefaultVancouverSpec())
	case CityGrid:
		return BuildGridCity(spec.Grid, spec.Seed)
	case CityRadial:
		return BuildRadialCity(spec.Radial, spec.Seed)
	case CityRiverine:
		return BuildRiverineCity(spec.Riverine, spec.Seed)
	default:
		return nil, fmt.Errorf("roadnet: unknown city form %q", spec.Form)
	}
}

// stopSpacing is the target distance between generated stops.
const stopSpacing = 330.0

// placeStops puts evenly spaced stops on a route, one per ~stopSpacing
// metres and never fewer than two.
func placeStops(r *Route) error {
	n := int(r.Length()/stopSpacing) + 2
	return r.PlaceStopsEvenly(n)
}

// jitterPoint displaces p by a uniform offset in [-j, j] per axis.
func jitterPoint(p geo.Point, j float64, rng *xrand.Rand) geo.Point {
	if j <= 0 {
		return p
	}
	return geo.Pt(p.X+rng.Range(-j, j), p.Y+rng.Range(-j, j))
}

// GridSpec parameterises a Manhattan-grid city. The zero value selects
// defaults.
type GridSpec struct {
	// Rows and Cols are the intersection counts per side. Defaults 5 and 6.
	Rows, Cols int
	// Block is the nominal block length in metres. Default 280.
	Block float64
	// Speed is the free-flow speed limit in m/s. Default 12.
	Speed float64
	// Jitter is the half-width of the per-intersection position noise in
	// metres. Default 10; negative disables.
	Jitter float64
	// SignalEvery places a traffic light at every k-th intersection
	// (by row+column index). Default 3.
	SignalEvery int
}

func (s GridSpec) withDefaults() GridSpec {
	if s.Rows <= 0 {
		s.Rows = 5
	}
	if s.Cols <= 0 {
		s.Cols = 6
	}
	if s.Block <= 0 {
		s.Block = 280
	}
	if s.Speed <= 0 {
		s.Speed = 12
	}
	if s.Jitter == 0 {
		s.Jitter = 10
	}
	if s.SignalEvery <= 0 {
		s.SignalEvery = 3
	}
	return s
}

// BuildGridCity generates a one-way Manhattan grid (eastbound rows,
// northbound columns) with three routes: a rapid east-west line on the middle
// row, an ordinary north-south line on the middle column, and an L-shaped
// ordinary line that shares part of each.
func BuildGridCity(spec GridSpec, seed uint64) (*Network, error) {
	spec = spec.withDefaults()
	if spec.Rows < 3 || spec.Cols < 3 {
		return nil, fmt.Errorf("roadnet: grid needs at least 3x3 intersections, got %dx%d", spec.Rows, spec.Cols)
	}
	rng := xrand.New(seed).Split("grid-city")
	g := NewGraph()

	nodes := make([][]NodeID, spec.Rows)
	for r := 0; r < spec.Rows; r++ {
		nodes[r] = make([]NodeID, spec.Cols)
		for c := 0; c < spec.Cols; c++ {
			p := jitterPoint(geo.Pt(float64(c)*spec.Block, float64(r)*spec.Block), spec.Jitter, rng)
			nodes[r][c] = g.AddNode(p, fmt.Sprintf("x%d-%d", r, c))
		}
	}

	signalled := func(r, c int) bool { return (r+c)%spec.SignalEvery == 0 }

	// east[r][c] runs nodes[r][c] -> nodes[r][c+1]; north[c][r] runs
	// nodes[r][c] -> nodes[r+1][c].
	east := make([][]SegmentID, spec.Rows)
	for r := 0; r < spec.Rows; r++ {
		speed := spec.Speed * rng.Range(0.9, 1.1)
		east[r] = make([]SegmentID, spec.Cols-1)
		for c := 0; c < spec.Cols-1; c++ {
			id, err := g.AddSegment(nodes[r][c], nodes[r][c+1],
				fmt.Sprintf("row-%d-%d", r, c), speed, signalled(r, c+1))
			if err != nil {
				return nil, err
			}
			east[r][c] = id
		}
	}
	north := make([][]SegmentID, spec.Cols)
	for c := 0; c < spec.Cols; c++ {
		speed := spec.Speed * rng.Range(0.85, 1.05)
		north[c] = make([]SegmentID, spec.Rows-1)
		for r := 0; r < spec.Rows-1; r++ {
			id, err := g.AddSegment(nodes[r][c], nodes[r+1][c],
				fmt.Sprintf("col-%d-%d", c, r), speed, signalled(r+1, c))
			if err != nil {
				return nil, err
			}
			north[c][r] = id
		}
	}

	net := NewNetwork(g)
	rm, cm := spec.Rows/2, spec.Cols/2

	ew, err := NewRoute(g, "grid-ew", "Grid East-West Rapid", ClassRapid, east[rm])
	if err != nil {
		return nil, err
	}
	ns, err := NewRoute(g, "grid-ns", "Grid North-South", ClassOrdinary, north[cm])
	if err != nil {
		return nil, err
	}
	var lsegs []SegmentID
	lsegs = append(lsegs, north[0][:rm]...)    // up column 0 to the middle row
	lsegs = append(lsegs, east[rm][:cm]...)    // east along the middle row (shared with grid-ew)
	lsegs = append(lsegs, north[cm][rm:]...)   // up the middle column (shared with grid-ns)
	l, err := NewRoute(g, "grid-l", "Grid L Line", ClassOrdinary, lsegs)
	if err != nil {
		return nil, err
	}
	for _, r := range []*Route{ew, ns, l} {
		if err := placeStops(r); err != nil {
			return nil, err
		}
		if err := net.AddRoute(r); err != nil {
			return nil, err
		}
	}
	return net, nil
}

// RadialSpec parameterises a spoke city. The zero value selects defaults.
type RadialSpec struct {
	// Spokes is the number of arterials meeting at the centre. Default 6;
	// minimum 4.
	Spokes int
	// Rings is the number of intersections per spoke (excluding the
	// centre). Default 5.
	Rings int
	// Block is the nominal spacing between ring intersections in metres.
	// Default 260.
	Block float64
	// Speed is the free-flow speed limit in m/s. Default 11.
	Speed float64
	// AngleJitter is the half-width of the per-spoke bearing noise in
	// radians. Default 0.05; negative disables.
	AngleJitter float64
}

func (s RadialSpec) withDefaults() RadialSpec {
	if s.Spokes <= 0 {
		s.Spokes = 6
	}
	if s.Rings <= 0 {
		s.Rings = 5
	}
	if s.Block <= 0 {
		s.Block = 260
	}
	if s.Speed <= 0 {
		s.Speed = 11
	}
	if s.AngleJitter == 0 {
		s.AngleJitter = 0.05
	}
	return s
}

// BuildRadialCity generates spokes meeting at a signalled centre, with both
// travel directions on every spoke, and three diameter routes through the
// centre. Two of the routes share a full inbound spoke — the strongest
// overlap geometry in the corpus.
func BuildRadialCity(spec RadialSpec, seed uint64) (*Network, error) {
	spec = spec.withDefaults()
	if spec.Spokes < 4 {
		return nil, fmt.Errorf("roadnet: radial city needs at least 4 spokes, got %d", spec.Spokes)
	}
	rng := xrand.New(seed).Split("radial-city")
	g := NewGraph()
	center := g.AddNode(geo.Pt(0, 0), "centre")

	inbound := make([][]SegmentID, spec.Spokes)  // outermost -> centre
	outbound := make([][]SegmentID, spec.Spokes) // centre -> outermost
	for k := 0; k < spec.Spokes; k++ {
		theta := 2*math.Pi*float64(k)/float64(spec.Spokes) + jitterAngle(spec.AngleJitter, rng)
		speed := spec.Speed * rng.Range(0.9, 1.1)
		nodes := []NodeID{center}
		for j := 1; j <= spec.Rings; j++ {
			radius := float64(j) * spec.Block * rng.Range(0.95, 1.05)
			p := geo.Pt(radius*math.Cos(theta), radius*math.Sin(theta))
			nodes = append(nodes, g.AddNode(p, fmt.Sprintf("spoke-%d-%d", k, j)))
		}
		for j := spec.Rings; j >= 1; j-- {
			// Signal at the centre approach and every other ring.
			sig := j == 1 || j%2 == 0
			id, err := g.AddSegment(nodes[j], nodes[j-1],
				fmt.Sprintf("in-%d-%d", k, j), speed, sig)
			if err != nil {
				return nil, err
			}
			inbound[k] = append(inbound[k], id)
		}
		for j := 0; j < spec.Rings; j++ {
			id, err := g.AddSegment(nodes[j], nodes[j+1],
				fmt.Sprintf("out-%d-%d", k, j), speed, j%2 == 1)
			if err != nil {
				return nil, err
			}
			outbound[k] = append(outbound[k], id)
		}
	}

	diameter := func(in, out int) []SegmentID {
		var segs []SegmentID
		segs = append(segs, inbound[in]...)
		segs = append(segs, outbound[out]...)
		return segs
	}
	net := NewNetwork(g)
	half := spec.Spokes / 2
	routes := []struct {
		id, name string
		class    RouteClass
		segs     []SegmentID
	}{
		{"rad-a", "Radial A Rapid", ClassRapid, diameter(0, half)},
		{"rad-b", "Radial B", ClassOrdinary, diameter(1, half+1)},
		// rad-c shares the entire inbound spoke 0 with rad-a.
		{"rad-c", "Radial C", ClassOrdinary, diameter(0, spec.Spokes-1)},
	}
	for _, rs := range routes {
		r, err := NewRoute(g, rs.id, rs.name, rs.class, rs.segs)
		if err != nil {
			return nil, err
		}
		if err := placeStops(r); err != nil {
			return nil, err
		}
		if err := net.AddRoute(r); err != nil {
			return nil, err
		}
	}
	return net, nil
}

func jitterAngle(j float64, rng *xrand.Rand) float64 {
	if j <= 0 {
		return 0
	}
	return rng.Range(-j, j)
}

// RiverineSpec parameterises a river town. The zero value selects defaults.
type RiverineSpec struct {
	// Nodes is the number of intersections per bank. Default 13.
	Nodes int
	// Block is the nominal along-bank spacing in metres. Default 300.
	Block float64
	// Gap is the distance between the two bank roads in metres. Default 220.
	Gap float64
	// Bridges is the number of river crossings. Default 3.
	Bridges int
	// Amp and Wavelength shape the banks' shared meander in metres.
	// Defaults 80 and 1500.
	Amp, Wavelength float64
	// Speed is the free-flow speed limit in m/s. Default 12.5.
	Speed float64
}

func (s RiverineSpec) withDefaults() RiverineSpec {
	if s.Nodes <= 0 {
		s.Nodes = 13
	}
	if s.Block <= 0 {
		s.Block = 300
	}
	if s.Gap <= 0 {
		s.Gap = 220
	}
	if s.Bridges <= 0 {
		s.Bridges = 3
	}
	if s.Amp <= 0 {
		s.Amp = 80
	}
	if s.Wavelength <= 0 {
		s.Wavelength = 1500
	}
	if s.Speed <= 0 {
		s.Speed = 12.5
	}
	return s
}

// BuildRiverineCity generates two eastbound bank roads following a shared
// sine meander (seeded phase), northbound bridges between them, and three
// routes: one per bank plus a crossing route that runs the south bank, takes
// the first bridge, and finishes on the north bank — overlapping both bank
// routes.
func BuildRiverineCity(spec RiverineSpec, seed uint64) (*Network, error) {
	spec = spec.withDefaults()
	if spec.Nodes < 4 {
		return nil, fmt.Errorf("roadnet: riverine city needs at least 4 nodes per bank, got %d", spec.Nodes)
	}
	if spec.Bridges > spec.Nodes-2 {
		return nil, fmt.Errorf("roadnet: %d bridges do not fit %d bank nodes", spec.Bridges, spec.Nodes)
	}
	rng := xrand.New(seed).Split("riverine-city")
	phase := rng.Range(0, 2*math.Pi)
	g := NewGraph()

	bankY := func(x, half float64) float64 {
		return half + spec.Amp*math.Sin(2*math.Pi*x/spec.Wavelength+phase)
	}
	northN := make([]NodeID, spec.Nodes)
	southN := make([]NodeID, spec.Nodes)
	for i := 0; i < spec.Nodes; i++ {
		x := float64(i) * spec.Block
		northN[i] = g.AddNode(geo.Pt(x, bankY(x, spec.Gap/2)), fmt.Sprintf("north-%d", i))
		southN[i] = g.AddNode(geo.Pt(x, bankY(x, -spec.Gap/2)), fmt.Sprintf("south-%d", i))
	}

	bridgeAt := make(map[int]bool)
	for j := 0; j < spec.Bridges; j++ {
		bridgeAt[(j+1)*spec.Nodes/(spec.Bridges+1)] = true
	}

	nSegs := make([]SegmentID, spec.Nodes-1)
	sSegs := make([]SegmentID, spec.Nodes-1)
	nSpeed := spec.Speed * rng.Range(0.95, 1.1)
	sSpeed := spec.Speed * rng.Range(0.85, 1.0)
	for i := 0; i < spec.Nodes-1; i++ {
		// Lights at bridge landings and every 4th riverside block.
		sig := bridgeAt[i+1] || (i+1)%4 == 0
		id, err := g.AddSegment(northN[i], northN[i+1], fmt.Sprintf("nbank-%d", i), nSpeed, sig)
		if err != nil {
			return nil, err
		}
		nSegs[i] = id
		id, err = g.AddSegment(southN[i], southN[i+1], fmt.Sprintf("sbank-%d", i), sSpeed, sig)
		if err != nil {
			return nil, err
		}
		sSegs[i] = id
	}
	bridges := make(map[int]SegmentID)
	for i := range bridgeAt {
		id, err := g.AddSegment(southN[i], northN[i], fmt.Sprintf("bridge-%d", i), spec.Speed*0.8, true)
		if err != nil {
			return nil, err
		}
		bridges[i] = id
	}

	// The crossing route takes the first (westmost) bridge.
	firstBridge := spec.Nodes
	for i := range bridges {
		if i < firstBridge {
			firstBridge = i
		}
	}
	var crossSegs []SegmentID
	crossSegs = append(crossSegs, sSegs[:firstBridge]...)
	crossSegs = append(crossSegs, bridges[firstBridge])
	crossSegs = append(crossSegs, nSegs[firstBridge:]...)

	net := NewNetwork(g)
	routes := []struct {
		id, name string
		class    RouteClass
		segs     []SegmentID
	}{
		{"riv-north", "North Bank Rapid", ClassRapid, nSegs},
		{"riv-south", "South Bank", ClassOrdinary, sSegs},
		{"riv-cross", "River Crossing", ClassOrdinary, crossSegs},
	}
	for _, rs := range routes {
		r, err := NewRoute(g, rs.id, rs.name, rs.class, rs.segs)
		if err != nil {
			return nil, err
		}
		if err := placeStops(r); err != nil {
			return nil, err
		}
		if err := net.AddRoute(r); err != nil {
			return nil, err
		}
	}
	return net, nil
}
