package roadnet

import (
	"math"
	"testing"
)

func buildVancouver(t *testing.T) *Network {
	t.Helper()
	net, err := BuildVancouver(DefaultVancouverSpec())
	if err != nil {
		t.Fatalf("BuildVancouver: %v", err)
	}
	return net
}

// TestTableI checks the synthetic network reproduces the paper's Table I:
// stop counts exactly, lengths and overlapped lengths within 100 m.
func TestTableI(t *testing.T) {
	net := buildVancouver(t)
	want := []RouteInfo{
		{Name: "Rapid Line", Stops: 19, LengthKm: 13.7, OverlapKm: 13.0},
		{Name: "Route 9", Stops: 65, LengthKm: 16.3, OverlapKm: 13.0},
		{Name: "Route 14", Stops: 74, LengthKm: 20.6, OverlapKm: 16.2},
		{Name: "Route 16", Stops: 91, LengthKm: 18.3, OverlapKm: 9.5},
	}
	got := net.TableI()
	if len(got) != len(want) {
		t.Fatalf("TableI has %d rows, want %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.Name != w.Name || g.Stops != w.Stops {
			t.Errorf("row %d: got %q/%d stops, want %q/%d", i, g.Name, g.Stops, w.Name, w.Stops)
		}
		if math.Abs(g.LengthKm-w.LengthKm) > 0.1 {
			t.Errorf("%s: length %.2f km, want %.1f km", w.Name, g.LengthKm, w.LengthKm)
		}
		if math.Abs(g.OverlapKm-w.OverlapKm) > 0.1 {
			t.Errorf("%s: overlap %.2f km, want %.1f km", w.Name, g.OverlapKm, w.OverlapKm)
		}
	}
}

func TestVancouverRouteConnectivity(t *testing.T) {
	net := buildVancouver(t)
	for _, r := range net.Routes() {
		segs := r.Segments()
		for i := 1; i < len(segs); i++ {
			prev, _ := net.Graph.Segment(segs[i-1])
			cur, _ := net.Graph.Segment(segs[i])
			if prev.To != cur.From {
				t.Errorf("route %s: segment chain broken at %d", r.ID(), i)
			}
		}
		// Stops must span the full route.
		if r.StopArc(0) != 0 || math.Abs(r.StopArc(r.NumStops()-1)-r.Length()) > 1e-6 {
			t.Errorf("route %s: terminal stops misplaced", r.ID())
		}
	}
}

func TestVancouverOverlapRelation(t *testing.T) {
	net := buildVancouver(t)
	rapid, _ := net.Route(RouteRapid)
	r16, _ := net.Route(Route16)

	// Every corridor segment of the Rapid Line (all but its 4 tail blocks)
	// must be shared with routes 9 and 14 at least.
	shared := 0
	for _, sid := range rapid.Segments() {
		routes := net.RoutesOnSegment(sid)
		if len(routes) >= 3 {
			shared++
		}
	}
	if shared < 50 {
		t.Errorf("only %d rapid segments shared by >=3 routes", shared)
	}

	// Route 16's branch segments must be shared with exactly route 14.
	last := r16.Segments()
	branchSeen := false
	for _, sid := range last {
		routes := net.RoutesOnSegment(sid)
		if len(routes) == 2 && routes[0] == Route14 && routes[1] == Route16 {
			branchSeen = true
		}
	}
	if !branchSeen {
		t.Error("no segment shared exclusively by routes 14 and 16")
	}
}

func TestVancouverSignals(t *testing.T) {
	net := buildVancouver(t)
	signals := 0
	for _, seg := range net.Graph.Segments() {
		if seg.Signal {
			signals++
		}
	}
	if signals == 0 {
		t.Error("network has no traffic lights")
	}
}

func TestBuildVancouverBadSpec(t *testing.T) {
	if _, err := BuildVancouver(VancouverSpec{}); err == nil {
		t.Error("zero spec accepted")
	}
}

func TestBuildCampus(t *testing.T) {
	net, err := BuildCampus(260)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := net.Route("campus")
	if !ok {
		t.Fatal("campus route missing")
	}
	if r.Length() != 260 || r.NumStops() != 2 {
		t.Errorf("campus route: length %v, stops %d", r.Length(), r.NumStops())
	}
	if _, err := BuildCampus(0); err == nil {
		t.Error("zero-length campus accepted")
	}
}

func TestNetworkDuplicateRoute(t *testing.T) {
	net := buildVancouver(t)
	r := net.Routes()[0]
	if err := net.AddRoute(r); err == nil {
		t.Error("duplicate route id accepted")
	}
	if _, ok := net.Route("nope"); ok {
		t.Error("unknown route id found")
	}
}
