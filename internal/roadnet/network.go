package roadnet

import (
	"fmt"
	"sort"
)

// Network bundles a road graph with the bus routes operating on it.
type Network struct {
	Graph  *Graph
	routes []*Route
	byID   map[string]*Route
}

// NewNetwork creates a network over the given graph.
func NewNetwork(g *Graph) *Network {
	return &Network{Graph: g, byID: make(map[string]*Route)}
}

// AddRoute registers a route. Route IDs must be unique.
func (n *Network) AddRoute(r *Route) error {
	if _, dup := n.byID[r.ID()]; dup {
		return fmt.Errorf("roadnet: duplicate route id %q", r.ID())
	}
	n.routes = append(n.routes, r)
	n.byID[r.ID()] = r
	return nil
}

// Route returns the route with the given ID.
func (n *Network) Route(id string) (*Route, bool) {
	r, ok := n.byID[id]
	return r, ok
}

// Routes returns all routes in registration order. The slice is a copy.
func (n *Network) Routes() []*Route {
	cp := make([]*Route, len(n.routes))
	copy(cp, n.routes)
	return cp
}

// RoutesOnSegment returns the IDs of routes whose path includes segment id,
// sorted for determinism. This is the overlap relation the predictor
// exploits: all these routes' travel times on the segment inform each other.
func (n *Network) RoutesOnSegment(id SegmentID) []string {
	var out []string
	for _, r := range n.routes {
		for _, sid := range r.segIDs {
			if sid == id {
				out = append(out, r.ID())
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// OverlappedLength returns the total length of route r's segments that are
// shared with at least one other route in the network (Table I's
// "Overlapped Length" column).
func (n *Network) OverlappedLength(r *Route) float64 {
	total := 0.0
	for _, sid := range r.segIDs {
		if len(n.RoutesOnSegment(sid)) >= 2 {
			seg, _ := n.Graph.Segment(sid)
			total += seg.Length()
		}
	}
	return total
}

// RouteInfo is one row of the paper's Table I.
type RouteInfo struct {
	Name      string  `json:"name"`
	Stops     int     `json:"stops"`
	LengthKm  float64 `json:"lengthKm"`
	OverlapKm float64 `json:"overlapKm"`
}

// TableI computes the route-inventory table (paper Table I) for the
// network's routes, in registration order.
func (n *Network) TableI() []RouteInfo {
	out := make([]RouteInfo, 0, len(n.routes))
	for _, r := range n.routes {
		out = append(out, RouteInfo{
			Name:      r.Name(),
			Stops:     r.NumStops(),
			LengthKm:  r.Length() / 1000,
			OverlapKm: n.OverlappedLength(r) / 1000,
		})
	}
	return out
}
