package roadnet

import (
	"encoding/json"
	"fmt"
	"io"

	"wilocator/internal/geo"
)

// networkVersion guards the network file format.
const networkVersion = 1

// networkFile is the JSON schema for a serialised network: the inputs a
// transit agency actually has (intersections, road segments, route segment
// sequences, stop positions), so real city data can replace the synthetic
// generators.
type networkFile struct {
	Version  int           `json:"version"`
	Nodes    []nodeFile    `json:"nodes"`
	Segments []segmentFile `json:"segments"`
	Routes   []routeFile   `json:"routes"`
}

type nodeFile struct {
	Pos  geo.Point `json:"pos"`
	Name string    `json:"name"`
}

type segmentFile struct {
	From       NodeID      `json:"from"`
	To         NodeID      `json:"to"`
	Name       string      `json:"name"`
	SpeedLimit float64     `json:"speedLimit"`
	Signal     bool        `json:"signal"`
	Points     []geo.Point `json:"points,omitempty"` // omitted = straight line
}

type routeFile struct {
	ID       string      `json:"id"`
	Name     string      `json:"name"`
	Class    string      `json:"class"`
	Segments []SegmentID `json:"segments"`
	Stops    []stopFile  `json:"stops"`
}

type stopFile struct {
	Name string  `json:"name"`
	Arc  float64 `json:"arc"`
}

// WriteNetwork serialises a network as JSON. Segment and node IDs are their
// slice positions, so files are stable and human-editable.
func WriteNetwork(w io.Writer, net *Network) error {
	nf := networkFile{Version: networkVersion}
	g := net.Graph
	for i := 0; i < g.NumNodes(); i++ {
		n, _ := g.Node(NodeID(i))
		nf.Nodes = append(nf.Nodes, nodeFile{Pos: n.Pos, Name: n.Name})
	}
	for _, seg := range g.Segments() {
		sf := segmentFile{
			From:       seg.From,
			To:         seg.To,
			Name:       seg.Name,
			SpeedLimit: seg.SpeedLimit,
			Signal:     seg.Signal,
		}
		// Straight two-vertex lines are reconstructed from the node
		// positions; anything else carries explicit geometry.
		if seg.Line.NumVertices() > 2 {
			sf.Points = seg.Line.Points()
		}
		nf.Segments = append(nf.Segments, sf)
	}
	for _, route := range net.Routes() {
		rf := routeFile{
			ID:       route.ID(),
			Name:     route.Name(),
			Class:    route.Class().String(),
			Segments: route.Segments(),
		}
		for _, stop := range route.Stops() {
			rf.Stops = append(rf.Stops, stopFile{Name: stop.Name, Arc: stop.Arc})
		}
		nf.Routes = append(nf.Routes, rf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(nf); err != nil {
		return fmt.Errorf("roadnet: encode network: %w", err)
	}
	return nil
}

// ReadNetwork loads a network previously written by WriteNetwork (or
// hand-authored in the same schema).
func ReadNetwork(r io.Reader) (*Network, error) {
	var nf networkFile
	if err := json.NewDecoder(r).Decode(&nf); err != nil {
		return nil, fmt.Errorf("roadnet: decode network: %w", err)
	}
	if nf.Version != networkVersion {
		return nil, fmt.Errorf("roadnet: network file version %d, want %d", nf.Version, networkVersion)
	}
	g := NewGraph()
	for _, n := range nf.Nodes {
		g.AddNode(n.Pos, n.Name)
	}
	for i, sf := range nf.Segments {
		var err error
		if len(sf.Points) > 0 {
			line, plErr := geo.NewPolyline(sf.Points)
			if plErr != nil {
				return nil, fmt.Errorf("roadnet: segment %d geometry: %w", i, plErr)
			}
			_, err = g.AddSegmentLine(sf.From, sf.To, sf.Name, line, sf.SpeedLimit, sf.Signal)
		} else {
			_, err = g.AddSegment(sf.From, sf.To, sf.Name, sf.SpeedLimit, sf.Signal)
		}
		if err != nil {
			return nil, fmt.Errorf("roadnet: segment %d: %w", i, err)
		}
	}
	net := NewNetwork(g)
	for _, rf := range nf.Routes {
		class, err := parseClass(rf.Class)
		if err != nil {
			return nil, fmt.Errorf("roadnet: route %q: %w", rf.ID, err)
		}
		route, err := NewRoute(g, rf.ID, rf.Name, class, rf.Segments)
		if err != nil {
			return nil, err
		}
		for _, st := range rf.Stops {
			if err := route.AddStop(st.Name, st.Arc); err != nil {
				return nil, fmt.Errorf("roadnet: route %q: %w", rf.ID, err)
			}
		}
		if err := net.AddRoute(route); err != nil {
			return nil, err
		}
	}
	return net, nil
}

func parseClass(s string) (RouteClass, error) {
	switch s {
	case "ordinary":
		return ClassOrdinary, nil
	case "rapid":
		return ClassRapid, nil
	default:
		return 0, fmt.Errorf("unknown route class %q", s)
	}
}
