// Package roadnet models the urban road network and bus routes of the
// WiLocator paper: a directed graph of road segments between adjacent
// intersections (Definition 3), bus routes as connected directed segment
// sequences with stops (Definition 4), overlap analysis between routes, and
// synthetic network generators that reproduce the paper's evaluation
// scenarios (Table I's four Metro-Vancouver routes and the campus road of
// Table II / Fig. 10).
package roadnet

import (
	"errors"
	"fmt"

	"wilocator/internal/geo"
)

// NodeID identifies an intersection or road terminal in a Graph.
type NodeID int

// SegmentID identifies a directed road segment in a Graph.
type SegmentID int

// Node is an intersection or road terminal (a vertex of Definition 3).
type Node struct {
	ID   NodeID    `json:"id"`
	Pos  geo.Point `json:"pos"`
	Name string    `json:"name"`
}

// Segment is a directed road segment between two adjacent nodes (an edge of
// Definition 3). Its geometry is a polyline from the From node to the To
// node.
type Segment struct {
	ID         SegmentID
	From, To   NodeID
	Name       string
	Line       *geo.Polyline
	SpeedLimit float64 // free-flow speed limit, m/s
	Signal     bool    // traffic light at the To intersection
}

// Length returns the segment's arc length in metres.
func (s *Segment) Length() float64 { return s.Line.Length() }

// Graph is a directed road network. The zero value is not usable; construct
// with NewGraph.
type Graph struct {
	nodes []Node
	segs  []*Segment
	out   map[NodeID][]SegmentID
}

// NewGraph returns an empty road network.
func NewGraph() *Graph {
	return &Graph{out: make(map[NodeID][]SegmentID)}
}

// AddNode adds an intersection/terminal and returns its ID.
func (g *Graph) AddNode(pos geo.Point, name string) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Pos: pos, Name: name})
	return id
}

// AddSegment adds a straight directed road segment between two existing
// nodes.
func (g *Graph) AddSegment(from, to NodeID, name string, speedLimit float64, signal bool) (SegmentID, error) {
	fn, ok := g.Node(from)
	if !ok {
		return 0, fmt.Errorf("roadnet: unknown from node %d", from)
	}
	tn, ok := g.Node(to)
	if !ok {
		return 0, fmt.Errorf("roadnet: unknown to node %d", to)
	}
	line, err := geo.NewPolyline([]geo.Point{fn.Pos, tn.Pos})
	if err != nil {
		return 0, fmt.Errorf("roadnet: segment %s: %w", name, err)
	}
	return g.addSegment(from, to, name, line, speedLimit, signal)
}

// AddSegmentLine adds a directed road segment with explicit geometry. The
// polyline endpoints must coincide with the node positions (within 1 mm).
func (g *Graph) AddSegmentLine(from, to NodeID, name string, line *geo.Polyline, speedLimit float64, signal bool) (SegmentID, error) {
	fn, ok := g.Node(from)
	if !ok {
		return 0, fmt.Errorf("roadnet: unknown from node %d", from)
	}
	tn, ok := g.Node(to)
	if !ok {
		return 0, fmt.Errorf("roadnet: unknown to node %d", to)
	}
	const tol = 1e-3
	if line.Start().Dist(fn.Pos) > tol || line.End().Dist(tn.Pos) > tol {
		return 0, fmt.Errorf("roadnet: segment %s geometry does not join its nodes", name)
	}
	return g.addSegment(from, to, name, line, speedLimit, signal)
}

func (g *Graph) addSegment(from, to NodeID, name string, line *geo.Polyline, speedLimit float64, signal bool) (SegmentID, error) {
	if speedLimit <= 0 {
		return 0, fmt.Errorf("roadnet: segment %s: non-positive speed limit", name)
	}
	id := SegmentID(len(g.segs))
	g.segs = append(g.segs, &Segment{
		ID:         id,
		From:       from,
		To:         to,
		Name:       name,
		Line:       line,
		SpeedLimit: speedLimit,
		Signal:     signal,
	})
	g.out[from] = append(g.out[from], id)
	return id, nil
}

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) (Node, bool) {
	if id < 0 || int(id) >= len(g.nodes) {
		return Node{}, false
	}
	return g.nodes[id], true
}

// Segment returns the segment with the given ID.
func (g *Graph) Segment(id SegmentID) (*Segment, bool) {
	if id < 0 || int(id) >= len(g.segs) {
		return nil, false
	}
	return g.segs[id], true
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumSegments returns the number of segments.
func (g *Graph) NumSegments() int { return len(g.segs) }

// Segments returns all segments in ID order. The returned slice is shared;
// callers must not modify it.
func (g *Graph) Segments() []*Segment { return g.segs }

// OutSegments returns the IDs of segments leaving node n.
func (g *Graph) OutSegments(n NodeID) []SegmentID {
	ids := g.out[n]
	cp := make([]SegmentID, len(ids))
	copy(cp, ids)
	return cp
}

// ErrDisconnected is returned when a route's segments do not chain
// end-to-start.
var ErrDisconnected = errors.New("roadnet: route segments are not connected")
