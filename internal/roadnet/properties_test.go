package roadnet

import (
	"math"
	"testing"
	"testing/quick"
)

// TestSegmentAtConsistency: for any arc s on any Vancouver route, SegmentAt
// returns an index whose [start, end] arc range contains s and an offset
// that reproduces s.
func TestSegmentAtConsistency(t *testing.T) {
	net := buildVancouver(t)
	for _, route := range net.Routes() {
		r := route
		f := func(raw float64) bool {
			if math.IsNaN(raw) || math.IsInf(raw, 0) {
				return true
			}
			s := math.Mod(math.Abs(raw), r.Length())
			idx, id, off := r.SegmentAt(s)
			if idx < 0 || idx >= r.NumSegments() {
				return false
			}
			if id != r.Segments()[idx] {
				return false
			}
			start, end := r.SegmentStartArc(idx), r.SegmentEndArc(idx)
			if s < start-1e-9 || s > end+1e-9 {
				return false
			}
			return math.Abs(start+off-s) < 1e-6
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("route %s: %v", route.ID(), err)
		}
	}
}

// TestPointAtProjectInverse: projecting a route point back onto the route
// recovers the arc length (within tolerance at overlapping geometry).
func TestPointAtProjectInverse(t *testing.T) {
	net := buildVancouver(t)
	route, _ := net.Route(RouteRapid)
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		s := math.Mod(math.Abs(raw), route.Length())
		p := route.PointAt(s)
		got, dist := route.Project(p)
		if dist > 1e-6 {
			return false
		}
		// The rapid route's tails touch the corridor at shared vertices;
		// projection may legitimately land on either. Accept exact-point
		// matches.
		return route.PointAt(got).Dist(p) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSegmentEndArcsTile: segment arc ranges tile [0, Length] without gaps.
func TestSegmentEndArcsTile(t *testing.T) {
	net := buildVancouver(t)
	for _, route := range net.Routes() {
		prev := 0.0
		for i := 0; i < route.NumSegments(); i++ {
			if got := route.SegmentStartArc(i); math.Abs(got-prev) > 1e-9 {
				t.Fatalf("route %s: segment %d starts at %v, want %v", route.ID(), i, got, prev)
			}
			end := route.SegmentEndArc(i)
			if end <= prev {
				t.Fatalf("route %s: segment %d empty", route.ID(), i)
			}
			prev = end
		}
		if math.Abs(prev-route.Length()) > 1e-6 {
			t.Fatalf("route %s: segments end at %v, length %v", route.ID(), prev, route.Length())
		}
	}
}

// TestNextStopIndexMonotone: NextStopIndex is non-decreasing in arc and
// consistent with StopArc.
func TestNextStopIndexMonotone(t *testing.T) {
	net := buildVancouver(t)
	route, _ := net.Route(Route9)
	prevIdx := 0
	for s := 0.0; s <= route.Length(); s += 97 {
		idx := route.NextStopIndex(s)
		if idx < prevIdx {
			t.Fatalf("NextStopIndex regressed at %v", s)
		}
		if idx < route.NumStops() && route.StopArc(idx) <= s {
			t.Fatalf("stop %d at %v not ahead of %v", idx, route.StopArc(idx), s)
		}
		if idx > 0 && route.StopArc(idx-1) > s {
			t.Fatalf("stop %d at %v wrongly skipped at %v", idx-1, route.StopArc(idx-1), s)
		}
		prevIdx = idx
	}
}
