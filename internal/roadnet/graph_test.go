package roadnet

import (
	"testing"

	"wilocator/internal/geo"
)

func twoNodeGraph(t *testing.T) (*Graph, NodeID, NodeID) {
	t.Helper()
	g := NewGraph()
	a := g.AddNode(geo.Pt(0, 0), "a")
	b := g.AddNode(geo.Pt(100, 0), "b")
	return g, a, b
}

func TestAddSegment(t *testing.T) {
	g, a, b := twoNodeGraph(t)
	id, err := g.AddSegment(a, b, "ab", 10, true)
	if err != nil {
		t.Fatal(err)
	}
	seg, ok := g.Segment(id)
	if !ok {
		t.Fatal("segment not found")
	}
	if seg.Length() != 100 {
		t.Errorf("Length = %v, want 100", seg.Length())
	}
	if seg.From != a || seg.To != b || !seg.Signal {
		t.Errorf("segment fields wrong: %+v", seg)
	}
	if got := g.OutSegments(a); len(got) != 1 || got[0] != id {
		t.Errorf("OutSegments(a) = %v", got)
	}
	if got := g.OutSegments(b); len(got) != 0 {
		t.Errorf("OutSegments(b) = %v, want empty", got)
	}
}

func TestAddSegmentErrors(t *testing.T) {
	g, a, b := twoNodeGraph(t)
	if _, err := g.AddSegment(99, b, "bad", 10, false); err == nil {
		t.Error("unknown from node: want error")
	}
	if _, err := g.AddSegment(a, 99, "bad", 10, false); err == nil {
		t.Error("unknown to node: want error")
	}
	if _, err := g.AddSegment(a, b, "bad", 0, false); err == nil {
		t.Error("zero speed limit: want error")
	}
}

func TestAddSegmentLineValidatesJoin(t *testing.T) {
	g, a, b := twoNodeGraph(t)
	good := geo.MustPolyline([]geo.Point{geo.Pt(0, 0), geo.Pt(50, 20), geo.Pt(100, 0)})
	if _, err := g.AddSegmentLine(a, b, "curvy", good, 10, false); err != nil {
		t.Errorf("valid geometry rejected: %v", err)
	}
	bad := geo.MustPolyline([]geo.Point{geo.Pt(5, 5), geo.Pt(100, 0)})
	if _, err := g.AddSegmentLine(a, b, "offset", bad, 10, false); err == nil {
		t.Error("disjoint geometry accepted")
	}
}

func TestNodeSegmentLookupBounds(t *testing.T) {
	g, _, _ := twoNodeGraph(t)
	if _, ok := g.Node(-1); ok {
		t.Error("Node(-1) should miss")
	}
	if _, ok := g.Node(2); ok {
		t.Error("Node(2) should miss")
	}
	if _, ok := g.Segment(0); ok {
		t.Error("Segment(0) on empty graph should miss")
	}
	if g.NumNodes() != 2 || g.NumSegments() != 0 {
		t.Errorf("counts = %d nodes, %d segments", g.NumNodes(), g.NumSegments())
	}
}

func TestOutSegmentsIsCopy(t *testing.T) {
	g, a, b := twoNodeGraph(t)
	if _, err := g.AddSegment(a, b, "ab", 10, false); err != nil {
		t.Fatal(err)
	}
	got := g.OutSegments(a)
	got[0] = 999
	if g.OutSegments(a)[0] == 999 {
		t.Error("OutSegments exposed internal slice")
	}
}
