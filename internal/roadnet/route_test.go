package roadnet

import (
	"errors"
	"math"
	"testing"

	"wilocator/internal/geo"
)

// chainGraph builds a 3-segment L-shaped route: 100 m + 100 m east, then
// 50 m north.
func chainGraph(t *testing.T) (*Graph, []SegmentID) {
	t.Helper()
	g := NewGraph()
	n0 := g.AddNode(geo.Pt(0, 0), "n0")
	n1 := g.AddNode(geo.Pt(100, 0), "n1")
	n2 := g.AddNode(geo.Pt(200, 0), "n2")
	n3 := g.AddNode(geo.Pt(200, 50), "n3")
	ids := make([]SegmentID, 3)
	var err error
	for i, pair := range [][2]NodeID{{n0, n1}, {n1, n2}, {n2, n3}} {
		ids[i], err = g.AddSegment(pair[0], pair[1], "s", 10, i == 1)
		if err != nil {
			t.Fatal(err)
		}
	}
	return g, ids
}

func TestNewRouteValidation(t *testing.T) {
	g, ids := chainGraph(t)
	if _, err := NewRoute(g, "r", "r", ClassOrdinary, nil); err == nil {
		t.Error("empty route accepted")
	}
	if _, err := NewRoute(g, "r", "r", RouteClass(0), ids); err == nil {
		t.Error("invalid class accepted")
	}
	if _, err := NewRoute(g, "r", "r", ClassOrdinary, []SegmentID{ids[0], ids[2]}); !errors.Is(err, ErrDisconnected) {
		t.Errorf("disconnected route: err = %v, want ErrDisconnected", err)
	}
	if _, err := NewRoute(g, "r", "r", ClassOrdinary, []SegmentID{99}); err == nil {
		t.Error("unknown segment accepted")
	}
}

func TestRouteGeometry(t *testing.T) {
	g, ids := chainGraph(t)
	r, err := NewRoute(g, "r", "Test", ClassRapid, ids)
	if err != nil {
		t.Fatal(err)
	}
	if r.Length() != 250 {
		t.Errorf("Length = %v, want 250", r.Length())
	}
	if r.Class() != ClassRapid || r.ID() != "r" || r.Name() != "Test" {
		t.Errorf("metadata wrong: %v %v %v", r.Class(), r.ID(), r.Name())
	}
	if got := r.PointAt(225); got.Dist(geo.Pt(200, 25)) > 1e-9 {
		t.Errorf("PointAt(225) = %v", got)
	}
	if s, d := r.Project(geo.Pt(150, -8)); math.Abs(s-150) > 1e-9 || math.Abs(d-8) > 1e-9 {
		t.Errorf("Project = (%v, %v), want (150, 8)", s, d)
	}
}

func TestRouteSegmentAt(t *testing.T) {
	g, ids := chainGraph(t)
	r, err := NewRoute(g, "r", "r", ClassOrdinary, ids)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		s          float64
		wantIdx    int
		wantOffset float64
	}{
		{-5, 0, 0},
		{0, 0, 0},
		{50, 0, 50},
		{100, 1, 0},
		{199.5, 1, 99.5},
		{200, 2, 0},
		{250, 2, 50},
		{300, 2, 50},
	}
	for _, tt := range tests {
		idx, id, off := r.SegmentAt(tt.s)
		if idx != tt.wantIdx || math.Abs(off-tt.wantOffset) > 1e-9 {
			t.Errorf("SegmentAt(%v) = (idx=%d, off=%v), want (%d, %v)",
				tt.s, idx, off, tt.wantIdx, tt.wantOffset)
		}
		if id != ids[tt.wantIdx] {
			t.Errorf("SegmentAt(%v) id = %d, want %d", tt.s, id, ids[tt.wantIdx])
		}
	}
	if a := r.SegmentStartArc(2); a != 200 {
		t.Errorf("SegmentStartArc(2) = %v, want 200", a)
	}
	if a := r.SegmentEndArc(1); a != 200 {
		t.Errorf("SegmentEndArc(1) = %v, want 200", a)
	}
	if a := r.SegmentEndArc(2); a != 250 {
		t.Errorf("SegmentEndArc(2) = %v, want 250", a)
	}
}

func TestRouteStops(t *testing.T) {
	g, ids := chainGraph(t)
	r, err := NewRoute(g, "r", "r", ClassOrdinary, ids)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddStop("a", 10); err != nil {
		t.Fatal(err)
	}
	if err := r.AddStop("b", 240); err != nil {
		t.Fatal(err)
	}
	if err := r.AddStop("bad", 100); err == nil {
		t.Error("out-of-order stop accepted")
	}
	if err := r.AddStop("bad", 9999); err == nil {
		t.Error("stop beyond route accepted")
	}
	if r.NumStops() != 2 || r.StopArc(1) != 240 {
		t.Errorf("stops = %v", r.Stops())
	}
	if i := r.NextStopIndex(5); i != 0 {
		t.Errorf("NextStopIndex(5) = %d, want 0", i)
	}
	if i := r.NextStopIndex(10); i != 1 {
		t.Errorf("NextStopIndex(10) = %d, want 1 (stop at exactly 10 is passed)", i)
	}
	if i := r.NextStopIndex(241); i != 2 {
		t.Errorf("NextStopIndex(241) = %d, want NumStops", i)
	}
}

func TestPlaceStopsEvenly(t *testing.T) {
	g, ids := chainGraph(t)
	r, err := NewRoute(g, "r", "r", ClassOrdinary, ids)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.PlaceStopsEvenly(1); err == nil {
		t.Error("1 stop accepted")
	}
	if err := r.PlaceStopsEvenly(6); err != nil {
		t.Fatal(err)
	}
	stops := r.Stops()
	if len(stops) != 6 {
		t.Fatalf("got %d stops", len(stops))
	}
	if stops[0].Arc != 0 || stops[5].Arc != r.Length() {
		t.Errorf("terminal stops at %v and %v", stops[0].Arc, stops[5].Arc)
	}
	for i := 1; i < len(stops); i++ {
		if d := stops[i].Arc - stops[i-1].Arc; math.Abs(d-50) > 1e-9 {
			t.Errorf("stop spacing %d = %v, want 50", i, d)
		}
	}
	// Replacing is idempotent.
	if err := r.PlaceStopsEvenly(3); err != nil {
		t.Fatal(err)
	}
	if r.NumStops() != 3 {
		t.Errorf("replacement left %d stops", r.NumStops())
	}
}

func TestRouteClassString(t *testing.T) {
	if ClassOrdinary.String() != "ordinary" || ClassRapid.String() != "rapid" {
		t.Error("RouteClass.String wrong")
	}
	if RouteClass(9).String() != "RouteClass(9)" {
		t.Error("unknown class string wrong")
	}
}
