package roadnet

import (
	"bytes"
	"testing"

	"wilocator/internal/geo"
)

// FuzzReadNetwork: arbitrary bytes must never panic the network loader, and
// any network it accepts must round-trip through WriteNetwork.
func FuzzReadNetwork(f *testing.F) {
	f.Add([]byte(`{"version":1,"nodes":[],"segments":[],"routes":[]}`))
	f.Add([]byte(`{"version":1,"nodes":[{"pos":{"x":0,"y":0}},{"pos":{"x":10,"y":0}}],
	  "segments":[{"from":0,"to":1,"speedLimit":10}],
	  "routes":[{"id":"r","name":"r","class":"ordinary","segments":[0],"stops":[{"name":"s","arc":5}]}]}`))
	f.Add([]byte(`{"version":1,"nodes":[{"pos":{"x":0,"y":0}}],"segments":[{"from":0,"to":0,"speedLimit":-1}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"version":1,"segments":[{"from":-1,"to":99}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		net, err := ReadNetwork(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must serialise and reload identically.
		var buf bytes.Buffer
		if err := WriteNetwork(&buf, net); err != nil {
			t.Fatalf("accepted network fails to serialise: %v", err)
		}
		back, err := ReadNetwork(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted network fails: %v", err)
		}
		if back.Graph.NumNodes() != net.Graph.NumNodes() ||
			back.Graph.NumSegments() != net.Graph.NumSegments() ||
			len(back.Routes()) != len(net.Routes()) {
			t.Fatal("round trip changed the network shape")
		}
	})
}

// FuzzRouteArcQueries: route arc lookups never panic for any float input on
// a fixed route.
func FuzzRouteArcQueries(f *testing.F) {
	g := NewGraph()
	var prev NodeID
	for i := 0; i <= 4; i++ {
		n := g.AddNode(geo.Pt(float64(i)*100, 0), "n")
		if i > 0 {
			if _, err := g.AddSegment(prev, n, "s", 10, false); err != nil {
				f.Fatal(err)
			}
		}
		prev = n
	}
	route, err := NewRoute(g, "r", "r", ClassOrdinary, []SegmentID{0, 1, 2, 3})
	if err != nil {
		f.Fatal(err)
	}
	if err := route.PlaceStopsEvenly(5); err != nil {
		f.Fatal(err)
	}
	f.Add(0.0)
	f.Add(-1.5)
	f.Add(1e300)
	f.Add(400.0)
	f.Fuzz(func(t *testing.T, s float64) {
		idx, _, off := route.SegmentAt(s)
		if idx < 0 || idx >= route.NumSegments() {
			t.Fatalf("SegmentAt(%v) index %d", s, idx)
		}
		if off < -1e-9 {
			t.Fatalf("SegmentAt(%v) offset %v", s, off)
		}
		_ = route.PointAt(s)
		if i := route.NextStopIndex(s); i < 0 || i > route.NumStops() {
			t.Fatalf("NextStopIndex(%v) = %d", s, i)
		}
	})
}
