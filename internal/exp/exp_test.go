package exp

import (
	"strings"
	"testing"
	"time"

	"wilocator/internal/svd"
	"wilocator/internal/traveltime"
)

func TestWeekdayServiceDays(t *testing.T) {
	days := WeekdayServiceDays(10)
	if len(days) != 10 {
		t.Fatalf("got %d days", len(days))
	}
	for _, d := range days {
		if wd := d.Weekday(); wd == time.Saturday || wd == time.Sunday {
			t.Errorf("weekend day %v in service days", d)
		}
	}
	if !days[0].Equal(Epoch) {
		t.Errorf("first day = %v, want Epoch (a Monday)", days[0])
	}
}

func TestScenarioSpecDefaults(t *testing.T) {
	sc, err := NewCampus(500, ScenarioSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Spec.Seed == 0 || sc.Spec.SVDOrder != 2 || sc.Spec.Riders != 5 {
		t.Errorf("defaults not applied: %+v", sc.Spec)
	}
	if sc.Dia.Metric() != svd.MetricRSS {
		t.Errorf("metric = %v", sc.Dia.Metric())
	}
}

func TestTripTraversalsContiguous(t *testing.T) {
	sc, err := NewVancouver(ScenarioSpec{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	trip, err := sc.DriveTrip("9", Epoch.Add(13*time.Hour), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := TripTraversals(sc.Net, trip)
	if err != nil {
		t.Fatal(err)
	}
	route, _ := sc.Net.Route("9")
	if len(recs) != route.NumSegments() {
		t.Fatalf("got %d traversals, want %d", len(recs), route.NumSegments())
	}
	if !recs[0].Enter.Equal(trip.Start()) {
		t.Error("first traversal does not start with the trip")
	}
	for i, r := range recs {
		if !r.Exit.After(r.Enter) {
			t.Fatalf("traversal %d has non-positive duration", i)
		}
		if i > 0 && !r.Enter.Equal(recs[i-1].Exit) {
			t.Fatalf("traversal %d not contiguous", i)
		}
	}
	if !recs[len(recs)-1].Exit.Equal(trip.End()) {
		t.Error("last traversal does not end with the trip")
	}
}

func TestTrainStoreAccumulates(t *testing.T) {
	sc, err := NewVancouver(ScenarioSpec{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	store, err := TrainStore(sc, 1, traveltime.PaperPlan())
	if err != nil {
		t.Fatal(err)
	}
	// One weekday of 476 trips over ~80 segments each.
	if n := store.NumRecords(); n < 10000 {
		t.Errorf("only %d records after one training day", n)
	}
}

// TestCampusTableII asserts the Table II / Fig. 10 reproduction: rank-list
// leaders match the paper (AP10 at A, AP9 at B, AP4 at C) and the average
// positioning error is metre-level.
func TestCampusTableII(t *testing.T) {
	res, err := CampusExperiment(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Probes) != 3 {
		t.Fatalf("probes = %+v", res.Probes)
	}
	wantLeader := map[string]string{"A": "AP10", "B": "AP9", "C": "AP4"}
	for _, p := range res.Probes {
		if leader := strings.SplitN(p.Ranked, "(", 2)[0]; leader != wantLeader[p.Name] {
			t.Errorf("probe %s leader = %s, want %s", p.Name, leader, wantLeader[p.Name])
		}
		if p.ErrMeters > 10 {
			t.Errorf("probe %s error %.1f m, want metre-level", p.Name, p.ErrMeters)
		}
	}
	if res.MeanErr > 6 {
		t.Errorf("mean campus error %.1f m, paper reports 2 m", res.MeanErr)
	}
	if res.NumAPs != 11 {
		t.Errorf("campus has %d APs, want 11", res.NumAPs)
	}
	if !strings.Contains(res.String(), "average error") {
		t.Error("String() missing summary line")
	}
}

// TestFig8aShape asserts metre-level median positioning error on all four
// routes (paper: median < 3 m).
func TestFig8aShape(t *testing.T) {
	res, err := Fig8aPositioningCDF(ScenarioSpec{Seed: 11}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Summary.N < 100 {
			t.Errorf("%s: only %d fixes", row.Route, row.Summary.N)
		}
		if row.Summary.Median > 10 {
			t.Errorf("%s: median %.1f m, want metre-level", row.Route, row.Summary.Median)
		}
		if row.Summary.P90 > 30 {
			t.Errorf("%s: p90 %.1f m", row.Route, row.Summary.P90)
		}
	}
	if !strings.Contains(res.String(), "Fig. 8(a)") {
		t.Error("String() missing title")
	}
}

// TestFig9aShape asserts the error decreases as AP density grows.
func TestFig9aShape(t *testing.T) {
	res, err := Fig9aErrorVsAPs(13, []float64{80, 35, 20}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %+v", res.Points)
	}
	if res.Points[0].NumAPs >= res.Points[2].NumAPs {
		t.Error("AP count not increasing across sweep")
	}
	if res.Points[2].MeanErr >= res.Points[0].MeanErr {
		t.Errorf("error did not decrease with APs: %.2f -> %.2f",
			res.Points[0].MeanErr, res.Points[2].MeanErr)
	}
}

// TestFig9bShape asserts the order-1 -> order-2 gain dominates and higher
// orders change little (the paper's footnote: order 2 is enough).
func TestFig9bShape(t *testing.T) {
	res, err := Fig9bErrorVsOrder(17, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %+v", res.Points)
	}
	e1, e2, e3 := res.Points[0].MeanErr, res.Points[1].MeanErr, res.Points[2].MeanErr
	if e2 >= e1 {
		t.Errorf("order 2 (%.2f) not better than order 1 (%.2f)", e2, e1)
	}
	if gain12, gain23 := e1-e2, e2-e3; gain23 > gain12 {
		t.Errorf("order 3 gain (%.2f) exceeds order 2 gain (%.2f)", gain23, gain12)
	}
}

// TestAblationSVDvsVD asserts rank-based SVD positioning beats the
// conventional Euclidean VD when AP parameters are heterogeneous.
func TestAblationSVDvsVD(t *testing.T) {
	res, err := AblationSVDvsVD(19, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.SVD.Mean >= res.VD.Mean {
		t.Errorf("SVD mean %.2f not better than VD mean %.2f", res.SVD.Mean, res.VD.Mean)
	}
}

// TestAblationBaselines asserts the paper's positioning-system ordering:
// WiLocator metres, GPS-in-canyons tens of metres, Cell-ID hundreds.
func TestAblationBaselines(t *testing.T) {
	res, err := AblationBaselines(23, 1)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]BaselineRow, len(res.Rows))
	for _, r := range res.Rows {
		byName[r.System] = r
	}
	wifi := byName["WiLocator (SVD)"]
	gps := byName["GPS (urban canyon)"]
	cell := byName["Cell-ID matching"]
	if wifi.Summary.Median >= gps.Summary.Median {
		t.Errorf("WiLocator median %.1f not better than GPS %.1f", wifi.Summary.Median, gps.Summary.Median)
	}
	if gps.Summary.Median >= cell.Summary.Median {
		t.Errorf("GPS median %.1f not better than Cell-ID %.1f", gps.Summary.Median, cell.Summary.Median)
	}
	if gps.EnergyJ <= wifi.EnergyJ {
		t.Errorf("GPS energy %.1f J not above WiFi %.1f J", gps.EnergyJ, wifi.EnergyJ)
	}
}

// TestAblationAPDynamics asserts graceful degradation under AP failures.
func TestAblationAPDynamics(t *testing.T) {
	res, err := AblationAPDynamics(29, []float64{0, 0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %+v", res.Points)
	}
	healthy, degraded := res.Points[0], res.Points[1]
	if degraded.NumActive >= healthy.NumActive {
		t.Error("deactivation did not reduce active APs")
	}
	if degraded.MeanErr < healthy.MeanErr {
		t.Errorf("error improved after killing APs: %.2f -> %.2f", healthy.MeanErr, degraded.MeanErr)
	}
	// Graceful: even with half the APs gone the error stays road-level.
	if degraded.MeanErr > 40 {
		t.Errorf("degraded error %.2f m, want graceful (< 40 m)", degraded.MeanErr)
	}
}

// TestArrivalShapes runs the chronological evaluation day and asserts the
// Fig. 8(b)/(c) shapes and the A2 ablation ordering.
func TestArrivalShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("arrival experiment takes ~1s of simulation")
	}
	sc, err := NewVancouver(ScenarioSpec{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	events, err := ArrivalExperiment(sc, ArrivalConfig{TrainDays: 4, StopStride: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 1000 {
		t.Fatalf("only %d events", len(events))
	}

	f8b := Fig8bFromEvents(events)
	wil := f8b.Summaries["wilocator"]
	agency := f8b.Summaries["agency"]
	same := f8b.Summaries["wilocator-sameroute"]
	if wil.N == 0 || agency.N == 0 || same.N == 0 {
		t.Fatalf("missing engines: %+v", f8b.Summaries)
	}
	// Fig. 8(b): WiLocator comparable to or better than the agency.
	if wil.Median > agency.Median*1.05 {
		t.Errorf("wilocator median %.0f s worse than agency %.0f s", wil.Median, agency.Median)
	}
	// A2: cross-route sharing helps over same-route-only.
	if wil.Mean > same.Mean*1.02 {
		t.Errorf("cross-route mean %.1f s worse than same-route %.1f s", wil.Mean, same.Mean)
	}

	// Fig. 8(c): error grows with the number of stops ahead.
	f8c := Fig8cFromEvents(events, "wilocator", 19)
	for route, series := range f8c.MeanErr {
		if series[0] <= 0 {
			continue
		}
		if series[9] > 0 && series[9] <= series[0] {
			t.Errorf("%s: error at 10 stops (%.0f) not above 1 stop (%.0f)", route, series[9], series[0])
		}
	}
	if !strings.Contains(f8b.String(), "wilocator") || !strings.Contains(f8c.String(), "stops") {
		t.Error("render missing content")
	}
}

// TestFig11Shapes asserts the traffic-map comparison: full WiLocator
// coverage, partial agency coverage, incident flagged, anomaly localised.
func TestFig11Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("traffic-map experiment takes ~1s of simulation")
	}
	res, err := Fig11TrafficMap(ScenarioSpec{Seed: 37}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.WiLocatorCoverage != 1 {
		t.Errorf("WiLocator coverage = %v, want 1", res.WiLocatorCoverage)
	}
	if res.AgencyCoverage >= 1 {
		t.Errorf("agency coverage = %v, want < 1 (unconfirmed segments)", res.AgencyCoverage)
	}
	if !res.IncidentFlagged {
		t.Errorf("incident not flagged (z = %.2f)", res.IncidentZ)
	}
	if !res.AnomalyNearIncident {
		t.Errorf("no trajectory anomaly near the incident: %+v", res.Anomalies)
	}
	if !strings.Contains(res.String(), "?") {
		t.Error("agency strip has no unconfirmed glyphs in render")
	}
}

// TestSeasonalShapes asserts the seasonal index discovers the rush hours and
// groups the day into the paper's slots.
func TestSeasonalShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("seasonal experiment takes ~0.5s of simulation")
	}
	res, err := SeasonalIndexExperiment(ScenarioSpec{Seed: 41}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RushHours) == 0 {
		t.Fatal("no rush hours detected")
	}
	for _, h := range res.RushHours {
		inMorning := h >= 8 && h < 10
		inEvening := h >= 18 && h < 19
		if !inMorning && !inEvening {
			t.Errorf("hour %d flagged as rush", h)
		}
	}
	// The grouped plan recovers the paper's slot boundaries at 10, 18, 19
	// (8 may merge with the service start depending on the transition).
	bounds := make(map[int]bool)
	for _, b := range res.Plan.Bounds() {
		bounds[b] = true
	}
	for _, want := range []int{10, 18, 19} {
		if !bounds[want] {
			t.Errorf("slot boundary at hour %d missing from plan %v", want, res.Plan)
		}
	}
	if !strings.Contains(res.String(), "rush hours") {
		t.Error("render missing summary")
	}
}

// TestArrivalAllDayEvents exercises the RushOnlyOff path: all-day evaluation
// produces strictly more events than the rush-only default.
func TestArrivalAllDayEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("two arrival experiments")
	}
	sc, err := NewVancouver(ScenarioSpec{Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	rush, err := ArrivalExperiment(sc, ArrivalConfig{TrainDays: 2, StopStride: 12, MaxHorizon: 4})
	if err != nil {
		t.Fatal(err)
	}
	allDay, err := ArrivalExperiment(sc, ArrivalConfig{TrainDays: 2, StopStride: 12, MaxHorizon: 4, RushOnlyOff: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(allDay) <= len(rush) {
		t.Errorf("all-day events (%d) not above rush-only (%d)", len(allDay), len(rush))
	}
	// Folding helpers tolerate horizons beyond the data and unknown engines.
	f8c := Fig8cFromEvents(allDay, "no-such-engine", 4)
	if len(f8c.MeanErr) != 0 {
		t.Errorf("unknown engine produced series: %+v", f8c.MeanErr)
	}
	if got := Fig8bFromEvents(nil); len(got.Summaries) != 0 {
		t.Errorf("empty events produced summaries: %+v", got.Summaries)
	}
}
