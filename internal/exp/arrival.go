package exp

import (
	"fmt"
	"sort"
	"time"

	"wilocator/internal/eval"
	"wilocator/internal/mobility"
	"wilocator/internal/predict"
	"wilocator/internal/traveltime"
)

// PredictionEvent is one arrival prediction compared against ground truth.
type PredictionEvent struct {
	RouteID    string
	At         time.Time
	StopsAhead int
	// ErrSec maps engine name to |predicted - actual| in seconds.
	ErrSec map[string]float64
}

// ArrivalConfig tunes the arrival-prediction experiment.
type ArrivalConfig struct {
	// TrainDays is the number of weekday service days of offline history
	// (the paper collected 3 weeks ~ 15 weekdays). Default 10.
	TrainDays int
	// StopStride evaluates predictions from every k-th stop passing to
	// bound the event count. Default 3.
	StopStride int
	// MaxHorizon caps the look-ahead in stops (the paper's Fig. 8(c) shows
	// the first 19). Default 19.
	MaxHorizon int
	// RushOnly keeps only events fired during weekday rush hours, the
	// paper's focus ("we are most concerned [with] rush hours"). Default
	// true; set RushOnlyOff to disable.
	RushOnlyOff bool
}

func (c ArrivalConfig) withDefaults() ArrivalConfig {
	if c.TrainDays <= 0 {
		c.TrainDays = 10
	}
	if c.StopStride <= 0 {
		c.StopStride = 3
	}
	if c.MaxHorizon <= 0 {
		c.MaxHorizon = 19
	}
	return c
}

func isRush(t time.Time) bool {
	h := t.Hour()
	return (h >= mobility.MorningRushStart && h < mobility.MorningRushEnd) ||
		(h >= mobility.AfternoonRushStart && h < mobility.AfternoonRushEnd)
}

// ArrivalExperiment trains a store offline, then replays one additional
// evaluation day *chronologically*: segment traversals stream into the store
// in completion order, and every time a bus passes a stop the engines
// predict its arrival at downstream stops using only the data available at
// that instant. The returned events carry per-engine absolute errors.
func ArrivalExperiment(sc *Scenario, cfg ArrivalConfig) ([]PredictionEvent, error) {
	cfg = cfg.withDefaults()
	store, err := TrainStore(sc, cfg.TrainDays, traveltime.PaperPlan())
	if err != nil {
		return nil, err
	}

	wil, err := predict.NewWiLocator(sc.Net, store, predict.Config{})
	if err != nil {
		return nil, err
	}
	agency, err := predict.NewAgency(sc.Net, store, predict.Config{})
	if err != nil {
		return nil, err
	}
	sameRoute, err := predict.NewWiLocator(sc.Net, store, predict.Config{SameRouteOnly: true})
	if err != nil {
		return nil, err
	}
	engines := []*predict.Engine{wil, agency, sameRoute}

	evalDay := WeekdayServiceDays(cfg.TrainDays + 1)[cfg.TrainDays]
	trips, recs, err := FleetDay(sc, evalDay, nil, 999)
	if err != nil {
		return nil, err
	}

	// Build the prediction events: bus of trip passes stop k at its true
	// time; predict arrival at stops k+1 .. k+MaxHorizon.
	type rawEvent struct {
		trip *mobility.Trip
		stop int
		at   time.Time
	}
	var events []rawEvent
	for _, trip := range trips {
		route, _ := sc.Net.Route(trip.RouteID())
		for k := 0; k < route.NumStops()-1; k += cfg.StopStride {
			at := trip.TimeAtArc(route.StopArc(k))
			if !cfg.RushOnlyOff && !isRush(at) {
				continue
			}
			events = append(events, rawEvent{trip: trip, stop: k, at: at})
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].at.Before(events[j].at) })

	var out []PredictionEvent
	ri := 0
	for _, ev := range events {
		// Stream in every traversal the server would have seen by now.
		for ri < len(recs) && !recs[ri].Exit.After(ev.at) {
			r := recs[ri]
			if err := store.Add(traveltime.Record{Seg: r.Seg, RouteID: r.RouteID, Enter: r.Enter, Exit: r.Exit}); err != nil {
				return nil, err
			}
			ri++
		}
		route, _ := sc.Net.Route(ev.trip.RouteID())
		fromArc := route.StopArc(ev.stop)
		for m := ev.stop + 1; m <= ev.stop+cfg.MaxHorizon && m < route.NumStops(); m++ {
			truth := ev.trip.TimeAtArc(route.StopArc(m))
			pe := PredictionEvent{
				RouteID:    ev.trip.RouteID(),
				At:         ev.at,
				StopsAhead: m - ev.stop,
				ErrSec:     make(map[string]float64, len(engines)),
			}
			for _, eng := range engines {
				eta, err := eng.PredictArrival(ev.trip.RouteID(), fromArc, ev.at, m)
				if err != nil {
					return nil, fmt.Errorf("exp: %s predict: %w", eng.Name(), err)
				}
				pe.ErrSec[eng.Name()] = eta.Sub(truth).Abs().Seconds()
			}
			out = append(out, pe)
		}
	}
	return out, nil
}

// Fig8bResult reproduces Fig. 8(b): CDFs of arrival-time prediction error
// for WiLocator vs the Transit Agency baseline, plus the cross-route
// ablation (A2).
type Fig8bResult struct {
	Summaries map[string]eval.Summary
	CDFs      map[string]eval.CDF
}

// String renders the comparison.
func (r Fig8bResult) String() string {
	t := eval.NewTable("Fig. 8(b): arrival-time prediction error, rush hours (seconds)",
		"engine", "n", "median", "p90", "max")
	names := make([]string, 0, len(r.Summaries))
	for name := range r.Summaries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := r.Summaries[name]
		t.AddRow(name, fmt.Sprintf("%d", s.N),
			fmt.Sprintf("%.0f", s.Median), fmt.Sprintf("%.0f", s.P90), fmt.Sprintf("%.0f", s.Max))
	}
	return t.String()
}

// Fig8bFromEvents folds prediction events into the Fig. 8(b) comparison.
func Fig8bFromEvents(events []PredictionEvent) Fig8bResult {
	byEngine := make(map[string][]float64)
	for _, ev := range events {
		for name, e := range ev.ErrSec {
			byEngine[name] = append(byEngine[name], e)
		}
	}
	out := Fig8bResult{
		Summaries: make(map[string]eval.Summary, len(byEngine)),
		CDFs:      make(map[string]eval.CDF, len(byEngine)),
	}
	for name, errs := range byEngine {
		out.Summaries[name] = eval.Summarize(errs)
		out.CDFs[name] = eval.NewCDF(errs)
	}
	return out
}

// Fig8cResult reproduces Fig. 8(c): mean WiLocator prediction error against
// the number of stops ahead, per route.
type Fig8cResult struct {
	// MeanErr[routeID][stopsAhead-1] is the mean error in seconds;
	// NaN-free: horizons with no samples are zero.
	MeanErr map[string][]float64
	Horizon int
}

// String renders the per-route series.
func (r Fig8cResult) String() string {
	t := eval.NewTable("Fig. 8(c): mean prediction error vs number of bus stops (seconds, rush hours)",
		"route", "1 stop", "5 stops", "10 stops", fmt.Sprintf("%d stops", r.Horizon))
	routes := make([]string, 0, len(r.MeanErr))
	for id := range r.MeanErr {
		routes = append(routes, id)
	}
	sort.Strings(routes)
	pick := func(series []float64, k int) string {
		if k-1 < len(series) && series[k-1] > 0 {
			return fmt.Sprintf("%.0f", series[k-1])
		}
		return "-"
	}
	for _, id := range routes {
		s := r.MeanErr[id]
		t.AddRow(id, pick(s, 1), pick(s, 5), pick(s, 10), pick(s, r.Horizon))
	}
	return t.String()
}

// Fig8cFromEvents folds WiLocator events into the error-vs-stops series.
func Fig8cFromEvents(events []PredictionEvent, engine string, horizon int) Fig8cResult {
	if horizon <= 0 {
		horizon = 19
	}
	sums := make(map[string][]float64)
	counts := make(map[string][]int)
	for _, ev := range events {
		if ev.StopsAhead < 1 || ev.StopsAhead > horizon {
			continue
		}
		e, ok := ev.ErrSec[engine]
		if !ok {
			continue
		}
		if sums[ev.RouteID] == nil {
			sums[ev.RouteID] = make([]float64, horizon)
			counts[ev.RouteID] = make([]int, horizon)
		}
		sums[ev.RouteID][ev.StopsAhead-1] += e
		counts[ev.RouteID][ev.StopsAhead-1]++
	}
	out := Fig8cResult{MeanErr: make(map[string][]float64, len(sums)), Horizon: horizon}
	for id, s := range sums {
		means := make([]float64, horizon)
		for i := range s {
			if counts[id][i] > 0 {
				means[i] = s[i] / float64(counts[id][i])
			}
		}
		out.MeanErr[id] = means
	}
	return out
}
