// Package exp contains one harness per table and figure of the paper's
// evaluation (Section V), plus the ablations called out in DESIGN.md. Each
// harness builds on the same Scenario abstraction — a synthetic world with a
// road network, AP deployment, Signal Voronoi Diagram and congestion field —
// and returns a result type whose String() prints the same rows or series
// the paper reports. See EXPERIMENTS.md for the experiment index and
// paper-vs-measured numbers.
package exp

import (
	"fmt"
	"time"

	"wilocator/internal/mobility"
	"wilocator/internal/rf"
	"wilocator/internal/roadnet"
	"wilocator/internal/sensing"
	"wilocator/internal/svd"
	"wilocator/internal/wifi"
	"wilocator/internal/xrand"
)

// Epoch is the first service day of every scenario: Monday 2016-02-15, three
// weeks before the paper camera-ready. All simulation time is relative to
// it.
var Epoch = time.Date(2016, 2, 15, 0, 0, 0, 0, time.UTC)

// ScenarioSpec parameterises a scenario. Zero fields select defaults.
type ScenarioSpec struct {
	// Seed drives all randomness.
	Seed uint64
	// APSpacing overrides the deployment's mean AP spacing.
	APSpacing float64
	// SVDOrder is the maximum tile order to index. Default 2.
	SVDOrder int
	// GridStep is the SVD band resolution; < 0 disables band geometry.
	// Default: disabled (run-based positioning only), which the
	// full-pipeline experiments use for speed.
	GridStep float64
	// Metric selects the partition metric (SVD vs conventional VD).
	Metric svd.Metric
	// Riders is the number of reporting phones per bus. Default 5.
	Riders int
	// Homogeneous forces identical RF parameters on all APs.
	Homogeneous bool
}

func (s ScenarioSpec) withDefaults() ScenarioSpec {
	if s.Seed == 0 {
		s.Seed = 42
	}
	if s.SVDOrder <= 0 {
		s.SVDOrder = 2
	}
	if s.GridStep == 0 {
		s.GridStep = -1
	}
	if s.Riders <= 0 {
		s.Riders = 5
	}
	return s
}

// Scenario is a fully built synthetic world shared by the experiment
// harnesses.
type Scenario struct {
	Spec  ScenarioSpec
	Net   *roadnet.Network
	Dep   *wifi.Deployment
	Dia   *svd.Diagram
	Field *mobility.CongestionField

	root *xrand.Rand
}

// NewVancouver builds the Table I network scenario.
func NewVancouver(spec ScenarioSpec) (*Scenario, error) {
	net, err := roadnet.BuildVancouver(roadnet.DefaultVancouverSpec())
	if err != nil {
		return nil, err
	}
	return finishScenario(net, spec)
}

// NewCampus builds a single-road scenario of the given length.
func NewCampus(length float64, spec ScenarioSpec) (*Scenario, error) {
	net, err := roadnet.BuildCampus(length)
	if err != nil {
		return nil, err
	}
	return finishScenario(net, spec)
}

func finishScenario(net *roadnet.Network, spec ScenarioSpec) (*Scenario, error) {
	spec = spec.withDefaults()
	root := xrand.New(spec.Seed)
	depSpec := wifi.DefaultDeploySpec()
	if spec.APSpacing > 0 {
		depSpec.Spacing = spec.APSpacing
	}
	if spec.Homogeneous {
		depSpec.RefRSSMin, depSpec.RefRSSMax = -30, -30
		depSpec.PathLossExpMin, depSpec.PathLossExpMax = 3, 3
	}
	dep, err := wifi.Deploy(net, depSpec, root.Split("deploy"))
	if err != nil {
		return nil, err
	}
	dia, err := svd.Build(net, dep, svd.Config{
		Order:    spec.SVDOrder,
		GridStep: spec.GridStep,
		Metric:   spec.Metric,
	})
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Spec:  spec,
		Net:   net,
		Dep:   dep,
		Dia:   dia,
		Field: mobility.DefaultCongestion(spec.Seed ^ 0xC0FFEE),
		root:  root,
	}, nil
}

// Rand derives a labelled randomness stream from the scenario seed.
func (sc *Scenario) Rand(label string) *xrand.Rand { return sc.root.Split(label) }

// DriveTrip simulates one ground-truth trip.
func (sc *Scenario) DriveTrip(routeID string, start time.Time, incidents []mobility.Incident, tripSeed int) (*mobility.Trip, error) {
	return mobility.Drive(sc.Net, routeID, start, mobility.DriveConfig{},
		sc.Field, incidents, sc.root.SplitN("trip-"+routeID, tripSeed))
}

// Phones creates the rider phone group for one bus.
func (sc *Scenario) Phones(busID string) ([]*sensing.Phone, error) {
	return sensing.NewRiderPhones(busID, sc.Spec.Riders, sc.Dep,
		sensing.PhoneConfig{Model: rf.LogDistance{}}, sc.root.Split("phones-"+busID))
}

// ScanTrip replays a trip with rider phones and returns the fused samples.
func (sc *Scenario) ScanTrip(routeID, busID string, trip *mobility.Trip) ([]sensing.Sample, error) {
	route, ok := sc.Net.Route(routeID)
	if !ok {
		return nil, fmt.Errorf("exp: unknown route %q", routeID)
	}
	phones, err := sc.Phones(busID)
	if err != nil {
		return nil, err
	}
	ts, err := sensing.NewTripScanner(route, trip, phones, sensing.DefaultScanPeriod)
	if err != nil {
		return nil, err
	}
	return ts.Samples(), nil
}

// ServiceDay returns the start of service day d (0-based) after Epoch.
func ServiceDay(d int) time.Time { return Epoch.AddDate(0, 0, d) }

// WeekdayServiceDays returns the first n weekdays from Epoch, skipping
// weekends — the evaluation slices rush hours, which only exist on weekdays.
func WeekdayServiceDays(n int) []time.Time {
	var out []time.Time
	for d := 0; len(out) < n; d++ {
		day := ServiceDay(d)
		if wd := day.Weekday(); wd == time.Saturday || wd == time.Sunday {
			continue
		}
		out = append(out, day)
	}
	return out
}
