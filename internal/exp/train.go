package exp

import (
	"fmt"
	"sort"
	"time"

	"wilocator/internal/mobility"
	"wilocator/internal/roadnet"
	"wilocator/internal/traveltime"
)

// SegmentTraversal is one ground-truth segment traversal of one trip.
type SegmentTraversal struct {
	Seg     roadnet.SegmentID
	RouteID string
	Enter   time.Time
	Exit    time.Time
	// Trip is the index of the trip within its FleetDay, used to subsample
	// per-vehicle (e.g. the agency's partially AVL-equipped fleet).
	Trip int
}

// TripTraversals extracts the per-segment traversal records of one
// ground-truth trip by reading the exact boundary-crossing times from the
// motion profile.
//
// Training data in the live system comes from the tracker's interpolated
// crossings; using ground-truth crossings for *offline training* is the
// documented substitution for the paper's three weeks of collected data —
// it differs from tracked crossings only by the few seconds of positioning
// noise, which is negligible against minutes-long segment times.
func TripTraversals(net *roadnet.Network, trip *mobility.Trip) ([]SegmentTraversal, error) {
	trs, err := mobility.Traversals(net, trip)
	if err != nil {
		return nil, err
	}
	out := make([]SegmentTraversal, len(trs))
	for i, tr := range trs {
		out[i] = SegmentTraversal{Seg: tr.Seg, RouteID: tr.RouteID, Enter: tr.Enter, Exit: tr.Exit}
	}
	return out, nil
}

// FleetDay simulates every route's full timetable for one service day and
// returns all trips plus their traversals sorted by exit time (the order in
// which the server would learn about them).
func FleetDay(sc *Scenario, day time.Time, incidents []mobility.Incident, daySeed int) ([]*mobility.Trip, []SegmentTraversal, error) {
	var trips []*mobility.Trip
	var recs []SegmentTraversal
	for _, route := range sc.Net.Routes() {
		departures, err := mobility.Timetable(route, day, mobility.TimetableSpec{})
		if err != nil {
			return nil, nil, err
		}
		for i, dep := range departures {
			trip, err := sc.DriveTrip(route.ID(), dep, incidents, daySeed*100000+i)
			if err != nil {
				return nil, nil, err
			}
			tripIdx := len(trips)
			trips = append(trips, trip)
			tr, err := TripTraversals(sc.Net, trip)
			if err != nil {
				return nil, nil, err
			}
			for k := range tr {
				tr[k].Trip = tripIdx
			}
			recs = append(recs, tr...)
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Exit.Before(recs[j].Exit) })
	return trips, recs, nil
}

// TrainStore simulates `days` weekdays of fleet operation and ingests every
// traversal into a fresh store — the paper's offline-training phase over the
// 3-week data collection.
func TrainStore(sc *Scenario, days int, plan traveltime.SlotPlan) (*traveltime.Store, error) {
	store := traveltime.NewStore(plan)
	for d, day := range WeekdayServiceDays(days) {
		_, recs, err := FleetDay(sc, day, nil, d)
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			if err := store.Add(traveltime.Record{
				Seg: r.Seg, RouteID: r.RouteID, Enter: r.Enter, Exit: r.Exit,
			}); err != nil {
				return nil, fmt.Errorf("exp: train day %d: %w", d, err)
			}
		}
	}
	return store, nil
}
