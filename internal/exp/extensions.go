package exp

import (
	"fmt"
	"math"
	"time"

	"wilocator/internal/baseline"
	"wilocator/internal/eval"
	"wilocator/internal/hybrid"
	"wilocator/internal/locate"
	"wilocator/internal/sensing"
	"wilocator/internal/svd"
	"wilocator/internal/wifi"
)

// HybridResult is extension X1: the Section VII WiFi/GPS hand-off, measured
// on a corridor with a WiFi coverage gap.
type HybridResult struct {
	// WiFiOnly, GPSOnly and Hybrid summarise the positioning error of each
	// policy over the same trips.
	WiFiOnly, GPSOnly, Hybrid eval.Summary
	// WiFiOnlyCoverage is the fraction of scan cycles the WiFi-only policy
	// produced a fix (it goes blind inside the gap).
	WiFiOnlyCoverage, HybridCoverage float64
	// GPSOnlyEnergyJ and HybridGPSEnergyJ contrast the GPS power budgets.
	GPSOnlyEnergyJ, HybridGPSEnergyJ float64
}

// String renders the comparison.
func (r HybridResult) String() string {
	t := eval.NewTable("Extension X1: WiFi/GPS hand-off across a coverage gap (Section VII)",
		"policy", "fix coverage", "median(m)", "p90(m)", "gps energy(J)")
	t.AddRow("WiFi only", fmt.Sprintf("%.0f%%", r.WiFiOnlyCoverage*100),
		fmt.Sprintf("%.1f", r.WiFiOnly.Median), fmt.Sprintf("%.1f", r.WiFiOnly.P90), "0.0")
	t.AddRow("GPS only", "100%",
		fmt.Sprintf("%.1f", r.GPSOnly.Median), fmt.Sprintf("%.1f", r.GPSOnly.P90),
		fmt.Sprintf("%.1f", r.GPSOnlyEnergyJ))
	t.AddRow("Hybrid", fmt.Sprintf("%.0f%%", r.HybridCoverage*100),
		fmt.Sprintf("%.1f", r.Hybrid.Median), fmt.Sprintf("%.1f", r.Hybrid.P90),
		fmt.Sprintf("%.1f", r.HybridGPSEnergyJ))
	return t.String()
}

// ExtensionHybrid measures WiFi-only, GPS-only and hybrid tracking on a 3 km
// corridor whose middle kilometre has no working APs.
func ExtensionHybrid(seed uint64, trips int) (HybridResult, error) {
	sc, err := NewCampus(3000, ScenarioSpec{Seed: seed})
	if err != nil {
		return HybridResult{}, err
	}
	route := sc.Net.Routes()[0]
	for _, ap := range sc.Dep.APs() {
		if s, _ := route.Project(ap.Pos); s > 1000 && s < 2000 {
			if err := sc.Dep.Deactivate(ap.BSSID); err != nil {
				return HybridResult{}, err
			}
		}
	}
	dia, err := svd.Build(sc.Net, sc.Dep, svd.Config{Order: sc.Spec.SVDOrder})
	if err != nil {
		return HybridResult{}, err
	}
	sc.Dia = dia

	var res HybridResult
	var wifiErrs, gpsErrs, hybridErrs []float64
	cycles, wifiFixes, hybridFixes := 0, 0, 0
	day := WeekdayServiceDays(1)[0].Add(13 * time.Hour)
	for trial := 0; trial < trips; trial++ {
		trip, err := sc.DriveTrip("campus", day, nil, 3000+trial)
		if err != nil {
			return HybridResult{}, err
		}
		phones, err := sc.Phones(fmt.Sprintf("hy-%d", trial))
		if err != nil {
			return HybridResult{}, err
		}

		pos, err := locate.NewPositioner(dia, dia.Order())
		if err != nil {
			return HybridResult{}, err
		}
		wifiTr, err := locate.NewTracker(pos, "campus", locate.TrackerConfig{})
		if err != nil {
			return HybridResult{}, err
		}
		pos2, err := locate.NewPositioner(dia, dia.Order())
		if err != nil {
			return HybridResult{}, err
		}
		hyWifi, err := locate.NewTracker(pos2, "campus", locate.TrackerConfig{})
		if err != nil {
			return HybridResult{}, err
		}
		hyGPS, err := baseline.NewGPSTracker(route, baseline.GPSConfig{Seed: seed}, sc.Rand(fmt.Sprintf("hygps-%d", trial)))
		if err != nil {
			return HybridResult{}, err
		}
		hy, err := hybrid.New(hyWifi, hyGPS, hybrid.Config{})
		if err != nil {
			return HybridResult{}, err
		}
		gpsOnly, err := baseline.NewGPSTracker(route, baseline.GPSConfig{Seed: seed}, sc.Rand(fmt.Sprintf("gpsonly-%d", trial)))
		if err != nil {
			return HybridResult{}, err
		}

		for at := trip.Start(); !trip.Done(at); at = at.Add(sensing.DefaultScanPeriod) {
			trueArc := trip.ArcAt(at)
			p := route.PointAt(trueArc)
			var scans []wifi.Scan
			for _, ph := range phones {
				if s, ok := ph.ScanAt(p, at); ok {
					scans = append(scans, s)
				}
			}
			fused := sensing.Fuse(scans)
			cycles++

			if est, _, err := wifiTr.Observe(fused); err == nil {
				wifiFixes++
				wifiErrs = append(wifiErrs, math.Abs(est.Arc-trueArc))
			}
			if fix, ok := hy.Observe(fused, trueArc, at); ok {
				hybridFixes++
				hybridErrs = append(hybridErrs, math.Abs(fix.Arc-trueArc))
			}
			if arc, ok := gpsOnly.Observe(trueArc, at); ok {
				gpsErrs = append(gpsErrs, math.Abs(arc-trueArc))
			}
		}
		_, hyJ := hy.EnergyJ()
		res.HybridGPSEnergyJ += hyJ
		res.GPSOnlyEnergyJ += gpsOnly.EnergyJ()
	}
	res.WiFiOnly = eval.Summarize(wifiErrs)
	res.GPSOnly = eval.Summarize(gpsErrs)
	res.Hybrid = eval.Summarize(hybridErrs)
	if cycles > 0 {
		res.WiFiOnlyCoverage = float64(wifiFixes) / float64(cycles)
		res.HybridCoverage = float64(hybridFixes) / float64(cycles)
	}
	return res, nil
}

// RiderSweepPoint is one point of ablation A5 (scan fusion).
type RiderSweepPoint struct {
	Riders    int
	MedianErr float64
}

// RiderSweepResult quantifies the paper's crowd-sensing observation: fusing
// the scans of more riders stabilises the average RSS rank and improves
// positioning.
type RiderSweepResult struct {
	Points []RiderSweepPoint
}

// String renders the series.
func (r RiderSweepResult) String() string {
	t := eval.NewTable("Ablation A5: positioning error vs number of fused rider phones",
		"riders", "median error(m)")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%d", p.Riders), fmt.Sprintf("%.2f", p.MedianErr))
	}
	return t.String()
}

// AblationRiderFusion sweeps the number of reporting phones per bus.
func AblationRiderFusion(seed uint64, riders []int, trips int) (RiderSweepResult, error) {
	if len(riders) == 0 {
		riders = []int{1, 2, 5, 9}
	}
	day := WeekdayServiceDays(1)[0].Add(13 * time.Hour)
	var out RiderSweepResult
	for _, n := range riders {
		sc, err := NewCampus(2500, ScenarioSpec{Seed: seed, Riders: n})
		if err != nil {
			return RiderSweepResult{}, err
		}
		var errs []float64
		for trial := 0; trial < trips; trial++ {
			es, _, err := TrackTrip(sc, "campus", fmt.Sprintf("r%d-%d", n, trial), trial, day, sc.Dia.Order())
			if err != nil {
				return RiderSweepResult{}, err
			}
			errs = append(errs, es...)
		}
		out.Points = append(out.Points, RiderSweepPoint{
			Riders:    n,
			MedianErr: eval.Summarize(errs).Median,
		})
	}
	return out, nil
}

// TieMarginPoint is one point of ablation A6.
type TieMarginPoint struct {
	Margin    int
	MedianErr float64
	P90Err    float64
}

// TieMarginResult quantifies the near-tie boundary rule: treating readings
// within a small dB margin as rank ties (and snapping to the shared tile
// boundary, the paper's equal-rank rule) against exact-equality ties only.
type TieMarginResult struct {
	Points []TieMarginPoint
}

// String renders the series.
func (r TieMarginResult) String() string {
	t := eval.NewTable("Ablation A6: positioning error vs tie margin (equal-rank boundary rule)",
		"margin(dB)", "median(m)", "p90(m)")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%d", p.Margin),
			fmt.Sprintf("%.2f", p.MedianErr), fmt.Sprintf("%.2f", p.P90Err))
	}
	return t.String()
}

// AblationTieMargin sweeps the positioner's tie margin on a fixed scenario.
func AblationTieMargin(seed uint64, margins []int, trips int) (TieMarginResult, error) {
	if len(margins) == 0 {
		margins = []int{0, 1, 2, 4}
	}
	sc, err := NewCampus(2500, ScenarioSpec{Seed: seed})
	if err != nil {
		return TieMarginResult{}, err
	}
	day := WeekdayServiceDays(1)[0].Add(13 * time.Hour)
	var out TieMarginResult
	for _, margin := range margins {
		var errs []float64
		for trial := 0; trial < trips; trial++ {
			trip, err := sc.DriveTrip("campus", day, nil, 5000+trial)
			if err != nil {
				return TieMarginResult{}, err
			}
			samples, err := sc.ScanTrip("campus", fmt.Sprintf("tm%d-%d", margin, trial), trip)
			if err != nil {
				return TieMarginResult{}, err
			}
			pos, err := locate.NewPositioner(sc.Dia, sc.Dia.Order())
			if err != nil {
				return TieMarginResult{}, err
			}
			pos.TieMargin = margin
			tracker, err := locate.NewTracker(pos, "campus", locate.TrackerConfig{})
			if err != nil {
				return TieMarginResult{}, err
			}
			for _, s := range samples {
				est, _, err := tracker.Observe(s.Scan)
				if err != nil {
					continue
				}
				errs = append(errs, math.Abs(est.Arc-s.TrueArc))
			}
		}
		sum := eval.Summarize(errs)
		out.Points = append(out.Points, TieMarginPoint{Margin: margin, MedianErr: sum.Median, P90Err: sum.P90})
	}
	return out, nil
}
