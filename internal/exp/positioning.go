package exp

import (
	"fmt"
	"math"
	"time"

	"wilocator/internal/baseline"
	"wilocator/internal/eval"
	"wilocator/internal/locate"
	"wilocator/internal/svd"
)

// TrackTrip replays one trip through the crowd-sensing and tracking pipeline
// at the given SVD order and returns the per-fix road-distance errors and
// the produced trajectory.
func TrackTrip(sc *Scenario, routeID, busID string, tripSeed int, start time.Time, order int) ([]float64, []locate.TrajectoryPoint, error) {
	trip, err := sc.DriveTrip(routeID, start, nil, tripSeed)
	if err != nil {
		return nil, nil, err
	}
	samples, err := sc.ScanTrip(routeID, busID, trip)
	if err != nil {
		return nil, nil, err
	}
	pos, err := locate.NewPositioner(sc.Dia, order)
	if err != nil {
		return nil, nil, err
	}
	tracker, err := locate.NewTracker(pos, routeID, locate.TrackerConfig{})
	if err != nil {
		return nil, nil, err
	}
	var errs []float64
	for _, s := range samples {
		est, _, err := tracker.Observe(s.Scan)
		if err != nil {
			continue
		}
		errs = append(errs, math.Abs(est.Arc-s.TrueArc))
	}
	return errs, tracker.Trajectory(), nil
}

// PositioningResult is one route's row of Fig. 8(a).
type PositioningResult struct {
	Route   string
	Summary eval.Summary
	CDF     eval.CDF
}

// Fig8aResult is the Fig. 8(a) reproduction: the CDF of positioning errors
// per route.
type Fig8aResult struct {
	Rows []PositioningResult
}

// String renders the paper-style table.
func (r Fig8aResult) String() string {
	t := eval.NewTable("Fig. 8(a): CDF of positioning errors (road metres)",
		"route", "n", "median", "p90", "max")
	for _, row := range r.Rows {
		t.AddRow(row.Route,
			fmt.Sprintf("%d", row.Summary.N),
			fmt.Sprintf("%.1f", row.Summary.Median),
			fmt.Sprintf("%.1f", row.Summary.P90),
			fmt.Sprintf("%.1f", row.Summary.Max))
	}
	return t.String()
}

// Fig8aPositioningCDF tracks tripsPerRoute trips on each of the four
// Vancouver routes and reports the error CDFs (paper: median < 3 m with
// dense APs; the shape to reproduce is metre-level medians on every route).
func Fig8aPositioningCDF(spec ScenarioSpec, tripsPerRoute int) (Fig8aResult, error) {
	sc, err := NewVancouver(spec)
	if err != nil {
		return Fig8aResult{}, err
	}
	var out Fig8aResult
	day := WeekdayServiceDays(1)[0]
	for _, route := range sc.Net.Routes() {
		var errs []float64
		for trial := 0; trial < tripsPerRoute; trial++ {
			start := day.Add(time.Duration(9+trial) * time.Hour)
			es, _, err := TrackTrip(sc, route.ID(), fmt.Sprintf("%s-%d", route.ID(), trial), trial, start, sc.Dia.Order())
			if err != nil {
				return Fig8aResult{}, err
			}
			errs = append(errs, es...)
		}
		out.Rows = append(out.Rows, PositioningResult{
			Route:   route.Name(),
			Summary: eval.Summarize(errs),
			CDF:     eval.NewCDF(errs),
		})
	}
	return out, nil
}

// APSweepPoint is one point of Fig. 9(a).
type APSweepPoint struct {
	Spacing float64
	NumAPs  int
	MeanErr float64
}

// Fig9aResult is the Fig. 9(a) reproduction: positioning error vs number of
// APs.
type Fig9aResult struct {
	Points []APSweepPoint
}

// String renders the series.
func (r Fig9aResult) String() string {
	t := eval.NewTable("Fig. 9(a): positioning error vs number of WiFi APs",
		"spacing(m)", "APs", "mean error(m)")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%.0f", p.Spacing), fmt.Sprintf("%d", p.NumAPs), fmt.Sprintf("%.2f", p.MeanErr))
	}
	return t.String()
}

// Fig9aErrorVsAPs sweeps the AP density on a fixed campus corridor (paper:
// error decreases slowly, ~3.15 m to ~2.8 m, as APs increase).
func Fig9aErrorVsAPs(seed uint64, spacings []float64, trips int) (Fig9aResult, error) {
	if len(spacings) == 0 {
		spacings = []float64{90, 70, 55, 45, 35, 25, 18}
	}
	var out Fig9aResult
	day := WeekdayServiceDays(1)[0].Add(13 * time.Hour)
	for _, spacing := range spacings {
		sc, err := NewCampus(2500, ScenarioSpec{Seed: seed, APSpacing: spacing})
		if err != nil {
			return Fig9aResult{}, err
		}
		var errs []float64
		for trial := 0; trial < trips; trial++ {
			es, _, err := TrackTrip(sc, "campus", fmt.Sprintf("c-%d", trial), trial, day, sc.Dia.Order())
			if err != nil {
				return Fig9aResult{}, err
			}
			errs = append(errs, es...)
		}
		out.Points = append(out.Points, APSweepPoint{
			Spacing: spacing,
			NumAPs:  sc.Dep.NumAPs(),
			MeanErr: eval.Summarize(errs).Mean,
		})
	}
	return out, nil
}

// OrderSweepPoint is one point of Fig. 9(b).
type OrderSweepPoint struct {
	Order   int
	MeanErr float64
}

// Fig9bResult is the Fig. 9(b) reproduction: positioning error vs SVD order.
type Fig9bResult struct {
	Points []OrderSweepPoint
}

// String renders the series.
func (r Fig9bResult) String() string {
	t := eval.NewTable("Fig. 9(b): positioning error vs order of SVD",
		"order", "mean error(m)")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%d", p.Order), fmt.Sprintf("%.2f", p.MeanErr))
	}
	return t.String()
}

// Fig9bErrorVsOrder sweeps the tile order used for positioning (paper: big
// gain from order 1 to 2, little change beyond — order 2 suffices).
func Fig9bErrorVsOrder(seed uint64, maxOrder, trips int) (Fig9bResult, error) {
	if maxOrder <= 0 {
		maxOrder = 4
	}
	sc, err := NewCampus(2500, ScenarioSpec{Seed: seed, SVDOrder: maxOrder})
	if err != nil {
		return Fig9bResult{}, err
	}
	day := WeekdayServiceDays(1)[0].Add(13 * time.Hour)
	var out Fig9bResult
	for order := 1; order <= maxOrder; order++ {
		var errs []float64
		for trial := 0; trial < trips; trial++ {
			es, _, err := TrackTrip(sc, "campus", fmt.Sprintf("o%d-%d", order, trial), trial, day, order)
			if err != nil {
				return Fig9bResult{}, err
			}
			errs = append(errs, es...)
		}
		out.Points = append(out.Points, OrderSweepPoint{Order: order, MeanErr: eval.Summarize(errs).Mean})
	}
	return out, nil
}

// MetricAblationResult contrasts rank-based SVD positioning with the
// conventional Euclidean Voronoi diagram on the same heterogeneous world
// (ablation A1 of DESIGN.md).
type MetricAblationResult struct {
	SVD eval.Summary
	VD  eval.Summary
}

// String renders the comparison.
func (r MetricAblationResult) String() string {
	t := eval.NewTable("Ablation A1: SVD vs conventional Voronoi diagram (heterogeneous APs)",
		"diagram", "n", "mean(m)", "median(m)", "p90(m)")
	for _, row := range []struct {
		name string
		s    eval.Summary
	}{{"SVD (rank)", r.SVD}, {"VD (euclidean)", r.VD}} {
		t.AddRow(row.name, fmt.Sprintf("%d", row.s.N),
			fmt.Sprintf("%.2f", row.s.Mean), fmt.Sprintf("%.2f", row.s.Median),
			fmt.Sprintf("%.2f", row.s.P90))
	}
	return t.String()
}

// AblationSVDvsVD runs the metric ablation.
func AblationSVDvsVD(seed uint64, trips int) (MetricAblationResult, error) {
	day := WeekdayServiceDays(1)[0].Add(13 * time.Hour)
	run := func(metric svd.Metric) (eval.Summary, error) {
		sc, err := NewCampus(2500, ScenarioSpec{Seed: seed, Metric: metric})
		if err != nil {
			return eval.Summary{}, err
		}
		var errs []float64
		for trial := 0; trial < trips; trial++ {
			es, _, err := TrackTrip(sc, "campus", fmt.Sprintf("m-%d", trial), trial, day, sc.Dia.Order())
			if err != nil {
				return eval.Summary{}, err
			}
			errs = append(errs, es...)
		}
		return eval.Summarize(errs), nil
	}
	svdSum, err := run(svd.MetricRSS)
	if err != nil {
		return MetricAblationResult{}, err
	}
	vdSum, err := run(svd.MetricEuclidean)
	if err != nil {
		return MetricAblationResult{}, err
	}
	return MetricAblationResult{SVD: svdSum, VD: vdSum}, nil
}

// BaselineRow is one positioning system's result in ablation A3.
type BaselineRow struct {
	System  string
	Summary eval.Summary
	EnergyJ float64
}

// BaselinesResult compares WiLocator against the Cell-ID and urban-canyon
// GPS baselines on identical trips.
type BaselinesResult struct {
	Rows []BaselineRow
}

// String renders the comparison.
func (r BaselinesResult) String() string {
	t := eval.NewTable("Ablation A3: WiLocator vs Cell-ID and GPS baselines",
		"system", "n", "median(m)", "p90(m)", "energy(J)")
	for _, row := range r.Rows {
		t.AddRow(row.System, fmt.Sprintf("%d", row.Summary.N),
			fmt.Sprintf("%.1f", row.Summary.Median), fmt.Sprintf("%.1f", row.Summary.P90),
			fmt.Sprintf("%.1f", row.EnergyJ))
	}
	return t.String()
}

// AblationBaselines runs WiLocator, Cell-ID matching and canyon GPS over the
// same ground-truth trips on an 8 km corridor.
func AblationBaselines(seed uint64, trips int) (BaselinesResult, error) {
	sc, err := NewCampus(8000, ScenarioSpec{Seed: seed})
	if err != nil {
		return BaselinesResult{}, err
	}
	route := sc.Net.Routes()[0]
	day := WeekdayServiceDays(1)[0].Add(13 * time.Hour)

	towers, err := baseline.DeployTowers(sc.Net, 0, sc.Rand("towers"))
	if err != nil {
		return BaselinesResult{}, err
	}

	var wifiErrs, cellErrs, gpsErrs []float64
	var wifiEnergy, cellEnergy, gpsEnergy float64
	for trial := 0; trial < trips; trial++ {
		trip, err := sc.DriveTrip("campus", day, nil, 1000+trial)
		if err != nil {
			return BaselinesResult{}, err
		}

		// WiLocator: crowd-sensed, tracked.
		samples, err := sc.ScanTrip("campus", fmt.Sprintf("w-%d", trial), trip)
		if err != nil {
			return BaselinesResult{}, err
		}
		pos, err := locate.NewPositioner(sc.Dia, sc.Dia.Order())
		if err != nil {
			return BaselinesResult{}, err
		}
		tracker, err := locate.NewTracker(pos, "campus", locate.TrackerConfig{})
		if err != nil {
			return BaselinesResult{}, err
		}
		for _, s := range samples {
			wifiEnergy += baseline.WiFiScanEnergyJ // per fused cycle on the probe phone
			est, _, err := tracker.Observe(s.Scan)
			if err != nil {
				continue
			}
			wifiErrs = append(wifiErrs, math.Abs(est.Arc-s.TrueArc))
		}

		// Cell-ID sequence matching.
		cid, err := baseline.NewCellIDTracker(route, towers, 0)
		if err != nil {
			return BaselinesResult{}, err
		}
		// GPS with urban canyons.
		gps, err := baseline.NewGPSTracker(route, baseline.GPSConfig{Seed: seed}, sc.Rand(fmt.Sprintf("gps-%d", trial)))
		if err != nil {
			return BaselinesResult{}, err
		}
		for at := trip.Start(); !trip.Done(at); at = at.Add(10 * time.Second) {
			trueArc := trip.ArcAt(at)
			if arc, ok := cid.Observe(route.PointAt(trueArc), at); ok {
				cellErrs = append(cellErrs, math.Abs(arc-trueArc))
			}
			cellEnergy += baseline.WiFiScanEnergyJ * 0.5 // modem listen, cheaper than WiFi
			if arc, ok := gps.Observe(trueArc, at); ok {
				gpsErrs = append(gpsErrs, math.Abs(arc-trueArc))
			}
		}
		gpsEnergy = gps.EnergyJ()
	}
	return BaselinesResult{Rows: []BaselineRow{
		{System: "WiLocator (SVD)", Summary: eval.Summarize(wifiErrs), EnergyJ: wifiEnergy},
		{System: "Cell-ID matching", Summary: eval.Summarize(cellErrs), EnergyJ: cellEnergy},
		{System: "GPS (urban canyon)", Summary: eval.Summarize(gpsErrs), EnergyJ: gpsEnergy},
	}}, nil
}

// APDynamicsPoint is one point of ablation A4.
type APDynamicsPoint struct {
	KilledFrac float64
	NumActive  int
	MeanErr    float64
}

// APDynamicsResult shows positioning degradation as APs die (Section III-B).
type APDynamicsResult struct {
	Points []APDynamicsPoint
}

// String renders the series.
func (r APDynamicsResult) String() string {
	t := eval.NewTable("Ablation A4: positioning error under AP dynamics",
		"killed", "active APs", "mean error(m)")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%.0f%%", p.KilledFrac*100), fmt.Sprintf("%d", p.NumActive),
			fmt.Sprintf("%.2f", p.MeanErr))
	}
	return t.String()
}

// AblationAPDynamics deactivates growing fractions of the deployment,
// rebuilds the SVD (the paper's "the SVD changes accordingly"), and measures
// positioning error (expected: graceful degradation).
func AblationAPDynamics(seed uint64, fracs []float64, trips int) (APDynamicsResult, error) {
	if len(fracs) == 0 {
		fracs = []float64{0, 0.1, 0.25, 0.5}
	}
	day := WeekdayServiceDays(1)[0].Add(13 * time.Hour)
	var out APDynamicsResult
	for _, frac := range fracs {
		sc, err := NewCampus(2500, ScenarioSpec{Seed: seed})
		if err != nil {
			return APDynamicsResult{}, err
		}
		aps := sc.Dep.APs()
		kill := int(frac * float64(len(aps)))
		perm := sc.Rand("kill").Perm(len(aps))
		for _, idx := range perm[:kill] {
			if err := sc.Dep.Deactivate(aps[idx].BSSID); err != nil {
				return APDynamicsResult{}, err
			}
		}
		dia, err := svd.Build(sc.Net, sc.Dep, svd.Config{Order: sc.Spec.SVDOrder, GridStep: -1})
		if err != nil {
			return APDynamicsResult{}, err
		}
		sc.Dia = dia
		var errs []float64
		for trial := 0; trial < trips; trial++ {
			es, _, err := TrackTrip(sc, "campus", fmt.Sprintf("k%.0f-%d", frac*100, trial), trial, day, dia.Order())
			if err != nil {
				return APDynamicsResult{}, err
			}
			errs = append(errs, es...)
		}
		out.Points = append(out.Points, APDynamicsPoint{
			KilledFrac: frac,
			NumActive:  len(sc.Dep.ActiveAPs()),
			MeanErr:    eval.Summarize(errs).Mean,
		})
	}
	return out, nil
}
