package exp

import (
	"strings"
	"testing"
)

// TestExtensionHybrid asserts the Section VII hand-off story: WiFi-only
// loses coverage in the gap, the hybrid recovers most of it with a fraction
// of the always-on GPS energy.
func TestExtensionHybrid(t *testing.T) {
	res, err := ExtensionHybrid(43, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.WiFiOnlyCoverage >= 0.95 {
		t.Errorf("WiFi-only coverage %.2f — the gap did not bite", res.WiFiOnlyCoverage)
	}
	if res.HybridCoverage <= res.WiFiOnlyCoverage {
		t.Errorf("hybrid coverage %.2f not above WiFi-only %.2f",
			res.HybridCoverage, res.WiFiOnlyCoverage)
	}
	if res.HybridGPSEnergyJ >= res.GPSOnlyEnergyJ/2 {
		t.Errorf("hybrid GPS energy %.1f J not well below always-on %.1f J",
			res.HybridGPSEnergyJ, res.GPSOnlyEnergyJ)
	}
	if res.Hybrid.Median > res.GPSOnly.Median*3 {
		t.Errorf("hybrid median %.1f m far above GPS-only %.1f m",
			res.Hybrid.Median, res.GPSOnly.Median)
	}
	if !strings.Contains(res.String(), "Hybrid") {
		t.Error("render missing rows")
	}
}

// TestAblationRiderFusion asserts the paper's crowd-sensing claim: more
// fused phones, lower positioning error.
func TestAblationRiderFusion(t *testing.T) {
	res, err := AblationRiderFusion(47, []int{1, 7}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %+v", res.Points)
	}
	single, fused := res.Points[0], res.Points[1]
	if fused.MedianErr >= single.MedianErr {
		t.Errorf("7-phone fusion (%.2f m) not better than 1 phone (%.2f m)",
			fused.MedianErr, single.MedianErr)
	}
}

// TestAblationTieMargin asserts the near-tie boundary rule pays off: a small
// margin beats exact-equality-only ties, and the series renders.
func TestAblationTieMargin(t *testing.T) {
	res, err := AblationTieMargin(53, []int{0, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %+v", res.Points)
	}
	none, margin2 := res.Points[0], res.Points[1]
	if margin2.MedianErr > none.MedianErr*1.05 {
		t.Errorf("margin-2 median %.2f m worse than exact-only %.2f m",
			margin2.MedianErr, none.MedianErr)
	}
	if !strings.Contains(res.String(), "margin") {
		t.Error("render missing header")
	}
}
