package exp

import (
	"fmt"
	"math"
	"strings"
	"time"

	"wilocator/internal/eval"
	"wilocator/internal/geo"
	"wilocator/internal/locate"
	"wilocator/internal/rf"
	"wilocator/internal/roadnet"
	"wilocator/internal/sensing"
	"wilocator/internal/svd"
	"wilocator/internal/wifi"
	"wilocator/internal/xrand"
)

// CampusRoadLength is the length of the Fig. 10 one-way road segment.
const CampusRoadLength = 260.0

// campusAPs places the 11 numbered APs of Fig. 10 along the campus road.
// AP4/AP5/AP1/AP2 cluster near the west end (location C's neighbourhood),
// AP9/AP10/AP11 near the east end (A and B), matching the rank lists of
// Table II.
func campusAPs() []*wifi.AP {
	mk := func(n int, x, y, ref, exp float64) *wifi.AP {
		return &wifi.AP{
			BSSID: wifi.BSSID(fmt.Sprintf("AP%d", n)), SSID: fmt.Sprintf("campus-%d", n),
			Pos: geo.Pt(x, y), RefRSS: ref, PathLossExp: exp,
		}
	}
	return []*wifi.AP{
		mk(1, 18, 22, -30, 2.9),
		mk(2, 8, -28, -30, 2.9),
		mk(3, 5, 55, -32, 3.1),
		mk(4, 45, 8, -28, 2.8),
		mk(5, 62, -18, -30, 2.8),
		mk(6, 95, 38, -32, 3.0),
		mk(7, 115, -42, -32, 3.0),
		mk(8, 140, 33, -31, 3.0),
		mk(9, 163, -12, -29, 2.9),
		mk(10, 196, 11, -29, 2.8),
		mk(11, 232, -31, -30, 2.9),
	}
}

// CampusProbe is one probed location of Fig. 10 / Table II.
type CampusProbe struct {
	Name string
	// TrueArc is the ground-truth position along the road.
	TrueArc float64
	// Ranked is the fused scan rendered as the Table II row:
	// "AP10(-70), AP9(-71), ...".
	Ranked string
	// EstArc and ErrMeters are the SVD positioning result.
	EstArc    float64
	ErrMeters float64
}

// TableIIResult reproduces Table II and the Fig. 10 positioning experiment.
type TableIIResult struct {
	Probes  []CampusProbe
	MeanErr float64
	// NumAPs and NumTiles describe the constructed campus SVD.
	NumAPs, NumTiles int
}

// String renders the table.
func (r TableIIResult) String() string {
	t := eval.NewTable("Table II / Fig. 10: campus road, measured RSS and positioning error",
		"loc", "surrounding APs (RSS dBm)", "err(m)")
	for _, p := range r.Probes {
		t.AddRow(p.Name, p.Ranked, fmt.Sprintf("%.1f", p.ErrMeters))
	}
	return t.String() + fmt.Sprintf("average error: %.1f m (paper: 2 m)\n", r.MeanErr)
}

// CampusExperiment builds the Fig. 10 campus scenario (a 260 m one-way road
// with 11 hand-placed APs), probes locations A, B and C with fused noisy
// scans, and positions them with a second-order SVD. The paper reports a 2 m
// error at each probe.
func CampusExperiment(seed uint64) (TableIIResult, error) {
	net, err := roadnet.BuildCampus(CampusRoadLength)
	if err != nil {
		return TableIIResult{}, err
	}
	dep, err := wifi.NewDeployment(campusAPs())
	if err != nil {
		return TableIIResult{}, err
	}
	dia, err := svd.Build(net, dep, svd.Config{Order: 3, GridStep: 2, BandWidth: 30})
	if err != nil {
		return TableIIResult{}, err
	}
	pos, err := locate.NewPositioner(dia, 3)
	if err != nil {
		return TableIIResult{}, err
	}
	route := net.Routes()[0]
	phones, err := sensing.NewRiderPhones("campus-bus", 5, dep,
		sensing.PhoneConfig{Model: rf.LogDistance{}, ReportLoss: -1},
		xrand.New(seed^0xCA11AB1E))
	if err != nil {
		return TableIIResult{}, err
	}

	at := Epoch.Add(13 * time.Hour)
	probes := []struct {
		name string
		arc  float64
	}{{"A", 200}, {"B", 155}, {"C", 50}}

	out := TableIIResult{NumAPs: dep.NumAPs(), NumTiles: dia.NumTiles()}
	var total float64
	for _, pr := range probes {
		p := route.PointAt(pr.arc)
		var scans []wifi.Scan
		for _, ph := range phones {
			if s, ok := ph.ScanAt(p, at); ok {
				scans = append(scans, s)
			}
		}
		fused := sensing.Fuse(scans)
		est, err := pos.Locate("campus", fused, nil)
		if err != nil {
			return TableIIResult{}, fmt.Errorf("exp: campus probe %s: %w", pr.name, err)
		}
		e := math.Abs(est.Arc - pr.arc)
		total += e
		out.Probes = append(out.Probes, CampusProbe{
			Name:      pr.name,
			TrueArc:   pr.arc,
			Ranked:    renderRanked(fused),
			EstArc:    est.Arc,
			ErrMeters: e,
		})
	}
	out.MeanErr = total / float64(len(probes))
	return out, nil
}

// renderRanked formats a scan like Table II: strongest first, RSS in dBm.
func renderRanked(s wifi.Scan) string {
	rssOf := make(map[wifi.BSSID]int, len(s.Readings))
	for _, r := range s.Readings {
		rssOf[r.BSSID] = r.RSSI
	}
	var parts []string
	for _, b := range s.RankOrder() {
		parts = append(parts, fmt.Sprintf("%s(%d)", b, rssOf[b]))
	}
	return strings.Join(parts, ", ")
}
