package exp

import (
	"fmt"
	"time"

	"wilocator/internal/eval"
	"wilocator/internal/locate"
	"wilocator/internal/mobility"
	"wilocator/internal/roadnet"
	"wilocator/internal/trafficmap"
	"wilocator/internal/traveltime"
)

// Fig11Result reproduces the Fig. 11 traffic-map comparison: WiLocator marks
// every segment and flags the injected anomaly; the agency-style map leaves
// unconfirmed segments.
type Fig11Result struct {
	// WiLocatorStrip and AgencyStrip are the per-route renderings of the
	// corridor route's map.
	WiLocatorStrip, AgencyStrip string
	// WiLocatorCoverage and AgencyCoverage are marked-segment fractions.
	WiLocatorCoverage, AgencyCoverage float64
	// IncidentSeg is the segment carrying the injected incident;
	// IncidentFlagged is true when WiLocator marks it slow or very slow.
	IncidentSeg     roadnet.SegmentID
	IncidentZ       float64
	IncidentFlagged bool
	// Anomalies are the sites detected on a tracked bus's trajectory;
	// AnomalyNearIncident is true when one lies within the incident zone.
	Anomalies           []trafficmap.Anomaly
	AnomalyNearIncident bool
}

// String renders the comparison.
func (r Fig11Result) String() string {
	t := eval.NewTable("Fig. 11: rush-hour traffic maps (one glyph per corridor segment; '?' = unconfirmed)",
		"system", "coverage", "map")
	t.AddRow("WiLocator", fmt.Sprintf("%.0f%%", r.WiLocatorCoverage*100), r.WiLocatorStrip)
	t.AddRow("Agency", fmt.Sprintf("%.0f%%", r.AgencyCoverage*100), r.AgencyStrip)
	s := t.String()
	s += fmt.Sprintf("incident on segment %d: flagged=%v z=%.2f; trajectory anomalies=%d nearIncident=%v\n",
		r.IncidentSeg, r.IncidentFlagged, r.IncidentZ, len(r.Anomalies), r.AnomalyNearIncident)
	return s
}

// Fig11TrafficMap trains the store, injects a rush-hour incident on a
// corridor segment of the Vancouver network, replays the fleet of the
// evaluation morning chronologically, and compares the WiLocator and
// agency-style traffic maps at the height of the incident. It also runs the
// full crowd-sensing pipeline for one bus through the incident and feeds its
// trajectory to the anomaly detector (Fig. 6).
func Fig11TrafficMap(spec ScenarioSpec, trainDays int) (Fig11Result, error) {
	if trainDays <= 0 {
		trainDays = 8
	}
	sc, err := NewVancouver(spec)
	if err != nil {
		return Fig11Result{}, err
	}
	store, err := TrainStore(sc, trainDays, traveltime.PaperPlan())
	if err != nil {
		return Fig11Result{}, err
	}

	// Incident: a third of the way down route 9's corridor, spanning the
	// whole morning rush, crawling traffic.
	route, _ := sc.Net.Route(roadnet.Route9)
	segIdx := route.NumSegments() / 3
	segID := route.Segments()[segIdx]
	seg, _ := sc.Net.Graph.Segment(segID)
	evalDay := WeekdayServiceDays(trainDays + 1)[trainDays]
	incident := mobility.Incident{
		Seg:        segID,
		Start:      evalDay.Add(8*time.Hour + 15*time.Minute),
		End:        evalDay.Add(10*time.Hour + 30*time.Minute),
		SlowFactor: 6,
		ArcStart:   0,
		ArcEnd:     seg.Length(),
	}

	// Replay the evaluation morning: stream traversals completed by 9:15.
	// WiLocator hears every crowd-sensed bus; the agency only its
	// AVL-equipped fraction of the fleet (the cost-driven gap the paper's
	// introduction describes), which is what leaves its map with
	// unconfirmed segments.
	now := evalDay.Add(9*time.Hour + 15*time.Minute)
	_, recs, err := FleetDay(sc, evalDay, []mobility.Incident{incident}, 777)
	if err != nil {
		return Fig11Result{}, err
	}
	const avlFraction = 5 // one in five vehicles carries an AVL unit
	agencyStore, err := TrainStore(sc, trainDays, traveltime.PaperPlan())
	if err != nil {
		return Fig11Result{}, err
	}
	for _, r := range recs {
		if r.Exit.After(now) {
			break
		}
		rec := traveltime.Record{Seg: r.Seg, RouteID: r.RouteID, Enter: r.Enter, Exit: r.Exit}
		if err := store.Add(rec); err != nil {
			return Fig11Result{}, err
		}
		if r.Trip%avlFraction == 0 {
			if err := agencyStore.Add(rec); err != nil {
				return Fig11Result{}, err
			}
		}
	}

	wil, err := trafficmap.NewGenerator(sc.Net, store, trafficmap.Config{})
	if err != nil {
		return Fig11Result{}, err
	}
	ag, err := trafficmap.NewAgencyStyle(sc.Net, agencyStore, trafficmap.Config{})
	if err != nil {
		return Fig11Result{}, err
	}
	wm, err := wil.MapForRoute(roadnet.Route9, now)
	if err != nil {
		return Fig11Result{}, err
	}
	am, err := ag.MapForRoute(roadnet.Route9, now)
	if err != nil {
		return Fig11Result{}, err
	}
	out := Fig11Result{
		WiLocatorStrip:    trafficmap.Render(wm),
		AgencyStrip:       trafficmap.Render(am),
		WiLocatorCoverage: trafficmap.Coverage(wm),
		AgencyCoverage:    trafficmap.Coverage(am),
		IncidentSeg:       segID,
	}
	st := wil.Classify(segID, now)
	out.IncidentZ = st.Z
	out.IncidentFlagged = st.Condition == trafficmap.Slow || st.Condition == trafficmap.VerySlow

	// Track one bus through the incident with the full pipeline and detect
	// the anomaly site from its trajectory.
	trip, err := sc.DriveTrip(roadnet.Route9, evalDay.Add(8*time.Hour+35*time.Minute), []mobility.Incident{incident}, 4242)
	if err != nil {
		return Fig11Result{}, err
	}
	samples, err := sc.ScanTrip(roadnet.Route9, "anomaly-bus", trip)
	if err != nil {
		return Fig11Result{}, err
	}
	pos, err := locate.NewPositioner(sc.Dia, sc.Dia.Order())
	if err != nil {
		return Fig11Result{}, err
	}
	tracker, err := locate.NewTracker(pos, roadnet.Route9, locate.TrackerConfig{})
	if err != nil {
		return Fig11Result{}, err
	}
	for _, s := range samples {
		// Scans that yield no fix are simply skipped, as on the live server.
		_, _, _ = tracker.Observe(s.Scan)
	}
	// Exclusion list: stops and signalled intersections explain expected
	// dwells (Section V-A.4).
	var exclude []float64
	for _, stop := range route.Stops() {
		exclude = append(exclude, stop.Arc)
	}
	for i := 0; i < route.NumSegments(); i++ {
		sid := route.Segments()[i]
		if s, _ := sc.Net.Graph.Segment(sid); s != nil && s.Signal {
			exclude = append(exclude, route.SegmentEndArc(i))
		}
	}
	// Delta from the historical per-scan road distance at rush speeds.
	delta := trafficmap.DeltaFromHistory(6.5, 10*time.Second, 0.35)
	out.Anomalies = trafficmap.DetectAnomalies(tracker.Trajectory(), delta, 4, exclude, 30)
	incStart := route.SegmentStartArc(segIdx)
	incEnd := route.SegmentEndArc(segIdx)
	for _, a := range out.Anomalies {
		center := (a.StartArc + a.EndArc) / 2
		if center >= incStart-100 && center <= incEnd+100 {
			out.AnomalyNearIncident = true
		}
	}
	return out, nil
}

// SeasonalResult reproduces the Section V-B.2 offline-training step: the
// seasonal index discovers the weekday rush hours and groups the day into
// the paper's five slots.
type SeasonalResult struct {
	Seg       roadnet.SegmentID
	Index     []float64 // 24 hourly values
	RushHours []int
	Plan      traveltime.SlotPlan
}

// String renders the result.
func (r SeasonalResult) String() string {
	t := eval.NewTable(fmt.Sprintf("Seasonal index SI(i,l), corridor segment %d", r.Seg),
		"hour", "SI")
	for h, v := range r.Index {
		if v == 0 {
			continue
		}
		marker := ""
		if v >= traveltime.DefaultRushThreshold {
			marker = "  <- rush"
		}
		t.AddRow(fmt.Sprintf("%02d", h), fmt.Sprintf("%.2f%s", v, marker))
	}
	return t.String() + fmt.Sprintf("rush hours: %v; grouped plan: %v\n", r.RushHours, r.Plan)
}

// SeasonalIndexExperiment trains on hourly slots and reports the seasonal
// index of a mid-corridor segment.
func SeasonalIndexExperiment(spec ScenarioSpec, trainDays int) (SeasonalResult, error) {
	if trainDays <= 0 {
		trainDays = 10
	}
	sc, err := NewVancouver(spec)
	if err != nil {
		return SeasonalResult{}, err
	}
	store, err := TrainStore(sc, trainDays, traveltime.HourlyPlan())
	if err != nil {
		return SeasonalResult{}, err
	}
	route, _ := sc.Net.Route(roadnet.Route9)
	segID := route.Segments()[route.NumSegments()/2]
	si := store.SeasonalIndex(segID)
	plan, err := traveltime.GroupSlots(si, 0)
	if err != nil {
		return SeasonalResult{}, err
	}
	return SeasonalResult{
		Seg:       segID,
		Index:     si,
		RushHours: traveltime.RushHours(si, 0),
		Plan:      plan,
	}, nil
}
