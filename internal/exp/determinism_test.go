package exp

import (
	"testing"
)

// TestExperimentsDeterministic verifies the repo-wide reproducibility claim:
// the same seed yields bit-identical experiment results, and different seeds
// genuinely differ.
func TestExperimentsDeterministic(t *testing.T) {
	runCampus := func(seed uint64) TableIIResult {
		res, err := CampusExperiment(seed)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := runCampus(5), runCampus(5)
	if a.MeanErr != b.MeanErr {
		t.Errorf("campus mean differs across runs: %v vs %v", a.MeanErr, b.MeanErr)
	}
	for i := range a.Probes {
		if a.Probes[i] != b.Probes[i] {
			t.Errorf("probe %d differs: %+v vs %+v", i, a.Probes[i], b.Probes[i])
		}
	}
	if c := runCampus(6); c.MeanErr == a.MeanErr && c.Probes[0].Ranked == a.Probes[0].Ranked {
		t.Error("different seeds produced identical campus results")
	}

	runSweep := func(seed uint64) Fig9bResult {
		res, err := Fig9bErrorVsOrder(seed, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	x, y := runSweep(9), runSweep(9)
	for i := range x.Points {
		if x.Points[i] != y.Points[i] {
			t.Errorf("fig9b point %d differs: %+v vs %+v", i, x.Points[i], y.Points[i])
		}
	}
}

// TestTrackTripDeterministic: the full crowd-sensing + tracking pipeline is
// reproducible fix-for-fix.
func TestTrackTripDeterministic(t *testing.T) {
	run := func() []float64 {
		sc, err := NewCampus(800, ScenarioSpec{Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		errs, _, err := TrackTrip(sc, "campus", "bus", 1, WeekdayServiceDays(1)[0].Add(13*3600e9), sc.Dia.Order())
		if err != nil {
			t.Fatal(err)
		}
		return errs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("fix counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fix %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
