// Package geo provides planar geometry primitives in a local east-north-up
// (ENU) frame, plus a projection between geodetic coordinates and that frame.
//
// All WiLocator computation happens in metres on a local tangent plane: road
// networks, AP positions, bus trajectories and the Signal Voronoi Diagram are
// all planar. LatLng exists only at the system boundary (geo-tagged APs,
// trajectory reports per Definition 6 of the paper).
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used by the equirectangular
// projection. City-scale (< 50 km) errors of this approximation are well
// below the RSS-induced positioning error, so a full ellipsoid model is
// unnecessary.
const EarthRadiusMeters = 6371008.8

// Point is a position in the local ENU frame, in metres.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{X: p.X + q.X, Y: p.Y + q.Y} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{X: p.X - q.X, Y: p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{X: p.X * s, Y: p.Y * s} }

// Dot returns the dot product p · q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p × q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p treated as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root on hot paths such as SVD grid construction.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Lerp linearly interpolates between p and q; t=0 yields p, t=1 yields q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{X: p.X + (q.X-p.X)*t, Y: p.Y + (q.Y-p.Y)*t}
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// LatLng is a geodetic coordinate in degrees.
type LatLng struct {
	Lat float64 `json:"lat"`
	Lng float64 `json:"lng"`
}

// DefaultOrigin is the georeference the synthetic scenarios anchor their
// planar frame at: the W Broadway corridor in Vancouver, where the paper's
// in-situ experiments ran.
var DefaultOrigin = LatLng{Lat: 49.2634, Lng: -123.1380}

// Projection converts between LatLng and the local ENU frame. It is an
// equirectangular projection anchored at an origin; the scale factor along
// longitude is fixed at the origin latitude.
type Projection struct {
	origin LatLng
	cosLat float64
}

// NewProjection returns a projection anchored at origin.
func NewProjection(origin LatLng) *Projection {
	return &Projection{
		origin: origin,
		cosLat: math.Cos(origin.Lat * math.Pi / 180),
	}
}

// Origin returns the anchor of the projection.
func (pr *Projection) Origin() LatLng { return pr.origin }

// ToPoint projects a geodetic coordinate onto the local plane.
func (pr *Projection) ToPoint(ll LatLng) Point {
	const degToRad = math.Pi / 180
	return Point{
		X: (ll.Lng - pr.origin.Lng) * degToRad * EarthRadiusMeters * pr.cosLat,
		Y: (ll.Lat - pr.origin.Lat) * degToRad * EarthRadiusMeters,
	}
}

// ToLatLng unprojects a planar point back to geodetic coordinates.
func (pr *Projection) ToLatLng(p Point) LatLng {
	const radToDeg = 180 / math.Pi
	return LatLng{
		Lat: pr.origin.Lat + p.Y/EarthRadiusMeters*radToDeg,
		Lng: pr.origin.Lng + p.X/(EarthRadiusMeters*pr.cosLat)*radToDeg,
	}
}

// Segment is a directed straight segment between two planar points.
type Segment struct {
	A Point `json:"a"`
	B Point `json:"b"`
}

// Length returns the segment length in metres.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// At returns the point at parameter t in [0,1] along the segment.
func (s Segment) At(t float64) Point { return s.A.Lerp(s.B, t) }

// Project returns the parameter t in [0,1] of the point on the segment
// closest to p, together with that point and the distance from p to it.
func (s Segment) Project(p Point) (t float64, closest Point, dist float64) {
	d := s.B.Sub(s.A)
	den := d.Dot(d)
	if den == 0 {
		return 0, s.A, p.Dist(s.A)
	}
	t = p.Sub(s.A).Dot(d) / den
	t = clamp01(t)
	closest = s.At(t)
	return t, closest, p.Dist(closest)
}

// Direction returns the unit direction vector of the segment. A degenerate
// segment yields the zero vector.
func (s Segment) Direction() Point {
	d := s.B.Sub(s.A)
	n := d.Norm()
	if n == 0 {
		return Point{}
	}
	return d.Scale(1 / n)
}

func clamp01(t float64) float64 {
	switch {
	case t < 0:
		return 0
	case t > 1:
		return 1
	default:
		return t
	}
}
