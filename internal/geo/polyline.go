package geo

import (
	"errors"
	"math"
)

// ErrEmptyPolyline is returned when an operation requires a polyline with at
// least two vertices.
var ErrEmptyPolyline = errors.New("geo: polyline needs at least two vertices")

// Polyline is a directed chain of planar points with precomputed cumulative
// arc lengths, supporting O(log n) interpolation and projection. Polylines
// model road-segment centerlines (paper Definition 3) and full bus routes
// (Definition 4).
type Polyline struct {
	pts []Point
	cum []float64 // cum[i] = arc length from pts[0] to pts[i]
}

// NewPolyline builds a polyline from at least two vertices. The vertex slice
// is copied; callers may reuse it afterwards.
func NewPolyline(pts []Point) (*Polyline, error) {
	if len(pts) < 2 {
		return nil, ErrEmptyPolyline
	}
	cp := make([]Point, len(pts))
	copy(cp, pts)
	cum := make([]float64, len(cp))
	for i := 1; i < len(cp); i++ {
		cum[i] = cum[i-1] + cp[i-1].Dist(cp[i])
	}
	return &Polyline{pts: cp, cum: cum}, nil
}

// MustPolyline is NewPolyline that panics on error. It is intended for
// static scenario construction where an invalid polyline is a programming
// bug.
func MustPolyline(pts []Point) *Polyline {
	pl, err := NewPolyline(pts)
	if err != nil {
		panic(err)
	}
	return pl
}

// Length returns the total arc length of the polyline in metres.
func (pl *Polyline) Length() float64 { return pl.cum[len(pl.cum)-1] }

// Points returns a copy of the polyline vertices.
func (pl *Polyline) Points() []Point {
	cp := make([]Point, len(pl.pts))
	copy(cp, pl.pts)
	return cp
}

// NumVertices returns the number of vertices.
func (pl *Polyline) NumVertices() int { return len(pl.pts) }

// Start returns the first vertex.
func (pl *Polyline) Start() Point { return pl.pts[0] }

// End returns the last vertex.
func (pl *Polyline) End() Point { return pl.pts[len(pl.pts)-1] }

// At returns the point at arc length s from the start. s is clamped to
// [0, Length()].
func (pl *Polyline) At(s float64) Point {
	if s <= 0 {
		return pl.pts[0]
	}
	if s >= pl.Length() {
		return pl.pts[len(pl.pts)-1]
	}
	i := pl.searchCum(s)
	segLen := pl.cum[i+1] - pl.cum[i]
	if segLen == 0 {
		return pl.pts[i]
	}
	t := (s - pl.cum[i]) / segLen
	return pl.pts[i].Lerp(pl.pts[i+1], t)
}

// DirectionAt returns the unit tangent of the polyline at arc length s.
func (pl *Polyline) DirectionAt(s float64) Point {
	if s < 0 {
		s = 0
	}
	if s >= pl.Length() {
		s = pl.Length() - 1e-9
		if s < 0 {
			s = 0
		}
	}
	i := pl.searchCum(s)
	return Segment{A: pl.pts[i], B: pl.pts[i+1]}.Direction()
}

// searchCum returns the index i such that cum[i] <= s < cum[i+1].
func (pl *Polyline) searchCum(s float64) int {
	lo, hi := 0, len(pl.cum)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if pl.cum[mid] <= s {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Project returns the arc length along the polyline of the point closest to
// p, the closest point itself, and the Euclidean distance from p to it.
func (pl *Polyline) Project(p Point) (s float64, closest Point, dist float64) {
	best := math.Inf(1)
	for i := 0; i+1 < len(pl.pts); i++ {
		seg := Segment{A: pl.pts[i], B: pl.pts[i+1]}
		t, c, d := seg.Project(p)
		if d < best {
			best = d
			closest = c
			s = pl.cum[i] + t*seg.Length()
		}
	}
	return s, closest, best
}

// Slice returns a new polyline covering arc lengths [s0, s1] of pl.
// The bounds are clamped and must satisfy s0 < s1 after clamping.
func (pl *Polyline) Slice(s0, s1 float64) (*Polyline, error) {
	if s0 < 0 {
		s0 = 0
	}
	if s1 > pl.Length() {
		s1 = pl.Length()
	}
	if s1-s0 <= 0 {
		return nil, errors.New("geo: empty polyline slice")
	}
	pts := []Point{pl.At(s0)}
	for i, c := range pl.cum {
		if c > s0 && c < s1 {
			pts = append(pts, pl.pts[i])
		}
	}
	pts = append(pts, pl.At(s1))
	return NewPolyline(pts)
}

// Sample returns points every step metres along the polyline, always
// including the final point. step must be positive.
func (pl *Polyline) Sample(step float64) []Point {
	if step <= 0 {
		return []Point{pl.Start(), pl.End()}
	}
	n := int(pl.Length()/step) + 1
	out := make([]Point, 0, n+1)
	for s := 0.0; s < pl.Length(); s += step {
		out = append(out, pl.At(s))
	}
	out = append(out, pl.End())
	return out
}

// Reverse returns the polyline traversed in the opposite direction.
func (pl *Polyline) Reverse() *Polyline {
	rev := make([]Point, len(pl.pts))
	for i, p := range pl.pts {
		rev[len(pl.pts)-1-i] = p
	}
	out, err := NewPolyline(rev)
	if err != nil {
		// Unreachable: pl had >= 2 vertices.
		panic(err)
	}
	return out
}

// Concat appends other to pl, joining end-to-start. If the join points are
// further apart than tol metres an error is returned.
func (pl *Polyline) Concat(other *Polyline, tol float64) (*Polyline, error) {
	if pl.End().Dist(other.Start()) > tol {
		return nil, errors.New("geo: polylines do not join")
	}
	pts := make([]Point, 0, len(pl.pts)+len(other.pts))
	pts = append(pts, pl.pts...)
	pts = append(pts, other.pts[1:]...)
	return NewPolyline(pts)
}
