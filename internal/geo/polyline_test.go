package geo

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func lShape(t *testing.T) *Polyline {
	t.Helper()
	pl, err := NewPolyline([]Point{Pt(0, 0), Pt(100, 0), Pt(100, 50)})
	if err != nil {
		t.Fatalf("NewPolyline: %v", err)
	}
	return pl
}

func TestNewPolylineRejectsShort(t *testing.T) {
	if _, err := NewPolyline(nil); !errors.Is(err, ErrEmptyPolyline) {
		t.Errorf("nil input: err = %v, want ErrEmptyPolyline", err)
	}
	if _, err := NewPolyline([]Point{Pt(1, 1)}); !errors.Is(err, ErrEmptyPolyline) {
		t.Errorf("1 vertex: err = %v, want ErrEmptyPolyline", err)
	}
}

func TestPolylineCopiesInput(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(10, 0)}
	pl, err := NewPolyline(pts)
	if err != nil {
		t.Fatal(err)
	}
	pts[0] = Pt(999, 999)
	if pl.Start() != Pt(0, 0) {
		t.Error("polyline aliased caller slice")
	}
	got := pl.Points()
	got[0] = Pt(-1, -1)
	if pl.Start() != Pt(0, 0) {
		t.Error("Points() exposed internal slice")
	}
}

func TestPolylineLengthAndAt(t *testing.T) {
	pl := lShape(t)
	if pl.Length() != 150 {
		t.Fatalf("Length = %v, want 150", pl.Length())
	}
	tests := []struct {
		s    float64
		want Point
	}{
		{-5, Pt(0, 0)},
		{0, Pt(0, 0)},
		{50, Pt(50, 0)},
		{100, Pt(100, 0)},
		{125, Pt(100, 25)},
		{150, Pt(100, 50)},
		{999, Pt(100, 50)},
	}
	for _, tt := range tests {
		if got := pl.At(tt.s); got.Dist(tt.want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", tt.s, got, tt.want)
		}
	}
}

func TestPolylineDirectionAt(t *testing.T) {
	pl := lShape(t)
	if d := pl.DirectionAt(10); d.Dist(Pt(1, 0)) > 1e-12 {
		t.Errorf("DirectionAt(10) = %v, want (1,0)", d)
	}
	if d := pl.DirectionAt(120); d.Dist(Pt(0, 1)) > 1e-12 {
		t.Errorf("DirectionAt(120) = %v, want (0,1)", d)
	}
	if d := pl.DirectionAt(150); d.Dist(Pt(0, 1)) > 1e-12 {
		t.Errorf("DirectionAt(end) = %v, want (0,1)", d)
	}
}

func TestPolylineProject(t *testing.T) {
	pl := lShape(t)
	tests := []struct {
		name  string
		p     Point
		wantS float64
		wantD float64
	}{
		{"below first leg", Pt(30, -4), 30, 4},
		{"beyond corner outside", Pt(104, -3), 100, 5},
		{"right of second leg", Pt(108, 20), 120, 8},
		{"past end", Pt(100, 60), 150, 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s, _, d := pl.Project(tt.p)
			if !almostEq(s, tt.wantS, 1e-9) || !almostEq(d, tt.wantD, 1e-9) {
				t.Errorf("Project(%v) = (s=%v, d=%v), want (s=%v, d=%v)",
					tt.p, s, d, tt.wantS, tt.wantD)
			}
		})
	}
}

func TestPolylineProjectAtInverse(t *testing.T) {
	pl := lShape(t)
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		s := math.Mod(math.Abs(raw), pl.Length())
		p := pl.At(s)
		gotS, closest, d := pl.Project(p)
		// Points exactly on the corner may project to either leg; accept
		// arc-length equality within tolerance.
		return d < 1e-9 && almostEq(gotS, s, 1e-6) && closest.Dist(p) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolylineSlice(t *testing.T) {
	pl := lShape(t)
	sl, err := pl.Slice(50, 125)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(sl.Length(), 75, 1e-9) {
		t.Errorf("slice length = %v, want 75", sl.Length())
	}
	if sl.Start().Dist(Pt(50, 0)) > 1e-9 || sl.End().Dist(Pt(100, 25)) > 1e-9 {
		t.Errorf("slice endpoints = %v..%v", sl.Start(), sl.End())
	}
	if _, err := pl.Slice(100, 100); err == nil {
		t.Error("empty slice: want error")
	}
	// Clamped slice.
	sl2, err := pl.Slice(-10, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(sl2.Length(), 150, 1e-9) {
		t.Errorf("clamped slice length = %v, want 150", sl2.Length())
	}
}

func TestPolylineSample(t *testing.T) {
	pl := lShape(t)
	pts := pl.Sample(10)
	if len(pts) != 16 {
		t.Fatalf("Sample(10) returned %d points, want 16", len(pts))
	}
	if pts[0] != Pt(0, 0) || pts[len(pts)-1] != Pt(100, 50) {
		t.Errorf("sample endpoints = %v..%v", pts[0], pts[len(pts)-1])
	}
	// Bad step degrades to endpoints.
	if got := pl.Sample(0); len(got) != 2 {
		t.Errorf("Sample(0) = %d points, want 2", len(got))
	}
}

func TestPolylineReverse(t *testing.T) {
	pl := lShape(t)
	rev := pl.Reverse()
	if rev.Start() != pl.End() || rev.End() != pl.Start() {
		t.Errorf("reverse endpoints wrong: %v..%v", rev.Start(), rev.End())
	}
	if !almostEq(rev.Length(), pl.Length(), 1e-12) {
		t.Errorf("reverse length = %v", rev.Length())
	}
	if p := rev.At(25); p.Dist(Pt(100, 25)) > 1e-9 {
		t.Errorf("rev.At(25) = %v, want (100,25)", p)
	}
}

func TestPolylineConcat(t *testing.T) {
	a := MustPolyline([]Point{Pt(0, 0), Pt(10, 0)})
	b := MustPolyline([]Point{Pt(10, 0), Pt(10, 5)})
	c, err := a.Concat(b, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(c.Length(), 15, 1e-12) {
		t.Errorf("concat length = %v, want 15", c.Length())
	}
	far := MustPolyline([]Point{Pt(99, 0), Pt(99, 5)})
	if _, err := a.Concat(far, 0.5); err == nil {
		t.Error("disjoint concat: want error")
	}
}

func TestMustPolylinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustPolyline with one vertex did not panic")
		}
	}()
	MustPolyline([]Point{Pt(0, 0)})
}
