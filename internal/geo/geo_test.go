package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPointArithmetic(t *testing.T) {
	tests := []struct {
		name string
		got  Point
		want Point
	}{
		{"add", Pt(1, 2).Add(Pt(3, 4)), Pt(4, 6)},
		{"sub", Pt(1, 2).Sub(Pt(3, 4)), Pt(-2, -2)},
		{"scale", Pt(1, -2).Scale(2.5), Pt(2.5, -5)},
		{"lerp mid", Pt(0, 0).Lerp(Pt(10, 20), 0.5), Pt(5, 10)},
		{"lerp zero", Pt(3, 4).Lerp(Pt(10, 20), 0), Pt(3, 4)},
		{"lerp one", Pt(3, 4).Lerp(Pt(10, 20), 1), Pt(10, 20)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.got != tt.want {
				t.Errorf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestPointDistAndNorm(t *testing.T) {
	if d := Pt(0, 0).Dist(Pt(3, 4)); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := Pt(1, 1).Dist2(Pt(4, 5)); d != 25 {
		t.Errorf("Dist2 = %v, want 25", d)
	}
	if n := Pt(-3, 4).Norm(); n != 5 {
		t.Errorf("Norm = %v, want 5", n)
	}
}

func TestDotCross(t *testing.T) {
	if d := Pt(1, 2).Dot(Pt(3, 4)); d != 11 {
		t.Errorf("Dot = %v, want 11", d)
	}
	if c := Pt(1, 0).Cross(Pt(0, 1)); c != 1 {
		t.Errorf("Cross = %v, want 1", c)
	}
}

func TestDist2MatchesDistSquared(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) {
			return true
		}
		// Keep magnitudes city-scale to avoid overflow artefacts.
		a := Pt(math.Mod(ax, 1e5), math.Mod(ay, 1e5))
		b := Pt(math.Mod(bx, 1e5), math.Mod(by, 1e5))
		d := a.Dist(b)
		return almostEq(d*d, a.Dist2(b), 1e-4*(1+d*d))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	origin := LatLng{Lat: 49.2634, Lng: -123.1380} // Vancouver, W Broadway
	pr := NewProjection(origin)

	tests := []LatLng{
		origin,
		{Lat: 49.2700, Lng: -123.1000},
		{Lat: 49.2500, Lng: -123.2000},
		{Lat: 49.3000, Lng: -123.0500},
	}
	for _, ll := range tests {
		p := pr.ToPoint(ll)
		back := pr.ToLatLng(p)
		if !almostEq(back.Lat, ll.Lat, 1e-9) || !almostEq(back.Lng, ll.Lng, 1e-9) {
			t.Errorf("round trip %v -> %v -> %v", ll, p, back)
		}
	}
}

func TestProjectionScale(t *testing.T) {
	pr := NewProjection(LatLng{Lat: 49.2634, Lng: -123.1380})
	// One degree of latitude is ~111.2 km everywhere.
	p := pr.ToPoint(LatLng{Lat: 50.2634, Lng: -123.1380})
	if !almostEq(p.Y, 111194.9, 50) {
		t.Errorf("1 deg lat = %.1f m, want ~111195 m", p.Y)
	}
	if !almostEq(p.X, 0, 1e-9) {
		t.Errorf("X = %v, want 0", p.X)
	}
	// One degree of longitude at 49.26N is ~72.6 km.
	q := pr.ToPoint(LatLng{Lat: 49.2634, Lng: -122.1380})
	if q.X < 70000 || q.X > 75000 {
		t.Errorf("1 deg lng = %.1f m, want ~72.6 km", q.X)
	}
}

func TestSegmentProject(t *testing.T) {
	seg := Segment{A: Pt(0, 0), B: Pt(10, 0)}
	tests := []struct {
		name  string
		p     Point
		wantT float64
		wantD float64
	}{
		{"above middle", Pt(5, 3), 0.5, 3},
		{"before start", Pt(-4, 3), 0, 5},
		{"after end", Pt(13, 4), 1, 5},
		{"on segment", Pt(2, 0), 0.2, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			gotT, _, gotD := seg.Project(tt.p)
			if !almostEq(gotT, tt.wantT, 1e-12) || !almostEq(gotD, tt.wantD, 1e-12) {
				t.Errorf("Project(%v) = (%v, %v), want (%v, %v)",
					tt.p, gotT, gotD, tt.wantT, tt.wantD)
			}
		})
	}
}

func TestSegmentDegenerate(t *testing.T) {
	seg := Segment{A: Pt(1, 1), B: Pt(1, 1)}
	tpar, c, d := seg.Project(Pt(4, 5))
	if tpar != 0 || c != Pt(1, 1) || d != 5 {
		t.Errorf("degenerate Project = (%v,%v,%v)", tpar, c, d)
	}
	if dir := seg.Direction(); dir != (Point{}) {
		t.Errorf("degenerate Direction = %v, want zero", dir)
	}
}

func TestSegmentDirection(t *testing.T) {
	seg := Segment{A: Pt(0, 0), B: Pt(0, 7)}
	if dir := seg.Direction(); !almostEq(dir.X, 0, 1e-12) || !almostEq(dir.Y, 1, 1e-12) {
		t.Errorf("Direction = %v, want (0,1)", dir)
	}
}
