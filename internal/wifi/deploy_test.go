package wifi

import (
	"math"
	"testing"

	"wilocator/internal/roadnet"
	"wilocator/internal/xrand"
)

func TestDeployValidation(t *testing.T) {
	net, err := roadnet.BuildCampus(200)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Deploy(net, DeploySpec{}, xrand.New(1)); err == nil {
		t.Error("zero spacing accepted")
	}
	bad := DefaultDeploySpec()
	bad.RefRSSMax = bad.RefRSSMin - 1
	if _, err := Deploy(net, bad, xrand.New(1)); err == nil {
		t.Error("inverted RSS range accepted")
	}
}

func TestDeployDensityAndGeometry(t *testing.T) {
	net, err := roadnet.BuildCampus(1000)
	if err != nil {
		t.Fatal(err)
	}
	spec := DefaultDeploySpec()
	dep, err := Deploy(net, spec, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	// ~1000/35 = 28 APs expected.
	if n := dep.NumAPs(); n < 20 || n > 35 {
		t.Errorf("deployed %d APs on 1 km, want ~28", n)
	}
	route, _ := net.Route("campus")
	for _, ap := range dep.APs() {
		_, d := route.Project(ap.Pos)
		if d < spec.MinOffset-1e-9 || d > spec.MaxOffset+1e-9 {
			t.Errorf("AP %s offset %v outside [%v, %v]", ap.BSSID, d, spec.MinOffset, spec.MaxOffset)
		}
		if ap.RefRSS < spec.RefRSSMin || ap.RefRSS > spec.RefRSSMax {
			t.Errorf("AP %s RefRSS %v out of range", ap.BSSID, ap.RefRSS)
		}
		if ap.PathLossExp < spec.PathLossExpMin || ap.PathLossExp > spec.PathLossExpMax {
			t.Errorf("AP %s exponent %v out of range", ap.BSSID, ap.PathLossExp)
		}
	}
}

func TestDeployDeterminism(t *testing.T) {
	net, err := roadnet.BuildVancouver(roadnet.DefaultVancouverSpec())
	if err != nil {
		t.Fatal(err)
	}
	d1, err := Deploy(net, DefaultDeploySpec(), xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Deploy(net, DefaultDeploySpec(), xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if d1.NumAPs() != d2.NumAPs() {
		t.Fatalf("AP counts differ: %d vs %d", d1.NumAPs(), d2.NumAPs())
	}
	a1, a2 := d1.APs(), d2.APs()
	for i := range a1 {
		if *a1[i] != *a2[i] {
			t.Fatalf("AP %d differs: %+v vs %+v", i, a1[i], a2[i])
		}
	}
}

func TestDeploySpacingControlsDensity(t *testing.T) {
	net, err := roadnet.BuildCampus(2000)
	if err != nil {
		t.Fatal(err)
	}
	sparse := DefaultDeploySpec()
	sparse.Spacing = 100
	dense := DefaultDeploySpec()
	dense.Spacing = 20
	ds, err := Deploy(net, sparse, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	dd, err := Deploy(net, dense, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(dd.NumAPs()) / float64(ds.NumAPs())
	if math.Abs(ratio-5) > 1 {
		t.Errorf("density ratio = %v, want ~5", ratio)
	}
}

func TestHomogeneousSpec(t *testing.T) {
	s := DefaultDeploySpec()
	if s.Homogeneous() {
		t.Error("default spec reported homogeneous")
	}
	s.RefRSSMin, s.RefRSSMax = -30, -30
	s.PathLossExpMin, s.PathLossExpMax = 3, 3
	if !s.Homogeneous() {
		t.Error("fixed-parameter spec not reported homogeneous")
	}
}
