// Package wifi models geo-tagged WiFi access points, AP deployments along a
// road network, and the scans that phones report to the WiLocator server.
//
// An AP corresponds to a "site" / "generator" of the paper's Signal Voronoi
// Diagram: a geo-tagged hotspot (latitude/longitude known from a hotspot
// directory) with its own transmit power and propagation environment — the
// heterogeneity that makes the SVD differ from a plain Euclidean Voronoi
// diagram.
package wifi

import (
	"fmt"
	"sort"
	"time"

	"wilocator/internal/geo"
	"wilocator/internal/rf"
)

// BSSID identifies an access point (its MAC address in reality).
type BSSID string

// AP is a geo-tagged WiFi access point.
type AP struct {
	BSSID BSSID     `json:"bssid"`
	SSID  string    `json:"ssid"`
	Pos   geo.Point `json:"pos"`
	// RefRSS is the received power at the propagation model's reference
	// distance, in dBm. It subsumes transmit power and antenna gains.
	RefRSS float64 `json:"refRss"`
	// PathLossExp is the path-loss exponent of the AP's local environment.
	PathLossExp float64 `json:"pathLossExp"`
}

// Reading is a single (AP, RSS) observation within a scan.
type Reading struct {
	BSSID BSSID `json:"bssid"`
	RSSI  int   `json:"rssi"` // dBm
}

// Scan is the WiFi information one phone collects in one scan cycle.
type Scan struct {
	Time     time.Time `json:"time"`
	Readings []Reading `json:"readings"`
}

// RankOrder returns the scan's BSSIDs in descending RSS order. Equal RSS
// values (ties, which the paper treats specially during positioning) are
// broken by BSSID so the order is deterministic; Ties reports the groups.
func (s Scan) RankOrder() []BSSID {
	rs := make([]Reading, len(s.Readings))
	copy(rs, s.Readings)
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].RSSI != rs[j].RSSI {
			return rs[i].RSSI > rs[j].RSSI
		}
		return rs[i].BSSID < rs[j].BSSID
	})
	out := make([]BSSID, len(rs))
	for i, r := range rs {
		out[i] = r.BSSID
	}
	return out
}

// Ties returns groups of BSSIDs sharing an identical RSS value, strongest
// group first. Singleton groups are included, so the concatenation of the
// groups equals RankOrder().
func (s Scan) Ties() [][]BSSID {
	rs := make([]Reading, len(s.Readings))
	copy(rs, s.Readings)
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].RSSI != rs[j].RSSI {
			return rs[i].RSSI > rs[j].RSSI
		}
		return rs[i].BSSID < rs[j].BSSID
	})
	var out [][]BSSID
	for i := 0; i < len(rs); {
		j := i
		var group []BSSID
		for j < len(rs) && rs[j].RSSI == rs[i].RSSI {
			group = append(group, rs[j].BSSID)
			j++
		}
		out = append(out, group)
		i = j
	}
	return out
}

// Strongest returns the BSSID with the highest RSS, or false for an empty
// scan.
func (s Scan) Strongest() (BSSID, bool) {
	if len(s.Readings) == 0 {
		return "", false
	}
	return s.RankOrder()[0], true
}

// Deployment is a set of APs with activation state. AP dynamics
// (reconfiguration, failure, replacement — Section III-B of the paper) are
// modelled by deactivating and reactivating APs.
type Deployment struct {
	aps      []*AP
	byBSSID  map[BSSID]*AP
	inactive map[BSSID]bool
}

// NewDeployment builds a deployment from APs. BSSIDs must be unique.
func NewDeployment(aps []*AP) (*Deployment, error) {
	d := &Deployment{
		byBSSID:  make(map[BSSID]*AP, len(aps)),
		inactive: make(map[BSSID]bool),
	}
	for _, ap := range aps {
		if ap.BSSID == "" {
			return nil, fmt.Errorf("wifi: AP with empty BSSID")
		}
		if _, dup := d.byBSSID[ap.BSSID]; dup {
			return nil, fmt.Errorf("wifi: duplicate BSSID %q", ap.BSSID)
		}
		cp := *ap
		d.aps = append(d.aps, &cp)
		d.byBSSID[ap.BSSID] = &cp
	}
	return d, nil
}

// AP returns the AP with the given BSSID.
func (d *Deployment) AP(b BSSID) (*AP, bool) {
	ap, ok := d.byBSSID[b]
	return ap, ok
}

// APs returns all APs (active and inactive) in insertion order. The slice is
// a copy but the pointers are shared; callers must not mutate the APs.
func (d *Deployment) APs() []*AP {
	cp := make([]*AP, len(d.aps))
	copy(cp, d.aps)
	return cp
}

// NumAPs returns the total number of APs.
func (d *Deployment) NumAPs() int { return len(d.aps) }

// Active reports whether the AP is present and active.
func (d *Deployment) Active(b BSSID) bool {
	_, ok := d.byBSSID[b]
	return ok && !d.inactive[b]
}

// ActiveAPs returns all currently active APs in insertion order.
func (d *Deployment) ActiveAPs() []*AP {
	out := make([]*AP, 0, len(d.aps))
	for _, ap := range d.aps {
		if !d.inactive[ap.BSSID] {
			out = append(out, ap)
		}
	}
	return out
}

// Deactivate marks an AP out of function (paper's AP-dynamics scenario).
func (d *Deployment) Deactivate(b BSSID) error {
	if _, ok := d.byBSSID[b]; !ok {
		return fmt.Errorf("wifi: unknown BSSID %q", b)
	}
	d.inactive[b] = true
	return nil
}

// Reactivate restores a previously deactivated AP.
func (d *Deployment) Reactivate(b BSSID) error {
	if _, ok := d.byBSSID[b]; !ok {
		return fmt.Errorf("wifi: unknown BSSID %q", b)
	}
	delete(d.inactive, b)
	return nil
}

// ExpectedRSS returns the mean (noise-free) RSS of AP b at point p under the
// given propagation model. This is what SVD construction consumes — the
// stable "average rank" signal space.
func (d *Deployment) ExpectedRSS(model rf.LogDistance, b BSSID, p geo.Point) (float64, bool) {
	ap, ok := d.byBSSID[b]
	if !ok || d.inactive[b] {
		return 0, false
	}
	return model.ExpectedRSS(ap.RefRSS, ap.PathLossExp, p.Dist(ap.Pos)), true
}

// Sensor couples a deployment with a noisy receiver to generate the scans a
// phone would observe at a given position.
type Sensor struct {
	dep *Deployment
	rx  *rf.Receiver
}

// NewSensor builds a sensor over the deployment.
func NewSensor(dep *Deployment, rx *rf.Receiver) (*Sensor, error) {
	if dep == nil || rx == nil {
		return nil, fmt.Errorf("wifi: nil deployment or receiver")
	}
	return &Sensor{dep: dep, rx: rx}, nil
}

// ScanAt simulates one WiFi scan at position p and time t: every active AP
// whose noisy RSS clears the detection floor (and survives dropout)
// contributes a reading. Readings are in insertion order of the deployment,
// as a real scan list is unordered.
func (s *Sensor) ScanAt(p geo.Point, t time.Time) Scan {
	scan := Scan{Time: t}
	for _, ap := range s.dep.aps {
		if s.dep.inactive[ap.BSSID] {
			continue
		}
		rssi, ok := s.rx.Sample(ap.RefRSS, ap.PathLossExp, p.Dist(ap.Pos))
		if !ok {
			continue
		}
		scan.Readings = append(scan.Readings, Reading{BSSID: ap.BSSID, RSSI: rssi})
	}
	return scan
}
