package wifi

import (
	"testing"
	"time"

	"wilocator/internal/geo"
	"wilocator/internal/rf"
	"wilocator/internal/xrand"
)

func sampleAPs() []*AP {
	return []*AP{
		{BSSID: "a", Pos: geo.Pt(0, 10), RefRSS: -30, PathLossExp: 3},
		{BSSID: "b", Pos: geo.Pt(50, -10), RefRSS: -30, PathLossExp: 3},
		{BSSID: "c", Pos: geo.Pt(100, 10), RefRSS: -28, PathLossExp: 2.8},
	}
}

func TestNewDeploymentValidation(t *testing.T) {
	if _, err := NewDeployment([]*AP{{BSSID: ""}}); err == nil {
		t.Error("empty BSSID accepted")
	}
	dup := []*AP{{BSSID: "x"}, {BSSID: "x"}}
	if _, err := NewDeployment(dup); err == nil {
		t.Error("duplicate BSSID accepted")
	}
}

func TestDeploymentCopiesAPs(t *testing.T) {
	aps := sampleAPs()
	d, err := NewDeployment(aps)
	if err != nil {
		t.Fatal(err)
	}
	aps[0].RefRSS = -99
	got, _ := d.AP("a")
	if got.RefRSS != -30 {
		t.Error("deployment aliased caller AP")
	}
}

func TestActivateDeactivate(t *testing.T) {
	d, err := NewDeployment(sampleAPs())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Active("a") || d.NumAPs() != 3 {
		t.Fatal("initial state wrong")
	}
	if err := d.Deactivate("b"); err != nil {
		t.Fatal(err)
	}
	if d.Active("b") {
		t.Error("b still active")
	}
	if got := len(d.ActiveAPs()); got != 2 {
		t.Errorf("ActiveAPs = %d, want 2", got)
	}
	if err := d.Reactivate("b"); err != nil {
		t.Fatal(err)
	}
	if !d.Active("b") {
		t.Error("b not reactivated")
	}
	if err := d.Deactivate("zz"); err == nil {
		t.Error("unknown deactivate accepted")
	}
	if err := d.Reactivate("zz"); err == nil {
		t.Error("unknown reactivate accepted")
	}
	if d.Active("zz") {
		t.Error("unknown BSSID reported active")
	}
}

func TestExpectedRSS(t *testing.T) {
	d, err := NewDeployment(sampleAPs())
	if err != nil {
		t.Fatal(err)
	}
	m := rf.LogDistance{}
	v, ok := d.ExpectedRSS(m, "a", geo.Pt(0, 20)) // 10 m away
	if !ok || v != -60 {
		t.Errorf("ExpectedRSS = (%v, %v), want (-60, true)", v, ok)
	}
	if _, ok := d.ExpectedRSS(m, "zz", geo.Pt(0, 0)); ok {
		t.Error("unknown AP returned RSS")
	}
	if err := d.Deactivate("a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.ExpectedRSS(m, "a", geo.Pt(0, 0)); ok {
		t.Error("inactive AP returned RSS")
	}
}

func TestScanRankOrderAndTies(t *testing.T) {
	s := Scan{Readings: []Reading{
		{BSSID: "d", RSSI: -70},
		{BSSID: "a", RSSI: -50},
		{BSSID: "c", RSSI: -70},
		{BSSID: "b", RSSI: -60},
	}}
	order := s.RankOrder()
	want := []BSSID{"a", "b", "c", "d"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("RankOrder = %v, want %v", order, want)
		}
	}
	ties := s.Ties()
	if len(ties) != 3 {
		t.Fatalf("Ties groups = %d, want 3", len(ties))
	}
	if len(ties[2]) != 2 || ties[2][0] != "c" || ties[2][1] != "d" {
		t.Errorf("tie group = %v, want [c d]", ties[2])
	}
	top, ok := s.Strongest()
	if !ok || top != "a" {
		t.Errorf("Strongest = %v, %v", top, ok)
	}
}

func TestScanEmpty(t *testing.T) {
	var s Scan
	if _, ok := s.Strongest(); ok {
		t.Error("empty scan has strongest AP")
	}
	if got := s.RankOrder(); len(got) != 0 {
		t.Errorf("RankOrder on empty = %v", got)
	}
}

func TestSensorScanAt(t *testing.T) {
	d, err := NewDeployment(sampleAPs())
	if err != nil {
		t.Fatal(err)
	}
	rx, err := rf.NewReceiver(rf.LogDistance{}, rf.NoNoise, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	sensor, err := NewSensor(d, rx)
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2016, 3, 1, 8, 0, 0, 0, time.UTC)
	scan := sensor.ScanAt(geo.Pt(0, 0), at)
	if !scan.Time.Equal(at) {
		t.Errorf("scan time = %v", scan.Time)
	}
	// AP a is 10 m away (-60), b ~51 m (-81.1), c ~100.5 m (-84) — all
	// above the -90 floor.
	if len(scan.Readings) != 3 {
		t.Fatalf("readings = %v", scan.Readings)
	}
	if top, _ := scan.Strongest(); top != "a" {
		t.Errorf("strongest = %v, want a", top)
	}

	// Deactivated APs disappear from scans.
	if err := d.Deactivate("a"); err != nil {
		t.Fatal(err)
	}
	scan2 := sensor.ScanAt(geo.Pt(0, 0), at)
	for _, r := range scan2.Readings {
		if r.BSSID == "a" {
			t.Error("inactive AP present in scan")
		}
	}
}

func TestNewSensorValidation(t *testing.T) {
	if _, err := NewSensor(nil, nil); err == nil {
		t.Error("nil args accepted")
	}
}
