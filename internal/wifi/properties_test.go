package wifi

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomScan generates scans with up to 12 readings over a small BSSID pool
// (so RSS ties occur frequently). BSSIDs are unique within a scan, matching
// what a real WiFi scan (and any Deployment) guarantees.
func randomScan(r *rand.Rand) Scan {
	n := r.Intn(12)
	s := Scan{}
	seen := make(map[BSSID]bool)
	for i := 0; i < n; i++ {
		b := BSSID(string(rune('a' + r.Intn(20))))
		if seen[b] {
			continue
		}
		seen[b] = true
		s.Readings = append(s.Readings, Reading{
			BSSID: b,
			RSSI:  -40 - r.Intn(50),
		})
	}
	return s
}

// scanGen adapts randomScan to testing/quick.
type scanGen struct{ Scan Scan }

// Generate implements quick.Generator.
func (scanGen) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(scanGen{Scan: randomScan(r)})
}

// TestRankOrderIsSortedPermutation: RankOrder returns exactly the scan's
// BSSIDs, in non-increasing RSS order.
func TestRankOrderIsSortedPermutation(t *testing.T) {
	f := func(g scanGen) bool {
		s := g.Scan
		order := s.RankOrder()
		if len(order) != len(s.Readings) {
			return false
		}
		rssOf := make(map[BSSID]int, len(s.Readings))
		for _, r := range s.Readings {
			rssOf[r.BSSID] = r.RSSI
		}
		seen := make(map[BSSID]bool, len(order))
		for i, b := range order {
			if _, known := rssOf[b]; !known || seen[b] {
				return false
			}
			seen[b] = true
			if i > 0 && rssOf[b] > rssOf[order[i-1]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTiesConcatenationEqualsRankOrder: flattening the tie groups reproduces
// the rank order exactly.
func TestTiesConcatenationEqualsRankOrder(t *testing.T) {
	f := func(g scanGen) bool {
		s := g.Scan
		var flat []BSSID
		for _, group := range s.Ties() {
			flat = append(flat, group...)
		}
		order := s.RankOrder()
		if len(flat) != len(order) {
			return false
		}
		for i := range flat {
			if flat[i] != order[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTieGroupsShareRSS: within each tie group all readings share one RSS
// value, and consecutive groups have strictly decreasing RSS.
func TestTieGroupsShareRSS(t *testing.T) {
	f := func(g scanGen) bool {
		s := g.Scan
		rssOf := make(map[BSSID]int, len(s.Readings))
		for _, r := range s.Readings {
			rssOf[r.BSSID] = r.RSSI
		}
		prev := 1 << 20
		for _, group := range s.Ties() {
			v := rssOf[group[0]]
			for _, b := range group {
				if rssOf[b] != v {
					return false
				}
			}
			if v >= prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
