package wifi

import (
	"fmt"

	"wilocator/internal/geo"
	"wilocator/internal/roadnet"
	"wilocator/internal/xrand"
)

// DeploySpec parameterises the synthetic AP deployment along a road network.
// Defaults (DefaultDeploySpec) model a dense urban corridor: a hotspot every
// ~35 m of street (shops, cafes, homes), set back from the centreline, with
// heterogeneous transmit powers and propagation environments.
type DeploySpec struct {
	// Spacing is the mean along-road distance between APs in metres.
	Spacing float64
	// SpacingJitter is the half-width of the uniform jitter applied to each
	// AP's along-road position.
	SpacingJitter float64
	// MinOffset and MaxOffset bound the perpendicular distance from the
	// road centreline; the side is chosen at random.
	MinOffset, MaxOffset float64
	// RefRSSMin and RefRSSMax bound the per-AP reference received power in
	// dBm (heterogeneous transmit power).
	RefRSSMin, RefRSSMax float64
	// PathLossExpMin and PathLossExpMax bound the per-AP path-loss exponent
	// (heterogeneous environments).
	PathLossExpMin, PathLossExpMax float64
}

// DefaultDeploySpec returns the deployment used by the evaluation scenarios.
func DefaultDeploySpec() DeploySpec {
	return DeploySpec{
		Spacing:        35,
		SpacingJitter:  10,
		MinOffset:      5,
		MaxOffset:      25,
		RefRSSMin:      -34,
		RefRSSMax:      -26,
		PathLossExpMin: 2.6,
		PathLossExpMax: 3.4,
	}
}

// Homogeneous reports whether every AP generated under the spec has
// identical RF parameters (the special case in which the SVD degenerates to
// the Euclidean Voronoi diagram).
func (s DeploySpec) Homogeneous() bool {
	return s.RefRSSMin == s.RefRSSMax && s.PathLossExpMin == s.PathLossExpMax
}

// Deploy generates geo-tagged APs along every road segment of the network
// and returns them as a deployment. The generation is deterministic given
// rng's state.
func Deploy(net *roadnet.Network, spec DeploySpec, rng *xrand.Rand) (*Deployment, error) {
	if spec.Spacing <= 0 {
		return nil, fmt.Errorf("wifi: non-positive AP spacing %v", spec.Spacing)
	}
	if spec.MaxOffset < spec.MinOffset || spec.RefRSSMax < spec.RefRSSMin ||
		spec.PathLossExpMax < spec.PathLossExpMin {
		return nil, fmt.Errorf("wifi: inverted range in deploy spec %+v", spec)
	}
	var aps []*AP
	n := 0
	for _, seg := range net.Graph.Segments() {
		segRng := rng.SplitN("deploy-seg", int(seg.ID))
		line := seg.Line
		for s := spec.Spacing / 2; s < line.Length(); s += spec.Spacing {
			pos := s
			if spec.SpacingJitter > 0 {
				pos += segRng.Range(-spec.SpacingJitter, spec.SpacingJitter)
			}
			if pos < 0 || pos > line.Length() {
				continue
			}
			center := line.At(pos)
			dir := line.DirectionAt(pos)
			normal := geo.Pt(-dir.Y, dir.X)
			side := 1.0
			if segRng.Bool(0.5) {
				side = -1
			}
			offset := segRng.Range(spec.MinOffset, spec.MaxOffset)
			n++
			aps = append(aps, &AP{
				BSSID:       BSSID(fmt.Sprintf("ap-%04d", n)),
				SSID:        fmt.Sprintf("hotspot-%04d", n),
				Pos:         center.Add(normal.Scale(side * offset)),
				RefRSS:      uniformOrFixed(segRng, spec.RefRSSMin, spec.RefRSSMax),
				PathLossExp: uniformOrFixed(segRng, spec.PathLossExpMin, spec.PathLossExpMax),
			})
		}
	}
	return NewDeployment(aps)
}

func uniformOrFixed(rng *xrand.Rand, lo, hi float64) float64 {
	if lo == hi {
		return lo
	}
	return rng.Range(lo, hi)
}
