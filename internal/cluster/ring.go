package cluster

import (
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over the topology's leader nodes: every
// route ID hashes to a point on a 64-bit circle and is owned by the next
// node point clockwise. Virtual nodes (VNodes points per leader) smooth
// the split, and consistency gives the property failover relies on:
// removing one node reassigns only that node's ranges — every other
// route's owner is unchanged, so a promotion never shuffles healthy
// shards.
//
// The ring is immutable after newRing; the Node layers its failover
// overrides (dead owner → survivor) on top rather than mutating it.
type Ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node string
}

// defaultVNodes is the per-leader virtual-node count. 64 points per node
// keeps the expected imbalance between two nodes under a few percent of
// the keyspace without making lookup tables noticeable.
const defaultVNodes = 64

// newRing builds the ring over the given node IDs (the topology's
// leaders). IDs must be unique; vnodes <= 0 selects the default.
func newRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &Ring{points: make([]ringPoint, 0, len(nodes)*vnodes)}
	for _, id := range nodes {
		for v := 0; v < vnodes; v++ {
			// The point key embeds a separator no ID contains ambiguously:
			// "id#v" vs "i#dv" still differ because v is decimal-only.
			h := fnv1a(id + "#" + strconv.Itoa(v))
			r.points = append(r.points, ringPoint{hash: h, node: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.node < b.node // deterministic under (vanishingly rare) collisions
	})
	return r
}

// Owner returns the node owning key: the first ring point at or after the
// key's hash, wrapping at the top of the circle.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := fnv1a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// fnv1a is the 64-bit FNV-1a hash — the same function the server's bus
// table shards with (internal/server/shard.go), duplicated here because it
// is unexported there and two lines long.
func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
