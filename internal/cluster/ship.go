package cluster

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
)

// The shipping stream reuses the WAL's own framing discipline on the wire:
//
//	[4-byte little-endian payload length][4-byte CRC32 (IEEE) of payload][payload]
//
// where payload is one type byte followed by the JSON encoding of the
// message body. Length prefix + CRC make the stream self-describing and
// tamper-evident, and — exactly like the on-disk WAL — a connection torn
// mid-frame is detected by the reader rather than misparsed.
//
// Conversation: the follower connects and sends hello{gen, walLen} — its
// recovered replica state. The leader answers with either a full resync
// (snapBegin / snapChunk* / snapEnd, shipped when the follower's
// generation is stale) or nothing, then streams walChunk frames from the
// follower's offset up to its own durable frontier, interleaved with
// heartbeats when idle. The follower fsyncs every chunk before answering
// ack{gen, durable}; the leader's durable frontier minus the latest ack is
// the replication lag. Chunk boundaries are byte-oriented and may split a
// WAL frame — a leader death mid-chunk leaves the replica with a torn
// tail that promotion repairs through the standard recovery path.

// shipHeaderSize is the fixed per-frame header: length + CRC32.
const shipHeaderSize = 8

// maxShipFrame bounds one shipping frame's payload. WAL chunks are capped
// at shipChunkSize and snapshot chunks at shipSnapChunkSize; anything
// larger means a corrupt length field, not a big message.
const maxShipFrame = 4 << 20

// shipChunkSize is the WAL bytes carried per walChunk frame.
const shipChunkSize = 256 << 10

// shipSnapChunkSize is the snapshot bytes carried per snapChunk frame.
const shipSnapChunkSize = 256 << 10

// msgType discriminates shipping messages (the payload's leading byte).
type msgType byte

const (
	msgHello     msgType = 1 // follower → leader: resume point
	msgSnapBegin msgType = 2 // leader → follower: full resync starts
	msgSnapChunk msgType = 3 // leader → follower: snapshot bytes
	msgSnapEnd   msgType = 4 // leader → follower: snapshot complete, commit
	msgWALChunk  msgType = 5 // leader → follower: WAL bytes at an offset
	msgHeartbeat msgType = 6 // leader → follower: liveness + durable frontier
	msgAck       msgType = 7 // follower → leader: durable (fsynced) length
)

// shipHello is the follower's handshake: who it is and where its replica
// of the leader's lineage ends. Bare means no lineage exists at all — a
// fresh replica reports (0, 0) just like one mirroring bare generation 0,
// and only this flag tells the leader it must open with a resync.
type shipHello struct {
	Follower string `json:"follower"`
	Gen      uint64 `json:"gen"`
	WALLen   int64  `json:"walLen"`
	Bare     bool   `json:"bare,omitempty"`
}

// shipSnapBegin opens a full resync of generation Gen. Bare is true for
// the pre-first-rotation generation, which has no snapshot file: the
// follower just starts an empty WAL.
type shipSnapBegin struct {
	Gen  uint64 `json:"gen"`
	Size int64  `json:"size"`
	Bare bool   `json:"bare,omitempty"`
}

// shipSnapChunk carries consecutive snapshot bytes (JSON base64).
type shipSnapChunk struct {
	Data []byte `json:"data"`
}

// shipSnapEnd closes the resync; Size echoes the total for verification.
type shipSnapEnd struct {
	Gen  uint64 `json:"gen"`
	Size int64  `json:"size"`
}

// shipWALChunk carries WAL bytes [Off, Off+len(Data)) of generation Gen.
type shipWALChunk struct {
	Gen  uint64 `json:"gen"`
	Off  int64  `json:"off"`
	Data []byte `json:"data"`
}

// shipHeartbeat reports the leader's durable frontier while the stream is
// otherwise idle, keeping failover detection honest on quiet shards.
type shipHeartbeat struct {
	Gen     uint64 `json:"gen"`
	Durable int64  `json:"durable"`
}

// shipAck acknowledges that the follower has fsynced Durable bytes of
// generation Gen. Acks are the leader's license to trim (ack-before-trim).
type shipAck struct {
	Gen     uint64 `json:"gen"`
	Durable int64  `json:"durable"`
}

// appendShipFrame encodes one message as a frame and appends it to dst.
func appendShipFrame(dst []byte, t msgType, body any) ([]byte, error) {
	js, err := json.Marshal(body)
	if err != nil {
		return dst, fmt.Errorf("cluster: encode ship %d: %w", t, err)
	}
	payload := make([]byte, 0, 1+len(js))
	payload = append(payload, byte(t))
	payload = append(payload, js...)
	if len(payload) > maxShipFrame {
		return dst, fmt.Errorf("cluster: ship frame of %d bytes exceeds cap %d", len(payload), maxShipFrame)
	}
	var hdr [shipHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// parseShipFrame decodes the first frame of b, returning the message type,
// its JSON body, and the remaining bytes. io.ErrUnexpectedEOF when b holds
// only a frame prefix (more bytes may arrive); other errors mean the
// stream is corrupt and the connection must be dropped.
func parseShipFrame(b []byte) (t msgType, body []byte, rest []byte, err error) {
	if len(b) < shipHeaderSize {
		return 0, nil, b, io.ErrUnexpectedEOF
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if n == 0 || n > maxShipFrame {
		return 0, nil, b, fmt.Errorf("cluster: implausible ship frame length %d", n)
	}
	if len(b) < shipHeaderSize+int(n) {
		return 0, nil, b, io.ErrUnexpectedEOF
	}
	payload := b[shipHeaderSize : shipHeaderSize+int(n)]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(b[4:8]); got != want {
		return 0, nil, b, fmt.Errorf("cluster: ship frame CRC mismatch (got %08x, want %08x)", got, want)
	}
	return msgType(payload[0]), payload[1:], b[shipHeaderSize+int(n):], nil
}

// readShipFrame reads one frame from the stream, verifying length and CRC.
// The returned body aliases an internal buffer valid until the next call.
func readShipFrame(br *bufio.Reader, scratch []byte) (msgType, []byte, []byte, error) {
	var hdr [shipHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, scratch, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n == 0 || n > maxShipFrame {
		return 0, nil, scratch, fmt.Errorf("cluster: implausible ship frame length %d", n)
	}
	if cap(scratch) < int(n) {
		scratch = make([]byte, n)
	}
	payload := scratch[:n]
	if _, err := io.ReadFull(br, payload); err != nil {
		return 0, nil, scratch, fmt.Errorf("cluster: truncated ship frame: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(hdr[4:8]); got != want {
		return 0, nil, scratch, fmt.Errorf("cluster: ship frame CRC mismatch (got %08x, want %08x)", got, want)
	}
	return msgType(payload[0]), payload[1:], scratch, nil
}

// decodeShipBody unmarshals a frame body into out.
func decodeShipBody(t msgType, body []byte, out any) error {
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("cluster: undecodable ship message %d: %w", t, err)
	}
	return nil
}
