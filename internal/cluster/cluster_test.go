// Integration tests of the geo-sharded cluster: WAL shipping, lag
// observability, partition behaviour, and the failover-equivalence
// acceptance — kill a leader mid-fleet-replay and require the promoted
// survivor to converge on exactly the state an unkilled run produces.
package cluster_test

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wilocator/internal/api"
	"wilocator/internal/cluster"
	"wilocator/internal/loadtest"
	"wilocator/internal/obs"
	"wilocator/internal/server"
	"wilocator/internal/traveltime"
)

// clusterSpec mirrors the chaos harness's fleet sizing.
func clusterSpec() loadtest.StreamSpec {
	spec := loadtest.StreamSpec{
		Buses:   8,
		Phones:  3,
		Seed:    7,
		Horizon: 10 * time.Minute,
	}
	if testing.Short() {
		spec.Buses = 4
		spec.Horizon = 5 * time.Minute
	}
	return spec
}

var worldOnce struct {
	sync.Once
	w   *loadtest.World
	err error
}

func testWorld(t *testing.T) *loadtest.World {
	t.Helper()
	worldOnce.Do(func() { worldOnce.w, worldOnce.err = loadtest.BuildWorld(7) })
	if worldOnce.err != nil {
		t.Fatal(worldOnce.err)
	}
	return worldOnce.w
}

// switchable lets an httptest server exist before the node it routes to.
type switchable struct{ h atomic.Pointer[http.Handler] }

func (s *switchable) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := s.h.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	http.Error(w, "starting", http.StatusServiceUnavailable)
}

type testNode struct {
	id   string
	ps   *loadtest.PersistentService // nil for a pure follower
	node *cluster.Node
	reg  *obs.Registry
	api  *httptest.Server

	mu       sync.Mutex
	promoted []*traveltime.Store // stores built by the promotion callback
}

func (tn *testNode) promotedStores() []*traveltime.Store {
	tn.mu.Lock()
	defer tn.mu.Unlock()
	return append([]*traveltime.Store(nil), tn.promoted...)
}

type clusterOpts struct {
	roles            map[string]cluster.Role
	preListeners     map[string]net.Listener // pre-bound repl listeners (chaos proxies dial these)
	replAddrOverride map[string]string       // topology ReplAddr (e.g. a ChaosLink front)
	heartbeat        time.Duration
	failoverAfter    time.Duration
}

// startCluster brings up one node per id over a shared world, each with
// its own WAL-backed service (SyncEvery 1), metrics registry, replication
// listener and HTTP API, fully cross-connected.
func startCluster(t *testing.T, w *loadtest.World, now func() time.Time, ids []string, opts clusterOpts) map[string]*testNode {
	t.Helper()
	if opts.heartbeat == 0 {
		opts.heartbeat = 50 * time.Millisecond
	}
	if opts.failoverAfter == 0 {
		opts.failoverAfter = 30 * time.Second
	}
	nodes := map[string]*testNode{}
	listeners := map[string]net.Listener{}
	switchables := map[string]*switchable{}
	var topo cluster.Topology
	for _, id := range ids {
		lst := opts.preListeners[id]
		if lst == nil {
			var err error
			lst, err = net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
		}
		listeners[id] = lst
		sw := &switchable{}
		ts := httptest.NewServer(sw)
		switchables[id] = sw
		replAddr := lst.Addr().String()
		if ov := opts.replAddrOverride[id]; ov != "" {
			replAddr = ov
		}
		topo.Nodes = append(topo.Nodes, cluster.NodeSpec{ID: id, Addr: ts.URL, ReplAddr: replAddr, Role: opts.roles[id]})
		nodes[id] = &testNode{id: id, api: ts}
	}
	for _, id := range ids {
		tn := nodes[id]
		tn.reg = obs.NewRegistry()
		wake := cluster.NewWakeup()
		if opts.roles[id] != cluster.RoleFollower {
			ps, err := loadtest.NewPersistentService(w, filepath.Join(t.TempDir(), id),
				server.Config{Now: now, Metrics: tn.reg},
				traveltime.PersistConfig{SyncEvery: 1, OnDurable: wake.Poke})
			if err != nil {
				t.Fatal(err)
			}
			tn.ps = ps
		}
		cfg := cluster.Config{
			Self:        id,
			Topology:    topo,
			ReplicaRoot: filepath.Join(t.TempDir(), id+"-replicas"),
			Wake:        wake,
			NewStore:    func() *traveltime.Store { return traveltime.NewStore(traveltime.PaperPlan()) },
			NewService: func(store *traveltime.Store, sink func(traveltime.Record) error, stats func() traveltime.PersistStats) (*server.Service, error) {
				tn.mu.Lock()
				tn.promoted = append(tn.promoted, store)
				tn.mu.Unlock()
				return server.NewService(w.Dia, store, server.Config{Now: now, Sink: sink, PersistStats: stats})
			},
			Persist:        traveltime.PersistConfig{SyncEvery: 1},
			HeartbeatEvery: opts.heartbeat,
			FailoverAfter:  opts.failoverAfter,
			Metrics:        tn.reg,
			Logf:           t.Logf,
			Listener:       listeners[id],
		}
		if tn.ps != nil {
			cfg.Service = tn.ps.Svc
			cfg.Persister = tn.ps.Persist
		}
		node, err := cluster.NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Start(t.Context()); err != nil {
			t.Fatal(err)
		}
		tn.node = node
		var h http.Handler
		if tn.ps != nil {
			tn.ps.Svc.SetClusterStatus(node.Status)
			h = server.NewHandler(tn.ps.Svc, server.HandlerConfig{Router: node})
		} else {
			h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				http.Error(w, "standby", http.StatusServiceUnavailable)
			})
		}
		switchables[id].h.Store(&h)
	}
	t.Cleanup(func() {
		for _, tn := range nodes {
			tn.api.Close()
			tn.node.Close()
			if tn.ps != nil {
				_ = tn.ps.Persist.Close() // killed-leader persisters may be abandoned
			}
		}
	})
	return nodes
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// shardLag reads origin's replication lag from n's health status.
func shardLag(n *cluster.Node, origin string) (int64, bool) {
	for _, sh := range n.Status().Shards {
		if sh.Origin == origin {
			return sh.ReplicationLagBytes, true
		}
	}
	return 0, false
}

// scrapeMetric fetches /metrics over HTTP and returns the value of the
// series whose exposition line starts with prefix (name + label set).
func scrapeMetric(t *testing.T, ts *httptest.Server, prefix string) (float64, bool) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + api.PathMetrics)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("unparseable metric line %q", line)
		}
		return v, true
	}
	return 0, false
}

// replayVia aliases the loadtest delivery-function replay so cluster
// dispatch and per-shard reference services see identical subsequences.
var replayVia = loadtest.ReplayVia

// TestFailoverEquivalence is the cluster's acceptance test: run half the
// fleet through a 2-leader cluster (mis-routed reports forwarded over
// HTTP), kill one leader, and require (a) the survivor promotes the
// shipped replica into exactly the state an unkilled per-shard reference
// run holds at the kill point, (b) the resumed cluster run and the
// reference's own crash-resume converge to identical final stores and
// tallies, and (c) replication lag is observable in /metrics before the
// kill and leadership/lag after the promotion.
func TestFailoverEquivalence(t *testing.T) {
	w := testWorld(t)
	spec := clusterSpec()
	streams, err := loadtest.GenStreams(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	now := loadtest.FixedClock(loadtest.T0.Add(spec.Horizon))
	nodes := startCluster(t, w, now, []string{"n1", "n2"}, clusterOpts{failoverAfter: 2 * time.Second})
	n1, n2 := nodes["n1"], nodes["n2"]

	// The route partition must actually split across both leaders, or the
	// test is vacuous. Deterministic: same seed, same ring, same split.
	origins := map[string]int{}
	for _, st := range streams {
		_, origin := n1.node.OwnerOf(st.RouteID)
		origins[origin]++
	}
	if len(origins) < 2 {
		t.Fatalf("all routes hashed to one node (%v); pick another seed", origins)
	}
	t.Logf("route split across leaders: %v", origins)

	total := loadtest.TotalReports(streams)
	crashAt := total / 2

	// Reference: one uninterrupted service per shard, fed exactly the
	// per-shard subsequences of the same global round-robin order.
	refSvc := map[string]*server.Service{}
	refStore := map[string]*traveltime.Store{}
	for _, id := range []string{"n1", "n2"} {
		svc, store, err := loadtest.NewService(w, server.Config{Now: now})
		if err != nil {
			t.Fatal(err)
		}
		refSvc[id], refStore[id] = svc, store
	}
	refDeliver := func(rep api.Report) (api.IngestResponse, error) {
		_, origin := n1.node.OwnerOf(rep.RouteID)
		return refSvc[origin].Ingest(rep)
	}
	refTally1 := replayVia(streams, 0, crashAt, refDeliver)
	if refTally1.Errors != 0 {
		t.Fatalf("reference replay errored: %v", refTally1)
	}

	// Clustered phase 1: every report enters at n1; n2-owned ones are
	// forwarded over the real HTTP API.
	ctx := t.Context()
	liveDeliver := func(rep api.Report) (api.IngestResponse, error) {
		resp, _, err := n1.node.Dispatch(ctx, rep)
		return resp, err
	}
	liveTally1 := replayVia(streams, 0, crashAt, liveDeliver)
	if liveTally1 != refTally1 {
		t.Fatalf("clustered tallies diverged before the kill:\n  cluster   %v\n  reference %v", liveTally1, refTally1)
	}
	if fwd, ok := scrapeMetric(t, n1.api, `wilocator_cluster_forwarded_reports_total{result="ok"}`); !ok || fwd == 0 {
		t.Fatalf("no reports were forwarded (metric present=%v value=%v); routing is not exercising the cluster", ok, fwd)
	}

	// Drain replication: with fsync-per-record and acked-before-trim, lag 0
	// means every durable byte of each leader is fsynced on its follower.
	waitFor(t, 30*time.Second, "replication drained", func() bool {
		l1, ok1 := shardLag(n1.node, "n1")
		l2, ok2 := shardLag(n2.node, "n2")
		return ok1 && ok2 && l1 == 0 && l2 == 0
	})

	// Lag must be OBSERVABLE in /metrics before the kill — both from the
	// leader (its shard, acked view) and the follower (replica view).
	if v, ok := scrapeMetric(t, n2.api, `wilocator_cluster_replication_lag_bytes{shard="n2"}`); !ok || v != 0 {
		t.Fatalf("leader-side lag gauge for n2: present=%v value=%v, want 0", ok, v)
	}
	if v, ok := scrapeMetric(t, n1.api, `wilocator_cluster_replication_lag_bytes{shard="n2"}`); !ok || v != 0 {
		t.Fatalf("follower-side lag gauge for n2 on n1: present=%v value=%v, want 0", ok, v)
	}
	if v, ok := scrapeMetric(t, n1.api, `wilocator_cluster_is_leader{shard="n2"}`); !ok || v != 0 {
		t.Fatalf("n1 claims leadership of n2's shard before the kill (present=%v value=%v)", ok, v)
	}

	// Kill -9 the n2 leader mid-fleet: listener, streams and context die;
	// its persister is abandoned un-flushed, exactly like a dead process.
	n2.api.Close()
	n2.node.Kill()

	waitFor(t, 30*time.Second, "n1 to promote n2's replica", func() bool {
		_, _, ok := n1.node.Shard("n2")
		return ok
	})
	if p, ok := scrapeMetric(t, n1.api, `wilocator_cluster_promotions_total`); !ok || p != 1 {
		t.Fatalf("promotions counter = %v (present=%v), want 1", p, ok)
	}
	if v, ok := scrapeMetric(t, n1.api, `wilocator_cluster_is_leader{shard="n2"}`); !ok || v != 1 {
		t.Fatalf("post-promotion leadership gauge = %v (present=%v), want 1", v, ok)
	}
	if v, ok := scrapeMetric(t, n1.api, `wilocator_cluster_replication_lag_bytes{shard="n2"}`); !ok || v != 0 {
		t.Fatalf("post-promotion lag gauge = %v (present=%v), want 0", v, ok)
	}

	// (a) The promoted store must equal the unkilled reference at the kill
	// point: every record the dead leader made durable was shipped, fsynced
	// and replayed through the standard recovery path.
	promoted := n1.promotedStores()
	if len(promoted) != 1 {
		t.Fatalf("promotion built %d stores, want 1", len(promoted))
	}
	if err := traveltime.Diff(refStore["n2"], promoted[0], 1e-9); err != nil {
		t.Fatalf("promoted store diverges from the unkilled run at the kill point: %v", err)
	}

	// (b) Resume the fleet. Cluster side: same entry point — n2's routes
	// now land on n1's promoted service. Reference side: the crash loses
	// tracker state, so the reference resumes n2's shard through a fresh
	// service over the same store (the repo's standard crash-resume
	// equivalence; see loadtest's chaos tests).
	resumed, err := server.NewService(w.Dia, refStore["n2"], server.Config{Now: now})
	if err != nil {
		t.Fatal(err)
	}
	refSvc["n2"] = resumed
	refTally2 := replayVia(streams, crashAt, -1, refDeliver)
	liveTally2 := replayVia(streams, crashAt, -1, liveDeliver)
	if liveTally2 != refTally2 {
		t.Fatalf("post-promotion tallies diverged:\n  cluster   %v\n  reference %v", liveTally2, refTally2)
	}

	if err := traveltime.Diff(refStore["n1"], n1.ps.Store, 1e-9); err != nil {
		t.Fatalf("surviving shard diverged from reference: %v", err)
	}
	if err := traveltime.Diff(refStore["n2"], promoted[0], 1e-9); err != nil {
		t.Fatalf("promoted shard diverged from reference after resume: %v", err)
	}
	t.Logf("converged: phase1 %v + phase2 %v across a leader kill", liveTally1, liveTally2)
}

// TestClusterPartitionLagAndResync drives the partition and slow-follower
// fault injectors: a partitioned follower freezes its ack while the leader
// keeps ingesting (lag grows and is visible), healing drains the lag, a
// slow link still converges, and a snapshot rotation mid-stream forces a
// full resync the follower installs.
func TestClusterPartitionLagAndResync(t *testing.T) {
	w := testWorld(t)
	spec := clusterSpec()
	streams, err := loadtest.GenStreams(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	now := loadtest.FixedClock(loadtest.T0.Add(spec.Horizon))

	// n2's replication traffic runs through a chaos proxy: n1 dials the
	// link, the link dials n2's real listener.
	lst2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	link, err := loadtest.NewChaosLink(lst2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	nodes := startCluster(t, w, now, []string{"n1", "n2"}, clusterOpts{
		preListeners:     map[string]net.Listener{"n2": lst2},
		replAddrOverride: map[string]string{"n2": link.Addr()},
		// Partitions in this test must never trip a failover.
		failoverAfter: 5 * time.Minute,
	})
	n1, n2 := nodes["n1"], nodes["n2"]

	ctx := t.Context()
	deliver := func(rep api.Report) (api.IngestResponse, error) {
		resp, _, err := n2.node.Dispatch(ctx, rep)
		return resp, err
	}

	total := loadtest.TotalReports(streams)
	step := total / 4
	if tl := replayVia(streams, 0, step, deliver); tl.Errors != 0 {
		t.Fatalf("ingest errored: %v", tl)
	}
	waitFor(t, 30*time.Second, "initial replication drain", func() bool {
		lag, ok := shardLag(n2.node, "n2")
		return ok && lag == 0
	})

	// Partition: the follower's ack freezes, the leader keeps committing —
	// lag must grow and stay visible from the leader.
	link.Partition(true)
	if tl := replayVia(streams, step, step, deliver); tl.Errors != 0 {
		t.Fatalf("ingest during partition errored: %v", tl)
	}
	if err := n2.ps.Persist.Sync(); err != nil {
		t.Fatal(err)
	}
	lag, ok := shardLag(n2.node, "n2")
	if !ok || lag <= 0 {
		t.Fatalf("leader-side lag during partition = %d (ok=%v), want > 0", lag, ok)
	}
	t.Logf("partition lag: %d bytes", lag)

	// Heal: the follower reconnects from its last offset and catches up.
	link.Partition(false)
	waitFor(t, 30*time.Second, "post-heal replication drain", func() bool {
		lag, ok := shardLag(n2.node, "n2")
		return ok && lag == 0
	})

	// Slow link: throughput drops but replication still converges.
	link.SetDelay(2 * time.Millisecond)
	if tl := replayVia(streams, 2*step, step, deliver); tl.Errors != 0 {
		t.Fatalf("ingest over slow link errored: %v", tl)
	}
	waitFor(t, 60*time.Second, "slow-link replication drain", func() bool {
		lag, ok := shardLag(n2.node, "n2")
		return ok && lag == 0
	})
	link.SetDelay(0)

	// Snapshot rotation mid-stream: the shipped generation disappears, the
	// shipper must resync with a full snapshot and the follower must land
	// on the new generation with zero lag.
	if err := n2.ps.Persist.Snapshot(); err != nil {
		t.Fatal(err)
	}
	gen, _ := n2.ps.Persist.ShipState()
	if tl := replayVia(streams, 3*step, -1, deliver); tl.Errors != 0 {
		t.Fatalf("ingest after rotation errored: %v", tl)
	}
	waitFor(t, 30*time.Second, "post-rotation resync", func() bool {
		for _, sh := range n1.node.Status().Shards {
			if sh.Origin == "n2" {
				return sh.Generation == gen && sh.ReplicationLagBytes == 0
			}
		}
		return false
	})
	t.Logf("follower resynced to generation %d", gen)
}

// TestClusterForwardingUnavailable: with the owner down and nobody
// promoted, dispatch must degrade into the retryable unavailability error
// (HTTP 503 + Retry-After through the handler) rather than hang or panic.
func TestClusterForwardingUnavailable(t *testing.T) {
	w := testWorld(t)
	spec := clusterSpec()
	spec.Buses = 2
	spec.Horizon = 2 * time.Minute
	streams, err := loadtest.GenStreams(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	now := loadtest.FixedClock(loadtest.T0.Add(spec.Horizon))
	nodes := startCluster(t, w, now, []string{"n1", "n2"}, clusterOpts{failoverAfter: 5 * time.Minute})
	n1, n2 := nodes["n1"], nodes["n2"]

	// Find a report owned by n2.
	var foreign *api.Report
	for _, st := range streams {
		if owner, _ := n1.node.OwnerOf(st.RouteID); owner == "n2" {
			foreign = &st.Reports[0]
			break
		}
	}
	if foreign == nil {
		t.Skip("no route owned by n2 under this seed")
	}

	// While the owner is alive, its REJECTION of a forwarded report must
	// pass through as the owner's verdict (400), never be dressed up as a
	// retryable 503 — the forward itself worked.
	var bogusRoute string
	for i := 0; ; i++ {
		cand := fmt.Sprintf("no-such-route-%d", i)
		if owner, _ := n1.node.OwnerOf(cand); owner == "n2" {
			bogusRoute = cand
			break
		}
	}
	resp0, err := n1.api.Client().Post(n1.api.URL+api.PathReports, "application/json",
		strings.NewReader(fmt.Sprintf(`{"busId":"b","routeId":%q,"phoneId":"p","scan":{"time":"2016-03-07T09:00:00Z"}}`, bogusRoute)))
	if err != nil {
		t.Fatal(err)
	}
	resp0.Body.Close()
	if resp0.StatusCode != http.StatusBadRequest {
		t.Fatalf("forwarded unknown-route report: status %d, want 400 (the owner's verdict)", resp0.StatusCode)
	}

	// Now take n2 down without failover.
	n2.api.Close()
	n2.node.Kill()

	ctx := t.Context()
	resp, err := n1.api.Client().Post(n1.api.URL+api.PathReports, "application/json",
		strings.NewReader(fmt.Sprintf(`{"busId":%q,"routeId":%q,"phoneId":"p","scan":{"time":"2016-03-07T09:00:00Z"}}`,
			foreign.BusID, foreign.RouteID)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("dispatch to a dead owner: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("503 without a Retry-After hint")
	}
	_, forwarded, derr := n1.node.Dispatch(ctx, *foreign)
	if derr == nil || !forwarded {
		t.Fatalf("Dispatch = forwarded=%v err=%v, want forwarded unavailability error", forwarded, derr)
	}
}
