package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"wilocator/internal/traveltime"
)

// serveShip handles one inbound replication stream: handshake, optional
// snapshot resync, then WAL chunks from the follower's offset to the
// durable frontier, with heartbeats while idle. Acks are drained by a
// side goroutine into the follower's track (they are flow-control and
// observability, not a send barrier — the WAL is already durable locally
// before it is shipped).
func (n *Node) serveShip(conn net.Conn) {
	p := n.cfg.Persister
	if p == nil {
		return // pure follower: nothing to ship
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	conn.SetReadDeadline(time.Now().Add(n.cfg.FailoverAfter))
	t, body, scratch, err := readShipFrame(br, nil)
	if err != nil || t != msgHello {
		return
	}
	var hello shipHello
	if err := decodeShipBody(t, body, &hello); err != nil {
		return
	}
	n.mu.Lock()
	tr := n.followers[hello.Follower]
	if tr == nil {
		tr = &followerTrack{}
		n.followers[hello.Follower] = tr
	}
	tr.connected = true
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		tr.connected = false
		n.mu.Unlock()
	}()
	n.logf("cluster %s: follower %s connected at gen %d, %d bytes", n.self.ID, hello.Follower, hello.Gen, hello.WALLen)

	// Ack reader: every follower frame is an ack carrying its fsynced
	// length. The channel close doubles as the disconnect signal.
	gone := make(chan struct{})
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer close(gone)
		for {
			conn.SetReadDeadline(time.Time{}) // sender paces liveness, not us
			t, body, s, err := readShipFrame(br, scratch)
			scratch = s
			if err != nil {
				return
			}
			if t != msgAck {
				return
			}
			var ack shipAck
			if err := decodeShipBody(t, body, &ack); err != nil {
				return
			}
			n.mu.Lock()
			if ack.Gen >= tr.gen {
				tr.gen, tr.acked = ack.Gen, ack.Durable
			}
			n.mu.Unlock()
		}
	}()

	if err := n.shipLoop(conn, hello, gone); err != nil && n.ctx.Err() == nil {
		n.logf("cluster %s: shipping to %s: %v", n.self.ID, hello.Follower, err)
	}
}

// shipLoop streams the local lineage over conn until error or shutdown.
func (n *Node) shipLoop(conn net.Conn, hello shipHello, gone <-chan struct{}) error {
	p := n.cfg.Persister
	w := &shipWriter{conn: conn, timeout: n.cfg.WriteTimeout}
	folGen, folOff := hello.Gen, hello.WALLen
	needResync := hello.Bare // a lineage-less replica can't accept appends yet
	tick := time.NewTicker(n.cfg.HeartbeatEvery)
	defer tick.Stop()
	buf := make([]byte, shipChunkSize)
	for {
		var wake <-chan struct{}
		if n.cfg.Wake != nil {
			wake = n.cfg.Wake.wait() // grab BEFORE reading the frontier
		}
		gen, durable := p.ShipState()
		if needResync || folGen != gen || folOff > durable {
			// Stale generation (snapshot rotated) or a replica ahead of our
			// durable frontier (a lineage that is not ours): full resync.
			if err := n.resync(w, gen); err != nil {
				return err
			}
			folGen, folOff = gen, 0
			needResync = false
			continue
		}
		for folOff < durable {
			b := buf
			if rem := durable - folOff; rem < int64(len(b)) {
				b = b[:rem]
			}
			m, err := p.ReadDurable(gen, folOff, b)
			if err != nil {
				if errors.Is(err, traveltime.ErrShipGenRotated) {
					break // outer loop resyncs
				}
				return err
			}
			if err := w.send(msgWALChunk, shipWALChunk{Gen: gen, Off: folOff, Data: b[:m]}); err != nil {
				return err
			}
			folOff += int64(m)
		}
		select {
		case <-n.ctx.Done():
			return nil
		case <-gone:
			return fmt.Errorf("follower disconnected")
		case <-wake:
		case <-tick.C:
			if err := w.send(msgHeartbeat, shipHeartbeat{Gen: folGen, Durable: folOff}); err != nil {
				return err
			}
		}
	}
}

// resync ships a full snapshot of gen (or a bare-generation marker when
// the lineage has not rotated yet), after which the follower's WAL is
// empty and chunks restart from offset 0.
func (n *Node) resync(w *shipWriter, gen uint64) error {
	data, present, err := n.cfg.Persister.SnapshotBytes(gen)
	if err != nil {
		return err
	}
	if !present {
		if err := w.send(msgSnapBegin, shipSnapBegin{Gen: gen, Bare: true}); err != nil {
			return err
		}
		return w.send(msgSnapEnd, shipSnapEnd{Gen: gen, Size: 0})
	}
	if err := w.send(msgSnapBegin, shipSnapBegin{Gen: gen, Size: int64(len(data))}); err != nil {
		return err
	}
	for off := 0; off < len(data); off += shipSnapChunkSize {
		end := off + shipSnapChunkSize
		if end > len(data) {
			end = len(data)
		}
		if err := w.send(msgSnapChunk, shipSnapChunk{Data: data[off:end]}); err != nil {
			return err
		}
	}
	return w.send(msgSnapEnd, shipSnapEnd{Gen: gen, Size: int64(len(data))})
}

// shipWriter frames and writes messages with a per-write deadline,
// reusing one buffer.
type shipWriter struct {
	conn    net.Conn
	timeout time.Duration
	buf     []byte
}

func (w *shipWriter) send(t msgType, body any) error {
	b, err := appendShipFrame(w.buf[:0], t, body)
	if err != nil {
		return err
	}
	w.buf = b
	w.conn.SetWriteDeadline(time.Now().Add(w.timeout))
	if _, err := w.conn.Write(b); err != nil {
		return fmt.Errorf("write %d: %w", t, err)
	}
	return nil
}
