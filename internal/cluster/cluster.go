// Package cluster turns single-process WiLocator into a statically
// configured, geo-sharded multi-node deployment (the ROADMAP's staged
// multi-node item: static split → WAL follower → failover, landed as one
// stage-1).
//
// # Model
//
// Buses are partitioned by route: a consistent-hash ring over the
// topology's leader nodes maps every route ID to the node that ingests it,
// so one city region (its routes, buses, travel-time history) lives on one
// node and a node loss dims one region instead of the whole metro area.
// Reports that arrive at the wrong node are forwarded to the owner over
// the ordinary HTTP API with bounded retry/backoff; queries stay local to
// each node's shard.
//
// Durability crosses nodes by WAL shipping: every node streams its
// travel-time persistence lineage (snapshot + CRC-framed WAL, exactly the
// on-disk format of traveltime.Persister) to every peer over a
// length-prefixed, CRC-checked TCP stream. Followers fsync before acking,
// so an acked offset is durable on both sides; the leader's durable
// frontier minus the follower's acked offset is the replication lag,
// exposed per shard on /metrics and in /v1/healthz.
//
// Failover is promotion of a shipped replica: when a node stops hearing
// its leader for FailoverAfter, the designated survivor (lowest node ID
// excluding the dead leader) opens the replica directory through
// traveltime.OpenPersister — a connection torn mid-frame leaves exactly
// the torn tail the PR-2 recovery path truncates — builds a fresh service
// over the recovered store, and takes over the dead node's ring range.
// Every surviving node re-routes the range to the survivor, so forwarding
// converges without coordination. The design invariants (single-writer
// WAL, ack-before-trim, idempotent replay) are recorded in DESIGN.md.
//
// Every RPC path in this package takes a caller context and bounds its
// network operations with deadlines; the clusterctx wilint analyzer
// enforces that no call site manufactures an unbounded
// context.Background().
package cluster

import (
	"fmt"
	"sort"
	"strings"
)

// Role is a node's static role in the topology.
type Role string

const (
	// RoleLeader nodes own a range of the route ring and ingest for it.
	RoleLeader Role = "leader"
	// RoleFollower nodes own no ring range: they replicate every leader's
	// WAL and exist to be promoted (a warm standby).
	RoleFollower Role = "follower"
)

// NodeSpec describes one node of the static topology.
type NodeSpec struct {
	// ID is the node's unique name (also its shard label in metrics).
	ID string
	// Addr is the node's HTTP API base URL (e.g. "http://10.0.0.1:8421"),
	// the target for forwarded reports.
	Addr string
	// ReplAddr is the host:port of the node's WAL-shipping listener.
	ReplAddr string
	// Role defaults to RoleLeader when empty.
	Role Role
}

// Topology is the full static node set, identical on every node.
type Topology struct {
	Nodes []NodeSpec
	// VNodes is the number of ring points per leader (default 64).
	VNodes int
}

// Leaders returns the leader-role nodes sorted by ID (the ring members).
func (t Topology) Leaders() []NodeSpec {
	var out []NodeSpec
	for _, n := range t.Nodes {
		if n.Role == RoleLeader || n.Role == "" {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Node returns the spec of id.
func (t Topology) Node(id string) (NodeSpec, bool) {
	for _, n := range t.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return NodeSpec{}, false
}

// Validate checks the topology is usable: unique non-empty IDs, at least
// one leader, and addresses present on every node.
func (t Topology) Validate() error {
	if len(t.Nodes) < 2 {
		return fmt.Errorf("cluster: topology needs at least 2 nodes, got %d", len(t.Nodes))
	}
	seen := map[string]bool{}
	for _, n := range t.Nodes {
		if n.ID == "" {
			return fmt.Errorf("cluster: node with empty ID")
		}
		if seen[n.ID] {
			return fmt.Errorf("cluster: duplicate node ID %q", n.ID)
		}
		seen[n.ID] = true
		if n.ReplAddr == "" {
			return fmt.Errorf("cluster: node %s has no replication address", n.ID)
		}
	}
	if len(t.Leaders()) == 0 {
		return fmt.Errorf("cluster: topology has no leader-role node")
	}
	return nil
}

// Survivor returns the designated promotion target for a dead node: the
// lowest node ID in the topology excluding dead. Every node computes the
// same answer from the same static topology, so re-routing converges
// without coordination. ok is false when the topology holds no other node.
func (t Topology) Survivor(dead string) (string, bool) {
	best := ""
	for _, n := range t.Nodes {
		if n.ID == dead {
			continue
		}
		if best == "" || n.ID < best {
			best = n.ID
		}
	}
	return best, best != ""
}

// ParsePeers parses the -peers flag form:
//
//	id=apiURL|replAddr[|role][,id=apiURL|replAddr[|role]...]
//
// e.g. "n1=http://10.0.0.1:8421|10.0.0.1:9421,n3=http://10.0.0.3:8421|10.0.0.3:9421|follower".
// Role defaults to leader. The string must be identical on every node —
// roles shape the ring, and rings must agree cluster-wide.
func ParsePeers(s string) ([]NodeSpec, error) {
	var out []NodeSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, rest, ok := strings.Cut(part, "=")
		if !ok || id == "" {
			return nil, fmt.Errorf("cluster: peer %q: want id=apiURL|replAddr[|role]", part)
		}
		apiURL, rest, ok := strings.Cut(rest, "|")
		if !ok || apiURL == "" {
			return nil, fmt.Errorf("cluster: peer %q: want id=apiURL|replAddr[|role]", part)
		}
		replAddr, roleStr, _ := strings.Cut(rest, "|")
		if replAddr == "" {
			return nil, fmt.Errorf("cluster: peer %q: want id=apiURL|replAddr[|role]", part)
		}
		role := RoleLeader
		switch roleStr {
		case "", string(RoleLeader):
		case string(RoleFollower):
			role = RoleFollower
		default:
			return nil, fmt.Errorf("cluster: peer %q: unknown role %q", part, roleStr)
		}
		out = append(out, NodeSpec{ID: id, Addr: apiURL, ReplAddr: replAddr, Role: role})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	return out, nil
}
