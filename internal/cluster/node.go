package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"wilocator/internal/api"
	"wilocator/internal/client"
	"wilocator/internal/obs"
	"wilocator/internal/server"
	"wilocator/internal/traveltime"
)

// Wakeup broadcasts "the durable frontier advanced" from a persister to
// every shipping connection. The caller creates it first, wires Poke into
// traveltime.PersistConfig.OnDurable, and hands it to Config.Wake; without
// one the shippers fall back to heartbeat-paced polling.
type Wakeup struct {
	mu sync.Mutex
	ch chan struct{}
}

// NewWakeup returns a ready Wakeup.
func NewWakeup() *Wakeup { return &Wakeup{ch: make(chan struct{})} }

// Poke signals every waiter. It matches PersistConfig.OnDurable and is
// called with the persister's lock held, so it only swaps a channel.
func (w *Wakeup) Poke(gen uint64, durable int64) {
	w.mu.Lock()
	close(w.ch)
	w.ch = make(chan struct{})
	w.mu.Unlock()
}

// wait returns a channel closed at the next Poke. Grab it BEFORE reading
// the frontier you plan to act on, so an advance between the read and the
// select is never missed.
func (w *Wakeup) wait() <-chan struct{} {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.ch
}

// Config assembles one cluster node.
type Config struct {
	// Self is this node's ID in Topology.
	Self string
	// Topology is the full static node set, identical on every node.
	Topology Topology
	// ReplicaRoot is the directory under which replicas of peer WALs live
	// (one subdirectory per peer, see traveltime.ReplicaDirFor).
	ReplicaRoot string

	// Service ingests this node's own shard; Persister is its WAL (the
	// lineage shipped to peers). Both nil on a pure follower node.
	Service   *server.Service
	Persister *traveltime.Persister
	// Wake, when set, wakes shippers on fsync instead of polling; wire its
	// Poke into the Persister's PersistConfig.OnDurable.
	Wake *Wakeup

	// NewStore and NewService build the replacement shard at promotion:
	// NewStore a fresh travel-time store for recovery to fill, NewService
	// the serving stack over it. The sink and stats arguments come from the
	// promoted persister. NewService implementations must not reuse an
	// obs.Registry already holding a service's instruments (pass nil).
	NewStore   func() *traveltime.Store
	NewService func(store *traveltime.Store, sink func(traveltime.Record) error, stats func() traveltime.PersistStats) (*server.Service, error)
	// Persist configures the promoted persister (SyncEvery etc.).
	Persist traveltime.PersistConfig

	// HeartbeatEvery paces leader heartbeats on idle streams (default
	// 500 ms). FailoverAfter is how long a follower tolerates silence from
	// a leader before declaring it dead (default 3 s; must comfortably
	// exceed HeartbeatEvery). DialTimeout bounds one connect attempt
	// (default 1 s) and WriteTimeout one stream write (default 5 s).
	HeartbeatEvery time.Duration
	FailoverAfter  time.Duration
	DialTimeout    time.Duration
	WriteTimeout   time.Duration

	// ForwardTimeout bounds one forwarded report end to end, retries
	// included (default 5 s); Retry tunes the forwarding client's backoff.
	ForwardTimeout time.Duration
	Retry          client.RetryConfig

	// Metrics, when set, receives the cluster instruments (replication lag,
	// leadership, promotions, forwards).
	Metrics *obs.Registry
	// Logf, when set, receives cluster lifecycle events (connects,
	// resyncs, failovers). Nil silences them.
	Logf func(format string, args ...any)
	// DisablePromotion keeps this node a permanent follower: it tracks
	// leader loss and re-routes, but never promotes a replica itself.
	DisablePromotion bool
	// Listener, when set, is the pre-bound replication listener (tests use
	// one to grab a free port); otherwise the node listens on Self's
	// ReplAddr.
	Listener net.Listener
}

func (c Config) withDefaults() Config {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 500 * time.Millisecond
	}
	if c.FailoverAfter <= 0 {
		c.FailoverAfter = 3 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 5 * time.Second
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 5 * time.Second
	}
	return c
}

// activeShard is one geo-shard this node serves: its own, or a replica it
// promoted after the origin leader died.
type activeShard struct {
	origin   string // lineage origin node ID
	svc      *server.Service
	persist  *traveltime.Persister
	promoted bool
}

// followerTrack is the leader-side replication state of one follower. The
// acked offset survives disconnects deliberately: during a partition the
// durable frontier keeps advancing over a frozen ack, so the lag gauge
// grows — exactly the signal an operator needs.
type followerTrack struct {
	gen       uint64
	acked     int64
	connected bool
}

// Node is one member of the cluster: it serves its ring range locally,
// forwards mis-routed reports to their owners, ships its WAL to every
// peer, replicates every peer's WAL, and promotes a replica when its
// leader dies. Start it once; Dispatch is safe for concurrent use.
type Node struct {
	cfg  Config
	self NodeSpec
	ring *Ring

	ctx    context.Context
	cancel context.CancelFunc
	lst    net.Listener
	wg     sync.WaitGroup

	mu        sync.Mutex
	active    map[string]*activeShard   // origin node ID → shard served here
	runners   map[string]*replicaRunner // leader node ID → replication runner
	overrides map[string]string         // dead node ID → survivor (ring patch)
	followers map[string]*followerTrack // follower node ID → ack track
	conns     map[net.Conn]struct{}     // live stream conns, closed on Kill
	clients   map[string]*client.Client // node ID → forwarding client
	killed    bool

	promotions atomic.Uint64
	forwardOK  atomic.Uint64
	forwardErr atomic.Uint64
}

// NewNode validates cfg and assembles a node. Call Start to go live.
func NewNode(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	self, ok := cfg.Topology.Node(cfg.Self)
	if !ok {
		return nil, fmt.Errorf("cluster: self %q not in topology", cfg.Self)
	}
	isLeader := self.Role == RoleLeader || self.Role == ""
	if isLeader && (cfg.Service == nil || cfg.Persister == nil) {
		return nil, fmt.Errorf("cluster: leader node %s needs Service and Persister", cfg.Self)
	}
	if cfg.NewStore == nil || cfg.NewService == nil {
		return nil, fmt.Errorf("cluster: NewStore and NewService are required (promotion path)")
	}
	if cfg.ReplicaRoot == "" {
		return nil, fmt.Errorf("cluster: ReplicaRoot is required")
	}
	leaders := cfg.Topology.Leaders()
	ids := make([]string, len(leaders))
	for i, l := range leaders {
		ids[i] = l.ID
	}
	n := &Node{
		cfg:       cfg,
		self:      self,
		ring:      newRing(ids, cfg.Topology.VNodes),
		active:    map[string]*activeShard{},
		runners:   map[string]*replicaRunner{},
		overrides: map[string]string{},
		followers: map[string]*followerTrack{},
		conns:     map[net.Conn]struct{}{},
		clients:   map[string]*client.Client{},
	}
	if isLeader {
		n.active[self.ID] = &activeShard{origin: self.ID, svc: cfg.Service, persist: cfg.Persister}
	}
	return n, nil
}

// Start opens the replication listener, connects to every peer leader, and
// begins shipping and replicating. ctx bounds the node's lifetime.
func (n *Node) Start(ctx context.Context) error {
	n.ctx, n.cancel = context.WithCancel(ctx)
	lst := n.cfg.Listener
	if lst == nil {
		var err error
		lst, err = (&net.ListenConfig{}).Listen(n.ctx, "tcp", n.self.ReplAddr)
		if err != nil {
			return fmt.Errorf("cluster: listen %s: %w", n.self.ReplAddr, err)
		}
	}
	n.lst = lst
	// One replica runner per peer leader; the replica directory recovers
	// any state left by a previous process incarnation.
	for _, l := range n.cfg.Topology.Leaders() {
		if l.ID == n.self.ID {
			continue
		}
		rep, err := traveltime.OpenReplica(traveltime.ReplicaDirFor(n.cfg.ReplicaRoot, l.ID))
		if err != nil {
			lst.Close()
			return fmt.Errorf("cluster: open replica of %s: %w", l.ID, err)
		}
		r := newReplicaRunner(n, l, rep)
		n.runners[l.ID] = r
		n.wg.Add(1)
		go func() { defer n.wg.Done(); r.run(n.ctx) }()
	}
	n.registerMetrics()
	n.wg.Add(1)
	go func() { defer n.wg.Done(); n.acceptLoop() }()
	return nil
}

// ReplListenAddr is the bound address of the replication listener.
func (n *Node) ReplListenAddr() string { return n.lst.Addr().String() }

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

func (n *Node) acceptLoop() {
	for {
		conn, err := n.lst.Accept()
		if err != nil {
			return // listener closed (Kill/Close)
		}
		if !n.trackConn(conn) {
			conn.Close()
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer n.untrackConn(conn)
			n.serveShip(conn)
		}()
	}
}

// trackConn registers a live stream connection so Kill can sever it; it
// refuses (returns false) once the node is killed or closed.
func (n *Node) trackConn(c net.Conn) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.killed {
		return false
	}
	n.conns[c] = struct{}{}
	return true
}

func (n *Node) untrackConn(c net.Conn) {
	c.Close()
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
}

// ownerOf resolves a route's current owner: ring owner, patched by any
// failover override. origin is the lineage the route's history lives in.
func (n *Node) ownerOf(routeID string) (owner, origin string) {
	origin = n.ring.Owner(routeID)
	owner = origin
	n.mu.Lock()
	if ov := n.overrides[origin]; ov != "" {
		owner = ov
	}
	n.mu.Unlock()
	return owner, origin
}

// OwnerOf reports who currently owns routeID's reports (after any
// failover overrides) and the lineage origin it hashes to on the static
// ring. Tests and operators use it to see the partition.
func (n *Node) OwnerOf(routeID string) (owner, origin string) {
	return n.ownerOf(routeID)
}

// Dispatch ingests a report on the shard owning its route, forwarding to
// the owner node when that is not this one. forwarded reports whether the
// report left this node. It implements server.Router.
func (n *Node) Dispatch(ctx context.Context, rep api.Report) (api.IngestResponse, bool, error) {
	owner, origin := n.ownerOf(rep.RouteID)
	if owner == n.self.ID {
		n.mu.Lock()
		sh := n.active[origin]
		n.mu.Unlock()
		if sh == nil {
			// We are the designated survivor but the promotion has not
			// completed yet (replica still replaying).
			return api.IngestResponse{}, false, fmt.Errorf("%w: shard %s promoting on %s", api.ErrShardUnavailable, origin, n.self.ID)
		}
		resp, err := sh.svc.IngestCtx(ctx, rep)
		return resp, false, err
	}
	// Validate before forwarding: a malformed report must answer 400 here,
	// not burn a retry loop against the owner.
	if err := rep.Validate(); err != nil {
		return api.IngestResponse{}, false, err
	}
	cl, err := n.forwardClient(owner)
	if err != nil {
		n.forwardErr.Add(1)
		return api.IngestResponse{}, true, fmt.Errorf("%w: %v", api.ErrShardUnavailable, err)
	}
	fctx, cancel := context.WithTimeout(ctx, n.cfg.ForwardTimeout)
	defer cancel()
	resp, err := cl.PostReport(fctx, rep)
	if err != nil {
		// A 4xx (other than 429, which the client already retried) is the
		// owner REJECTING the report, not failing to serve it: the forward
		// itself worked, and the verdict must surface unchanged — wrapping
		// it in ErrShardUnavailable would turn a permanent 400 into a
		// retryable 503 at the edge.
		var se *client.StatusError
		if errors.As(err, &se) && se.StatusCode >= 400 && se.StatusCode < 500 &&
			se.StatusCode != http.StatusTooManyRequests {
			n.forwardOK.Add(1)
			msg := se.Message
			if msg == "" {
				msg = fmt.Sprintf("status %d", se.StatusCode)
			}
			return api.IngestResponse{}, true, fmt.Errorf("owner %s: %s", owner, msg)
		}
		n.forwardErr.Add(1)
		return api.IngestResponse{}, true, fmt.Errorf("%w: forward to %s: %v", api.ErrShardUnavailable, owner, err)
	}
	n.forwardOK.Add(1)
	return resp, true, nil
}

// forwardClient returns (building on first use) the API client for a node.
func (n *Node) forwardClient(id string) (*client.Client, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if cl := n.clients[id]; cl != nil {
		return cl, nil
	}
	spec, ok := n.cfg.Topology.Node(id)
	if !ok || spec.Addr == "" {
		return nil, fmt.Errorf("cluster: no API address for node %q", id)
	}
	cl, err := client.NewWithRetry(spec.Addr, nil, n.cfg.Retry)
	if err != nil {
		return nil, err
	}
	n.clients[id] = cl
	return cl, nil
}

// noteLeaderLoss records a dead leader and re-routes its range to the
// designated survivor. Every node calls this independently from its own
// silence detector and computes the same survivor, so routing converges
// without coordination. Returns true when this node is the survivor.
func (n *Node) noteLeaderLoss(dead string) bool {
	surv, ok := n.cfg.Topology.Survivor(dead)
	if !ok {
		return false
	}
	n.mu.Lock()
	already := n.overrides[dead] != ""
	n.overrides[dead] = surv
	n.mu.Unlock()
	if !already {
		n.logf("cluster %s: leader %s lost, range re-routed to %s", n.self.ID, dead, surv)
	}
	return surv == n.self.ID
}

// promote turns the local replica of dead's lineage into a served shard:
// recover the replica directory through the standard persister recovery
// (torn shipped tails are truncated there), build a fresh service over the
// recovered store, and take ownership of the range.
func (n *Node) promote(dead string, rep *traveltime.Replica) error {
	dir := rep.Dir()
	if err := rep.Close(); err != nil {
		return fmt.Errorf("cluster: close replica of %s: %w", dead, err)
	}
	store := n.cfg.NewStore()
	persist, err := traveltime.OpenPersister(dir, store, n.cfg.Persist)
	if err != nil {
		return fmt.Errorf("cluster: recover replica of %s: %w", dead, err)
	}
	svc, err := n.cfg.NewService(store, persist.Record, persist.Stats)
	if err != nil {
		_ = persist.Close() // nothing was recorded through it yet
		return fmt.Errorf("cluster: build promoted service for %s: %w", dead, err)
	}
	n.mu.Lock()
	n.active[dead] = &activeShard{origin: dead, svc: svc, persist: persist, promoted: true}
	n.mu.Unlock()
	n.promotions.Add(1)
	st := persist.Stats()
	n.logf("cluster %s: promoted shard %s (replayed %d records, truncated %d torn bytes)",
		n.self.ID, dead, st.WALReplayed, st.WALSkippedBytes)
	return nil
}

// Shard returns the service and persister serving origin's lineage on this
// node, if any. Tests use it to inspect promoted state.
func (n *Node) Shard(origin string) (*server.Service, *traveltime.Persister, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	sh := n.active[origin]
	if sh == nil {
		return nil, nil, false
	}
	return sh.svc, sh.persist, true
}

// lagFor is the replication lag of origin's lineage in bytes, from this
// node's point of view (leader: durable − slowest ack; follower: leader's
// durable − local replica length; promoted/unknown: 0).
func (n *Node) lagFor(origin string) int64 {
	// Snapshot the acked offsets while holding the lock: the ack-reader
	// goroutines mutate followerTrack under n.mu, so the track pointers
	// must not be dereferenced after the unlock.
	n.mu.Lock()
	sh := n.active[origin]
	leading := sh != nil && !sh.promoted
	var acks []int64
	if leading {
		for _, tr := range n.followers {
			acks = append(acks, tr.acked)
		}
	}
	runner := n.runners[origin]
	n.mu.Unlock()
	switch {
	case leading:
		_, durable := sh.persist.ShipState()
		var minAcked int64 // no follower yet → nothing replicated → full lag
		for i, a := range acks {
			if i == 0 || a < minAcked {
				minAcked = a
			}
		}
		if lag := durable - minAcked; lag > 0 {
			return lag
		}
		return 0
	case runner != nil:
		if lag := runner.leaderDurable.Load() - runner.localLen.Load(); lag > 0 {
			return lag
		}
		return 0
	default:
		return 0
	}
}

// Status reports this node's cluster view for /v1/healthz.
func (n *Node) Status() *api.ClusterStatus {
	role := string(n.self.Role)
	if role == "" {
		role = string(RoleLeader)
	}
	st := &api.ClusterStatus{NodeID: n.self.ID, Role: role}
	n.mu.Lock()
	actives := make([]*activeShard, 0, len(n.active))
	for _, sh := range n.active {
		actives = append(actives, sh)
	}
	runners := make(map[string]*replicaRunner, len(n.runners))
	for id, r := range n.runners {
		runners[id] = r
	}
	overrides := make(map[string]string, len(n.overrides))
	for k, v := range n.overrides {
		overrides[k] = v
	}
	n.mu.Unlock()
	for _, sh := range actives {
		gen, durable := sh.persist.ShipState()
		st.Shards = append(st.Shards, api.ShardStatus{
			Owner:               n.self.ID,
			Origin:              sh.origin,
			Local:               true,
			Promoted:            sh.promoted,
			ReplicationLagBytes: n.lagFor(sh.origin),
			WALDurableBytes:     durable,
			Generation:          gen,
		})
	}
	for id, r := range runners {
		if _, _, served := n.Shard(id); served {
			continue // promoted: already reported as local
		}
		owner := id
		if ov := overrides[id]; ov != "" {
			owner = ov
		}
		st.Shards = append(st.Shards, api.ShardStatus{
			Owner:               owner,
			Origin:              id,
			ReplicationLagBytes: n.lagFor(id),
			WALDurableBytes:     r.localLen.Load(),
			Generation:          r.gen.Load(),
		})
	}
	sortShardStatuses(st.Shards)
	return st
}

func sortShardStatuses(s []api.ShardStatus) {
	for i := 1; i < len(s); i++ { // insertion sort; shard counts are tiny
		for j := i; j > 0 && s[j].Origin < s[j-1].Origin; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// registerMetrics publishes the cluster instruments: per-lineage lag and
// leadership gauges (one series per topology leader, registered up front
// so promotion never races a registry write), promotion and forward
// counters.
func (n *Node) registerMetrics() {
	reg := n.cfg.Metrics
	if reg == nil {
		return
	}
	for _, l := range n.cfg.Topology.Leaders() {
		origin := l.ID
		reg.GaugeFunc("wilocator_cluster_replication_lag_bytes",
			"Replication lag of one geo-shard's WAL in bytes, as seen from this node (leader: durable minus slowest follower ack; follower: leader durable minus local replica).",
			func() float64 { return float64(n.lagFor(origin)) },
			obs.L("shard", origin))
		reg.GaugeFunc("wilocator_cluster_is_leader",
			"1 when this node serves the shard (originally or by promotion), 0 when it only replicates it.",
			func() float64 {
				if _, _, ok := n.Shard(origin); ok {
					return 1
				}
				return 0
			},
			obs.L("shard", origin))
	}
	reg.CounterFunc("wilocator_cluster_promotions_total",
		"Replica promotions this node performed after a leader loss.",
		n.promotions.Load)
	reg.CounterFunc("wilocator_cluster_forwarded_reports_total",
		"Reports forwarded to their owning node.",
		n.forwardOK.Load, obs.L("result", "ok"))
	reg.CounterFunc("wilocator_cluster_forwarded_reports_total",
		"Reports forwarded to their owning node.",
		n.forwardErr.Load, obs.L("result", "error"))
}

// Kill severs the node abruptly — cancel everything, close the listener
// and every live stream — without flushing or closing its persisters,
// modelling a process death as the peers observe it. Test hook.
func (n *Node) Kill() {
	n.mu.Lock()
	n.killed = true
	conns := make([]net.Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	n.cancel()
	n.lst.Close()
	for _, c := range conns {
		c.Close()
	}
	n.wg.Wait()
}

// Close shuts the node down gracefully: stop shipping and replicating,
// then close every replica and promoted persister. The node's own
// Persister is caller-owned and left open.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.killed {
		n.mu.Unlock()
		return nil
	}
	n.killed = true
	conns := make([]net.Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	n.cancel()
	err := n.lst.Close()
	for _, c := range conns {
		c.Close()
	}
	n.wg.Wait()
	var errs []error
	if err != nil {
		errs = append(errs, err)
	}
	for id, r := range n.runners {
		if _, _, served := n.Shard(id); served {
			continue // promoted: replica file handle moved to the persister
		}
		if cerr := r.rep.Close(); cerr != nil {
			errs = append(errs, cerr)
		}
	}
	n.mu.Lock()
	for _, sh := range n.active {
		if sh.promoted {
			if cerr := sh.persist.Close(); cerr != nil {
				errs = append(errs, cerr)
			}
		}
	}
	n.mu.Unlock()
	return errors.Join(errs...)
}
