package cluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"wilocator/internal/traveltime"
)

// replicaRunner maintains this node's replica of one remote leader's WAL
// lineage: it dials the leader's shipping listener (with backoff), pulls
// snapshot resyncs and WAL chunks, fsyncs each chunk before acking, and —
// when the leader falls silent for FailoverAfter — declares it dead and
// triggers re-routing (and, on the designated survivor, promotion).
type replicaRunner struct {
	node   *Node
	leader NodeSpec
	rep    *traveltime.Replica

	// Observability snapshots, updated by the stream goroutine and read by
	// Status/lagFor/metrics without touching the non-concurrency-safe rep.
	gen           atomic.Uint64
	localLen      atomic.Int64
	leaderDurable atomic.Int64
	lastHeard     atomic.Int64 // unix nanos of the last frame from the leader
}

func newReplicaRunner(n *Node, leader NodeSpec, rep *traveltime.Replica) *replicaRunner {
	r := &replicaRunner{node: n, leader: leader, rep: rep}
	gen, walLen := rep.State()
	r.gen.Store(gen)
	r.localLen.Store(walLen)
	return r
}

func (r *replicaRunner) heardAgo() time.Duration {
	return time.Duration(nanotime() - r.lastHeard.Load())
}

// nanotime is the failover clock. Real time, deliberately not the injected
// simulation clock: leader silence is a property of the actual network.
func nanotime() int64 { return time.Now().UnixNano() }

// run is the runner's life: connect, replicate, reconnect — until the
// context ends or the leader is declared dead.
func (r *replicaRunner) run(ctx context.Context) {
	cfg := r.node.cfg
	r.lastHeard.Store(nanotime()) // grace period from startup
	backoff := 50 * time.Millisecond
	for ctx.Err() == nil {
		if r.heardAgo() > cfg.FailoverAfter {
			r.failover(ctx)
			return
		}
		conn, err := r.dial(ctx)
		if err == nil {
			backoff = 50 * time.Millisecond
			err = r.stream(ctx, conn)
			r.node.untrackConn(conn)
			if err != nil && ctx.Err() == nil {
				r.node.logf("cluster %s: replica stream from %s: %v", r.node.self.ID, r.leader.ID, err)
			}
			continue
		}
		// Dial failed: wait out the backoff, but never sleep past the
		// failover deadline.
		d := backoff
		if rem := cfg.FailoverAfter - r.heardAgo(); rem < d {
			d = rem + time.Millisecond
		}
		if d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return
			case <-t.C:
			}
		}
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
}

func (r *replicaRunner) dial(ctx context.Context) (net.Conn, error) {
	dctx, cancel := context.WithTimeout(ctx, r.node.cfg.DialTimeout)
	defer cancel()
	conn, err := (&net.Dialer{}).DialContext(dctx, "tcp", r.leader.ReplAddr)
	if err != nil {
		return nil, err
	}
	if !r.node.trackConn(conn) {
		conn.Close()
		return nil, errors.New("cluster: node closed")
	}
	return conn, nil
}

// stream runs one replication session over conn: hello, then frames until
// error. Every received frame refreshes the liveness clock; every WAL
// chunk is fsynced (inside Replica.AppendWAL) before the ack leaves.
func (r *replicaRunner) stream(ctx context.Context, conn net.Conn) error {
	cfg := r.node.cfg
	gen, walLen := r.rep.State()
	hello, err := appendShipFrame(nil, msgHello, shipHello{
		Follower: r.node.self.ID, Gen: gen, WALLen: walLen, Bare: !r.rep.HasLineage(),
	})
	if err != nil {
		return err
	}
	conn.SetWriteDeadline(time.Now().Add(cfg.WriteTimeout))
	if _, err := conn.Write(hello); err != nil {
		return fmt.Errorf("hello: %w", err)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	var scratch, snapBuf, ackBuf []byte
	var snap shipSnapBegin
	inSnap := false
	for {
		// The read deadline doubles as the failover detector's tick: when
		// it expires we return, and run() checks the silence budget.
		conn.SetReadDeadline(time.Now().Add(cfg.FailoverAfter))
		t, body, s, err := readShipFrame(br, scratch)
		scratch = s
		if err != nil {
			return fmt.Errorf("read: %w", err)
		}
		r.lastHeard.Store(nanotime())
		ack := int64(-1)
		switch t {
		case msgSnapBegin:
			if err := decodeShipBody(t, body, &snap); err != nil {
				return err
			}
			inSnap, snapBuf = true, snapBuf[:0]
		case msgSnapChunk:
			var c shipSnapChunk
			if err := decodeShipBody(t, body, &c); err != nil {
				return err
			}
			if !inSnap {
				return errors.New("snapshot chunk outside a resync")
			}
			snapBuf = append(snapBuf, c.Data...)
		case msgSnapEnd:
			var end shipSnapEnd
			if err := decodeShipBody(t, body, &end); err != nil {
				return err
			}
			if !inSnap || end.Gen != snap.Gen || int64(len(snapBuf)) != end.Size {
				return fmt.Errorf("resync mismatch: got %d bytes of gen %d, want %d of gen %d",
					len(snapBuf), snap.Gen, end.Size, end.Gen)
			}
			if snap.Bare {
				err = r.rep.BeginBare(snap.Gen)
			} else {
				err = r.rep.InstallSnapshot(snap.Gen, snapBuf)
			}
			if err != nil {
				return err
			}
			inSnap = false
			r.gen.Store(snap.Gen)
			r.localLen.Store(0)
			r.node.logf("cluster %s: resynced %s at gen %d (%d snapshot bytes)",
				r.node.self.ID, r.leader.ID, snap.Gen, len(snapBuf))
			ack = 0
		case msgWALChunk:
			var c shipWALChunk
			if err := decodeShipBody(t, body, &c); err != nil {
				return err
			}
			_, have := r.rep.State()
			if c.Off < have { // duplicate after a reconnect: drop the known prefix
				if int64(len(c.Data)) <= have-c.Off {
					ack = have
					break
				}
				c.Data = c.Data[have-c.Off:]
				c.Off = have
			}
			if err := r.rep.AppendWAL(c.Gen, c.Off, c.Data); err != nil {
				return err
			}
			_, now := r.rep.State()
			r.gen.Store(c.Gen)
			r.localLen.Store(now)
			ack = now
		case msgHeartbeat:
			var hb shipHeartbeat
			if err := decodeShipBody(t, body, &hb); err != nil {
				return err
			}
			r.leaderDurable.Store(hb.Durable)
			_, have := r.rep.State()
			ack = have
		default:
			return fmt.Errorf("unexpected ship message %d", t)
		}
		if ack >= 0 {
			g, _ := r.rep.State()
			ackBuf, err = appendShipFrame(ackBuf[:0], msgAck, shipAck{Gen: g, Durable: ack})
			if err != nil {
				return err
			}
			conn.SetWriteDeadline(time.Now().Add(cfg.WriteTimeout))
			if _, err := conn.Write(ackBuf); err != nil {
				return fmt.Errorf("ack: %w", err)
			}
		}
	}
}

// failover declares the leader dead, re-routes its range, and promotes the
// local replica when this node is the designated survivor.
func (r *replicaRunner) failover(ctx context.Context) {
	if ctx.Err() != nil {
		return
	}
	survivorIsSelf := r.node.noteLeaderLoss(r.leader.ID)
	if !survivorIsSelf || r.node.cfg.DisablePromotion {
		return
	}
	if err := r.node.promote(r.leader.ID, r.rep); err != nil {
		r.node.logf("cluster %s: promotion of %s FAILED: %v", r.node.self.ID, r.leader.ID, err)
	}
}
