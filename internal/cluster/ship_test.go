package cluster

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"
)

func TestShipFrameRoundTrip(t *testing.T) {
	msgs := []struct {
		t    msgType
		body any
	}{
		{msgHello, shipHello{Follower: "n2", Gen: 3, WALLen: 4096}},
		{msgSnapBegin, shipSnapBegin{Gen: 4, Size: 123456}},
		{msgSnapBegin, shipSnapBegin{Gen: 0, Bare: true}},
		{msgSnapChunk, shipSnapChunk{Data: bytes.Repeat([]byte{0xAB}, 1000)}},
		{msgSnapEnd, shipSnapEnd{Gen: 4, Size: 123456}},
		{msgWALChunk, shipWALChunk{Gen: 4, Off: 8192, Data: []byte("framed-bytes")}},
		{msgHeartbeat, shipHeartbeat{Gen: 4, Durable: 99999}},
		{msgAck, shipAck{Gen: 4, Durable: 8192}},
	}
	var stream []byte
	for _, m := range msgs {
		var err error
		stream, err = appendShipFrame(stream, m.t, m.body)
		if err != nil {
			t.Fatalf("encode %d: %v", m.t, err)
		}
	}

	// Byte-slice parser.
	rest := stream
	for i, m := range msgs {
		gotT, body, r, err := parseShipFrame(rest)
		if err != nil {
			t.Fatalf("msg %d: parse: %v", i, err)
		}
		rest = r
		if gotT != m.t {
			t.Fatalf("msg %d: type = %d, want %d", i, gotT, m.t)
		}
		out := reflect.New(reflect.TypeOf(m.body))
		if err := decodeShipBody(gotT, body, out.Interface()); err != nil {
			t.Fatalf("msg %d: decode: %v", i, err)
		}
		if got := out.Elem().Interface(); !reflect.DeepEqual(got, m.body) {
			t.Fatalf("msg %d: round trip = %+v, want %+v", i, got, m.body)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after all frames", len(rest))
	}

	// Stream parser over the same bytes.
	br := bufio.NewReader(bytes.NewReader(stream))
	var scratch []byte
	for i, m := range msgs {
		gotT, body, s, err := readShipFrame(br, scratch)
		scratch = s
		if err != nil {
			t.Fatalf("stream msg %d: %v", i, err)
		}
		if gotT != m.t {
			t.Fatalf("stream msg %d: type = %d, want %d", i, gotT, m.t)
		}
		out := reflect.New(reflect.TypeOf(m.body))
		if err := decodeShipBody(gotT, body, out.Interface()); err != nil {
			t.Fatalf("stream msg %d: decode: %v", i, err)
		}
	}
	if _, _, _, err := readShipFrame(br, scratch); !errors.Is(err, io.EOF) {
		t.Fatalf("after last frame: err = %v, want EOF", err)
	}
}

func TestParseShipFrameTruncation(t *testing.T) {
	frame, err := appendShipFrame(nil, msgAck, shipAck{Gen: 1, Durable: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Every proper prefix must say "need more bytes", never misparse.
	for cut := 0; cut < len(frame); cut++ {
		if _, _, _, err := parseShipFrame(frame[:cut]); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("prefix of %d bytes: err = %v, want ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestParseShipFrameCorruption(t *testing.T) {
	frame, err := appendShipFrame(nil, msgHeartbeat, shipHeartbeat{Gen: 7, Durable: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit anywhere in the payload: the CRC must catch it.
	for i := shipHeaderSize; i < len(frame); i++ {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x10
		if _, _, _, err := parseShipFrame(mut); err == nil || errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("bit flip at %d went undetected (err = %v)", i, err)
		}
	}
	// Implausible length field.
	var huge [shipHeaderSize]byte
	binary.LittleEndian.PutUint32(huge[0:4], maxShipFrame+1)
	if _, _, _, err := parseShipFrame(huge[:]); err == nil || errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("oversized length accepted (err = %v)", err)
	}
	var zero [shipHeaderSize]byte
	if _, _, _, err := parseShipFrame(zero[:]); err == nil || errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("zero length accepted (err = %v)", err)
	}
}

// FuzzWALShip throws arbitrary bytes at the shipping frame decoder: it
// must never panic, and whenever it does accept a frame, re-encoding the
// accepted payload must reproduce the consumed bytes exactly.
func FuzzWALShip(f *testing.F) {
	seed, _ := appendShipFrame(nil, msgWALChunk, shipWALChunk{Gen: 2, Off: 100, Data: []byte{1, 2, 3}})
	f.Add(seed)
	hb, _ := appendShipFrame(nil, msgHeartbeat, shipHeartbeat{Gen: 1, Durable: 10})
	f.Add(append(seed, hb...))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, b []byte) {
		rest := b
		for {
			typ, body, r, err := parseShipFrame(rest)
			if err != nil {
				if errors.Is(err, io.ErrUnexpectedEOF) && len(r) != len(rest) {
					t.Fatalf("short-frame error consumed %d bytes", len(rest)-len(r))
				}
				return
			}
			consumed := rest[:len(rest)-len(r)]
			// An accepted frame is exactly header + 1 type byte + body, and
			// its CRC-verified payload re-frames to the same bytes.
			reenc := make([]byte, 0, len(consumed))
			reenc = append(reenc, consumed[:shipHeaderSize]...)
			reenc = append(reenc, byte(typ))
			reenc = append(reenc, body...)
			if !bytes.Equal(reenc, consumed) {
				t.Fatalf("frame reassembly mismatch: %x vs %x", reenc, consumed)
			}
			if len(r) >= len(rest) {
				t.Fatalf("parser failed to make progress")
			}
			rest = r
		}
	})
}
