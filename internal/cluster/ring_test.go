package cluster

import (
	"fmt"
	"testing"
)

func TestRingBalance(t *testing.T) {
	r := newRing([]string{"n1", "n2"}, 0)
	counts := map[string]int{}
	const keys = 10000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("route-%d", i))]++
	}
	for node, c := range counts {
		frac := float64(c) / keys
		if frac < 0.25 || frac > 0.75 {
			t.Errorf("node %s owns %.0f%% of keys; consistent hashing is badly unbalanced", node, frac*100)
		}
	}
	if len(counts) != 2 {
		t.Fatalf("only %d nodes own keys, want 2", len(counts))
	}
}

// TestRingConsistency: removing one node must reassign ONLY that node's
// keys — the property promotion relies on (healthy shards never shuffle).
func TestRingConsistency(t *testing.T) {
	full := newRing([]string{"n1", "n2", "n3"}, 0)
	without := newRing([]string{"n1", "n3"}, 0)
	moved, kept := 0, 0
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("route-%d", i)
		was, is := full.Owner(key), without.Owner(key)
		if was == "n2" {
			if is == "n2" {
				t.Fatalf("key %s still owned by removed node", key)
			}
			moved++
			continue
		}
		if was != is {
			t.Fatalf("key %s moved %s → %s although its owner survived", key, was, is)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate split: moved=%d kept=%d", moved, kept)
	}
}

func TestRingDeterminism(t *testing.T) {
	a := newRing([]string{"n1", "n2"}, 64)
	b := newRing([]string{"n2", "n1"}, 64) // order of construction must not matter
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("k%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("owner of %s differs across construction orders", key)
		}
	}
}

func TestTopologySurvivor(t *testing.T) {
	topo := Topology{Nodes: []NodeSpec{
		{ID: "n2", Addr: "http://b", ReplAddr: "b:1"},
		{ID: "n1", Addr: "http://a", ReplAddr: "a:1"},
		{ID: "n3", Addr: "http://c", ReplAddr: "c:1", Role: RoleFollower},
	}}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	for dead, want := range map[string]string{"n1": "n2", "n2": "n1", "n3": "n1"} {
		got, ok := topo.Survivor(dead)
		if !ok || got != want {
			t.Errorf("Survivor(%s) = %q, %v; want %q", dead, got, ok, want)
		}
	}
	if leaders := topo.Leaders(); len(leaders) != 2 || leaders[0].ID != "n1" || leaders[1].ID != "n2" {
		t.Errorf("Leaders() = %v, want [n1 n2] (followers excluded, sorted)", leaders)
	}
}

func TestParsePeers(t *testing.T) {
	nodes, err := ParsePeers("n1=http://a:1|a:2, n2=http://b:1|b:2|follower")
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeSpec{
		{ID: "n1", Addr: "http://a:1", ReplAddr: "a:2", Role: RoleLeader},
		{ID: "n2", Addr: "http://b:1", ReplAddr: "b:2", Role: RoleFollower},
	}
	if len(nodes) != len(want) {
		t.Fatalf("parsed %d nodes, want %d", len(nodes), len(want))
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Errorf("node %d = %+v, want %+v", i, nodes[i], want[i])
		}
	}
	for _, bad := range []string{"", "n1", "n1=http://a", "n1=http://a|", "n1=|b", "n1=http://a|b|weird"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted", bad)
		}
	}
}
