package traveltime

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
)

// The write-ahead log is a flat sequence of frames:
//
//	[4-byte little-endian payload length][4-byte CRC32 (IEEE) of payload][payload]
//
// where the payload is the JSON encoding of one Record. The framing makes
// the durable tail self-describing: a crash that tears the final append
// leaves either a short header, a short payload, or a payload whose CRC no
// longer matches — all of which recovery detects and discards without
// touching the valid prefix.

// walHeaderSize is the fixed per-frame header: length + CRC32.
const walHeaderSize = 8

// MaxWALFrame bounds a single WAL frame payload. A Record encodes to well
// under 200 bytes; anything larger means the length field itself is
// corrupt, so replay treats it as a bad frame rather than attempting a
// gigantic allocation.
const MaxWALFrame = 1 << 20

// appendWALFrame encodes rec as one frame and appends it to dst.
func appendWALFrame(dst []byte, rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return dst, fmt.Errorf("traveltime: encode WAL record: %w", err)
	}
	if len(payload) > MaxWALFrame {
		return dst, fmt.Errorf("traveltime: WAL record of %d bytes exceeds frame cap %d", len(payload), MaxWALFrame)
	}
	var hdr [walHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// ReplayWAL scans a write-ahead log, invoking apply for every intact frame
// in order. It returns the number of records applied, the number apply
// rejected (apply errors skip that record but do not stop the scan — the
// frame was durable and authentic, so the records after it are too), the
// byte length of the valid frame prefix, and tailErr describing the first
// bad frame.
//
// A nil tailErr means the log ended cleanly on a frame boundary. A non-nil
// tailErr means the scan stopped early — a truncated final frame after a
// crash, or a corrupt length/CRC — and everything beyond goodOffset was
// discarded; callers decide whether that is tolerable (crash recovery: yes,
// counted) and may truncate the file back to goodOffset before appending.
func ReplayWAL(r io.Reader, apply func(Record) error) (applied, rejected int, goodOffset int64, tailErr error) {
	br := bufio.NewReader(r)
	var hdr [walHeaderSize]byte
	payload := make([]byte, 0, 256)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return applied, rejected, goodOffset, nil
			}
			return applied, rejected, goodOffset, fmt.Errorf("traveltime: WAL frame %d: truncated header at offset %d", applied+rejected, goodOffset)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		if n == 0 || n > MaxWALFrame {
			return applied, rejected, goodOffset, fmt.Errorf("traveltime: WAL frame %d: implausible length %d at offset %d", applied+rejected, n, goodOffset)
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return applied, rejected, goodOffset, fmt.Errorf("traveltime: WAL frame %d: truncated payload at offset %d", applied+rejected, goodOffset)
		}
		if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(hdr[4:8]); got != want {
			return applied, rejected, goodOffset, fmt.Errorf("traveltime: WAL frame %d: CRC mismatch at offset %d (got %08x, want %08x)", applied+rejected, goodOffset, got, want)
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			// The CRC matched but the payload is not a record: the frame was
			// written by something that is not us. Stop, like any bad frame.
			return applied, rejected, goodOffset, fmt.Errorf("traveltime: WAL frame %d: undecodable payload at offset %d: %v", applied+rejected, goodOffset, err)
		}
		goodOffset += int64(walHeaderSize) + int64(n)
		if err := apply(rec); err != nil {
			rejected++
			continue
		}
		applied++
	}
}
