package traveltime

import (
	"fmt"
	"math"
	"sort"
)

// Diff compares the contents of two stores independent of the order in
// which their records were ingested, returning a descriptive error for the
// first mismatch found, or nil when the stores are equivalent.
//
// Record ingestion is commutative in everything the store keeps except
// floating-point summation order (means) and ring/history truncation, so:
//
//   - mean accumulators compare by exact sample count and by mean within
//     tol (absolute), absorbing summation-order rounding;
//   - duration histories and recent rings compare as sorted multisets.
//
// Truncation caveat: once a (segment, route, slot) history exceeds
// maxDurationsPerKey or a segment's recent ring exceeds maxRecentPerSegment,
// WHICH entries survive depends on arrival order, and two interleavings of
// the same records may legitimately diverge. Diff is therefore only a valid
// equivalence check while every key stays below those caps — which the
// fleet-scale replay tests arrange by construction.
func Diff(a, b *Store, tol float64) error {
	if a == nil || b == nil {
		return fmt.Errorf("traveltime: Diff on nil store")
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	//wilint:ignore locksafe Diff is a test/debug harness called with two quiescent stores; no concurrent Diff(b, a) exists to invert the order
	b.mu.RLock()
	defer b.mu.RUnlock()

	if !equalInts(a.plan.Bounds(), b.plan.Bounds()) {
		return fmt.Errorf("traveltime: slot plans differ: %v vs %v", a.plan.Bounds(), b.plan.Bounds())
	}

	if err := diffAccs("hist", histKeyString, a.hist, b.hist, tol); err != nil {
		return err
	}
	if err := diffAccs("hourly", hourKeyString, a.hourly, b.hourly, tol); err != nil {
		return err
	}
	if err := diffAccs("allSeg", func(k any) string { return fmt.Sprintf("seg=%v", k) }, a.allSeg, b.allSeg, tol); err != nil {
		return err
	}

	if len(a.durs) != len(b.durs) {
		return fmt.Errorf("traveltime: durs key counts differ: %d vs %d", len(a.durs), len(b.durs))
	}
	for k, da := range a.durs {
		db, ok := b.durs[k]
		if !ok {
			return fmt.Errorf("traveltime: durs key %s missing in second store", histKeyString(k))
		}
		if len(da) == maxDurationsPerKey || len(db) == maxDurationsPerKey {
			return fmt.Errorf("traveltime: durs key %s at the %d-entry cap; truncation is order-dependent and Diff cannot compare it",
				histKeyString(k), maxDurationsPerKey)
		}
		if err := diffMultisets(da, db, tol); err != nil {
			return fmt.Errorf("traveltime: durs key %s: %w", histKeyString(k), err)
		}
	}

	if len(a.recent) != len(b.recent) {
		return fmt.Errorf("traveltime: recent segment counts differ: %d vs %d", len(a.recent), len(b.recent))
	}
	for seg, ra := range a.recent {
		rb, ok := b.recent[seg]
		if !ok {
			return fmt.Errorf("traveltime: recent ring for segment %d missing in second store", seg)
		}
		if len(ra) == maxRecentPerSegment || len(rb) == maxRecentPerSegment {
			return fmt.Errorf("traveltime: recent ring for segment %d at the %d-entry cap; truncation is order-dependent and Diff cannot compare it",
				seg, maxRecentPerSegment)
		}
		if err := diffTraversals(ra, rb, tol); err != nil {
			return fmt.Errorf("traveltime: recent ring for segment %d: %w", seg, err)
		}
	}
	return nil
}

func histKeyString(k any) string {
	hk := k.(histKey)
	return fmt.Sprintf("seg=%d route=%q slot=%d", hk.seg, hk.route, hk.slot)
}

func hourKeyString(k any) string {
	hk := k.(hourKey)
	return fmt.Sprintf("seg=%d hour=%d route=%q", hk.seg, hk.hour, hk.route)
}

func diffAccs[K comparable](name string, keyStr func(any) string, a, b map[K]*meanAcc, tol float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("traveltime: %s key counts differ: %d vs %d", name, len(a), len(b))
	}
	for k, aa := range a {
		bb, ok := b[k]
		if !ok {
			return fmt.Errorf("traveltime: %s key %s missing in second store", name, keyStr(k))
		}
		if aa.n != bb.n {
			return fmt.Errorf("traveltime: %s key %s sample counts differ: %d vs %d", name, keyStr(k), aa.n, bb.n)
		}
		if math.Abs(aa.mean()-bb.mean()) > tol {
			return fmt.Errorf("traveltime: %s key %s means differ: %g vs %g (tol %g)", name, keyStr(k), aa.mean(), bb.mean(), tol)
		}
	}
	return nil
}

func diffMultisets(a, b []float64, tol float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("lengths differ: %d vs %d", len(a), len(b))
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	for i := range sa {
		if math.Abs(sa[i]-sb[i]) > tol {
			return fmt.Errorf("sorted entry %d differs: %g vs %g (tol %g)", i, sa[i], sb[i], tol)
		}
	}
	return nil
}

func diffTraversals(a, b []Traversal, tol float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("lengths differ: %d vs %d", len(a), len(b))
	}
	sa := sortedTraversals(a)
	sb := sortedTraversals(b)
	for i := range sa {
		ta, tb := sa[i], sb[i]
		if ta.RouteID != tb.RouteID || !ta.Exit.Equal(tb.Exit) || math.Abs(ta.Seconds-tb.Seconds) > tol {
			return fmt.Errorf("sorted entry %d differs: %+v vs %+v", i, ta, tb)
		}
	}
	return nil
}

func sortedTraversals(in []Traversal) []Traversal {
	out := append([]Traversal(nil), in...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if !a.Exit.Equal(b.Exit) {
			return a.Exit.Before(b.Exit)
		}
		if a.RouteID != b.RouteID {
			return a.RouteID < b.RouteID
		}
		return a.Seconds < b.Seconds
	})
	return out
}
