// Package traveltime stores observed per-segment bus travel times and
// derives the statistics WiLocator's predictor and traffic map consume:
// historical means Th(i,j,l) per (segment, route, time-slot), the recent
// traversals used for the cross-route correction of Eq. 5/8, the seasonal
// index SI(i,l) of Eq. 6 that discovers rush hours, and the residual
// statistics behind the traffic map's z-classification.
package traveltime

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// SlotPlan divides a day into time slots by hour boundaries. The paper's
// evaluation groups a weekday into 5 slots: <8h, 8-10h (morning rush),
// 10-18h, 18-19h (afternoon rush), >19h.
type SlotPlan struct {
	bounds []int // strictly increasing hour boundaries in (0, 24)
}

// NewSlotPlan creates a plan with the given hour boundaries. An empty bounds
// list yields a single all-day slot.
func NewSlotPlan(bounds []int) (SlotPlan, error) {
	cp := make([]int, len(bounds))
	copy(cp, bounds)
	sort.Ints(cp)
	for i, b := range cp {
		if b <= 0 || b >= 24 {
			return SlotPlan{}, fmt.Errorf("traveltime: boundary hour %d outside (0,24)", b)
		}
		if i > 0 && cp[i-1] == b {
			return SlotPlan{}, fmt.Errorf("traveltime: duplicate boundary hour %d", b)
		}
	}
	return SlotPlan{bounds: cp}, nil
}

// HourlyPlan returns the 24-slot plan used for seasonal-index analysis.
func HourlyPlan() SlotPlan {
	bounds := make([]int, 23)
	for i := range bounds {
		bounds[i] = i + 1
	}
	return SlotPlan{bounds: bounds}
}

// PaperPlan returns the paper's 5-slot weekday plan (Section V-B.2).
func PaperPlan() SlotPlan {
	return SlotPlan{bounds: []int{8, 10, 18, 19}}
}

// NumSlots returns the number of slots in the plan.
func (p SlotPlan) NumSlots() int { return len(p.bounds) + 1 }

// SlotOf returns the slot index containing time t.
func (p SlotPlan) SlotOf(t time.Time) int {
	h := t.Hour()
	return sort.SearchInts(p.bounds, h+1)
}

// Bounds returns a copy of the boundary hours.
func (p SlotPlan) Bounds() []int {
	cp := make([]int, len(p.bounds))
	copy(cp, p.bounds)
	return cp
}

// Label returns a human-readable description of slot i, e.g. "08-10h".
func (p SlotPlan) Label(i int) string {
	lo, hi := 0, 24
	if i > 0 {
		lo = p.bounds[i-1]
	}
	if i < len(p.bounds) {
		hi = p.bounds[i]
	}
	return fmt.Sprintf("%02d-%02dh", lo, hi)
}

// String implements fmt.Stringer.
func (p SlotPlan) String() string {
	labels := make([]string, p.NumSlots())
	for i := range labels {
		labels[i] = p.Label(i)
	}
	return strings.Join(labels, ",")
}

// DefaultRushThreshold is the seasonal-index value above which a slot is
// flagged as a rush hour (the paper uses SI >= 1.6).
const DefaultRushThreshold = 1.6

// RushHours returns the hours whose seasonal index meets the threshold.
// si must have one entry per hour (length 24); thresh <= 0 selects the
// default.
func RushHours(si []float64, thresh float64) []int {
	if thresh <= 0 {
		thresh = DefaultRushThreshold
	}
	var out []int
	for h, v := range si {
		if v >= thresh {
			out = append(out, h)
		}
	}
	return out
}

// GroupSlots builds a slot plan from an hourly seasonal index by placing a
// boundary wherever the index jumps by more than tol between consecutive
// hours — the paper's "group consecutive time slots with similar seasonal
// index into a bigger slot". tol <= 0 defaults to 0.25.
func GroupSlots(si []float64, tol float64) (SlotPlan, error) {
	if len(si) != 24 {
		return SlotPlan{}, fmt.Errorf("traveltime: seasonal index has %d entries, want 24", len(si))
	}
	if tol <= 0 {
		tol = 0.25
	}
	var bounds []int
	for h := 1; h < 24; h++ {
		if abs(si[h]-si[h-1]) > tol {
			bounds = append(bounds, h)
		}
	}
	return NewSlotPlan(bounds)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
