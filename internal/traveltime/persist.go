package traveltime

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"wilocator/internal/roadnet"
)

// snapshotVersion guards the on-disk format.
const snapshotVersion = 1

// snapshot is the JSON persistence schema of a Store. It captures the
// aggregates the store actually keeps (historical means, capped duration
// histories, recent rings, hourly means) rather than raw records, so a
// reload reproduces the store state exactly.
type snapshot struct {
	Version    int        `json:"version"`
	PlanBounds []int      `json:"planBounds"`
	Hist       []histSnap `json:"hist"`
	Durs       []durSnap  `json:"durs"`
	Recent     []ringSnap `json:"recent"`
	Hourly     []hourSnap `json:"hourly"`
	AllSeg     []segSnap  `json:"allSeg"`
}

type histSnap struct {
	Seg   roadnet.SegmentID `json:"seg"`
	Route string            `json:"route"`
	Slot  int               `json:"slot"`
	Sum   float64           `json:"sum"`
	N     int               `json:"n"`
}

type durSnap struct {
	Seg       roadnet.SegmentID `json:"seg"`
	Route     string            `json:"route"`
	Slot      int               `json:"slot"`
	Durations []float64         `json:"durations"`
}

type ringSnap struct {
	Seg        roadnet.SegmentID `json:"seg"`
	Traversals []traversalSnap   `json:"traversals"`
}

type traversalSnap struct {
	Route   string    `json:"route"`
	Exit    time.Time `json:"exit"`
	Seconds float64   `json:"seconds"`
}

type hourSnap struct {
	Seg   roadnet.SegmentID `json:"seg"`
	Hour  int               `json:"hour"`
	Route string            `json:"route"`
	Sum   float64           `json:"sum"`
	N     int               `json:"n"`
}

type segSnap struct {
	Seg roadnet.SegmentID `json:"seg"`
	Sum float64           `json:"sum"`
	N   int               `json:"n"`
}

// WriteTo serialises the store as JSON. The output is deterministic
// (entries sorted), so snapshots diff cleanly. It implements io.WriterTo.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	s.mu.RLock()
	snap := snapshot{Version: snapshotVersion, PlanBounds: s.plan.Bounds()}
	for k, a := range s.hist {
		snap.Hist = append(snap.Hist, histSnap{Seg: k.seg, Route: k.route, Slot: k.slot, Sum: a.sum, N: a.n})
	}
	for k, ds := range s.durs {
		cp := make([]float64, len(ds))
		copy(cp, ds)
		snap.Durs = append(snap.Durs, durSnap{Seg: k.seg, Route: k.route, Slot: k.slot, Durations: cp})
	}
	for seg, ring := range s.recent {
		rs := ringSnap{Seg: seg}
		for _, tr := range ring {
			rs.Traversals = append(rs.Traversals, traversalSnap{Route: tr.RouteID, Exit: tr.Exit, Seconds: tr.Seconds})
		}
		snap.Recent = append(snap.Recent, rs)
	}
	for k, a := range s.hourly {
		snap.Hourly = append(snap.Hourly, hourSnap{Seg: k.seg, Hour: k.hour, Route: k.route, Sum: a.sum, N: a.n})
	}
	for seg, a := range s.allSeg {
		snap.AllSeg = append(snap.AllSeg, segSnap{Seg: seg, Sum: a.sum, N: a.n})
	}
	s.mu.RUnlock()

	sort.Slice(snap.Hist, func(i, j int) bool { return histLess(snap.Hist[i], snap.Hist[j]) })
	sort.Slice(snap.Durs, func(i, j int) bool {
		a, b := snap.Durs[i], snap.Durs[j]
		return histLess(histSnap{Seg: a.Seg, Route: a.Route, Slot: a.Slot},
			histSnap{Seg: b.Seg, Route: b.Route, Slot: b.Slot})
	})
	sort.Slice(snap.Recent, func(i, j int) bool { return snap.Recent[i].Seg < snap.Recent[j].Seg })
	sort.Slice(snap.Hourly, func(i, j int) bool {
		a, b := snap.Hourly[i], snap.Hourly[j]
		if a.Seg != b.Seg {
			return a.Seg < b.Seg
		}
		if a.Hour != b.Hour {
			return a.Hour < b.Hour
		}
		return a.Route < b.Route
	})
	sort.Slice(snap.AllSeg, func(i, j int) bool { return snap.AllSeg[i].Seg < snap.AllSeg[j].Seg })

	cw := &countingWriter{w: w}
	enc := json.NewEncoder(cw)
	if err := enc.Encode(snap); err != nil {
		return cw.n, fmt.Errorf("traveltime: encode snapshot: %w", err)
	}
	return cw.n, nil
}

func histLess(a, b histSnap) bool {
	if a.Seg != b.Seg {
		return a.Seg < b.Seg
	}
	if a.Route != b.Route {
		return a.Route < b.Route
	}
	return a.Slot < b.Slot
}

// ReadFrom replaces the store's contents with a snapshot previously written
// by WriteTo. The snapshot's slot plan must match the store's. It implements
// io.ReaderFrom.
func (s *Store) ReadFrom(r io.Reader) (int64, error) {
	cr := &countingReader{r: r}
	var snap snapshot
	if err := json.NewDecoder(cr).Decode(&snap); err != nil {
		return cr.n, fmt.Errorf("traveltime: decode snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return cr.n, fmt.Errorf("traveltime: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	if !equalInts(snap.PlanBounds, s.plan.Bounds()) {
		return cr.n, fmt.Errorf("traveltime: snapshot slot plan %v does not match store plan %v",
			snap.PlanBounds, s.plan.Bounds())
	}

	hist := make(map[histKey]*meanAcc, len(snap.Hist))
	for _, h := range snap.Hist {
		hist[histKey{seg: h.Seg, route: h.Route, slot: h.Slot}] = &meanAcc{sum: h.Sum, n: h.N}
	}
	durs := make(map[histKey][]float64, len(snap.Durs))
	for _, d := range snap.Durs {
		k := histKey{seg: d.Seg, route: d.Route, slot: d.Slot}
		if hist[k] == nil {
			return cr.n, fmt.Errorf("traveltime: snapshot has durations without a mean for segment %d route %q slot %d",
				d.Seg, d.Route, d.Slot)
		}
		cp := make([]float64, len(d.Durations))
		copy(cp, d.Durations)
		durs[k] = cp
	}
	recent := make(map[roadnet.SegmentID][]Traversal, len(snap.Recent))
	for _, rs := range snap.Recent {
		ring := make([]Traversal, 0, len(rs.Traversals))
		for _, tr := range rs.Traversals {
			ring = append(ring, Traversal{RouteID: tr.Route, Exit: tr.Exit, Seconds: tr.Seconds})
		}
		recent[rs.Seg] = ring
	}
	hourly := make(map[hourKey]*meanAcc, len(snap.Hourly))
	for _, h := range snap.Hourly {
		hourly[hourKey{seg: h.Seg, hour: h.Hour, route: h.Route}] = &meanAcc{sum: h.Sum, n: h.N}
	}
	allSeg := make(map[roadnet.SegmentID]*meanAcc, len(snap.AllSeg))
	for _, a := range snap.AllSeg {
		allSeg[a.Seg] = &meanAcc{sum: a.Sum, n: a.N}
	}

	s.mu.Lock()
	s.hist = hist
	s.durs = durs
	s.recent = recent
	s.hourly = hourly
	s.allSeg = allSeg
	s.mu.Unlock()
	return cr.n, nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
