package traveltime

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Persister makes a Store crash-safe. It owns a directory holding, per
// generation g:
//
//	snapshot-<g>.json  — an atomic full snapshot of the store (WriteTo)
//	wal-<g>.log        — the records ingested since that snapshot
//
// Every Record call appends a length+CRC frame to the current WAL before
// returning, fsync-batched every SyncEvery appends, so a crash (power cut,
// kill -9, OOM) loses at most the records since the last fsync. Snapshot
// rolls a new generation: the snapshot is written to a temp file in the
// same directory, fsynced and renamed into place, a fresh WAL is created,
// and only then are the previous generation's files removed — so at every
// instant the directory contains at least one complete recovery lineage.
//
// OpenPersister recovers: it loads the newest readable snapshot (falling
// back to older generations if the newest is unreadable), replays the
// matching WAL on top, and tolerates a truncated or corrupt WAL tail by
// truncating the log back to the last intact frame, counting what was
// discarded. Recovery is idempotent — opening the same directory twice in
// a row yields the same store state.
//
// Concurrency: Record may be called from many goroutines (the server's
// ingestion path); Snapshot, Sync and Stats may race with Record freely.
// The caller is responsible for not mutating the store behind the
// persister's back (use Record, not Store.Add, once the persister owns
// the store).
type Persister struct {
	dir   string
	store *Store
	cfg   PersistConfig

	mu        sync.Mutex
	gen       uint64
	wal       *os.File
	walSize   int64
	synced    int64 // WAL bytes known durable (offset at last fsync)
	pending   int   // appends since last fsync
	sinceSnap int   // appends since last snapshot
	closed    bool
	grouped   int // open BeginBatch groups; >0 suspends count-triggered fsyncs
	buf       []byte
	stats     PersistStats
	// syncHook, when non-nil, replaces the WAL fsync call. Test seam only:
	// forcing an fsync error from a real file is platform-dependent, and
	// the error-surfacing contract (WALSyncFailures, the final Sync error
	// reaching Close's caller) deserves a deterministic test.
	syncHook func() error
}

// PersistConfig tunes the persister. The zero value selects defaults.
type PersistConfig struct {
	// SyncEvery batches WAL fsyncs: the log is fsynced after every
	// SyncEvery appended records (1 = fsync each record). Default 64. A
	// crash loses at most SyncEvery-1 records beyond the last fsync.
	SyncEvery int
	// SnapshotEvery rolls a new snapshot generation automatically after
	// this many WAL appends. 0 disables auto-snapshots; callers snapshot
	// explicitly (e.g. on a timer) instead.
	SnapshotEvery int
	// OnOp, when set, receives the wall-clock duration of each durable-path
	// operation: WALOpAppend (one WAL frame write), WALOpFsync (one WAL
	// sync) and WALOpSnapshot (one full generation roll). It is called with
	// the persister's lock held, so it must be cheap and must not call back
	// into the persister — a histogram Observe is the intended use. Nil
	// disables timing entirely (no clock reads on the record path).
	OnOp func(op string, d time.Duration)
	// OnDurable, when set, is notified whenever the durable frontier
	// advances: after every successful fsync (with the current generation
	// and its fsynced WAL length) and after every snapshot rotation (with
	// the new generation and length 0). It is called with the persister's
	// lock held, so it must be cheap and non-blocking — a WAL shipper's
	// wake-up poke (a non-blocking channel send) is the intended use.
	OnDurable func(gen uint64, durable int64)
}

// Operation names passed to PersistConfig.OnOp.
const (
	WALOpAppend   = "append"
	WALOpFsync    = "fsync"
	WALOpSnapshot = "snapshot"
)

func (c PersistConfig) withDefaults() PersistConfig {
	if c.SyncEvery <= 0 {
		c.SyncEvery = 64
	}
	return c
}

// PersistStats counts persistence and recovery events. All counters are
// cumulative since OpenPersister; the recovery fields describe the open
// itself, so degraded starts (corrupt tails, missing snapshots) are
// observable through /v1/healthz rather than buried in logs.
type PersistStats struct {
	// WALAppends counts records appended to the WAL; WALSyncs counts the
	// fsyncs that made them durable.
	WALAppends uint64 `json:"walAppends"`
	WALSyncs   uint64 `json:"walSyncs"`
	// WALSyncFailures counts fsyncs that returned an error. Any non-zero
	// value means records believed persisted may not be durable; the error
	// itself is also surfaced to the Record/Sync/Close caller rather than
	// swallowed, so the server's exit path can fail loudly on it.
	WALSyncFailures uint64 `json:"walSyncFailures"`
	// Snapshots counts snapshot generations rolled since open.
	Snapshots uint64 `json:"snapshots"`
	// SnapshotLoaded reports whether recovery loaded a snapshot;
	// SnapshotsSkipped counts newer snapshot files that were unreadable
	// and fell through to an older generation.
	SnapshotLoaded   bool `json:"snapshotLoaded"`
	SnapshotsSkipped int  `json:"snapshotsSkipped"`
	// WALReplayed counts records replayed from the WAL at open;
	// WALRejected counts replayed frames the store refused (possible only
	// for logs not written through Record).
	WALReplayed int `json:"walReplayed"`
	WALRejected int `json:"walRejected"`
	// WALSkippedBytes is the length of the truncated/corrupt WAL tail
	// discarded at open (0 for a clean log); WALTailError describes it.
	WALSkippedBytes int64  `json:"walSkippedBytes"`
	WALTailError    string `json:"walTailError,omitempty"`
}

// OpenPersister opens (creating if needed) a persistence directory,
// recovers the store from it, and returns a persister appending to it. The
// store's prior contents are replaced by the recovered state (or left
// empty when the directory holds no history yet).
func OpenPersister(dir string, store *Store, cfg PersistConfig) (*Persister, error) {
	if store == nil {
		return nil, errors.New("traveltime: OpenPersister on nil store")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("traveltime: persist dir: %w", err)
	}
	p := &Persister{dir: dir, store: store, cfg: cfg.withDefaults()}
	if err := p.recover(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Persister) snapshotPath(gen uint64) string {
	return filepath.Join(p.dir, fmt.Sprintf("snapshot-%08d.json", gen))
}

func (p *Persister) walPath(gen uint64) string {
	return filepath.Join(p.dir, fmt.Sprintf("wal-%08d.log", gen))
}

// scanGenerations lists the snapshot and WAL generations present in dir.
func (p *Persister) scanGenerations() (snaps, wals []uint64, err error) {
	ents, err := os.ReadDir(p.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("traveltime: scan persist dir: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		var g uint64
		switch {
		case strings.HasPrefix(name, "snapshot-") && strings.HasSuffix(name, ".json"):
			if _, err := fmt.Sscanf(name, "snapshot-%08d.json", &g); err == nil {
				snaps = append(snaps, g)
			}
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			if _, err := fmt.Sscanf(name, "wal-%08d.log", &g); err == nil {
				wals = append(wals, g)
			}
		case strings.HasPrefix(name, "tmp-"):
			// A snapshot write that never reached its rename; harmless.
			_ = os.Remove(filepath.Join(p.dir, name))
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] })
	sort.Slice(wals, func(i, j int) bool { return wals[i] > wals[j] })
	return snaps, wals, nil
}

// recover loads the newest readable snapshot, replays its WAL, truncates a
// bad tail, and leaves the persister appending to that generation's log.
func (p *Persister) recover() error {
	snaps, wals, err := p.scanGenerations()
	if err != nil {
		return err
	}

	gen := uint64(0)
	loaded := false
	for _, g := range snaps {
		f, err := os.Open(p.snapshotPath(g))
		if err != nil {
			p.stats.SnapshotsSkipped++
			continue
		}
		_, err = p.store.ReadFrom(f)
		f.Close()
		if err != nil {
			// Unreadable snapshot (disk corruption, foreign schema): fall
			// back to the previous complete generation rather than losing
			// all history to one bad file.
			p.stats.SnapshotsSkipped++
			continue
		}
		gen, loaded = g, true
		break
	}
	if !loaded {
		if len(snaps) > 0 {
			return fmt.Errorf("traveltime: persist dir %s: none of %d snapshots is readable", p.dir, len(snaps))
		}
		// No snapshot ever written: the only possible log is generation 0.
		if len(wals) > 0 {
			gen = wals[len(wals)-1] // oldest: pre-first-snapshot log
		}
	}
	p.stats.SnapshotLoaded = loaded
	p.gen = gen

	wal, err := os.OpenFile(p.walPath(gen), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("traveltime: open WAL: %w", err)
	}
	applied, rejected, goodOffset, tailErr := ReplayWAL(wal, p.store.Add)
	p.stats.WALReplayed = applied
	p.stats.WALRejected = rejected
	if tailErr != nil {
		size, serr := wal.Seek(0, 2)
		if serr != nil {
			_ = wal.Close()
			return fmt.Errorf("traveltime: size WAL: %w", serr)
		}
		p.stats.WALSkippedBytes = size - goodOffset
		p.stats.WALTailError = tailErr.Error()
		// Discard the torn tail so subsequent appends extend the valid
		// prefix instead of burying frames behind garbage.
		if err := wal.Truncate(goodOffset); err != nil {
			_ = wal.Close()
			return fmt.Errorf("traveltime: truncate WAL tail: %w", err)
		}
		if err := wal.Sync(); err != nil {
			_ = wal.Close()
			return fmt.Errorf("traveltime: sync truncated WAL: %w", err)
		}
	}
	if _, err := wal.Seek(goodOffset, 0); err != nil {
		_ = wal.Close()
		return fmt.Errorf("traveltime: seek WAL: %w", err)
	}
	p.wal = wal
	p.walSize = goodOffset
	p.synced = goodOffset

	// Clean up generations superseded by the one we recovered (left behind
	// by a crash between snapshot rotation and cleanup).
	for _, g := range snaps {
		if g < gen {
			_ = os.Remove(p.snapshotPath(g))
		}
	}
	for _, g := range wals {
		if g < gen {
			_ = os.Remove(p.walPath(g))
		}
	}
	return nil
}

// Record applies rec to the store and appends it to the WAL, fsyncing when
// the batch is full. The store rejects the record first (non-positive
// duration, missing route): rejected records are never logged.
func (p *Persister) Record(rec Record) error {
	if err := p.store.Add(rec); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errors.New("traveltime: Record on closed persister")
	}
	buf, err := appendWALFrame(p.buf[:0], rec)
	if err != nil {
		return err
	}
	p.buf = buf
	var t0 time.Time
	if p.cfg.OnOp != nil {
		t0 = time.Now()
	}
	n, err := p.wal.Write(buf)
	p.walSize += int64(n)
	if err != nil {
		return fmt.Errorf("traveltime: append WAL: %w", err)
	}
	if p.cfg.OnOp != nil {
		p.cfg.OnOp(WALOpAppend, time.Since(t0))
	}
	p.stats.WALAppends++
	p.pending++
	if p.grouped == 0 && p.pending >= p.cfg.SyncEvery {
		if err := p.syncLocked(); err != nil {
			return err
		}
	}
	p.sinceSnap++
	if p.cfg.SnapshotEvery > 0 && p.sinceSnap >= p.cfg.SnapshotEvery {
		return p.snapshotLocked()
	}
	return nil
}

func (p *Persister) syncLocked() error {
	if p.pending == 0 && p.synced == p.walSize {
		return nil
	}
	var t0 time.Time
	if p.cfg.OnOp != nil {
		t0 = time.Now()
	}
	sync := p.wal.Sync
	if p.syncHook != nil {
		sync = p.syncHook
	}
	if err := sync(); err != nil {
		// The batch stays pending: the next Record/Sync/Close retries, and
		// the final attempt's error surfaces through Close to the server's
		// exit path instead of being absorbed into a "clean" shutdown.
		p.stats.WALSyncFailures++
		return fmt.Errorf("traveltime: sync WAL: %w", err)
	}
	if p.cfg.OnOp != nil {
		p.cfg.OnOp(WALOpFsync, time.Since(t0))
	}
	p.synced = p.walSize
	p.pending = 0
	p.stats.WALSyncs++
	if p.cfg.OnDurable != nil {
		p.cfg.OnDurable(p.gen, p.synced)
	}
	return nil
}

// BeginBatch opens a group-commit window: count-triggered WAL fsyncs
// (SyncEvery) are suspended while any window is open, so one batch of
// records costs one fsync instead of len(batch)/SyncEvery. Windows from
// concurrent batches overlap freely (the suspension nests). Records from
// outside any window are grouped too while one is open — they lose no
// durability, because their acks never claimed fsync in the first place
// (SyncEvery batching already made per-record durability best-effort);
// explicit Sync still works mid-window.
func (p *Persister) BeginBatch() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.grouped++
}

// EndBatch closes one group-commit window and fsyncs everything appended
// so far, reporting the fsync's error — so a caller that acknowledges its
// batch only after a nil EndBatch keeps the fsync-before-ack durability
// contract (the WAL shipper's OnDurable hook fires from the same fsync).
// Every EndBatch syncs, not just the outermost: with overlapping windows
// each batch's ack must itself be covered, and the later windows' syncs
// are cheap deltas. The amortization holds per batch — one fsync each.
func (p *Persister) EndBatch() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.grouped == 0 {
		return errors.New("traveltime: EndBatch without BeginBatch")
	}
	p.grouped--
	if p.closed {
		return nil
	}
	return p.syncLocked()
}

// Sync forces any batched WAL appends to durable storage.
func (p *Persister) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	return p.syncLocked()
}

// Snapshot rolls a new generation: writes an atomic snapshot of the store,
// switches to a fresh WAL and removes the superseded generation. After a
// snapshot the WAL is empty, so recovery cost stays proportional to the
// records since the last snapshot, not since server birth.
func (p *Persister) Snapshot() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errors.New("traveltime: Snapshot on closed persister")
	}
	return p.snapshotLocked()
}

func (p *Persister) snapshotLocked() error {
	var t0 time.Time
	if p.cfg.OnOp != nil {
		t0 = time.Now()
		defer func() { p.cfg.OnOp(WALOpSnapshot, time.Since(t0)) }()
	}
	next := p.gen + 1
	if err := writeSnapshotFile(p.store, p.snapshotPath(next)); err != nil {
		return err
	}
	wal, err := os.OpenFile(p.walPath(next), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("traveltime: create WAL: %w", err)
	}
	if err := syncDir(p.dir); err != nil {
		_ = wal.Close()
		return err
	}
	old := p.gen
	_ = p.wal.Close()
	p.wal = wal
	p.walSize, p.synced, p.pending = 0, 0, 0
	p.gen = next
	p.sinceSnap = 0
	p.stats.Snapshots++
	if p.cfg.OnDurable != nil {
		p.cfg.OnDurable(p.gen, 0)
	}
	// Only now is the old lineage redundant. Removal is best-effort; a
	// crash here leaves extra files that the next open cleans up.
	_ = os.Remove(p.snapshotPath(old))
	_ = os.Remove(p.walPath(old))
	return nil
}

// Close fsyncs and closes the WAL. It does not snapshot; callers wanting a
// compact restart call Snapshot first.
func (p *Persister) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	err := p.syncLocked()
	if cerr := p.wal.Close(); err == nil {
		err = cerr
	}
	p.closed = true
	return err
}

// Stats returns a copy of the cumulative persistence counters.
func (p *Persister) Stats() PersistStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Dir returns the persistence directory.
func (p *Persister) Dir() string { return p.dir }

// CrashState reports the durable on-disk state at this instant: the
// current generation's snapshot and WAL paths (the snapshot may not exist
// for generation 0) and the fsynced WAL prefix length. Everything beyond
// syncedWAL may still be in the page cache only — a kill -9 simulator
// (internal/loadtest) copies exactly snapshot + wal[:syncedWAL] to model
// the worst surviving state.
func (p *Persister) CrashState() (snapshot, wal string, syncedWAL int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snapshotPath(p.gen), p.walPath(p.gen), p.synced
}

// SaveSnapshotFile writes a snapshot of the store to path atomically: the
// JSON goes to a temp file in the same directory, is fsynced, and is
// renamed over path, so readers (and crashes) see either the old complete
// snapshot or the new complete snapshot, never a torn write.
func SaveSnapshotFile(store *Store, path string) error {
	if store == nil {
		return errors.New("traveltime: SaveSnapshotFile on nil store")
	}
	return writeSnapshotFile(store, path)
}

func writeSnapshotFile(store *Store, path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "tmp-snapshot-*")
	if err != nil {
		return fmt.Errorf("traveltime: create snapshot temp: %w", err)
	}
	tmp := f.Name()
	cleanup := func() { _ = f.Close(); _ = os.Remove(tmp) }
	if _, err := store.WriteTo(f); err != nil {
		cleanup()
		return err
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("traveltime: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("traveltime: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("traveltime: publish snapshot: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("traveltime: open dir for sync: %w", err)
	}
	// Directory handles carry no buffered data; once the checked Sync below
	// succeeds, Close is pure handle release.
	defer func() { _ = d.Close() }()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("traveltime: sync dir: %w", err)
	}
	return nil
}
