// ship.go is the persister's replication surface: the read-side hooks a
// WAL shipper (internal/cluster) uses to stream the durable lineage of one
// node to its followers, and the Replica type a follower uses to mirror
// that lineage on its own disk.
//
// The shipping unit is exactly the on-disk format: the current generation's
// snapshot (complete by rename) plus the fsynced prefix of its WAL. Nothing
// is ever shipped before it is durable on the leader — a follower can never
// hold bytes the leader would lose in a crash — and the follower fsyncs
// before acknowledging, so an acked offset is durable on both sides
// (ack-before-trim: the leader may only forget history its followers have
// acked). A promoted replica opens its mirrored directory through
// OpenPersister, so a tail torn by a mid-frame connection loss goes through
// the same truncate-to-last-intact-frame recovery a local crash does.
package traveltime

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

// ErrShipGenRotated is returned by ReadDurable when the requested
// generation is no longer current: a snapshot rolled the lineage, and the
// shipper must restart from the new generation's snapshot.
var ErrShipGenRotated = errors.New("traveltime: WAL generation rotated; resync from snapshot")

// ShipState reports the current generation and its durable (fsynced) WAL
// prefix length — the exact range ReadDurable may serve.
func (p *Persister) ShipState() (gen uint64, durable int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gen, p.synced
}

// ReadDurable reads up to len(buf) bytes of the generation gen's WAL
// starting at off, never beyond the fsynced prefix. It returns the number
// of bytes read (0 when off is at the durable frontier), ErrShipGenRotated
// when gen is no longer the current generation, and an error when off lies
// beyond the durable prefix (a protocol bug, not a transient state).
func (p *Persister) ReadDurable(gen uint64, off int64, buf []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, errors.New("traveltime: ReadDurable on closed persister")
	}
	if gen != p.gen {
		return 0, ErrShipGenRotated
	}
	if off > p.synced {
		return 0, fmt.Errorf("traveltime: ReadDurable offset %d beyond durable prefix %d", off, p.synced)
	}
	if off == p.synced || len(buf) == 0 {
		return 0, nil
	}
	if max := p.synced - off; int64(len(buf)) > max {
		buf = buf[:max]
	}
	// ReadAt is positional (pread): it does not disturb the file offset the
	// append path writes through.
	n, err := p.wal.ReadAt(buf, off)
	if err != nil {
		return n, fmt.Errorf("traveltime: read durable WAL: %w", err)
	}
	return n, nil
}

// SnapshotBytes returns the complete snapshot file of generation gen, or
// present=false when that generation has no snapshot (generation 0, before
// the first rotation). ErrShipGenRotated when gen is no longer current.
// Snapshots are published by rename, so an existing file is complete.
func (p *Persister) SnapshotBytes(gen uint64) (data []byte, present bool, err error) {
	p.mu.Lock()
	path := p.snapshotPath(gen)
	current := gen == p.gen
	p.mu.Unlock()
	if !current {
		return nil, false, ErrShipGenRotated
	}
	data, err = os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("traveltime: read snapshot for shipping: %w", err)
	}
	return data, true, nil
}

// A Replica mirrors one leader's persistence lineage into a local
// directory, using the leader's own file naming so a promotion is nothing
// but OpenPersister over the same directory. It is the follower half of
// WAL shipping: InstallSnapshot begins a fresh generation atomically,
// AppendWAL extends its log contiguously (fsync before every ack), and
// OpenReplica recovers after a follower restart by truncating a torn tail
// back to the last intact frame — the PR-2 recovery path, applied to
// shipped bytes.
//
// A Replica is not safe for concurrent use; the follower connection
// goroutine owns it exclusively.
type Replica struct {
	dir    string
	gen    uint64
	wal    *os.File // nil until the lineage exists
	walLen int64
	closed bool
}

// OpenReplica opens (creating if needed) a replica directory and recovers
// its state: the newest generation's WAL is scanned frame-by-frame and
// truncated back to its last intact frame, so a tail torn by a connection
// loss mid-frame disappears before the next append. The returned State is
// what the follower reports in its handshake; the leader resumes shipping
// from exactly there.
func OpenReplica(dir string) (*Replica, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("traveltime: replica dir: %w", err)
	}
	r := &Replica{dir: dir}
	scan := &Persister{dir: dir}
	snaps, wals, err := scan.scanGenerations()
	if err != nil {
		return nil, err
	}
	gen, ok := newestLineage(snaps, wals)
	if !ok {
		return r, nil // empty replica: the handshake asks for everything
	}
	wal, err := os.OpenFile(scan.walPath(gen), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("traveltime: open replica WAL: %w", err)
	}
	// Validate the shipped tail without applying: only frame integrity
	// matters here; the records are replayed into a store at promotion.
	_, _, goodOffset, tailErr := ReplayWAL(wal, func(Record) error { return nil })
	if tailErr != nil {
		if err := wal.Truncate(goodOffset); err != nil {
			_ = wal.Close()
			return nil, fmt.Errorf("traveltime: truncate replica tail: %w", err)
		}
		if err := wal.Sync(); err != nil {
			_ = wal.Close()
			return nil, fmt.Errorf("traveltime: sync truncated replica: %w", err)
		}
	}
	if _, err := wal.Seek(goodOffset, 0); err != nil {
		_ = wal.Close()
		return nil, fmt.Errorf("traveltime: seek replica WAL: %w", err)
	}
	r.gen = gen
	r.wal = wal
	r.walLen = goodOffset
	return r, nil
}

// newestLineage picks the highest generation that can recover: one with a
// snapshot, or the bare generation-0 log from before the first rotation.
// Both slices are sorted newest-first (scanGenerations).
func newestLineage(snaps, wals []uint64) (uint64, bool) {
	if len(snaps) > 0 {
		return snaps[0], true
	}
	if len(wals) > 0 {
		return wals[len(wals)-1], true
	}
	return 0, false
}

// State reports the replica's recovered generation and contiguous WAL
// length — the resume point for the shipping handshake.
func (r *Replica) State() (gen uint64, walLen int64) { return r.gen, r.walLen }

// HasLineage reports whether any lineage exists yet. A fresh replica and
// one mirroring bare generation 0 both report State() = (0, 0); only this
// distinguishes them, and a lineage-less replica cannot accept AppendWAL
// until the handshake installs one.
func (r *Replica) HasLineage() bool { return r.wal != nil }

// Dir returns the replica directory (the promotion target).
func (r *Replica) Dir() string { return r.dir }

// InstallSnapshot atomically begins generation gen with the given complete
// snapshot bytes: temp file + fsync + rename (so a crash mid-install leaves
// the previous lineage intact), then a fresh empty WAL for the generation,
// then removal of superseded generations. The replica's WAL length resets
// to zero.
func (r *Replica) InstallSnapshot(gen uint64, data []byte) error {
	if r.closed {
		return errors.New("traveltime: InstallSnapshot on closed replica")
	}
	scan := &Persister{dir: r.dir}
	f, err := os.CreateTemp(r.dir, "tmp-ship-*")
	if err != nil {
		return fmt.Errorf("traveltime: replica snapshot temp: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("traveltime: write replica snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("traveltime: sync replica snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("traveltime: close replica snapshot: %w", err)
	}
	if err := os.Rename(tmp, scan.snapshotPath(gen)); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("traveltime: publish replica snapshot: %w", err)
	}
	wal, err := os.OpenFile(scan.walPath(gen), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("traveltime: create replica WAL: %w", err)
	}
	if err := syncDir(r.dir); err != nil {
		_ = wal.Close()
		return err
	}
	if r.wal != nil {
		_ = r.wal.Close()
	}
	old := r.gen
	r.wal = wal
	r.gen = gen
	r.walLen = 0
	if old != gen {
		_ = os.Remove(scan.snapshotPath(old))
		_ = os.Remove(scan.walPath(old))
	}
	return nil
}

// BeginBare starts the bare generation-0 lineage (a leader that has never
// snapshotted ships no snapshot, only its WAL). No-op when the replica
// already has a lineage of that generation.
func (r *Replica) BeginBare(gen uint64) error {
	if r.closed {
		return errors.New("traveltime: BeginBare on closed replica")
	}
	if r.wal != nil && r.gen == gen {
		return nil
	}
	scan := &Persister{dir: r.dir}
	wal, err := os.OpenFile(scan.walPath(gen), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("traveltime: create replica WAL: %w", err)
	}
	if err := syncDir(r.dir); err != nil {
		_ = wal.Close()
		return err
	}
	if r.wal != nil {
		_ = r.wal.Close()
		_ = os.Remove(scan.snapshotPath(r.gen))
		_ = os.Remove(scan.walPath(r.gen))
	}
	r.wal = wal
	r.gen = gen
	r.walLen = 0
	return nil
}

// AppendWAL appends a shipped chunk at offset off of generation gen and
// fsyncs it — the returned nil is the follower's license to ack, so acked
// bytes are durable here. The chunk must extend the log contiguously; any
// gap or generation mismatch is a protocol error, and the caller recovers
// by reconnecting (the handshake re-resolves the resume point).
func (r *Replica) AppendWAL(gen uint64, off int64, data []byte) error {
	if r.closed {
		return errors.New("traveltime: AppendWAL on closed replica")
	}
	if r.wal == nil {
		return errors.New("traveltime: AppendWAL before a lineage exists")
	}
	if gen != r.gen {
		return fmt.Errorf("traveltime: AppendWAL generation %d, replica at %d", gen, r.gen)
	}
	if off != r.walLen {
		return fmt.Errorf("traveltime: AppendWAL offset %d, replica contiguous to %d", off, r.walLen)
	}
	n, err := r.wal.Write(data)
	r.walLen += int64(n)
	if err != nil {
		return fmt.Errorf("traveltime: append replica WAL: %w", err)
	}
	if err := r.wal.Sync(); err != nil {
		return fmt.Errorf("traveltime: sync replica WAL: %w", err)
	}
	return nil
}

// Close releases the replica's WAL handle. Shipped bytes are already
// durable (AppendWAL syncs before acking), so Close is pure handle
// release.
func (r *Replica) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.wal == nil {
		return nil
	}
	err := r.wal.Close()
	r.wal = nil
	return err
}

// ReplicaDirFor is the conventional replica location: root/<ownerID>. The
// owner ID is path-sanitised defensively; topology IDs are operator-chosen
// but a stray separator must not escape the root.
func ReplicaDirFor(root, owner string) string {
	safe := strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			return c
		}
		return '_'
	}, owner)
	return root + string(os.PathSeparator) + safe
}
