package traveltime

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestGroupCommitAmortizesFsyncs: inside a BeginBatch/EndBatch window the
// per-record SyncEvery trigger is suspended — one fsync at EndBatch makes
// the whole batch durable and advances the durable frontier exactly once.
func TestGroupCommitAmortizesFsyncs(t *testing.T) {
	dir := t.TempDir()
	var durable []int64
	cfg := PersistConfig{
		SyncEvery: 1, // every record would fsync without grouping
		OnDurable: func(gen uint64, d int64) { durable = append(durable, d) },
	}
	store := NewStore(PaperPlan())
	p, err := OpenPersister(dir, store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, p)

	p.BeginBatch()
	recordN(t, p, 0, 50)
	if s := p.Stats(); s.WALSyncs != 0 {
		t.Fatalf("WALSyncs = %d during batch, want 0", s.WALSyncs)
	}
	if _, _, synced := p.CrashState(); synced != 0 {
		t.Fatalf("durable frontier advanced to %d during batch", synced)
	}
	if len(durable) != 0 {
		t.Fatalf("OnDurable fired %d times during batch", len(durable))
	}
	if err := p.EndBatch(); err != nil {
		t.Fatalf("EndBatch: %v", err)
	}
	if s := p.Stats(); s.WALSyncs != 1 {
		t.Fatalf("WALSyncs = %d after EndBatch, want 1", s.WALSyncs)
	}
	_, _, synced := p.CrashState()
	if synced == 0 {
		t.Fatal("durable frontier did not advance at EndBatch")
	}
	if len(durable) != 1 || durable[0] != synced {
		t.Fatalf("OnDurable = %v, want one call at %d", durable, synced)
	}
}

// TestGroupCommitCrashSurvival: a kill -9 right after a nil EndBatch (the
// moment the server acks the batch) must lose nothing — the fsynced WAL
// prefix alone reconstructs every batched record.
func TestGroupCommitCrashSurvival(t *testing.T) {
	dir := t.TempDir()
	ref := NewStore(PaperPlan())
	_, p := openTestPersister(t, dir, PersistConfig{SyncEvery: 64})
	p.BeginBatch()
	for i := 0; i < 30; i++ {
		if err := p.Record(walRecord(i)); err != nil {
			t.Fatal(err)
		}
		if err := ref.Add(walRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.EndBatch(); err != nil {
		t.Fatal(err)
	}
	// Model the crash: only the fsynced prefix survives. No Close — a
	// closed persister would fsync again and mask a missing group commit.
	_, walPath, synced := p.CrashState()
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != synced {
		t.Fatalf("fsynced prefix %d != WAL size %d after EndBatch", synced, len(data))
	}
	crashDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(crashDir, filepath.Base(walPath)), data[:synced], 0o644); err != nil {
		t.Fatal(err)
	}
	recovered, p2 := openTestPersister(t, crashDir, PersistConfig{})
	defer mustClose(t, p2)
	if st := p2.Stats(); st.WALReplayed != 30 {
		t.Fatalf("WALReplayed = %d, want all 30 batched records", st.WALReplayed)
	}
	if err := Diff(ref, recovered, 1e-9); err != nil {
		t.Fatalf("recovered store diverged: %v", err)
	}
	_ = p // leaked on purpose: the "crashed" process never closes
}

// TestGroupCommitOverlap: overlapping windows (concurrent batches) each
// get their own covering fsync at EndBatch — a batch acked after its own
// EndBatch is durable even though another window is still open — while
// count-triggered syncs stay suspended throughout; an unmatched EndBatch
// is an error; explicit Sync still works mid-window.
func TestGroupCommitOverlap(t *testing.T) {
	dir := t.TempDir()
	_, p := openTestPersister(t, dir, PersistConfig{SyncEvery: 1})
	defer mustClose(t, p)

	p.BeginBatch() // batch A
	p.BeginBatch() // batch B, overlapping
	recordN(t, p, 0, 5)
	if s := p.Stats(); s.WALSyncs != 0 {
		t.Fatalf("count trigger ran during open windows (WALSyncs = %d)", s.WALSyncs)
	}
	if err := p.EndBatch(); err != nil { // A acks: must be covered now
		t.Fatal(err)
	}
	st := p.Stats()
	if st.WALSyncs != 1 {
		t.Fatalf("first EndBatch did not fsync (WALSyncs = %d)", st.WALSyncs)
	}
	if _, _, synced := p.CrashState(); synced == 0 {
		t.Fatal("batch A acked without a durable frontier")
	}
	// An explicit Sync is still honored mid-window (operator flush); with
	// nothing pending it is a no-op.
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	recordN(t, p, 5, 10)
	if s := p.Stats(); s.WALSyncs != 1 {
		t.Fatalf("count trigger ran while window B still open (WALSyncs = %d)", s.WALSyncs)
	}
	if err := p.EndBatch(); err != nil { // B acks
		t.Fatal(err)
	}
	if s := p.Stats(); s.WALSyncs != 2 {
		t.Fatalf("second EndBatch did not fsync (WALSyncs = %d)", s.WALSyncs)
	}
	if err := p.EndBatch(); err == nil {
		t.Fatal("unmatched EndBatch did not error")
	}
}

// TestGroupCommitSyncErrorSurfaces: an fsync failure at EndBatch reaches
// the caller (which must then NOT ack its batch), is counted, and leaves
// the appends pending so a later sync retries them.
func TestGroupCommitSyncErrorSurfaces(t *testing.T) {
	dir := t.TempDir()
	_, p := openTestPersister(t, dir, PersistConfig{SyncEvery: 1})
	defer mustClose(t, p)

	boom := errors.New("disk gone")
	p.syncHook = func() error { return boom }
	p.BeginBatch()
	recordN(t, p, 0, 8)
	if err := p.EndBatch(); !errors.Is(err, boom) {
		t.Fatalf("EndBatch = %v, want wrapped %v", err, boom)
	}
	if s := p.Stats(); s.WALSyncFailures != 1 || s.WALSyncs != 0 {
		t.Fatalf("stats after failed group commit: %+v", s)
	}
	if _, _, synced := p.CrashState(); synced != 0 {
		t.Fatalf("frontier advanced past a failed fsync: %d", synced)
	}
	// Disk recovers: the still-pending batch syncs on the next attempt.
	p.syncHook = nil
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, _, synced := p.CrashState(); synced == 0 {
		t.Fatal("retry after recovered disk did not advance the frontier")
	}
}
