package traveltime

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wilocator/internal/roadnet"
)

// mustClose closes a recovered persister at test end and surfaces the
// error: a failed final Close can hide a lost WAL flush.
func mustClose(t testing.TB, c interface{ Close() error }) {
	t.Helper()
	if err := c.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

var walT0 = time.Date(2016, 3, 7, 9, 0, 0, 0, time.UTC)

// walRecord builds the i-th of a deterministic record sequence spread over
// several segments, routes and durations.
func walRecord(i int) Record {
	enter := walT0.Add(time.Duration(i) * 45 * time.Second)
	return Record{
		Seg:     roadnet.SegmentID(i % 5),
		RouteID: []string{"r-9", "r-16"}[i%2],
		Enter:   enter,
		Exit:    enter.Add(time.Duration(20+i%7) * time.Second),
	}
}

func openTestPersister(t *testing.T, dir string, cfg PersistConfig) (*Store, *Persister) {
	t.Helper()
	store := NewStore(PaperPlan())
	p, err := OpenPersister(dir, store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return store, p
}

func recordN(t *testing.T, p *Persister, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		if err := p.Record(walRecord(i)); err != nil {
			t.Fatalf("Record(%d): %v", i, err)
		}
	}
}

// TestPersisterRoundTrip: records written through a persister come back
// intact — WAL-only, and with a snapshot in the lineage.
func TestPersisterRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ref := NewStore(PaperPlan())
	store, p := openTestPersister(t, dir, PersistConfig{SyncEvery: 1})
	for i := 0; i < 25; i++ {
		if err := p.Record(walRecord(i)); err != nil {
			t.Fatal(err)
		}
		if err := ref.Add(walRecord(i)); err != nil {
			t.Fatal(err)
		}
		if i == 10 {
			if err := p.Snapshot(); err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
		}
	}
	if err := Diff(ref, store, 1e-9); err != nil {
		t.Fatalf("live store diverged from reference: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	recovered, p2 := openTestPersister(t, dir, PersistConfig{})
	defer mustClose(t, p2)
	st := p2.Stats()
	if !st.SnapshotLoaded {
		t.Error("recovery did not load the snapshot")
	}
	if st.WALReplayed != 14 {
		t.Errorf("WALReplayed = %d, want 14 (records after the snapshot)", st.WALReplayed)
	}
	if st.WALSkippedBytes != 0 || st.WALTailError != "" {
		t.Errorf("clean log reported a bad tail: %+v", st)
	}
	if err := Diff(ref, recovered, 1e-9); err != nil {
		t.Fatalf("recovered store diverged: %v", err)
	}
}

// TestRecoveryTruncatedTail: a WAL whose final frame was torn by a crash
// recovers everything before the tear, counts the discarded bytes, and
// truncates the log so later appends extend the valid prefix.
func TestRecoveryTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	_, p := openTestPersister(t, dir, PersistConfig{SyncEvery: 1})
	recordN(t, p, 0, 10)
	_, walPath, _ := p.CrashState()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	recovered, p2 := openTestPersister(t, dir, PersistConfig{})
	st := p2.Stats()
	if st.WALReplayed != 9 {
		t.Errorf("WALReplayed = %d, want 9", st.WALReplayed)
	}
	if st.WALSkippedBytes <= 0 || st.WALTailError == "" {
		t.Errorf("truncated tail not reported: %+v", st)
	}
	if got := recovered.NumRecords(); got != 9 {
		t.Errorf("recovered %d records, want 9", got)
	}
	// The torn tail must be gone: appending and re-recovering yields the
	// 9 survivors plus the new records, with a clean tail.
	recordN(t, p2, 10, 13)
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
	again, p3 := openTestPersister(t, dir, PersistConfig{})
	defer mustClose(t, p3)
	if st := p3.Stats(); st.WALReplayed != 12 || st.WALSkippedBytes != 0 {
		t.Errorf("after truncate+append: %+v, want 12 replayed and a clean tail", st)
	}
	if got := again.NumRecords(); got != 12 {
		t.Errorf("final store has %d records, want 12", got)
	}
}

// TestRecoveryCorruptMidFrame: a bit flip mid-file fails that frame's CRC;
// recovery keeps the prefix and discards the corrupt frame AND everything
// after it (frame boundaries downstream of corruption cannot be trusted).
func TestRecoveryCorruptMidFrame(t *testing.T) {
	dir := t.TempDir()
	_, p := openTestPersister(t, dir, PersistConfig{SyncEvery: 1})
	recordN(t, p, 0, 10)
	_, walPath, _ := p.CrashState()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	recovered, p2 := openTestPersister(t, dir, PersistConfig{})
	defer mustClose(t, p2)
	st := p2.Stats()
	if st.WALReplayed >= 10 || st.WALSkippedBytes <= 0 {
		t.Errorf("corruption not detected: %+v", st)
	}
	if !strings.Contains(st.WALTailError, "CRC") && !strings.Contains(st.WALTailError, "length") {
		t.Errorf("tail error %q does not name the corruption", st.WALTailError)
	}
	if got := recovered.NumRecords(); got != st.WALReplayed {
		t.Errorf("store has %d records, stats claim %d", got, st.WALReplayed)
	}
}

// TestDoubleRecoveryIdempotent: recovering the same directory repeatedly —
// even one with a torn tail — always lands in the same state.
func TestDoubleRecoveryIdempotent(t *testing.T) {
	dir := t.TempDir()
	_, p := openTestPersister(t, dir, PersistConfig{SyncEvery: 1})
	recordN(t, p, 0, 12)
	if err := p.Snapshot(); err != nil {
		t.Fatal(err)
	}
	recordN(t, p, 12, 20)
	_, walPath, _ := p.CrashState()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail so recovery has real work to do.
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	first, p1 := openTestPersister(t, dir, PersistConfig{})
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}
	second, p2 := openTestPersister(t, dir, PersistConfig{})
	defer mustClose(t, p2)
	if err := Diff(first, second, 0); err != nil {
		t.Fatalf("double recovery diverged: %v", err)
	}
	if st := p2.Stats(); st.WALSkippedBytes != 0 {
		t.Errorf("second recovery still sees a bad tail: %+v — first recovery should have truncated it", st)
	}
}

// TestSnapshotRotationCleansOld: rolling snapshots keeps exactly one
// lineage on disk and recovery prefers the newest.
func TestSnapshotRotationCleansOld(t *testing.T) {
	dir := t.TempDir()
	_, p := openTestPersister(t, dir, PersistConfig{SyncEvery: 1})
	recordN(t, p, 0, 6)
	for i := 0; i < 3; i++ {
		if err := p.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("dir holds %v, want exactly one snapshot + one wal", names)
	}
	recovered, p2 := openTestPersister(t, dir, PersistConfig{})
	defer mustClose(t, p2)
	if got := recovered.NumRecords(); got != 6 {
		t.Errorf("recovered %d records, want 6", got)
	}
}

// TestAutoSnapshot: SnapshotEvery rolls generations by itself.
func TestAutoSnapshot(t *testing.T) {
	dir := t.TempDir()
	_, p := openTestPersister(t, dir, PersistConfig{SyncEvery: 1, SnapshotEvery: 5})
	recordN(t, p, 0, 17)
	st := p.Stats()
	if st.Snapshots != 3 {
		t.Errorf("Snapshots = %d, want 3 (17 records / every 5)", st.Snapshots)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, p2 := openTestPersister(t, dir, PersistConfig{})
	defer mustClose(t, p2)
	if got := recovered.NumRecords(); got != 17 {
		t.Errorf("recovered %d records, want 17", got)
	}
	if st := p2.Stats(); !st.SnapshotLoaded || st.WALReplayed != 2 {
		t.Errorf("recovery stats %+v, want snapshot + 2 WAL records", st)
	}
}

// TestSaveSnapshotFileAtomic: the -store save path replaces the target via
// rename — after a save the file is complete and loadable, and no temp
// residue remains even when an old snapshot existed.
func TestSaveSnapshotFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "history.json")
	if err := os.WriteFile(path, []byte("old and torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	store := NewStore(PaperPlan())
	for i := 0; i < 8; i++ {
		if err := store.Add(walRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := SaveSnapshotFile(store, path); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "history.json" {
		t.Fatalf("dir holds %v, want only history.json", ents)
	}
	loaded := NewStore(PaperPlan())
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := loaded.ReadFrom(f); err != nil {
		t.Fatalf("saved snapshot unreadable: %v", err)
	}
	if err := Diff(store, loaded, 0); err != nil {
		t.Fatalf("saved snapshot diverged: %v", err)
	}
}

// TestRecoveryFallsBackOverCorruptSnapshot: when the newest snapshot is
// unreadable, recovery falls back to the previous complete lineage instead
// of losing all history to one bad file.
func TestRecoveryFallsBackOverCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	_, p := openTestPersister(t, dir, PersistConfig{SyncEvery: 1})
	recordN(t, p, 0, 5)
	if err := p.Snapshot(); err != nil {
		t.Fatal(err)
	}
	snapPath, _, _ := p.CrashState()
	recordN(t, p, 5, 8)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash may interleave with snapshot rotation such that an older
	// lineage survives; fabricate that, then corrupt the newest snapshot.
	oldSnap := filepath.Join(dir, "snapshot-00000000.json")
	if err := SaveSnapshotFile(NewStore(PaperPlan()), oldSnap); err != nil {
		t.Fatal(err)
	}
	oldWAL := filepath.Join(dir, "wal-00000000.log")
	var buf []byte
	for i := 0; i < 4; i++ {
		var err error
		buf, err = appendWALFrame(buf, walRecord(i))
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(oldWAL, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapPath, []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}

	recovered, p2 := openTestPersister(t, dir, PersistConfig{})
	defer mustClose(t, p2)
	st := p2.Stats()
	if st.SnapshotsSkipped != 1 || !st.SnapshotLoaded {
		t.Errorf("recovery stats %+v, want 1 skipped snapshot and an older one loaded", st)
	}
	if got := recovered.NumRecords(); got != 4 {
		t.Errorf("recovered %d records, want 4 (old snapshot is empty, old WAL has 4)", got)
	}
}

// FuzzWALReplay throws arbitrary bytes at the WAL frame decoder. The
// contract: it never panics, never over-reports the valid prefix, and on a
// log that IS a valid frame sequence it recovers every record.
func FuzzWALReplay(f *testing.F) {
	var valid []byte
	for i := 0; i < 3; i++ {
		var err error
		valid, err = appendWALFrame(valid, walRecord(i))
		if err != nil {
			f.Fatal(err)
		}
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-2])           // torn final frame
	f.Add([]byte{})                       // empty log
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // absurd length
	f.Add(bytes.Repeat([]byte{0x00}, 64)) // zero length frames
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/2] ^= 0x40
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		applied := 0
		_, rejected, goodOffset, _ := ReplayWAL(bytes.NewReader(data), func(rec Record) error {
			applied++
			return nil
		})
		if goodOffset < 0 || goodOffset > int64(len(data)) {
			t.Fatalf("goodOffset %d outside [0, %d]", goodOffset, len(data))
		}
		if rejected != 0 {
			t.Fatalf("apply never fails here, yet %d rejected", rejected)
		}
		// Replaying only the valid prefix must reproduce exactly the same
		// records with a clean tail — the truncate-and-continue invariant
		// recovery relies on.
		applied2 := 0
		_, _, off2, tailErr := ReplayWAL(bytes.NewReader(data[:goodOffset]), func(Record) error {
			applied2++
			return nil
		})
		if tailErr != nil || off2 != goodOffset || applied2 != applied {
			t.Fatalf("valid prefix not self-consistent: applied %d→%d, offset %d→%d, tail %v",
				applied, applied2, goodOffset, off2, tailErr)
		}
	})
}

// walFrameBoundaries parses the byte offsets at which each WAL frame ends.
func walFrameBoundaries(t *testing.T, wal []byte) []int {
	t.Helper()
	var bounds []int
	off := 0
	for off < len(wal) {
		if off+8 > len(wal) {
			t.Fatalf("trailing %d bytes are not a frame header", len(wal)-off)
		}
		n := int(uint32(wal[off]) | uint32(wal[off+1])<<8 | uint32(wal[off+2])<<16 | uint32(wal[off+3])<<24)
		off += 8 + n
		if off > len(wal) {
			t.Fatalf("frame overruns the log")
		}
		bounds = append(bounds, off)
	}
	return bounds
}

// TestReplicaTornTailEveryByteOffset cuts a shipped WAL inside its final
// frame at EVERY byte offset — header bytes, CRC bytes, every payload
// byte — and requires OpenReplica to truncate each torn tail back to the
// last intact frame, promotion (OpenPersister over the replica dir) to
// replay exactly the intact records, and subsequent appends to extend the
// repaired log cleanly.
func TestReplicaTornTailEveryByteOffset(t *testing.T) {
	// Source lineage: a real persister's WAL, fsynced per record.
	srcDir := t.TempDir()
	_, src := openTestPersister(t, srcDir, PersistConfig{SyncEvery: 1})
	const n = 6
	recordN(t, src, 0, n)
	_, walPath, _ := src.CrashState()
	mustClose(t, src)
	wal, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewStore(PaperPlan())
	for i := 0; i < n-1; i++ {
		if err := ref.Add(walRecord(i)); err != nil {
			t.Fatal(err)
		}
	}

	bounds := walFrameBoundaries(t, wal)
	if len(bounds) != n {
		t.Fatalf("%d frames in source WAL, want %d", len(bounds), n)
	}
	lastIntact := bounds[len(bounds)-2]
	for cut := lastIntact; cut < len(wal); cut++ {
		dir := t.TempDir()
		rep, err := OpenReplica(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.BeginBare(0); err != nil {
			t.Fatal(err)
		}
		if err := rep.AppendWAL(0, 0, wal[:cut]); err != nil {
			t.Fatalf("cut %d: append: %v", cut, err)
		}
		if err := rep.Close(); err != nil {
			t.Fatal(err)
		}
		// Follower restart: recovery must find the torn tail and truncate.
		re, err := OpenReplica(dir)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if gen, wl := re.State(); gen != 0 || wl != int64(lastIntact) {
			t.Fatalf("cut %d: recovered state (%d, %d), want (0, %d)", cut, gen, wl, lastIntact)
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
		// Promotion: the standard recovery path over the repaired replica.
		store, p := openTestPersister(t, dir, PersistConfig{SyncEvery: 1})
		if st := p.Stats(); st.WALReplayed != n-1 {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, st.WALReplayed, n-1)
		}
		if err := Diff(ref, store, 1e-9); err != nil {
			t.Fatalf("cut %d: promoted store diverged: %v", cut, err)
		}
		// Ingest must resume on the truncated log.
		if err := p.Record(walRecord(n - 1)); err != nil {
			t.Fatalf("cut %d: resume append: %v", cut, err)
		}
		mustClose(t, p)
		full := NewStore(PaperPlan())
		p2, err := OpenPersister(dir, full, PersistConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if st := p2.Stats(); st.WALReplayed != n || st.WALTailError != "" {
			t.Fatalf("cut %d: after resume replayed %d (tail %q), want %d clean", cut, st.WALReplayed, st.WALTailError, n)
		}
		mustClose(t, p2)
	}
}

// TestSyncFailureSurfaced: a failing fsync must be counted, keep the batch
// pending (so the next attempt retries it), and — when the failure is
// final — surface through Close instead of dissolving into a "clean"
// shutdown.
func TestSyncFailureSurfaced(t *testing.T) {
	dir := t.TempDir()
	_, p := openTestPersister(t, dir, PersistConfig{SyncEvery: 100})
	boom := errors.New("disk on fire")
	failing := true
	p.syncHook = func() error {
		if failing {
			return boom
		}
		return p.wal.Sync()
	}
	recordN(t, p, 0, 5)

	if err := p.Sync(); !errors.Is(err, boom) {
		t.Fatalf("Sync with failing fsync = %v, want %v", err, boom)
	}
	if got := p.Stats().WALSyncFailures; got != 1 {
		t.Fatalf("WALSyncFailures = %d, want 1", got)
	}
	if got := p.Stats().WALSyncs; got != 0 {
		t.Fatalf("failed fsync counted as a success (WALSyncs = %d)", got)
	}

	// The batch stayed pending: once the disk recovers, a retry drains it
	// and the records are durable.
	failing = false
	if err := p.Sync(); err != nil {
		t.Fatalf("retry after recovery: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	store, p2 := openTestPersister(t, dir, PersistConfig{})
	defer mustClose(t, p2)
	if st := p2.Stats(); st.WALReplayed != 5 {
		t.Fatalf("replayed %d records after recovered sync, want 5", st.WALReplayed)
	}
	ref := NewStore(PaperPlan())
	for i := 0; i < 5; i++ {
		if err := ref.Add(walRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := Diff(ref, store, 1e-9); err != nil {
		t.Fatal(err)
	}
}

// TestSyncFailureSurfacedThroughClose: when the final flush-on-shutdown
// fsync fails, Close must return that error — it is the server exit path's
// only signal that acknowledged records may not be durable.
func TestSyncFailureSurfacedThroughClose(t *testing.T) {
	dir := t.TempDir()
	_, p := openTestPersister(t, dir, PersistConfig{SyncEvery: 100})
	boom := errors.New("disk gone")
	p.syncHook = func() error { return boom }
	recordN(t, p, 0, 3)
	if err := p.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close with pending batch and dead disk = %v, want %v", err, boom)
	}
	if got := p.Stats().WALSyncFailures; got == 0 {
		t.Fatal("final failed flush not counted in WALSyncFailures")
	}
}
