package traveltime

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
	"time"
)

var _ io.WriterTo = (*Store)(nil)
var _ io.ReaderFrom = (*Store)(nil)

func populatedStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore(PaperPlan())
	base := time.Date(2016, 3, 7, 0, 0, 0, 0, time.UTC)
	for d := 0; d < 3; d++ {
		for h := 6; h < 22; h++ {
			for _, route := range []string{"9", "14"} {
				enter := base.AddDate(0, 0, d).Add(time.Duration(h) * time.Hour)
				secs := 40.0 + float64(h%5)*7
				if err := s.Add(Record{
					Seg: 3, RouteID: route, Enter: enter,
					Exit: enter.Add(time.Duration(secs * float64(time.Second))),
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return s
}

func TestSnapshotRoundTrip(t *testing.T) {
	src := populatedStore(t)
	var buf bytes.Buffer
	n, err := src.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) || n == 0 {
		t.Fatalf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}

	dst := NewStore(PaperPlan())
	if _, err := dst.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	// Every statistic must survive the round trip exactly.
	if src.NumRecords() != dst.NumRecords() {
		t.Errorf("records: %d vs %d", src.NumRecords(), dst.NumRecords())
	}
	for slot := 0; slot < PaperPlan().NumSlots(); slot++ {
		for _, route := range []string{"9", "14"} {
			sm, sn := src.HistoricalMean(3, route, slot)
			dm, dn := dst.HistoricalMean(3, route, slot)
			if sn != dn || math.Abs(sm-dm) > 1e-12 {
				t.Errorf("slot %d route %s: (%v,%d) vs (%v,%d)", slot, route, sm, sn, dm, dn)
			}
		}
		sMean, sStd, sN := src.ResidualStats(3, slot)
		dMean, dStd, dN := dst.ResidualStats(3, slot)
		if sN != dN || math.Abs(sMean-dMean) > 1e-12 || math.Abs(sStd-dStd) > 1e-12 {
			t.Errorf("slot %d residuals differ", slot)
		}
	}
	srcSI, dstSI := src.SeasonalIndex(3), dst.SeasonalIndex(3)
	for h := range srcSI {
		if math.Abs(srcSI[h]-dstSI[h]) > 1e-12 {
			t.Errorf("seasonal index hour %d: %v vs %v", h, srcSI[h], dstSI[h])
		}
	}
	sr := src.Recent(3, time.Time{}, 0)
	dr := dst.Recent(3, time.Time{}, 0)
	if len(sr) != len(dr) {
		t.Fatalf("recent rings differ: %d vs %d", len(sr), len(dr))
	}
	for i := range sr {
		if sr[i] != dr[i] {
			t.Errorf("recent[%d]: %+v vs %+v", i, sr[i], dr[i])
		}
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	s := populatedStore(t)
	var a, b bytes.Buffer
	if _, err := s.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("snapshots of the same store differ")
	}
}

func TestReadFromRejectsBadInput(t *testing.T) {
	s := NewStore(PaperPlan())
	if _, err := s.ReadFrom(strings.NewReader("{broken")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := s.ReadFrom(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("future version accepted")
	}
	// Plan mismatch: snapshot from an hourly store into a paper-plan store.
	hourly := NewStore(HourlyPlan())
	enter := time.Date(2016, 3, 7, 9, 0, 0, 0, time.UTC)
	if err := hourly.Add(Record{Seg: 1, RouteID: "9", Enter: enter, Exit: enter.Add(30 * time.Second)}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := hourly.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadFrom(&buf); err == nil || !strings.Contains(err.Error(), "plan") {
		t.Errorf("plan mismatch accepted: %v", err)
	}
}

func TestReadFromReplacesExistingState(t *testing.T) {
	src := populatedStore(t)
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewStore(PaperPlan())
	// Pre-pollute dst with data on another segment; a load must replace it.
	enter := time.Date(2016, 3, 7, 9, 0, 0, 0, time.UTC)
	if err := dst.Add(Record{Seg: 77, RouteID: "x", Enter: enter, Exit: enter.Add(time.Minute)}); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if _, n := dst.SegmentMean(77); n != 0 {
		t.Error("pre-load data survived ReadFrom")
	}
	if dst.NumRecords() != src.NumRecords() {
		t.Errorf("records = %d, want %d", dst.NumRecords(), src.NumRecords())
	}
}

func TestStoreKeepsWorkingAfterLoad(t *testing.T) {
	src := populatedStore(t)
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewStore(PaperPlan())
	if _, err := dst.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	// New records merge into the restored aggregates.
	before, _ := dst.HistoricalMean(3, "9", 2)
	enter := time.Date(2016, 3, 10, 13, 0, 0, 0, time.UTC)
	if err := dst.Add(Record{Seg: 3, RouteID: "9", Enter: enter, Exit: enter.Add(500 * time.Second)}); err != nil {
		t.Fatal(err)
	}
	after, _ := dst.HistoricalMean(3, "9", 2)
	if after <= before {
		t.Errorf("mean did not move after post-load Add: %v -> %v", before, after)
	}
}

// FuzzReadFrom: arbitrary snapshot bytes never panic the loader, and any
// accepted snapshot re-serialises.
func FuzzReadFrom(f *testing.F) {
	valid := populatedFuzzStore()
	var buf bytes.Buffer
	if _, err := valid.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"version":1,"planBounds":[8,10,18,19]}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`garbage`))
	f.Add([]byte(`{"version":1,"planBounds":[8,10,18,19],"hist":[{"seg":-5,"route":"","slot":99,"sum":-1,"n":-3}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s := NewStore(PaperPlan())
		if _, err := s.ReadFrom(bytes.NewReader(data)); err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := s.WriteTo(&out); err != nil {
			t.Fatalf("accepted snapshot fails to serialise: %v", err)
		}
		// Queries must not panic on whatever state was loaded.
		s.NumRecords()
		s.SeasonalIndex(1)
		s.ResidualStats(1, 0)
		s.Recent(1, time.Time{}, 4)
	})
}

// populatedFuzzStore builds a small store without a *testing.T.
func populatedFuzzStore() *Store {
	s := NewStore(PaperPlan())
	enter := time.Date(2016, 3, 7, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		_ = s.Add(Record{Seg: 1, RouteID: "9", Enter: enter.Add(time.Duration(i) * time.Minute),
			Exit: enter.Add(time.Duration(i)*time.Minute + 40*time.Second)})
	}
	return s
}
