package traveltime

import (
	"math"
	"testing"
	"time"

	"wilocator/internal/roadnet"
)

func at(hour, min int) time.Time {
	return time.Date(2016, 3, 7, hour, min, 0, 0, time.UTC)
}

func rec(seg roadnet.SegmentID, route string, enter time.Time, secs float64) Record {
	return Record{Seg: seg, RouteID: route, Enter: enter, Exit: enter.Add(time.Duration(secs * float64(time.Second)))}
}

func TestSlotPlanValidation(t *testing.T) {
	if _, err := NewSlotPlan([]int{0}); err == nil {
		t.Error("boundary 0 accepted")
	}
	if _, err := NewSlotPlan([]int{24}); err == nil {
		t.Error("boundary 24 accepted")
	}
	if _, err := NewSlotPlan([]int{8, 8}); err == nil {
		t.Error("duplicate boundary accepted")
	}
	p, err := NewSlotPlan(nil)
	if err != nil || p.NumSlots() != 1 {
		t.Errorf("empty plan: %v slots, err %v", p.NumSlots(), err)
	}
}

func TestPaperPlanSlots(t *testing.T) {
	p := PaperPlan()
	if p.NumSlots() != 5 {
		t.Fatalf("paper plan has %d slots", p.NumSlots())
	}
	tests := []struct {
		h, want int
	}{
		{0, 0}, {7, 0}, {8, 1}, {9, 1}, {10, 2}, {17, 2}, {18, 3}, {19, 4}, {23, 4},
	}
	for _, tt := range tests {
		if got := p.SlotOf(at(tt.h, 30)); got != tt.want {
			t.Errorf("SlotOf(%02dh) = %d, want %d", tt.h, got, tt.want)
		}
	}
	if p.Label(1) != "08-10h" || p.Label(0) != "00-08h" || p.Label(4) != "19-24h" {
		t.Errorf("labels: %v %v %v", p.Label(0), p.Label(1), p.Label(4))
	}
	if p.String() == "" {
		t.Error("empty String()")
	}
}

func TestHourlyPlan(t *testing.T) {
	p := HourlyPlan()
	if p.NumSlots() != 24 {
		t.Fatalf("hourly plan has %d slots", p.NumSlots())
	}
	for h := 0; h < 24; h++ {
		if got := p.SlotOf(at(h, 15)); got != h {
			t.Errorf("SlotOf(%02dh) = %d", h, got)
		}
	}
}

func TestStoreAddValidation(t *testing.T) {
	s := NewStore(PaperPlan())
	if err := s.Add(rec(1, "9", at(9, 0), 0)); err == nil {
		t.Error("zero duration accepted")
	}
	if err := s.Add(Record{Seg: 1, Enter: at(9, 0), Exit: at(9, 1)}); err == nil {
		t.Error("missing route accepted")
	}
	if err := s.Add(rec(1, "9", at(9, 0), 30)); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	if s.NumRecords() != 1 {
		t.Errorf("NumRecords = %d", s.NumRecords())
	}
}

func TestHistoricalMeanPerSlot(t *testing.T) {
	s := NewStore(PaperPlan())
	// Rush-slot records for route 9 on segment 5.
	for i, secs := range []float64{50, 60, 70} {
		if err := s.Add(rec(5, "9", at(8, i*10), secs)); err != nil {
			t.Fatal(err)
		}
	}
	// Midday records — different slot.
	if err := s.Add(rec(5, "9", at(13, 0), 30)); err != nil {
		t.Fatal(err)
	}
	rushSlot := PaperPlan().SlotOf(at(8, 0))
	m, n := s.HistoricalMean(5, "9", rushSlot)
	if n != 3 || math.Abs(m-60) > 1e-9 {
		t.Errorf("rush mean = %v (n=%d), want 60 (3)", m, n)
	}
	middaySlot := PaperPlan().SlotOf(at(13, 0))
	m, n = s.HistoricalMean(5, "9", middaySlot)
	if n != 1 || m != 30 {
		t.Errorf("midday mean = %v (n=%d)", m, n)
	}
	if _, n := s.HistoricalMean(5, "14", rushSlot); n != 0 {
		t.Errorf("unseen route has %d samples", n)
	}
	if m, n := s.SegmentMean(5); n != 4 || math.Abs(m-52.5) > 1e-9 {
		t.Errorf("segment mean = %v (n=%d), want 52.5 (4)", m, n)
	}
	if _, n := s.SegmentMean(99); n != 0 {
		t.Error("unknown segment has samples")
	}
}

func TestRecentWindowAndLimit(t *testing.T) {
	s := NewStore(PaperPlan())
	for i := 0; i < 10; i++ {
		if err := s.Add(rec(7, "14", at(9, i), 40+float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// All traversals exit 40+i seconds after entering at minute i.
	got := s.Recent(7, at(9, 5), 0)
	if len(got) != 5 {
		t.Fatalf("Recent since 9:05 = %d traversals, want 5", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Exit.Before(got[i-1].Exit) {
			t.Fatal("Recent out of order")
		}
	}
	limited := s.Recent(7, at(9, 0), 3)
	if len(limited) != 3 {
		t.Fatalf("limited Recent = %d", len(limited))
	}
	// The limit keeps the most recent entries.
	if limited[2].Seconds != 49 {
		t.Errorf("last limited traversal = %v", limited[2])
	}
	if got := s.Recent(99, at(0, 0), 0); len(got) != 0 {
		t.Errorf("unknown segment Recent = %v", got)
	}
}

func TestRecentRingEviction(t *testing.T) {
	s := NewStore(PaperPlan())
	for i := 0; i < maxRecentPerSegment+10; i++ {
		if err := s.Add(rec(3, "9", at(6, 0).Add(time.Duration(i)*time.Minute), 30)); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Recent(3, time.Time{}, 0)
	if len(got) != maxRecentPerSegment {
		t.Errorf("ring holds %d, want %d", len(got), maxRecentPerSegment)
	}
}

func TestResidualStats(t *testing.T) {
	s := NewStore(PaperPlan())
	slot := PaperPlan().SlotOf(at(9, 0))
	// Route 9: durations 50, 70 (mean 60, residuals +10, -10).
	if err := s.Add(rec(2, "9", at(8, 0), 50)); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(rec(2, "9", at(8, 30), 70)); err != nil {
		t.Fatal(err)
	}
	// Route 14: durations 90, 110 (mean 100, residuals +10, -10).
	if err := s.Add(rec(2, "14", at(9, 0), 90)); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(rec(2, "14", at(9, 30), 110)); err != nil {
		t.Fatal(err)
	}
	mean, std, n := s.ResidualStats(2, slot)
	if n != 4 {
		t.Fatalf("n = %d", n)
	}
	if math.Abs(mean) > 1e-9 {
		t.Errorf("residual mean = %v, want 0", mean)
	}
	if math.Abs(std-10) > 1e-9 {
		t.Errorf("residual std = %v, want 10", std)
	}
	if _, _, n := s.ResidualStats(2, slot+1); n != 0 {
		t.Error("empty slot has residuals")
	}
}

func TestSeasonalIndexDetectsRush(t *testing.T) {
	s := NewStore(HourlyPlan())
	day := time.Date(2016, 3, 7, 0, 0, 0, 0, time.UTC)
	// Simulate 10 days: 60 s off-peak, 120 s during 8-9h and 18-19h.
	for d := 0; d < 10; d++ {
		base := day.AddDate(0, 0, d)
		for h := 6; h < 23; h++ {
			secs := 60.0
			if h == 8 || h == 9 || h == 18 {
				secs = 130
			}
			if err := s.Add(rec(4, "9", base.Add(time.Duration(h)*time.Hour), secs)); err != nil {
				t.Fatal(err)
			}
		}
	}
	si := s.SeasonalIndex(4)
	rush := RushHours(si, 0)
	want := map[int]bool{8: true, 9: true, 18: true}
	if len(rush) != 3 {
		t.Fatalf("rush hours = %v, want 8,9,18", rush)
	}
	for _, h := range rush {
		if !want[h] {
			t.Errorf("hour %d flagged as rush", h)
		}
	}
	// Hours with no data have index 0.
	if si[3] != 0 {
		t.Errorf("si[3] = %v, want 0 (no data)", si[3])
	}
	// Slot grouping reconstructs boundaries at the index jumps.
	plan, err := GroupSlots(si, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumSlots() < 4 {
		t.Errorf("grouped plan %v has too few slots", plan)
	}
	if s2 := s.SeasonalIndex(99); len(s2) != 24 || s2[8] != 0 {
		t.Error("unknown segment seasonal index wrong")
	}
}

func TestGroupSlotsValidation(t *testing.T) {
	if _, err := GroupSlots(make([]float64, 10), 0); err == nil {
		t.Error("short index accepted")
	}
}

func TestStoreConcurrency(t *testing.T) {
	s := NewStore(PaperPlan())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			_ = s.Add(rec(1, "9", at(8, 0).Add(time.Duration(i)*time.Second), 30))
		}
	}()
	for i := 0; i < 1000; i++ {
		s.HistoricalMean(1, "9", 1)
		s.Recent(1, at(8, 0), 4)
		s.SeasonalIndex(1)
		s.ResidualStats(1, 1)
	}
	<-done
	if s.NumRecords() != 1000 {
		t.Errorf("NumRecords = %d", s.NumRecords())
	}
}
