package traveltime

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"wilocator/internal/roadnet"
)

// Record is one observed traversal of a road segment by one bus. Enter and
// Exit are the (interpolated) boundary-crossing instants from the tracker.
type Record struct {
	Seg     roadnet.SegmentID `json:"seg"`
	RouteID string            `json:"routeId"`
	Enter   time.Time         `json:"enter"`
	Exit    time.Time         `json:"exit"`
}

// Duration returns the traversal time.
func (r Record) Duration() time.Duration { return r.Exit.Sub(r.Enter) }

// Traversal is a compact view of a recent segment traversal.
type Traversal struct {
	RouteID string
	Exit    time.Time
	Seconds float64
}

// maxDurationsPerKey bounds the per-(segment, route, slot) duration history
// retained for residual statistics.
const maxDurationsPerKey = 4096

// maxRecentPerSegment bounds the recent-traversal ring per segment.
const maxRecentPerSegment = 32

type histKey struct {
	seg   roadnet.SegmentID
	route string
	slot  int
}

type hourKey struct {
	seg   roadnet.SegmentID
	hour  int
	route string
}

type meanAcc struct {
	sum float64
	n   int
}

func (a *meanAcc) mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// Store accumulates travel-time records. It is safe for concurrent use: the
// server ingests crossings while queries run.
type Store struct {
	mu   sync.RWMutex
	plan SlotPlan

	hist   map[histKey]*meanAcc
	durs   map[histKey][]float64
	recent map[roadnet.SegmentID][]Traversal
	hourly map[hourKey]*meanAcc
	allSeg map[roadnet.SegmentID]*meanAcc
}

// NewStore creates a store slotting records by plan.
func NewStore(plan SlotPlan) *Store {
	return &Store{
		plan:   plan,
		hist:   make(map[histKey]*meanAcc),
		durs:   make(map[histKey][]float64),
		recent: make(map[roadnet.SegmentID][]Traversal),
		hourly: make(map[hourKey]*meanAcc),
		allSeg: make(map[roadnet.SegmentID]*meanAcc),
	}
}

// Plan returns the slot plan.
func (s *Store) Plan() SlotPlan { return s.plan }

// Add ingests one record. Records with non-positive duration are rejected.
func (s *Store) Add(rec Record) error {
	d := rec.Duration().Seconds()
	if d <= 0 {
		return fmt.Errorf("traveltime: non-positive duration %v on segment %d", rec.Duration(), rec.Seg)
	}
	if rec.RouteID == "" {
		return fmt.Errorf("traveltime: record without route")
	}
	slot := s.plan.SlotOf(rec.Enter)
	hk := histKey{seg: rec.Seg, route: rec.RouteID, slot: slot}
	hr := hourKey{seg: rec.Seg, hour: rec.Enter.Hour(), route: rec.RouteID}

	s.mu.Lock()
	defer s.mu.Unlock()

	acc := s.hist[hk]
	if acc == nil {
		acc = &meanAcc{}
		s.hist[hk] = acc
	}
	acc.sum += d
	acc.n++

	if ds := s.durs[hk]; len(ds) < maxDurationsPerKey {
		s.durs[hk] = append(ds, d)
	}

	ha := s.hourly[hr]
	if ha == nil {
		ha = &meanAcc{}
		s.hourly[hr] = ha
	}
	ha.sum += d
	ha.n++

	sa := s.allSeg[rec.Seg]
	if sa == nil {
		sa = &meanAcc{}
		s.allSeg[rec.Seg] = sa
	}
	sa.sum += d
	sa.n++

	ring := append(s.recent[rec.Seg], Traversal{RouteID: rec.RouteID, Exit: rec.Exit, Seconds: d})
	if len(ring) > maxRecentPerSegment {
		ring = ring[len(ring)-maxRecentPerSegment:]
	}
	s.recent[rec.Seg] = ring
	return nil
}

// HistoricalMean returns Th(i,j,l): the mean travel time (seconds) of route
// routeID on segment seg during slot, and the sample count.
func (s *Store) HistoricalMean(seg roadnet.SegmentID, routeID string, slot int) (float64, int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	acc := s.hist[histKey{seg: seg, route: routeID, slot: slot}]
	if acc == nil {
		return 0, 0
	}
	return acc.mean(), acc.n
}

// SegmentMean returns the all-route, all-slot mean travel time on seg — the
// fallback when a (route, slot) cell has no history yet.
func (s *Store) SegmentMean(seg roadnet.SegmentID) (float64, int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	acc := s.allSeg[seg]
	if acc == nil {
		return 0, 0
	}
	return acc.mean(), acc.n
}

// Recent returns up to limit traversals of seg that completed at or after
// since, most recent last. limit <= 0 means no limit.
func (s *Store) Recent(seg roadnet.SegmentID, since time.Time, limit int) []Traversal {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ring := s.recent[seg]
	i := sort.Search(len(ring), func(i int) bool { return !ring[i].Exit.Before(since) })
	out := ring[i:]
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	cp := make([]Traversal, len(out))
	copy(cp, out)
	return cp
}

// ResidualStats returns the mean and standard deviation of the historical
// residuals Th(i,j,l) - T(i,j,l) on segment seg in slot (the paper's
// environment term: positive residual = faster than usual, negative =
// slower), along with the sample count.
func (s *Store) ResidualStats(seg roadnet.SegmentID, slot int) (mean, std float64, n int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var sum, sumSq float64
	for hk, ds := range s.durs {
		if hk.seg != seg || hk.slot != slot {
			continue
		}
		acc := s.hist[hk]
		if acc == nil {
			// Defensive: a duration history without its mean (possible only
			// via a hand-edited snapshot) carries no usable residuals.
			continue
		}
		th := acc.mean()
		for _, d := range ds {
			r := th - d
			sum += r
			sumSq += r * r
			n++
		}
	}
	if n == 0 {
		return 0, 0, 0
	}
	mean = sum / float64(n)
	v := sumSq/float64(n) - mean*mean
	if v < 0 {
		v = 0
	}
	return mean, math.Sqrt(v), n
}

// SeasonalIndex returns SI(i,l) for segment seg over 24 hourly slots
// (Eq. 6): the ratio of the hour's mean travel time T̄(i,·,·,l) to the
// segment's overall mean T̄(i,·,·,·). Following the paper's formula, routes
// are weighted equally within an hour (not by trip count, so a
// high-frequency rapid line does not drown out the ordinary routes). Hours
// with no data get index 0.
func (s *Store) SeasonalIndex(seg roadnet.SegmentID) []float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]float64, 24)
	hours := make([]float64, 24)
	present := make([]bool, 24)
	var total float64
	totalN := 0
	for h := 0; h < 24; h++ {
		var sum float64
		n := 0
		for hk, a := range s.hourly {
			if hk.seg == seg && hk.hour == h {
				sum += a.mean()
				n++
			}
		}
		if n == 0 {
			continue
		}
		hours[h] = sum / float64(n)
		present[h] = true
		total += hours[h]
		totalN++
	}
	if totalN == 0 {
		return out
	}
	overall := total / float64(totalN)
	if overall == 0 {
		return out
	}
	for h := range hours {
		if present[h] {
			out[h] = hours[h] / overall
		}
	}
	return out
}

// NumRecords returns the total number of ingested records.
func (s *Store) NumRecords() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, a := range s.allSeg {
		n += a.n
	}
	return n
}
