package sensing

import (
	"testing"
	"time"

	"wilocator/internal/geo"
	"wilocator/internal/roadnet"
	"wilocator/internal/wifi"
	"wilocator/internal/xrand"
)

func deviceTestDeployment(t *testing.T) (*wifi.Deployment, geo.Point) {
	t.Helper()
	net, err := roadnet.BuildCity(roadnet.CitySpec{Form: roadnet.CityGrid, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	spec := wifi.DefaultDeploySpec()
	spec.Spacing = 150
	dep, err := wifi.Deploy(net, spec, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	return dep, net.Routes()[0].PointAt(200)
}

var deviceT0 = time.Date(2016, 3, 7, 9, 0, 0, 0, time.UTC)

func mustScan(t *testing.T, p *Phone, pos geo.Point, at time.Time) wifi.Scan {
	t.Helper()
	for i := 0; i < 50; i++ {
		if s, ok := p.ScanAt(pos, at.Add(time.Duration(i)*DefaultScanPeriod)); ok {
			return s
		}
	}
	t.Fatal("no scan survived report loss")
	return wifi.Scan{}
}

// TestDeviceModelDisabledMatchesBaseline pins that the zero-value device
// model is a no-op: a phone with explicit zero device fields produces exactly
// the scans of a plain config, so pre-existing golden streams stay valid.
func TestDeviceModelDisabledMatchesBaseline(t *testing.T) {
	dep, pos := deviceTestDeployment(t)
	plain, err := NewPhone("p", dep, PhoneConfig{ReportLoss: -1}, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	zeroed, err := NewPhone("p", dep, PhoneConfig{ReportLoss: -1, BiasSigma: 0, DropoutProb: 0, ClockSkewMax: 0}, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if zeroed.Bias() != 0 || zeroed.Skew() != 0 {
		t.Fatalf("zero config drew bias %d / skew %v", zeroed.Bias(), zeroed.Skew())
	}
	for i := 0; i < 5; i++ {
		at := deviceT0.Add(time.Duration(i) * DefaultScanPeriod)
		a, _ := plain.ScanAt(pos, at)
		b, _ := zeroed.ScanAt(pos, at)
		if !a.Time.Equal(b.Time) || len(a.Readings) != len(b.Readings) {
			t.Fatalf("scan %d differs between plain and zeroed device config", i)
		}
		for j := range a.Readings {
			if a.Readings[j] != b.Readings[j] {
				t.Fatalf("scan %d reading %d differs: %+v vs %+v", i, j, a.Readings[j], b.Readings[j])
			}
		}
	}
}

// TestDeviceBiasShiftsEveryReading asserts the per-phone bias is one constant
// applied to all readings, not fresh noise.
func TestDeviceBiasShiftsEveryReading(t *testing.T) {
	dep, pos := deviceTestDeployment(t)
	base, err := NewPhone("p", dep, PhoneConfig{ReportLoss: -1}, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	biased, err := NewPhone("p", dep, PhoneConfig{ReportLoss: -1, BiasSigma: 10}, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if biased.Bias() == 0 {
		t.Skip("seed 42 drew a zero-rounded bias; pick another seed")
	}
	a := mustScan(t, base, pos, deviceT0)
	b := mustScan(t, biased, pos, deviceT0)
	if len(a.Readings) != len(b.Readings) {
		t.Fatalf("bias changed reading count: %d vs %d", len(a.Readings), len(b.Readings))
	}
	for i := range a.Readings {
		got := b.Readings[i].RSSI - a.Readings[i].RSSI
		if got != biased.Bias() && b.Readings[i].RSSI != maxReportedRSSI && b.Readings[i].RSSI != minReportedRSSI {
			t.Fatalf("reading %d shifted by %d, want constant bias %d", i, got, biased.Bias())
		}
	}
}

// TestDeviceDropoutThinsScans asserts dropout removes readings (and with
// probability 1, all of them) without touching the timestamp.
func TestDeviceDropoutThinsScans(t *testing.T) {
	dep, pos := deviceTestDeployment(t)
	base, err := NewPhone("p", dep, PhoneConfig{ReportLoss: -1}, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	all, err := NewPhone("p", dep, PhoneConfig{ReportLoss: -1, DropoutProb: 1}, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	some, err := NewPhone("p", dep, PhoneConfig{ReportLoss: -1, DropoutProb: 0.5}, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	full := mustScan(t, base, pos, deviceT0)
	if len(full.Readings) == 0 {
		t.Fatal("baseline scan saw no APs; deployment too sparse for the test")
	}
	gone := mustScan(t, all, pos, deviceT0)
	if len(gone.Readings) != 0 {
		t.Fatalf("dropout=1 kept %d readings", len(gone.Readings))
	}
	if !gone.Time.Equal(full.Time) {
		t.Fatal("dropout changed the scan timestamp")
	}
	total, kept := 0, 0
	for i := 0; i < 20; i++ {
		at := deviceT0.Add(time.Duration(i) * DefaultScanPeriod)
		f, _ := base.ScanAt(pos, at)
		s, _ := some.ScanAt(pos, at)
		total += len(f.Readings)
		kept += len(s.Readings)
	}
	if kept == 0 || kept >= total {
		t.Fatalf("dropout=0.5 kept %d of %d readings, want a strict thinning", kept, total)
	}
}

// TestDeviceClockSkewShiftsTimestampsOnly asserts the skew moves the reported
// time by one per-phone constant while the RF content stays that of the true
// instant.
func TestDeviceClockSkewShiftsTimestampsOnly(t *testing.T) {
	dep, pos := deviceTestDeployment(t)
	base, err := NewPhone("p", dep, PhoneConfig{ReportLoss: -1}, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := NewPhone("p", dep, PhoneConfig{ReportLoss: -1, ClockSkewMax: 2 * time.Second}, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if skewed.Skew() == 0 {
		t.Skip("seed 42 drew zero skew; pick another seed")
	}
	if d := skewed.Skew(); d < -2*time.Second || d > 2*time.Second {
		t.Fatalf("skew %v outside ±2s", d)
	}
	for i := 0; i < 5; i++ {
		at := deviceT0.Add(time.Duration(i) * DefaultScanPeriod)
		a, _ := base.ScanAt(pos, at)
		b, _ := skewed.ScanAt(pos, at)
		if got, want := b.Time.Sub(a.Time), skewed.Skew(); got != want {
			t.Fatalf("scan %d timestamp shifted by %v, want %v", i, got, want)
		}
		if len(a.Readings) != len(b.Readings) {
			t.Fatalf("skew changed RF content at scan %d", i)
		}
		for j := range a.Readings {
			if a.Readings[j] != b.Readings[j] {
				t.Fatalf("skew changed reading %d of scan %d", j, i)
			}
		}
	}
}

// TestDeviceModelDeterministic pins that identical seeds yield identical
// device draws and scan streams.
func TestDeviceModelDeterministic(t *testing.T) {
	dep, pos := deviceTestDeployment(t)
	cfg := PhoneConfig{ReportLoss: -1, BiasSigma: 10, DropoutProb: 0.1, ClockSkewMax: 2 * time.Second}
	a, err := NewPhone("p", dep, cfg, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPhone("p", dep, cfg, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.Bias() != b.Bias() || a.Skew() != b.Skew() {
		t.Fatalf("device draws differ across identical seeds: bias %d/%d skew %v/%v",
			a.Bias(), b.Bias(), a.Skew(), b.Skew())
	}
	for i := 0; i < 10; i++ {
		at := deviceT0.Add(time.Duration(i) * DefaultScanPeriod)
		sa, _ := a.ScanAt(pos, at)
		sb, _ := b.ScanAt(pos, at)
		if len(sa.Readings) != len(sb.Readings) || !sa.Time.Equal(sb.Time) {
			t.Fatalf("scan %d differs across identical seeds", i)
		}
		for j := range sa.Readings {
			if sa.Readings[j] != sb.Readings[j] {
				t.Fatalf("scan %d reading %d differs across identical seeds", i, j)
			}
		}
	}
}
