package sensing

import (
	"math"
	"testing"
	"time"

	"wilocator/internal/geo"
	"wilocator/internal/mobility"
	"wilocator/internal/rf"
	"wilocator/internal/roadnet"
	"wilocator/internal/wifi"
	"wilocator/internal/xrand"
)

var t0 = time.Date(2016, 3, 7, 13, 0, 0, 0, time.UTC)

func campusWorld(t *testing.T, seed uint64) (*roadnet.Network, *wifi.Deployment) {
	t.Helper()
	net, err := roadnet.BuildCampus(600)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := wifi.Deploy(net, wifi.DefaultDeploySpec(), xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net, dep
}

func TestNewPhoneValidation(t *testing.T) {
	_, dep := campusWorld(t, 1)
	if _, err := NewPhone("", dep, PhoneConfig{}, xrand.New(1)); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := NewPhone("p", dep, PhoneConfig{}, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := NewPhone("p", nil, PhoneConfig{}, xrand.New(1)); err == nil {
		t.Error("nil deployment accepted")
	}
}

func TestPhoneScanAndLoss(t *testing.T) {
	_, dep := campusWorld(t, 2)
	p, err := NewPhone("p", dep, PhoneConfig{ReportLoss: 0.5}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	lost, kept := 0, 0
	for i := 0; i < 2000; i++ {
		if _, ok := p.ScanAt(geo.Pt(300, 0), t0); ok {
			kept++
		} else {
			lost++
		}
	}
	rate := float64(lost) / float64(lost+kept)
	if math.Abs(rate-0.5) > 0.05 {
		t.Errorf("loss rate = %v, want ~0.5", rate)
	}
	if p.ID() != "p" {
		t.Error("ID wrong")
	}
}

func TestFuseEmpty(t *testing.T) {
	if got := Fuse(nil); len(got.Readings) != 0 {
		t.Errorf("Fuse(nil) = %v", got)
	}
}

func TestFuseAverages(t *testing.T) {
	s1 := wifi.Scan{Time: t0, Readings: []wifi.Reading{
		{BSSID: "a", RSSI: -60}, {BSSID: "b", RSSI: -70},
	}}
	s2 := wifi.Scan{Time: t0.Add(time.Second), Readings: []wifi.Reading{
		{BSSID: "a", RSSI: -64}, {BSSID: "c", RSSI: -80},
	}}
	f := Fuse([]wifi.Scan{s1, s2})
	if !f.Time.Equal(t0.Add(time.Second)) {
		t.Errorf("fused time = %v", f.Time)
	}
	got := map[wifi.BSSID]int{}
	for _, r := range f.Readings {
		got[r.BSSID] = r.RSSI
	}
	if got["a"] != -62 || got["b"] != -70 || got["c"] != -80 {
		t.Errorf("fused readings = %v", got)
	}
	// Deterministic sorted order.
	for i := 1; i < len(f.Readings); i++ {
		if f.Readings[i-1].BSSID >= f.Readings[i].BSSID {
			t.Error("fused readings unsorted")
		}
	}
}

// TestFuseStabilisesRanks is the paper's crowd-sensing claim: the fused rank
// vector across several phones inverts far less often than a single phone's.
func TestFuseStabilisesRanks(t *testing.T) {
	_, dep := campusWorld(t, 4)
	pos := geo.Pt(300, 0)
	// True order at pos from expected RSS.
	model := rf.LogDistance{}
	type apRSS struct {
		b   wifi.BSSID
		rss float64
	}
	var expect []apRSS
	for _, ap := range dep.APs() {
		if rss, ok := dep.ExpectedRSS(model, ap.BSSID, pos); ok && rss > model.Floor() {
			expect = append(expect, apRSS{ap.BSSID, rss})
		}
	}
	if len(expect) < 3 {
		t.Fatal("scenario too sparse")
	}
	best, second := "", ""
	b1, b2 := math.Inf(-1), math.Inf(-1)
	for _, e := range expect {
		if e.rss > b1 {
			b2, second = b1, best
			b1, best = e.rss, string(e.b)
		} else if e.rss > b2 {
			b2, second = e.rss, string(e.b)
		}
	}

	invRate := func(nPhones int, seed uint64) float64 {
		phones, err := NewRiderPhones("bus", nPhones, dep, PhoneConfig{ReportLoss: -1}, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		inversions, trials := 0, 0
		for i := 0; i < 400; i++ {
			var scans []wifi.Scan
			for _, p := range phones {
				if s, ok := p.ScanAt(pos, t0); ok {
					scans = append(scans, s)
				}
			}
			f := Fuse(scans)
			order := f.RankOrder()
			if len(order) < 2 {
				continue
			}
			trials++
			if string(order[0]) != best && string(order[0]) == second {
				inversions++
			}
		}
		if trials == 0 {
			t.Fatal("no trials")
		}
		return float64(inversions) / float64(trials)
	}

	single := invRate(1, 5)
	fused := invRate(7, 5)
	if fused > single {
		t.Errorf("fusion did not stabilise ranks: single %v, fused %v", single, fused)
	}
}

func TestTripScannerValidation(t *testing.T) {
	net, dep := campusWorld(t, 6)
	route := net.Routes()[0]
	field := mobility.DefaultCongestion(1)
	trip, err := mobility.Drive(net, route.ID(), t0, mobility.DriveConfig{}, field, nil, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	phones, err := NewRiderPhones("bus", 2, dep, PhoneConfig{}, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTripScanner(nil, trip, phones, 0); err == nil {
		t.Error("nil route accepted")
	}
	if _, err := NewTripScanner(route, trip, nil, 0); err == nil {
		t.Error("no phones accepted")
	}
}

func TestTripScannerSamples(t *testing.T) {
	net, dep := campusWorld(t, 9)
	route := net.Routes()[0]
	field := mobility.DefaultCongestion(2)
	trip, err := mobility.Drive(net, route.ID(), t0, mobility.DriveConfig{}, field, nil, xrand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	phones, err := NewRiderPhones("bus", 3, dep, PhoneConfig{}, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	ts, err := NewTripScanner(route, trip, phones, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	samples := ts.Samples()
	if len(samples) < 5 {
		t.Fatalf("only %d samples", len(samples))
	}
	for i, s := range samples {
		if s.TrueArc < 0 || s.TrueArc > route.Length() {
			t.Fatalf("sample %d arc %v out of route", i, s.TrueArc)
		}
		if s.Phones < 1 || s.Phones > 3 {
			t.Fatalf("sample %d fused %d phones", i, s.Phones)
		}
		if i > 0 {
			if !samples[i-1].Time.Before(s.Time) {
				t.Fatal("samples out of order")
			}
			if s.TrueArc < samples[i-1].TrueArc {
				t.Fatal("ground truth regressed")
			}
		}
		if len(s.Scan.Readings) == 0 {
			t.Fatalf("sample %d has empty fused scan", i)
		}
	}
}

func TestNewRiderPhonesValidation(t *testing.T) {
	_, dep := campusWorld(t, 12)
	if _, err := NewRiderPhones("b", 0, dep, PhoneConfig{}, xrand.New(1)); err == nil {
		t.Error("zero phones accepted")
	}
	phones, err := NewRiderPhones("b", 3, dep, PhoneConfig{}, xrand.New(1))
	if err != nil || len(phones) != 3 {
		t.Fatalf("phones = %v, err = %v", phones, err)
	}
	if phones[0].ID() == phones[1].ID() {
		t.Error("duplicate phone ids")
	}
}
