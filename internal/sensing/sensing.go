// Package sensing simulates WiLocator's crowd-sensing front end: the COTS
// smartphones of the driver and riders that periodically scan surrounding
// WiFi and report it to the back-end server (Section V-A).
//
// Two paper mechanisms live here:
//
//   - the 10-second scan period used in the evaluation, and
//   - multi-device fusion: "the average RSS rank from an AP sensed by
//     multiple devices remains relatively stable" — averaging the RSS of
//     each AP across the phones on one bus shrinks the per-reading
//     shadowing noise by sqrt(#phones) and therefore stabilises the rank
//     vector the SVD lookup consumes.
//
// Route identification (Section V-A.1) is modelled as a labelled report: the
// driver's phone knows its route, and riders are associated with the bus by
// proximity, so every report carries the bus and route IDs. (The paper's
// voice-recognition front end is out of scope; see DESIGN.md.)
package sensing

import (
	"fmt"
	"math"
	"sort"
	"time"

	"wilocator/internal/geo"
	"wilocator/internal/mobility"
	"wilocator/internal/rf"
	"wilocator/internal/roadnet"
	"wilocator/internal/wifi"
	"wilocator/internal/xrand"
)

// DefaultScanPeriod is the WiFi scan period used in the paper's experiments.
const DefaultScanPeriod = 10 * time.Second

// PhoneConfig tunes one phone. The zero value selects defaults.
type PhoneConfig struct {
	// ReportLoss is the probability a completed scan never reaches the
	// server (radio gap, app backgrounded). Default 0.02; negative disables.
	ReportLoss float64
	// Noise parameterises the phone's receiver.
	Noise rf.Noise
	// Model is the propagation model of the simulated world.
	Model rf.LogDistance

	// The remaining fields model device heterogeneity (the paper notes
	// per-device RSS offsets of up to ±10 dB across COTS phones). All
	// default to 0 = disabled, and a disabled field consumes no randomness,
	// so existing seeded streams are bit-identical with the zero value.

	// BiasSigma is the standard deviation, in dB, of a per-phone constant
	// RSS offset (antenna gain, chipset calibration) drawn once at
	// construction and applied to every reading.
	BiasSigma float64
	// DropoutProb is the per-reading probability that a detected AP is
	// missing from the reported scan (driver-level scan truncation).
	DropoutProb float64
	// ClockSkewMax bounds a per-phone constant clock offset, drawn
	// uniformly in [-ClockSkewMax, ClockSkewMax] and applied to reported
	// scan timestamps only — the radio still samples the world at the true
	// instant, but the report claims the phone's (skewed) time.
	ClockSkewMax time.Duration
}

func (c PhoneConfig) reportLoss() float64 {
	switch {
	case c.ReportLoss < 0:
		return 0
	case c.ReportLoss == 0:
		return 0.02
	default:
		return c.ReportLoss
	}
}

// Reported RSS values are clamped to the API's plausibility bounds so a
// biased device still produces valid reports (matching api.MinValidRSSI and
// api.MaxValidRSSI without importing the wire package).
const (
	minReportedRSSI = -120
	maxReportedRSSI = 30
)

// Phone is one rider's (or the driver's) smartphone.
type Phone struct {
	id     string
	sensor *wifi.Sensor
	cfg    PhoneConfig
	rng    *xrand.Rand
	drop   *xrand.Rand
	// bias is the device's constant RSS offset in dB, rounded to the
	// integer RSSI grid; skew is its constant clock offset.
	bias int
	skew time.Duration
}

// NewPhone creates a phone observing the given deployment.
func NewPhone(id string, dep *wifi.Deployment, cfg PhoneConfig, rng *xrand.Rand) (*Phone, error) {
	if id == "" {
		return nil, fmt.Errorf("sensing: empty phone id")
	}
	if rng == nil {
		return nil, fmt.Errorf("sensing: nil rng")
	}
	rx, err := rf.NewReceiver(cfg.Model, cfg.Noise, rng.Split("rx"))
	if err != nil {
		return nil, err
	}
	sensor, err := wifi.NewSensor(dep, rx)
	if err != nil {
		return nil, err
	}
	p := &Phone{id: id, sensor: sensor, cfg: cfg, rng: rng.Split("loss"), drop: rng.Split("dropout")}
	// Split is non-consuming, so disabled device-model fields leave the
	// rx/loss streams (and therefore all pre-existing goldens) untouched.
	if cfg.BiasSigma > 0 {
		p.bias = int(math.Round(rng.Split("bias").Norm(0, cfg.BiasSigma)))
	}
	if cfg.ClockSkewMax > 0 {
		max := float64(cfg.ClockSkewMax)
		p.skew = time.Duration(rng.Split("skew").Range(-max, max))
	}
	return p, nil
}

// ID returns the phone identifier.
func (p *Phone) ID() string { return p.id }

// Bias returns the device's constant RSS offset in dB.
func (p *Phone) Bias() int { return p.bias }

// Skew returns the device's constant clock offset.
func (p *Phone) Skew() time.Duration { return p.skew }

// ScanAt performs one scan at position pos and time at. ok is false when the
// report is lost before reaching the server. The device model is applied on
// the way out: readings may drop out, RSS carries the per-phone bias, and
// the reported timestamp carries the per-phone clock skew.
func (p *Phone) ScanAt(pos geo.Point, at time.Time) (scan wifi.Scan, ok bool) {
	s := p.sensor.ScanAt(pos, at)
	if p.cfg.DropoutProb > 0 {
		kept := make([]wifi.Reading, 0, len(s.Readings))
		for _, r := range s.Readings {
			if p.drop.Bool(p.cfg.DropoutProb) {
				continue
			}
			kept = append(kept, r)
		}
		s.Readings = kept
	}
	if p.bias != 0 {
		for i := range s.Readings {
			v := s.Readings[i].RSSI + p.bias
			if v < minReportedRSSI {
				v = minReportedRSSI
			}
			if v > maxReportedRSSI {
				v = maxReportedRSSI
			}
			s.Readings[i].RSSI = v
		}
	}
	if p.skew != 0 {
		s.Time = s.Time.Add(p.skew)
	}
	if p.rng.Bool(p.cfg.reportLoss()) {
		return wifi.Scan{}, false
	}
	return s, true
}

// Report is one phone's upload to the server: the scanned WiFi information
// plus the bus/route association established at boarding.
type Report struct {
	BusID   string    `json:"busId"`
	RouteID string    `json:"routeId"`
	PhoneID string    `json:"phoneId"`
	Scan    wifi.Scan `json:"scan"`
}

// Fuse merges the scans collected by the phones of one bus during one scan
// cycle into a single scan whose per-AP RSS is the mean of the observations.
// APs seen by at least one phone are kept; the fused time is the latest scan
// time. Fusing n concordant scans reduces the effective shadowing sigma by
// sqrt(n), which is what stabilises the rank vector.
func Fuse(scans []wifi.Scan) wifi.Scan {
	var out wifi.Scan
	if len(scans) == 0 {
		return out
	}
	type agg struct {
		sum float64
		n   int
	}
	acc := make(map[wifi.BSSID]*agg)
	for _, s := range scans {
		if s.Time.After(out.Time) {
			out.Time = s.Time
		}
		for _, r := range s.Readings {
			a := acc[r.BSSID]
			if a == nil {
				a = &agg{}
				acc[r.BSSID] = a
			}
			a.sum += float64(r.RSSI)
			a.n++
		}
	}
	out.Readings = make([]wifi.Reading, 0, len(acc))
	for b, a := range acc {
		out.Readings = append(out.Readings, wifi.Reading{
			BSSID: b,
			RSSI:  int(math.Round(a.sum / float64(a.n))),
		})
	}
	// Deterministic order for reproducibility.
	sort.Slice(out.Readings, func(i, j int) bool {
		return out.Readings[i].BSSID < out.Readings[j].BSSID
	})
	return out
}

// Sample is one fused scan cycle of a simulated trip, paired with the
// ground-truth position for evaluation.
type Sample struct {
	Time    time.Time
	TrueArc float64
	Scan    wifi.Scan
	// Phones is the number of reports fused into Scan.
	Phones int
}

// TripScanner replays a ground-truth trip with a group of rider phones and
// produces the fused scan stream the server would see.
type TripScanner struct {
	route  *roadnet.Route
	trip   *mobility.Trip
	phones []*Phone
	period time.Duration
}

// NewTripScanner creates a scanner for trip on route with the given phones.
// period <= 0 selects DefaultScanPeriod.
func NewTripScanner(route *roadnet.Route, trip *mobility.Trip, phones []*Phone, period time.Duration) (*TripScanner, error) {
	if route == nil || trip == nil {
		return nil, fmt.Errorf("sensing: nil route or trip")
	}
	if trip.RouteID() != route.ID() {
		return nil, fmt.Errorf("sensing: trip route %q != route %q", trip.RouteID(), route.ID())
	}
	if len(phones) == 0 {
		return nil, fmt.Errorf("sensing: no phones")
	}
	if period <= 0 {
		period = DefaultScanPeriod
	}
	return &TripScanner{route: route, trip: trip, phones: phones, period: period}, nil
}

// Samples runs the whole trip and returns one fused sample per scan cycle.
// Cycles in which every phone lost its report are skipped.
func (ts *TripScanner) Samples() []Sample {
	var out []Sample
	for at := ts.trip.Start(); !ts.trip.Done(at); at = at.Add(ts.period) {
		arc := ts.trip.ArcAt(at)
		pos := ts.route.PointAt(arc)
		var scans []wifi.Scan
		for _, p := range ts.phones {
			if s, ok := p.ScanAt(pos, at); ok {
				scans = append(scans, s)
			}
		}
		if len(scans) == 0 {
			continue
		}
		out = append(out, Sample{
			Time:    at,
			TrueArc: arc,
			Scan:    Fuse(scans),
			Phones:  len(scans),
		})
	}
	return out
}

// NewRiderPhones is a convenience constructing n phones for one bus, each
// with an independent randomness stream split from rng.
func NewRiderPhones(busID string, n int, dep *wifi.Deployment, cfg PhoneConfig, rng *xrand.Rand) ([]*Phone, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sensing: need at least one phone, got %d", n)
	}
	phones := make([]*Phone, 0, n)
	for i := 0; i < n; i++ {
		p, err := NewPhone(fmt.Sprintf("%s-phone-%d", busID, i), dep, cfg, rng.SplitN(busID, i))
		if err != nil {
			return nil, err
		}
		phones = append(phones, p)
	}
	return phones, nil
}
