// Package sensing simulates WiLocator's crowd-sensing front end: the COTS
// smartphones of the driver and riders that periodically scan surrounding
// WiFi and report it to the back-end server (Section V-A).
//
// Two paper mechanisms live here:
//
//   - the 10-second scan period used in the evaluation, and
//   - multi-device fusion: "the average RSS rank from an AP sensed by
//     multiple devices remains relatively stable" — averaging the RSS of
//     each AP across the phones on one bus shrinks the per-reading
//     shadowing noise by sqrt(#phones) and therefore stabilises the rank
//     vector the SVD lookup consumes.
//
// Route identification (Section V-A.1) is modelled as a labelled report: the
// driver's phone knows its route, and riders are associated with the bus by
// proximity, so every report carries the bus and route IDs. (The paper's
// voice-recognition front end is out of scope; see DESIGN.md.)
package sensing

import (
	"fmt"
	"math"
	"sort"
	"time"

	"wilocator/internal/geo"
	"wilocator/internal/mobility"
	"wilocator/internal/rf"
	"wilocator/internal/roadnet"
	"wilocator/internal/wifi"
	"wilocator/internal/xrand"
)

// DefaultScanPeriod is the WiFi scan period used in the paper's experiments.
const DefaultScanPeriod = 10 * time.Second

// PhoneConfig tunes one phone. The zero value selects defaults.
type PhoneConfig struct {
	// ReportLoss is the probability a completed scan never reaches the
	// server (radio gap, app backgrounded). Default 0.02; negative disables.
	ReportLoss float64
	// Noise parameterises the phone's receiver.
	Noise rf.Noise
	// Model is the propagation model of the simulated world.
	Model rf.LogDistance
}

func (c PhoneConfig) reportLoss() float64 {
	switch {
	case c.ReportLoss < 0:
		return 0
	case c.ReportLoss == 0:
		return 0.02
	default:
		return c.ReportLoss
	}
}

// Phone is one rider's (or the driver's) smartphone.
type Phone struct {
	id     string
	sensor *wifi.Sensor
	cfg    PhoneConfig
	rng    *xrand.Rand
}

// NewPhone creates a phone observing the given deployment.
func NewPhone(id string, dep *wifi.Deployment, cfg PhoneConfig, rng *xrand.Rand) (*Phone, error) {
	if id == "" {
		return nil, fmt.Errorf("sensing: empty phone id")
	}
	if rng == nil {
		return nil, fmt.Errorf("sensing: nil rng")
	}
	rx, err := rf.NewReceiver(cfg.Model, cfg.Noise, rng.Split("rx"))
	if err != nil {
		return nil, err
	}
	sensor, err := wifi.NewSensor(dep, rx)
	if err != nil {
		return nil, err
	}
	return &Phone{id: id, sensor: sensor, cfg: cfg, rng: rng.Split("loss")}, nil
}

// ID returns the phone identifier.
func (p *Phone) ID() string { return p.id }

// ScanAt performs one scan at position pos and time at. ok is false when the
// report is lost before reaching the server.
func (p *Phone) ScanAt(pos geo.Point, at time.Time) (scan wifi.Scan, ok bool) {
	s := p.sensor.ScanAt(pos, at)
	if p.rng.Bool(p.cfg.reportLoss()) {
		return wifi.Scan{}, false
	}
	return s, true
}

// Report is one phone's upload to the server: the scanned WiFi information
// plus the bus/route association established at boarding.
type Report struct {
	BusID   string    `json:"busId"`
	RouteID string    `json:"routeId"`
	PhoneID string    `json:"phoneId"`
	Scan    wifi.Scan `json:"scan"`
}

// Fuse merges the scans collected by the phones of one bus during one scan
// cycle into a single scan whose per-AP RSS is the mean of the observations.
// APs seen by at least one phone are kept; the fused time is the latest scan
// time. Fusing n concordant scans reduces the effective shadowing sigma by
// sqrt(n), which is what stabilises the rank vector.
func Fuse(scans []wifi.Scan) wifi.Scan {
	var out wifi.Scan
	if len(scans) == 0 {
		return out
	}
	type agg struct {
		sum float64
		n   int
	}
	acc := make(map[wifi.BSSID]*agg)
	for _, s := range scans {
		if s.Time.After(out.Time) {
			out.Time = s.Time
		}
		for _, r := range s.Readings {
			a := acc[r.BSSID]
			if a == nil {
				a = &agg{}
				acc[r.BSSID] = a
			}
			a.sum += float64(r.RSSI)
			a.n++
		}
	}
	out.Readings = make([]wifi.Reading, 0, len(acc))
	for b, a := range acc {
		out.Readings = append(out.Readings, wifi.Reading{
			BSSID: b,
			RSSI:  int(math.Round(a.sum / float64(a.n))),
		})
	}
	// Deterministic order for reproducibility.
	sort.Slice(out.Readings, func(i, j int) bool {
		return out.Readings[i].BSSID < out.Readings[j].BSSID
	})
	return out
}

// Sample is one fused scan cycle of a simulated trip, paired with the
// ground-truth position for evaluation.
type Sample struct {
	Time    time.Time
	TrueArc float64
	Scan    wifi.Scan
	// Phones is the number of reports fused into Scan.
	Phones int
}

// TripScanner replays a ground-truth trip with a group of rider phones and
// produces the fused scan stream the server would see.
type TripScanner struct {
	route  *roadnet.Route
	trip   *mobility.Trip
	phones []*Phone
	period time.Duration
}

// NewTripScanner creates a scanner for trip on route with the given phones.
// period <= 0 selects DefaultScanPeriod.
func NewTripScanner(route *roadnet.Route, trip *mobility.Trip, phones []*Phone, period time.Duration) (*TripScanner, error) {
	if route == nil || trip == nil {
		return nil, fmt.Errorf("sensing: nil route or trip")
	}
	if trip.RouteID() != route.ID() {
		return nil, fmt.Errorf("sensing: trip route %q != route %q", trip.RouteID(), route.ID())
	}
	if len(phones) == 0 {
		return nil, fmt.Errorf("sensing: no phones")
	}
	if period <= 0 {
		period = DefaultScanPeriod
	}
	return &TripScanner{route: route, trip: trip, phones: phones, period: period}, nil
}

// Samples runs the whole trip and returns one fused sample per scan cycle.
// Cycles in which every phone lost its report are skipped.
func (ts *TripScanner) Samples() []Sample {
	var out []Sample
	for at := ts.trip.Start(); !ts.trip.Done(at); at = at.Add(ts.period) {
		arc := ts.trip.ArcAt(at)
		pos := ts.route.PointAt(arc)
		var scans []wifi.Scan
		for _, p := range ts.phones {
			if s, ok := p.ScanAt(pos, at); ok {
				scans = append(scans, s)
			}
		}
		if len(scans) == 0 {
			continue
		}
		out = append(out, Sample{
			Time:    at,
			TrueArc: arc,
			Scan:    Fuse(scans),
			Phones:  len(scans),
		})
	}
	return out
}

// NewRiderPhones is a convenience constructing n phones for one bus, each
// with an independent randomness stream split from rng.
func NewRiderPhones(busID string, n int, dep *wifi.Deployment, cfg PhoneConfig, rng *xrand.Rand) ([]*Phone, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sensing: need at least one phone, got %d", n)
	}
	phones := make([]*Phone, 0, n)
	for i := 0; i < n; i++ {
		p, err := NewPhone(fmt.Sprintf("%s-phone-%d", busID, i), dep, cfg, rng.SplitN(busID, i))
		if err != nil {
			return nil, err
		}
		phones = append(phones, p)
	}
	return phones, nil
}
