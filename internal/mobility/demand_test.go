package mobility

import (
	"testing"
	"time"
)

func countInHour(deps []time.Duration, hour int) int {
	n := 0
	for _, d := range deps {
		if int(d/time.Hour) == hour {
			n++
		}
	}
	return n
}

func TestDemandDeparturesRushPeaks(t *testing.T) {
	deps, err := DemandDepartures(30*time.Minute, 6, 23, RushDemand())
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) == 0 {
		t.Fatal("no departures")
	}
	for i := 1; i < len(deps); i++ {
		if deps[i] <= deps[i-1] {
			t.Fatalf("departures not strictly increasing at %d: %v then %v", i, deps[i-1], deps[i])
		}
	}
	rush := countInHour(deps, MorningRushStart)
	midday := countInHour(deps, 13)
	if rush <= midday {
		t.Fatalf("rush hour got %d departures, midday %d; want a morning peak", rush, midday)
	}
	if night := countInHour(deps, 2); night != 0 {
		t.Fatalf("overnight hour has %d departures, want 0", night)
	}
}

func TestDemandDeparturesFlatIsUniform(t *testing.T) {
	deps, err := DemandDepartures(20*time.Minute, 6, 23, FlatDemand())
	if err != nil {
		t.Fatal(err)
	}
	for h := 7; h < 22; h++ {
		if got := countInHour(deps, h); got != 3 {
			t.Fatalf("hour %d has %d departures, want exactly 3 at a flat 20 min headway", h, got)
		}
	}
}

func TestDemandDeparturesClampsHeadway(t *testing.T) {
	var spike DemandProfile
	spike[9] = 1000 // would be a 36 ms headway unclamped
	deps, err := DemandDepartures(10*time.Hour, 9, 10, spike)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(deps), 30; got != want {
		t.Fatalf("got %d departures in the spiked hour, want %d (2 min clamp)", got, want)
	}
}

func TestDemandDeparturesWindowErrors(t *testing.T) {
	if _, err := DemandDepartures(0, 6, 23, FlatDemand()); err == nil {
		t.Error("zero base headway did not error")
	}
	if _, err := DemandDepartures(time.Minute, 10, 10, FlatDemand()); err == nil {
		t.Error("empty window did not error")
	}
	if _, err := DemandDepartures(time.Minute, -1, 5, FlatDemand()); err == nil {
		t.Error("negative start hour did not error")
	}
}

func TestDemandProfileIsZero(t *testing.T) {
	var zero DemandProfile
	if !zero.IsZero() {
		t.Error("zero profile not detected")
	}
	if FlatDemand().IsZero() {
		t.Error("flat profile reported zero")
	}
}
