package mobility

import (
	"math"
	"testing"
	"time"

	"wilocator/internal/roadnet"
	"wilocator/internal/xrand"
)

var (
	monday  = time.Date(2016, 3, 7, 0, 0, 0, 0, time.UTC) // a Monday
	rush    = time.Date(2016, 3, 7, 8, 30, 0, 0, time.UTC)
	midday  = time.Date(2016, 3, 7, 13, 0, 0, 0, time.UTC)
	night   = time.Date(2016, 3, 7, 22, 0, 0, 0, time.UTC)
	weekend = time.Date(2016, 3, 5, 8, 30, 0, 0, time.UTC) // Saturday rush hour
)

func TestSlotBase(t *testing.T) {
	f := DefaultCongestion(1)
	if got := f.SlotBase(rush); got != 3.0 {
		t.Errorf("rush base = %v, want 3.0", got)
	}
	if got := f.SlotBase(midday); got != 1.25 {
		t.Errorf("midday base = %v, want 1.25", got)
	}
	if got := f.SlotBase(night); got != 1.0 {
		t.Errorf("night base = %v, want 1.0", got)
	}
	if got := f.SlotBase(weekend); got != 1.05 {
		t.Errorf("weekend base = %v, want 1.05", got)
	}
	pm := time.Date(2016, 3, 7, 18, 30, 0, 0, time.UTC)
	if got := f.SlotBase(pm); got != 3.0 {
		t.Errorf("afternoon rush base = %v, want 3.0", got)
	}
}

func TestFactorProperties(t *testing.T) {
	f := DefaultCongestion(7)
	// Deterministic.
	if f.Factor(3, rush) != f.Factor(3, rush) {
		t.Error("Factor not deterministic")
	}
	// Never below free flow.
	for i := 0; i < 200; i++ {
		at := monday.Add(time.Duration(i) * 7 * time.Minute)
		if v := f.Factor(roadnet.SegmentID(i%5), at); v < 1 {
			t.Fatalf("factor %v < 1", v)
		}
	}
	// Different segments decorrelate.
	same := true
	for i := 0; i < 10; i++ {
		at := midday.Add(time.Duration(i) * 33 * time.Minute)
		if math.Abs(f.Factor(1, at)-f.Factor(2, at)) > 1e-9 {
			same = false
		}
	}
	if same {
		t.Error("factors identical across segments")
	}
}

// TestFactorTemporalCorrelation is the property the paper's predictor needs:
// conditions a few minutes apart are far more similar than conditions an
// hour apart.
func TestFactorTemporalCorrelation(t *testing.T) {
	f := DefaultCongestion(11)
	var nearDiff, farDiff float64
	n := 0
	for i := 0; i < 200; i++ {
		base := midday.Add(time.Duration(i) * 3 * time.Minute)
		v0 := f.Factor(1, base)
		nearDiff += math.Abs(f.Factor(1, base.Add(2*time.Minute)) - v0)
		farDiff += math.Abs(f.Factor(1, base.Add(77*time.Minute)) - v0)
		n++
	}
	if nearDiff/float64(n) >= farDiff/float64(n) {
		t.Errorf("no temporal correlation: near %.4f, far %.4f", nearDiff/float64(n), farDiff/float64(n))
	}
}

func TestFactorSigmaDisabled(t *testing.T) {
	f := &CongestionField{Seed: 1, Sigma: -1, DaySigma: -1}
	if got := f.Factor(1, midday); got != 1.25 {
		t.Errorf("noise-free factor = %v, want slot base 1.25", got)
	}
}

func TestIncidentActiveAt(t *testing.T) {
	in := Incident{Start: rush, End: rush.Add(time.Hour)}
	if in.ActiveAt(rush.Add(-time.Second)) {
		t.Error("active before start")
	}
	if !in.ActiveAt(rush) || !in.ActiveAt(rush.Add(30*time.Minute)) {
		t.Error("inactive during window")
	}
	if in.ActiveAt(rush.Add(time.Hour)) {
		t.Error("active at end")
	}
}

func vancouverNet(t *testing.T) *roadnet.Network {
	t.Helper()
	net, err := roadnet.BuildVancouver(roadnet.DefaultVancouverSpec())
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestDriveValidation(t *testing.T) {
	net := vancouverNet(t)
	f := DefaultCongestion(1)
	rng := xrand.New(1)
	if _, err := Drive(net, "nope", midday, DriveConfig{}, f, nil, rng); err == nil {
		t.Error("unknown route accepted")
	}
	if _, err := Drive(net, roadnet.Route9, midday, DriveConfig{}, nil, nil, rng); err == nil {
		t.Error("nil field accepted")
	}
	if _, err := Drive(net, roadnet.Route9, midday, DriveConfig{}, f, nil, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestDriveBasicKinematics(t *testing.T) {
	net := vancouverNet(t)
	f := DefaultCongestion(2)
	trip, err := Drive(net, roadnet.Route9, midday, DriveConfig{}, f, nil, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	route, _ := net.Route(roadnet.Route9)
	if trip.RouteID() != roadnet.Route9 || !trip.Start().Equal(midday) {
		t.Error("trip metadata wrong")
	}
	// 16.3 km with 65 stops: plausible duration between 30 and 150 minutes.
	d := trip.Duration()
	if d < 30*time.Minute || d > 150*time.Minute {
		t.Errorf("trip duration = %v", d)
	}
	// Arc is monotone non-decreasing and spans the route.
	prev := -1.0
	for at := midday; !trip.Done(at); at = at.Add(30 * time.Second) {
		arc := trip.ArcAt(at)
		if arc < prev {
			t.Fatalf("arc regressed: %v -> %v", prev, arc)
		}
		prev = arc
	}
	if got := trip.ArcAt(trip.End()); math.Abs(got-route.Length()) > 1e-6 {
		t.Errorf("final arc = %v, want %v", got, route.Length())
	}
	if got := trip.ArcAt(midday.Add(-time.Hour)); got != 0 {
		t.Errorf("pre-start arc = %v", got)
	}
}

func TestDriveRushSlower(t *testing.T) {
	net := vancouverNet(t)
	f := &CongestionField{Seed: 3, Sigma: -1, DaySigma: -1} // deterministic slot profile only
	cfg := DriveConfig{LightRedProb: 1e-12, DwellSigma: 1e-9}
	nightTrip, err := Drive(net, roadnet.Route14, night, cfg, f, nil, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	rushTrip, err := Drive(net, roadnet.Route14, rush, cfg, f, nil, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if rushTrip.Duration() <= nightTrip.Duration() {
		t.Errorf("rush trip (%v) not slower than night trip (%v)",
			rushTrip.Duration(), nightTrip.Duration())
	}
}

func TestDriveRapidFaster(t *testing.T) {
	net := vancouverNet(t)
	f := &CongestionField{Seed: 5, Sigma: -1, DaySigma: -1}
	cfg := DriveConfig{LightRedProb: 1e-12}
	rapid, err := Drive(net, roadnet.RouteRapid, night, cfg, f, nil, xrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	ordinary, err := Drive(net, roadnet.Route9, night, cfg, f, nil, xrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	// Normalise by length: compare mean speeds.
	rapidRoute, _ := net.Route(roadnet.RouteRapid)
	ordRoute, _ := net.Route(roadnet.Route9)
	vRapid := rapidRoute.Length() / rapid.Duration().Seconds()
	vOrd := ordRoute.Length() / ordinary.Duration().Seconds()
	if vRapid <= vOrd {
		t.Errorf("rapid mean speed %.2f <= ordinary %.2f", vRapid, vOrd)
	}
}

func TestDriveIncidentSlowsTrip(t *testing.T) {
	net := vancouverNet(t)
	route, _ := net.Route(roadnet.Route9)
	// Pick a mid-route segment.
	segID := route.Segments()[route.NumSegments()/2]
	seg, _ := net.Graph.Segment(segID)
	f := &CongestionField{Seed: 7, Sigma: -1, DaySigma: -1}
	cfg := DriveConfig{LightRedProb: 1e-12, DwellSigma: 1e-9, DriverSigma: 1e-9}
	clean, err := Drive(net, roadnet.Route9, night, cfg, f, nil, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	in := Incident{
		Seg:        segID,
		Start:      night,
		End:        night.Add(4 * time.Hour),
		SlowFactor: 6,
		ArcStart:   0,
		ArcEnd:     seg.Length(),
	}
	blocked, err := Drive(net, roadnet.Route9, night, cfg, f, []Incident{in}, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	extra := blocked.Duration() - clean.Duration()
	if extra < 30*time.Second {
		t.Errorf("incident added only %v to the trip", extra)
	}
}

func TestTimeAtArcInvertsArcAt(t *testing.T) {
	net := vancouverNet(t)
	f := DefaultCongestion(9)
	trip, err := Drive(net, roadnet.RouteRapid, midday, DriveConfig{}, f, nil, xrand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	route, _ := net.Route(roadnet.RouteRapid)
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		arc := route.Length() * frac
		at := trip.TimeAtArc(arc)
		back := trip.ArcAt(at)
		if math.Abs(back-arc) > 0.5 {
			t.Errorf("ArcAt(TimeAtArc(%v)) = %v", arc, back)
		}
	}
	if !trip.TimeAtArc(-5).Equal(trip.Start()) {
		t.Error("negative arc time wrong")
	}
	if !trip.TimeAtArc(1e12).Equal(trip.End()) {
		t.Error("beyond-end arc time wrong")
	}
}

func TestTimetable(t *testing.T) {
	net := vancouverNet(t)
	rapid, _ := net.Route(roadnet.RouteRapid)
	ord, _ := net.Route(roadnet.Route9)
	tts, err := Timetable(rapid, monday, TimetableSpec{})
	if err != nil {
		t.Fatal(err)
	}
	tto, err := Timetable(ord, monday, TimetableSpec{})
	if err != nil {
		t.Fatal(err)
	}
	// 17 h of service: rapid every 6 min = 170, ordinary every 10 min = 102.
	if len(tts) != 170 {
		t.Errorf("rapid departures = %d, want 170", len(tts))
	}
	if len(tto) != 102 {
		t.Errorf("ordinary departures = %d, want 102", len(tto))
	}
	if h := tts[0].Hour(); h != 6 {
		t.Errorf("first departure at hour %d", h)
	}
	if _, err := Timetable(nil, monday, TimetableSpec{}); err == nil {
		t.Error("nil route accepted")
	}
	if _, err := Timetable(rapid, monday, TimetableSpec{ServiceStartHour: 9, ServiceEndHour: 9}); err == nil {
		t.Error("empty window accepted")
	}
}
