package mobility

import (
	"fmt"
	"sort"
	"time"

	"wilocator/internal/roadnet"
	"wilocator/internal/xrand"
)

// DriveConfig tunes how buses are driven. The zero value selects defaults.
type DriveConfig struct {
	// OrdinarySpeedFrac and RapidSpeedFrac are the fractions of the segment
	// speed limit at which each class cruises in free flow. Defaults 0.75
	// and 0.95 — the paper notes a rapid line "usually runs faster than
	// ordinary buses" on the same road.
	OrdinarySpeedFrac float64
	RapidSpeedFrac    float64
	// DwellMean and DwellSigma parameterise per-stop dwell in seconds.
	// Defaults 18 and 8.
	DwellMean, DwellSigma float64
	// LightRedProb is the probability of catching a red at a signalled
	// intersection; LightMaxWait bounds the uniform wait. Defaults 0.4 and
	// 45 s.
	LightRedProb float64
	LightMaxWait float64
	// DriverSigma is the log-scale spread of the per-trip driver speed
	// factor (route-dependent component of Eq. 3). Default 0.05.
	DriverSigma float64
	// RapidCongestionSensitivity scales how much of the congestion slowdown
	// a rapid line experiences (dedicated lanes and queue jumps — the
	// paper's observation that the Rapid Line "suffers less from the
	// traffic jam in the overlapped segments"). 1 = full congestion;
	// default 0.35.
	RapidCongestionSensitivity float64
	// RapidLightFactor scales the rapid line's red-light probability
	// (transit signal priority). Default 0.3.
	RapidLightFactor float64
}

func (c DriveConfig) withDefaults() DriveConfig {
	if c.OrdinarySpeedFrac <= 0 {
		c.OrdinarySpeedFrac = 0.75
	}
	if c.RapidSpeedFrac <= 0 {
		c.RapidSpeedFrac = 0.95
	}
	if c.DwellMean <= 0 {
		c.DwellMean = 18
	}
	if c.DwellSigma <= 0 {
		c.DwellSigma = 8
	}
	if c.LightRedProb <= 0 {
		c.LightRedProb = 0.4
	}
	if c.LightMaxWait <= 0 {
		c.LightMaxWait = 45
	}
	if c.DriverSigma <= 0 {
		c.DriverSigma = 0.05
	}
	if c.RapidCongestionSensitivity <= 0 || c.RapidCongestionSensitivity > 1 {
		c.RapidCongestionSensitivity = 0.4
	}
	if c.RapidLightFactor <= 0 || c.RapidLightFactor > 1 {
		c.RapidLightFactor = 0.3
	}
	return c
}

// breakpoint is one vertex of the piecewise-linear arc(t) profile.
type breakpoint struct {
	at  time.Time
	arc float64
}

// Trip is the ground-truth motion of one bus over one run of its route. It
// is immutable once created.
type Trip struct {
	routeID string
	start   time.Time
	bps     []breakpoint
	length  float64
}

// Drive simulates one bus trip on routeID departing at start. The congestion
// field and incidents are shared world state; rng supplies the per-trip
// randomness (driver factor, dwells, lights).
func Drive(net *roadnet.Network, routeID string, start time.Time, cfg DriveConfig,
	field *CongestionField, incidents []Incident, rng *xrand.Rand) (*Trip, error) {
	route, ok := net.Route(routeID)
	if !ok {
		return nil, fmt.Errorf("mobility: unknown route %q", routeID)
	}
	if field == nil {
		return nil, fmt.Errorf("mobility: nil congestion field")
	}
	if rng == nil {
		return nil, fmt.Errorf("mobility: nil rng")
	}
	cfg = cfg.withDefaults()

	speedFrac := cfg.OrdinarySpeedFrac
	dwellScale := 1.0
	dwellSpread := 1.0
	congestionSens := 1.0
	lightProb := cfg.LightRedProb
	if route.Class() == roadnet.ClassRapid {
		speedFrac = cfg.RapidSpeedFrac
		// More boardings per stop, but all-door boarding keeps the dwell
		// far more predictable than an ordinary bus's.
		dwellScale = 1.3
		dwellSpread = 0.5
		congestionSens = cfg.RapidCongestionSensitivity
		lightProb *= cfg.RapidLightFactor
	}
	driverSigma := cfg.DriverSigma
	if route.Class() == roadnet.ClassRapid {
		// Dedicated-lane running makes rapid trips far more repeatable.
		driverSigma *= 0.4
	}
	driver := clampPos(1 + rng.Norm(0, driverSigma))

	tr := &Trip{routeID: routeID, start: start, length: route.Length()}
	now := start
	tr.bps = append(tr.bps, breakpoint{at: now, arc: 0})

	stops := route.Stops()
	stopIdx := 0
	// Skip the departure stop at arc 0 — the dispatch time already includes it.
	for stopIdx < len(stops) && stops[stopIdx].Arc <= 0 {
		stopIdx++
	}

	for segIdx := 0; segIdx < route.NumSegments(); segIdx++ {
		segID := route.Segments()[segIdx]
		seg, _ := net.Graph.Segment(segID)
		segStart := route.SegmentStartArc(segIdx)
		segEnd := route.SegmentEndArc(segIdx)

		factor := 1 + (field.Factor(segID, now)-1)*congestionSens
		speed := seg.SpeedLimit * speedFrac * driver / factor

		arc := segStart
		for arc < segEnd-1e-9 {
			// Next event on this segment: stop, incident boundary, or end.
			next := segEnd
			if stopIdx < len(stops) && stops[stopIdx].Arc < next {
				next = stops[stopIdx].Arc
			}
			v := speed
			if in, slow := activeIncident(incidents, segID, now); slow {
				inStart := segStart + in.ArcStart
				inEnd := segStart + in.ArcEnd
				switch {
				case arc >= inStart && arc < inEnd:
					v = speed / in.SlowFactor
					if inEnd < next {
						next = inEnd
					}
				case arc < inStart && inStart < next:
					next = inStart
				}
			}
			if next <= arc {
				next = arc + 1e-6
			}
			now = now.Add(durSeconds((next - arc) / v))
			arc = next
			tr.bps = append(tr.bps, breakpoint{at: now, arc: arc})

			if stopIdx < len(stops) && arc >= stops[stopIdx].Arc-1e-9 && stops[stopIdx].Arc < segEnd {
				// Rush-hour crowds stretch boarding along with the traffic.
				dwellCongestion := 1 + (factor-1)*0.5
				dwell := clampPos(rng.Norm(cfg.DwellMean*dwellScale*dwellCongestion, cfg.DwellSigma*dwellSpread))
				now = now.Add(durSeconds(dwell))
				tr.bps = append(tr.bps, breakpoint{at: now, arc: arc})
				stopIdx++
			}
		}

		// Traffic light at the segment end.
		if seg.Signal && segIdx < route.NumSegments()-1 && rng.Bool(lightProb) {
			wait := rng.Range(0, cfg.LightMaxWait)
			now = now.Add(durSeconds(wait))
			tr.bps = append(tr.bps, breakpoint{at: now, arc: segEnd})
		}
	}
	return tr, nil
}

func activeIncident(incidents []Incident, seg roadnet.SegmentID, at time.Time) (Incident, bool) {
	for _, in := range incidents {
		if in.Seg == seg && in.ActiveAt(at) && in.SlowFactor > 1 {
			return in, true
		}
	}
	return Incident{}, false
}

func clampPos(v float64) float64 {
	if v < 0.1 {
		return 0.1
	}
	return v
}

func durSeconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// RouteID returns the route the trip runs on.
func (t *Trip) RouteID() string { return t.routeID }

// Start returns the departure time.
func (t *Trip) Start() time.Time { return t.start }

// End returns the arrival time at the final stop.
func (t *Trip) End() time.Time { return t.bps[len(t.bps)-1].at }

// Duration returns the total trip time.
func (t *Trip) Duration() time.Duration { return t.End().Sub(t.start) }

// Done reports whether the trip has finished by time at.
func (t *Trip) Done(at time.Time) bool { return !at.Before(t.End()) }

// ArcAt returns the ground-truth arc length at time at, clamped to the trip.
func (t *Trip) ArcAt(at time.Time) float64 {
	if !at.After(t.start) {
		return 0
	}
	if t.Done(at) {
		return t.length
	}
	i := sort.Search(len(t.bps), func(i int) bool { return t.bps[i].at.After(at) })
	// 0 < i < len(bps) here because start <= at < end.
	a, b := t.bps[i-1], t.bps[i]
	span := b.at.Sub(a.at)
	if span <= 0 {
		return a.arc
	}
	frac := float64(at.Sub(a.at)) / float64(span)
	return a.arc + frac*(b.arc-a.arc)
}

// TimeAtArc returns the first instant the bus reaches the given arc length.
func (t *Trip) TimeAtArc(arc float64) time.Time {
	if arc <= 0 {
		return t.start
	}
	if arc >= t.length {
		return t.End()
	}
	i := sort.Search(len(t.bps), func(i int) bool { return t.bps[i].arc >= arc })
	if i == 0 {
		return t.start
	}
	a, b := t.bps[i-1], t.bps[i]
	if b.arc == a.arc {
		return a.at
	}
	frac := (arc - a.arc) / (b.arc - a.arc)
	return a.at.Add(time.Duration(frac * float64(b.at.Sub(a.at))))
}

// Traversal is one ground-truth segment traversal of a trip.
type Traversal struct {
	Seg     roadnet.SegmentID
	RouteID string
	Enter   time.Time
	Exit    time.Time
}

// Traversals extracts the per-segment traversals of a trip by reading the
// exact boundary-crossing times from the motion profile. The live system
// derives the same records from tracker-interpolated crossings; the
// ground-truth version is used for offline training and evaluation.
func Traversals(net *roadnet.Network, trip *Trip) ([]Traversal, error) {
	route, ok := net.Route(trip.RouteID())
	if !ok {
		return nil, fmt.Errorf("mobility: unknown route %q", trip.RouteID())
	}
	out := make([]Traversal, 0, route.NumSegments())
	enter := trip.Start()
	for i := 0; i < route.NumSegments(); i++ {
		exit := trip.TimeAtArc(route.SegmentEndArc(i))
		out = append(out, Traversal{
			Seg:     route.Segments()[i],
			RouteID: trip.RouteID(),
			Enter:   enter,
			Exit:    exit,
		})
		enter = exit
	}
	return out, nil
}
