package mobility

import (
	"fmt"
	"time"
)

// DemandProfile is a 24-entry multiplier over the hours of a service day:
// dispatching density relative to the base headway. 1 means the base headway,
// 3 means three times as many departures (headway / 3), and a non-positive
// hour suspends service for that hour. Day-scale scenarios drive the
// rush-hour cycles the paper's seasonal index SI(i,l) (Eq. 6) is designed to
// discover.
type DemandProfile [24]float64

// IsZero reports whether the profile is entirely unset.
func (p DemandProfile) IsZero() bool {
	for _, v := range p {
		if v != 0 {
			return false
		}
	}
	return true
}

// RushDemand returns a weekday commuter profile: morning and afternoon
// dispatch peaks aligned with the paper's rush-hour slots (8-10 h, 18-19 h),
// a midday plateau, and no overnight service.
func RushDemand() DemandProfile {
	var p DemandProfile
	for h := 6; h < 23; h++ {
		p[h] = 1.0
	}
	for h := 10; h < 18; h++ {
		p[h] = 1.2
	}
	p[MorningRushStart] = 3.0
	p[MorningRushStart+1] = 3.0
	p[AfternoonRushStart] = 2.5
	return p
}

// FlatDemand returns a uniform daytime profile (6-23 h), the control case in
// which the seasonal index must stay flat.
func FlatDemand() DemandProfile {
	var p DemandProfile
	for h := 6; h < 23; h++ {
		p[h] = 1.0
	}
	return p
}

// Bounds on a demand-scaled headway, so a spiky profile cannot dispatch a
// bus every second or once a week.
const (
	minDemandHeadway = 2 * time.Minute
	maxDemandHeadway = 2 * time.Hour
)

// DemandDepartures expands a base headway and a demand profile into the
// departure offsets (from midnight) of one service day, within the
// [startHour, endHour) window. The effective headway during hour h is
// base / profile[h], clamped to [2 min, 2 h]; hours with non-positive demand
// are skipped entirely.
func DemandDepartures(base time.Duration, startHour, endHour int, profile DemandProfile) ([]time.Duration, error) {
	if base <= 0 {
		return nil, fmt.Errorf("mobility: non-positive base headway %v", base)
	}
	if startHour < 0 || endHour > 24 || endHour <= startHour {
		return nil, fmt.Errorf("mobility: service window [%d, %d) invalid", startHour, endHour)
	}
	var out []time.Duration
	t := time.Duration(startHour) * time.Hour
	end := time.Duration(endHour) * time.Hour
	for t < end {
		hour := int(t / time.Hour)
		d := profile[hour]
		if d <= 0 {
			t = time.Duration(hour+1) * time.Hour
			continue
		}
		out = append(out, t)
		headway := time.Duration(float64(base) / d)
		if headway < minDemandHeadway {
			headway = minDemandHeadway
		}
		if headway > maxDemandHeadway {
			headway = maxDemandHeadway
		}
		t += headway
	}
	return out, nil
}
