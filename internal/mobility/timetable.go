package mobility

import (
	"fmt"
	"time"

	"wilocator/internal/roadnet"
)

// TimetableSpec parameterises bus dispatching. The zero value selects
// defaults.
type TimetableSpec struct {
	// ServiceStartHour and ServiceEndHour bound the daily service window.
	// Defaults 6 and 23.
	ServiceStartHour, ServiceEndHour int
	// OrdinaryHeadway and RapidHeadway are the dispatch intervals per route
	// class. Defaults 10 min and 6 min.
	OrdinaryHeadway, RapidHeadway time.Duration
}

func (s TimetableSpec) withDefaults() TimetableSpec {
	if s.ServiceStartHour <= 0 {
		s.ServiceStartHour = 6
	}
	if s.ServiceEndHour <= 0 {
		s.ServiceEndHour = 23
	}
	if s.OrdinaryHeadway <= 0 {
		s.OrdinaryHeadway = 10 * time.Minute
	}
	if s.RapidHeadway <= 0 {
		s.RapidHeadway = 6 * time.Minute
	}
	return s
}

// Timetable returns the departure times of route on the service day
// containing day (whose time-of-day component is ignored).
func Timetable(route *roadnet.Route, day time.Time, spec TimetableSpec) ([]time.Time, error) {
	if route == nil {
		return nil, fmt.Errorf("mobility: nil route")
	}
	spec = spec.withDefaults()
	if spec.ServiceEndHour <= spec.ServiceStartHour {
		return nil, fmt.Errorf("mobility: service window [%d, %d) empty",
			spec.ServiceStartHour, spec.ServiceEndHour)
	}
	headway := spec.OrdinaryHeadway
	if route.Class() == roadnet.ClassRapid {
		headway = spec.RapidHeadway
	}
	y, m, d := day.Date()
	start := time.Date(y, m, d, spec.ServiceStartHour, 0, 0, 0, day.Location())
	end := time.Date(y, m, d, spec.ServiceEndHour, 0, 0, 0, day.Location())
	var out []time.Time
	for at := start; at.Before(end); at = at.Add(headway) {
		out = append(out, at)
	}
	return out, nil
}
