// Package mobility simulates ground-truth bus motion along routes: per-class
// cruise speeds, stop dwells, traffic-light waits, time-of-day congestion and
// injected incidents.
//
// The congestion model is the load-bearing piece for reproducing the paper's
// arrival-time results. WiLocator's predictor (Eq. 5/8) assumes the
// environment-related component of travel time on a road segment is shared
// by all routes and *temporally correlated*: "if a bus A has just travelled
// by a road segment at a normal travel pattern, then the travel time of next
// bus B, despite its route, on this road segment will also be normal with
// high probability". CongestionField realises exactly that: a deterministic,
// smoothly varying multiplicative slowdown per (segment, time), shared by
// every bus, on top of the weekday rush-hour profile the paper's seasonal
// index discovers (slots <8h, 8-10h, 10-18h, 18-19h, >19h).
package mobility

import (
	"math"
	"time"

	"wilocator/internal/roadnet"
	"wilocator/internal/xrand"
)

// Paper time-slot boundaries (hours of day) for weekdays.
const (
	MorningRushStart   = 8
	MorningRushEnd     = 10
	AfternoonRushStart = 18
	AfternoonRushEnd   = 19
)

// CongestionField is a deterministic random field of travel-time
// multipliers. Factor >= 1; 1 means free flow.
type CongestionField struct {
	// Seed makes the field reproducible.
	Seed uint64
	// RushFactor multiplies travel time during rush hours. Default 3.0
	// (a 30 km/h arterial dropping to ~10 km/h, typical of the paper's
	// W Broadway corridor).
	RushFactor float64
	// MiddayFactor applies between the rush hours. Default 1.25.
	MiddayFactor float64
	// Sigma is the log-scale standard deviation of the smooth noise
	// component. Default 0.18.
	Sigma float64
	// DaySigma is the log-scale standard deviation of the per-(segment,
	// day) persistent component — weather, events, demand: the slowly
	// varying deviation from the seasonal profile that makes "the previous
	// bus was slow" informative for the next hour, which is what Eq. 8
	// exploits. Default 0.22.
	DaySigma float64
	// KnotInterval is the correlation timescale of the fast noise. Default
	// 30 min: buses passing within a few minutes of each other see nearly
	// the same conditions, buses hours apart see independent ones.
	KnotInterval time.Duration
}

// DefaultCongestion returns the field used by the evaluation scenarios.
func DefaultCongestion(seed uint64) *CongestionField {
	return &CongestionField{Seed: seed}
}

func (f *CongestionField) rushFactor() float64 {
	if f.RushFactor <= 0 {
		return 3.0
	}
	return f.RushFactor
}

func (f *CongestionField) middayFactor() float64 {
	if f.MiddayFactor <= 0 {
		return 1.25
	}
	return f.MiddayFactor
}

func (f *CongestionField) sigma() float64 {
	if f.Sigma < 0 {
		return 0
	}
	if f.Sigma == 0 {
		return 0.18
	}
	return f.Sigma
}

func (f *CongestionField) daySigma() float64 {
	if f.DaySigma < 0 {
		return 0
	}
	if f.DaySigma == 0 {
		return 0.22
	}
	return f.DaySigma
}

func (f *CongestionField) knot() time.Duration {
	if f.KnotInterval <= 0 {
		return 30 * time.Minute
	}
	return f.KnotInterval
}

// SlotBase returns the deterministic time-of-day baseline multiplier — the
// profile whose periodicity the paper's seasonal index detects.
func (f *CongestionField) SlotBase(at time.Time) float64 {
	wd := at.Weekday()
	if wd == time.Saturday || wd == time.Sunday {
		return 1.05
	}
	h := at.Hour()
	switch {
	case h >= MorningRushStart && h < MorningRushEnd:
		return f.rushFactor()
	case h >= AfternoonRushStart && h < AfternoonRushEnd:
		return f.rushFactor()
	case h >= MorningRushEnd && h < AfternoonRushStart:
		return f.middayFactor()
	default:
		return 1.0
	}
}

// Factor returns the travel-time multiplier for segment seg at time at. The
// value is identical for every bus (it is a property of the road, not the
// vehicle) and varies smoothly in time.
func (f *CongestionField) Factor(seg roadnet.SegmentID, at time.Time) float64 {
	base := f.SlotBase(at)
	v := base
	if ds := f.daySigma(); ds > 0 {
		day := at.UnixNano() / int64(24*time.Hour)
		v *= math.Exp(ds * f.dayNoise(seg, day))
	}
	if s := f.sigma(); s > 0 {
		knot := f.knot()
		idx := at.UnixNano() / int64(knot)
		frac := float64(at.UnixNano()-idx*int64(knot)) / float64(knot)
		g0 := f.knotNoise(seg, idx)
		g1 := f.knotNoise(seg, idx+1)
		// Cosine interpolation keeps the field C1-smooth at knots.
		w := (1 - math.Cos(frac*math.Pi)) / 2
		v *= math.Exp(s * (g0*(1-w) + g1*w))
	}
	if v < 1 {
		return 1
	}
	return v
}

// dayNoise returns the persistent standard-normal factor for (segment, day).
func (f *CongestionField) dayNoise(seg roadnet.SegmentID, day int64) float64 {
	h := f.Seed ^ 0xD1E5EA50
	h ^= uint64(seg) * 0x9E3779B97F4A7C15
	h ^= uint64(day) * 0xD6E8FEB86659FD93
	return xrand.New(h).NormFloat64()
}

// knotNoise returns the standard-normal knot value for (segment, knot),
// deterministic in the field seed.
func (f *CongestionField) knotNoise(seg roadnet.SegmentID, idx int64) float64 {
	h := f.Seed
	h ^= uint64(seg) * 0x9E3779B97F4A7C15
	h ^= uint64(idx) * 0xBF58476D1CE4E5B9
	return xrand.New(h).NormFloat64()
}

// Incident is a localised traffic anomaly (road construction, accident — the
// things Fig. 6 and Fig. 11 detect): buses crawl through [ArcStart, ArcEnd]
// of the segment while the incident is active.
type Incident struct {
	Seg        roadnet.SegmentID
	Start, End time.Time
	// SlowFactor divides the bus speed inside the zone. Must be > 1.
	SlowFactor float64
	// ArcStart and ArcEnd delimit the affected zone within the segment,
	// metres from the segment start.
	ArcStart, ArcEnd float64
}

// ActiveAt reports whether the incident affects the segment at time at.
func (in Incident) ActiveAt(at time.Time) bool {
	return !at.Before(in.Start) && at.Before(in.End)
}
