package mobility

import (
	"math"
	"testing"
	"time"

	"wilocator/internal/roadnet"
	"wilocator/internal/xrand"
)

// TestTripInvariantsAcrossSeeds fuzzes Drive over seeds and checks the
// kinematic invariants every consumer depends on: monotone arc, bounded
// speed, exact endpoints and ArcAt/TimeAtArc consistency.
func TestTripInvariantsAcrossSeeds(t *testing.T) {
	net := vancouverNet(t)
	route, _ := net.Route(roadnet.Route14)
	maxLimit := 0.0
	for _, sid := range route.Segments() {
		seg, _ := net.Graph.Segment(sid)
		if seg.SpeedLimit > maxLimit {
			maxLimit = seg.SpeedLimit
		}
	}
	for seed := uint64(0); seed < 6; seed++ {
		field := DefaultCongestion(seed)
		start := monday.Add(time.Duration(6+seed) * time.Hour)
		trip, err := Drive(net, roadnet.Route14, start, DriveConfig{}, field, nil, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if !trip.Start().Equal(start) {
			t.Fatalf("seed %d: start %v", seed, trip.Start())
		}
		prevArc := 0.0
		prevAt := start
		for at := start; !trip.Done(at); at = at.Add(5 * time.Second) {
			arc := trip.ArcAt(at)
			if arc < prevArc-1e-9 {
				t.Fatalf("seed %d: arc regressed at %v", seed, at)
			}
			dt := at.Sub(prevAt).Seconds()
			if dt > 0 {
				v := (arc - prevArc) / dt
				// The driver factor can nudge the cruise speed a few percent
				// above the limit; 1.2x is a hard physical sanity bound.
				if v > maxLimit*1.2 {
					t.Fatalf("seed %d: speed %v m/s above limit %v", seed, v, maxLimit)
				}
			}
			prevArc, prevAt = arc, at
			// TimeAtArc must agree with ArcAt up to interpolation noise.
			if arc > 0 && arc < route.Length() {
				back := trip.ArcAt(trip.TimeAtArc(arc))
				if math.Abs(back-arc) > 0.5 {
					t.Fatalf("seed %d: TimeAtArc inconsistent at %v: %v", seed, arc, back)
				}
			}
		}
		if got := trip.ArcAt(trip.End()); math.Abs(got-route.Length()) > 1e-6 {
			t.Fatalf("seed %d: final arc %v", seed, got)
		}
	}
}

// TestTraversalsMatchTripDuration: per-segment traversals are contiguous and
// sum exactly to the trip duration.
func TestTraversalsMatchTripDuration(t *testing.T) {
	net := vancouverNet(t)
	field := DefaultCongestion(9)
	trip, err := Drive(net, roadnet.Route16, midday, DriveConfig{}, field, nil, xrand.New(17))
	if err != nil {
		t.Fatal(err)
	}
	trs, err := Traversals(net, trip)
	if err != nil {
		t.Fatal(err)
	}
	route, _ := net.Route(roadnet.Route16)
	if len(trs) != route.NumSegments() {
		t.Fatalf("traversals = %d, want %d", len(trs), route.NumSegments())
	}
	var total time.Duration
	for i, tr := range trs {
		if tr.RouteID != roadnet.Route16 || tr.Seg != route.Segments()[i] {
			t.Fatalf("traversal %d metadata wrong: %+v", i, tr)
		}
		if !tr.Exit.After(tr.Enter) {
			t.Fatalf("traversal %d non-positive", i)
		}
		if i > 0 && !tr.Enter.Equal(trs[i-1].Exit) {
			t.Fatalf("traversal %d not contiguous", i)
		}
		total += tr.Exit.Sub(tr.Enter)
	}
	if d := trip.Duration() - total; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("traversal sum differs from trip duration by %v", d)
	}
	if _, err := Traversals(net, &Trip{routeID: "nope", bps: trip.bps}); err == nil {
		t.Error("unknown route accepted")
	}
}

// TestCongestedDwellScales: the rush-hour dwell stretch is visible in trip
// durations even with lights and noise disabled.
func TestCongestedDwellScales(t *testing.T) {
	net := vancouverNet(t)
	f := &CongestionField{Seed: 3, Sigma: -1, DaySigma: -1}
	cfg := DriveConfig{LightRedProb: 1e-12, DwellSigma: 1e-9, DriverSigma: 1e-9}
	nightTrip, err := Drive(net, roadnet.Route9, night, cfg, f, nil, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	rushTrip, err := Drive(net, roadnet.Route9, rush, cfg, f, nil, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	// Rush factor 3 on driving and 2 on dwell: the rush trip must be at
	// least twice the night trip.
	if rushTrip.Duration() < nightTrip.Duration()*2 {
		t.Errorf("rush %v vs night %v: congestion too weak", rushTrip.Duration(), nightTrip.Duration())
	}
}
