// Package api defines the JSON wire protocol between WiLocator phones /
// rider apps and the back-end server (the component diagram of Fig. 4:
// smartphones report scans up, the user interface queries vehicle positions,
// arrival predictions and the traffic map).
package api

import (
	"errors"
	"fmt"
	"time"

	"wilocator/internal/geo"
	"wilocator/internal/roadnet"
	"wilocator/internal/trafficmap"
	"wilocator/internal/traveltime"
	"wilocator/internal/wifi"
)

// Paths of the HTTP API.
const (
	PathReports = "/v1/reports"
	// PathReportsBatch ingests many reports in one POST: an NDJSON body,
	// one Report object per line, answered with a BatchResponse carrying
	// per-item verdicts. The batch path exists so a metro-scale fleet does
	// not pay one HTTP round trip and one JSON decoder per scan report.
	PathReportsBatch = "/v1/reports/batch"
	PathVehicles     = "/v1/vehicles"
	PathArrivals     = "/v1/arrivals"
	PathTrafficMap   = "/v1/trafficmap"
	PathRoutes       = "/v1/routes"
	PathStops        = "/v1/stops"
	PathAnomalies    = "/v1/anomalies"
	PathTrajectories = "/v1/trajectories"
	PathHealth       = "/v1/healthz"
	// PathAdminRebuild triggers a Signal Voronoi Diagram rebuild from the
	// current AP deployment state (operator endpoint, POST).
	PathAdminRebuild = "/v1/admin/rebuild"
	// PathMetrics serves the metrics registry in the Prometheus text
	// exposition format (GET; outside /v1 by scrape convention).
	PathMetrics = "/metrics"
	// PathTraceRecent serves the most recent trace events as JSON (GET,
	// debug endpoint; ?n= bounds the count).
	PathTraceRecent = "/v1/trace/recent"
	// PathStream is the rider-facing delta push channel: a Server-Sent
	// Events stream of per-route vehicle updates (GET, ?route= required,
	// ?from=<epoch> resumes after a disconnect). One snapshot diff on the
	// server fans out to every subscriber of the route, so N watchers cost
	// one diff computation, not N recomputes.
	PathStream = "/v1/stream"
)

// SSE event names used on PathStream. A stream opens with zero or more
// catch-up events (one EventSnapshot, or the missed EventDelta frames when
// the ?from= epoch is recent enough to replay), then carries one EventDelta
// per published snapshot epoch. Each frame's SSE id field is its epoch.
const (
	EventSnapshot = "snapshot"
	EventDelta    = "delta"
)

// Report is one phone's upload: the WiFi information scanned on a bus.
type Report struct {
	BusID   string    `json:"busId"`
	RouteID string    `json:"routeId"`
	PhoneID string    `json:"phoneId"`
	Scan    wifi.Scan `json:"scan"`
}

// Payload sanity bounds enforced by Report.Validate. They are deliberately
// generous — an order of magnitude beyond anything a real phone produces —
// so they only reject reports that are absurd (malicious, fuzzed, or
// corrupted in flight), never unusual-but-real ones.
const (
	// MaxScanReadings caps the APs one scan may report. Dense urban scans
	// see tens of APs; hundreds is already implausible.
	MaxScanReadings = 512
	// MinValidRSSI / MaxValidRSSI bound a plausible received signal
	// strength in dBm. Commodity radios bottom out near -100 dBm and
	// nothing is received above ~0 dBm even against the antenna. RSS is an
	// integer on the wire, so NaN and ±Inf cannot even be encoded; the
	// range check catches every remaining absurd value.
	MinValidRSSI = -120
	MaxValidRSSI = 30
	// MaxIDLength caps bus/route/phone/BSSID identifier lengths, so a
	// hostile client cannot grow server-side maps with megabyte keys.
	MaxIDLength = 128
)

// Validate checks a report's payload shape against the bounds above. It
// deliberately does not check semantic fields the server owns (known
// routes, fusion-window ordering) — only whether the payload could have
// come from a sane phone at all. The server counts a failure as a
// rejected-invalid report and answers 400.
func (r Report) Validate() error {
	if len(r.BusID) > MaxIDLength || len(r.RouteID) > MaxIDLength || len(r.PhoneID) > MaxIDLength {
		return fmt.Errorf("api: identifier longer than %d bytes", MaxIDLength)
	}
	if n := len(r.Scan.Readings); n > MaxScanReadings {
		return fmt.Errorf("api: scan reports %d APs, cap is %d", n, MaxScanReadings)
	}
	for _, rd := range r.Scan.Readings {
		if len(rd.BSSID) > MaxIDLength {
			return fmt.Errorf("api: BSSID longer than %d bytes", MaxIDLength)
		}
		if rd.RSSI < MinValidRSSI || rd.RSSI > MaxValidRSSI {
			return fmt.Errorf("api: RSS %d dBm outside plausible range [%d, %d]", rd.RSSI, MinValidRSSI, MaxValidRSSI)
		}
	}
	return nil
}

// IngestResponse acknowledges a report. If the report completed a fusion
// cycle, the fresh estimate is included.
type IngestResponse struct {
	Accepted bool `json:"accepted"`
	// Reason explains why a report was not accepted without being an error
	// (e.g. ReasonLateScan); empty when Accepted.
	Reason string `json:"reason,omitempty"`
	// Located is true when this report triggered a new position fix.
	Located bool `json:"located"`
	// Arc is the fused position estimate (metres along the route) when
	// Located.
	Arc float64 `json:"arc,omitempty"`
}

// BatchResponse acknowledges a POST /v1/reports/batch. The batch endpoint
// is partial-accept: a 200 means every attempted line got an individual
// verdict, not that every line was accepted. Items carries the verdicts of
// the lines that were NOT plainly accepted (accepted-and-unremarkable lines
// are elided, so a clean batch's response stays O(1) regardless of size).
//
// On a 429 the server stopped mid-batch because its ingest rings were
// saturated: lines before Received got verdicts as usual, lines from
// Received on were never attempted, and the client should resend the tail
// after RetryAfterSec (Received is a resume cursor, mirrored by the
// Retry-After header).
type BatchResponse struct {
	// Received counts the leading NDJSON lines the server attempted
	// (blank lines included). Equal to the line count on a 200.
	Received int `json:"received"`
	// Accepted / Located / LateDropped / Rejected total the per-line
	// outcomes, matching the IngestStats meanings.
	Accepted    int `json:"accepted"`
	Located     int `json:"located"`
	LateDropped int `json:"lateDropped"`
	Rejected    int `json:"rejected"`
	// Items are the verdicts of the attempted lines that were not plainly
	// accepted, in line order.
	Items []BatchItem `json:"items,omitempty"`
	// RetryAfterSec mirrors the Retry-After header on a 429 (whole
	// seconds, derived from ring depth over measured drain rate).
	RetryAfterSec int `json:"retryAfterSec,omitempty"`
}

// BatchItem is the verdict of one not-plainly-accepted batch line.
type BatchItem struct {
	// Index is the zero-based line number within the batch body.
	Index int `json:"index"`
	// Reason is set for non-error drops (e.g. ReasonLateScan).
	Reason string `json:"reason,omitempty"`
	// Error is set when the line was refused: malformed JSON, failed
	// validation, or an ingest error. The line is counted in Rejected.
	Error string `json:"error,omitempty"`
}

// ReasonLateScan marks a report whose scan time falls in an older fusion
// window than the bus's current bucket. Appending it would corrupt the
// bucket (the window has already been fused), so the server drops it and
// counts the drop instead.
const ReasonLateScan = "late-scan"

// IngestStats counts report-processing outcomes since server start. All
// counters are cumulative and monotone.
type IngestStats struct {
	// Accepted counts reports buffered into a fusion bucket.
	Accepted uint64 `json:"accepted"`
	// Rejected counts reports refused with an error (bad IDs, unknown
	// route, route mismatch).
	Rejected uint64 `json:"rejected"`
	// LateDropped counts reports dropped because their scan fell in an
	// already-fused (older) fusion window.
	LateDropped uint64 `json:"lateDropped"`
	// Flushes counts completed fusion windows; Located counts the flushes
	// that produced a position fix.
	Flushes uint64 `json:"flushes"`
	Located uint64 `json:"located"`
	// Registered counts bus (re-)registrations: first report of a bus, or
	// a report after the bus finished or went stale.
	Registered uint64 `json:"registered"`
	// Evicted counts buses removed from memory by EvictStale.
	Evicted uint64 `json:"evicted"`
	// Invalid counts reports refused by payload validation (absurd AP
	// counts, out-of-range RSS, oversized identifiers). A subset of
	// Rejected.
	Invalid uint64 `json:"invalid"`
}

// HTTPStats counts transport-level protection events since server start:
// requests the hardened HTTP layer refused or survived rather than letting
// them reach (or crash) the service.
type HTTPStats struct {
	// Offered counts every report POST that reached the handler; each one
	// is either admitted (and eventually counted in Served) or Shed, so at
	// quiescence Shed + Served == Offered.
	Offered uint64 `json:"offered"`
	// Served counts report POSTs that were admitted and ran to a response
	// (any status — a 400 for a bad payload still counts as served).
	Served uint64 `json:"served"`
	// Shed counts report POSTs refused with 429 + Retry-After because the
	// ingestion admission bound was saturated.
	Shed uint64 `json:"shed"`
	// TooLarge counts request bodies cut off by the size limit (413).
	TooLarge uint64 `json:"tooLarge"`
	// Panics counts handler panics recovered into a 500.
	Panics uint64 `json:"panics"`
	// BatchOffered counts every batch POST that reached the handler; like
	// single reports, each is eventually counted in exactly one of
	// BatchServed (ran to any response, including a mid-batch 429) or
	// BatchShed (refused outright with 429 before any line was attempted),
	// so BatchShed + BatchServed <= BatchOffered at every instant.
	BatchOffered uint64 `json:"batchOffered"`
	BatchServed  uint64 `json:"batchServed"`
	BatchShed    uint64 `json:"batchShed"`
	// BatchReports counts individual report lines attempted via the batch
	// endpoint (each got a verdict; a superset of the batch share of the
	// ingest counters).
	BatchReports uint64 `json:"batchReports"`
}

// ReadStats counts read-path outcomes since server start: epoch-snapshot
// publishes, GETs served from snapshots, conditional-request hits, and the
// SSE broadcast counters. Serves counts 200s and 304s alike; NotModified is
// the 304 subset, so NotModified <= Serves at every instant (the handler
// increments Serves first and the snapshot loads NotModified first).
type ReadStats struct {
	// Epoch is the currently served snapshot epoch (equals Publishes: every
	// publish advances the epoch by one).
	Epoch uint64 `json:"epoch"`
	// Publishes counts snapshot publications (epoch advances).
	Publishes uint64 `json:"publishes"`
	// Serves counts GETs answered from an epoch snapshot (200 or 304).
	Serves uint64 `json:"serves"`
	// NotModified counts the If-None-Match hits answered 304. A subset of
	// Serves.
	NotModified uint64 `json:"notModified"`
	// StreamDeltas counts per-(epoch, route) diff computations — one per
	// broadcast route per epoch regardless of the subscriber count.
	StreamDeltas uint64 `json:"streamDeltas"`
	// StreamFrames counts SSE frames enqueued to subscriber buffers
	// (catch-up and delta frames alike).
	StreamFrames uint64 `json:"streamFrames"`
	// StreamDropped counts subscribers shed for falling behind their
	// bounded buffer.
	StreamDropped uint64 `json:"streamDropped"`
	// StreamResumes counts stream subscriptions that carried a ?from=
	// epoch (reconnects after a drop or disconnect).
	StreamResumes uint64 `json:"streamResumes"`
	// Subscribers is the current SSE subscriber count (a gauge, not a
	// cumulative counter).
	Subscribers int64 `json:"subscribers"`
}

// StreamSnapshot is the full-state catch-up event of one /v1/stream route:
// the subscriber replaces whatever it has with this and applies subsequent
// deltas on top.
type StreamSnapshot struct {
	Epoch       uint64          `json:"epoch"`
	RouteID     string          `json:"routeId"`
	GeneratedAt time.Time       `json:"generatedAt"`
	Vehicles    []VehicleStatus `json:"vehicles"`
	// Strip is the route's traffic-map rendering at this epoch.
	Strip string `json:"strip,omitempty"`
}

// StreamDelta is one epoch's change set for one route. Deltas are
// idempotent upserts: applying a delta whose epoch is <= the state the
// client already holds is harmless, so catch-up replays never need
// client-side dedup beyond the epoch comparison.
type StreamDelta struct {
	Epoch   uint64 `json:"epoch"`
	RouteID string `json:"routeId"`
	// Updated carries the vehicles whose status changed this epoch (full
	// replacement values, keyed by BusID).
	Updated []VehicleStatus `json:"updated,omitempty"`
	// Removed lists the bus IDs that left the route's live set (finished,
	// went stale, or were evicted).
	Removed []string `json:"removed,omitempty"`
	// Strip is the route's traffic-map rendering, present when it changed.
	Strip string `json:"strip,omitempty"`
	// StripChanged marks whether Strip is meaningful (an all-unknown strip
	// is a valid non-empty value, so presence alone cannot signal change).
	StripChanged bool `json:"stripChanged,omitempty"`
}

// RebuildStats reports diagram-rebuild state: the serving generation and the
// cumulative rebuild outcomes. Exposed through /v1/healthz so operators can
// see whether the diagram has caught up with known AP dynamics.
type RebuildStats struct {
	// Generation is the serving engine generation (1 = the initial build).
	Generation uint64 `json:"generation"`
	// Rebuilds and Failures count completed and failed rebuild attempts.
	Rebuilds uint64 `json:"rebuilds"`
	Failures uint64 `json:"failures"`
	// InProgress reports whether a rebuild is running right now.
	InProgress bool `json:"inProgress"`
	// LastDurationMS is the wall-clock duration of the last successful
	// rebuild, milliseconds (0 until the first one).
	LastDurationMS float64 `json:"lastDurationMs"`
}

// RebuildResponse acknowledges a completed /v1/admin/rebuild.
type RebuildResponse struct {
	Generation uint64  `json:"generation"`
	DurationMS float64 `json:"durationMs"`
	// Tiles and Cells describe the freshly built diagram.
	Tiles int `json:"tiles"`
	Cells int `json:"cells"`
}

// HealthResponse is the /v1/healthz body: liveness plus the degradation
// counters — load shedding, recovered panics, diagram-rebuild state, and
// (when persistence is enabled) WAL/snapshot recovery state — so "up but
// degraded" is visible to operators and probes.
type HealthResponse struct {
	OK          bool         `json:"ok"`
	ActiveBuses int          `json:"activeBuses"`
	Ingest      IngestStats  `json:"ingest"`
	HTTP        HTTPStats    `json:"http"`
	Read        ReadStats    `json:"read"`
	Rebuild     RebuildStats `json:"rebuild"`
	// Persist is present when the server runs with a write-ahead log.
	Persist *traveltime.PersistStats `json:"persist,omitempty"`
	// Cluster is present when the server runs as a geo-sharded cluster
	// node: its role, and per-shard replication state.
	Cluster *ClusterStatus `json:"cluster,omitempty"`
}

// ClusterStatus reports one node's view of the cluster in /v1/healthz.
type ClusterStatus struct {
	// NodeID is this node's name in the static topology.
	NodeID string `json:"nodeId"`
	// Role is "leader" or "follower" (the node's configured role).
	Role string `json:"role"`
	// Shards lists every WAL lineage this node knows about: its own (as
	// leader) and each one it replicates or has promoted.
	Shards []ShardStatus `json:"shards,omitempty"`
}

// ShardStatus is the replication state of one geo-shard (one leader's WAL
// lineage) as seen from the reporting node.
type ShardStatus struct {
	// Owner is the node currently owning the shard's ring range; after a
	// failover it is the promoted survivor, not the original leader.
	Owner string `json:"owner"`
	// Origin is the node the lineage originally belonged to.
	Origin string `json:"origin"`
	// Local reports whether this node serves the shard (it is the owner).
	Local bool `json:"local"`
	// Promoted reports whether the shard moved here through a failover.
	Promoted bool `json:"promoted"`
	// ReplicationLagBytes is the leader's durable WAL frontier minus the
	// acknowledged follower offset (leader view) or minus the local replica
	// length (follower view). Zero means the replica is caught up.
	ReplicationLagBytes int64 `json:"replicationLagBytes"`
	// WALDurableBytes is the durable frontier of the shard's WAL.
	WALDurableBytes int64 `json:"walDurableBytes"`
	// Generation is the shard's persistence lineage generation.
	Generation uint64 `json:"generation"`
}

// VehicleStatus is the live state of one tracked bus.
type VehicleStatus struct {
	BusID   string    `json:"busId"`
	RouteID string    `json:"routeId"`
	Arc     float64   `json:"arc"`
	Pos     geo.Point `json:"pos"`
	// Speed is the smoothed ground speed, m/s.
	Speed float64 `json:"speed"`
	// Updated is the time of the latest fix.
	Updated time.Time `json:"updated"`
}

// ArrivalEstimate is one bus's predicted arrival at a stop.
type ArrivalEstimate struct {
	BusID     string    `json:"busId"`
	RouteID   string    `json:"routeId"`
	StopIndex int       `json:"stopIndex"`
	StopName  string    `json:"stopName"`
	ETA       time.Time `json:"eta"`
}

// TrafficMapResponse carries the classified segments.
type TrafficMapResponse struct {
	GeneratedAt time.Time                  `json:"generatedAt"`
	Segments    []trafficmap.SegmentStatus `json:"segments"`
	// Strip is the one-glyph-per-segment rendering.
	Strip string `json:"strip"`
}

// RoutesResponse carries the route inventory (the data behind Table I).
type RoutesResponse struct {
	Routes []roadnet.RouteInfo `json:"routes"`
}

// StopInfo describes one bus stop of a route, for trip-planner UIs.
type StopInfo struct {
	Index int    `json:"index"`
	Name  string `json:"name"`
	// Arc is the stop's position along the route, metres from the start.
	Arc float64   `json:"arc"`
	Pos geo.Point `json:"pos"`
}

// StopsResponse lists one route's stops in travel order.
type StopsResponse struct {
	RouteID string     `json:"routeId"`
	Stops   []StopInfo `json:"stops"`
}

// TrajectoryFix is one point of a bus trajectory in the paper's Definition 6
// form: <lat, long, t>, plus the arc length for road-relative consumers.
type TrajectoryFix struct {
	Lat  float64   `json:"lat"`
	Lng  float64   `json:"lng"`
	Time time.Time `json:"t"`
	Arc  float64   `json:"arc"`
}

// TrajectoryResponse carries one tracked bus's trajectory.
type TrajectoryResponse struct {
	BusID   string          `json:"busId"`
	RouteID string          `json:"routeId"`
	Fixes   []TrajectoryFix `json:"fixes"`
}

// AnomalyReport is one detected traffic-anomaly site on a live bus's
// trajectory (road construction, accident — Fig. 6 of the paper).
type AnomalyReport struct {
	BusID   string `json:"busId"`
	RouteID string `json:"routeId"`
	// StartArc and EndArc delimit the site along the route, metres.
	StartArc float64   `json:"startArc"`
	EndArc   float64   `json:"endArc"`
	Start    time.Time `json:"start"`
	End      time.Time `json:"end"`
	// Pos is the site's centre on the road.
	Pos geo.Point `json:"pos"`
}

// ErrShardUnavailable signals that the cluster node owning a report's
// route is temporarily unreachable (mid-failover, partitioned, or down and
// not yet promoted). The HTTP layer maps it to 503 with a Retry-After
// hint, which the client's retry loop honors. Defined here rather than in
// the cluster package so the server can match it without importing cluster.
var ErrShardUnavailable = errors.New("shard owner unavailable")

// Error is the JSON error envelope.
type Error struct {
	Message string `json:"error"`
}
