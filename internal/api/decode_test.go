package api

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

// sameDecode asserts that ReportDecoder.Decode and a fresh json.Unmarshal
// agree on line: same accept/reject verdict and, on accept, equivalent
// values. dst may carry state from earlier decodes — that is the point.
func sameDecode(t *testing.T, d *ReportDecoder, dst *Report, line string) {
	t.Helper()
	gotErr := d.Decode(dst, []byte(line))
	var want Report
	wantErr := json.Unmarshal([]byte(line), &want)
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("Decode(%q) err = %v, json.Unmarshal err = %v", line, gotErr, wantErr)
	}
	if gotErr != nil {
		return
	}
	if diff := reportDiff(*dst, want); diff != "" {
		t.Fatalf("Decode(%q) diverges from json.Unmarshal: %s\n got %+v\nwant %+v", line, diff, *dst, want)
	}
}

// reportDiff compares two decoded reports semantically: times by instant
// and zone offset (zone *names* are unobservable), readings by value, and
// a nil readings slice equal to an empty one — buffer reuse means Decode
// may leave a non-nil empty slice where a fresh json.Unmarshal leaves nil,
// and nothing downstream distinguishes them (only the length is read).
func reportDiff(a, b Report) string {
	if a.BusID != b.BusID || a.RouteID != b.RouteID || a.PhoneID != b.PhoneID {
		return "identifier fields differ"
	}
	if !a.Scan.Time.Equal(b.Scan.Time) {
		return fmt.Sprintf("time instants differ: %v vs %v", a.Scan.Time, b.Scan.Time)
	}
	_, offA := a.Scan.Time.Zone()
	_, offB := b.Scan.Time.Zone()
	if offA != offB {
		return fmt.Sprintf("zone offsets differ: %d vs %d", offA, offB)
	}
	if len(a.Scan.Readings) != len(b.Scan.Readings) {
		return "readings lengths differ"
	}
	for i := range a.Scan.Readings {
		if a.Scan.Readings[i] != b.Scan.Readings[i] {
			return fmt.Sprintf("readings[%d] differs", i)
		}
	}
	return ""
}

func validLine() string {
	return `{"busId":"bus-7","routeId":"r16","phoneId":"ph-123","scan":{"time":"2016-03-07T09:00:05Z","readings":[{"bssid":"aa:bb:cc:00:11:22","rssi":-61},{"bssid":"aa:bb:cc:00:11:23","rssi":-74}]}}`
}

func TestDecodeCanonical(t *testing.T) {
	d := NewReportDecoder()
	var rep Report
	sameDecode(t, d, &rep, validLine())
	if rep.BusID != "bus-7" || rep.RouteID != "r16" || rep.PhoneID != "ph-123" {
		t.Fatalf("bad ids: %+v", rep)
	}
	if len(rep.Scan.Readings) != 2 || rep.Scan.Readings[0].RSSI != -61 {
		t.Fatalf("bad readings: %+v", rep.Scan.Readings)
	}
	want := time.Date(2016, 3, 7, 9, 0, 5, 0, time.UTC)
	if !rep.Scan.Time.Equal(want) {
		t.Fatalf("time = %v, want %v", rep.Scan.Time, want)
	}
}

// TestDecodeMatchesEncodingJSON sweeps inputs chosen to push the decoder
// down both its fast path and every fallback reason, asserting exact
// json.Unmarshal equivalence for each. The decoder and the destination are
// reused across cases, so state leaks between decodes would surface here.
func TestDecodeMatchesEncodingJSON(t *testing.T) {
	lines := []string{
		validLine(),
		// Fast-path shapes.
		`{}`,
		`{"busId":""}`,
		` { "busId" : "b" , "scan" : { "time" : "2016-03-07T09:00:05.25+07:00" , "readings" : [ ] } } `,
		`{"scan":{"readings":[{"rssi":-120},{"bssid":"x"}]}}`,
		`{"scan":{"time":"2016-12-31T23:59:59.999999999-08:30"}}`,
		`{"phoneId":"p","routeId":"r","busId":"b"}`, // any key order
		`{"scan":{"readings":[{"rssi":0,"bssid":"aa"}]}}`,
		// Fallback: JSON features the fast path declines.
		`{"busId":"escAped"}`,
		`{"busId":"tab\there"}`,
		`{"BusId":"case-insensitive"}`,
		`{"busId":"b","unknown":42}`,
		`{"busId":"b","busId":"c"}`,
		`{"scan":{"readings":[{"bssid":"a","rssi":-61.5}]}}`,
		`{"scan":{"readings":[{"bssid":"a","rssi":1e2}]}}`,
		`{"scan":{"readings":[{"bssid":"a","rssi":007}]}}`,
		`{"scan":{"readings":null}}`,
		`{"scan":null}`,
		`{"busId":null}`,
		`{"scan":{"time":"2016-03-07t09:00:05z"}}`,
		`{"scan":{"time":"2016-03-07 09:00:05Z"}}`,
		`{"scan":{"time":"2016-02-30T09:00:05Z"}}`,
		`{"scan":{"time":"2016-03-07T09:00:60Z"}}`,
		`{"scan":{"time":"2016-03-07T09:00:05+24:00"}}`,
		`{"scan":{"time":""}}`,
		`{"busId":"b\xff"}`, // invalid UTF-8 is coerced by encoding/json
		"{\"busId\":\"\xc3\xa9clair\"}",
		// Malformed JSON of every flavor.
		``,
		`   `,
		`null`,
		`[]`,
		`42`,
		`{"busId":"b"`,
		`{"busId":}`,
		`{"busId" "b"}`,
		`{"busId":"b",}`,
		`{"busId":"b"}trailing`,
		`{"busId":"b"} {"busId":"c"}`,
		strings.Repeat(`{"busId":`, 40) + strings.Repeat(`}`, 40),
	}
	d := NewReportDecoder()
	var rep Report
	for _, line := range lines {
		sameDecode(t, d, &rep, line)
	}
}

// TestDecodeFallbackClearsReusedReadings pins the subtle reuse hazard: a
// fallback decode whose reading objects omit fields must not inherit field
// values from an earlier decode that used the same backing array.
func TestDecodeFallbackClearsReusedReadings(t *testing.T) {
	d := NewReportDecoder()
	var rep Report
	sameDecode(t, d, &rep, validLine()) // populate readings storage
	// Float RSSI forces the fallback; the first reading omits rssi and
	// must decode to 0, not the stale -61.
	sameDecode(t, d, &rep, `{"scan":{"readings":[{"bssid":"q"},{"bssid":"w","rssi":-42.0}]}}`)
	if rep.Scan.Readings[0].RSSI != 0 {
		t.Fatalf("stale RSSI leaked through fallback: %+v", rep.Scan.Readings)
	}
}

func TestDecodeReuseShrinks(t *testing.T) {
	d := NewReportDecoder()
	var rep Report
	sameDecode(t, d, &rep, validLine())
	sameDecode(t, d, &rep, `{"busId":"only"}`)
	if len(rep.Scan.Readings) != 0 || rep.RouteID != "" || !rep.Scan.Time.IsZero() {
		t.Fatalf("state leaked across decodes: %+v", rep)
	}
}

func TestDecodeInternsIdentifiers(t *testing.T) {
	d := NewReportDecoder()
	var a, b Report
	if err := d.Decode(&a, []byte(validLine())); err != nil {
		t.Fatal(err)
	}
	busA := a.BusID
	if err := d.Decode(&b, []byte(validLine())); err != nil {
		t.Fatal(err)
	}
	// Same interned string object: comparing string headers via a map
	// round trip is not possible directly, but zero allocations on the
	// steady-state decode (asserted below) implies interning works. Here
	// just check values survived.
	if busA != b.BusID {
		t.Fatalf("interned values differ: %q vs %q", busA, b.BusID)
	}
}

func TestDecodeSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	d := NewReportDecoder()
	var rep Report
	line := []byte(validLine())
	// Warm up: intern table fill + first readings slice.
	for i := 0; i < 4; i++ {
		if err := d.Decode(&rep, line); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := d.Decode(&rep, line); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Decode allocates %.1f/op, want 0", allocs)
	}
}

// FuzzBatchDecode differentially fuzzes the pooled batch-line decoder
// against encoding/json: for every input, same verdict, and on accept the
// same value — with a deliberately dirtied, reused destination buffer, the
// way the batch handler uses it.
func FuzzBatchDecode(f *testing.F) {
	f.Add([]byte(validLine()))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"busId":"b","scan":{"time":"2016-03-07T09:00:05+07:00","readings":[{"bssid":"a","rssi":-1}]}}`))
	f.Add([]byte(`{"busId":"é"}`))
	f.Add([]byte(`{"scan":{"readings":[{"bssid":"a"},{"rssi":5}]}}`))
	f.Add([]byte(`{"scan":{"readings":null},"busId":null}`))
	f.Add([]byte(`{"busId":"b","busId":"c"}`))
	f.Add([]byte(`{"scan":{"time":"0000-01-01T00:00:00Z"}}`))
	f.Add([]byte(`{"scan":{"time":"2016-03-07T09:00:05.123456789012Z"}}`))
	f.Add([]byte(`{"scan":{"readings":[{"bssid":"a","rssi":9223372036854775807}]}}`))
	f.Add([]byte(`{"busId":"b"} `))
	f.Add([]byte(`{"busId`))
	d := NewReportDecoder()
	var rep Report
	f.Fuzz(func(t *testing.T, line []byte) {
		// Dirty the buffer first so incomplete resets surface as diffs.
		_ = d.Decode(&rep, []byte(validLine()))
		gotErr := d.Decode(&rep, line)
		var want Report
		wantErr := json.Unmarshal(line, &want)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("verdicts diverge on %q: decoder=%v json=%v", line, gotErr, wantErr)
		}
		if gotErr != nil {
			return
		}
		if diff := reportDiff(rep, want); diff != "" {
			t.Fatalf("values diverge on %q: %s\n got %+v\nwant %+v", line, diff, rep, want)
		}
	})
}
