//go:build race

package api

const raceEnabled = true
