package api

import (
	"encoding/json"
	"time"
	"unicode/utf8"

	"wilocator/internal/wifi"
)

// ReportDecoder decodes JSON report objects — one NDJSON line each — into a
// caller-provided Report with zero heap allocations on the steady-state
// path. It exists for the batched ingest loop, where a fresh json.Decoder
// and Report per line would dominate the profile.
//
// The fast path hand-parses exactly the shape phones send: an object of
// known camelCase keys, escape-free valid-UTF-8 strings, integer RSSI, and
// an RFC 3339 scan time. Identifier strings (bus/route/phone/BSSID) are
// interned in a bounded table so repeat reporters cost no allocation at
// all. On ANY deviation — escape sequences, unknown or duplicate keys,
// floats, nulls, invalid UTF-8, unusual time shapes — the fast path
// discards its partial work and the whole line is re-decoded by
// encoding/json, so Decode's accept/reject behavior and decoded values are
// exactly those of json.Unmarshal. FuzzBatchDecode checks that equivalence
// differentially.
//
// A ReportDecoder is not safe for concurrent use; pool one per worker.
type ReportDecoder struct {
	strs  map[string]string
	zones map[int]*time.Location
}

// decoderInternCap bounds the decoder's string intern table. IDs are at
// most MaxIDLength bytes, so a full table is ~2 MiB; past the cap new
// strings are still decoded correctly, just not remembered.
const decoderInternCap = 1 << 14

// NewReportDecoder returns a ready decoder.
func NewReportDecoder() *ReportDecoder {
	return &ReportDecoder{
		strs:  make(map[string]string),
		zones: make(map[int]*time.Location),
	}
}

// Decode parses one JSON report object into dst, reusing dst's readings
// storage across calls. dst is fully overwritten: fields absent from the
// input are zeroed, as json.Unmarshal into a fresh Report would leave
// them, except that a reused destination may keep a non-nil empty
// Readings slice where a fresh decode would leave nil — the two are
// indistinguishable to every consumer (only the length is read). The
// returned error, and the decoded value, are otherwise exactly what
// json.Unmarshal produces for the same input.
//wilint:hotpath
func (d *ReportDecoder) Decode(dst *Report, line []byte) error {
	resetReport(dst)
	if d.fast(dst, line) {
		return nil
	}
	// The fallback must not see stale state: zero the report again —
	// including the reused readings storage up to capacity, because
	// encoding/json reslices into it and only overwrites keys the input
	// names, which would otherwise leak old field values into elements.
	if r := dst.Scan.Readings; r != nil {
		clear(r[:cap(r)])
	}
	resetReport(dst)
	return json.Unmarshal(line, dst)
}

//wilint:hotpath
func resetReport(dst *Report) {
	readings := dst.Scan.Readings
	*dst = Report{}
	if readings != nil {
		dst.Scan.Readings = readings[:0]
	}
}

// fast hand-parses line into dst. A false return means "let encoding/json
// decide": the line may be malformed, or merely use a JSON feature the
// fast path declines to replicate.
//wilint:hotpath
func (d *ReportDecoder) fast(dst *Report, line []byte) bool {
	s := jscan{b: line}
	var seen uint8
	const (
		kBus = 1 << iota
		kRoute
		kPhone
		kScan
	)
	ok := s.object(func(key []byte) bool {
		var bit uint8
		switch string(key) { // compiled to comparisons; no allocation
		case "busId":
			bit = kBus
		case "routeId":
			bit = kRoute
		case "phoneId":
			bit = kPhone
		case "scan":
			bit = kScan
		default:
			// Unknown key (or a case-insensitive match encoding/json
			// would accept): fall back rather than replicate its value
			// skipping.
			return false
		}
		if seen&bit != 0 {
			// Duplicate keys re-merge under encoding/json; decline.
			return false
		}
		seen |= bit
		if bit == kScan {
			return d.scanObj(&s, &dst.Scan)
		}
		v, ok := s.str()
		if !ok {
			return false
		}
		switch bit {
		case kBus:
			//wilint:ignore hotpath intern's miss-path string(b) inlines here; steady state is a map hit
			dst.BusID = d.intern(v)
		case kRoute:
			//wilint:ignore hotpath intern's miss-path string(b) inlines here; steady state is a map hit
			dst.RouteID = d.intern(v)
		case kPhone:
			//wilint:ignore hotpath intern's miss-path string(b) inlines here; steady state is a map hit
			dst.PhoneID = d.intern(v)
		}
		return true
	})
	if !ok {
		return false
	}
	s.ws()
	return s.i == len(s.b) // trailing garbage is json.Unmarshal's error to report
}

//wilint:hotpath
func (d *ReportDecoder) scanObj(s *jscan, sc *wifi.Scan) bool {
	var seen uint8
	const (
		kTime uint8 = 1 << iota
		kReadings
	)
	return s.object(func(key []byte) bool {
		var bit uint8
		switch string(key) {
		case "time":
			bit = kTime
		case "readings":
			bit = kReadings
		default:
			return false
		}
		if seen&bit != 0 {
			return false
		}
		seen |= bit
		if bit == kTime {
			v, ok := s.str()
			if !ok {
				return false
			}
			t, ok := d.rfc3339(v)
			if !ok {
				return false
			}
			sc.Time = t
			return true
		}
		return d.readings(s, sc)
	})
}

//wilint:hotpath
func (d *ReportDecoder) readings(s *jscan, sc *wifi.Scan) bool {
	s.ws()
	if !s.eat('[') {
		return false
	}
	if sc.Readings == nil {
		// encoding/json leaves a non-nil empty slice for "[]"; match it.
		// One allocation on a buffer's first use, then reused forever.
		sc.Readings = make([]wifi.Reading, 0, 16) //wilint:ignore hotpath one-time warm-up, the buffer is reused forever after
	}
	s.ws()
	if s.eat(']') {
		return true
	}
	for {
		var rd wifi.Reading
		var seen uint8
		const (
			kBSSID uint8 = 1 << iota
			kRSSI
		)
		ok := s.object(func(key []byte) bool {
			var bit uint8
			switch string(key) {
			case "bssid":
				bit = kBSSID
			case "rssi":
				bit = kRSSI
			default:
				return false
			}
			if seen&bit != 0 {
				return false
			}
			seen |= bit
			if bit == kBSSID {
				v, ok := s.str()
				if !ok {
					return false
				}
				//wilint:ignore hotpath intern's miss-path string(b) inlines here; steady state is a map hit
			rd.BSSID = wifi.BSSID(d.intern(v))
				return true
			}
			v, ok := s.num()
			if !ok {
				return false
			}
			rd.RSSI = v
			return true
		})
		if !ok {
			return false
		}
		sc.Readings = append(sc.Readings, rd)
		s.ws()
		if s.eat(',') {
			s.ws()
			continue
		}
		return s.eat(']')
	}
}

// intern returns b as a string, remembering it (bounded) so the next
// occurrence costs a map probe instead of an allocation. The map index by
// string(b) compiles to a lookup without materializing the string.
//wilint:hotpath
func (d *ReportDecoder) intern(b []byte) string {
	if s, ok := d.strs[string(b)]; ok {
		return s
	}
	s := string(b) //wilint:ignore hotpath the one materialization per distinct ID; repeats hit the table above
	if len(d.strs) < decoderInternCap {
		d.strs[s] = s
	}
	return s
}

// rfc3339 parses the canonical RFC 3339 shape
// YYYY-MM-DDThh:mm:ss[.fffffffff](Z|±hh:mm) that time.Time.MarshalJSON
// emits, declining anything else (lowercase designators, leap seconds,
// out-of-range components, over-long fractions) to the encoding/json
// fallback so unusual inputs keep time.Time.UnmarshalJSON's exact verdict.
//wilint:hotpath
func (d *ReportDecoder) rfc3339(b []byte) (time.Time, bool) {
	if len(b) < 20 {
		return time.Time{}, false
	}
	year, ok1 := dig4(b[0:4])
	month, ok2 := dig2(b[5:7])
	day, ok3 := dig2(b[8:10])
	hour, ok4 := dig2(b[11:13])
	min, ok5 := dig2(b[14:16])
	sec, ok6 := dig2(b[17:19])
	if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6) ||
		b[4] != '-' || b[7] != '-' || b[10] != 'T' || b[13] != ':' || b[16] != ':' {
		return time.Time{}, false
	}
	if month < 1 || month > 12 || day < 1 || day > daysIn(year, month) ||
		hour > 23 || min > 59 || sec > 59 {
		return time.Time{}, false
	}
	i := 19
	nsec := 0
	if b[i] == '.' {
		i++
		start := i
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			nsec = nsec*10 + int(b[i]-'0')
			i++
		}
		n := i - start
		if n == 0 || n > 9 {
			return time.Time{}, false
		}
		for ; n < 9; n++ {
			nsec *= 10
		}
	}
	if i >= len(b) {
		return time.Time{}, false
	}
	var loc *time.Location
	switch b[i] {
	case 'Z':
		if i+1 != len(b) {
			return time.Time{}, false
		}
		loc = time.UTC
	case '+', '-':
		if i+6 != len(b) || b[i+3] != ':' {
			return time.Time{}, false
		}
		oh, ok1 := dig2(b[i+1 : i+3])
		om, ok2 := dig2(b[i+4 : i+6])
		if !ok1 || !ok2 || oh > 23 || om > 59 {
			return time.Time{}, false
		}
		off := (oh*60 + om) * 60
		if b[i] == '-' {
			off = -off
		}
		loc = d.zone(off)
	default:
		return time.Time{}, false
	}
	return time.Date(year, time.Month(month), day, hour, min, sec, nsec, loc), true
}

// zone caches one *time.Location per offset; phones in one metro share a
// single offset, so this is a lookup after the first report.
//wilint:hotpath
func (d *ReportDecoder) zone(offsetSec int) *time.Location {
	if offsetSec == 0 {
		return time.UTC
	}
	if l, ok := d.zones[offsetSec]; ok {
		return l
	}
	l := time.FixedZone("", offsetSec)
	d.zones[offsetSec] = l
	return l
}

//wilint:hotpath
func daysIn(year, month int) int {
	switch month {
	case 2:
		if year%4 == 0 && (year%100 != 0 || year%400 == 0) {
			return 29
		}
		return 28
	case 4, 6, 9, 11:
		return 30
	default:
		return 31
	}
}

//wilint:hotpath
func dig2(b []byte) (int, bool) {
	if b[0] < '0' || b[0] > '9' || b[1] < '0' || b[1] > '9' {
		return 0, false
	}
	return int(b[0]-'0')*10 + int(b[1]-'0'), true
}

//wilint:hotpath
func dig4(b []byte) (int, bool) {
	hi, ok1 := dig2(b[0:2])
	lo, ok2 := dig2(b[2:4])
	if !ok1 || !ok2 {
		return 0, false
	}
	return hi*100 + lo, true
}

// jscan is a minimal strict-subset JSON scanner. It never allocates;
// anything it cannot represent losslessly it refuses, and the caller
// re-parses with encoding/json.
type jscan struct {
	b []byte
	i int
}

//wilint:hotpath
func (s *jscan) ws() {
	for s.i < len(s.b) {
		switch s.b[s.i] {
		case ' ', '\t', '\r', '\n':
			s.i++
		default:
			return
		}
	}
}

//wilint:hotpath
func (s *jscan) eat(c byte) bool {
	if s.i < len(s.b) && s.b[s.i] == c {
		s.i++
		return true
	}
	return false
}

// object walks {"key": value, ...}, calling field at each value position;
// field must consume the value. Leading whitespace is accepted.
//wilint:hotpath
func (s *jscan) object(field func(key []byte) bool) bool {
	s.ws()
	if !s.eat('{') {
		return false
	}
	s.ws()
	if s.eat('}') {
		return true
	}
	for {
		key, ok := s.str()
		if !ok {
			return false
		}
		s.ws()
		if !s.eat(':') {
			return false
		}
		s.ws()
		if !field(key) {
			return false
		}
		s.ws()
		if s.eat(',') {
			s.ws()
			continue
		}
		return s.eat('}')
	}
}

// str scans a string literal, returning the raw bytes between the quotes.
// Escapes, control bytes and invalid UTF-8 (which encoding/json would
// decode or coerce) decline to the fallback.
//wilint:hotpath
func (s *jscan) str() ([]byte, bool) {
	if !s.eat('"') {
		return nil, false
	}
	start := s.i
	ascii := true
	for s.i < len(s.b) {
		c := s.b[s.i]
		switch {
		case c == '"':
			v := s.b[start:s.i]
			s.i++
			if !ascii && !utf8.Valid(v) {
				return nil, false
			}
			return v, true
		case c == '\\' || c < 0x20:
			return nil, false
		case c >= utf8.RuneSelf:
			ascii = false
		}
		s.i++
	}
	return nil, false
}

// num scans a JSON integer that fits an int. Floats, exponents, leading
// zeros and over-long digit runs decline to the fallback.
//wilint:hotpath
func (s *jscan) num() (int, bool) {
	neg := false
	if s.i < len(s.b) && s.b[s.i] == '-' {
		neg = true
		s.i++
	}
	start := s.i
	for s.i < len(s.b) && s.b[s.i] >= '0' && s.b[s.i] <= '9' {
		s.i++
	}
	n := s.i - start
	if n == 0 || n > 18 || (n > 1 && s.b[start] == '0') {
		return 0, false
	}
	if s.i < len(s.b) {
		switch s.b[s.i] {
		case '.', 'e', 'E':
			return 0, false
		}
	}
	x := 0
	for _, c := range s.b[start:s.i] {
		x = x*10 + int(c-'0')
	}
	if neg {
		x = -x
	}
	return x, true
}
