package api

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"wilocator/internal/wifi"
)

func TestReportJSONRoundTrip(t *testing.T) {
	in := Report{
		BusID:   "bus-9",
		RouteID: "9",
		PhoneID: "rider-3",
		Scan: wifi.Scan{
			Time: time.Date(2016, 3, 7, 8, 0, 10, 0, time.UTC),
			Readings: []wifi.Reading{
				{BSSID: "ap-0001", RSSI: -61},
				{BSSID: "ap-0002", RSSI: -74},
			},
		},
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Report
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.BusID != in.BusID || out.RouteID != in.RouteID || out.PhoneID != in.PhoneID {
		t.Errorf("round trip lost ids: %+v", out)
	}
	if len(out.Scan.Readings) != 2 || out.Scan.Readings[0].RSSI != -61 {
		t.Errorf("round trip lost readings: %+v", out.Scan)
	}
	if !out.Scan.Time.Equal(in.Scan.Time) {
		t.Errorf("round trip lost time: %v", out.Scan.Time)
	}
}

// TestWireFieldNames pins the JSON contract: renaming Go fields must not
// silently change the wire format phones and apps depend on.
func TestWireFieldNames(t *testing.T) {
	b, err := json.Marshal(Report{BusID: "b", RouteID: "r", PhoneID: "p"})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"busId"`, `"routeId"`, `"phoneId"`, `"scan"`} {
		if !contains(b, key) {
			t.Errorf("report JSON missing %s: %s", key, b)
		}
	}

	vb, err := json.Marshal(VehicleStatus{BusID: "b"})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"busId"`, `"arc"`, `"pos"`, `"speed"`, `"updated"`} {
		if !contains(vb, key) {
			t.Errorf("vehicle JSON missing %s: %s", key, vb)
		}
	}

	ab, err := json.Marshal(ArrivalEstimate{StopIndex: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"stopIndex"`, `"stopName"`, `"eta"`} {
		if !contains(ab, key) {
			t.Errorf("arrival JSON missing %s: %s", key, ab)
		}
	}

	eb, err := json.Marshal(Error{Message: "nope"})
	if err != nil {
		t.Fatal(err)
	}
	if string(eb) != `{"error":"nope"}` {
		t.Errorf("error envelope = %s", eb)
	}
}

func TestIngestResponseOmitsArcWhenAbsent(t *testing.T) {
	b, err := json.Marshal(IngestResponse{Accepted: true})
	if err != nil {
		t.Fatal(err)
	}
	if contains(b, `"arc"`) {
		t.Errorf("arc serialised despite omitempty: %s", b)
	}
	b, err = json.Marshal(IngestResponse{Accepted: true, Located: true, Arc: 12.5})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(b, `"arc":12.5`) {
		t.Errorf("arc missing when located: %s", b)
	}
}

func contains(b []byte, sub string) bool {
	return bytes.Contains(b, []byte(sub))
}
