package predict

import (
	"testing"
	"testing/quick"
	"time"

	"wilocator/internal/traveltime"
)

// TestETAMonotoneInStopIndex: from a fixed position and time, predicted
// arrivals are non-decreasing in stop index — a rider can never "arrive
// earlier" at a farther stop.
func TestETAMonotoneInStopIndex(t *testing.T) {
	net, route := lineNet(t, 8)
	store := traveltime.NewStore(traveltime.PaperPlan())
	for i, seg := range route.Segments() {
		for k := 0; k < 3; k++ {
			addRec(t, store, seg, "r", midday(-100+k+i), 30+float64(i%4)*10)
		}
	}
	w, err := NewWiLocator(net, store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(rawArc uint16, rawMin uint8) bool {
		fromArc := float64(rawArc) / 65535 * route.Length() * 0.9
		at := midday(int(rawMin % 120))
		prev := time.Time{}
		for m := route.NextStopIndex(fromArc); m < route.NumStops(); m++ {
			eta, err := w.PredictArrival("r", fromArc, at, m)
			if err != nil {
				return false
			}
			if eta.Before(at) {
				return false
			}
			if !prev.IsZero() && eta.Before(prev) {
				return false
			}
			prev = eta
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestETAMonotoneInPosition: moving the bus forward never pushes the ETA at
// a fixed stop later under a time-invariant store (closer bus, earlier or
// equal arrival).
func TestETAMonotoneInPosition(t *testing.T) {
	net, route := lineNet(t, 6)
	store := traveltime.NewStore(traveltime.PaperPlan())
	for i, seg := range route.Segments() {
		addRec(t, store, seg, "r", midday(-90+i), 45)
	}
	a, err := NewAgency(net, store, Config{}) // recency-free: pure composition
	if err != nil {
		t.Fatal(err)
	}
	target := route.NumStops() - 1
	at := midday(0)
	prevETA := time.Time{}
	for arc := 0.0; arc < route.StopArc(target); arc += 37 {
		eta, err := a.PredictArrival("r", arc, at, target)
		if err != nil {
			t.Fatal(err)
		}
		if !prevETA.IsZero() && eta.After(prevETA.Add(time.Millisecond)) {
			t.Fatalf("ETA increased as the bus advanced: %v -> %v at arc %v", prevETA, eta, arc)
		}
		prevETA = eta
	}
}

// TestSegmentTimePositive: predictions are always strictly positive and at
// least free flow, whatever the store contents.
func TestSegmentTimePositive(t *testing.T) {
	net, route := lineNet(t, 3)
	store := traveltime.NewStore(traveltime.PaperPlan())
	w, err := NewWiLocator(net, store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(rawMin uint16, secs uint8) bool {
		at := midday(int(rawMin % 1440))
		seg := route.Segments()[int(rawMin)%route.NumSegments()]
		if secs > 0 {
			addRec(t, store, seg, "r", at.Add(-30*time.Minute), float64(secs))
		}
		got, err := w.SegmentTime(seg, "r", at)
		return err == nil && got > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
