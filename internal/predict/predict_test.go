package predict

import (
	"errors"
	"math"
	"testing"
	"time"

	"wilocator/internal/geo"
	"wilocator/internal/roadnet"
	"wilocator/internal/traveltime"
)

// lineNet builds a straight route of n segments, each 100 m, limit 10 m/s,
// with a stop at every node (n+1 stops).
func lineNet(t *testing.T, n int) (*roadnet.Network, *roadnet.Route) {
	t.Helper()
	g := roadnet.NewGraph()
	nodes := make([]roadnet.NodeID, n+1)
	for i := range nodes {
		nodes[i] = g.AddNode(geo.Pt(float64(i)*100, 0), "n")
	}
	segs := make([]roadnet.SegmentID, n)
	for i := 0; i < n; i++ {
		id, err := g.AddSegment(nodes[i], nodes[i+1], "s", 10, false)
		if err != nil {
			t.Fatal(err)
		}
		segs[i] = id
	}
	route, err := roadnet.NewRoute(g, "r", "line", roadnet.ClassOrdinary, segs)
	if err != nil {
		t.Fatal(err)
	}
	if err := route.PlaceStopsEvenly(n + 1); err != nil {
		t.Fatal(err)
	}
	net := roadnet.NewNetwork(g)
	if err := net.AddRoute(route); err != nil {
		t.Fatal(err)
	}
	// A second route over the same segments to exercise cross-route sharing.
	r2, err := roadnet.NewRoute(g, "x", "other", roadnet.ClassOrdinary, segs)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.PlaceStopsEvenly(2); err != nil {
		t.Fatal(err)
	}
	if err := net.AddRoute(r2); err != nil {
		t.Fatal(err)
	}
	return net, route
}

func midday(min int) time.Time {
	return time.Date(2016, 3, 7, 13, 0, 0, 0, time.UTC).Add(time.Duration(min) * time.Minute)
}

func addRec(t *testing.T, s *traveltime.Store, seg roadnet.SegmentID, route string, enter time.Time, secs float64) {
	t.Helper()
	err := s.Add(traveltime.Record{
		Seg: seg, RouteID: route, Enter: enter,
		Exit: enter.Add(time.Duration(secs * float64(time.Second))),
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewEngineValidation(t *testing.T) {
	net, _ := lineNet(t, 2)
	store := traveltime.NewStore(traveltime.PaperPlan())
	if _, err := NewWiLocator(nil, store, Config{}); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := NewAgency(net, nil, Config{}); err == nil {
		t.Error("nil store accepted")
	}
	w, err := NewWiLocator(net, store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "wilocator" {
		t.Errorf("Name = %q", w.Name())
	}
	a, err := NewAgency(net, store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "agency" {
		t.Errorf("Name = %q", a.Name())
	}
	sr, err := NewWiLocator(net, store, Config{SameRouteOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Name() != "wilocator-sameroute" {
		t.Errorf("Name = %q", sr.Name())
	}
}

func TestSegmentTimeFallbacks(t *testing.T) {
	net, route := lineNet(t, 2)
	store := traveltime.NewStore(traveltime.PaperPlan())
	w, err := NewWiLocator(net, store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	seg := route.Segments()[0]
	// No data at all: free flow at 60% of the 10 m/s limit over 100 m.
	got, err := w.SegmentTime(seg, "r", midday(0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-100.0/6.0) > 1e-9 {
		t.Errorf("free-flow fallback = %v, want %v", got, 100.0/6.0)
	}
	// Another route's data exists: fall back to the segment mean.
	addRec(t, store, seg, "x", midday(-60), 44)
	got, err = w.SegmentTime(seg, "r", midday(0))
	if err != nil {
		t.Fatal(err)
	}
	// Segment mean 44 plus the recency correction from route x's traversal
	// is out of window (60 min ago > 25 min), so correction is 0.
	if math.Abs(got-44) > 1e-9 {
		t.Errorf("segment-mean fallback = %v, want 44", got)
	}
	if _, err := w.SegmentTime(9999, "r", midday(0)); err == nil {
		t.Error("unknown segment accepted")
	}
}

func TestSegmentTimeRecencyCorrection(t *testing.T) {
	net, route := lineNet(t, 2)
	store := traveltime.NewStore(traveltime.PaperPlan())
	seg := route.Segments()[0]
	// History (out of the recent window but in the same 10-18h slot):
	// route r takes 60 s, route x 80 s.
	for i := 0; i < 10; i++ {
		addRec(t, store, seg, "r", midday(-120+i), 60)
		addRec(t, store, seg, "x", midday(-120+i), 80)
	}
	// Lately: two buses of route x took 20 s longer than their norm.
	addRec(t, store, seg, "x", midday(-10), 100)
	addRec(t, store, seg, "x", midday(-5), 100)

	w, err := NewWiLocator(net, store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := w.SegmentTime(seg, "r", midday(0))
	if err != nil {
		t.Fatal(err)
	}
	// Recent ring also contains the history rows? No: they exited > 25 min
	// ago. Correction = mean(100-80, 100-80) = +20 on top of Th = 60... but
	// the two recent records shifted route x's own historical mean to
	// (80*10+200)/12 = 83.33, so the residual is 16.67.
	want := 60 + (100 - (80.0*10+200)/12)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("corrected time = %v, want %v", got, want)
	}

	// Agency ignores the recent slowdown entirely.
	a, err := NewAgency(net, store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ag, err := a.SegmentTime(seg, "r", midday(0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ag-60) > 1e-9 {
		t.Errorf("agency time = %v, want 60", ag)
	}

	// Same-route-only cannot see route x's residuals either.
	sr, err := NewWiLocator(net, store, Config{SameRouteOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	sg, err := sr.SegmentTime(seg, "r", midday(0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sg-60) > 1e-9 {
		t.Errorf("same-route time = %v, want 60", sg)
	}
}

func TestSegmentTimeClampsAtFreeFlow(t *testing.T) {
	net, route := lineNet(t, 1)
	store := traveltime.NewStore(traveltime.PaperPlan())
	seg := route.Segments()[0]
	for i := 0; i < 5; i++ {
		addRec(t, store, seg, "r", midday(-200+i), 12)
	}
	// Lately a bus flew through 10 s faster than its 12 s norm; the
	// correction would predict 2 s < the 10 s free-flow bound.
	addRec(t, store, seg, "r", midday(-3), 2)
	w, err := NewWiLocator(net, store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := w.SegmentTime(seg, "r", midday(0))
	if err != nil {
		t.Fatal(err)
	}
	if got < 10 {
		t.Errorf("prediction %v below free flow 10 s", got)
	}
}

func TestPredictArrivalComposition(t *testing.T) {
	net, route := lineNet(t, 3) // 3 segments, stops at 0/100/200/300
	store := traveltime.NewStore(traveltime.PaperPlan())
	// Uniform history: every segment takes 50 s for route r.
	for i, seg := range route.Segments() {
		for k := 0; k < 5; k++ {
			addRec(t, store, seg, "r", midday(-100+k+i), 50)
		}
	}
	a, err := NewAgency(net, store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Bus halfway through segment 0 (arc 50), to the stop at arc 250?
	// Stops are at 0,100,200,300. Stop 2 is at 200: remaining = half of
	// seg0 (25 s) + seg1 (50 s) = 75 s.
	eta, err := a.PredictArrival("r", 50, midday(0), 2)
	if err != nil {
		t.Fatal(err)
	}
	want := midday(0).Add(75 * time.Second)
	if d := eta.Sub(want); d < -time.Second || d > time.Second {
		t.Errorf("eta = %v, want %v", eta, want)
	}
	// Final stop at arc 300: 25 + 50 + 50 = 125 s.
	eta, err = a.PredictArrival("r", 50, midday(0), 3)
	if err != nil {
		t.Fatal(err)
	}
	want = midday(0).Add(125 * time.Second)
	if d := eta.Sub(want); d < -time.Second || d > time.Second {
		t.Errorf("final eta = %v, want %v", eta, want)
	}
}

func TestPredictArrivalErrors(t *testing.T) {
	net, _ := lineNet(t, 2)
	store := traveltime.NewStore(traveltime.PaperPlan())
	w, err := NewWiLocator(net, store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.PredictArrival("nope", 0, midday(0), 1); err == nil {
		t.Error("unknown route accepted")
	}
	if _, err := w.PredictArrival("r", 0, midday(0), 99); err == nil {
		t.Error("bad stop index accepted")
	}
	if _, err := w.PredictArrival("r", 150, midday(0), 1); !errors.Is(err, ErrStopBehind) {
		t.Errorf("stop behind: err = %v", err)
	}
}

func TestPredictArrivalSlotBySlot(t *testing.T) {
	net, route := lineNet(t, 2)
	store := traveltime.NewStore(traveltime.PaperPlan())
	// Pre-rush (slot 0): 60 s per segment. Rush (slot 1, from 8h): 300 s.
	pre := time.Date(2016, 3, 7, 7, 0, 0, 0, time.UTC)
	rush := time.Date(2016, 3, 7, 8, 30, 0, 0, time.UTC)
	for i, seg := range route.Segments() {
		for k := 0; k < 5; k++ {
			addRec(t, store, seg, "r", pre.Add(time.Duration(i*10+k)*time.Minute), 60)
			addRec(t, store, seg, "r", rush.Add(time.Duration(i*10+k)*time.Minute), 300)
		}
	}
	a, err := NewAgency(net, store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Depart at 7:59:30 from arc 0. Segment 0 is predicted with the
	// pre-rush clock (60 s), pushing the virtual clock past 8:00; segment 1
	// must then use the rush mean (300 s), not 60 s.
	depart := time.Date(2016, 3, 7, 7, 59, 30, 0, time.UTC)
	eta, err := a.PredictArrival("r", 0, depart, 2)
	if err != nil {
		t.Fatal(err)
	}
	total := eta.Sub(depart)
	if total < 350*time.Second {
		t.Errorf("slot-blind prediction: total %v, want ~360 s (60 + 300)", total)
	}
}

func TestPredictAllStops(t *testing.T) {
	net, route := lineNet(t, 4)
	store := traveltime.NewStore(traveltime.PaperPlan())
	for _, seg := range route.Segments() {
		addRec(t, store, seg, "r", midday(-60), 40)
	}
	w, err := NewWiLocator(net, store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	preds, err := w.PredictAllStops("r", 150, midday(0))
	if err != nil {
		t.Fatal(err)
	}
	// Stops ahead of arc 150: indices 2, 3, 4.
	if len(preds) != 3 || preds[0].StopIndex != 2 {
		t.Fatalf("preds = %v", preds)
	}
	for i := 1; i < len(preds); i++ {
		if !preds[i].ETA.After(preds[i-1].ETA) {
			t.Error("ETAs not increasing with stop index")
		}
	}
	if _, err := w.PredictAllStops("nope", 0, midday(0)); err == nil {
		t.Error("unknown route accepted")
	}
}
