// Package predict implements WiLocator's bus arrival-time prediction
// (Section IV) plus the comparison baselines used in the evaluation.
//
// The WiLocator predictor estimates the travel time of the next bus of route
// j on road segment e_i as (Eq. 5/8):
//
//	Tp(i,j,t) = Th(i,j,l) + (1/K) * Σ_k [ Tr(i,k,l) − Th(i,k,l) ]
//
// — the route's own historical mean in the current time slot l, corrected by
// the mean residual of the K buses (of *any* route sharing the segment) that
// most recently traversed it. Arrival times at downstream stops compose
// per-segment predictions with fractional first/last segments (Eq. 9),
// advancing a virtual clock so predictions that span a slot boundary are
// evaluated slot-by-slot.
//
// The Transit-Agency baseline uses the same composition but no recency
// correction (schedule + historical mean only), and the same-route ablation
// restricts the correction to buses of the same route (the approach of the
// paper's references [28,29]).
package predict

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"wilocator/internal/roadnet"
	"wilocator/internal/traveltime"
)

// Default prediction parameters.
const (
	// DefaultRecentWindow bounds how old a "lately" traversal may be to
	// enter the Eq. 8 correction.
	DefaultRecentWindow = 25 * time.Minute
	// DefaultMaxRecent is J, the number of recent buses averaged.
	DefaultMaxRecent = 8
	// DefaultFallbackSpeedFrac estimates unseen segments at this fraction
	// of the speed limit.
	DefaultFallbackSpeedFrac = 0.6
)

// ErrStopBehind is returned when the requested stop is not ahead of the
// bus's current position.
var ErrStopBehind = errors.New("predict: stop is not ahead of the bus")

// Config tunes an Engine. The zero value selects the defaults.
type Config struct {
	// RecentWindow is the maximum age of traversals used in the correction.
	RecentWindow time.Duration
	// MaxRecent is J, the maximum number of recent traversals averaged.
	MaxRecent int
	// SameRouteOnly restricts the correction to the bus's own route — the
	// ablation contrasting WiLocator with Cell-ID systems that cannot share
	// across routes.
	SameRouteOnly bool
	// FallbackSpeedFrac sets the free-flow fraction for unseen segments.
	FallbackSpeedFrac float64
}

func (c Config) withDefaults() Config {
	if c.RecentWindow <= 0 {
		c.RecentWindow = DefaultRecentWindow
	}
	if c.MaxRecent <= 0 {
		c.MaxRecent = DefaultMaxRecent
	}
	if c.FallbackSpeedFrac <= 0 || c.FallbackSpeedFrac > 1 {
		c.FallbackSpeedFrac = DefaultFallbackSpeedFrac
	}
	return c
}

// Metrics counts SegmentTime's rule outcomes: which baseline each
// per-segment prediction started from, and whether the Eq. 8 recency
// correction was actually applied. All fields are atomics; one Metrics may
// be shared by concurrent predictions. Attach with Engine.SetMetrics.
type Metrics struct {
	// HistoricalMean counts predictions whose baseline was the route's own
	// historical mean in the current time slot (the Eq. 5 term).
	HistoricalMean atomic.Uint64
	// SegmentMeanFallback counts predictions that fell back to the
	// segment's all-route mean (no route history in the slot yet).
	SegmentMeanFallback atomic.Uint64
	// FreeFlowFallback counts predictions estimated from the speed limit
	// (segment never traversed).
	FreeFlowFallback atomic.Uint64
	// CorrectionApplied counts predictions whose baseline was corrected by
	// at least one recent traversal (the cross-route Eq. 8 term, K > 0).
	CorrectionApplied atomic.Uint64
}

// Engine predicts bus arrival times from the travel-time store.
type Engine struct {
	net       *roadnet.Network
	store     *traveltime.Store
	cfg       Config
	useRecent bool
	name      string
	metrics   *Metrics // nil: unobserved
}

// SetMetrics attaches outcome counters to the engine. Pass nil to detach.
// Not safe to race with in-flight predictions; attach at wiring time.
func (e *Engine) SetMetrics(m *Metrics) { e.metrics = m }

// NewWiLocator creates the full WiLocator predictor.
func NewWiLocator(net *roadnet.Network, store *traveltime.Store, cfg Config) (*Engine, error) {
	return newEngine(net, store, cfg, true, "wilocator")
}

// NewAgency creates the Transit-Agency baseline: historical means only, no
// recency correction.
func NewAgency(net *roadnet.Network, store *traveltime.Store, cfg Config) (*Engine, error) {
	return newEngine(net, store, cfg, false, "agency")
}

func newEngine(net *roadnet.Network, store *traveltime.Store, cfg Config, useRecent bool, name string) (*Engine, error) {
	if net == nil || store == nil {
		return nil, errors.New("predict: nil network or store")
	}
	return &Engine{net: net, store: store, cfg: cfg.withDefaults(), useRecent: useRecent, name: name}, nil
}

// Name identifies the engine variant ("wilocator" or "agency").
func (e *Engine) Name() string {
	if e.useRecent && e.cfg.SameRouteOnly {
		return e.name + "-sameroute"
	}
	return e.name
}

// SegmentTime predicts how long a bus of routeID will take to traverse
// segment segID starting at time at (Eq. 8), in seconds.
func (e *Engine) SegmentTime(segID roadnet.SegmentID, routeID string, at time.Time) (float64, error) {
	seg, ok := e.net.Graph.Segment(segID)
	if !ok {
		return 0, fmt.Errorf("predict: unknown segment %d", segID)
	}
	slot := e.store.Plan().SlotOf(at)
	th, n := e.store.HistoricalMean(segID, routeID, slot)
	if n == 0 {
		// Fall back to the segment's all-route mean, then to free flow.
		if m, sn := e.store.SegmentMean(segID); sn > 0 {
			th = m
			if e.metrics != nil {
				e.metrics.SegmentMeanFallback.Add(1)
			}
		} else {
			th = seg.Length() / (seg.SpeedLimit * e.cfg.FallbackSpeedFrac)
			if e.metrics != nil {
				e.metrics.FreeFlowFallback.Add(1)
			}
		}
	} else if e.metrics != nil {
		e.metrics.HistoricalMean.Add(1)
	}
	if !e.useRecent {
		return th, nil
	}

	recent := e.store.Recent(segID, at.Add(-e.cfg.RecentWindow), e.cfg.MaxRecent)
	var sum float64
	k := 0
	for _, tr := range recent {
		if e.cfg.SameRouteOnly && tr.RouteID != routeID {
			continue
		}
		// Eq. 8 uses Tr(i,k,l): only traversals from the *current* slot l,
		// so a pre-rush residual never corrupts a rush-hour baseline.
		if e.store.Plan().SlotOf(tr.Exit) != slot {
			continue
		}
		thk, nk := e.store.HistoricalMean(segID, tr.RouteID, slot)
		if nk == 0 {
			continue
		}
		sum += tr.Seconds - thk
		k++
	}
	if k > 0 {
		th += sum / float64(k)
		if e.metrics != nil {
			e.metrics.CorrectionApplied.Add(1)
		}
	}
	// Never predict faster than free flow at the speed limit.
	if min := seg.Length() / seg.SpeedLimit; th < min {
		th = min
	}
	return th, nil
}

// PredictArrival predicts when a bus of routeID currently at arc fromArc (at
// time at) will reach its stopIdx-th stop, composing per-segment predictions
// with fractional first and last segments (Eq. 9).
func (e *Engine) PredictArrival(routeID string, fromArc float64, at time.Time, stopIdx int) (time.Time, error) {
	route, ok := e.net.Route(routeID)
	if !ok {
		return time.Time{}, fmt.Errorf("predict: unknown route %q", routeID)
	}
	if stopIdx < 0 || stopIdx >= route.NumStops() {
		return time.Time{}, fmt.Errorf("predict: stop index %d outside [0, %d)", stopIdx, route.NumStops())
	}
	target := route.StopArc(stopIdx)
	if target <= fromArc {
		return time.Time{}, fmt.Errorf("%w: stop %d at arc %.1f, bus at %.1f", ErrStopBehind, stopIdx, target, fromArc)
	}

	clock := at
	arc := fromArc
	idx, _, _ := route.SegmentAt(arc)
	for {
		segID := route.Segments()[idx]
		segStart := route.SegmentStartArc(idx)
		segEnd := route.SegmentEndArc(idx)
		segLen := segEnd - segStart
		full, err := e.SegmentTime(segID, routeID, clock)
		if err != nil {
			return time.Time{}, err
		}
		end := segEnd
		if target < segEnd {
			end = target
		}
		if segLen > 0 {
			frac := (end - arc) / segLen
			clock = clock.Add(time.Duration(frac * full * float64(time.Second)))
		}
		if target <= segEnd {
			return clock, nil
		}
		arc = segEnd
		idx++
		if idx >= route.NumSegments() {
			return clock, nil
		}
	}
}

// PredictAllStops predicts arrival times at every stop strictly ahead of
// fromArc, returned in stop order alongside the stop indices. Used by the
// error-vs-stops experiment (Fig. 8(c)).
func (e *Engine) PredictAllStops(routeID string, fromArc float64, at time.Time) ([]StopPrediction, error) {
	route, ok := e.net.Route(routeID)
	if !ok {
		return nil, fmt.Errorf("predict: unknown route %q", routeID)
	}
	var out []StopPrediction
	for i := route.NextStopIndex(fromArc); i < route.NumStops(); i++ {
		eta, err := e.PredictArrival(routeID, fromArc, at, i)
		if err != nil {
			return nil, err
		}
		out = append(out, StopPrediction{StopIndex: i, ETA: eta})
	}
	return out, nil
}

// StopPrediction is one stop's predicted arrival.
type StopPrediction struct {
	StopIndex int       `json:"stopIndex"`
	ETA       time.Time `json:"eta"`
}
