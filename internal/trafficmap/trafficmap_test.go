package trafficmap

import (
	"math"
	"strings"
	"testing"
	"time"

	"wilocator/internal/geo"
	"wilocator/internal/locate"
	"wilocator/internal/roadnet"
	"wilocator/internal/traveltime"
)

func midday(min int) time.Time {
	return time.Date(2016, 3, 7, 13, 0, 0, 0, time.UTC).Add(time.Duration(min) * time.Minute)
}

// mapNet builds a 3-segment route.
func mapNet(t *testing.T) (*roadnet.Network, *roadnet.Route) {
	t.Helper()
	g := roadnet.NewGraph()
	nodes := make([]roadnet.NodeID, 4)
	for i := range nodes {
		nodes[i] = g.AddNode(geo.Pt(float64(i)*200, 0), "n")
	}
	segs := make([]roadnet.SegmentID, 3)
	for i := 0; i < 3; i++ {
		id, err := g.AddSegment(nodes[i], nodes[i+1], "s", 10, false)
		if err != nil {
			t.Fatal(err)
		}
		segs[i] = id
	}
	route, err := roadnet.NewRoute(g, "r", "r", roadnet.ClassOrdinary, segs)
	if err != nil {
		t.Fatal(err)
	}
	if err := route.PlaceStopsEvenly(2); err != nil {
		t.Fatal(err)
	}
	net := roadnet.NewNetwork(g)
	if err := net.AddRoute(route); err != nil {
		t.Fatal(err)
	}
	return net, route
}

// seedHistory adds n historical traversals with the given mean and +-spread.
func seedHistory(t *testing.T, s *traveltime.Store, seg roadnet.SegmentID, route string, n int, mean, spread float64) {
	t.Helper()
	for i := 0; i < n; i++ {
		secs := mean + spread*float64(i%3-1) // mean-spread, mean, mean+spread
		// Keep history inside the midday (10-18h) slot but outside the
		// recent-evidence window.
		enter := midday(-150 + i)
		err := s.Add(traveltime.Record{
			Seg: seg, RouteID: route, Enter: enter,
			Exit: enter.Add(time.Duration(secs * float64(time.Second))),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestConditionStrings(t *testing.T) {
	tests := []struct {
		c Condition
		s string
		r rune
	}{
		{Normal, "normal", '-'},
		{Slow, "slow", 's'},
		{VerySlow, "very-slow", 'S'},
		{Unknown, "unknown", '?'},
	}
	for _, tt := range tests {
		if tt.c.String() != tt.s || tt.c.Rune() != tt.r {
			t.Errorf("%d: %q %q", int(tt.c), tt.c.String(), string(tt.c.Rune()))
		}
	}
}

func TestNewGeneratorValidation(t *testing.T) {
	net, _ := mapNet(t)
	store := traveltime.NewStore(traveltime.PaperPlan())
	if _, err := NewGenerator(nil, store, Config{}); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := NewAgencyStyle(net, nil, Config{}); err == nil {
		t.Error("nil store accepted")
	}
}

func TestClassifyNormalSlowVerySlow(t *testing.T) {
	net, route := mapNet(t)
	store := traveltime.NewStore(traveltime.PaperPlan())
	seg := route.Segments()[0]
	seedHistory(t, store, seg, "r", 30, 60, 5) // sigma ~ 4.1

	g, err := NewGenerator(net, store, Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Fresh traversal at the historical mean: normal.
	add := func(secs float64, minAgo int) {
		t.Helper()
		enter := midday(-minAgo)
		err := store.Add(traveltime.Record{
			Seg: seg, RouteID: "r", Enter: enter,
			Exit: enter.Add(time.Duration(secs * float64(time.Second))),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	add(60, 5)
	st := g.Classify(seg, midday(0))
	if st.Condition != Normal || st.Inferred {
		t.Errorf("normal case: %+v", st)
	}

	// A crawl far beyond the historical spread: very slow.
	add(200, 3)
	add(200, 2)
	add(200, 1)
	st = g.Classify(seg, midday(0))
	if st.Condition != VerySlow {
		t.Errorf("crawl case: %+v", st)
	}
	if st.Z >= DefaultVerySlowZ {
		t.Errorf("z = %v, want < %v", st.Z, DefaultVerySlowZ)
	}
}

func TestClassifyInferenceVsUnconfirmed(t *testing.T) {
	net, route := mapNet(t)
	store := traveltime.NewStore(traveltime.PaperPlan())
	segFresh := route.Segments()[0]
	segStale := route.Segments()[1]
	seedHistory(t, store, segFresh, "r", 30, 60, 5)
	seedHistory(t, store, segStale, "r", 30, 60, 5)
	// Only segFresh has a recent traversal.
	err := store.Add(traveltime.Record{
		Seg: segFresh, RouteID: "r", Enter: midday(-4),
		Exit: midday(-4).Add(60 * time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}

	wil, err := NewGenerator(net, store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ag, err := NewAgencyStyle(net, store, Config{})
	if err != nil {
		t.Fatal(err)
	}

	// WiLocator marks everything.
	wm := wil.Map(midday(0))
	if cov := Coverage(wm); cov != 1 {
		t.Errorf("wilocator coverage = %v, want 1", cov)
	}
	for _, st := range wm {
		if st.Seg == segStale && !st.Inferred {
			t.Error("stale segment not flagged as inferred")
		}
	}

	// The agency-style map leaves stale segments unconfirmed.
	am := ag.Map(midday(0))
	if cov := Coverage(am); cov >= 1 {
		t.Errorf("agency coverage = %v, want < 1", cov)
	}
	found := false
	for _, st := range am {
		if st.Seg == segStale {
			found = true
			if st.Condition != Unknown {
				t.Errorf("stale segment condition = %v, want unknown", st.Condition)
			}
		}
	}
	if !found {
		t.Fatal("stale segment missing from map")
	}

	// Rendering shows the coverage difference.
	if !strings.ContainsRune(Render(am), '?') {
		t.Error("agency render has no unconfirmed glyph")
	}
	if strings.ContainsRune(Render(wm), '?') {
		t.Error("wilocator render has unconfirmed glyph")
	}
}

func TestMapForRoute(t *testing.T) {
	net, route := mapNet(t)
	store := traveltime.NewStore(traveltime.PaperPlan())
	g, err := NewGenerator(net, store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sts, err := g.MapForRoute("r", midday(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != route.NumSegments() {
		t.Errorf("route map has %d entries", len(sts))
	}
	if _, err := g.MapForRoute("nope", midday(0)); err == nil {
		t.Error("unknown route accepted")
	}
}

func trajFrom(arcs []float64, stepSec int) []locate.TrajectoryPoint {
	t0 := midday(0)
	out := make([]locate.TrajectoryPoint, len(arcs))
	for i, a := range arcs {
		out[i] = locate.TrajectoryPoint{Time: t0.Add(time.Duration(i*stepSec) * time.Second), Arc: a}
	}
	return out
}

func TestDetectAnomalies(t *testing.T) {
	// Bus advances 80 m per scan, then crawls (5 m per scan) around arc
	// 400, then resumes.
	arcs := []float64{0, 80, 160, 240, 320, 400, 405, 410, 415, 420, 500, 580}
	traj := trajFrom(arcs, 10)
	anoms := DetectAnomalies(traj, 20, 3, nil, 0)
	if len(anoms) != 1 {
		t.Fatalf("anomalies = %+v", anoms)
	}
	a := anoms[0]
	if a.StartArc != 400 || a.EndArc != 420 {
		t.Errorf("anomaly span = [%v, %v], want [400, 420]", a.StartArc, a.EndArc)
	}
	if !a.End.After(a.Start) {
		t.Error("anomaly times wrong")
	}
}

func TestDetectAnomaliesExcludesStops(t *testing.T) {
	arcs := []float64{0, 80, 160, 165, 170, 175, 240, 320}
	traj := trajFrom(arcs, 10)
	// The crawl is centred near arc 167.5 — a bus stop there explains it.
	anoms := DetectAnomalies(traj, 20, 3, []float64{170}, 25)
	if len(anoms) != 0 {
		t.Errorf("stop dwell flagged as anomaly: %+v", anoms)
	}
	// Without the exclusion it is detected.
	if got := DetectAnomalies(traj, 20, 3, nil, 0); len(got) != 1 {
		t.Errorf("anomaly not found without exclusions: %+v", got)
	}
}

func TestDetectAnomaliesMinPoints(t *testing.T) {
	arcs := []float64{0, 80, 85, 160, 240}
	traj := trajFrom(arcs, 10)
	if got := DetectAnomalies(traj, 20, 3, nil, 0); len(got) != 0 {
		t.Errorf("2-point blip flagged: %+v", got)
	}
	// Trailing run that reaches the end of the trajectory is flushed.
	tail := trajFrom([]float64{0, 80, 160, 165, 170, 175}, 10)
	if got := DetectAnomalies(tail, 20, 3, nil, 0); len(got) != 1 {
		t.Errorf("trailing anomaly missed: %+v", got)
	}
	if got := DetectAnomalies(nil, 20, 3, nil, 0); len(got) != 0 {
		t.Error("empty trajectory produced anomalies")
	}
}

func TestDeltaFromHistory(t *testing.T) {
	d := DeltaFromHistory(8, 10*time.Second, 0.35)
	if math.Abs(d-28) > 1e-9 {
		t.Errorf("delta = %v, want 28", d)
	}
	if d := DeltaFromHistory(8, 10*time.Second, 0); math.Abs(d-28) > 1e-9 {
		t.Errorf("default frac delta = %v, want 28", d)
	}
}

func TestCoverageEmpty(t *testing.T) {
	if Coverage(nil) != 0 {
		t.Error("empty coverage != 0")
	}
}
