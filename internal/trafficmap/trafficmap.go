// Package trafficmap generates WiLocator's real-time traffic map and detects
// traffic anomalies (Sections IV and V-A.4).
//
// Because different routes have different regular speeds and different road
// segments have different speed limits, the map classifies segments by the
// *statistics of travel time*, not by vehicle velocity: for each segment the
// current residual (historical mean minus recent travel time, averaged over
// the buses that just passed) is standardised against the historical
// residual distribution, and the z-statistic is thresholded by the rule of
// thumb — z < -1.64 marks "very slow" (95% confidence), z < -1.00 "slow".
//
// The paper's comparison point (Fig. 11) is coverage: the transit agency's
// map leaves segments "unconfirmed", while WiLocator exploits the temporal
// constancy of traffic to mark every segment — absent fresh evidence a
// segment is classified from history instead of left blank. Generators can
// be configured either way so the comparison is reproducible.
package trafficmap

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"wilocator/internal/locate"
	"wilocator/internal/roadnet"
	"wilocator/internal/traveltime"
)

// Condition classifies a road segment's traffic state.
type Condition int

// Conditions. Unknown only appears on maps generated without inference
// (the agency baseline's "unconfirmed" segments).
const (
	Unknown Condition = iota
	Normal
	Slow
	VerySlow
)

// String implements fmt.Stringer.
func (c Condition) String() string {
	switch c {
	case Normal:
		return "normal"
	case Slow:
		return "slow"
	case VerySlow:
		return "very-slow"
	default:
		return "unknown"
	}
}

// Rune returns the single-character map glyph for the condition.
func (c Condition) Rune() rune {
	switch c {
	case Normal:
		return '-'
	case Slow:
		return 's'
	case VerySlow:
		return 'S'
	default:
		return '?'
	}
}

// Default thresholds (rule of thumb, Section V-A.4).
const (
	DefaultVerySlowZ = -1.64
	DefaultSlowZ     = -1.00
)

// Config tunes a Generator. The zero value selects WiLocator defaults.
type Config struct {
	// VerySlowZ and SlowZ are the z thresholds; both must be negative.
	VerySlowZ, SlowZ float64
	// RecentWindow bounds how fresh a traversal must be to count as
	// current evidence. Default 20 min.
	RecentWindow time.Duration
	// MinHistory is the minimum residual sample count before the
	// z-statistic is trusted. Default 8.
	MinHistory int
	// InferUnknown marks evidence-less segments Normal from history
	// (WiLocator behaviour) instead of Unknown (agency behaviour).
	// Use NewGenerator/NewAgencyStyle rather than setting this directly.
	InferUnknown bool
}

func (c Config) withDefaults() Config {
	if c.VerySlowZ >= 0 {
		c.VerySlowZ = DefaultVerySlowZ
	}
	if c.SlowZ >= 0 {
		c.SlowZ = DefaultSlowZ
	}
	if c.RecentWindow <= 0 {
		c.RecentWindow = 20 * time.Minute
	}
	if c.MinHistory <= 0 {
		c.MinHistory = 8
	}
	return c
}

// SegmentStatus is one segment's entry on the traffic map.
type SegmentStatus struct {
	Seg       roadnet.SegmentID `json:"seg"`
	Condition Condition         `json:"condition"`
	// Z is the standardised residual; 0 when inferred or unknown.
	Z float64 `json:"z"`
	// Inferred is true when no fresh traversal existed and the condition
	// was filled in from history.
	Inferred bool `json:"inferred"`
	// Routes lists the routes sharing the segment.
	Routes []string `json:"routes"`
}

// Generator produces traffic maps from the travel-time store.
type Generator struct {
	net   *roadnet.Network
	store *traveltime.Store
	cfg   Config

	// Classification counters (atomics — generators serve concurrent map
	// requests). Indexed by Condition for the by-condition counts.
	classified [4]atomic.Uint64 // Unknown, Normal, Slow, VerySlow
	inferred   atomic.Uint64
}

// ClassifyCounts is a snapshot of a generator's cumulative classification
// counters: how many segment classifications it produced per condition, and
// how many of those were inferred from history rather than fresh evidence.
type ClassifyCounts struct {
	Unknown, Normal, Slow, VerySlow uint64
	Inferred                        uint64
}

// Counts returns the generator's cumulative classification counters.
func (g *Generator) Counts() ClassifyCounts {
	return ClassifyCounts{
		Unknown:  g.classified[Unknown].Load(),
		Normal:   g.classified[Normal].Load(),
		Slow:     g.classified[Slow].Load(),
		VerySlow: g.classified[VerySlow].Load(),
		Inferred: g.inferred.Load(),
	}
}

// count records one classification outcome.
func (g *Generator) count(st SegmentStatus) SegmentStatus {
	if int(st.Condition) >= 0 && int(st.Condition) < len(&g.classified) {
		g.classified[st.Condition].Add(1)
	}
	if st.Inferred {
		g.inferred.Add(1)
	}
	return st
}

// NewGenerator creates a WiLocator-style generator (full coverage via
// inference).
func NewGenerator(net *roadnet.Network, store *traveltime.Store, cfg Config) (*Generator, error) {
	cfg.InferUnknown = true
	return newGenerator(net, store, cfg)
}

// NewAgencyStyle creates the comparison generator that leaves segments
// without fresh evidence unconfirmed, as the paper observes of the transit
// agency's map.
func NewAgencyStyle(net *roadnet.Network, store *traveltime.Store, cfg Config) (*Generator, error) {
	cfg.InferUnknown = false
	return newGenerator(net, store, cfg)
}

func newGenerator(net *roadnet.Network, store *traveltime.Store, cfg Config) (*Generator, error) {
	if net == nil || store == nil {
		return nil, errors.New("trafficmap: nil network or store")
	}
	return &Generator{net: net, store: store, cfg: cfg.withDefaults()}, nil
}

// Classify returns the condition and z-statistic of one segment at time at.
func (g *Generator) Classify(seg roadnet.SegmentID, at time.Time) SegmentStatus {
	status := SegmentStatus{Seg: seg, Routes: g.net.RoutesOnSegment(seg)}
	slot := g.store.Plan().SlotOf(at)
	_, sigma, n := g.store.ResidualStats(seg, slot)

	recent := g.store.Recent(seg, at.Add(-g.cfg.RecentWindow), 0)
	if len(recent) == 0 || n < g.cfg.MinHistory || sigma == 0 {
		if g.cfg.InferUnknown {
			status.Condition = Normal
			status.Inferred = true
		} else {
			status.Condition = Unknown
		}
		return g.count(status)
	}

	// Current residual: epsilon-hat = mean over recent buses of
	// Th(i,j,l) - Tr(i,j) (Section V-A.4); negative = slower than usual.
	var sum float64
	k := 0
	for _, tr := range recent {
		th, hn := g.store.HistoricalMean(seg, tr.RouteID, slot)
		if hn == 0 {
			continue
		}
		sum += th - tr.Seconds
		k++
	}
	if k == 0 {
		if g.cfg.InferUnknown {
			status.Condition = Normal
			status.Inferred = true
		} else {
			status.Condition = Unknown
		}
		return g.count(status)
	}
	// Historical residual mean is ~0 by construction.
	status.Z = (sum / float64(k)) / sigma
	switch {
	case status.Z < g.cfg.VerySlowZ:
		status.Condition = VerySlow
	case status.Z < g.cfg.SlowZ:
		status.Condition = Slow
	default:
		status.Condition = Normal
	}
	return g.count(status)
}

// Map classifies every segment used by at least one route, in segment-ID
// order.
func (g *Generator) Map(at time.Time) []SegmentStatus {
	var out []SegmentStatus
	for _, seg := range g.net.Graph.Segments() {
		if len(g.net.RoutesOnSegment(seg.ID)) == 0 {
			continue
		}
		out = append(out, g.Classify(seg.ID, at))
	}
	return out
}

// MapForRoute classifies the segments of one route in travel order.
func (g *Generator) MapForRoute(routeID string, at time.Time) ([]SegmentStatus, error) {
	route, ok := g.net.Route(routeID)
	if !ok {
		return nil, fmt.Errorf("trafficmap: unknown route %q", routeID)
	}
	segs := route.Segments()
	out := make([]SegmentStatus, 0, len(segs))
	for _, sid := range segs {
		out = append(out, g.Classify(sid, at))
	}
	return out, nil
}

// Render draws statuses as a one-character-per-segment strip, the textual
// analogue of Fig. 11's coloured road map.
func Render(statuses []SegmentStatus) string {
	var sb strings.Builder
	for _, st := range statuses {
		sb.WriteRune(st.Condition.Rune())
	}
	return sb.String()
}

// Coverage returns the fraction of statuses that are marked (not Unknown).
func Coverage(statuses []SegmentStatus) float64 {
	if len(statuses) == 0 {
		return 0
	}
	marked := 0
	for _, st := range statuses {
		if st.Condition != Unknown {
			marked++
		}
	}
	return float64(marked) / float64(len(statuses))
}

// Anomaly is a localised slowdown site identified from a bus trajectory
// (Fig. 6): a maximal run of consecutive fixes whose spacing collapsed.
type Anomaly struct {
	StartArc, EndArc float64
	Start, End       time.Time
}

// DetectAnomalies scans a trajectory for runs of at least minPoints
// consecutive fixes whose inter-fix road distance is below delta
// (the paper's system parameter δ, derived from the historical per-scan
// road distance). Runs centred within excludeRadius of any arc in
// excludeArcs (bus stops, signalled intersections — "easily identified
// based on the bus position") are suppressed as expected waits.
func DetectAnomalies(traj []locate.TrajectoryPoint, delta float64, minPoints int,
	excludeArcs []float64, excludeRadius float64) []Anomaly {
	if minPoints < 2 {
		minPoints = 2
	}
	var out []Anomaly
	runStart := -1
	flush := func(endIdx int) {
		if runStart < 0 {
			return
		}
		n := endIdx - runStart + 1
		defer func() { runStart = -1 }()
		if n < minPoints {
			return
		}
		a := Anomaly{
			StartArc: traj[runStart].Arc,
			EndArc:   traj[endIdx].Arc,
			Start:    traj[runStart].Time,
			End:      traj[endIdx].Time,
		}
		center := (a.StartArc + a.EndArc) / 2
		for _, ex := range excludeArcs {
			if abs(center-ex) <= excludeRadius {
				return
			}
		}
		out = append(out, a)
	}
	for i := 1; i < len(traj); i++ {
		if traj[i].Arc-traj[i-1].Arc < delta {
			if runStart < 0 {
				runStart = i - 1
			}
			continue
		}
		flush(i - 1)
	}
	flush(len(traj) - 1)
	return out
}

// DeltaFromHistory derives the anomaly threshold δ: frac times the typical
// road distance covered in one scan period at the segment's historical mean
// speed (the paper derives δ from historical per-scan road distance the same
// way the c1/c2 thresholds are derived).
func DeltaFromHistory(meanSpeed float64, scanPeriod time.Duration, frac float64) float64 {
	if frac <= 0 {
		frac = 0.35
	}
	return meanSpeed * scanPeriod.Seconds() * frac
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
