package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return buf.String()
}

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("wilocator_test_events_total", "Test events.")
	c.Add(41)
	c.Inc()
	g := r.Gauge("wilocator_test_depth", "Test depth.")
	g.Set(7)
	g.Add(-2)

	out := render(t, r)
	for _, want := range []string{
		"# HELP wilocator_test_events_total Test events.\n",
		"# TYPE wilocator_test_events_total counter\n",
		"wilocator_test_events_total 42\n",
		"# TYPE wilocator_test_depth gauge\n",
		"wilocator_test_depth 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	n := uint64(9)
	r.CounterFunc("wilocator_test_bridge_total", "Bridged counter.", func() uint64 { return n })
	r.GaugeFunc("wilocator_test_ratio", "Bridged gauge.", func() float64 { return 0.25 })
	out := render(t, r)
	if !strings.Contains(out, "wilocator_test_bridge_total 9\n") {
		t.Errorf("counter func not rendered:\n%s", out)
	}
	if !strings.Contains(out, "wilocator_test_ratio 0.25\n") {
		t.Errorf("gauge func not rendered:\n%s", out)
	}
}

func TestLabelsSortedAndEscaped(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("wilocator_test_labeled_total", "Labeled.",
		L("zeta", "plain"), L("alpha", "has\"quote and \\slash\nnewline"))
	c.Inc()
	out := render(t, r)
	want := `wilocator_test_labeled_total{alpha="has\"quote and \\slash\nnewline",zeta="plain"} 1` + "\n"
	if !strings.Contains(out, want) {
		t.Errorf("escaped+sorted labels missing.\nwant substring: %q\ngot:\n%s", want, out)
	}
}

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("wilocator_test_help_total", "line one\nback\\slash")
	out := render(t, r)
	want := `# HELP wilocator_test_help_total line one\nback\\slash` + "\n"
	if !strings.Contains(out, want) {
		t.Errorf("escaped help missing.\nwant: %q\ngot:\n%s", want, out)
	}
}

func TestHistogramRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("wilocator_test_latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	out := render(t, r)
	for _, want := range []string{
		"# TYPE wilocator_test_latency_seconds histogram\n",
		`wilocator_test_latency_seconds_bucket{le="0.1"} 2` + "\n",
		`wilocator_test_latency_seconds_bucket{le="1"} 3` + "\n",
		`wilocator_test_latency_seconds_bucket{le="10"} 4` + "\n",
		`wilocator_test_latency_seconds_bucket{le="+Inf"} 5` + "\n",
		"wilocator_test_latency_seconds_sum 55.65\n",
		"wilocator_test_latency_seconds_count 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramLabeled(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("wilocator_test_op_seconds", "Op timings.", []float64{1}, L("op", "fsync"))
	h.Observe(0.5)
	out := render(t, r)
	for _, want := range []string{
		`wilocator_test_op_seconds_bucket{op="fsync",le="1"} 1` + "\n",
		`wilocator_test_op_seconds_bucket{op="fsync",le="+Inf"} 1` + "\n",
		`wilocator_test_op_seconds_sum{op="fsync"} 0.5` + "\n",
		`wilocator_test_op_seconds_count{op="fsync"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("labeled histogram missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramInfBoundStripped(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("wilocator_test_inf_seconds", "Inf-terminated bounds.", []float64{1, math.Inf(1)})
	h.Observe(2)
	out := render(t, r)
	if c := strings.Count(out, `le="+Inf"`); c != 1 {
		t.Errorf("want exactly one +Inf bucket, got %d:\n%s", c, out)
	}
}

// TestExpositionConformance parses the full rendered output line by line and
// checks the structural rules of the text format: every sample belongs to a
// family announced by HELP+TYPE (in that order), histogram buckets are
// monotone and terminate with le="+Inf" equal to _count, and family blocks
// are contiguous.
func TestExpositionConformance(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("wilocator_conf_events_total", "Events.", L("kind", "a"))
	c.Add(3)
	r.Counter("wilocator_conf_events_total", "Events.", L("kind", "b")).Inc()
	r.Gauge("wilocator_conf_active", "Active.").Set(2)
	h := r.Histogram("wilocator_conf_lat_seconds", "Latency.", nil)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) * 1e-4)
	}
	out := render(t, r)

	type family struct {
		typ     string
		helped  bool
		samples int
	}
	fams := map[string]*family{}
	var curFam string
	seenFam := map[string]bool{}

	var bucketPrev uint64
	var bucketSeries string
	sawInf := map[string]uint64{}
	counts := map[string]uint64{}

	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			name := parts[0]
			if seenFam[name] {
				t.Errorf("family %s announced twice (non-contiguous block)", name)
			}
			fams[name] = &family{helped: true}
			curFam = name
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			name := parts[0]
			f := fams[name]
			if f == nil || !f.helped {
				t.Errorf("TYPE before HELP for %s", name)
				continue
			}
			f.typ = parts[1]
			if name != curFam {
				t.Errorf("TYPE %s not adjacent to its HELP", name)
			}
			seenFam[name] = true
			continue
		}
		// Sample line: name{labels} value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		series, valStr := line[:sp], line[sp+1:]
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) {
				if f := fams[strings.TrimSuffix(name, suf)]; f != nil && f.typ == "histogram" {
					base = strings.TrimSuffix(name, suf)
				}
			}
		}
		f := fams[base]
		if f == nil {
			t.Errorf("sample %q for unannounced family %q", line, base)
			continue
		}
		f.samples++
		if base != curFam {
			t.Errorf("sample for %s appears inside %s's block", base, curFam)
		}
		if f.typ == "histogram" && strings.HasSuffix(name, "_bucket") {
			v, err := strconv.ParseUint(valStr, 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q: %v", valStr, err)
			}
			stripped := series[:strings.LastIndex(series, "le=")]
			if stripped != bucketSeries {
				bucketSeries, bucketPrev = stripped, 0
			}
			if v < bucketPrev {
				t.Errorf("non-monotone bucket in %q: %d < %d", series, v, bucketPrev)
			}
			bucketPrev = v
			if strings.Contains(series, `le="+Inf"`) {
				sawInf[base] = v
			}
		}
		if f.typ == "histogram" && strings.HasSuffix(name, "_count") {
			v, _ := strconv.ParseUint(valStr, 10, 64)
			counts[base] = v
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for name, f := range fams {
		if f.typ == "" {
			t.Errorf("family %s has HELP but no TYPE", name)
		}
		if f.samples == 0 {
			t.Errorf("family %s announced but has no samples", name)
		}
		if f.typ == "histogram" {
			inf, ok := sawInf[name]
			if !ok {
				t.Errorf("histogram %s missing le=\"+Inf\" terminal bucket", name)
			}
			if inf != counts[name] {
				t.Errorf("histogram %s: +Inf bucket %d != _count %d", name, inf, counts[name])
			}
		}
	}
}

func TestRegisterPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		//wilint:ignore metricname deliberately invalid names exercise the registry's registration panics
		{"invalid name", func(r *Registry) { r.Counter("Bad-Name", "x") }},
		//wilint:ignore metricname deliberately invalid names exercise the registry's registration panics
		{"double underscore", func(r *Registry) { r.Counter("a__b_total", "x") }},
		//wilint:ignore metricname deliberately invalid names exercise the registry's registration panics
		{"trailing underscore", func(r *Registry) { r.Counter("a_total_", "x") }},
		{"invalid label", func(r *Registry) { r.Counter("a_total", "x", L("Bad", "v")) }},
		{"duplicate series", func(r *Registry) {
			r.Counter("a_total", "x")
			r.Counter("a_total", "x")
		}},
		{"type conflict", func(r *Registry) {
			r.Counter("a_total", "x", L("k", "1"))
			//wilint:ignore metricname the counter-style name is the point: it must collide with the counter family above
			r.Gauge("a_total", "x")
		}},
		{"help conflict", func(r *Registry) {
			r.Counter("a_total", "x", L("k", "1"))
			r.Counter("a_total", "y", L("k", "2"))
		}},
		{"non-increasing buckets", func(r *Registry) {
			r.Histogram("a_seconds", "x", []float64{1, 1})
		}},
		{"nil counter func", func(r *Registry) { r.CounterFunc("a_total", "x", nil) }},
		{"nil gauge func", func(r *Registry) { r.GaugeFunc("a_ratio", "x", nil) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", tc.name)
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

func TestDuplicateFamilyDistinctLabelsOK(t *testing.T) {
	r := NewRegistry()
	r.Counter("wilocator_test_multi_total", "Multi.", L("k", "a")).Inc()
	r.Counter("wilocator_test_multi_total", "Multi.", L("k", "b")).Add(2)
	out := render(t, r)
	if c := strings.Count(out, "# TYPE wilocator_test_multi_total counter"); c != 1 {
		t.Errorf("want one TYPE line for the family, got %d", c)
	}
	if !strings.Contains(out, `wilocator_test_multi_total{k="a"} 1`) ||
		!strings.Contains(out, `wilocator_test_multi_total{k="b"} 2`) {
		t.Errorf("missing labeled series:\n%s", out)
	}
}

func TestValidName(t *testing.T) {
	valid := []string{"a", "ab", "wilocator_locate_lookups_total", "x9", "a_b_c"}
	invalid := []string{"", "_a", "a_", "a__b", "A", "a-b", "9a", "a.b"}
	for _, n := range valid {
		if !ValidName(n) {
			t.Errorf("ValidName(%q) = false, want true", n)
		}
	}
	for _, n := range invalid {
		if ValidName(n) {
			t.Errorf("ValidName(%q) = true, want false", n)
		}
	}
}

// TestConcurrentObserveRender hammers every instrument type from many
// goroutines while concurrently rendering; run under -race this proves the
// observe and render paths are data-race free, and afterwards the totals
// must add up exactly (no lost updates).
func TestConcurrentObserveRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("wilocator_test_conc_total", "c")
	g := r.Gauge("wilocator_test_conc_depth", "g")
	h := r.Histogram("wilocator_test_conc_seconds", "h", []float64{1e-5, 1e-3, 0.1})

	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%7) * 1e-4)
			}
		}(w)
	}
	stop := make(chan struct{})
	var renderWG sync.WaitGroup
	renderWG.Add(1)
	go func() {
		defer renderWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var buf bytes.Buffer
				if err := r.WritePrometheus(&buf); err != nil {
					t.Errorf("render: %v", err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	renderWG.Wait()

	const total = workers * perWorker
	if got := c.Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := g.Value(); got != total {
		t.Errorf("gauge = %d, want %d", got, total)
	}
	if got := h.Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	var wantSum float64
	for i := 0; i < perWorker; i++ {
		wantSum += float64(i%7) * 1e-4
	}
	wantSum *= workers
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6*wantSum+1e-12 {
		t.Errorf("histogram sum = %g, want ~%g", got, wantSum)
	}
}

func TestRenderAllocsBounded(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 20; i++ {
		//wilint:ignore metricname many distinct families are needed; the generated names are still convention-clean
		r.Counter(fmt.Sprintf("wilocator_test_fam%d_total", i), "x").Add(uint64(i))
	}
	h := r.Histogram("wilocator_test_pool_seconds", "x", nil)
	h.Observe(0.1)
	var sink bytes.Buffer
	// Warm the pool, then confirm renders stay cheap (pooled buffer reused).
	for i := 0; i < 3; i++ {
		sink.Reset()
		if err := r.WritePrometheus(&sink); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		sink.Reset()
		if err := r.WritePrometheus(&sink); err != nil {
			t.Fatal(err)
		}
	})
	// One slice copy of the metric list, one bucket snapshot, and a handful
	// of value strings — the render buffer itself must come from the pool.
	if allocs > 120 {
		t.Errorf("render allocates %v per run; pooled buffer not effective", allocs)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("wilocator_bench_seconds", "b", nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 0.0003
		for pb.Next() {
			h.Observe(v)
		}
	})
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("wilocator_bench_total", "b")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}
