package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func fixedNow() func() time.Time {
	base := time.Date(2016, 3, 7, 9, 0, 0, 0, time.UTC)
	n := 0
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		n++
		return base.Add(time.Duration(n) * time.Millisecond)
	}
}

func TestTracerSpanThreading(t *testing.T) {
	tr := NewTracer(16)
	tr.now = fixedNow()
	ctx, span := tr.StartSpan(context.Background())
	if span == 0 {
		t.Fatal("span id must be nonzero")
	}
	if got := SpanID(ctx); got != span {
		t.Fatalf("SpanID(ctx) = %d, want %d", got, span)
	}
	tr.Event(ctx, "ingest", "accepted")
	tr.EventDur(ctx, "locate", "exact", 820*time.Nanosecond)

	evs := tr.Recent(0)
	if len(evs) != 2 {
		t.Fatalf("Recent = %d events, want 2", len(evs))
	}
	// Most recent first.
	if evs[0].Stage != "locate" || evs[1].Stage != "ingest" {
		t.Errorf("order wrong: %+v", evs)
	}
	for _, e := range evs {
		if e.Span != span {
			t.Errorf("event %q has span %d, want %d", e.Stage, e.Span, span)
		}
	}
	if evs[0].Dur != 820*time.Nanosecond {
		t.Errorf("dur = %v", evs[0].Dur)
	}
}

func TestTracerDistinctSpans(t *testing.T) {
	tr := NewTracer(4)
	_, a := tr.StartSpan(context.Background())
	_, b := tr.StartSpan(context.Background())
	if a == b {
		t.Fatalf("spans not distinct: %d", a)
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer(3)
	tr.now = fixedNow()
	ctx, _ := tr.StartSpan(context.Background())
	for i, stage := range []string{"a", "b", "c", "d", "e"} {
		tr.Event(ctx, stage, "")
		_ = i
	}
	if got := tr.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	evs := tr.Recent(0)
	if len(evs) != 3 {
		t.Fatalf("Recent = %d, want 3", len(evs))
	}
	want := []string{"e", "d", "c"}
	for i, e := range evs {
		if e.Stage != want[i] {
			t.Errorf("evs[%d].Stage = %q, want %q", i, e.Stage, want[i])
		}
	}
	if evs := tr.Recent(2); len(evs) != 2 || evs[0].Stage != "e" {
		t.Errorf("Recent(2) = %+v", evs)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	ctx, span := tr.StartSpan(context.Background())
	if span != 0 {
		t.Errorf("nil tracer span = %d, want 0", span)
	}
	tr.Event(ctx, "x", "")
	tr.EventDur(ctx, "x", "", time.Second)
	if got := tr.Recent(10); got != nil {
		t.Errorf("nil Recent = %v", got)
	}
	if got := tr.Len(); got != 0 {
		t.Errorf("nil Len = %d", got)
	}
	if got := SpanID(nil); got != 0 {
		t.Errorf("SpanID(nil) = %d", got)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				ctx, _ := tr.StartSpan(context.Background())
				tr.Event(ctx, "ingest", "n")
				tr.EventDur(ctx, "locate", "", time.Microsecond)
				_ = tr.Recent(8)
				_ = tr.Len()
			}
		}()
	}
	wg.Wait()
	if got := tr.Len(); got != 64 {
		t.Errorf("ring should be full: Len = %d", got)
	}
}
