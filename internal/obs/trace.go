package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// An Event is one structured entry in the trace ring: which span it belongs
// to, which pipeline stage emitted it, and an optional duration for timed
// stages.
type Event struct {
	Span  uint64        `json:"span"`
	Time  time.Time     `json:"time"`
	Stage string        `json:"stage"`
	Note  string        `json:"note,omitempty"`
	Dur   time.Duration `json:"dur_ns,omitempty"`
}

// Tracer is a fixed-capacity ring buffer of Events. It is a debugging aid,
// not a metrics primitive: writes take a mutex (the ring is shared state),
// but the ring is small and the endpoint serving it is not on any hot path.
// All methods are safe on a nil *Tracer, so call sites never need to guard
// against tracing being disabled.
type Tracer struct {
	mu   sync.Mutex
	ring []Event
	next int
	full bool

	nextSpan atomic.Uint64
	now      func() time.Time // injectable for deterministic tests
}

// NewTracer creates a tracer holding the most recent capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]Event, capacity), now: time.Now}
}

// spanKey is the private context key type for span IDs.
type spanKey struct{}

// StartSpan allocates a fresh span ID and returns a context carrying it.
// A nil tracer returns the context unchanged and span 0.
func (t *Tracer) StartSpan(ctx context.Context) (context.Context, uint64) {
	if t == nil {
		return ctx, 0
	}
	id := t.nextSpan.Add(1)
	return context.WithValue(ctx, spanKey{}, id), id
}

// SpanID extracts the span ID threaded through ctx, or 0 if none.
func SpanID(ctx context.Context) uint64 {
	if ctx == nil {
		return 0
	}
	id, _ := ctx.Value(spanKey{}).(uint64)
	return id
}

// Event records an untimed event on ctx's span.
func (t *Tracer) Event(ctx context.Context, stage, note string) {
	if t == nil {
		return
	}
	t.record(Event{Span: SpanID(ctx), Time: t.now(), Stage: stage, Note: note})
}

// EventDur records a timed event on ctx's span.
func (t *Tracer) EventDur(ctx context.Context, stage, note string, d time.Duration) {
	if t == nil {
		return
	}
	t.record(Event{Span: SpanID(ctx), Time: t.now(), Stage: stage, Note: note, Dur: d})
}

func (t *Tracer) record(e Event) {
	t.mu.Lock()
	t.ring[t.next] = e
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Recent returns up to max events, most recent first. max <= 0 means all
// buffered events. A nil tracer returns nil.
func (t *Tracer) Recent(max int) []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	if t.full {
		n = len(t.ring)
	}
	if max <= 0 || max > n {
		max = n
	}
	out := make([]Event, 0, max)
	// Walk backwards from the most recently written slot.
	for i := 1; i <= max; i++ {
		idx := t.next - i
		if idx < 0 {
			idx += len(t.ring)
		}
		out = append(out, t.ring[idx])
	}
	return out
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.ring)
	}
	return t.next
}
