// Package obs is the WiLocator observability core: a standard-library-only
// metrics registry (atomic counters, gauges and fixed-bucket histograms
// rendered in the Prometheus text exposition format) and a lightweight
// per-request tracer (a ring-buffered structured event log with span IDs
// threaded through the pipeline via context).
//
// # Why not a metrics dependency
//
// The build environment has no module proxy access, and the instruments sit
// on paths measured in hundreds of nanoseconds (one SVD lookup is ~820 ns).
// The registry therefore trades generality for a hot path that is nothing
// but a handful of atomic operations:
//
//   - Counter and Gauge are single atomics; Add/Set never allocate and never
//     take a lock.
//   - Histogram keeps one atomic per fixed bucket plus an atomic count and a
//     compare-and-swap float sum. Observe is a short linear scan over the
//     bucket bounds (they fit in a cache line) and three atomic writes —
//     no lock, no allocation, no time.Time boxing.
//   - Dynamic label sets are deliberately unsupported: every (name, labels)
//     series is registered once, up front, so the lookup a labelled metrics
//     library does per observation simply does not exist here. What would be
//     a label lookup is a struct field access.
//
// Rendering is the slow path and the only place the registry locks; the
// exposition buffer is pooled so a scrape does not allocate proportionally
// to the metric count.
//
// Registration panics on invalid or duplicate names: metrics are wired at
// construction time, so a bad name is a programming error, not a runtime
// condition. The wilint `metricname` analyzer enforces the naming rules
// statically as well.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// A Label is one constant name=value pair attached to a metric series at
// registration time.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer gauge (set-and-read, may go down).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram. Buckets are chosen at
// registration and never change, so Observe is lock-free: one bounded scan
// over the bounds, three atomic updates, zero allocations.
type Histogram struct {
	bounds  []float64 // strictly increasing upper bounds; +Inf is implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum, CAS-updated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0 — the idiom for timing a
// code region: defer h.ObserveSince(time.Now()).
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DefBuckets are the default latency buckets in seconds. They reach down to
// a microsecond because the instrumented fast paths (SVD lookups) complete
// in well under one.
var DefBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at start
// and growing by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// kind is a metric family's Prometheus type.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// metric is one registered series.
type metric struct {
	name   string
	help   string
	kind   kind
	labels []Label
	key    string // name + sorted label signature (render sort order)

	c  *Counter
	g  *Gauge
	h  *Histogram
	cf func() uint64  // CounterFunc source
	gf func() float64 // GaugeFunc source

	// boundStrs are the histogram's bucket bounds pre-rendered at
	// registration, so a scrape formats only values, never bounds.
	boundStrs []string
}

// Registry holds registered metrics and renders them in the Prometheus text
// exposition format. Registration happens at construction time; Observe/Add
// on the returned instruments never touch the registry again.
//
// metrics is kept sorted by (family name, series key) at registration, so
// rendering never copies or sorts: it walks the slice under the read lock.
type Registry struct {
	mu      sync.RWMutex
	metrics []*metric
	byKey   map[string]*metric // name + sorted label signature
	byName  map[string]kind    // family name -> type (and help consistency)
	help    map[string]string

	renderPool sync.Pool // *renderScratch, see expfmt.go
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byKey:  make(map[string]*metric),
		byName: make(map[string]kind),
		help:   make(map[string]string),
	}
}

var nameRE = regexp.MustCompile(`^[a-z]([a-z0-9_]*[a-z0-9])?$`)

// ValidName reports whether name is an acceptable metric name under the
// project's conventions: snake_case ASCII, no leading/trailing/double
// underscores. The wilint metricname analyzer applies the same rule
// statically.
func ValidName(name string) bool {
	return nameRE.MatchString(name) && !strings.Contains(name, "__")
}

func (r *Registry) register(m *metric) {
	if !ValidName(m.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q (want snake_case, no double underscores)", m.name))
	}
	for _, l := range m.labels {
		if !ValidName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l.Key, m.name))
		}
	}
	sort.SliceStable(m.labels, func(i, j int) bool { return m.labels[i].Key < m.labels[j].Key })
	key := seriesKey(m.name, m.labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byKey[key]; dup {
		panic(fmt.Sprintf("obs: duplicate metric series %s", key))
	}
	if k, ok := r.byName[m.name]; ok {
		if k != m.kind {
			panic(fmt.Sprintf("obs: metric family %q registered as both %s and %s", m.name, k, m.kind))
		}
		if r.help[m.name] != m.help {
			panic(fmt.Sprintf("obs: metric family %q registered with two help strings", m.name))
		}
	}
	r.byKey[key] = m
	r.byName[m.name] = m.kind
	r.help[m.name] = m.help
	m.key = key
	// Sorted insert by (family name, series key): render order is fixed
	// here, once per registration, instead of per scrape. Keys are unique
	// (the dup check above), so the order is total.
	i := sort.Search(len(r.metrics), func(i int) bool {
		if r.metrics[i].name != m.name {
			return r.metrics[i].name > m.name
		}
		return r.metrics[i].key > key
	})
	r.metrics = append(r.metrics, nil)
	copy(r.metrics[i+1:], r.metrics[i:])
	r.metrics[i] = m
}

func seriesKey(name string, labels []Label) string {
	var sb strings.Builder
	sb.WriteString(name)
	for _, l := range labels {
		sb.WriteByte('{')
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
		sb.WriteByte('}')
	}
	return sb.String()
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: kindCounter, labels: labels, c: c})
	return c
}

// CounterFunc registers a counter series whose value is read from fn at
// render time — the bridge for counters that already live as atomics in
// domain packages (ingest stats, lookup stats) and must not be counted
// twice.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	if fn == nil {
		panic("obs: nil CounterFunc for " + name)
	}
	r.register(&metric{name: name, help: help, kind: kindCounter, labels: labels, cf: fn})
}

// Gauge registers and returns an integer gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: kindGauge, labels: labels, g: g})
	return g
}

// GaugeFunc registers a gauge series whose value is read from fn at render
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if fn == nil {
		panic("obs: nil GaugeFunc for " + name)
	}
	r.register(&metric{name: name, help: help, kind: kindGauge, labels: labels, gf: fn})
}

// Histogram registers and returns a histogram series with the given bucket
// upper bounds (strictly increasing; +Inf is implicit). A nil or empty
// bounds slice selects DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram %q bucket bounds not strictly increasing at %d", name, i))
		}
	}
	if math.IsInf(bounds[len(bounds)-1], 1) {
		bounds = bounds[:len(bounds)-1] // +Inf is always implicit
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	boundStrs := make([]string, len(bounds))
	for i, b := range bounds {
		boundStrs[i] = formatFloat(b)
	}
	r.register(&metric{name: name, help: help, kind: kindHistogram, labels: labels, h: h, boundStrs: boundStrs})
	return h
}
