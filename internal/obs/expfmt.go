package obs

import (
	"bytes"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Content-Type of the text exposition format rendered by
// WritePrometheus.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): one `# HELP` and `# TYPE` line per
// family, followed by the family's series sorted by label signature.
// Families are sorted by name, so the output is deterministic. The render
// buffer is pooled — a scrape allocates O(1), not O(metrics).
func (r *Registry) WritePrometheus(w io.Writer) error {
	buf, _ := r.bufPool.Get().(*bytes.Buffer)
	if buf == nil {
		buf = &bytes.Buffer{}
	}
	buf.Reset()
	defer r.bufPool.Put(buf)

	r.mu.RLock()
	ms := make([]*metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.RUnlock()

	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return seriesKey(ms[i].name, ms[i].labels) < seriesKey(ms[j].name, ms[j].labels)
	})

	lastFamily := ""
	for _, m := range ms {
		if m.name != lastFamily {
			buf.WriteString("# HELP ")
			buf.WriteString(m.name)
			buf.WriteByte(' ')
			writeEscapedHelp(buf, m.help)
			buf.WriteByte('\n')
			buf.WriteString("# TYPE ")
			buf.WriteString(m.name)
			buf.WriteByte(' ')
			buf.WriteString(m.kind.String())
			buf.WriteByte('\n')
			lastFamily = m.name
		}
		switch m.kind {
		case kindCounter:
			v := uint64(0)
			if m.cf != nil {
				v = m.cf()
			} else {
				v = m.c.Value()
			}
			writeSeries(buf, m.name, "", m.labels, "", strconv.FormatUint(v, 10))
		case kindGauge:
			var val string
			if m.gf != nil {
				val = formatFloat(m.gf())
			} else {
				val = strconv.FormatInt(m.g.Value(), 10)
			}
			writeSeries(buf, m.name, "", m.labels, "", val)
		case kindHistogram:
			h := m.h
			// Snapshot bucket counts first, then count/sum: cumulative bucket
			// sums must never exceed the _count rendered beside them.
			counts := make([]uint64, len(h.counts))
			for i := range h.counts {
				counts[i] = h.counts[i].Load()
			}
			var cum uint64
			for i, b := range h.bounds {
				cum += counts[i]
				writeSeries(buf, m.name, "_bucket", m.labels, formatFloat(b), strconv.FormatUint(cum, 10))
			}
			cum += counts[len(counts)-1]
			writeSeries(buf, m.name, "_bucket", m.labels, "+Inf", strconv.FormatUint(cum, 10))
			writeSeries(buf, m.name, "_sum", m.labels, "", formatFloat(h.Sum()))
			writeSeries(buf, m.name, "_count", m.labels, "", strconv.FormatUint(cum, 10))
		}
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// writeSeries renders one sample line: name+suffix{labels,le="bound"} value.
func writeSeries(buf *bytes.Buffer, name, suffix string, labels []Label, le, value string) {
	buf.WriteString(name)
	buf.WriteString(suffix)
	if len(labels) > 0 || le != "" {
		buf.WriteByte('{')
		first := true
		for _, l := range labels {
			if !first {
				buf.WriteByte(',')
			}
			first = false
			buf.WriteString(l.Key)
			buf.WriteString(`="`)
			writeEscapedLabel(buf, l.Value)
			buf.WriteByte('"')
		}
		if le != "" {
			if !first {
				buf.WriteByte(',')
			}
			buf.WriteString(`le="`)
			buf.WriteString(le)
			buf.WriteByte('"')
		}
		buf.WriteByte('}')
	}
	buf.WriteByte(' ')
	buf.WriteString(value)
	buf.WriteByte('\n')
}

// writeEscapedHelp escapes a HELP string: backslash and newline.
func writeEscapedHelp(buf *bytes.Buffer, s string) {
	for _, r := range s {
		switch r {
		case '\\':
			buf.WriteString(`\\`)
		case '\n':
			buf.WriteString(`\n`)
		default:
			buf.WriteRune(r)
		}
	}
}

// writeEscapedLabel escapes a label value: backslash, double quote, newline.
func writeEscapedLabel(buf *bytes.Buffer, s string) {
	for _, r := range s {
		switch r {
		case '\\':
			buf.WriteString(`\\`)
		case '"':
			buf.WriteString(`\"`)
		case '\n':
			buf.WriteString(`\n`)
		default:
			buf.WriteRune(r)
		}
	}
}

// formatFloat renders a float64 the shortest way that round-trips; integral
// values render without an exponent or trailing zeros.
func formatFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	// "+Inf"/"NaN" never reach here via bucket bounds (it is stripped at
	// registration) but a GaugeFunc may legitimately produce them.
	if strings.EqualFold(s, "+inf") || strings.EqualFold(s, "inf") {
		return "+Inf"
	}
	return s
}
