package obs

import (
	"bytes"
	"io"
	"strconv"
	"strings"
)

// ContentType is the Content-Type of the text exposition format rendered by
// WritePrometheus.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// renderScratch is the pooled per-scrape working set: the exposition
// buffer, the histogram snapshot and the number-formatting scratch. One
// scrape reuses all three; the pool amortizes them across scrapes.
type renderScratch struct {
	buf    bytes.Buffer
	counts []uint64
	num    []byte
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): one `# HELP` and `# TYPE` line per
// family, followed by the family's series sorted by label signature.
// Families are sorted by name — the registry keeps its metrics slice in
// exactly that order at registration — so the output is deterministic and
// the render is a straight walk under the read lock: no copy, no sort, and
// (with the scratch pooled and numbers formatted by append) no per-scrape
// allocation at all in steady state.
//
//wilint:hotpath
func (r *Registry) WritePrometheus(w io.Writer) error {
	sc, _ := r.renderPool.Get().(*renderScratch)
	if sc == nil {
		sc = &renderScratch{} //wilint:ignore hotpath pool warm-up: one scratch per scraper, then recycled
	}
	sc.buf.Reset()
	defer r.renderPool.Put(sc)
	buf := &sc.buf

	// Registration is construction-time, so holding the read lock across
	// the walk costs scrapes nothing and keeps the slice stable.
	r.mu.RLock()
	defer r.mu.RUnlock()

	lastFamily := ""
	for _, m := range r.metrics {
		if m.name != lastFamily {
			buf.WriteString("# HELP ")
			buf.WriteString(m.name)
			buf.WriteByte(' ')
			writeEscapedHelp(buf, m.help)
			buf.WriteByte('\n')
			buf.WriteString("# TYPE ")
			buf.WriteString(m.name)
			buf.WriteByte(' ')
			buf.WriteString(m.kind.String())
			buf.WriteByte('\n')
			lastFamily = m.name
		}
		switch m.kind {
		case kindCounter:
			v := uint64(0)
			if m.cf != nil {
				v = m.cf()
			} else {
				v = m.c.Value()
			}
			sc.num = strconv.AppendUint(sc.num[:0], v, 10)
			writeSeries(buf, m.name, "", m.labels, "", sc.num)
		case kindGauge:
			if m.gf != nil {
				sc.num = appendFloat(sc.num[:0], m.gf())
			} else {
				sc.num = strconv.AppendInt(sc.num[:0], m.g.Value(), 10)
			}
			writeSeries(buf, m.name, "", m.labels, "", sc.num)
		case kindHistogram:
			h := m.h
			// Snapshot bucket counts first, then count/sum: cumulative bucket
			// sums must never exceed the _count rendered beside them.
			sc.counts = sc.counts[:0]
			for i := range h.counts {
				sc.counts = append(sc.counts, h.counts[i].Load())
			}
			var cum uint64
			for i, b := range m.boundStrs {
				cum += sc.counts[i]
				sc.num = strconv.AppendUint(sc.num[:0], cum, 10)
				writeSeries(buf, m.name, "_bucket", m.labels, b, sc.num)
			}
			cum += sc.counts[len(sc.counts)-1]
			sc.num = strconv.AppendUint(sc.num[:0], cum, 10)
			writeSeries(buf, m.name, "_bucket", m.labels, "+Inf", sc.num)
			sc.num = appendFloat(sc.num[:0], h.Sum())
			writeSeries(buf, m.name, "_sum", m.labels, "", sc.num)
			sc.num = strconv.AppendUint(sc.num[:0], cum, 10)
			writeSeries(buf, m.name, "_count", m.labels, "", sc.num)
		}
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// writeSeries renders one sample line: name+suffix{labels,le="bound"} value.
//
//wilint:hotpath
func writeSeries(buf *bytes.Buffer, name, suffix string, labels []Label, le string, value []byte) {
	buf.WriteString(name)
	buf.WriteString(suffix)
	if len(labels) > 0 || le != "" {
		buf.WriteByte('{')
		first := true
		for _, l := range labels {
			if !first {
				buf.WriteByte(',')
			}
			first = false
			buf.WriteString(l.Key)
			buf.WriteString(`="`)
			writeEscapedLabel(buf, l.Value)
			buf.WriteByte('"')
		}
		if le != "" {
			if !first {
				buf.WriteByte(',')
			}
			buf.WriteString(`le="`)
			buf.WriteString(le)
			buf.WriteByte('"')
		}
		buf.WriteByte('}')
	}
	buf.WriteByte(' ')
	buf.Write(value)
	buf.WriteByte('\n')
}

// writeEscapedHelp escapes a HELP string: backslash and newline.
//
//wilint:hotpath
func writeEscapedHelp(buf *bytes.Buffer, s string) {
	for _, r := range s {
		switch r {
		case '\\':
			buf.WriteString(`\\`)
		case '\n':
			buf.WriteString(`\n`)
		default:
			buf.WriteRune(r)
		}
	}
}

// writeEscapedLabel escapes a label value: backslash, double quote, newline.
//
//wilint:hotpath
func writeEscapedLabel(buf *bytes.Buffer, s string) {
	for _, r := range s {
		switch r {
		case '\\':
			buf.WriteString(`\\`)
		case '"':
			buf.WriteString(`\"`)
		case '\n':
			buf.WriteString(`\n`)
		default:
			buf.WriteRune(r)
		}
	}
}

// formatFloat renders a float64 the shortest way that round-trips; integral
// values render without an exponent or trailing zeros. Used at registration
// (bucket bounds); the render path uses appendFloat.
func formatFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	// "+Inf"/"NaN" never reach here via bucket bounds (it is stripped at
	// registration) but a GaugeFunc may legitimately produce them.
	if strings.EqualFold(s, "+inf") || strings.EqualFold(s, "inf") {
		return "+Inf"
	}
	return s
}

// appendFloat is formatFloat into a caller-provided buffer. AppendFloat
// already renders infinities as "+Inf"/"-Inf", matching formatFloat's
// fixup byte for byte.
//
//wilint:hotpath
func appendFloat(dst []byte, v float64) []byte {
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}
